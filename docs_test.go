package chronus

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"github.com/chronus-sdn/chronus/internal/api"
)

// TestDocsMentionEveryScheme keeps the prose in lockstep with the scheme
// registry: every registered name must appear (backticked, so a plain
// English word like "or" cannot satisfy the check by accident) in both
// README.md and EXPERIMENTS.md. Registering a scheme without documenting
// it fails here.
// TestDocsListEveryDaemonEndpoint keeps the README's REST table in
// lockstep with the daemon's endpoint registry (internal/api, the same
// table chronusd builds its mux from): every registered endpoint must
// appear backticked as `METHOD /path`. Wiring a new endpoint without
// documenting it fails here.
func TestDocsListEveryDaemonEndpoint(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, ep := range api.Endpoints {
		want := fmt.Sprintf("`%s %s`", ep.Method, ep.Path)
		if !strings.Contains(text, want) {
			t.Errorf("README.md does not document endpoint %s", want)
		}
	}
}

// TestDocsDescribeAdmissionPipeline pins the admission-pipeline docs:
// the README must name every update lifecycle state next to its REST
// table, and EXPERIMENTS.md must walk through the soak generator that
// gates the pipeline in CI.
func TestDocsDescribeAdmissionPipeline(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, state := range []string{"queued", "planning", "executing", "done", "refused", "failed"} {
		if !strings.Contains(string(readme), fmt.Sprintf("`%s`", state)) {
			t.Errorf("README.md does not document update state `%s`", state)
		}
	}
	expts, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"-run soak", "chronus_admit_ledger_overcommit_total"} {
		if !strings.Contains(string(expts), want) {
			t.Errorf("EXPERIMENTS.md does not mention %q", want)
		}
	}
}

// TestDocsDescribeDriftDetection pins the observed-state docs: the
// README must name every drift status the store can classify, DESIGN.md
// must carry the §17 design chapter, and EXPERIMENTS.md must walk
// through the offline replay and the crash-drift CI gate.
func TestDocsDescribeDriftDetection(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, status := range []string{"planned", "converging", "converged", "stranded", "diverged"} {
		if !strings.Contains(string(readme), fmt.Sprintf("`%s`", status)) {
			t.Errorf("README.md does not document drift status `%s`", status)
		}
	}
	design, err := os.ReadFile("DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(design), "## 17. Observed state & drift") {
		t.Error("DESIGN.md is missing the §17 observed-state chapter")
	}
	expts, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"-state-from", "crash-drift", "-exec-headroom"} {
		if !strings.Contains(string(expts), want) {
			t.Errorf("EXPERIMENTS.md does not mention %q", want)
		}
	}
}

func TestDocsMentionEveryScheme(t *testing.T) {
	for _, doc := range []string{"README.md", "EXPERIMENTS.md"} {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		text := string(data)
		for _, name := range Schemes() {
			if !strings.Contains(text, fmt.Sprintf("`%s`", name)) {
				t.Errorf("%s does not mention scheme `%s`", doc, name)
			}
		}
	}
}
