package chronus

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestDocsMentionEveryScheme keeps the prose in lockstep with the scheme
// registry: every registered name must appear (backticked, so a plain
// English word like "or" cannot satisfy the check by accident) in both
// README.md and EXPERIMENTS.md. Registering a scheme without documenting
// it fails here.
func TestDocsMentionEveryScheme(t *testing.T) {
	for _, doc := range []string{"README.md", "EXPERIMENTS.md"} {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		text := string(data)
		for _, name := range Schemes() {
			if !strings.Contains(text, fmt.Sprintf("`%s`", name)) {
				t.Errorf("%s does not mention scheme `%s`", doc, name)
			}
		}
	}
}
