package chronus

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"github.com/chronus-sdn/chronus/internal/api"
)

// TestDocsMentionEveryScheme keeps the prose in lockstep with the scheme
// registry: every registered name must appear (backticked, so a plain
// English word like "or" cannot satisfy the check by accident) in both
// README.md and EXPERIMENTS.md. Registering a scheme without documenting
// it fails here.
// TestDocsListEveryDaemonEndpoint keeps the README's REST table in
// lockstep with the daemon's endpoint registry (internal/api, the same
// table chronusd builds its mux from): every registered endpoint must
// appear backticked as `METHOD /path`. Wiring a new endpoint without
// documenting it fails here.
func TestDocsListEveryDaemonEndpoint(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, ep := range api.Endpoints {
		want := fmt.Sprintf("`%s %s`", ep.Method, ep.Path)
		if !strings.Contains(text, want) {
			t.Errorf("README.md does not document endpoint %s", want)
		}
	}
}

// TestDocsDescribeAdmissionPipeline pins the admission-pipeline docs:
// the README must name every update lifecycle state next to its REST
// table, and EXPERIMENTS.md must walk through the soak generator that
// gates the pipeline in CI.
func TestDocsDescribeAdmissionPipeline(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, state := range []string{"queued", "planning", "executing", "done", "refused", "failed"} {
		if !strings.Contains(string(readme), fmt.Sprintf("`%s`", state)) {
			t.Errorf("README.md does not document update state `%s`", state)
		}
	}
	expts, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"-run soak", "chronus_admit_ledger_overcommit_total"} {
		if !strings.Contains(string(expts), want) {
			t.Errorf("EXPERIMENTS.md does not mention %q", want)
		}
	}
}

func TestDocsMentionEveryScheme(t *testing.T) {
	for _, doc := range []string{"README.md", "EXPERIMENTS.md"} {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		text := string(data)
		for _, name := range Schemes() {
			if !strings.Contains(text, fmt.Sprintf("`%s`", name)) {
				t.Errorf("%s does not mention scheme `%s`", doc, name)
			}
		}
	}
}
