// Package chronus is the public API of the Chronus library: consistent data
// plane updates for timed SDNs, reproducing "Chronus: Consistent Data Plane
// Updates in Timed SDNs" (ICDCS 2017).
//
// A network update instance moves one dynamic flow from an initial to a
// final path across a capacitated, delay-weighted topology. Chronus
// computes a timed schedule — one activation instant per switch — that is
// congestion-free and loop-free at every moment, without the rule-space
// headroom two-phase updates need.
//
// # Quick start
//
//	g := chronus.NewNetwork()
//	// ... add switches and links ...
//	in := &chronus.Instance{G: g, Demand: 1, Init: oldPath, Fin: newPath}
//	plan, err := chronus.Solve(in, chronus.SolveOptions{})
//	if err != nil { ... }
//	fmt.Println(plan.Schedule.Format(in)) // switch -> activation tick
//
// Schedules can be verified against the dynamic-flow model (Validate),
// compared against the exact optimum (SolveOptimal) and the baselines from
// the paper's evaluation (OrderReplacementRounds, CountRules), and executed
// on the bundled emulated data plane through the controller packages — see
// the examples directory and cmd/chronusd.
package chronus

import (
	"math/rand"

	"github.com/chronus-sdn/chronus/internal/baseline"
	"github.com/chronus-sdn/chronus/internal/core"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/opt"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// Core model types, aliased so values flow freely between the façade and
// the internal engines.
type (
	// Network is a directed topology of switches and capacitated,
	// delay-weighted links.
	Network = graph.Graph
	// NodeID identifies a switch.
	NodeID = graph.NodeID
	// Path is a simple path of switches.
	Path = graph.Path
	// Capacity is a link capacity in demand units.
	Capacity = graph.Capacity
	// Delay is a link propagation delay in ticks.
	Delay = graph.Delay
	// Tick is a discrete time step.
	Tick = dynflow.Tick
	// Instance is one minimum-update-time problem: a flow, its initial
	// path and its final path.
	Instance = dynflow.Instance
	// Schedule assigns each updated switch an activation tick.
	Schedule = dynflow.Schedule
	// Report is the validator's verdict on a schedule.
	Report = dynflow.Report
)

// Invalid is the null NodeID.
const Invalid = graph.Invalid

// NewNetwork returns an empty topology.
func NewNetwork() *Network { return graph.New() }

// NewSchedule returns an empty schedule starting at the given tick.
func NewSchedule(start Tick) *Schedule { return dynflow.NewSchedule(start) }

// Mode selects the greedy scheduler's acceptance test.
type Mode = core.Mode

// Scheduler modes.
const (
	// ModeExact re-validates each tentative update against the dynamic-
	// flow model: highest solution quality, cost grows with the instance.
	ModeExact = core.ModeExact
	// ModeFast uses closed-form in-flight accounting: linear-time checks,
	// suitable for thousands of switches; slightly more conservative.
	ModeFast = core.ModeFast
)

// ErrInfeasible reports that no congestion- and loop-free schedule exists
// (or none within the configured budget).
var ErrInfeasible = core.ErrInfeasible

// SolveOptions configures Solve.
type SolveOptions struct {
	// Start is t0, the first tick at which updates may activate.
	Start Tick
	// Mode selects the acceptance test (zero value: ModeExact).
	Mode Mode
	// BestEffort returns a complete schedule even when no violation-free
	// one exists: the stragglers flip after the drain and the Report
	// carries the damage.
	BestEffort bool
	// Obs receives scheduler counters (candidates accepted, deferred and
	// rejected, validator runs, wake jumps); nil disables instrumentation.
	Obs *MetricsRegistry
	// Trace receives per-decision scheduler events stamped with the
	// candidate activation tick; nil disables tracing.
	Trace *Tracer
}

// Plan is a solved update: the schedule plus scheduling diagnostics.
type Plan struct {
	Schedule *Schedule
	// Report validates the schedule; nil when Mode is ModeFast and
	// BestEffort did not fire (fast schedules are clean by construction;
	// call Validate for the certificate).
	Report *Report
	// BestEffort marks a schedule that includes forced flips after the
	// scheduler got stuck.
	BestEffort bool
}

// Solve computes a timed update schedule with the Chronus greedy scheduler
// (Algorithm 2 of the paper).
func Solve(in *Instance, o SolveOptions) (*Plan, error) {
	res, err := core.Greedy(in, core.Options{Start: o.Start, Mode: o.Mode, BestEffort: o.BestEffort, Obs: o.Obs, Trace: o.Trace})
	if err != nil {
		return nil, err
	}
	return &Plan{Schedule: res.Schedule, Report: res.Report, BestEffort: res.BestEffort}, nil
}

// Validate checks a schedule against the dynamic-flow model: every emission
// is traced through the time-varying configuration, and the report lists
// congestion (Definition 3), loops (Definition 2) and blackholes.
func Validate(in *Instance, s *Schedule) *Report { return dynflow.Validate(in, s) }

// SwitchSlack is one switch's scheduling tolerance (see ScheduleSlack).
type SwitchSlack = core.SwitchSlack

// ScheduleSlack computes, per scheduled switch, how many ticks its
// activation may slip before the schedule stops validating clean — the
// analytic counterpart of the trace-derived critical path the audit
// tooling reports. Zero-slack switches are the schedule's critical path.
func ScheduleSlack(in *Instance, s *Schedule) []SwitchSlack { return core.ScheduleSlack(in, s) }

// Feasible runs the polynomial tree algorithm (Algorithm 1): it decides
// whether any congestion- and loop-free schedule exists, for instances
// whose links share one transmission delay.
func Feasible(in *Instance) (bool, error) {
	ok, _, err := core.TreeFeasible(in)
	return ok, err
}

// OptimalOptions configures SolveOptimal.
type OptimalOptions struct {
	Start Tick
	// MaxNodes caps the branch-and-bound search (0 = 50000). When the
	// budget runs out the best incumbent is returned with Exact=false.
	MaxNodes int
}

// OptimalPlan is an exact-search result.
type OptimalPlan struct {
	Schedule *Schedule
	// Exact is true when Schedule is provably makespan-minimal.
	Exact bool
	// Nodes counts explored search nodes.
	Nodes int
}

// SolveOptimal computes a minimum-makespan schedule by branch and bound
// (the OPT baseline). It returns ErrInfeasible when provably no schedule
// exists.
func SolveOptimal(in *Instance, o OptimalOptions) (*OptimalPlan, error) {
	res, err := opt.Exact(in, opt.Options{Start: o.Start, MaxNodes: o.MaxNodes})
	if err != nil {
		return nil, err
	}
	switch res.Status {
	case opt.StatusInfeasible:
		return nil, ErrInfeasible
	case opt.StatusOptimal:
		return &OptimalPlan{Schedule: res.Schedule, Exact: true, Nodes: res.Nodes}, nil
	default:
		if res.Schedule == nil {
			return nil, ErrInfeasible
		}
		return &OptimalPlan{Schedule: res.Schedule, Exact: false, Nodes: res.Nodes}, nil
	}
}

// OrderReplacementRounds computes the OR baseline: loop-free update rounds
// that ignore capacities and delays (Ludwig et al.), useful for comparison
// and as the paper's Fig. 6-8 straw man.
func OrderReplacementRounds(in *Instance) ([][]NodeID, error) {
	return baseline.ORGreedy(in)
}

// RuleAccounting quantifies flow-table usage for Chronus versus two-phase
// commit on one instance (the paper's Fig. 9 comparison).
type RuleAccounting = baseline.RuleAccounting

// CountRules computes the rule accounting; ingressHosts is the number of
// host prefixes stamped at the ingress under two-phase updates.
func CountRules(in *Instance, ingressHosts int) RuleAccounting {
	return baseline.CountRules(in, ingressHosts)
}

// Fig1Example returns the paper's six-switch running example.
func Fig1Example() *Instance { return topo.Fig1Example() }

// EmulationTopo returns the ten-switch topology used by the emulated
// testbed experiments (the paper's Mininet setup).
func EmulationTopo() *Instance { return topo.EmulationTopo() }

// RandomInstanceParams configures RandomInstance.
type RandomInstanceParams = topo.RandomParams

// DefaultRandomInstanceParams mirrors the paper's simulation workload for a
// given switch count.
func DefaultRandomInstanceParams(n int) RandomInstanceParams {
	return topo.DefaultRandomParams(n)
}

// RandomInstance generates a random two-path update instance (the paper's
// "fixed initial route, random final route" workload).
func RandomInstance(rng *rand.Rand, p RandomInstanceParams) *Instance {
	return topo.RandomInstance(rng, p)
}
