package chronus

import (
	"github.com/chronus-sdn/chronus/internal/controller"
	"github.com/chronus-sdn/chronus/internal/emu"
	"github.com/chronus-sdn/chronus/internal/sim"
	"github.com/chronus-sdn/chronus/internal/timesync"
)

// Emulation and control-plane types, re-exported for building testbeds on
// the public API (see examples/maintenance and cmd/chronusd).
type (
	// Testbed couples the deterministic emulated data plane with its
	// simulation kernel; all access is serialized through it.
	Testbed = controller.Harness
	// Controller speaks the ofp control protocol to switch agents and
	// executes update plans (timed, barrier-paced, two-phase).
	Controller = controller.Controller
	// ControllerOptions configures control-channel latency and timeouts.
	ControllerOptions = controller.Options
	// FlowSpec names a traffic aggregate to provision on the testbed.
	FlowSpec = controller.FlowSpec
	// Sample is one bandwidth measurement from the stats poller.
	Sample = controller.Sample
	// Rate is an emulated traffic rate.
	Rate = emu.Rate
	// SimTime is virtual emulator time (one tick = one millisecond).
	SimTime = sim.Time
	// ClockEnsemble models the per-switch synchronized clocks of a timed
	// SDN, with configurable sync error and drift.
	ClockEnsemble = timesync.Ensemble
	// ClockParams configures a ClockEnsemble.
	ClockParams = timesync.Params
)

// NewTestbed builds an emulated data plane for the topology.
func NewTestbed(g *Network) *Testbed { return controller.NewHarness(g) }

// NewController attaches a controller to the testbed.
func NewController(h *Testbed, o ControllerOptions) *Controller {
	return controller.New(h, o)
}

// NewClockEnsemble builds the per-switch clock model; DefaultClockParams
// corresponds to PTP-grade synchronization (~1 µs error).
func NewClockEnsemble(p ClockParams, nodes []NodeID) *ClockEnsemble {
	return timesync.New(p, nodes)
}

// DefaultClockParams returns PTP-grade clock parameters.
func DefaultClockParams(seed int64) ClockParams { return timesync.DefaultParams(seed) }
