package chronus

import (
	"time"

	"github.com/chronus-sdn/chronus/internal/scheme"
)

// ErrUnknownScheme reports a SolveWith against a name no scheme registered
// under; its message lists the registered names.
var ErrUnknownScheme = scheme.ErrUnknown

// ErrSchemeUnsupported reports that the instance violates a structural
// precondition of the chosen scheme (e.g. the tree check on non-uniform
// link delays); the instance may still be solvable by other schemes.
var ErrSchemeUnsupported = scheme.ErrUnsupported

// Schemes returns the names of every registered update scheme, sorted.
// The built-in cast is the paper's: "chronus" and "chronus-fast" (the
// greedy scheduler in both acceptance modes), "opt" (exact branch and
// bound), "or" (order replacement rounds), "oneshot" (flip everything at
// once), "tree" (the polynomial feasibility decision) and "sequential"
// (one switch per drain interval).
func Schemes() []string { return scheme.Names() }

// SchemeOptions is the uniform configuration SolveWith passes to any
// scheme; knobs that do not apply to the chosen scheme are ignored.
type SchemeOptions struct {
	// Start is t0, the first tick at which updates may activate.
	Start Tick
	// MaxNodes caps search nodes for the branch-and-bound schemes; for
	// "or" a non-zero value (or Timeout) selects round-minimizing search.
	MaxNodes int
	// Timeout bounds wall-clock search time (0 = none).
	Timeout time.Duration
	// MaxTicks caps how far the greedy schedulers advance past Start.
	MaxTicks Tick
	// BestEffort returns a complete schedule even when no violation-free
	// one exists; the result's BestEffort flag is then set.
	BestEffort bool
	// Obs receives engine counters plus a scheme-labelled solve counter.
	Obs *MetricsRegistry
	// Trace receives per-decision engine events.
	Trace *Tracer
	// VT is the virtual time stamped on the solve span.
	VT int64
	// Span is the parent span the solve span is recorded under.
	Span SpanID
	// NoCache disables the cross-request plan and precomputation caches
	// for this solve, forcing a from-scratch engine run.
	NoCache bool
}

// SchemeResult is the uniform outcome of SolveWith. Timed schemes set
// Schedule; round-based schemes set Rounds; decision-only schemes set
// Feasible. Dispatch on the shape, not on the scheme name, and the calling
// code stays correct when new schemes register.
type SchemeResult struct {
	// Schedule is the timed update schedule, when the scheme produces one.
	Schedule *Schedule
	// Rounds is the round sequence of round-based schemes (or the witness
	// order of a feasible tree decision).
	Rounds [][]NodeID
	// Report is the engine's own validation of Schedule when it computed
	// one; nil means call Validate for the certificate.
	Report *Report
	// Exact marks provably optimal (or proven-decision) results.
	Exact bool
	// BestEffort marks a complete-but-possibly-violating schedule.
	BestEffort bool
	// Feasible is the verdict of decision-only schemes; nil otherwise.
	Feasible *bool
	// Diagnostics carries engine counters (search "nodes", greedy
	// "validations", "budget_exhausted", ...) under stable keys.
	Diagnostics map[string]int64
}

// SolveWith runs the named registered scheme on the instance. It returns
// ErrUnknownScheme for unregistered names, ErrInfeasible (possibly
// wrapped) on proven infeasibility, and ErrSchemeUnsupported when the
// instance is outside the scheme's preconditions.
func SolveWith(name string, in *Instance, o SchemeOptions) (*SchemeResult, error) {
	res, err := scheme.Solve(name, in, scheme.Options{
		Start:      o.Start,
		Budget:     scheme.Budget{MaxNodes: o.MaxNodes, Timeout: o.Timeout, MaxTicks: o.MaxTicks},
		BestEffort: o.BestEffort,
		Obs:        o.Obs,
		Trace:      o.Trace,
		VT:         o.VT,
		Span:       o.Span,
		NoCache:    o.NoCache,
	})
	if err != nil {
		return nil, err
	}
	return &SchemeResult{
		Schedule:    res.Schedule,
		Rounds:      res.Rounds,
		Report:      res.Report,
		Exact:       res.Exact,
		BestEffort:  res.BestEffort,
		Feasible:    res.Feasible,
		Diagnostics: res.Diagnostics,
	}, nil
}
