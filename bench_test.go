// Benchmarks regenerating every table and figure of the paper's evaluation
// (Table II, Figs. 6-11) plus the ablations from DESIGN.md. Each benchmark
// runs the corresponding experiment at Quick scale and reports the headline
// quantity of the figure through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's comparisons end to end (use cmd/experiments for
// the full-scale tables). Micro-benchmarks for the scheduler and validator
// follow.
package chronus_test

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	chronus "github.com/chronus-sdn/chronus"
	"github.com/chronus-sdn/chronus/internal/core"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/expt"
	"github.com/chronus-sdn/chronus/internal/topo"
)

const benchSeed = 20170605 // ICDCS'17 week; fixed for reproducibility

func BenchmarkTable2FlowTables(b *testing.B) {
	cfg := expt.Quick(benchSeed)
	for i := 0; i < b.N; i++ {
		res, err := expt.Table2FlowTables(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Source.Rows) == 0 || len(res.Dest.Rows) == 0 {
			b.Fatal("empty flow tables")
		}
	}
}

func BenchmarkFig6BandwidthSeries(b *testing.B) {
	cfg := expt.Quick(benchSeed)
	var orPeak float64
	for i := 0; i < b.N; i++ {
		res, err := expt.Fig6Bandwidth(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Series {
			if s.Scheme == "or" {
				orPeak = s.Peak
			}
		}
	}
	b.ReportMetric(orPeak, "or_peak_mbps")
	b.ReportMetric(float64(topo.EmulationCapacityMbps), "capacity_mbps")
}

func BenchmarkFig7CongestionCases(b *testing.B) {
	cfg := expt.Quick(benchSeed)
	var chr, or float64
	for i := 0; i < b.N; i++ {
		f7, _, err := expt.EvaluateQuality(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := len(f7.Chronus) - 1
		chr, or = f7.Chronus[last].CongestionFreePct, f7.OR[last].CongestionFreePct
	}
	b.ReportMetric(chr, "chronus_free_pct")
	b.ReportMetric(or, "or_free_pct")
}

func BenchmarkFig8CongestedLinks(b *testing.B) {
	cfg := expt.Quick(benchSeed)
	var chr, or float64
	for i := 0; i < b.N; i++ {
		_, f8, err := expt.EvaluateQuality(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := len(f8.Chronus) - 1
		chr, or = f8.Chronus[last].MeanCongestedLinks, f8.OR[last].MeanCongestedLinks
	}
	b.ReportMetric(chr, "chronus_links")
	b.ReportMetric(or, "or_links")
}

func BenchmarkFig9RuleOverhead(b *testing.B) {
	cfg := expt.Quick(benchSeed)
	var savings float64
	for i := 0; i < b.N; i++ {
		res, err := expt.Fig9RuleOverhead(cfg)
		if err != nil {
			b.Fatal(err)
		}
		savings = res.Points[len(res.Points)-1].SavingsPct
	}
	b.ReportMetric(savings, "rule_savings_pct")
}

func BenchmarkFig10RunningTime(b *testing.B) {
	cfg := expt.Quick(benchSeed)
	var chr, opt float64
	for i := 0; i < b.N; i++ {
		res, err := expt.Fig10RunningTime(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		chr, opt = last.Chronus, last.OPT
	}
	b.ReportMetric(chr, "chronus_s")
	b.ReportMetric(opt, "opt_budgeted_s")
}

func BenchmarkFig11UpdateTimeCDF(b *testing.B) {
	cfg := expt.Quick(benchSeed)
	var chrMed, optMed float64
	for i := 0; i < b.N; i++ {
		res, err := expt.Fig11UpdateTimeCDF(cfg)
		if err != nil {
			b.Fatal(err)
		}
		chrMed, optMed = res.Chronus.Inverse(0.5), res.OPT.Inverse(0.5)
	}
	b.ReportMetric(chrMed, "chronus_median_units")
	b.ReportMetric(optMed, "opt_median_units")
}

func BenchmarkAblationClockSkew(b *testing.B) {
	cfg := expt.Quick(benchSeed)
	var safeAt1us, violatedWorst float64
	for i := 0; i < b.N; i++ {
		points, err := expt.AblationClockSkew(cfg)
		if err != nil {
			b.Fatal(err)
		}
		safeAt1us = float64(points[1].Violated)
		violatedWorst = float64(points[len(points)-1].Violated)
	}
	b.ReportMetric(safeAt1us, "violations_at_1us")
	b.ReportMetric(violatedWorst, "violations_at_100ms")
}

func BenchmarkAblationAcceptanceMode(b *testing.B) {
	cfg := expt.Quick(benchSeed)
	cfg.Sizes = []int{20}
	cfg.InstancesPerRun = 10
	var exact, fast float64
	for i := 0; i < b.N; i++ {
		points, err := expt.AblationAcceptanceMode(cfg)
		if err != nil {
			b.Fatal(err)
		}
		exact, fast = points[0].ExactMakespan, points[0].FastMakespan
	}
	b.ReportMetric(exact, "exact_makespan")
	b.ReportMetric(fast, "fast_makespan")
}

func BenchmarkAblationExecutionMode(b *testing.B) {
	cfg := expt.Quick(benchSeed)
	var timed, paced float64
	for i := 0; i < b.N; i++ {
		points, err := expt.AblationExecutionMode(cfg)
		if err != nil {
			b.Fatal(err)
		}
		timed, paced = float64(points[0].UpdateTicks), float64(points[1].UpdateTicks)
	}
	b.ReportMetric(timed, "timed_update_ticks")
	b.ReportMetric(paced, "barrier_paced_ticks")
}

// Parallel-harness variants: the heaviest generators at procs=1 (the
// serial reference path) versus procs=GOMAXPROCS, for measuring the
// fan-out speedup. The rendered tables are byte-identical either way (see
// the determinism tests in internal/expt); only wall-clock changes.

func benchWithProcs(b *testing.B, gen func(cfg expt.Config) error) {
	variants := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		variants = append(variants, n)
	}
	for _, procs := range variants {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			cfg := expt.Quick(benchSeed)
			cfg.Procs = procs
			for i := 0; i < b.N; i++ {
				if err := gen(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParallelEvaluateQuality(b *testing.B) {
	benchWithProcs(b, func(cfg expt.Config) error {
		_, _, err := expt.EvaluateQuality(cfg)
		return err
	})
}

func BenchmarkParallelFig9RuleOverhead(b *testing.B) {
	benchWithProcs(b, func(cfg expt.Config) error {
		_, err := expt.Fig9RuleOverhead(cfg)
		return err
	})
}

func BenchmarkParallelFig11UpdateTimeCDF(b *testing.B) {
	benchWithProcs(b, func(cfg expt.Config) error {
		_, err := expt.Fig11UpdateTimeCDF(cfg)
		return err
	})
}

func BenchmarkParallelAblationClockSkew(b *testing.B) {
	benchWithProcs(b, func(cfg expt.Config) error {
		_, err := expt.AblationClockSkew(cfg)
		return err
	})
}

// BenchmarkSchemesFig1 runs every registered scheme on the Fig. 1 example
// through the registry facade — one sub-benchmark per name, driven by
// chronus.Schemes() so a newly registered scheme is benchmarked without
// touching this file. Infeasible and unsupported outcomes are legitimate
// results for some (scheme, instance) pairs, not benchmark failures.
func BenchmarkSchemesFig1(b *testing.B) {
	for _, name := range chronus.Schemes() {
		b.Run(name, func(b *testing.B) {
			in := chronus.Fig1Example()
			opts := chronus.SchemeOptions{MaxNodes: 200_000}
			for i := 0; i < b.N; i++ {
				_, err := chronus.SolveWith(name, in, opts)
				if err != nil && !errors.Is(err, chronus.ErrInfeasible) && !errors.Is(err, chronus.ErrSchemeUnsupported) {
					b.Fatal(err)
				}
			}
		})
	}
}

// Micro-benchmarks for the core engines.

func benchInstance(n int) *chronus.Instance {
	rng := rand.New(rand.NewSource(benchSeed))
	return topo.RandomInstance(rng, topo.DefaultRandomParams(n))
}

func BenchmarkGreedyExactN40(b *testing.B) {
	in := benchInstance(40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.Greedy(in, core.Options{Mode: core.ModeExact, BestEffort: true})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyFastN40(b *testing.B) {
	in := benchInstance(40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.Greedy(in, core.Options{Mode: core.ModeFast, BestEffort: true})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyFastN1000(b *testing.B) {
	in := benchInstance(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.Greedy(in, core.Options{Mode: core.ModeFast, BestEffort: true})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidateN40(b *testing.B) {
	in := benchInstance(40)
	res, err := core.Greedy(in, core.Options{Mode: core.ModeFast, BestEffort: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dynflow.Validate(in, res.Schedule)
	}
}

func BenchmarkTreeFeasible(b *testing.B) {
	in := chronus.Fig1Example()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.TreeFeasible(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOrderReplacement(b *testing.B) {
	in := benchInstance(40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chronus.OrderReplacementRounds(in); err != nil {
			b.Fatal(err)
		}
	}
}

// Cold/warm benchmarks for the cross-solve caches: the same topology
// solved repeatedly (the chronusd-shaped workload). Cold bypasses every
// cache with NoCache; warm measures the steady state the plan cache
// serves.

func BenchmarkSolveColdN40(b *testing.B) {
	in := benchInstance(40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := chronus.SolveWith("chronus", in, chronus.SchemeOptions{BestEffort: true, NoCache: true})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveWarmN40(b *testing.B) {
	in := benchInstance(40)
	if _, err := chronus.SolveWith("chronus", in, chronus.SchemeOptions{BestEffort: true}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := chronus.SolveWith("chronus", in, chronus.SchemeOptions{BestEffort: true})
		if err != nil {
			b.Fatal(err)
		}
	}
}
