package chronus_test

import (
	"fmt"

	chronus "github.com/chronus-sdn/chronus"
)

// ExampleSolve computes the timed schedule for the paper's six-switch
// running example (Fig. 1) and validates it.
func ExampleSolve() {
	in := chronus.Fig1Example()
	plan, err := chronus.Solve(in, chronus.SolveOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(plan.Schedule.Format(in))
	fmt.Println("makespan:", plan.Schedule.Makespan())
	fmt.Println("ok:", plan.Report.OK())
	// Output:
	// t+0: v2; t+1: v3; t+2: v1,v4; t+3: v5
	// makespan: 3
	// ok: true
}

// ExampleValidate shows the validator rejecting the naive everything-at-
// once update: the reversal loops in-flight packets.
func ExampleValidate() {
	in := chronus.Fig1Example()
	naive := chronus.NewSchedule(0)
	for _, v := range in.UpdateSet() {
		naive.Set(v, 0)
	}
	r := chronus.Validate(in, naive)
	fmt.Println("ok:", r.OK())
	fmt.Println("loops:", len(r.Loops))
	// Output:
	// ok: false
	// loops: 3
}

// ExampleSolveOptimal cross-checks the greedy schedule against the exact
// optimum.
func ExampleSolveOptimal() {
	in := chronus.Fig1Example()
	opt, err := chronus.SolveOptimal(in, chronus.OptimalOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("optimal makespan:", opt.Schedule.Makespan(), "exact:", opt.Exact)
	// Output:
	// optimal makespan: 3 exact: true
}

// ExampleCountRules reproduces the paper's rule-space comparison on the
// running example (Fig. 9's accounting).
func ExampleCountRules() {
	in := chronus.Fig1Example()
	acc := chronus.CountRules(in, 6) // six host prefixes at the ingress
	fmt.Println("chronus peak:", acc.ChronusPeak)
	fmt.Println("two-phase peak:", acc.TPPeak)
	fmt.Printf("savings: %.0f%%\n", acc.TPSavingsPercent())
	// Output:
	// chronus peak: 5
	// two-phase peak: 17
	// savings: 71%
}

// ExampleFeasible runs the polynomial tree algorithm (Algorithm 1) on an
// instance where the new route outruns in-flight traffic on a tight link,
// so no safe schedule exists.
func ExampleFeasible() {
	g := chronus.NewNetwork()
	ids := g.AddNodes("s", "a", "m", "d")
	g.MustAddLink(ids[0], ids[1], 1, 1) // s->a
	g.MustAddLink(ids[1], ids[2], 1, 1) // a->m
	g.MustAddLink(ids[2], ids[3], 1, 1) // m->d (tight, shared)
	g.MustAddLink(ids[0], ids[2], 1, 1) // s->m shortcut
	in := &chronus.Instance{
		G:      g,
		Demand: 1,
		Init:   chronus.Path{ids[0], ids[1], ids[2], ids[3]},
		Fin:    chronus.Path{ids[0], ids[2], ids[3]},
	}
	ok, err := chronus.Feasible(in)
	if err != nil {
		panic(err)
	}
	fmt.Println("feasible:", ok)
	// Output:
	// feasible: false
}
