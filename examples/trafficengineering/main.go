// Traffic engineering: reroute a flow onto a less-utilized path under
// tight capacities (the paper's motivation (2): "to minimize the maximal
// link load, an operator may decide to reroute parts of the traffic along
// different links").
//
// A WAN-style topology carries an aggregate on a short path whose middle
// link must be relieved. The replacement path is longer, shares the egress
// link, and every link is provisioned with no headroom — so update timing
// decides whether the reroute transiently overloads the shared egress.
//
//	go run ./examples/trafficengineering
package main

import (
	"errors"
	"fmt"
	"log"

	chronus "github.com/chronus-sdn/chronus"
)

func main() {
	g := chronus.NewNetwork()
	ids := g.AddNodes("sea", "den", "chi", "dal", "atl", "nyc")
	sea, den, chi, dal, atl, nyc := ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]

	// Current route: sea -> den -> chi -> nyc (den-chi is the hot link).
	g.MustAddLink(sea, den, 10, 12)
	g.MustAddLink(den, chi, 10, 14)
	g.MustAddLink(chi, nyc, 10, 18)
	// Relief route: sea -> dal -> atl -> chi -> nyc, sharing chi -> nyc.
	g.MustAddLink(sea, dal, 10, 20)
	g.MustAddLink(dal, atl, 10, 16)
	g.MustAddLink(atl, chi, 10, 11)

	in := &chronus.Instance{
		G:      g,
		Demand: 10, // the links have zero headroom
		Init:   chronus.Path{sea, den, chi, nyc},
		Fin:    chronus.Path{sea, dal, atl, chi, nyc},
	}
	if err := in.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Traffic engineering reroute (zero-headroom links)")
	fmt.Printf("  old: %s (delay %d ms)\n", in.Init.Format(g), in.Init.Delay(g))
	fmt.Printf("  new: %s (delay %d ms)\n\n", in.Fin.Format(g), in.Fin.Delay(g))

	// Update set: sea flips its next hop, dal and atl need fresh rules.
	fmt.Print("switches needing updates:")
	for _, v := range in.UpdateSet() {
		fmt.Printf(" %s", g.Name(v))
	}
	fmt.Println()

	plan, err := chronus.Solve(in, chronus.SolveOptions{})
	if errors.Is(err, chronus.ErrInfeasible) {
		log.Fatal("no congestion-free reroute exists for this instance")
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chronus schedule: %s\n", plan.Schedule.Format(in))
	fmt.Printf("validation: %s\n\n", plan.Report.Summary())

	// Show why the install order matters: flipping the ingress long before
	// the relief path's rules exist blackholes the aggregate at dal.
	bad := chronus.NewSchedule(0)
	bad.Set(sea, 0)
	bad.Set(dal, 60) // sea's traffic reaches dal at t=20, 40ms too early
	bad.Set(atl, 60)
	r := chronus.Validate(in, bad)
	fmt.Printf("ingress-first straw man: %s\n", r.Summary())

	// Rule accounting vs a two-phase reroute (say 8 customer prefixes at
	// the ingress).
	acc := chronus.CountRules(in, 8)
	fmt.Printf("\nrule space at the transition peak: chronus %d vs two-phase %d (%.0f%% saved)\n",
		acc.ChronusPeak, acc.TPPeak, acc.TPSavingsPercent())
}
