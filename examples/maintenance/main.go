// Maintenance drain: take a router out of service without disturbing the
// traffic riding through it (the paper's motivation (3): "in order to
// replace a faulty router, it may be necessary to temporarily reroute
// traffic").
//
// This example drives the full stack: the ten-switch emulated data plane,
// switch agents with PTP-grade synchronized clocks, the controller speaking
// the ofp protocol, timed FlowMods, and byte-counter monitoring — then
// verifies the drained switch carries nothing and no link ever exceeded
// capacity.
//
//	go run ./examples/maintenance
package main

import (
	"fmt"
	"log"

	chronus "github.com/chronus-sdn/chronus"
)

func main() {
	in := chronus.EmulationTopo()
	fmt.Println("Maintenance drain on the emulated testbed")
	fmt.Printf("  topology: %d switches, %d links, %d Mbps aggregate\n", in.G.NumNodes(), in.G.NumLinks(), in.Demand)
	fmt.Printf("  old route: %s\n", in.Init.Format(in.G))
	fmt.Printf("  new route: %s\n\n", in.Fin.Format(in.G))

	tb := chronus.NewTestbed(in.G)
	ctl := chronus.NewController(tb, chronus.ControllerOptions{Seed: 42})
	clocks := chronus.NewClockEnsemble(chronus.DefaultClockParams(42), in.G.Nodes())
	ctl.AttachAll(clocks)

	flow := chronus.FlowSpec{Name: "agg", Tag: 0, Path: in.Init, Rate: chronus.Rate(in.Demand)}
	if err := ctl.Provision(flow); err != nil {
		log.Fatal(err)
	}
	tb.AdvanceTo(300)
	fmt.Println("flow provisioned; steady state reached at t=300ms")

	// Compute the timed drain schedule and execute it via timed FlowMods.
	plan, err := chronus.Solve(in, chronus.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	start := chronus.Tick(400)
	sched := chronus.NewSchedule(start)
	for v, tv := range plan.Schedule.Times {
		sched.Set(v, start+tv)
	}
	if err := ctl.ExecuteTimed(in, sched, flow); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("timed FlowMods accepted; updates fire at t=%d..%d on the switches' local clocks\n\n", start, sched.End())

	// Watch the drained path's middle link and the relief path during the
	// transition, the way the paper's Fig. 6 does.
	samples, err := ctl.SampleLink(in.Init[4], in.Init[5], 100, 6) // R5 -> R6 on the old route
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bandwidth on old-route link R5->R6 (100 ms counter deltas):")
	for _, s := range samples {
		fmt.Printf("  t=%4dms  %6.1f Mbps\n", s.At, s.Rate)
	}

	tb.AdvanceTo(1200)
	drained := tb.Net.Link(in.Init[4], in.Init[5])
	fmt.Printf("\nafter the update: R5->R6 carries %d Mbps — safe to power R6 down\n", drained.Rate())
	fmt.Printf("transient overloads anywhere: %d ticks; drops: ", tb.Net.TotalOverloadTicks())
	var drops float64
	tb.Do(func() {
		for _, id := range in.G.Nodes() {
			drops += tb.Net.Switch(id).Dropped()
		}
	})
	fmt.Printf("%.0f bytes\n", drops)
	if tb.Net.TotalOverloadTicks() == 0 && drops == 0 {
		fmt.Println("drain completed hitlessly")
	}
}
