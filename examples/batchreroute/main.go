// Batch reroute: migrate several flows across a shared fabric (the
// multi-flow workload of systems like SWAN/zUpdate, composed from Chronus
// single-flow schedules).
//
// Tenant blue evacuates the (m, C) link so tenant red can move onto it.
// The link fits one tenant, so order matters (red first is provably
// infeasible) and timing matters (flipping both at once overloads the link
// while blue's old traffic is still in flight). SolveBatch finds the order
// violation, sequences blue-then-red with drain spacing, and certifies the
// combined plan with the joint validator.
//
//	go run ./examples/batchreroute
package main

import (
	"errors"
	"fmt"
	"log"

	chronus "github.com/chronus-sdn/chronus"
)

func main() {
	g := chronus.NewNetwork()
	ids := g.AddNodes("A", "B", "C", "m", "n", "p")
	a, b, c, m, n, p := ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]

	g.MustAddLink(a, p, 6, 1) // red's initial detour
	g.MustAddLink(p, c, 6, 1)
	g.MustAddLink(a, m, 6, 1) // red's target ingress to the shared link
	g.MustAddLink(m, c, 6, 1) // the contended link: fits one tenant
	g.MustAddLink(b, m, 6, 3) // blue's long initial ingress
	g.MustAddLink(b, n, 6, 1) // blue's evacuation route
	g.MustAddLink(n, c, 6, 1)

	red := chronus.BatchFlow{Name: "tenant-red", Demand: 6,
		Init: chronus.Path{a, p, c},
		Fin:  chronus.Path{a, m, c}}
	blue := chronus.BatchFlow{Name: "tenant-blue", Demand: 6,
		Init: chronus.Path{b, m, c},
		Fin:  chronus.Path{b, n, c}}

	fmt.Println("Batch reroute: blue evacuates (m,C); red moves onto it")
	for _, f := range []chronus.BatchFlow{red, blue} {
		fmt.Printf("  %s: %s -> %s (%d units)\n", f.Name, f.Init.Format(g), f.Fin.Format(g), f.Demand)
	}

	// Red first cannot work: blue still occupies (m, C) entirely.
	_, err := chronus.SolveBatch(g, []chronus.BatchFlow{red, blue}, chronus.BatchOptions{})
	if !errors.Is(err, chronus.ErrInfeasible) {
		log.Fatalf("red-first unexpectedly produced: %v", err)
	}
	fmt.Printf("\nred-first order rejected:\n  %v\n", err)

	// Blue first: evacuate, drain, then move red in.
	plan, err := chronus.SolveBatch(g, []chronus.BatchFlow{blue, red}, chronus.BatchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nblue-first plan:")
	for _, u := range plan.Updates {
		fmt.Printf("  %-12s %s\n", u.Name+":", u.S.Format(u.In))
	}
	fmt.Printf("batch makespan: %d time units\n", plan.Makespan(0))
	fmt.Printf("joint validation: %s\n", plan.Report.Summary())

	// Uncoordinated straw man: both ingresses flip at t0. Blue's in-flight
	// traffic still departs (m, C) for two more ticks while red's new
	// traffic arrives — 12 units on a 6-unit link.
	mk := func(f chronus.BatchFlow, at chronus.Tick) chronus.FlowUpdate {
		in := &chronus.Instance{G: g, Demand: f.Demand, Init: f.Init, Fin: f.Fin}
		s := chronus.NewSchedule(0)
		for _, v := range in.UpdateSet() {
			s.Set(v, at)
		}
		return chronus.FlowUpdate{Name: f.Name, In: in, S: s}
	}
	rpt, err := chronus.ValidateJoint([]chronus.FlowUpdate{mk(red, 0), mk(blue, 0)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nflip-both-at-once straw man: %s\n", rpt.Summary())
}
