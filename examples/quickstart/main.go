// Quickstart: solve the paper's six-switch running example (Fig. 1).
//
// The initial route runs v1→v2→v3→v4→v5→v6 and the final route reverses
// through the interior. Flipping everything at once would loop in-flight
// packets; Chronus computes per-switch activation instants that keep the
// data plane congestion- and loop-free throughout: v2 at t0, v3 at t1,
// {v1, v4} at t2, v5 at t3.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	chronus "github.com/chronus-sdn/chronus"
)

func main() {
	in := chronus.Fig1Example()
	fmt.Println("Chronus quickstart — the paper's Fig. 1 example")
	fmt.Printf("  initial route: %s\n", in.Init.Format(in.G))
	fmt.Printf("  final route:   %s\n", in.Fin.Format(in.G))
	fmt.Printf("  demand %d on unit-capacity, unit-delay links\n\n", in.Demand)

	// The naive approach: flip every switch at once. The validator shows
	// why that is unacceptable.
	naive := chronus.NewSchedule(0)
	for _, v := range in.UpdateSet() {
		naive.Set(v, 0)
	}
	fmt.Printf("flip everything at t0: %s\n\n", chronus.Validate(in, naive).Summary())

	// The Chronus schedule.
	plan, err := chronus.Solve(in, chronus.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chronus schedule: %s\n", plan.Schedule.Format(in))
	fmt.Printf("makespan: %d time units\n", plan.Schedule.Makespan())
	fmt.Printf("validation: %s\n\n", plan.Report.Summary())

	// Cross-check against the exact optimum.
	opt, err := chronus.SolveOptimal(in, chronus.OptimalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal makespan: %d (chronus is optimal here: %v)\n",
		opt.Schedule.Makespan(), opt.Schedule.Makespan() == plan.Schedule.Makespan())
}
