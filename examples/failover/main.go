// Failover: move traffic off a failing link before it dies (the paper's
// motivation (4): "fast network update mechanisms are required to react
// quickly to link failures and determine a failover path").
//
// The aggregate rides the primary path when monitoring reports the (a, b)
// link degrading. The example computes a backup route around it with
// Dijkstra, asks Chronus for a timed migration schedule, validates it,
// applies it, and only then retires the sick link — traffic never touches
// a dead link and never overloads the shared egress.
//
//	go run ./examples/failover
package main

import (
	"errors"
	"fmt"
	"log"

	chronus "github.com/chronus-sdn/chronus"
	"github.com/chronus-sdn/chronus/internal/graph"
)

func main() {
	g := chronus.NewNetwork()
	ids := g.AddNodes("s", "a", "b", "c", "x", "y", "d")
	s, a, b, c, x, y, d := ids[0], ids[1], ids[2], ids[3], ids[4], ids[5], ids[6]

	// Primary path s -> a -> b -> c -> d plus a protection route through
	// x, y that rejoins at c (sharing the egress c -> d, capacity-tight).
	g.MustAddLink(s, a, 5, 2)
	g.MustAddLink(a, b, 5, 2)
	g.MustAddLink(b, c, 5, 2)
	g.MustAddLink(c, d, 5, 2)
	g.MustAddLink(s, x, 5, 3)
	g.MustAddLink(x, y, 5, 3)
	g.MustAddLink(y, c, 5, 3)

	primary := chronus.Path{s, a, b, c, d}
	fmt.Println("Failover away from a degrading link")
	fmt.Printf("  primary route: %s\n", primary.Format(g))
	fmt.Println("  ALARM: link a->b is degrading; migrate before it dies")

	// Find a backup route that avoids the sick link: drop it from a
	// scratch copy of the topology and run Dijkstra.
	scratch := g.Clone()
	scratch.RemoveLink(a, b)
	backup := graph.ShortestPath(scratch, s, d)
	if backup == nil {
		log.Fatal("no backup route avoids the failing link")
	}
	fmt.Printf("  backup route:  %s\n\n", backup.Format(g))

	in := &chronus.Instance{G: g, Demand: 5, Init: primary, Fin: backup}
	if err := in.Validate(); err != nil {
		log.Fatal(err)
	}

	// Chronus computes the timed migration: fresh rules on x and y first
	// (no traffic reaches them yet), then the ingress flip, paced so old
	// in-flight traffic never shares the tight egress with new traffic.
	plan, err := chronus.Solve(in, chronus.SolveOptions{})
	if errors.Is(err, chronus.ErrInfeasible) {
		log.Fatal("no hitless failover schedule exists")
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failover schedule: %s\n", plan.Schedule.Format(in))
	fmt.Printf("validation: %s\n\n", plan.Report.Summary())

	// Compare with panic-mode flipping: the ingress diverts before the
	// backup switches have any rules, blackholing the aggregate at x.
	naive := chronus.NewSchedule(0)
	naive.Set(s, 0)
	naive.Set(x, 20)
	naive.Set(y, 20)
	fmt.Printf("panic-mode straw man: %s\n\n", chronus.Validate(in, naive).Summary())

	// The migration is clean; now the sick link can be retired for real.
	g.RemoveLink(a, b)
	fmt.Println("link a->b retired; traffic already on the backup route")

	// The retired topology still validates the executed schedule's end
	// state: the backup path is intact and within capacity.
	if err := in.Fin.Validate(g); err != nil {
		log.Fatalf("backup route broken after retirement: %v", err)
	}
	fmt.Printf("steady state: %s at %d Mbps, no link above capacity\n", in.Fin.Format(g), in.Demand)
}
