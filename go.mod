module github.com/chronus-sdn/chronus

go 1.22
