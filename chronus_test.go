package chronus_test

import (
	"errors"
	"math/rand"
	"testing"

	chronus "github.com/chronus-sdn/chronus"
)

func TestFacadeSolveFig1(t *testing.T) {
	in := chronus.Fig1Example()
	plan, err := chronus.Solve(in, chronus.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Schedule.Makespan() != 3 {
		t.Fatalf("makespan = %d, want 3", plan.Schedule.Makespan())
	}
	if !plan.Report.OK() {
		t.Fatalf("report: %s", plan.Report.Summary())
	}
	if r := chronus.Validate(in, plan.Schedule); !r.OK() {
		t.Fatalf("validate: %s", r.Summary())
	}
}

func TestFacadeSolveFast(t *testing.T) {
	in := chronus.Fig1Example()
	plan, err := chronus.Solve(in, chronus.SolveOptions{Mode: chronus.ModeFast})
	if err != nil {
		t.Fatal(err)
	}
	if r := chronus.Validate(in, plan.Schedule); !r.OK() {
		t.Fatalf("fast plan violates: %s", r.Summary())
	}
}

func TestFacadeInfeasible(t *testing.T) {
	// The catch-up instance: the new route reaches the shared tight link
	// faster than the old one.
	g := chronus.NewNetwork()
	ids := g.AddNodes("s", "a", "m", "d")
	g.MustAddLink(ids[0], ids[1], 1, 1)
	g.MustAddLink(ids[1], ids[2], 1, 1)
	g.MustAddLink(ids[2], ids[3], 1, 1)
	g.MustAddLink(ids[0], ids[2], 1, 1)
	in := &chronus.Instance{
		G:      g,
		Demand: 1,
		Init:   chronus.Path{ids[0], ids[1], ids[2], ids[3]},
		Fin:    chronus.Path{ids[0], ids[2], ids[3]},
	}
	if _, err := chronus.Solve(in, chronus.SolveOptions{}); !errors.Is(err, chronus.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if ok, err := chronus.Feasible(in); err != nil || ok {
		t.Fatalf("Feasible = %v, %v", ok, err)
	}
	// Best effort still returns a complete (violating) plan.
	plan, err := chronus.Solve(in, chronus.SolveOptions{BestEffort: true})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.BestEffort || plan.Report.OK() {
		t.Fatalf("best-effort plan = %+v", plan)
	}
}

func TestFacadeSolveOptimal(t *testing.T) {
	in := chronus.Fig1Example()
	optPlan, err := chronus.SolveOptimal(in, chronus.OptimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !optPlan.Exact || optPlan.Schedule.Makespan() != 3 {
		t.Fatalf("optimal plan = %+v", optPlan)
	}
}

func TestFacadeBaselines(t *testing.T) {
	in := chronus.Fig1Example()
	rounds, err := chronus.OrderReplacementRounds(in)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range rounds {
		total += len(r)
	}
	if total != 5 {
		t.Fatalf("rounds cover %d switches", total)
	}
	acc := chronus.CountRules(in, 6)
	if acc.TPSavingsPercent() < 60 {
		t.Fatalf("savings = %.1f", acc.TPSavingsPercent())
	}
}

func TestFacadeRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	solved := 0
	for i := 0; i < 20; i++ {
		in := chronus.RandomInstance(rng, chronus.DefaultRandomInstanceParams(12))
		plan, err := chronus.Solve(in, chronus.SolveOptions{Mode: chronus.ModeFast})
		if errors.Is(err, chronus.ErrInfeasible) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		solved++
		if r := chronus.Validate(in, plan.Schedule); !r.OK() {
			t.Fatalf("instance %d: %s", i, r.Summary())
		}
	}
	if solved == 0 {
		t.Fatal("no random instance solved")
	}
}

func TestFacadeTestbed(t *testing.T) {
	in := chronus.EmulationTopo()
	tb := chronus.NewTestbed(in.G)
	c := chronus.NewController(tb, chronus.ControllerOptions{Seed: 1})
	c.AttachAll(chronus.NewClockEnsemble(chronus.DefaultClockParams(1), in.G.Nodes()))
	f := chronus.FlowSpec{Name: "agg", Tag: 0, Path: in.Init, Rate: chronus.Rate(in.Demand)}
	if err := c.Provision(f); err != nil {
		t.Fatal(err)
	}
	tb.AdvanceTo(300)

	plan, err := chronus.Solve(in, chronus.SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := chronus.NewSchedule(400)
	for v, tv := range plan.Schedule.Times {
		s.Set(v, 400+tv)
	}
	if err := c.ExecuteTimed(in, s, f); err != nil {
		t.Fatal(err)
	}
	tb.AdvanceTo(900)
	if tb.Net.CongestedLinks() != 0 {
		t.Fatal("timed execution congested the emulated network")
	}
	samples, err := c.SampleLink(in.Fin[0], in.Fin[1], 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("samples = %d", len(samples))
	}
}

func TestFacadeSolveBatch(t *testing.T) {
	g := chronus.NewNetwork()
	ids := g.AddNodes("s1", "s2", "t1", "t2", "up", "dn")
	s1, s2, t1, t2, up, dn := ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]
	g.MustAddLink(s1, up, 1, 1)
	g.MustAddLink(s2, up, 1, 1)
	g.MustAddLink(s1, dn, 1, 1)
	g.MustAddLink(s2, dn, 1, 1)
	g.MustAddLink(up, t1, 1, 1)
	g.MustAddLink(up, t2, 1, 1)
	g.MustAddLink(dn, t1, 1, 1)
	g.MustAddLink(dn, t2, 1, 1)
	flows := []chronus.BatchFlow{
		{Name: "f1", Demand: 1, Init: chronus.Path{s1, up, t1}, Fin: chronus.Path{s1, dn, t1}},
		{Name: "f2", Demand: 1, Init: chronus.Path{s2, dn, t2}, Fin: chronus.Path{s2, up, t2}},
	}
	plan, err := chronus.SolveBatch(g, flows, chronus.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Report.OK() {
		t.Fatalf("joint report: %s", plan.Report.Summary())
	}
	rpt, err := chronus.ValidateJoint(plan.Updates)
	if err != nil || !rpt.OK() {
		t.Fatalf("re-validation: %v %s", err, rpt.Summary())
	}
}
