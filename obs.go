package chronus

import (
	"github.com/chronus-sdn/chronus/internal/admit"
	"github.com/chronus-sdn/chronus/internal/controller"
	"github.com/chronus-sdn/chronus/internal/core"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/emu"
	"github.com/chronus-sdn/chronus/internal/obs"
	"github.com/chronus-sdn/chronus/internal/scheme"
	"github.com/chronus-sdn/chronus/internal/switchd"
)

// Telemetry types, re-exported so testbeds built on the public API can
// collect metrics and traces (see cmd/chronusd and cmd/mutp -trace).
type (
	// MetricsRegistry holds named counters, gauges and histograms and
	// renders them in the Prometheus text exposition format.
	MetricsRegistry = obs.Registry
	// Tracer records structured events stamped with virtual time; with no
	// wall-clock source configured its output is deterministic for a
	// fixed seed.
	Tracer = obs.Tracer
	// TracerOptions configures a Tracer (wall-clock source, ring size).
	TracerOptions = obs.TracerOptions
	// TraceEvent is one recorded trace event.
	TraceEvent = obs.Event
	// SpanID identifies one span within a tracer's event stream; zero
	// means "no span".
	SpanID = obs.SpanID
	// SpanNode is one reconstructed span in a forest (see BuildSpanForest).
	SpanNode = obs.SpanNode
)

// SpanEventName is the trace event name carrying an encoded span; stream
// consumers that only care about point events can skip events with this
// name.
const SpanEventName = obs.SpanEventName

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewTracer returns a tracer. The zero TracerOptions give a
// deterministic tracer (events carry virtual time only).
func NewTracer(o TracerOptions) *Tracer { return obs.NewTracer(o) }

// BuildSpanForest reconstructs span trees from a tracer's event slice,
// linking controller- and switch-side spans through OFP transaction
// IDs. See the obs package for the linking rules.
func BuildSpanForest(events []TraceEvent) []*SpanNode { return obs.BuildSpanForest(events) }

// RegisterAllMetrics pre-registers every chronus metric family on r —
// scheduler, scheme registry, validator, controller, switch agents and
// data plane — so an exposition is complete before the first event is
// recorded.
func RegisterAllMetrics(r *MetricsRegistry) {
	core.RegisterMetrics(r)
	scheme.RegisterMetrics(r)
	dynflow.RegisterMetrics(r)
	controller.RegisterMetrics(r)
	switchd.RegisterMetrics(r)
	emu.RegisterMetrics(r)
	admit.RegisterMetrics(r)
}
