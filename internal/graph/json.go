package graph

import (
	"encoding/json"
	"fmt"
)

// jsonGraph is the wire form of a Graph used by MarshalJSON/UnmarshalJSON.
// Links reference nodes by name so files remain readable and stable under
// node-ID reassignment.
type jsonGraph struct {
	Nodes []string   `json:"nodes"`
	Links []jsonLink `json:"links"`
}

type jsonLink struct {
	From  string   `json:"from"`
	To    string   `json:"to"`
	Cap   Capacity `json:"capacity"`
	Delay Delay    `json:"delay"`
}

// MarshalJSON encodes the graph with node names and per-link capacity/delay.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Nodes: append([]string(nil), g.names...)}
	for _, l := range g.Links() {
		jg.Links = append(jg.Links, jsonLink{
			From:  g.Name(l.From),
			To:    g.Name(l.To),
			Cap:   l.Cap,
			Delay: l.Delay,
		})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph previously encoded by MarshalJSON.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("graph: decode: %w", err)
	}
	*g = *New()
	for _, n := range jg.Nodes {
		g.AddNode(n)
	}
	for _, l := range jg.Links {
		from := g.Lookup(l.From)
		to := g.Lookup(l.To)
		if from == Invalid || to == Invalid {
			return fmt.Errorf("graph: link %s->%s references unknown node", l.From, l.To)
		}
		if err := g.AddLink(from, to, l.Cap, l.Delay); err != nil {
			return err
		}
	}
	return nil
}

// PathByNames resolves a path given node names; it fails fast on unknown
// names but does not validate connectivity (call Path.Validate).
func (g *Graph) PathByNames(names ...string) (Path, error) {
	p := make(Path, len(names))
	for i, n := range names {
		id := g.Lookup(n)
		if id == Invalid {
			return nil, fmt.Errorf("%w: %q", ErrUnknownNode, n)
		}
		p[i] = id
	}
	return p, nil
}
