package graph

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildLine(t *testing.T, n int) (*Graph, []NodeID) {
	t.Helper()
	g := New()
	ids := make([]NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddNode(nodeName(i))
	}
	for i := 0; i+1 < n; i++ {
		g.MustAddLink(ids[i], ids[i+1], 10, 1)
	}
	return g, ids
}

func nodeName(i int) string {
	return "v" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("a")
	if a != b {
		t.Fatalf("AddNode twice gave %d and %d", a, b)
	}
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
}

func TestAddLinkErrors(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	if err := g.AddLink(a, b, 5, 1); err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	if err := g.AddLink(a, b, 5, 1); err == nil {
		t.Fatal("duplicate link accepted")
	}
	if err := g.AddLink(a, a, 5, 1); err == nil {
		t.Fatal("self loop accepted")
	}
	if err := g.AddLink(a, b+10, 5, 1); err == nil {
		t.Fatal("unknown node accepted")
	}
	if err := g.AddLink(a, b, 0, 1); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if err := g.AddLink(b, a, 5, -1); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestLinkLookup(t *testing.T) {
	g, ids := buildLine(t, 3)
	l, ok := g.Link(ids[0], ids[1])
	if !ok {
		t.Fatal("link 0->1 missing")
	}
	if l.Cap != 10 || l.Delay != 1 {
		t.Fatalf("link attrs = %+v", l)
	}
	if _, ok := g.Link(ids[1], ids[0]); ok {
		t.Fatal("reverse link should not exist")
	}
}

func TestRemoveLink(t *testing.T) {
	g, ids := buildLine(t, 4)
	if !g.RemoveLink(ids[1], ids[2]) {
		t.Fatal("RemoveLink returned false for existing link")
	}
	if g.RemoveLink(ids[1], ids[2]) {
		t.Fatal("RemoveLink returned true for missing link")
	}
	if _, ok := g.Link(ids[1], ids[2]); ok {
		t.Fatal("link still present after removal")
	}
	if g.NumLinks() != 2 {
		t.Fatalf("NumLinks = %d, want 2", g.NumLinks())
	}
	// Remaining links still resolvable through every accessor.
	for _, pair := range [][2]NodeID{{ids[0], ids[1]}, {ids[2], ids[3]}} {
		if _, ok := g.Link(pair[0], pair[1]); !ok {
			t.Fatalf("link %v lost after unrelated removal", pair)
		}
	}
	if len(g.Out(ids[1])) != 0 {
		t.Fatalf("Out(v1) = %v, want empty", g.Out(ids[1]))
	}
	if len(g.In(ids[2])) != 0 {
		t.Fatalf("In(v2) = %v, want empty", g.In(ids[2]))
	}
}

func TestSetCapacityAndDelay(t *testing.T) {
	g, ids := buildLine(t, 2)
	if err := g.SetCapacity(ids[0], ids[1], 42); err != nil {
		t.Fatalf("SetCapacity: %v", err)
	}
	if err := g.SetDelay(ids[0], ids[1], 7); err != nil {
		t.Fatalf("SetDelay: %v", err)
	}
	l, _ := g.Link(ids[0], ids[1])
	if l.Cap != 42 || l.Delay != 7 {
		t.Fatalf("link = %+v", l)
	}
	// Adjacency views must observe the change too.
	if got := g.Out(ids[0])[0]; got.Cap != 42 || got.Delay != 7 {
		t.Fatalf("Out view stale: %+v", got)
	}
	if got := g.In(ids[1])[0]; got.Cap != 42 || got.Delay != 7 {
		t.Fatalf("In view stale: %+v", got)
	}
	if err := g.SetCapacity(ids[1], ids[0], 1); err == nil {
		t.Fatal("SetCapacity on missing link succeeded")
	}
	if err := g.SetDelay(ids[0], ids[1], -2); err == nil {
		t.Fatal("negative delay accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g, ids := buildLine(t, 3)
	c := g.Clone()
	if err := c.SetCapacity(ids[0], ids[1], 99); err != nil {
		t.Fatalf("SetCapacity on clone: %v", err)
	}
	orig, _ := g.Link(ids[0], ids[1])
	if orig.Cap != 10 {
		t.Fatalf("clone mutation leaked into original: cap=%d", orig.Cap)
	}
	c.AddNode("extra")
	if g.NumNodes() != 3 {
		t.Fatalf("clone AddNode leaked: n=%d", g.NumNodes())
	}
}

func TestPathValidate(t *testing.T) {
	g, ids := buildLine(t, 4)
	p := Path{ids[0], ids[1], ids[2], ids[3]}
	if err := p.Validate(g); err != nil {
		t.Fatalf("valid path rejected: %v", err)
	}
	if err := (Path{ids[0]}).Validate(g); err == nil {
		t.Fatal("single-node path accepted")
	}
	if err := (Path{ids[0], ids[2]}).Validate(g); err == nil {
		t.Fatal("disconnected hop accepted")
	}
	if err := (Path{ids[0], ids[1], ids[0]}).Validate(g); err == nil {
		t.Fatal("non-simple path accepted")
	}
}

func TestPathAccessors(t *testing.T) {
	g, ids := buildLine(t, 5)
	p := Path{ids[0], ids[1], ids[2], ids[3], ids[4]}
	if p.Source() != ids[0] || p.Dest() != ids[4] {
		t.Fatalf("source/dest = %d/%d", p.Source(), p.Dest())
	}
	if p.NextHop(ids[1]) != ids[2] {
		t.Fatalf("NextHop(v1) = %d", p.NextHop(ids[1]))
	}
	if p.NextHop(ids[4]) != Invalid {
		t.Fatal("NextHop(dest) should be Invalid")
	}
	if p.PrevHop(ids[1]) != ids[0] {
		t.Fatalf("PrevHop(v1) = %d", p.PrevHop(ids[1]))
	}
	if p.PrevHop(ids[0]) != Invalid {
		t.Fatal("PrevHop(src) should be Invalid")
	}
	if got := p.Delay(g); got != 4 {
		t.Fatalf("Delay = %d, want 4", got)
	}
	if got := p.SuffixDelay(g, ids[2]); got != 2 {
		t.Fatalf("SuffixDelay(v2) = %d, want 2", got)
	}
	if got := p.SuffixDelay(g, NodeID(77)); got != -1 {
		t.Fatalf("SuffixDelay(absent) = %d, want -1", got)
	}
	if got := p.MinCapacity(g); got != 10 {
		t.Fatalf("MinCapacity = %d, want 10", got)
	}
	if got := len(p.Links(g)); got != 4 {
		t.Fatalf("Links count = %d, want 4", got)
	}
	if !p.Equal(p.Clone()) {
		t.Fatal("Clone not Equal")
	}
	if p.Equal(p[:3]) {
		t.Fatal("different lengths Equal")
	}
}

func TestUnionNodes(t *testing.T) {
	p := Path{0, 1, 2, 3}
	q := Path{0, 3, 2, 5}
	got := UnionNodes(p, q)
	want := []NodeID{0, 1, 2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("UnionNodes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("UnionNodes = %v, want %v", got, want)
		}
	}
}

func TestShortestPathLine(t *testing.T) {
	g, ids := buildLine(t, 6)
	p := ShortestPath(g, ids[0], ids[5])
	if p == nil || len(p) != 6 {
		t.Fatalf("ShortestPath = %v", p)
	}
	if ShortestPath(g, ids[5], ids[0]) != nil {
		t.Fatal("found path against link direction")
	}
}

func TestShortestPathPrefersLowDelay(t *testing.T) {
	g := New()
	a, b, c, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d")
	g.MustAddLink(a, b, 1, 1)
	g.MustAddLink(b, d, 1, 1)
	g.MustAddLink(a, c, 1, 5)
	g.MustAddLink(c, d, 1, 5)
	p := ShortestPath(g, a, d)
	if !p.Equal(Path{a, b, d}) {
		t.Fatalf("ShortestPath = %v, want a->b->d", p)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g, ids := buildLine(t, 4)
	g.MustAddLink(ids[3], ids[0], 7, 3)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumLinks() != g.NumLinks() {
		t.Fatalf("round trip changed size: %v vs %v", &back, g)
	}
	for _, l := range g.Links() {
		bl, ok := back.Link(back.Lookup(g.Name(l.From)), back.Lookup(g.Name(l.To)))
		if !ok || bl.Cap != l.Cap || bl.Delay != l.Delay {
			t.Fatalf("link %s->%s lost in round trip", g.Name(l.From), g.Name(l.To))
		}
	}
}

func TestPathByNames(t *testing.T) {
	g, _ := buildLine(t, 3)
	p, err := g.PathByNames("v00", "v01", "v02")
	if err != nil {
		t.Fatalf("PathByNames: %v", err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatalf("resolved path invalid: %v", err)
	}
	if _, err := g.PathByNames("v00", "nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestDOTHighlightsPaths(t *testing.T) {
	g, ids := buildLine(t, 3)
	g.MustAddLink(ids[0], ids[2], 10, 1)
	dot := g.DOT(Path{ids[0], ids[1], ids[2]}, Path{ids[0], ids[2]})
	for _, want := range []string{"digraph", "blue", "dashed"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

// TestShortestPathProperty checks on random DAG-ish graphs that the returned
// path validates and connects src to dst.
func TestShortestPathProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		g := New()
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = g.AddNode(nodeName(i))
		}
		// Guarantee a spine, then add random forward links.
		for i := 0; i+1 < n; i++ {
			g.MustAddLink(ids[i], ids[i+1], 1, Delay(1+rng.Intn(4)))
		}
		for k := 0; k < n; k++ {
			i := rng.Intn(n - 1)
			j := i + 1 + rng.Intn(n-i-1)
			if _, ok := g.Link(ids[i], ids[j]); !ok {
				g.MustAddLink(ids[i], ids[j], 1, Delay(1+rng.Intn(4)))
			}
		}
		p := ShortestPath(g, ids[0], ids[n-1])
		if p == nil {
			return false
		}
		if p.Source() != ids[0] || p.Dest() != ids[n-1] {
			return false
		}
		return p.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
