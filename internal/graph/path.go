package graph

import (
	"errors"
	"fmt"
	"strings"
)

// Path is a sequence of nodes connected by links in a Graph. A valid path is
// simple (no repeated node).
type Path []NodeID

// ErrNotSimple is returned by Validate for a path that repeats a node.
var ErrNotSimple = errors.New("graph: path is not simple")

// ErrNoLink is returned by Validate when consecutive path nodes are not
// connected.
var ErrNoLink = errors.New("graph: path uses missing link")

// Validate checks that p is a simple path in g with at least two nodes.
func (p Path) Validate(g *Graph) error {
	if len(p) < 2 {
		return fmt.Errorf("graph: path too short (%d nodes)", len(p))
	}
	seen := make(map[NodeID]struct{}, len(p))
	for i, v := range p {
		if !g.HasNode(v) {
			return fmt.Errorf("%w: node %d", ErrUnknownNode, v)
		}
		if _, dup := seen[v]; dup {
			return fmt.Errorf("%w: node %s repeats", ErrNotSimple, g.Name(v))
		}
		seen[v] = struct{}{}
		if i > 0 {
			if _, ok := g.Link(p[i-1], v); !ok {
				return fmt.Errorf("%w: %s->%s", ErrNoLink, g.Name(p[i-1]), g.Name(v))
			}
		}
	}
	return nil
}

// Source returns the first node of the path.
func (p Path) Source() NodeID {
	if len(p) == 0 {
		return Invalid
	}
	return p[0]
}

// Dest returns the last node of the path.
func (p Path) Dest() NodeID {
	if len(p) == 0 {
		return Invalid
	}
	return p[len(p)-1]
}

// Contains reports whether v occurs on the path.
func (p Path) Contains(v NodeID) bool {
	return p.Index(v) >= 0
}

// Index returns the position of v on the path, or -1.
func (p Path) Index(v NodeID) int {
	for i, u := range p {
		if u == v {
			return i
		}
	}
	return -1
}

// NextHop returns the successor of v on the path, or Invalid if v is the
// last node or absent.
func (p Path) NextHop(v NodeID) NodeID {
	i := p.Index(v)
	if i < 0 || i == len(p)-1 {
		return Invalid
	}
	return p[i+1]
}

// PrevHop returns the predecessor of v on the path, or Invalid.
func (p Path) PrevHop(v NodeID) NodeID {
	i := p.Index(v)
	if i <= 0 {
		return Invalid
	}
	return p[i-1]
}

// Delay returns the total propagation delay φ(p) along the path. It panics
// if the path uses a missing link; call Validate first.
func (p Path) Delay(g *Graph) Delay {
	var total Delay
	for i := 1; i < len(p); i++ {
		l, ok := g.Link(p[i-1], p[i])
		if !ok {
			panic(fmt.Sprintf("graph: path uses missing link %s->%s", g.Name(p[i-1]), g.Name(p[i])))
		}
		total += l.Delay
	}
	return total
}

// SuffixDelay returns the delay from v to the end of the path, or -1 if v is
// not on the path.
func (p Path) SuffixDelay(g *Graph, v NodeID) Delay {
	i := p.Index(v)
	if i < 0 {
		return -1
	}
	return Path(p[i:]).Delay(g)
}

// MinCapacity returns the bottleneck capacity along the path.
func (p Path) MinCapacity(g *Graph) Capacity {
	var min Capacity = -1
	for i := 1; i < len(p); i++ {
		l, ok := g.Link(p[i-1], p[i])
		if !ok {
			panic(fmt.Sprintf("graph: path uses missing link %s->%s", g.Name(p[i-1]), g.Name(p[i])))
		}
		if min < 0 || l.Cap < min {
			min = l.Cap
		}
	}
	return min
}

// Links returns the links of the path in order.
func (p Path) Links(g *Graph) []Link {
	out := make([]Link, 0, len(p)-1)
	for i := 1; i < len(p); i++ {
		l, ok := g.Link(p[i-1], p[i])
		if !ok {
			panic(fmt.Sprintf("graph: path uses missing link %s->%s", g.Name(p[i-1]), g.Name(p[i])))
		}
		out = append(out, l)
	}
	return out
}

// Equal reports whether p and q are the same node sequence.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the path.
func (p Path) Clone() Path { return append(Path(nil), p...) }

// String renders the path with node IDs, e.g. "0->3->5".
func (p Path) String() string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, "->")
}

// Format renders the path with node names from g.
func (p Path) Format(g *Graph) string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = g.Name(v)
	}
	return strings.Join(parts, "->")
}

func (p Path) linkSet() map[[2]NodeID]bool {
	s := make(map[[2]NodeID]bool, len(p))
	for i := 1; i < len(p); i++ {
		s[[2]NodeID{p[i-1], p[i]}] = true
	}
	return s
}

// UnionNodes returns the set of nodes on either path, in deterministic order
// (p's order first, then q's new nodes).
func UnionNodes(p, q Path) []NodeID {
	seen := make(map[NodeID]struct{}, len(p)+len(q))
	var out []NodeID
	for _, v := range p {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	for _, v := range q {
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	return out
}

// ShortestPath returns a minimum-delay path from src to dst using Dijkstra
// over link delays, or nil if dst is unreachable. Ties are broken by node ID
// for determinism.
func ShortestPath(g *Graph, src, dst NodeID) Path {
	const inf = int64(1) << 62
	n := g.NumNodes()
	dist := make([]int64, n)
	prev := make([]NodeID, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = inf
		prev[i] = Invalid
	}
	if !g.HasNode(src) || !g.HasNode(dst) {
		return nil
	}
	dist[src] = 0
	for {
		// Linear extraction: graphs here are small or sparse enough that a
		// heap is not worth the dependency on container/heap ordering.
		u := Invalid
		best := inf
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				best = dist[i]
				u = NodeID(i)
			}
		}
		if u == Invalid {
			break
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, l := range g.Out(u) {
			nd := dist[u] + int64(l.Delay) + 1 // +1 biases toward fewer hops on zero-delay links
			if nd < dist[l.To] || (nd == dist[l.To] && prev[l.To] > u) {
				dist[l.To] = nd
				prev[l.To] = u
			}
		}
	}
	if prev[dst] == Invalid && src != dst {
		return nil
	}
	var rev Path
	for v := dst; v != Invalid; v = prev[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	if rev[len(rev)-1] != src {
		return nil
	}
	out := make(Path, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}
