package graph

// Fingerprint is a canonical hash of a graph's structure: node count plus
// every link's endpoints, capacity and delay, folded in adjacency order.
// Two graphs with the same fingerprint have (up to a hash collision) the
// same topology, capacities and delays — exactly the pair the solver
// precomputation caches are keyed by. Node names are deliberately
// excluded: renaming switches changes no scheduling decision.
//
// The fold is FNV-1a over a fixed traversal (per node, per out-link), so
// the value is stable across processes and runs and any capacity or delay
// edit — including SetCapacity/SetDelay in place — changes it.
func (g *Graph) Fingerprint() uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	mix := func(v int64) {
		h ^= uint64(v)
		h *= 1099511628211 // FNV prime
	}
	mix(int64(g.NumNodes()))
	for i := 0; i < g.NumNodes(); i++ {
		for _, l := range g.Out(NodeID(i)) {
			mix(int64(l.From))
			mix(int64(l.To))
			mix(int64(l.Cap))
			mix(int64(l.Delay))
		}
	}
	return h
}

// PathFingerprint folds a node sequence into a canonical hash, seeded so
// that an empty path hashes differently from an absent one. It extends a
// graph fingerprint into a full instance key (topology + migration pair).
func PathFingerprint(p Path) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v int64) {
		h ^= uint64(v)
		h *= 1099511628211
	}
	mix(int64(len(p)))
	for _, v := range p {
		mix(int64(v))
	}
	return h
}
