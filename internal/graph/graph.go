// Package graph provides the directed network model used throughout Chronus:
// switches (nodes), capacitated links with integer propagation delays, and
// simple paths. It is the common substrate for the dynamic-flow validator,
// the schedulers, and the data-plane emulator.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a switch. IDs are dense small integers assigned by the
// Graph builder; the zero value is a valid node once added.
type NodeID int

// Invalid is returned by lookups that find no node.
const Invalid NodeID = -1

// Delay is a link propagation delay in discrete ticks.
type Delay int64

// Capacity is a link capacity in demand units (e.g. Mbps).
type Capacity int64

// Link is a directed capacitated edge with a propagation delay.
type Link struct {
	From  NodeID
	To    NodeID
	Cap   Capacity
	Delay Delay
}

// Graph is a directed graph of switches and links. Node names are unique;
// at most one link may exist per ordered (from, to) pair. The zero value is
// an empty graph ready for use.
type Graph struct {
	names   []string
	byName  map[string]NodeID
	out     [][]Link // adjacency by source node
	in      [][]Link // reverse adjacency by destination node
	linkIdx map[[2]NodeID]int
	links   []Link
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		byName:  make(map[string]NodeID),
		linkIdx: make(map[[2]NodeID]int),
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New()
	c.names = append([]string(nil), g.names...)
	for name, id := range g.byName {
		c.byName[name] = id
	}
	c.out = make([][]Link, len(g.out))
	for i, ls := range g.out {
		c.out[i] = append([]Link(nil), ls...)
	}
	c.in = make([][]Link, len(g.in))
	for i, ls := range g.in {
		c.in[i] = append([]Link(nil), ls...)
	}
	for k, v := range g.linkIdx {
		c.linkIdx[k] = v
	}
	c.links = append([]Link(nil), g.links...)
	return c
}

// AddNode adds a node with the given name and returns its ID. Adding an
// existing name returns the existing ID.
func (g *Graph) AddNode(name string) NodeID {
	if g.byName == nil {
		g.byName = make(map[string]NodeID)
		g.linkIdx = make(map[[2]NodeID]int)
	}
	if id, ok := g.byName[name]; ok {
		return id
	}
	id := NodeID(len(g.names))
	g.names = append(g.names, name)
	g.byName[name] = id
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return id
}

// AddNodes adds all names in order and returns their IDs.
func (g *Graph) AddNodes(names ...string) []NodeID {
	ids := make([]NodeID, len(names))
	for i, n := range names {
		ids[i] = g.AddNode(n)
	}
	return ids
}

// ErrDuplicateLink is returned when a link between an ordered node pair
// already exists.
var ErrDuplicateLink = errors.New("graph: duplicate link")

// ErrUnknownNode is returned when an endpoint has not been added.
var ErrUnknownNode = errors.New("graph: unknown node")

// AddLink adds a directed link. Capacity must be positive and delay
// non-negative.
func (g *Graph) AddLink(from, to NodeID, cap Capacity, delay Delay) error {
	if !g.HasNode(from) || !g.HasNode(to) {
		return fmt.Errorf("%w: link %d->%d", ErrUnknownNode, from, to)
	}
	if from == to {
		return fmt.Errorf("graph: self-loop on node %s", g.Name(from))
	}
	if cap <= 0 {
		return fmt.Errorf("graph: non-positive capacity %d on %s->%s", cap, g.Name(from), g.Name(to))
	}
	if delay < 0 {
		return fmt.Errorf("graph: negative delay %d on %s->%s", delay, g.Name(from), g.Name(to))
	}
	key := [2]NodeID{from, to}
	if _, ok := g.linkIdx[key]; ok {
		return fmt.Errorf("%w: %s->%s", ErrDuplicateLink, g.Name(from), g.Name(to))
	}
	l := Link{From: from, To: to, Cap: cap, Delay: delay}
	g.linkIdx[key] = len(g.links)
	g.links = append(g.links, l)
	g.out[from] = append(g.out[from], l)
	g.in[to] = append(g.in[to], l)
	return nil
}

// MustAddLink is AddLink but panics on error; intended for tests and
// hand-built fixtures.
func (g *Graph) MustAddLink(from, to NodeID, cap Capacity, delay Delay) {
	if err := g.AddLink(from, to, cap, delay); err != nil {
		panic(err)
	}
}

// AddBiLink adds links in both directions with the same capacity and delay.
func (g *Graph) AddBiLink(a, b NodeID, cap Capacity, delay Delay) error {
	if err := g.AddLink(a, b, cap, delay); err != nil {
		return err
	}
	return g.AddLink(b, a, cap, delay)
}

// RemoveLink deletes the link (from, to) if present and reports whether a
// link was removed. Used by failure-injection scenarios.
func (g *Graph) RemoveLink(from, to NodeID) bool {
	key := [2]NodeID{from, to}
	idx, ok := g.linkIdx[key]
	if !ok {
		return false
	}
	delete(g.linkIdx, key)
	// Remove from the flat slice by swapping with the last element.
	last := len(g.links) - 1
	if idx != last {
		moved := g.links[last]
		g.links[idx] = moved
		g.linkIdx[[2]NodeID{moved.From, moved.To}] = idx
	}
	g.links = g.links[:last]
	g.out[from] = removeLinkTo(g.out[from], to)
	g.in[to] = removeLinkFrom(g.in[to], from)
	return true
}

func removeLinkTo(ls []Link, to NodeID) []Link {
	for i, l := range ls {
		if l.To == to {
			return append(ls[:i], ls[i+1:]...)
		}
	}
	return ls
}

func removeLinkFrom(ls []Link, from NodeID) []Link {
	for i, l := range ls {
		if l.From == from {
			return append(ls[:i], ls[i+1:]...)
		}
	}
	return ls
}

// SetCapacity updates the capacity of an existing link.
func (g *Graph) SetCapacity(from, to NodeID, cap Capacity) error {
	idx, ok := g.linkIdx[[2]NodeID{from, to}]
	if !ok {
		return fmt.Errorf("graph: no link %s->%s", g.Name(from), g.Name(to))
	}
	if cap <= 0 {
		return fmt.Errorf("graph: non-positive capacity %d", cap)
	}
	g.links[idx].Cap = cap
	g.syncAdjacency(from, to, g.links[idx])
	return nil
}

// SetDelay updates the delay of an existing link.
func (g *Graph) SetDelay(from, to NodeID, delay Delay) error {
	idx, ok := g.linkIdx[[2]NodeID{from, to}]
	if !ok {
		return fmt.Errorf("graph: no link %s->%s", g.Name(from), g.Name(to))
	}
	if delay < 0 {
		return fmt.Errorf("graph: negative delay %d", delay)
	}
	g.links[idx].Delay = delay
	g.syncAdjacency(from, to, g.links[idx])
	return nil
}

func (g *Graph) syncAdjacency(from, to NodeID, l Link) {
	for i := range g.out[from] {
		if g.out[from][i].To == to {
			g.out[from][i] = l
		}
	}
	for i := range g.in[to] {
		if g.in[to][i].From == from {
			g.in[to][i] = l
		}
	}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumLinks returns the number of links.
func (g *Graph) NumLinks() int { return len(g.links) }

// HasNode reports whether id names a node of g.
func (g *Graph) HasNode(id NodeID) bool { return id >= 0 && int(id) < len(g.names) }

// Name returns the name for id, or "?" if unknown.
func (g *Graph) Name(id NodeID) string {
	if !g.HasNode(id) {
		return "?"
	}
	return g.names[id]
}

// Lookup returns the node with the given name, or Invalid.
func (g *Graph) Lookup(name string) NodeID {
	if id, ok := g.byName[name]; ok {
		return id
	}
	return Invalid
}

// Link returns the link (from, to) and whether it exists.
func (g *Graph) Link(from, to NodeID) (Link, bool) {
	idx, ok := g.linkIdx[[2]NodeID{from, to}]
	if !ok {
		return Link{}, false
	}
	return g.links[idx], true
}

// Out returns the outgoing links of v. The slice must not be modified.
func (g *Graph) Out(v NodeID) []Link {
	if !g.HasNode(v) {
		return nil
	}
	return g.out[v]
}

// In returns the incoming links of v. The slice must not be modified.
func (g *Graph) In(v NodeID) []Link {
	if !g.HasNode(v) {
		return nil
	}
	return g.in[v]
}

// Links returns a copy of all links, ordered deterministically by
// (from, to).
func (g *Graph) Links() []Link {
	ls := append([]Link(nil), g.links...)
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].From != ls[j].From {
			return ls[i].From < ls[j].From
		}
		return ls[i].To < ls[j].To
	})
	return ls
}

// Nodes returns all node IDs in ascending order.
func (g *Graph) Nodes() []NodeID {
	ids := make([]NodeID, len(g.names))
	for i := range ids {
		ids[i] = NodeID(i)
	}
	return ids
}

// String renders a compact description, e.g. "graph{n=6 m=7}".
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.NumNodes(), g.NumLinks())
}

// DOT renders the graph in Graphviz DOT format, optionally highlighting two
// paths (for example the initial and final routing) in distinct styles.
func (g *Graph) DOT(initial, final Path) string {
	onInit := initial.linkSet()
	onFin := final.linkSet()
	var b strings.Builder
	b.WriteString("digraph G {\n  rankdir=LR;\n")
	for _, id := range g.Nodes() {
		fmt.Fprintf(&b, "  %q;\n", g.Name(id))
	}
	for _, l := range g.Links() {
		attr := ""
		key := [2]NodeID{l.From, l.To}
		switch {
		case onInit[key] && onFin[key]:
			attr = ` [color="red" style="bold"]`
		case onInit[key]:
			attr = ` [color="blue"]`
		case onFin[key]:
			attr = ` [color="green" style="dashed"]`
		}
		fmt.Fprintf(&b, "  %q -> %q%s; // cap=%d delay=%d\n",
			g.Name(l.From), g.Name(l.To), attr, l.Cap, l.Delay)
	}
	b.WriteString("}\n")
	return b.String()
}
