package timesync_test

import (
	"math/rand"
	"testing"

	"github.com/chronus-sdn/chronus/internal/clock"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/obs"
	"github.com/chronus-sdn/chronus/internal/sim"
	"github.com/chronus-sdn/chronus/internal/timesync"
)

// applyEvent mirrors the sw.apply point event switchd emits for a timed
// fire: the estimator's only offset signal.
func applyEvent(seq uint64, sw string, at, skew int64) obs.Event {
	return obs.Event{
		Seq: seq, VT: at + skew, Name: "sw.apply",
		Attrs: []obs.Attr{
			obs.A("switch", sw), obs.A("skew", skew), obs.A("at", at),
			obs.A("key", "f/0"), obs.A("cmd", "mod"),
		},
	}
}

// feed schedules fires at the given reference ticks, maps each through the
// ensemble's skewed clock, and feeds the resulting (at, skew) pairs plus
// optional per-sample noise ticks into a fresh estimator.
func feed(t *testing.T, ens *timesync.Ensemble, v graph.NodeID, ats []int64, noise []int64) *clock.Estimator {
	t.Helper()
	est := clock.New(nil)
	for i, at := range ats {
		actual := int64(ens.ApplyTick(v, sim.Time(at)))
		if noise != nil {
			actual += noise[i]
		}
		est.Observe([]obs.Event{applyEvent(uint64(i+1), "R1", at, actual-at)})
	}
	return est
}

// TestEstimatorConvergesToInjectedDrift pins a known drift rate on one
// switch clock and checks the estimator's slope converges to it: a local
// clock running fast by d ppb fires early by d*T/1e9 ticks at reference
// tick T, i.e. a skew slope of -d/1000 mticks per ktick.
func TestEstimatorConvergesToInjectedDrift(t *testing.T) {
	v := graph.NodeID(3)
	ens := timesync.New(timesync.Params{
		Seed:           1,
		SyncIntervalNs: 1 << 60, // one epoch: offset stays linear in time
		SyncErrorNs:    0,
		DriftPPB:       0,
	}, []graph.NodeID{v})
	const driftPPB = 5_000_000 // 5000 ppm, exaggerated so ticks resolve it
	ens.SetDrift(v, driftPPB)
	if got := ens.Drift(v); got != driftPPB {
		t.Fatalf("Drift = %d, want %d", got, driftPPB)
	}

	ats := make([]int64, clock.Window)
	for i := range ats {
		ats[i] = int64(1000 + 100*i)
	}
	est := feed(t, ens, v, ats, nil)

	sc, ok := est.Estimate("R1")
	if !ok {
		t.Fatal("no estimate")
	}
	// Expected slope -5000 mticks/ktick; tick rounding and the 1/(1+d/1e9)
	// correction keep the fit within +-500.
	const want = -driftPPB / 1000
	if sc.DriftMilliTicksPerKtick < want-500 || sc.DriftMilliTicksPerKtick > want+500 {
		t.Errorf("drift = %d mticks/ktick, want %d +- 500", sc.DriftMilliTicksPerKtick, want)
	}
	// A fast clock fires early: every skew is negative, so the offset
	// estimate must be firmly negative too.
	if sc.OffsetMilliTicks >= 0 {
		t.Errorf("offset = %d mticks, want < 0 for a fast clock", sc.OffsetMilliTicks)
	}
	// The prediction must extrapolate the trend: farther horizon, larger
	// worst-case skew bound.
	near, _ := est.PredictSkew("R1", 5000)
	far, _ := est.PredictSkew("R1", 10000)
	if far <= near {
		t.Errorf("PredictSkew not growing with horizon: near=%d far=%d", near, far)
	}
}

// TestEstimatorConvergesUnderDriftAndJitter layers bounded per-fire noise
// on top of the linear drift (non-constant offset) and checks the slope
// still converges within a pinned tolerance while the jitter estimate
// picks up the noise floor.
func TestEstimatorConvergesUnderDriftAndJitter(t *testing.T) {
	v := graph.NodeID(3)
	ens := timesync.New(timesync.Params{
		Seed:           1,
		SyncIntervalNs: 1 << 60,
		SyncErrorNs:    0,
		DriftPPB:       0,
	}, []graph.NodeID{v})
	const driftPPB = 5_000_000
	ens.SetDrift(v, driftPPB)

	ats := make([]int64, clock.Window)
	noise := make([]int64, clock.Window)
	rng := rand.New(rand.NewSource(7))
	for i := range ats {
		ats[i] = int64(1000 + 100*i)
		noise[i] = rng.Int63n(3) - 1 // +-1 tick of fire jitter
	}
	est := feed(t, ens, v, ats, noise)

	sc, ok := est.Estimate("R1")
	if !ok {
		t.Fatal("no estimate")
	}
	const want = -driftPPB / 1000
	if sc.DriftMilliTicksPerKtick < want-1000 || sc.DriftMilliTicksPerKtick > want+1000 {
		t.Errorf("drift under jitter = %d mticks/ktick, want %d +- 1000", sc.DriftMilliTicksPerKtick, want)
	}
	if sc.JitterMilliTicks < 500 {
		t.Errorf("jitter = %d mticks, want >= 500 with +-1 tick noise", sc.JitterMilliTicks)
	}
}

// TestEstimatorTracksEpochOffsets drives the estimator across sync epochs
// with a pure offset error (no drift): every epoch re-draws an offset in
// [-E, +E], so the estimated offset must stay within E plus rounding and
// the fitted slope must stay near zero.
func TestEstimatorTracksEpochOffsets(t *testing.T) {
	v := graph.NodeID(5)
	const errNs = 3 * timesync.TickNs // +-3 ticks of sync error
	ens := timesync.New(timesync.Params{
		Seed:           9,
		SyncIntervalNs: 40 * timesync.TickNs, // new epoch every 40 ticks
		SyncErrorNs:    errNs,
		DriftPPB:       0,
	}, []graph.NodeID{v})

	ats := make([]int64, clock.Window)
	for i := range ats {
		ats[i] = int64(100 + 50*i) // crosses an epoch boundary most samples
	}
	est := feed(t, ens, v, ats, nil)

	sc, ok := est.Estimate("R1")
	if !ok {
		t.Fatal("no estimate")
	}
	// |offset| bounded by the sync error (3 ticks) plus rounding.
	if sc.OffsetMilliTicks < -3500 || sc.OffsetMilliTicks > 3500 {
		t.Errorf("offset = %d mticks, want within +-3500 for +-3 tick sync error", sc.OffsetMilliTicks)
	}
	// Uncorrelated epoch draws: no systematic slope. Allow a loose band;
	// the point is it must not masquerade as ppm-scale drift.
	if sc.DriftMilliTicksPerKtick < -3000 || sc.DriftMilliTicksPerKtick > 3000 {
		t.Errorf("drift = %d mticks/ktick, want near 0 for driftless epochs", sc.DriftMilliTicksPerKtick)
	}
	if sc.JitterMilliTicks == 0 {
		t.Error("jitter = 0, want > 0: epoch offsets are non-constant")
	}
}
