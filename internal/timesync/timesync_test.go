package timesync

import (
	"testing"
	"testing/quick"

	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/sim"
)

func nodes(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

func TestPerfectClocks(t *testing.T) {
	e := New(Params{Seed: 1, SyncErrorNs: 0, DriftPPB: 0}, nodes(4))
	for _, v := range nodes(4) {
		for _, ref := range []int64{0, 123456789, 99_999_999_999} {
			if off := e.OffsetNs(v, ref); off != 0 {
				t.Fatalf("offset(%d, %d) = %d, want 0", v, ref, off)
			}
		}
		if got := e.ApplyTick(v, 500); got != 500 {
			t.Fatalf("ApplyTick = %d, want 500", got)
		}
	}
}

func TestOffsetBounds(t *testing.T) {
	p := DefaultParams(7)
	e := New(p, nodes(8))
	// Right after a sync the offset is within SyncErrorNs; over an epoch it
	// additionally accumulates at most DriftPPB * interval / 1e9.
	maxDriftNs := p.DriftPPB * p.SyncIntervalNs / 1_000_000_000
	bound := p.SyncErrorNs + maxDriftNs
	for _, v := range nodes(8) {
		for ref := int64(0); ref < 10*p.SyncIntervalNs; ref += p.SyncIntervalNs / 7 {
			off := e.OffsetNs(v, ref)
			if off > bound || off < -bound {
				t.Fatalf("offset(%d, %d) = %d exceeds bound %d", v, ref, off, bound)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := New(DefaultParams(42), nodes(5))
	b := New(DefaultParams(42), nodes(5))
	for _, v := range nodes(5) {
		for _, ref := range []int64{0, 1_234_567, 987_654_321} {
			if a.OffsetNs(v, ref) != b.OffsetNs(v, ref) {
				t.Fatal("same seed, different offsets")
			}
		}
	}
	c := New(DefaultParams(43), nodes(5))
	same := true
	for _, v := range nodes(5) {
		if a.OffsetNs(v, 1_234_567) != c.OffsetNs(v, 1_234_567) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical ensembles")
	}
}

// TestGlobalForLocalInverts: GlobalForLocal is the inverse of LocalNs up to
// sub-tick accuracy.
func TestGlobalForLocalInverts(t *testing.T) {
	f := func(seed int64, nodeRaw uint8, refRaw uint32) bool {
		p := DefaultParams(seed)
		p.SyncErrorNs = 50_000 // exaggerate to stress the inversion
		e := New(p, nodes(6))
		v := graph.NodeID(nodeRaw % 6)
		ref := int64(refRaw) * 1000
		local := e.LocalNs(v, ref)
		back := e.GlobalForLocal(v, local)
		diff := back - ref
		if diff < 0 {
			diff = -diff
		}
		return diff <= 2 // ns-scale fixed-point residue
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyTickShiftsWithCoarseError(t *testing.T) {
	// Sub-half-tick error never moves the applied tick.
	fine := New(Params{Seed: 3, SyncErrorNs: 400_000, SyncIntervalNs: 1_000_000_000}, nodes(4))
	for _, v := range nodes(4) {
		for _, tick := range []sim.Time{10, 100, 999} {
			if got := fine.ApplyTick(v, tick); got != tick {
				t.Fatalf("fine clocks moved tick %d to %d", tick, got)
			}
		}
	}
	// Multi-tick error must move some applied tick.
	coarse := New(Params{Seed: 3, SyncErrorNs: 5 * TickNs, SyncIntervalNs: 1_000_000_000}, nodes(4))
	moved := false
	for _, v := range nodes(4) {
		for tick := sim.Time(1); tick <= 50; tick++ {
			if coarse.ApplyTick(v, tick) != tick {
				moved = true
			}
		}
	}
	if !moved {
		t.Fatal("5-tick sync error never moved an applied tick")
	}
}

func TestMaxAbsOffset(t *testing.T) {
	p := DefaultParams(11)
	p.SyncErrorNs = 2_000
	e := New(p, nodes(6))
	got := e.MaxAbsOffsetNs(nodes(6), 0, 5*p.SyncIntervalNs)
	if got == 0 {
		t.Fatal("max offset = 0 with nonzero sync error")
	}
	bound := p.SyncErrorNs + p.DriftPPB*p.SyncIntervalNs/1_000_000_000
	if got > bound {
		t.Fatalf("max offset %d exceeds analytic bound %d", got, bound)
	}
}
