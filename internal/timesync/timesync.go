// Package timesync models the synchronized clocks that timed SDNs rely on
// (Time4 / ReversePTP in the paper): every switch owns a local clock with
// bounded offset and drift relative to the controller's reference time,
// re-synchronized periodically.
//
// The paper's premise is that rule updates can be scheduled "on the order
// of one microsecond". This package makes that premise a measurable
// parameter: schedules are computed in reference time, switches execute at
// the moment their local clock reaches the scheduled instant, and the
// residual synchronization error decides whether the executed schedule
// still matches the one the scheduler proved safe. The clock-skew ablation
// in the benchmark suite sweeps SyncErrorNs to find where violations begin.
//
// Clocks are modeled in nanoseconds; one emulator tick is one millisecond
// (TickNs). Offsets are deterministic functions of (seed, node, epoch), so
// experiments reproduce exactly.
package timesync

import (
	"math/rand"

	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/sim"
)

// TickNs is the duration of one emulator tick in clock nanoseconds.
const TickNs = int64(1_000_000)

// Params configures an Ensemble.
type Params struct {
	// Seed makes the ensemble reproducible.
	Seed int64
	// SyncIntervalNs is the re-synchronization period (default 1 s).
	SyncIntervalNs int64
	// SyncErrorNs bounds the absolute offset right after a sync (the
	// protocol's accuracy; Time4 reports ~1 µs). Offsets are drawn
	// uniformly from [-SyncErrorNs, +SyncErrorNs].
	SyncErrorNs int64
	// DriftPPB is the maximum clock drift in parts per billion; each
	// switch gets a fixed drift drawn uniformly from [-DriftPPB, +DriftPPB].
	DriftPPB int64
}

// DefaultParams models a PTP-grade deployment: 1 µs sync accuracy, 10 ppm
// drift, 1 s sync interval.
func DefaultParams(seed int64) Params {
	return Params{
		Seed:           seed,
		SyncIntervalNs: 1_000_000_000,
		SyncErrorNs:    1_000,
		DriftPPB:       10_000,
	}
}

// Ensemble is a set of per-switch clocks.
type Ensemble struct {
	p      Params
	drifts map[graph.NodeID]int64 // ppb, fixed per node
}

// New builds the ensemble for the given switches.
func New(p Params, nodes []graph.NodeID) *Ensemble {
	if p.SyncIntervalNs <= 0 {
		p.SyncIntervalNs = 1_000_000_000
	}
	e := &Ensemble{p: p, drifts: make(map[graph.NodeID]int64, len(nodes))}
	rng := rand.New(rand.NewSource(p.Seed))
	for _, v := range nodes {
		if p.DriftPPB > 0 {
			e.drifts[v] = rng.Int63n(2*p.DriftPPB+1) - p.DriftPPB
		}
	}
	return e
}

// Drift returns v's fixed clock drift in parts per billion (positive =
// the local clock runs fast). It is the ground truth the clock-quality
// estimator (internal/clock) is held to in tests.
func (e *Ensemble) Drift(v graph.NodeID) int64 { return e.drifts[v] }

// SetDrift pins v's drift to an exact ppb value, overriding the seeded
// draw. Estimator convergence tests use it to inject a known slope.
func (e *Ensemble) SetDrift(v graph.NodeID, ppb int64) { e.drifts[v] = ppb }

// epochBase returns the offset right after the sync at the start of the
// given epoch, deterministically derived from (seed, node, epoch).
func (e *Ensemble) epochBase(v graph.NodeID, epoch int64) int64 {
	if e.p.SyncErrorNs <= 0 {
		return 0
	}
	h := uint64(e.p.Seed)*0x9E3779B97F4A7C15 ^ uint64(v+1)*0xBF58476D1CE4E5B9 ^ uint64(epoch+1)*0x94D049BB133111EB
	h ^= h >> 31
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 27
	span := 2*e.p.SyncErrorNs + 1
	return int64(h%uint64(span)) - e.p.SyncErrorNs
}

// OffsetNs returns v's clock offset at the given reference time:
// local = reference + offset.
func (e *Ensemble) OffsetNs(v graph.NodeID, refNs int64) int64 {
	epoch := refNs / e.p.SyncIntervalNs
	if refNs < 0 {
		epoch-- // floor division
	}
	sinceSync := refNs - epoch*e.p.SyncIntervalNs
	return e.epochBase(v, epoch) + e.drifts[v]*sinceSync/1_000_000_000
}

// LocalNs returns v's clock reading at the given reference time.
func (e *Ensemble) LocalNs(v graph.NodeID, refNs int64) int64 {
	return refNs + e.OffsetNs(v, refNs)
}

// GlobalForLocal returns the reference time at which v's clock reads
// localNs. Offsets change slowly (drift is ppb-scale), so two rounds of
// fixed-point iteration suffice to sub-nanosecond accuracy.
func (e *Ensemble) GlobalForLocal(v graph.NodeID, localNs int64) int64 {
	ref := localNs - e.OffsetNs(v, localNs)
	ref = localNs - e.OffsetNs(v, ref)
	return ref
}

// ApplyTick maps a scheduled emulator tick (reference time) to the tick at
// which switch v actually applies it: the reference instant when v's local
// clock reaches the scheduled instant, rounded to tick granularity toward
// the actual instant.
func (e *Ensemble) ApplyTick(v graph.NodeID, scheduled sim.Time) sim.Time {
	localTarget := int64(scheduled) * TickNs
	refNs := e.GlobalForLocal(v, localTarget)
	// Round half away from zero so sub-half-tick errors vanish at tick
	// granularity, matching a switch that fires within the tick.
	if refNs >= 0 {
		return sim.Time((refNs + TickNs/2) / TickNs)
	}
	return sim.Time((refNs - TickNs/2) / TickNs)
}

// MaxAbsOffsetNs returns the worst-case |offset| over a reference window,
// sampled at sync boundaries and window edges (offset is piecewise linear,
// so extremes occur there).
func (e *Ensemble) MaxAbsOffsetNs(nodes []graph.NodeID, fromNs, toNs int64) int64 {
	var worst int64
	check := func(v graph.NodeID, t int64) {
		off := e.OffsetNs(v, t)
		if off < 0 {
			off = -off
		}
		if off > worst {
			worst = off
		}
	}
	for _, v := range nodes {
		check(v, fromNs)
		check(v, toNs)
		for t := (fromNs/e.p.SyncIntervalNs + 1) * e.p.SyncIntervalNs; t < toNs; t += e.p.SyncIntervalNs {
			check(v, t-1) // end of previous epoch: maximum drift accumulation
			check(v, t)   // fresh sync
		}
	}
	return worst
}
