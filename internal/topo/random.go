package topo

import (
	"fmt"
	"math/rand"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
)

// RandomParams configures the random two-path instance generator used by the
// simulation experiments (paper §V-B: "the initial routing path is fixed and
// the final routing path is chosen randomly").
type RandomParams struct {
	// N is the number of switches; the initial path traverses all of them.
	N int
	// Demand is the dynamic flow's demand; links get capacity Demand
	// ("tight": cannot carry old and new flow simultaneously) or 2×Demand
	// ("slack").
	Demand graph.Capacity
	// TightFraction is the probability that a link is tight. 1 reproduces
	// the paper's unit-capacity examples; lower values make more instances
	// feasible.
	TightFraction float64
	// MaxDelay bounds the per-link propagation delay, drawn uniformly from
	// [1, MaxDelay]. Delay diversity is what makes some instances
	// infeasible for every schedule (a faster new subpath catches up with
	// in-flight old traffic on a tight shared link).
	MaxDelay graph.Delay
	// FinalInclude is the probability that an interior switch appears on
	// the final path (in randomly permuted order). Higher values create
	// more old/new interleaving and thus harder instances.
	FinalInclude float64
	// InitInclude is the probability that an interior switch appears on
	// the initial path (in index order). The default 0 means 1: the
	// paper's fixed line through all switches. Values below 1 create
	// final-only switches that need fresh rule installs, which is what
	// gives the Fig. 9 rule counts their spread.
	InitInclude float64
}

// DefaultRandomParams mirrors the paper's simulation setup for a given
// switch count.
func DefaultRandomParams(n int) RandomParams {
	return RandomParams{
		N:             n,
		Demand:        1,
		TightFraction: 0.85,
		MaxDelay:      4,
		FinalInclude:  0.7,
	}
}

// RandomInstance generates one MUTP instance. The initial path is the line
// v1→...→vN; the final path goes from v1 to vN through a random subset of
// the interior switches in random order. Links required by either path are
// created with random delays and tight/slack capacities; a link used by both
// paths in the same direction is never assigned less than the demand.
func RandomInstance(rng *rand.Rand, p RandomParams) *dynflow.Instance {
	if p.N < 3 {
		panic(fmt.Sprintf("topo: RandomInstance needs N >= 3, got %d", p.N))
	}
	if p.Demand <= 0 {
		p.Demand = 1
	}
	if p.MaxDelay < 1 {
		p.MaxDelay = 1
	}
	g := graph.New()
	ids := make([]graph.NodeID, p.N)
	for i := 0; i < p.N; i++ {
		ids[i] = g.AddNode(fmt.Sprintf("v%d", i+1))
	}
	init := graph.Path{ids[0]}
	for _, v := range ids[1 : p.N-1] {
		if p.InitInclude <= 0 || p.InitInclude >= 1 || rng.Float64() < p.InitInclude {
			init = append(init, v)
		}
	}
	init = append(init, ids[p.N-1])

	// Final path: random permutation of a random interior subset.
	var interior []graph.NodeID
	for _, v := range ids[1 : p.N-1] {
		if rng.Float64() < p.FinalInclude {
			interior = append(interior, v)
		}
	}
	rng.Shuffle(len(interior), func(i, j int) {
		interior[i], interior[j] = interior[j], interior[i]
	})
	fin := make(graph.Path, 0, len(interior)+2)
	fin = append(fin, ids[0])
	fin = append(fin, interior...)
	fin = append(fin, ids[p.N-1])
	// Avoid the degenerate identical-path case: force a difference by
	// dropping one interior switch if the permutation happened to be the
	// identity over the full interior.
	if fin.Equal(init) {
		fin = append(fin[:1], fin[2:]...)
	}

	capFor := func() graph.Capacity {
		if rng.Float64() < p.TightFraction {
			return p.Demand
		}
		return 2 * p.Demand
	}
	delayFor := func() graph.Delay {
		return 1 + graph.Delay(rng.Int63n(int64(p.MaxDelay)))
	}
	addPath := func(path graph.Path) {
		for i := 1; i < len(path); i++ {
			if _, ok := g.Link(path[i-1], path[i]); !ok {
				g.MustAddLink(path[i-1], path[i], capFor(), delayFor())
			}
		}
	}
	addPath(init)
	addPath(fin)
	return &dynflow.Instance{G: g, Demand: p.Demand, Init: init, Fin: fin}
}

// RandomInstances generates count independent instances with the same
// parameters.
func RandomInstances(rng *rand.Rand, p RandomParams, count int) []*dynflow.Instance {
	out := make([]*dynflow.Instance, count)
	for i := range out {
		out[i] = RandomInstance(rng, p)
	}
	return out
}
