package topo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/chronus-sdn/chronus/internal/dynflow"
)

func TestLine(t *testing.T) {
	g, ids := Line(5, 10, 2)
	if g.NumNodes() != 5 || g.NumLinks() != 4 {
		t.Fatalf("line(5): %v", g)
	}
	for i := 0; i+1 < 5; i++ {
		l, ok := g.Link(ids[i], ids[i+1])
		if !ok || l.Cap != 10 || l.Delay != 2 {
			t.Fatalf("link %d: %+v ok=%v", i, l, ok)
		}
	}
}

func TestRing(t *testing.T) {
	g, ids := Ring(4, 1, 1)
	if g.NumLinks() != 4 {
		t.Fatalf("ring(4) links = %d", g.NumLinks())
	}
	if _, ok := g.Link(ids[3], ids[0]); !ok {
		t.Fatal("closing link missing")
	}
}

func TestGrid(t *testing.T) {
	g, ids := Grid(3, 2, 5, 1)
	if g.NumNodes() != 6 {
		t.Fatalf("grid nodes = %d", g.NumNodes())
	}
	// 3x2 grid: horizontal 2 per row × 2 rows + vertical 3 = 7 undirected
	// edges = 14 directed links.
	if g.NumLinks() != 14 {
		t.Fatalf("grid links = %d, want 14", g.NumLinks())
	}
	if _, ok := g.Link(ids[0][0], ids[0][1]); !ok {
		t.Fatal("horizontal link missing")
	}
	if _, ok := g.Link(ids[1][2], ids[0][2]); !ok {
		t.Fatal("upward vertical link missing")
	}
}

func TestFig1ExampleValid(t *testing.T) {
	in := Fig1Example()
	if err := in.Validate(); err != nil {
		t.Fatalf("Fig1Example invalid: %v", err)
	}
	if got := len(in.UpdateSet()); got != 5 {
		t.Fatalf("update set size = %d, want 5", got)
	}
	s := PaperSchedule(in)
	if r := dynflow.Validate(in, s); !r.OK() {
		t.Fatalf("paper schedule rejected: %s", r.Summary())
	}
	if s.Makespan() != 3 {
		t.Fatalf("paper schedule makespan = %d, want 3", s.Makespan())
	}
}

func TestEmulationTopoValid(t *testing.T) {
	in := EmulationTopo()
	if err := in.Validate(); err != nil {
		t.Fatalf("EmulationTopo invalid: %v", err)
	}
	if in.G.NumNodes() != 10 {
		t.Fatalf("nodes = %d, want 10", in.G.NumNodes())
	}
	if in.Demand != EmulationCapacityMbps {
		t.Fatalf("demand = %d, want %d", in.Demand, EmulationCapacityMbps)
	}
	// Every link delay within the paper's stated range (5ms..1s).
	for _, l := range in.G.Links() {
		if l.Delay < 5 || l.Delay > 1000 {
			t.Fatalf("delay %d out of range on %s->%s", l.Delay, in.G.Name(l.From), in.G.Name(l.To))
		}
	}
	// The naive simultaneous update must misbehave (that is the point of
	// the Fig. 6 experiment).
	if r := dynflow.ValidateImmediate(in, 0); r.OK() {
		t.Fatal("simultaneous flip of the emulation topology is clean; experiment would be vacuous")
	}
}

func TestRandomInstanceValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		in := RandomInstance(rng, DefaultRandomParams(12))
		if err := in.Validate(); err != nil {
			t.Fatalf("instance %d invalid: %v", i, err)
		}
		if in.Init.Equal(in.Fin) {
			t.Fatalf("instance %d: identical paths", i)
		}
		if in.Init.Source() != in.Fin.Source() || in.Init.Dest() != in.Fin.Dest() {
			t.Fatalf("instance %d: endpoint mismatch", i)
		}
	}
}

func TestRandomInstanceProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 3 + int(nRaw%40)
		rng := rand.New(rand.NewSource(seed))
		in := RandomInstance(rng, DefaultRandomParams(n))
		if in.G.NumNodes() != n {
			return false
		}
		if err := in.Validate(); err != nil {
			return false
		}
		// All delays within [1, MaxDelay], all capacities in {d, 2d}.
		p := DefaultRandomParams(n)
		for _, l := range in.G.Links() {
			if l.Delay < 1 || l.Delay > p.MaxDelay {
				return false
			}
			if l.Cap != p.Demand && l.Cap != 2*p.Demand {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomInstanceDeterministic(t *testing.T) {
	a := RandomInstance(rand.New(rand.NewSource(7)), DefaultRandomParams(15))
	b := RandomInstance(rand.New(rand.NewSource(7)), DefaultRandomParams(15))
	if !a.Fin.Equal(b.Fin) {
		t.Fatal("same seed produced different final paths")
	}
	if a.G.NumLinks() != b.G.NumLinks() {
		t.Fatal("same seed produced different graphs")
	}
}

func TestRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ins := RandomInstances(rng, DefaultRandomParams(10), 7)
	if len(ins) != 7 {
		t.Fatalf("count = %d", len(ins))
	}
	distinct := false
	for i := 1; i < len(ins); i++ {
		if !ins[i].Fin.Equal(ins[0].Fin) {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("all generated instances identical")
	}
}

func TestRandomInstancePanicsOnTinyN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for N=2")
		}
	}()
	RandomInstance(rand.New(rand.NewSource(1)), RandomParams{N: 2})
}
