// Package topo provides the topologies and workload generators used by the
// Chronus evaluation: the paper's six-switch running example (Fig. 1), the
// ten-switch emulation topology standing in for the Mininet testbed, and the
// random two-path MUTP instances that drive the simulation figures
// (Fig. 7-11).
package topo

import (
	"fmt"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
)

// Line returns a directed line graph v0 -> v1 -> ... -> v(n-1) with uniform
// capacity and delay, plus the node IDs in order.
func Line(n int, cap graph.Capacity, delay graph.Delay) (*graph.Graph, []graph.NodeID) {
	g := graph.New()
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddNode(fmt.Sprintf("v%d", i+1))
	}
	for i := 0; i+1 < n; i++ {
		g.MustAddLink(ids[i], ids[i+1], cap, delay)
	}
	return g, ids
}

// Ring returns a directed ring over n nodes with uniform capacity and delay.
func Ring(n int, cap graph.Capacity, delay graph.Delay) (*graph.Graph, []graph.NodeID) {
	g, ids := Line(n, cap, delay)
	if n > 2 {
		g.MustAddLink(ids[n-1], ids[0], cap, delay)
	}
	return g, ids
}

// Grid returns a w×h bidirectional grid with uniform capacity and delay.
// Node (x, y) is named "gX.Y".
func Grid(w, h int, cap graph.Capacity, delay graph.Delay) (*graph.Graph, [][]graph.NodeID) {
	g := graph.New()
	ids := make([][]graph.NodeID, h)
	for y := 0; y < h; y++ {
		ids[y] = make([]graph.NodeID, w)
		for x := 0; x < w; x++ {
			ids[y][x] = g.AddNode(fmt.Sprintf("g%d.%d", x, y))
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				if err := g.AddBiLink(ids[y][x], ids[y][x+1], cap, delay); err != nil {
					panic(err)
				}
			}
			if y+1 < h {
				if err := g.AddBiLink(ids[y][x], ids[y+1][x], cap, delay); err != nil {
					panic(err)
				}
			}
		}
	}
	return g, ids
}

// Fig1Example returns the paper's six-switch running example: unit demand,
// unit link capacities and delays, initial path v1→v2→v3→v4→v5→v6 and final
// path reversing through the intermediate switches (v1→v5→v4→v3→v2→v6).
//
// Interpretation note: the paper's figure is described, not drawn, in the
// text we reproduce from. The full-reversal reading is the one consistent
// with every property the text states: updating only v2 immediately diverts
// flow over ⟨v2,v6⟩; updating v4 before v3 bounces in-flight traffic back to
// v3 (transient loop); updating v1 early funnels new flow onto a link still
// draining old flow (transient congestion); and the update set is exactly
// {v1,...,v5} as in Fig. 1(e)-(h).
func Fig1Example() *dynflow.Instance {
	g := graph.New()
	v := g.AddNodes("v1", "v2", "v3", "v4", "v5", "v6")
	g.MustAddLink(v[0], v[1], 1, 1)
	g.MustAddLink(v[1], v[2], 1, 1)
	g.MustAddLink(v[2], v[3], 1, 1)
	g.MustAddLink(v[3], v[4], 1, 1)
	g.MustAddLink(v[4], v[5], 1, 1)
	g.MustAddLink(v[0], v[4], 1, 1)
	g.MustAddLink(v[4], v[3], 1, 1)
	g.MustAddLink(v[3], v[2], 1, 1)
	g.MustAddLink(v[2], v[1], 1, 1)
	g.MustAddLink(v[1], v[5], 1, 1)
	return &dynflow.Instance{
		G:      g,
		Demand: 1,
		Init:   graph.Path{v[0], v[1], v[2], v[3], v[4], v[5]},
		Fin:    graph.Path{v[0], v[4], v[3], v[2], v[1], v[5]},
	}
}

// PaperSchedule returns the timed sequence from Fig. 1(e)-(h) for the
// Fig1Example instance: v2@t0, v3@t1, {v1,v4}@t2, v5@t3.
func PaperSchedule(in *dynflow.Instance) *dynflow.Schedule {
	g := in.G
	s := dynflow.NewSchedule(0)
	s.Set(g.Lookup("v2"), 0)
	s.Set(g.Lookup("v3"), 1)
	s.Set(g.Lookup("v1"), 2)
	s.Set(g.Lookup("v4"), 2)
	s.Set(g.Lookup("v5"), 3)
	return s
}

// EmulationCapacityMbps is the link capacity of the ten-switch emulation
// topology, matching the paper's Mininet setup (500 Mbps links).
const EmulationCapacityMbps = 500

// EmulationTopo returns the ten-switch topology standing in for the paper's
// Mininet testbed: switches R1..R10, an initial route along the line
// R1→R2→...→R10 and a final route reversing through the interior switches.
// Capacities are 500 (Mbps) and delays are in emulator ticks (milliseconds),
// within the paper's 5 ms..1 s range. The aggregate flow rate equals the
// link capacity, so any transient sharing of a link is visible as an
// over-capacity spike (the paper's Fig. 6).
func EmulationTopo() *dynflow.Instance {
	const n = 10
	g := graph.New()
	ids := make([]graph.NodeID, n)
	for i := 0; i < n; i++ {
		ids[i] = g.AddNode(fmt.Sprintf("R%d", i+1))
	}
	const cap = graph.Capacity(EmulationCapacityMbps)
	// Forward (initial) line: moderate per-hop delays.
	forwardDelays := []graph.Delay{10, 20, 15, 5, 25, 10, 20, 15, 10}
	for i := 0; i+1 < n; i++ {
		g.MustAddLink(ids[i], ids[i+1], cap, forwardDelays[i])
	}
	// Reverse (final) links through the interior plus the two detour links.
	g.MustAddLink(ids[0], ids[n-2], cap, 30) // R1 -> R9
	for i := n - 2; i >= 2; i-- {            // R9 -> R8 -> ... -> R2
		g.MustAddLink(ids[i], ids[i-1], cap, 15)
	}
	g.MustAddLink(ids[1], ids[n-1], cap, 20) // R2 -> R10
	init := make(graph.Path, n)
	copy(init, ids)
	fin := graph.Path{ids[0]}
	for i := n - 2; i >= 1; i-- {
		fin = append(fin, ids[i])
	}
	fin = append(fin, ids[n-1])
	return &dynflow.Instance{G: g, Demand: cap, Init: init, Fin: fin}
}
