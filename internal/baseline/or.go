// Package baseline implements the two comparison schemes of the paper's
// evaluation:
//
//   - OR, order replacement updates (Ludwig et al., PODC'15): partition the
//     switches into a minimum number of rounds such that loop-freedom holds
//     under arbitrary asynchrony within each round. OR is oblivious to link
//     capacities and transmission delays, which is exactly why it exhibits
//     transient congestion in the timed validator.
//   - TP, two-phase commit updates (Reitblatt et al., SIGCOMM'12): install
//     version-tagged copies of the new rules everywhere, then flip the
//     ingress stamping rule. TP is consistent per packet but doubles the
//     resident rule count during the transition.
package baseline

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
)

// ErrNoOrder is returned when no loop-free round exists for the remaining
// switches (cannot happen for well-formed two-path instances, but the
// search is total).
var ErrNoOrder = errors.New("baseline: no loop-free update round exists")

// unionAcyclic reports whether the forwarding graph is acyclic when the
// switches in done use their new rules, the switches in flight may use
// either rule, and everybody else uses old rules. This is the
// strong-loop-freedom safety condition for updating `flight` as one
// asynchronous round: any mixed configuration picks at most one outgoing
// edge per switch, all of which are present in the union graph.
func unionAcyclic(in *dynflow.Instance, done, flight map[graph.NodeID]bool) bool {
	adj := make(map[graph.NodeID][]graph.NodeID, in.G.NumNodes())
	addEdge := func(v, w graph.NodeID) {
		if w != graph.Invalid {
			adj[v] = append(adj[v], w)
		}
	}
	for _, v := range graph.UnionNodes(in.Init, in.Fin) {
		if v == in.Dest() {
			continue
		}
		oldN := in.OldNext(v)
		newN := in.NewNext(v)
		switch {
		case done[v]:
			addEdge(v, newN)
			if newN == graph.Invalid {
				addEdge(v, oldN)
			}
		case flight[v]:
			addEdge(v, oldN)
			addEdge(v, newN)
		default:
			addEdge(v, oldN)
		}
	}
	// Cycle detection via three-color DFS.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[graph.NodeID]int, len(adj))
	var visit func(v graph.NodeID) bool
	visit = func(v graph.NodeID) bool {
		color[v] = gray
		for _, w := range adj[v] {
			switch color[w] {
			case gray:
				return false
			case white:
				if !visit(w) {
					return false
				}
			}
		}
		color[v] = black
		return true
	}
	for v := range adj {
		if color[v] == white && !visit(v) {
			return false
		}
	}
	return true
}

// ORGreedy computes a loop-free round sequence greedily: each round updates
// a maximal set of switches whose simultaneous asynchronous update keeps
// every mixed configuration loop-free. It minimizes rounds heuristically;
// use OROptimal for the exact minimum.
func ORGreedy(in *dynflow.Instance) ([][]graph.NodeID, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	pending := in.UpdateSet()
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	done := make(map[graph.NodeID]bool)
	var rounds [][]graph.NodeID
	for len(pending) > 0 {
		flight := make(map[graph.NodeID]bool)
		var round []graph.NodeID
		for _, v := range pending {
			flight[v] = true
			if unionAcyclic(in, done, flight) {
				round = append(round, v)
			} else {
				delete(flight, v)
			}
		}
		if len(round) == 0 {
			return rounds, fmt.Errorf("%w: %d switches stuck", ErrNoOrder, len(pending))
		}
		for _, v := range round {
			done[v] = true
		}
		rest := pending[:0]
		for _, v := range pending {
			if !done[v] {
				rest = append(rest, v)
			}
		}
		pending = rest
		rounds = append(rounds, round)
	}
	return rounds, nil
}

// OROptions configures OROptimal.
type OROptions struct {
	// MaxNodes caps search nodes (0 = 200000). On exhaustion the greedy
	// solution is returned with Exact=false.
	MaxNodes int
	// Timeout bounds the wall-clock search (0 = none); like node
	// exhaustion it falls back to the greedy rounds with Exact=false.
	Timeout time.Duration
}

// ORResult is the outcome of OROptimal.
type ORResult struct {
	Rounds [][]graph.NodeID
	// Exact is true when Rounds is provably round-minimal.
	Exact bool
	Nodes int
}

// OROptimal minimizes the number of rounds by iterative deepening over the
// round count with depth-first search over valid rounds (the paper obtains
// this baseline with branch and bound; round minimization is NP-hard).
func OROptimal(in *dynflow.Instance, opts OROptions) (*ORResult, error) {
	greedy, err := ORGreedy(in)
	if err != nil {
		return nil, err
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 200000
	}
	updates := in.UpdateSet()
	search := &orSearch{in: in, updates: updates, maxNodes: maxNodes}
	if opts.Timeout > 0 {
		search.deadline = time.Now().Add(opts.Timeout)
	}
	res := &ORResult{Rounds: greedy, Exact: false}
	for k := 1; k < len(greedy); k++ {
		rounds, exhausted := search.deepen(make(map[graph.NodeID]bool), k)
		if exhausted {
			res.Nodes = search.nodes
			return res, nil
		}
		if rounds != nil {
			res.Rounds = rounds
			res.Exact = true
			res.Nodes = search.nodes
			return res, nil
		}
	}
	res.Exact = true // greedy count proven minimal by the failed deepening
	res.Nodes = search.nodes
	return res, nil
}

type orSearch struct {
	in       *dynflow.Instance
	updates  []graph.NodeID
	maxNodes int
	nodes    int
	deadline time.Time
}

func (o *orSearch) exhaustedBudget() bool {
	if o.nodes > o.maxNodes {
		return true
	}
	if !o.deadline.IsZero() && o.nodes%64 == 0 && time.Now().After(o.deadline) {
		return true
	}
	return false
}

// deepen searches for a completion of done within k further rounds.
func (o *orSearch) deepen(done map[graph.NodeID]bool, k int) ([][]graph.NodeID, bool) {
	if len(done) == len(o.updates) {
		return [][]graph.NodeID{}, false
	}
	if k == 0 {
		return nil, false
	}
	o.nodes++
	if o.exhaustedBudget() {
		return nil, true
	}
	// Candidates individually addable this round given done.
	var cands []graph.NodeID
	for _, v := range o.updates {
		if done[v] {
			continue
		}
		if unionAcyclic(o.in, done, map[graph.NodeID]bool{v: true}) {
			cands = append(cands, v)
		}
	}
	if len(cands) == 0 {
		return nil, false
	}
	// Enumerate valid subsets of the candidates, largest-first: include-
	// first DFS with an acyclicity check per inclusion.
	flight := make(map[graph.NodeID]bool)
	var round []graph.NodeID
	var rec func(i int) ([][]graph.NodeID, bool)
	rec = func(i int) ([][]graph.NodeID, bool) {
		if o.nodes++; o.exhaustedBudget() {
			return nil, true
		}
		if i == len(cands) {
			if len(round) == 0 {
				return nil, false
			}
			for _, v := range round {
				done[v] = true
			}
			rest, exhausted := o.deepen(done, k-1)
			for _, v := range round {
				delete(done, v)
			}
			if rest != nil {
				return append([][]graph.NodeID{append([]graph.NodeID(nil), round...)}, rest...), false
			}
			return nil, exhausted
		}
		v := cands[i]
		flight[v] = true
		if unionAcyclic(o.in, done, flight) {
			round = append(round, v)
			if rounds, exhausted := rec(i + 1); rounds != nil || exhausted {
				return rounds, exhausted
			}
			round = round[:len(round)-1]
		}
		delete(flight, v)
		return rec(i + 1)
	}
	return rec(0)
}

// ORScheduleOptions maps rounds onto ticks for evaluation in the timed
// validator.
type ORScheduleOptions struct {
	// Start is the tick at which round 0 begins.
	Start dynflow.Tick
	// RoundWidth is the tick span of one round: the controller sends all
	// FlowMods for the round and waits for barriers; switches apply theirs
	// at an unpredictable moment within the window (data-plane asynchrony).
	RoundWidth dynflow.Tick
	// Rng drives the per-switch jitter inside each round window; nil means
	// deterministic earliest-tick application.
	Rng *rand.Rand
}

// ORSchedule converts a round sequence into a concrete timed schedule: the
// switches of round r flip at a random tick within the round's window. This
// is how the evaluation replays OR, which itself is oblivious to time, on
// the dynamic-flow validator.
func ORSchedule(rounds [][]graph.NodeID, opts ORScheduleOptions) *dynflow.Schedule {
	width := opts.RoundWidth
	if width <= 0 {
		width = 1
	}
	s := dynflow.NewSchedule(opts.Start)
	for r, round := range rounds {
		base := opts.Start + dynflow.Tick(r)*width
		for _, v := range round {
			t := base
			if opts.Rng != nil {
				t += dynflow.Tick(opts.Rng.Int63n(int64(width)))
			}
			s.Set(v, t)
		}
	}
	return s
}
