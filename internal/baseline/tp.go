package baseline

import (
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
)

// TwoPhase models the two-phase commit update: version-tagged copies of the
// final path's rules are installed first (inert), then the ingress stamping
// rule flips at FlipTick, after which every newly emitted unit carries the
// new tag and travels the final path end-to-end. Units emitted earlier
// travel the initial path end-to-end — per-packet consistency by
// construction, no loops and no blackholes ever.
type TwoPhase struct {
	// FlipTick is the tick at which the ingress begins stamping the new
	// version tag.
	FlipTick dynflow.Tick
}

// Validate traces the two-phase transition on the dynamic-flow model:
// per-packet consistency removes loops by construction, but old units are
// still in flight when new units launch, so links reachable faster via the
// final path can transiently carry both flows. The returned report uses the
// same congestion accounting as dynflow.Validate.
func (tp TwoPhase) Validate(in *dynflow.Instance) *dynflow.Report {
	r := &dynflow.Report{Loads: make(map[dynflow.LinkInstance]graph.Capacity)}
	phiInit := dynflow.Tick(in.Init.Delay(in.G))
	phiFin := dynflow.Tick(in.Fin.Delay(in.G))
	start := tp.FlipTick - phiInit
	end := tp.FlipTick + phiInit + phiFin
	r.WindowStart, r.WindowEnd = start, end
	r.LatestArrival = end

	addPath := func(p graph.Path, emit dynflow.Tick) {
		t := emit
		for i := 1; i < len(p); i++ {
			l, ok := in.G.Link(p[i-1], p[i])
			if !ok {
				continue
			}
			r.Loads[dynflow.LinkInstance{From: p[i-1], To: p[i], Depart: t}] += in.Demand
			t += dynflow.Tick(l.Delay)
		}
	}
	for e := start; e <= end; e++ {
		if e < tp.FlipTick {
			addPath(in.Init, e)
		} else {
			addPath(in.Fin, e)
		}
	}
	for li, load := range r.Loads {
		l, ok := in.G.Link(li.From, li.To)
		if !ok {
			continue
		}
		if load > l.Cap {
			r.Congestion = append(r.Congestion, dynflow.CongestionEvent{Link: li, Load: load, Cap: l.Cap})
		}
	}
	return r
}

// RuleAccounting quantifies flow-table usage for one update instance under
// Chronus and under two-phase commit. The model follows the paper's
// prototype (Table II): each switch holds one forwarding entry per flow and
// the ingress holds one entry per attached host prefix; two-phase stamps
// version tags per host prefix at the ingress.
type RuleAccounting struct {
	// Steady is the rule count outside updates: one entry per switch on
	// the active path.
	Steady int
	// ChronusPeak is the resident rule count at the peak of a Chronus
	// update: the steady rules plus fresh installs on final-only switches
	// (existing entries are modified in place — "we only modify the action
	// in the flow table").
	ChronusPeak int
	// ChronusTouched is the number of FlowMod operations Chronus issues
	// (every switch in the update set).
	ChronusTouched int
	// TPPeak is the resident rule count at the peak of a two-phase update:
	// both versions resident simultaneously, plus the per-host stamping
	// entries at the ingress and the untag entry at the egress.
	TPPeak int
	// TPTouched is the number of FlowMod operations two-phase issues
	// (install new version everywhere, restamp hosts, delete old version).
	TPTouched int
}

// CountRules computes the accounting for an instance; ingressHosts is the
// number of host prefixes attached at the source switch (the paper's
// Table II shows per-host entries with a Tag match column).
func CountRules(in *dynflow.Instance, ingressHosts int) RuleAccounting {
	initRules := len(in.Init) - 1
	finRules := len(in.Fin) - 1
	finOnly := 0
	for _, v := range in.Fin[:len(in.Fin)-1] {
		if !in.Init.Contains(v) {
			finOnly++
		}
	}
	acc := RuleAccounting{
		Steady:         initRules,
		ChronusPeak:    initRules + finOnly,
		ChronusTouched: len(in.UpdateSet()),
		TPPeak:         initRules + finRules + ingressHosts + 1,
		TPTouched:      finRules + ingressHosts + initRules, // install + restamp + cleanup
	}
	return acc
}

// TPSavingsPercent returns how many rules Chronus saves over two-phase at
// the transition peak, in percent.
func (a RuleAccounting) TPSavingsPercent() float64 {
	if a.TPPeak == 0 {
		return 0
	}
	return 100 * (1 - float64(a.ChronusPeak)/float64(a.TPPeak))
}
