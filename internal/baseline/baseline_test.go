package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/topo"
)

func TestORGreedyFig1(t *testing.T) {
	in := topo.Fig1Example()
	rounds, err := ORGreedy(in)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range rounds {
		total += len(r)
	}
	if total != len(in.UpdateSet()) {
		t.Fatalf("rounds cover %d switches, want %d: %v", total, len(in.UpdateSet()), rounds)
	}
	if len(rounds) < 2 {
		t.Fatalf("reversal cannot be one asynchronous round: %v", rounds)
	}
	assertRoundsLoopFree(t, in, rounds)
}

// assertRoundsLoopFree re-checks the defining invariant: at every round,
// the union configuration is acyclic.
func assertRoundsLoopFree(t *testing.T, in *dynflow.Instance, rounds [][]graph.NodeID) {
	t.Helper()
	done := make(map[graph.NodeID]bool)
	for i, round := range rounds {
		flight := make(map[graph.NodeID]bool)
		for _, v := range round {
			flight[v] = true
		}
		if !unionAcyclic(in, done, flight) {
			t.Fatalf("round %d (%v) is not union-acyclic", i, round)
		}
		for _, v := range round {
			done[v] = true
		}
	}
}

func TestOROptimalFig1(t *testing.T) {
	in := topo.Fig1Example()
	res, err := OROptimal(in, OROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("budget exhausted on a 5-switch instance")
	}
	greedy, _ := ORGreedy(in)
	if len(res.Rounds) > len(greedy) {
		t.Fatalf("optimal %d rounds > greedy %d", len(res.Rounds), len(greedy))
	}
	assertRoundsLoopFree(t, in, res.Rounds)
}

// TestORRoundsProperty: on random instances, greedy rounds cover the update
// set, are union-acyclic at every prefix, and OROptimal never needs more
// rounds than greedy.
func TestORRoundsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 4 + int(nRaw%12)
		rng := rand.New(rand.NewSource(seed))
		in := topo.RandomInstance(rng, topo.DefaultRandomParams(n))
		rounds, err := ORGreedy(in)
		if err != nil {
			return false // two-path instances always admit an order
		}
		done := make(map[graph.NodeID]bool)
		covered := 0
		for _, round := range rounds {
			flight := make(map[graph.NodeID]bool)
			for _, v := range round {
				flight[v] = true
			}
			if !unionAcyclic(in, done, flight) {
				return false
			}
			for _, v := range round {
				if done[v] {
					return false // duplicate
				}
				done[v] = true
				covered++
			}
		}
		if covered != len(in.UpdateSet()) {
			return false
		}
		res, err := OROptimal(in, OROptions{MaxNodes: 20000})
		if err != nil {
			return false
		}
		return len(res.Rounds) <= len(rounds)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestORScheduleMapping(t *testing.T) {
	in := topo.Fig1Example()
	rounds, err := ORGreedy(in)
	if err != nil {
		t.Fatal(err)
	}
	s := ORSchedule(rounds, ORScheduleOptions{Start: 10, RoundWidth: 5})
	for r, round := range rounds {
		for _, v := range round {
			tv, ok := s.Time(v)
			if !ok {
				t.Fatalf("switch %s unscheduled", in.G.Name(v))
			}
			base := dynflow.Tick(10 + 5*r)
			if tv != base {
				t.Fatalf("deterministic mapping: τ(%s) = %d, want %d", in.G.Name(v), tv, base)
			}
		}
	}
	// Jittered mapping stays within the round window.
	rng := rand.New(rand.NewSource(4))
	s = ORSchedule(rounds, ORScheduleOptions{Start: 0, RoundWidth: 5, Rng: rng})
	for r, round := range rounds {
		for _, v := range round {
			tv, _ := s.Time(v)
			lo := dynflow.Tick(5 * r)
			if tv < lo || tv >= lo+5 {
				t.Fatalf("τ(%s) = %d outside round window [%d,%d)", in.G.Name(v), tv, lo, lo+5)
			}
		}
	}
}

// TestORIncursViolationsOnFig1: replaying OR rounds on the timed validator
// exhibits the transient problems the paper describes (loops from
// intra-round asynchrony or congestion from delay-obliviousness), while the
// per-round configurations remain statically loop-free.
func TestORIncursViolationsOnFig1(t *testing.T) {
	in := topo.Fig1Example()
	rounds, err := ORGreedy(in)
	if err != nil {
		t.Fatal(err)
	}
	violated := false
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := ORSchedule(rounds, ORScheduleOptions{Start: 0, RoundWidth: 2, Rng: rng})
		if r := dynflow.Validate(in, s); !r.OK() {
			violated = true
			break
		}
	}
	if !violated {
		t.Fatal("OR replay never violated on the reversal example; the Fig. 6/7 experiments would be vacuous")
	}
}

func TestTwoPhaseNeverLoops(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 4 + int(nRaw%12)
		rng := rand.New(rand.NewSource(seed))
		in := topo.RandomInstance(rng, topo.DefaultRandomParams(n))
		r := TwoPhase{FlipTick: 0}.Validate(in)
		return len(r.Loops) == 0 && len(r.Blackholes) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoPhaseCatchUpCongestion(t *testing.T) {
	// Old route to the shared link is slower than the new one: two-phase
	// still congests because old units are in flight when new ones launch.
	g := graph.New()
	v := g.AddNodes("s", "a", "m", "d")
	g.MustAddLink(v[0], v[1], 1, 1)
	g.MustAddLink(v[1], v[2], 1, 1)
	g.MustAddLink(v[2], v[3], 1, 1)
	g.MustAddLink(v[0], v[2], 1, 1)
	in := &dynflow.Instance{
		G:      g,
		Demand: 1,
		Init:   graph.Path{v[0], v[1], v[2], v[3]},
		Fin:    graph.Path{v[0], v[2], v[3]},
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	r := TwoPhase{FlipTick: 5}.Validate(in)
	if len(r.Congestion) == 0 {
		t.Fatal("expected transient congestion on (m,d)")
	}
	for _, ev := range r.Congestion {
		if ev.Link.From != v[2] || ev.Link.To != v[3] {
			t.Fatalf("unexpected congested link %+v", ev)
		}
	}
}

func TestTwoPhaseCleanWhenNewRouteSlower(t *testing.T) {
	in := topo.Fig1Example()
	r := TwoPhase{FlipTick: 0}.Validate(in)
	// Old path v1..v6 and reversal share no same-direction link, so the
	// per-packet-consistent transition is congestion-free here.
	if !r.OK() {
		t.Fatalf("two-phase on Fig1: %s", r.Summary())
	}
}

func TestCountRules(t *testing.T) {
	in := topo.Fig1Example()
	acc := CountRules(in, 6)
	if acc.Steady != 5 {
		t.Fatalf("steady = %d, want 5", acc.Steady)
	}
	if acc.ChronusPeak != 5 { // reversal reuses every switch: no fresh installs
		t.Fatalf("chronus peak = %d, want 5", acc.ChronusPeak)
	}
	if acc.ChronusTouched != 5 {
		t.Fatalf("chronus touched = %d, want 5", acc.ChronusTouched)
	}
	wantTP := 5 + 5 + 6 + 1
	if acc.TPPeak != wantTP {
		t.Fatalf("tp peak = %d, want %d", acc.TPPeak, wantTP)
	}
	if acc.TPSavingsPercent() < 60 {
		t.Fatalf("savings = %.1f%%, want >= 60%%", acc.TPSavingsPercent())
	}
}

func TestCountRulesFinalOnlyInstalls(t *testing.T) {
	g := graph.New()
	v := g.AddNodes("s", "x", "n", "d")
	g.MustAddLink(v[0], v[1], 2, 1)
	g.MustAddLink(v[1], v[3], 2, 1)
	g.MustAddLink(v[0], v[2], 2, 1)
	g.MustAddLink(v[2], v[3], 2, 1)
	in := &dynflow.Instance{G: g, Demand: 1,
		Init: graph.Path{v[0], v[1], v[3]},
		Fin:  graph.Path{v[0], v[2], v[3]},
	}
	acc := CountRules(in, 2)
	if acc.ChronusPeak != 2+1 { // two steady + one fresh install on n
		t.Fatalf("chronus peak = %d, want 3", acc.ChronusPeak)
	}
	if acc.ChronusTouched != 2 { // s and n
		t.Fatalf("touched = %d, want 2", acc.ChronusTouched)
	}
}
