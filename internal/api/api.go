// Package api is the single source of truth for chronusd's HTTP
// surface. The daemon builds its mux from this table (and panics at
// boot on a table/handler mismatch), and docs_test.go fails when a
// listed endpoint is missing from the README's endpoint table — so an
// endpoint cannot be added, renamed or removed in one place only.
package api

// Endpoint describes one chronusd route.
type Endpoint struct {
	// Method and Path form the mux pattern ("GET /spans").
	Method string
	Path   string
	// Doc is the one-line description used by documentation.
	Doc string
}

// Endpoints lists every chronusd route, GETs first, each group in
// registration order.
var Endpoints = []Endpoint{
	{"GET", "/status", "daemon status: virtual time, switch count, last update outcome"},
	{"GET", "/topology", "topology as adjacency (switch names and links)"},
	{"GET", "/links", "per-link load, capacity and utilization"},
	{"GET", "/switches/{name}/rules", "one switch's forwarding rules"},
	{"GET", "/bandwidth", "recent bandwidth samples of the monitored link"},
	{"GET", "/packetins", "PacketIn notifications received by the controller"},
	{"GET", "/metrics", "Prometheus text exposition of every registered metric"},
	{"GET", "/trace", "trace events: JSONL stream, or a JSON page with ?since= and ?limit="},
	{"GET", "/spans", "causal span forest of recent updates, with ?since=/?limit= paging"},
	{"GET", "/health", "live SLO verdict: slack margins, burn, OK/WARN/CRIT rules"},
	{"GET", "/clocks", "per-switch clock-quality estimates: offset, drift, jitter, barrier RTT"},
	{"GET", "/audit", "consistency audit of the trace ring (violations, critical path)"},
	{"GET", "/schemes", "registered update schemes"},
	{"GET", "/dash", "self-contained HTML dashboard (spans timeline + health tiles)"},
	{"GET", "/watch", "live SSE stream of trace events and spans, resumable with ?since= or Last-Event-ID"},
	{"GET", "/queue", "admission queue: depth, waves, per-tenant accounting, capacity-ledger utilization"},
	{"GET", "/updates/{id}", "update lifecycle (queued/planning/executing/done states) by admission id, or cost report by root span id"},
	{"GET", "/state", "time-travel observed-state snapshot (tables, pending FlowMods, link rates, update overlays) at ?at=<tick>"},
	{"GET", "/drift", "desired-vs-observed drift: each update's planned end-state diffed against the observed tables (converging/stranded/diverged) with per-switch evidence"},
	{"GET", "/links/{from}/{to}/timeline", "one link's utilization timeseries from ?since=<tick>, ring-served with journal backfill for older ticks"},
	{"POST", "/advance", "advance virtual time by ?ticks="},
	{"POST", "/update", "enqueue a path update through the admission pipeline (sync by default; \"async\": true returns 202 + id)"},
}
