package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/chronus-sdn/chronus/internal/obs"
)

func event(seq int) obs.Event {
	return obs.Event{
		Seq: uint64(seq), VT: int64(seq * 10), Name: "test",
		Attrs: []obs.Attr{{K: "i", V: fmt.Sprint(seq)}},
	}
}

func mustOpen(t *testing.T, o Options) *Writer {
	t.Helper()
	w, err := Open(o)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	w := mustOpen(t, Options{Dir: dir, Obs: reg})
	const n = 100
	for i := 1; i <= n; i++ {
		w.Record(event(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	evs, stats, err := ReadAll(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != n || stats.Events != n || stats.Torn != 0 {
		t.Fatalf("read %d events (stats %+v), want %d", len(evs), stats, n)
	}
	for i, e := range evs {
		if e.Seq != uint64(i+1) || e.Name != "test" {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
	if got := reg.Counter("chronus_journal_appended_total").Value(); got != n {
		t.Fatalf("appended_total = %d, want %d", got, n)
	}
	if got := reg.Counter("chronus_journal_dropped_total").Value(); got != 0 {
		t.Fatalf("dropped_total = %d, want 0", got)
	}
	if got := reg.Counter("chronus_journal_bytes").Value(); got <= 0 {
		t.Fatalf("journal_bytes = %d, want > 0", got)
	}
}

// TestJournalMatchesTracerExport pins the codec-unification contract: a
// journal capture and Tracer.WriteJSONL over the same events are
// byte-identical — one serializer, zero drift.
func TestJournalMatchesTracerExport(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir})
	tracer := obs.NewTracer(obs.TracerOptions{Sink: w})
	for i := 0; i < 50; i++ {
		tracer.Point(int64(i), "ev", obs.A("i", i))
	}
	tracer.Span("window", 5, 25, obs.A("why", "test"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := Segments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v, %v", segs, err)
	}
	journalBytes, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	var export strings.Builder
	if err := tracer.WriteJSONL(&export, 0); err != nil {
		t.Fatal(err)
	}
	if export.String() != string(journalBytes) {
		t.Fatalf("journal bytes differ from tracer export:\n--- journal ---\n%s--- export ---\n%s", journalBytes, export.String())
	}
}

func TestJournalRotationAndResume(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations.
	w := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	const n = 200
	for i := 1; i <= n; i++ {
		w.Record(event(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := Segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 4 {
		t.Fatalf("only %d segments; rotation did not trigger", len(segs))
	}

	evs, _, err := ReadAll(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != n {
		t.Fatalf("read %d events across segments, want %d", len(evs), n)
	}

	// Resume from a mid-journal cursor: no duplicates, no gaps.
	cursor := evs[119].Seq
	rest, stats, err := ReadAll(dir, cursor)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != n-120 {
		t.Fatalf("resume from %d returned %d events, want %d", cursor, len(rest), n-120)
	}
	if rest[0].Seq != cursor+1 {
		t.Fatalf("resume started at seq %d, want %d", rest[0].Seq, cursor+1)
	}
	if stats.Events != len(rest) {
		t.Fatalf("stats.Events = %d, want %d", stats.Events, len(rest))
	}

	// A writer re-opened over the same dir continues the numbering
	// instead of clobbering existing segments.
	w2 := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	w2.Record(event(n + 1))
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	segs2, _ := Segments(dir)
	if len(segs2) != len(segs)+1 {
		t.Fatalf("reopen wrote %d segments, want %d", len(segs2), len(segs)+1)
	}
	all, _, err := ReadAll(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != n+1 || all[n].Seq != uint64(n+1) {
		t.Fatalf("after reopen read %d events, last seq %d", len(all), all[len(all)-1].Seq)
	}
}

// TestJournalTornTailProperty is the crash-safety property test: for
// EVERY truncation point inside the final record (the shape any torn
// write can take), the reader recovers every complete record before it,
// loses at most that one partial record, and reports the tear.
func TestJournalTornTailProperty(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir})
	const n = 10
	for i := 1; i <= n; i++ {
		w.Record(event(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := Segments(dir)
	if len(segs) != 1 {
		t.Fatalf("segments = %v", segs)
	}
	whole, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(whole), "\n"), "\n")
	if len(lines) != n {
		t.Fatalf("wrote %d lines, want %d", len(lines), n)
	}
	lastStart := len(whole) - len(lines[n-1]) - 1 // lines[n-1] lost its newline to TrimSuffix

	for cut := lastStart + 1; cut < len(whole); cut++ {
		tdir := t.TempDir()
		torn := filepath.Join(tdir, filepath.Base(segs[0]))
		if err := os.WriteFile(torn, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		evs, stats, err := ReadAll(tdir, 0)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// Every complete record must be recovered; at most the one
		// partial record may be lost. (A cut that strips only the final
		// newline leaves the last record parseable, so nothing is lost
		// and nothing is torn.)
		if len(evs) < n-1 || len(evs) > n {
			t.Fatalf("cut %d: recovered %d events, want %d or %d", cut, len(evs), n-1, n)
		}
		for i, e := range evs {
			if e.Seq != uint64(i+1) {
				t.Fatalf("cut %d: event %d has seq %d", cut, i, e.Seq)
			}
		}
		if lost := n - len(evs); stats.Torn != lost {
			t.Fatalf("cut %d: stats.Torn = %d, want %d (warnings %v)", cut, stats.Torn, lost, stats.Warnings)
		}
	}

	// Truncating exactly at a record boundary is not a tear at all.
	tdir := t.TempDir()
	if err := os.WriteFile(filepath.Join(tdir, filepath.Base(segs[0])), whole[:lastStart], 0o644); err != nil {
		t.Fatal(err)
	}
	evs, stats, err := ReadAll(tdir, 0)
	if err != nil || len(evs) != n-1 || stats.Torn != 0 {
		t.Fatalf("boundary cut: %d events, stats %+v, err %v", len(evs), stats, err)
	}
}

// TestJournalMidFileCorruptionFails: a malformed line that is newline-
// terminated (i.e. not a torn tail) poisons everything after it and
// must fail loudly, exactly like mutp -audit-from on a single capture.
func TestJournalMidFileCorruptionFails(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir})
	for i := 1; i <= 5; i++ {
		w.Record(event(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := Segments(dir)
	data, _ := os.ReadFile(segs[0])
	lines := strings.SplitAfter(string(data), "\n")
	corrupt := strings.Join(append(lines[:2], append([]string{"{torn garbage\n"}, lines[2:]...)...), "")
	if err := os.WriteFile(segs[0], []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadAll(dir, 0); err == nil {
		t.Fatal("mid-file corruption did not fail the replay")
	}
}

// TestJournalTornMidSegment: a torn tail in a NON-final segment (crash,
// then a later run appended a new segment to the same dir) is tolerated
// with a warning, so a restarted daemon's journal stays replayable.
func TestJournalTornMidSegment(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir})
	for i := 1; i <= 5; i++ {
		w.Record(event(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := Segments(dir)
	data, _ := os.ReadFile(segs[0])
	if err := os.WriteFile(segs[0], data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	w2 := mustOpen(t, Options{Dir: dir})
	for i := 6; i <= 8; i++ {
		w2.Record(event(i))
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	evs, stats, err := ReadAll(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 7 || stats.Torn != 1 {
		t.Fatalf("read %d events, stats %+v; want 7 events and 1 torn tail", len(evs), stats)
	}
}

// TestJournalBufferOverflowDropsWithoutBlocking floods a writer whose
// drain goroutine is effectively stalled behind a tiny buffer; Record
// must return immediately, and every overflowed event must be counted.
func TestJournalBufferOverflowDropsWithoutBlocking(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	w := mustOpen(t, Options{Dir: dir, Buffer: 1, Obs: reg})
	const n = 5000
	for i := 1; i <= n; i++ {
		w.Record(event(i)) // never blocks, whatever the drain pace
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	appended := reg.Counter("chronus_journal_appended_total").Value()
	dropped := reg.Counter("chronus_journal_dropped_total").Value()
	if appended+dropped != n {
		t.Fatalf("appended %d + dropped %d != %d recorded", appended, dropped, n)
	}
	evs, _, err := ReadAll(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(evs)) != appended {
		t.Fatalf("journal holds %d events, appended counter says %d", len(evs), appended)
	}
}

func TestParseFsync(t *testing.T) {
	for in, want := range map[string]Fsync{"": FsyncRotate, "rotate": FsyncRotate, "never": FsyncNever, "always": FsyncAlways} {
		got, err := ParseFsync(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsync(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsync("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestJournalFsyncAlways(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, Options{Dir: dir, Fsync: FsyncAlways})
	w.Record(event(1))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Flushed and synced: the segment is complete on disk before Close.
	evs, _, err := ReadAll(dir, 0)
	if err != nil || len(evs) != 1 {
		t.Fatalf("after flush: %d events, %v", len(evs), err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
