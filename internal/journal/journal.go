// Package journal is the durable telemetry record: a crash-safe,
// size-rotated, segment-based JSONL journal of obs trace events. The
// Writer implements obs.Sink, so attaching it to a Tracer makes every
// recorded event — including the ones the bounded in-memory ring later
// evicts — land in an append-only file that survives the process.
//
// The append path never blocks the tracer hot path: Record hands the
// event to a bounded buffer and returns; a background goroutine drains
// the buffer into the current segment file, rotating to a new segment
// once the size threshold is crossed. When the buffer is full the event
// is counted as dropped (chronus_journal_dropped_total) — a separate
// ledger from the tracer ring's eviction counter, so "the ring wrapped"
// and "the disk could not keep up" are distinguishable.
//
// Segments use the shared obs JSONL codec, so a journal is bytewise the
// same format as Tracer.WriteJSONL, the chronusd /trace stream and
// `mutp -trace` captures, and any JSONL consumer (including
// `mutp -audit-from`) can replay it. The reader side (reader.go)
// tolerates a torn trailing line per segment — the expected shape of a
// crash mid-append — and loses at most that one partial record.
package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/chronus-sdn/chronus/internal/obs"
)

const (
	segPrefix = "journal-"
	segSuffix = ".jsonl"

	defaultSegmentBytes = 8 << 20
	defaultBuffer       = 8192
)

// Fsync selects how eagerly the writer flushes segments to stable
// storage. Durability against a *process* crash needs no fsync at all —
// once write(2) returned, the data lives in the OS page cache and
// survives a SIGKILL — fsync only matters for machine crashes.
type Fsync int

const (
	// FsyncRotate syncs a segment when it is rotated out and on Close —
	// the default: bounded data at risk on power loss, no per-event
	// syscall on the drain path.
	FsyncRotate Fsync = iota
	// FsyncNever leaves flushing entirely to the OS.
	FsyncNever
	// FsyncAlways syncs after every appended record.
	FsyncAlways
)

// String renders the policy the way ParseFsync accepts it.
func (f Fsync) String() string {
	switch f {
	case FsyncNever:
		return "never"
	case FsyncAlways:
		return "always"
	default:
		return "rotate"
	}
}

// ParseFsync parses a policy knob value: rotate, never or always.
func ParseFsync(s string) (Fsync, error) {
	switch s {
	case "rotate", "":
		return FsyncRotate, nil
	case "never":
		return FsyncNever, nil
	case "always":
		return FsyncAlways, nil
	}
	return 0, fmt.Errorf("journal: unknown fsync policy %q (want rotate, never or always)", s)
}

// Options configures a Writer.
type Options struct {
	// Dir is the journal directory; it is created if missing. Segment
	// files are named journal-NNNNNN.jsonl and numbered monotonically —
	// a Writer opened over an existing journal continues after the
	// highest present segment rather than overwriting it.
	Dir string
	// SegmentBytes rotates to a new segment once the current one
	// reaches this size (default 8 MiB). Rotation happens on record
	// boundaries: a segment holds only whole lines plus at most one
	// torn tail from a crash.
	SegmentBytes int64
	// Buffer bounds the number of events queued between Record and the
	// drain goroutine (default 8192). A full buffer drops the event and
	// counts it, never blocks.
	Buffer int
	// Fsync is the durability policy (default FsyncRotate).
	Fsync Fsync
	// Obs receives the journal metrics:
	// chronus_journal_appended_total, chronus_journal_dropped_total,
	// chronus_journal_bytes and chronus_journal_segments.
	Obs *obs.Registry
}

// RegisterMetrics pre-registers the journal metric families on r so an
// exposition is complete before the first event is appended.
func RegisterMetrics(r *obs.Registry) {
	r.Help("chronus_journal_appended_total", "Trace events appended to the durable journal.")
	r.Counter("chronus_journal_appended_total")
	r.Help("chronus_journal_dropped_total", "Trace events dropped because the journal buffer was full or the writer failed.")
	r.Counter("chronus_journal_dropped_total")
	r.Help("chronus_journal_bytes", "Bytes appended to the durable journal.")
	r.Counter("chronus_journal_bytes")
	r.Help("chronus_journal_segments", "Journal segment files written so far.")
	r.Gauge("chronus_journal_segments")
}

// Writer appends trace events to a segmented JSONL journal. It
// implements obs.Sink; Record never blocks. Create with Open, stop with
// Close.
type Writer struct {
	opts   Options
	ch     chan obs.Event
	flush  chan chan struct{}
	quit   chan struct{}
	done   chan struct{}
	closed atomic.Bool

	appended *obs.Counter
	dropped  *obs.Counter
	bytes    *obs.Counter
	segments *obs.Gauge

	// Drain-goroutine state (touched only by run, except err).
	f        *os.File
	segIdx   int
	segBytes int64
	buf      []byte

	errMu sync.Mutex
	err   error // first write/sync error, sticky
}

// Open creates (or re-opens) the journal directory and starts the drain
// goroutine. Segment numbering continues after any segments already in
// the directory.
func Open(o Options) (*Writer, error) {
	if o.Dir == "" {
		return nil, fmt.Errorf("journal: no directory")
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.Buffer <= 0 {
		o.Buffer = defaultBuffer
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := Segments(o.Dir)
	if err != nil {
		return nil, err
	}
	next := 1
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		if n, ok := segmentIndex(filepath.Base(last)); ok {
			next = n + 1
		}
	}
	w := &Writer{
		opts:     o,
		ch:       make(chan obs.Event, o.Buffer),
		flush:    make(chan chan struct{}),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
		segIdx:   next,
		appended: o.Obs.Counter("chronus_journal_appended_total"),
		dropped:  o.Obs.Counter("chronus_journal_dropped_total"),
		bytes:    o.Obs.Counter("chronus_journal_bytes"),
		segments: o.Obs.Gauge("chronus_journal_segments"),
	}
	go w.run()
	return w, nil
}

// Record queues one event for appending. It implements obs.Sink: it is
// called with the tracer lock held and returns immediately — a full
// buffer (or a closed writer) drops the event and counts the drop.
func (w *Writer) Record(e obs.Event) {
	if w == nil || w.closed.Load() {
		return
	}
	select {
	case w.ch <- e:
	default:
		w.dropped.Inc()
	}
}

// Flush blocks until every event queued before the call has been
// handed to the OS (and synced, under FsyncAlways), then reports any
// sticky write error. It is how tests and handlers make the journal
// catch up with the ring at a known point.
func (w *Writer) Flush() error {
	if w == nil {
		return nil
	}
	ack := make(chan struct{})
	select {
	case w.flush <- ack:
		<-ack
	case <-w.done:
	}
	return w.Err()
}

// Close drains the buffer, syncs and closes the current segment, and
// stops the drain goroutine. Events recorded after Close are discarded.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	if w.closed.CompareAndSwap(false, true) {
		close(w.quit)
	}
	<-w.done
	return w.Err()
}

// Err returns the first write or sync error the drain goroutine hit,
// if any. Appends after the first error are counted as dropped.
func (w *Writer) Err() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.err
}

// Dir returns the journal directory.
func (w *Writer) Dir() string { return w.opts.Dir }

func (w *Writer) fail(err error) {
	w.errMu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.errMu.Unlock()
}

// run is the drain loop: it moves events from the buffer to the
// current segment, rotating and syncing per the options.
func (w *Writer) run() {
	defer close(w.done)
	for {
		select {
		case e := <-w.ch:
			w.append(e)
		case ack := <-w.flush:
			w.drain()
			if w.opts.Fsync != FsyncNever && w.f != nil {
				if err := w.f.Sync(); err != nil {
					w.fail(err)
				}
			}
			close(ack)
		case <-w.quit:
			w.drain()
			w.finish()
			return
		}
	}
}

// drain empties whatever is queued right now without blocking.
func (w *Writer) drain() {
	for {
		select {
		case e := <-w.ch:
			w.append(e)
		default:
			return
		}
	}
}

func (w *Writer) finish() {
	if w.f == nil {
		return
	}
	if w.opts.Fsync != FsyncNever {
		if err := w.f.Sync(); err != nil {
			w.fail(err)
		}
	}
	if err := w.f.Close(); err != nil {
		w.fail(err)
	}
	w.f = nil
}

// append encodes one event through the shared codec and writes it to
// the current segment, opening and rotating segments as needed.
func (w *Writer) append(e obs.Event) {
	if w.Err() != nil {
		w.dropped.Inc()
		return
	}
	var err error
	w.buf, err = obs.EncodeJSONLine(w.buf[:0], e)
	if err != nil {
		w.fail(err)
		w.dropped.Inc()
		return
	}
	if w.f == nil {
		name := filepath.Join(w.opts.Dir, fmt.Sprintf("%s%06d%s", segPrefix, w.segIdx, segSuffix))
		f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		if err != nil {
			w.fail(err)
			w.dropped.Inc()
			return
		}
		w.f = f
		w.segBytes = 0
		w.segments.Add(1)
	}
	n, err := w.f.Write(w.buf)
	w.bytes.Add(int64(n))
	w.segBytes += int64(n)
	if err != nil {
		w.fail(err)
		w.dropped.Inc()
		return
	}
	w.appended.Inc()
	if w.opts.Fsync == FsyncAlways {
		if err := w.f.Sync(); err != nil {
			w.fail(err)
		}
	}
	if w.segBytes >= w.opts.SegmentBytes {
		w.rotate()
	}
}

// rotate closes the current segment (syncing it unless the policy is
// never) and arranges for the next append to open a fresh one.
func (w *Writer) rotate() {
	if w.opts.Fsync != FsyncNever {
		if err := w.f.Sync(); err != nil {
			w.fail(err)
		}
	}
	if err := w.f.Close(); err != nil {
		w.fail(err)
	}
	w.f = nil
	w.segIdx++
}

// segmentIndex parses the numeric index out of a segment file name.
func segmentIndex(base string) (int, bool) {
	if len(base) != len(segPrefix)+6+len(segSuffix) ||
		base[:len(segPrefix)] != segPrefix || base[len(base)-len(segSuffix):] != segSuffix {
		return 0, false
	}
	n := 0
	for _, c := range base[len(segPrefix) : len(segPrefix)+6] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// Segments lists the journal segment files in dir in replay order
// (ascending segment index). Non-segment files are ignored.
func Segments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		if _, ok := segmentIndex(ent.Name()); ok {
			out = append(out, filepath.Join(dir, ent.Name()))
		}
	}
	sort.Strings(out) // zero-padded indices sort lexically
	return out, nil
}
