package journal

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/chronus-sdn/chronus/internal/obs"
)

// ReadStats summarizes one replay of a journal directory.
type ReadStats struct {
	// Segments is how many segment files were read.
	Segments int
	// Events is how many complete events were decoded (after the since
	// filter the caller asked for).
	Events int
	// Torn counts torn trailing lines that were skipped — the partial
	// record a crash mid-append leaves behind, at most one per segment.
	Torn int
	// Warnings carries one human-readable line per tolerated anomaly
	// (torn tails, sequence regressions between runs sharing a dir).
	Warnings []string
}

// Replay streams every complete event with Seq > since, in segment
// order, through fn; fn returning an error aborts the replay with that
// error. The reader applies the same tolerance contract as
// `mutp -audit-from`: a malformed final line of a segment that is
// missing its terminating newline is a torn mid-write tail — it is
// counted, warned about and skipped — while corruption anywhere
// earlier (a malformed line that IS newline-terminated, or one
// followed by more data) fails with a segment- and line-numbered
// error, because nothing after a corrupt record can be trusted to be
// aligned.
//
// The since cursor is monotonically resumable: replaying with the Seq
// of the last event a previous replay returned yields exactly the
// events appended after it, with no duplicates. A sequence number that
// regresses mid-journal (two daemon runs sharing one directory) is
// warned about, since the cursor only filters within one run's
// numbering.
func Replay(dir string, since uint64, fn func(obs.Event) error) (ReadStats, error) {
	var stats ReadStats
	segs, err := Segments(dir)
	if err != nil {
		return stats, err
	}
	var lastSeq uint64
	warnedRegress := false
	for _, seg := range segs {
		stats.Segments++
		if err := replaySegment(seg, &stats, func(e obs.Event) error {
			if e.Seq < lastSeq && !warnedRegress {
				stats.Warnings = append(stats.Warnings, fmt.Sprintf(
					"%s: sequence regressed from %d to %d (multiple runs in one journal dir?)",
					filepath.Base(seg), lastSeq, e.Seq))
				warnedRegress = true
			}
			lastSeq = e.Seq
			if e.Seq <= since {
				return nil
			}
			stats.Events++
			return fn(e)
		}); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// ReadAll replays the journal into a slice.
func ReadAll(dir string, since uint64) ([]obs.Event, ReadStats, error) {
	var out []obs.Event
	stats, err := Replay(dir, since, func(e obs.Event) error {
		out = append(out, e)
		return nil
	})
	return out, stats, err
}

// replaySegment reads one segment file line by line, decoding through
// the shared codec, with the torn-tail tolerance described on Replay.
func replaySegment(path string, stats *ReadStats, fn func(obs.Event) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64*1024)
	line := 0
	for {
		text, rerr := br.ReadString('\n')
		if rerr != nil && rerr != io.EOF {
			return fmt.Errorf("%s: %w", path, rerr)
		}
		atEOF := rerr == io.EOF
		if text != "" {
			line++
			if t := strings.TrimSpace(text); t != "" {
				e, derr := obs.DecodeJSONLine([]byte(t))
				switch {
				case derr == nil:
					if err := fn(e); err != nil {
						return err
					}
				case atEOF && !strings.HasSuffix(text, "\n"):
					stats.Torn++
					stats.Warnings = append(stats.Warnings, fmt.Sprintf(
						"%s: line %d: ignoring torn trailing line: %v", filepath.Base(path), line, derr))
				default:
					return fmt.Errorf("journal: %s: line %d: %w", path, line, derr)
				}
			}
		}
		if atEOF {
			return nil
		}
	}
}
