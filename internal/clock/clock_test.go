package clock

import (
	"strings"
	"testing"

	"github.com/chronus-sdn/chronus/internal/obs"
)

// applyEvent builds one sw.apply point event the way switchd emits it.
func applyEvent(seq uint64, sw string, at, skew int64) obs.Event {
	return obs.Event{
		Seq: seq, VT: at + skew, Name: "sw.apply",
		Attrs: []obs.Attr{
			obs.A("switch", sw), obs.A("skew", skew), obs.A("at", at),
			obs.A("key", "f/0"), obs.A("cmd", "mod"), obs.A("next", "R2"),
		},
	}
}

// spanEvent builds a finished-span event the way the tracer encodes it:
// structural attrs first (span/parent/op), then user attrs.
func spanEvent(seq uint64, vt int64, op string, attrs ...obs.Attr) obs.Event {
	all := append([]obs.Attr{
		obs.A("span", seq), obs.A("parent", 0), obs.A("op", op),
	}, attrs...)
	return obs.Event{Seq: seq, VT: vt, Name: obs.SpanEventName, Attrs: all}
}

func TestEstimatorMedianOffsetAndJitter(t *testing.T) {
	e := New(nil)
	// Odd window, symmetric noise (zero slope): median is the middle
	// sample and jitter the worst deviation from it.
	skews := []int64{2, 3, 2, 3, 2} // median 2, worst deviation 1
	for i, s := range skews {
		e.Observe([]obs.Event{applyEvent(uint64(i+1), "R1", int64(100+10*i), s)})
	}
	est, ok := e.Estimate("R1")
	if !ok {
		t.Fatal("no estimate for R1")
	}
	if est.OffsetMilliTicks != 2000 {
		t.Errorf("offset = %d mticks, want 2000", est.OffsetMilliTicks)
	}
	if est.DriftMilliTicksPerKtick != 0 {
		t.Errorf("drift = %d, want 0 for symmetric noise", est.DriftMilliTicksPerKtick)
	}
	if est.JitterMilliTicks != 1000 {
		t.Errorf("jitter = %d mticks, want 1000", est.JitterMilliTicks)
	}
	if est.Samples != 5 || est.WindowSamples != 5 {
		t.Errorf("samples = %d/%d, want 5/5", est.Samples, est.WindowSamples)
	}
	if est.FirstAt != 100 || est.LastAt != 140 {
		t.Errorf("window ticks [%d, %d], want [100, 140]", est.FirstAt, est.LastAt)
	}

	// Even window: median is the rounded mean of the middle pair.
	e2 := New(nil)
	for i, s := range []int64{0, 4, 4, 0} {
		e2.Observe([]obs.Event{applyEvent(uint64(i+1), "R2", int64(50+5*i), s)})
	}
	est2, _ := e2.Estimate("R2")
	if est2.OffsetMilliTicks != 2000 { // (0+4)*500
		t.Errorf("even-window offset = %d mticks, want 2000", est2.OffsetMilliTicks)
	}
}

func TestEstimatorWindowEvictsOldSamples(t *testing.T) {
	e := New(nil)
	var seq uint64
	// Fill beyond the window with skew 9, then overwrite with skew 1.
	for i := 0; i < Window; i++ {
		seq++
		e.Observe([]obs.Event{applyEvent(seq, "R1", int64(i), 9)})
	}
	for i := 0; i < Window; i++ {
		seq++
		e.Observe([]obs.Event{applyEvent(seq, "R1", int64(Window+i), 1)})
	}
	est, _ := e.Estimate("R1")
	if est.OffsetMilliTicks != 1000 {
		t.Errorf("offset after recovery = %d mticks, want 1000 (old spike must age out)", est.OffsetMilliTicks)
	}
	if est.Samples != 2*Window || est.WindowSamples != Window {
		t.Errorf("samples = %d/%d, want %d/%d", est.Samples, est.WindowSamples, 2*Window, Window)
	}
}

func TestEstimatorDriftSlope(t *testing.T) {
	e := New(nil)
	// skew = at/100: exactly 10 mticks/ktick... in ticks per tick the
	// slope is 1/100, i.e. 10 ticks per ktick = 10_000 mticks/ktick.
	for i := 0; i < 20; i++ {
		at := int64(100 * i)
		e.Observe([]obs.Event{applyEvent(uint64(i+1), "R1", at, at/100)})
	}
	est, _ := e.Estimate("R1")
	if est.DriftMilliTicksPerKtick != 10_000 {
		t.Errorf("drift = %d mticks/ktick, want 10000", est.DriftMilliTicksPerKtick)
	}
	// A constant offset has zero slope.
	e2 := New(nil)
	for i := 0; i < 8; i++ {
		e2.Observe([]obs.Event{applyEvent(uint64(i+1), "R1", int64(100*i), 3)})
	}
	est2, _ := e2.Estimate("R1")
	if est2.DriftMilliTicksPerKtick != 0 {
		t.Errorf("constant-offset drift = %d, want 0", est2.DriftMilliTicksPerKtick)
	}
}

func TestEstimatorBarrierRTT(t *testing.T) {
	e := New(nil)
	e.Observe([]obs.Event{
		spanEvent(1, 100, "ctl.send", obs.A("switch", "R1"), obs.A("xid", 7), obs.A("kind", "barrier")),
		spanEvent(2, 105, "sw.barrier", obs.A("switch", "R1"), obs.A("xid", 7)),
		spanEvent(3, 110, "ctl.send", obs.A("switch", "R1"), obs.A("xid", 8), obs.A("kind", "barrier")),
		spanEvent(4, 113, "sw.barrier", obs.A("switch", "R1"), obs.A("xid", 8)),
		// A flowmod send must not enter the RTT pairing.
		spanEvent(5, 120, "ctl.send", obs.A("switch", "R1"), obs.A("xid", 9), obs.A("kind", "flowmod")),
	})
	est, ok := e.Estimate("R1")
	if !ok {
		t.Fatal("no estimate for R1")
	}
	if est.RTTSamples != 2 {
		t.Fatalf("rtt samples = %d, want 2", est.RTTSamples)
	}
	if est.RTTTicks != 5 { // sorted {3,5}: upper median
		t.Errorf("rtt = %d ticks, want 5", est.RTTTicks)
	}
}

func TestPredictSkewExtrapolatesDrift(t *testing.T) {
	e := New(nil)
	// skew = at/100 with samples at 0..1900: median 9.5 ticks at
	// mean x = 950; at tick 3000 the line predicts ~30 ticks.
	for i := 0; i < 20; i++ {
		at := int64(100 * i)
		e.Observe([]obs.Event{applyEvent(uint64(i+1), "R1", at, at/100)})
	}
	pred, ok := e.PredictSkew("R1", 3000)
	if !ok {
		t.Fatal("no prediction for R1")
	}
	// Centered extrapolation: 9500 + 10*(3000-950) = 30000 mticks,
	// plus the quantization jitter of the window (500 mticks).
	if pred < 29_000 || pred > 32_000 {
		t.Errorf("predicted skew at tick 3000 = %d mticks, want ~30500", pred)
	}
	if _, ok := e.PredictSkew("R9", 3000); ok {
		t.Error("prediction for an unseen switch must report ok=false")
	}
}

func TestTicksToViolation(t *testing.T) {
	e := New(nil)
	for i := 0; i < 20; i++ {
		at := int64(100 * i)
		e.Observe([]obs.Event{applyEvent(uint64(i+1), "R1", at, at/100)})
	}
	// Slack 25 ticks from tick 2000: the line (skew ~= at/100) crosses
	// 25-ticks-minus-jitter around tick 2400.
	ttv := e.TicksToViolation("R1", 25, 2000)
	if ttv <= 0 || ttv > 600 {
		t.Errorf("ttv = %d ticks, want a positive crossing within ~600", ttv)
	}
	// Already past: zero.
	if got := e.TicksToViolation("R1", 5, 2000); got != 0 {
		t.Errorf("ttv with exhausted slack = %d, want 0", got)
	}
	// No drift: never.
	e2 := New(nil)
	for i := 0; i < 8; i++ {
		e2.Observe([]obs.Event{applyEvent(uint64(i+1), "R1", int64(100*i), 2)})
	}
	if got := e2.TicksToViolation("R1", 10, 5000); got != -1 {
		t.Errorf("driftless ttv = %d, want -1", got)
	}
}

func TestEstimatesSortedAndGaugesMirrored(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(reg)
	e.Observe([]obs.Event{
		applyEvent(1, "R2", 100, 4),
		applyEvent(2, "R1", 100, -3),
		applyEvent(3, "R10", 100, 0),
	})
	ests := e.Estimates()
	if len(ests) != 3 {
		t.Fatalf("estimates = %d switches, want 3", len(ests))
	}
	for i, want := range []string{"R1", "R10", "R2"} {
		if ests[i].Switch != want {
			t.Errorf("estimates[%d] = %s, want %s (ascending by name)", i, ests[i].Switch, want)
		}
	}
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	exp := buf.String()
	for _, want := range []string{
		`chronus_clock_offset_ticks{switch="R1"} -3`,
		`chronus_clock_offset_ticks{switch="R2"} 4`,
		`chronus_clock_jitter_ticks{switch="R10"} 0`,
		`chronus_clock_drift_ticks_per_ktick{switch="R1"} 0`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestEstimatorCursorAdvances(t *testing.T) {
	e := New(nil)
	e.Observe([]obs.Event{applyEvent(41, "R1", 10, 0)})
	if got := e.Cursor(); got != 41 {
		t.Errorf("cursor = %d, want 41", got)
	}
	// Nil estimator is a no-op observer.
	var nilEst *Estimator
	nilEst.Observe([]obs.Event{applyEvent(1, "R1", 10, 0)})
	if nilEst.Cursor() != 0 {
		t.Error("nil estimator cursor must be 0")
	}
	if _, ok := nilEst.Estimate("R1"); ok {
		t.Error("nil estimator must report no estimates")
	}
}
