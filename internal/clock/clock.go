// Package clock estimates per-switch clock quality online from the
// trace stream: offset, drift rate and jitter of every switch's local
// clock relative to the controller's reference time.
//
// Timed SDNs stand on clock accuracy (Time4's premise), so the thing to
// measure is the clock itself, not just the damage after a late fire.
// The estimator consumes two signal sources that already exist in every
// execution: sw.apply fire-skew events (a timed FlowMod's actual minus
// requested tick, a direct offset sample of the switch clock at the
// requested tick) and the ctl.send/sw.barrier span pairs of barrier
// round trips (a one-way control latency sample, the lead time any
// corrective resync would need).
//
// The filter is deliberately simple and deterministic: per switch, a
// bounded window of recent samples yields a windowed-median offset, a
// least-squares drift slope and a max-deviation jitter, all in integer
// milliticks — no wall-clock reads, no floating point, so for a fixed
// seed the estimates are byte-reproducible in -virtual mode. The health
// engine extrapolates offset + drift to each switch's scheduled apply
// tick to raise WARN before the first late apply (see internal/health).
package clock

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"github.com/chronus-sdn/chronus/internal/obs"
)

// Window bounds the per-switch sample window: large enough for a stable
// median and slope, small enough that a resynced clock is forgotten
// within one probing round.
const Window = 32

// rttWindow bounds the per-switch barrier-latency window.
const rttWindow = 32

// sample is one fire-skew observation: the requested apply tick and the
// signed skew (actual - requested) in ticks.
type sample struct {
	at   int64
	skew int64
}

// switchState accumulates one switch's evidence.
type switchState struct {
	samples []sample // ring of the last Window fire-skew samples
	rtts    []int64  // ring of the last rttWindow one-way barrier latencies
	total   int64    // all-time fire-skew sample count
}

func (st *switchState) push(s sample) {
	st.total++
	if len(st.samples) == Window {
		copy(st.samples, st.samples[1:])
		st.samples[Window-1] = s
		return
	}
	st.samples = append(st.samples, s)
}

func (st *switchState) pushRTT(lat int64) {
	if len(st.rtts) == rttWindow {
		copy(st.rtts, st.rtts[1:])
		st.rtts[rttWindow-1] = lat
		return
	}
	st.rtts = append(st.rtts, lat)
}

// SwitchClock is one switch's estimate. Sub-tick quantities are in
// milliticks (1/1000 tick) so the JSON stays integer and deterministic.
type SwitchClock struct {
	Switch string `json:"switch"`
	// OffsetMilliTicks is the windowed-median fire skew: the estimated
	// clock offset at the window's sample ticks (positive = late).
	OffsetMilliTicks int64 `json:"offset_mticks"`
	// DriftMilliTicksPerKtick is the least-squares slope of skew over
	// requested tick, in milliticks per kilotick (1 tick/ktick = 1000).
	DriftMilliTicksPerKtick int64 `json:"drift_mticks_per_ktick"`
	// JitterMilliTicks is the largest residual of a window sample from
	// the fitted offset+drift line — the noise left once the
	// deterministic part of the clock error is explained.
	JitterMilliTicks int64 `json:"jitter_mticks"`
	// RTTTicks is the median one-way barrier latency (ctl.send to
	// sw.barrier), the control-plane lead time toward this switch.
	RTTTicks int64 `json:"rtt_ticks"`
	// Samples is the all-time fire-skew sample count; WindowSamples how
	// many of them the current window holds.
	Samples       int64 `json:"samples"`
	WindowSamples int64 `json:"window_samples"`
	RTTSamples    int64 `json:"rtt_samples"`
	// FirstAt/LastAt bound the window's requested ticks.
	FirstAt int64 `json:"first_at"`
	LastAt  int64 `json:"last_at"`
}

// pendingSend is an outstanding barrier request: ctl.send observed, the
// matching sw.barrier not yet.
type pendingSend struct {
	sw string
	vt int64
}

// maxPending bounds the xid-matching table; barriers that never get a
// reply (disconnects) must not leak entries forever.
const maxPending = 4096

// Estimator folds trace events into per-switch clock estimates. All
// methods are safe for concurrent use; a nil estimator is a no-op.
type Estimator struct {
	mu      sync.Mutex
	reg     *obs.Registry
	cursor  uint64
	states  map[string]*switchState
	pending map[string]pendingSend // barrier xid -> ctl.send
}

// RegisterMetrics pre-registers the clock gauge families on r so they
// appear in expositions before the first estimate.
func RegisterMetrics(r *obs.Registry) {
	r.Help("chronus_clock_offset_ticks", "Estimated per-switch clock offset: windowed-median timed-fire skew, in ticks (positive = firing late).")
	r.Help("chronus_clock_drift_ticks_per_ktick", "Estimated per-switch clock drift: least-squares slope of fire skew over scheduled tick, in ticks per 1000 ticks.")
	r.Help("chronus_clock_jitter_ticks", "Estimated per-switch clock jitter: largest window deviation from the median offset, in ticks.")
}

// New builds an estimator mirroring its estimates as gauges on reg (nil
// disables the metric mirror but not the estimator).
func New(reg *obs.Registry) *Estimator {
	if reg != nil {
		RegisterMetrics(reg)
	}
	return &Estimator{
		reg:     reg,
		states:  map[string]*switchState{},
		pending: map[string]pendingSend{},
	}
}

// Cursor returns the trace sequence number up to which events have been
// folded; feed Observe the events after it.
func (e *Estimator) Cursor() uint64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cursor
}

// Observe folds a batch of trace events (as returned by
// Tracer.Events(estimator.Cursor())) into the windows. It consumes
// sw.apply point events (fire-skew samples) and the ctl.send/sw.barrier
// span pairs of barrier round trips (latency samples); everything else
// only moves the cursor.
func (e *Estimator) Observe(events []obs.Event) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ev := range events {
		if ev.Seq > e.cursor {
			e.cursor = ev.Seq
		}
		switch ev.Name {
		case "sw.apply":
			e.observeApply(ev)
		case obs.SpanEventName:
			e.observeSpan(ev)
		}
	}
}

// observeApply folds one fire-skew sample. The sw.apply point event
// carries the switch, the signed skew and the requested tick.
func (e *Estimator) observeApply(ev obs.Event) {
	var sw string
	var skew, at int64
	var haveSkew, haveAt bool
	for _, a := range ev.Attrs {
		switch a.K {
		case "switch":
			sw = a.V
		case "skew":
			if v, err := strconv.ParseInt(a.V, 10, 64); err == nil {
				skew, haveSkew = v, true
			}
		case "at":
			if v, err := strconv.ParseInt(a.V, 10, 64); err == nil {
				at, haveAt = v, true
			}
		}
	}
	if sw == "" || !haveSkew || !haveAt {
		return
	}
	e.state(sw).push(sample{at: at, skew: skew})
}

// observeSpan pairs barrier ctl.send spans with the switch-side
// sw.barrier span carrying the same xid; the virtual-time difference is
// a one-way control latency sample.
func (e *Estimator) observeSpan(ev obs.Event) {
	var op, sw, xid, kind string
	for _, a := range ev.Attrs {
		switch a.K {
		case "op":
			op = a.V
		case "switch":
			sw = a.V
		case "xid":
			xid = a.V
		case "kind":
			kind = a.V
		}
	}
	switch op {
	case "ctl.send":
		if kind != "barrier" || xid == "" || sw == "" {
			return
		}
		if len(e.pending) >= maxPending {
			// A reply this old is never coming; drop the table rather
			// than grow without bound on a disconnect-heavy stream.
			e.pending = map[string]pendingSend{}
		}
		e.pending[xid] = pendingSend{sw: sw, vt: ev.VT}
	case "sw.barrier":
		if xid == "" {
			return
		}
		snd, ok := e.pending[xid]
		if !ok {
			return
		}
		delete(e.pending, xid)
		if lat := ev.VT - snd.vt; lat >= 0 {
			e.state(snd.sw).pushRTT(lat)
		}
	}
}

func (e *Estimator) state(sw string) *switchState {
	st, ok := e.states[sw]
	if !ok {
		st = &switchState{}
		e.states[sw] = st
	}
	return st
}

// estimate computes one switch's SwitchClock from its window. Caller
// holds the lock. Pure integer arithmetic: the median of an even window
// is the rounded mean of the middle pair, the drift slope is the exact
// least-squares quotient over x-centered samples (centering keeps every
// intermediate far from overflow), jitter the max residual from the
// fitted line.
func (e *Estimator) estimate(sw string) SwitchClock {
	st := e.states[sw]
	out := SwitchClock{Switch: sw}
	if st == nil {
		return out
	}
	out.Samples = st.total
	out.WindowSamples = int64(len(st.samples))
	out.RTTSamples = int64(len(st.rtts))
	if len(st.rtts) > 0 {
		sorted := append([]int64(nil), st.rtts...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		out.RTTTicks = sorted[len(sorted)/2]
	}
	n := int64(len(st.samples))
	if n == 0 {
		return out
	}
	out.FirstAt = st.samples[0].at
	out.LastAt = st.samples[n-1].at

	// Median offset in milliticks.
	skews := make([]int64, n)
	for i, s := range st.samples {
		skews[i] = s.skew
	}
	sort.Slice(skews, func(i, j int) bool { return skews[i] < skews[j] })
	if n%2 == 1 {
		out.OffsetMilliTicks = skews[n/2] * 1000
	} else {
		out.OffsetMilliTicks = (skews[n/2-1] + skews[n/2]) * 500
	}

	// Drift: least-squares slope of skew over requested tick. Center x
	// on its integer mean so the sums stay small.
	mean := st.meanAt()
	if n >= 2 {
		var sx, sy, sxx, sxy int64
		for _, s := range st.samples {
			x := s.at - mean
			sx += x
			sy += s.skew
			sxx += x * x
			sxy += x * s.skew
		}
		den := n*sxx - sx*sx
		if den > 0 {
			// slope = num/den ticks per tick; scale to mticks/ktick
			// (x 1e6) before the division to keep integer precision.
			out.DriftMilliTicksPerKtick = (n*sxy - sx*sy) * 1_000_000 / den
		}
	}

	// Jitter: max residual from the fitted line (level = median at the
	// window's x-center), milliticks. With zero drift this degenerates
	// to the max deviation from the median.
	for _, s := range st.samples {
		dev := s.skew*1000 - (out.OffsetMilliTicks + out.DriftMilliTicksPerKtick*(s.at-mean)/1000)
		if dev < 0 {
			dev = -dev
		}
		if dev > out.JitterMilliTicks {
			out.JitterMilliTicks = dev
		}
	}
	return out
}

// meanAt returns the window's integer mean requested tick (the x-center
// of the fitted line). Caller holds the lock; window must be non-empty.
func (st *switchState) meanAt() int64 {
	var sum int64
	for _, s := range st.samples {
		sum += s.at
	}
	return sum / int64(len(st.samples))
}

// Estimate returns one switch's current estimate; ok is false when the
// estimator has no evidence for it at all.
func (e *Estimator) Estimate(sw string) (SwitchClock, bool) {
	if e == nil {
		return SwitchClock{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.states[sw]; !ok {
		return SwitchClock{}, false
	}
	return e.estimate(sw), true
}

// Estimates returns every switch's estimate, ascending by switch name,
// and mirrors the estimates onto the registry gauges (the same pattern
// health.Verdict uses: the read refreshes the exposition).
func (e *Estimator) Estimates() []SwitchClock {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.states))
	for name := range e.states {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]SwitchClock, 0, len(names))
	for _, name := range names {
		est := e.estimate(name)
		out = append(out, est)
		if e.reg != nil {
			e.reg.Gauge(fmt.Sprintf("chronus_clock_offset_ticks{switch=%q}", name)).Set(roundMilli(est.OffsetMilliTicks))
			e.reg.Gauge(fmt.Sprintf("chronus_clock_drift_ticks_per_ktick{switch=%q}", name)).Set(roundMilli(est.DriftMilliTicksPerKtick))
			e.reg.Gauge(fmt.Sprintf("chronus_clock_jitter_ticks{switch=%q}", name)).Set(roundMilli(est.JitterMilliTicks))
		}
	}
	return out
}

// PredictSkew forecasts a conservative bound on |fire skew| in
// milliticks for switch sw at the given future tick: the fitted line
// (median offset + drift slope from the window's x-center) extrapolated
// to atTick, widened by the observed jitter. ok is false without any
// fire-skew samples. This is health.ClockSource's first half.
func (e *Estimator) PredictSkew(sw string, atTick int64) (int64, bool) {
	if e == nil {
		return 0, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.states[sw]
	if st == nil || len(st.samples) == 0 {
		return 0, false
	}
	est := e.estimate(sw)
	center := est.OffsetMilliTicks + est.DriftMilliTicksPerKtick*(atTick-st.meanAt())/1000
	if center < 0 {
		center = -center
	}
	return center + est.JitterMilliTicks, true
}

// TicksToViolation forecasts how many ticks past fromTick the predicted
// skew bound stays within slackTicks: 0 means the bound already exceeds
// the slack at fromTick, -1 means the forecast never crosses it (no
// drift). This is health.ClockSource's second half — the time-to-
// violation behind the predictive WARN.
func (e *Estimator) TicksToViolation(sw string, slackTicks, fromTick int64) int64 {
	if e == nil {
		return -1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.states[sw]
	if st == nil || len(st.samples) == 0 {
		return -1
	}
	est := e.estimate(sw)
	limit := slackTicks*1000 - est.JitterMilliTicks
	mean := st.meanAt()
	off, d := est.OffsetMilliTicks, est.DriftMilliTicksPerKtick
	at := func(t int64) int64 {
		v := off + d*(t-mean)/1000
		if v < 0 {
			v = -v
		}
		return v
	}
	if at(fromTick) > limit {
		return 0
	}
	if d == 0 {
		return -1
	}
	// Normalize to a rising line: |off + d*x/1000| first exceeds limit
	// in the drift's own direction (the opposite crossing lies in the
	// past once the bound holds at fromTick).
	if d < 0 {
		d, off = -d, -off
	}
	// Smallest dt > 0 with off + d*(fromTick+dt-mean)/1000 > limit.
	dt := ((limit-off)*1000)/d + 1 - (fromTick - mean)
	if dt < 0 {
		dt = 0
	}
	return dt
}

// roundMilli rounds a millitick quantity to whole ticks, half away from
// zero — the same convention timesync.ApplyTick uses.
func roundMilli(m int64) int64 {
	if m >= 0 {
		return (m + 500) / 1000
	}
	return -((-m + 500) / 1000)
}
