package opt

import (
	"math/rand"
	"testing"

	"github.com/chronus-sdn/chronus/internal/core"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/topo"
)

func catchUp(t testing.TB, sharedCap graph.Capacity) *dynflow.Instance {
	t.Helper()
	g := graph.New()
	v := g.AddNodes("s", "a", "m", "d")
	g.MustAddLink(v[0], v[1], 1, 1)
	g.MustAddLink(v[1], v[2], 1, 1)
	g.MustAddLink(v[2], v[3], sharedCap, 1)
	g.MustAddLink(v[0], v[2], 1, 1)
	in := &dynflow.Instance{
		G:      g,
		Demand: 1,
		Init:   graph.Path{v[0], v[1], v[2], v[3]},
		Fin:    graph.Path{v[0], v[2], v[3]},
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("catchUp invalid: %v", err)
	}
	return in
}

func TestExactFig1Optimal(t *testing.T) {
	in := topo.Fig1Example()
	res, err := Exact(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Schedule.Makespan() != 3 {
		t.Fatalf("makespan = %d, want 3", res.Schedule.Makespan())
	}
	if r := dynflow.Validate(in, res.Schedule); !r.OK() {
		t.Fatalf("optimal schedule violates: %s", r.Summary())
	}
}

func TestExactInfeasible(t *testing.T) {
	res, err := Exact(catchUp(t, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
	ok, status, err := Feasible(catchUp(t, 1), Options{})
	if err != nil || ok || status != StatusInfeasible {
		t.Fatalf("Feasible = %v %v %v", ok, status, err)
	}
}

func TestExactSlackImmediate(t *testing.T) {
	res, err := Exact(catchUp(t, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal || res.Schedule.Makespan() != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestExactBudget(t *testing.T) {
	in := topo.Fig1Example()
	res, err := Exact(in, Options{MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusBudget {
		t.Fatalf("status = %v, want budget", res.Status)
	}
	// The greedy incumbent is still available.
	if res.Schedule == nil {
		t.Fatal("no incumbent on budget exhaustion")
	}
}

func TestExactLargeInstanceBudget(t *testing.T) {
	// Large update sets are searched under the node budget and come back
	// with the greedy incumbent rather than an error.
	rng := rand.New(rand.NewSource(5))
	p := topo.DefaultRandomParams(90)
	p.FinalInclude = 1
	in := topo.RandomInstance(rng, p)
	res, err := Exact(in, Options{MaxNodes: 50})
	if err != nil {
		t.Fatalf("Exact on large instance: %v", err)
	}
	if res.Status == StatusOptimal && res.Schedule == nil {
		t.Fatalf("inconsistent result: %+v", res)
	}
}

// TestExactNeverWorseThanGreedy: OPT's makespan is a lower bound on exact
// greedy's, and OPT succeeds whenever greedy does.
func TestExactNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	checked := 0
	for i := 0; i < 25; i++ {
		n := 4 + rng.Intn(5)
		in := topo.RandomInstance(rng, topo.DefaultRandomParams(n))
		gr, gErr := core.Greedy(in, core.Options{Mode: core.ModeExact})
		res, err := Exact(in, Options{MaxNodes: 15000})
		if err != nil {
			t.Fatal(err)
		}
		if gErr == nil {
			if res.Schedule == nil {
				t.Fatalf("instance %d: greedy solved but OPT found nothing", i)
			}
			if res.Status == StatusOptimal && res.Schedule.Makespan() > gr.Schedule.Makespan() {
				t.Fatalf("instance %d: OPT makespan %d > greedy %d", i, res.Schedule.Makespan(), gr.Schedule.Makespan())
			}
			checked++
		}
		if res.Status == StatusOptimal && res.Schedule != nil {
			if r := dynflow.Validate(in, res.Schedule); !r.OK() {
				t.Fatalf("instance %d: OPT schedule violates: %s", i, r.Summary())
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d greedy-solved instances; generator drifted", checked)
	}
}

func TestILPCatchUp(t *testing.T) {
	res, err := SolveILP(catchUp(t, 1), ILPOptions{MaxMakespan: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
	res, err = SolveILP(catchUp(t, 2), ILPOptions{MaxMakespan: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal || res.Schedule.Makespan() != 0 {
		t.Fatalf("res = %+v", res)
	}
	if r := dynflow.Validate(catchUp(t, 2), res.Schedule); !r.OK() {
		t.Fatalf("ILP schedule violates: %s", r.Summary())
	}
}

// TestILPMatchesExact cross-validates the two solvers on small random
// instances: same feasibility verdict and same optimal makespan.
func TestILPMatchesExact(t *testing.T) {
	if testing.Short() {
		t.Skip("ILP cross-check is slow")
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 8; i++ {
		p := topo.DefaultRandomParams(4 + rng.Intn(2))
		p.MaxDelay = 2
		in := topo.RandomInstance(rng, p)
		ex, err := Exact(in, Options{MaxNodes: 200000})
		if err != nil {
			t.Fatal(err)
		}
		il, err := SolveILP(in, ILPOptions{MaxMakespan: 8})
		if err != nil {
			t.Fatal(err)
		}
		if ex.Status == StatusBudget || il.Status == StatusBudget {
			continue
		}
		if (ex.Status == StatusOptimal) != (il.Status == StatusOptimal) {
			// Exact searches an unbounded horizon; the ILP is capped at 8.
			if ex.Status == StatusOptimal && ex.Schedule.Makespan() > 8 {
				continue
			}
			t.Fatalf("instance %d: exact=%v ilp=%v", i, ex.Status, il.Status)
		}
		if ex.Status == StatusOptimal && ex.Schedule.Makespan() != il.Schedule.Makespan() {
			t.Fatalf("instance %d: exact makespan %d != ilp %d", i, ex.Schedule.Makespan(), il.Schedule.Makespan())
		}
		if il.Schedule != nil {
			if r := dynflow.Validate(in, il.Schedule); !r.OK() {
				t.Fatalf("instance %d: ILP schedule violates: %s", i, r.Summary())
			}
		}
	}
}
