package opt

import (
	"fmt"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/ilp"
	"github.com/chronus-sdn/chronus/internal/lp"
)

// ILPOptions configures SolveILP.
type ILPOptions struct {
	// Start is t0.
	Start dynflow.Tick
	// MaxMakespan caps the horizon scanned (0 = a drain-derived bound).
	MaxMakespan dynflow.Tick
	// MaxNodes is the branch-and-bound budget per horizon (0 = 20000).
	MaxNodes int
	// MaxPathsPerEmission caps path enumeration (0 = 64).
	MaxPathsPerEmission int
}

// SolveILP solves MUTP through a literal encoding of the paper's integer
// program (3): for every emission tick one loop-free time-extended path is
// selected (variables x_{f,p}), link-instance capacities bound the summed
// demand (constraint (3a)), and each flow picks exactly one path (3b).
//
// The paper's formulation leaves the coupling between path choices and a
// single per-switch update time implicit; we make it explicit with binaries
// y_{v,k} ("switch v activates its new rule at tick Start+k", exactly one k
// per switch) and linking constraints: a path whose hop uses v's old rule at
// arrival a forbids every y_{v,k} with k <= a−Start, and a hop using the new
// rule requires one of them. The minimum |T| objective becomes a scan over
// horizons (smallest feasible horizon wins), mirroring the paper's
// time-step-by-time-step extension of G_T.
//
// Path enumeration is exponential; this entry point exists to cross-check
// Exact on small instances and to document the formulation faithfully.
func SolveILP(in *dynflow.Instance, opts ILPOptions) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	maxM := opts.MaxMakespan
	if maxM == 0 {
		maxM = dynflow.Tick(in.Init.Delay(in.G) + in.Fin.Delay(in.G) + graph.Delay(len(in.UpdateSet())))
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 20000
	}
	maxPaths := opts.MaxPathsPerEmission
	if maxPaths <= 0 {
		maxPaths = 64
	}
	totalNodes := 0
	for m := dynflow.Tick(0); m <= maxM; m++ {
		sched, nodes, status, err := solveHorizon(in, opts.Start, m, maxNodes, maxPaths)
		totalNodes += nodes
		if err != nil {
			return nil, err
		}
		switch status {
		case ilp.Optimal:
			if sched != nil {
				return &Result{Status: StatusOptimal, Schedule: sched, Nodes: totalNodes}, nil
			}
		case ilp.Budget:
			return &Result{Status: StatusBudget, Nodes: totalNodes}, nil
		}
	}
	return &Result{Status: StatusInfeasible, Nodes: totalNodes}, nil
}

// solveHorizon builds and solves the program for makespan exactly <= m.
func solveHorizon(in *dynflow.Instance, start, m dynflow.Tick, maxNodes, maxPaths int) (*dynflow.Schedule, int, ilp.Status, error) {
	updates := in.UpdateSet()
	phiInit := dynflow.Tick(in.Init.Delay(in.G))
	phiFin := dynflow.Tick(in.Fin.Delay(in.G))
	// Emission window as in the validator: in-flight history plus the tail
	// that can still collide with mixed traces.
	emitLo := start - phiInit
	emitHi := start + m + phiInit + phiFin
	tenHi := emitHi + phiInit + phiFin + dynflow.Tick(in.G.NumNodes())
	ten := dynflow.Expand(in.G, emitLo, tenHi)

	// Variable layout: y_{v,k} first, then x_{e,p}.
	type yKey struct {
		v graph.NodeID
		k dynflow.Tick
	}
	yIdx := make(map[yKey]int)
	var nVars int
	for _, v := range updates {
		for k := dynflow.Tick(0); k <= m; k++ {
			yIdx[yKey{v, k}] = nVars
			nVars++
		}
	}

	type pathVar struct {
		emit dynflow.Tick
		path []dynflow.TELink
		idx  int
	}
	var pvars []pathVar
	for e := emitLo; e <= emitHi; e++ {
		paths := ten.EnumeratePaths(in.Source(), in.Dest(), e, maxPaths)
		if len(paths) == 0 {
			return nil, 0, ilp.Infeasible, nil
		}
		for _, p := range paths {
			pvars = append(pvars, pathVar{emit: e, path: p, idx: nVars})
			nVars++
		}
	}

	prob := &ilp.Problem{NumVars: nVars, Objective: make([]float64, nVars)}
	// Feasibility problem: reward early activation slightly so the solver
	// prefers compact schedules among the feasible ones.
	for key, idx := range yIdx {
		prob.Objective[idx] = -float64(key.k) * 0.001
	}

	// Exactly one activation tick per switch.
	for _, v := range updates {
		coeffs := make([]float64, nVars)
		for k := dynflow.Tick(0); k <= m; k++ {
			coeffs[yIdx[yKey{v, k}]] = 1
		}
		prob.AddConstraint(coeffs, lp.EQ, 1)
	}
	// Exactly one path per emission (3b).
	byEmit := make(map[dynflow.Tick][]pathVar)
	for _, pv := range pvars {
		byEmit[pv.emit] = append(byEmit[pv.emit], pv)
	}
	for e := emitLo; e <= emitHi; e++ {
		coeffs := make([]float64, nVars)
		for _, pv := range byEmit[e] {
			coeffs[pv.idx] = 1
		}
		prob.AddConstraint(coeffs, lp.EQ, 1)
	}
	// Capacity per time-extended link instance (3a).
	use := make(map[dynflow.LinkInstance][]int)
	for _, pv := range pvars {
		for _, l := range pv.path {
			use[l.Instance()] = append(use[l.Instance()], pv.idx)
		}
	}
	for li, idxs := range use {
		l, ok := in.G.Link(li.From, li.To)
		if !ok {
			continue
		}
		coeffs := make([]float64, nVars)
		for _, idx := range idxs {
			coeffs[idx] = float64(in.Demand)
		}
		prob.AddConstraint(coeffs, lp.LE, float64(l.Cap))
	}
	// Consistency linking: path hops must agree with activation times.
	updSet := make(map[graph.NodeID]bool, len(updates))
	for _, v := range updates {
		updSet[v] = true
	}
	for _, pv := range pvars {
		consistent := true
		for _, hop := range pv.path {
			v := hop.From.V
			arr := hop.From.T // decision is taken when the unit is at v
			oldNext := in.OldNext(v)
			newNext := in.NewNext(v)
			switch hop.To.V {
			case newNext:
				if oldNext == newNext {
					continue // rule unchanged; always consistent
				}
				if !updSet[v] {
					consistent = false
					break
				}
				// Requires activation by arr: x <= sum_{k <= arr-start} y.
				coeffs := make([]float64, nVars)
				coeffs[pv.idx] = -1
				feasibleK := false
				for k := dynflow.Tick(0); k <= m; k++ {
					if start+k <= arr {
						coeffs[yIdx[yKey{v, k}]] = 1
						feasibleK = true
					}
				}
				if !feasibleK {
					consistent = false
					break
				}
				prob.AddConstraint(coeffs, lp.GE, 0)
			case oldNext:
				if !updSet[v] {
					continue // never flips; old rule always valid
				}
				// Requires activation after arr: x + y_{v,k} <= 1 for k <= arr-start.
				for k := dynflow.Tick(0); k <= m; k++ {
					if start+k <= arr {
						coeffs := make([]float64, nVars)
						coeffs[pv.idx] = 1
						coeffs[yIdx[yKey{v, k}]] = 1
						prob.AddConstraint(coeffs, lp.LE, 1)
					}
				}
			default:
				// Hop follows neither rule: the path is unrealizable.
				consistent = false
			}
			if !consistent {
				break
			}
		}
		if !consistent {
			coeffs := make([]float64, nVars)
			coeffs[pv.idx] = 1
			prob.AddConstraint(coeffs, lp.EQ, 0)
		}
	}

	sol, err := ilp.Solve(prob, ilp.Options{MaxNodes: maxNodes})
	if err != nil {
		return nil, 0, 0, fmt.Errorf("opt: ilp horizon %d: %w", m, err)
	}
	if sol.Status != ilp.Optimal || !sol.Found {
		return nil, sol.Nodes, sol.Status, nil
	}
	sched := dynflow.NewSchedule(start)
	for key, idx := range yIdx {
		if sol.X[idx] == 1 {
			sched.Set(key.v, start+key.k)
		}
	}
	return sched, sol.Nodes, ilp.Optimal, nil
}
