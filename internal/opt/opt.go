// Package opt provides exact solvers for the Minimum Update Time Problem:
// a combinatorial branch and bound over timed update schedules (the OPT
// baseline of the paper's evaluation, there obtained by branch and bound on
// integer program (3)), and a literal encoding of that integer program over
// enumerated time-extended paths for cross-validation on small instances.
//
// Exact search is exponential — MUTP is NP-complete (Theorem 1) — so every
// entry point takes a node budget. Exhausting the budget returns the best
// incumbent (seeded by the greedy schedule when one exists) with
// StatusBudget, which is how the evaluation reproduces the paper's Fig. 10
// "does not complete within the limit" behaviour for OPT.
package opt

import (
	"fmt"
	"time"

	"github.com/chronus-sdn/chronus/internal/core"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
)

// Status classifies an exact-search outcome.
type Status int

const (
	// StatusOptimal means the returned schedule has provably minimum
	// makespan.
	StatusOptimal Status = iota + 1
	// StatusInfeasible means no congestion- and loop-free schedule exists
	// within the makespan cap.
	StatusInfeasible
	// StatusBudget means the node budget ran out; Schedule (if non-nil) is
	// the best incumbent found.
	StatusBudget
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusBudget:
		return "budget-exhausted"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Options configures Exact.
type Options struct {
	// Start is t0.
	Start dynflow.Tick
	// MaxNodes caps search nodes, where a node is one validator invocation
	// (0 = default 50000).
	MaxNodes int
	// Timeout bounds the wall-clock search time (0 = none). Exceeding it
	// behaves like budget exhaustion: the best incumbent is returned with
	// StatusBudget — the paper's "does not complete within the time
	// limit".
	Timeout time.Duration
	// MaxMakespan caps the schedules considered (0 = automatic bound: the
	// greedy makespan when greedy succeeds, otherwise a drain-derived
	// bound).
	MaxMakespan dynflow.Tick
}

// Result is the outcome of Exact or SolveILP.
type Result struct {
	Status   Status
	Schedule *dynflow.Schedule // nil unless a schedule was found
	Nodes    int
}

// Exact computes a minimum-makespan congestion- and loop-free schedule by
// iterative deepening on the makespan with depth-first search over per-tick
// update sets.
//
// Soundness of pruning: when the search stands at tick t, every violation
// event stamped at or before t (link-instance departures, loop or blackhole
// arrivals) is fully determined by the flips already placed — later flips
// only affect arrivals after t — so a partial schedule exhibiting such an
// event can be discarded without losing any completion.
func Exact(in *dynflow.Instance, opts Options) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	pending := in.UpdateSet()
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 50000
	}
	res := &Result{}
	if len(pending) == 0 {
		res.Status = StatusOptimal
		res.Schedule = dynflow.NewSchedule(opts.Start)
		return res, nil
	}

	// Seed the incumbent with the greedy schedule: it provides the upper
	// bound for iterative deepening and the fallback on budget exhaustion.
	ub := opts.MaxMakespan
	// The seed uses the fast greedy: at the scales where Exact is asked to
	// prove anything it matches the exact greedy, and at Fig. 10 scales the
	// seeding cost stays a small fraction of the search budget.
	greedyRes, greedyErr := core.Greedy(in, core.Options{Start: opts.Start, Mode: core.ModeFast})
	if len(pending) <= 64 {
		// The fast engine's closed-form checks are more conservative than
		// the validator; on small instances the exact greedy often finds a
		// schedule (or a shorter one), so take the better of the two seeds.
		exactRes, exactErr := core.Greedy(in, core.Options{Start: opts.Start, Mode: core.ModeExact})
		if exactErr == nil && (greedyErr != nil || exactRes.Schedule.Makespan() < greedyRes.Schedule.Makespan()) {
			greedyRes, greedyErr = exactRes, nil
		}
	}
	if greedyErr == nil {
		res.Schedule = greedyRes.Schedule
		gm := greedyRes.Schedule.Makespan()
		if ub == 0 || gm < ub {
			ub = gm
		}
	} else if ub == 0 {
		ub = dynflow.Tick(in.Init.Delay(in.G)+in.Fin.Delay(in.G))*2 + dynflow.Tick(len(pending))
	}

	e := &exactSearch{in: in, start: opts.Start, maxNodes: maxNodes}
	if opts.Timeout > 0 {
		e.deadline = time.Now().Add(opts.Timeout)
	}
	for m := dynflow.Tick(0); m <= ub; m++ {
		if res.Schedule != nil && res.Schedule.Makespan() <= m {
			// The incumbent already achieves this makespan; it is optimal.
			res.Status = StatusOptimal
			res.Nodes = e.nodes
			return res, nil
		}
		s := dynflow.NewSchedule(opts.Start)
		found, exhausted := e.search(s, pending, opts.Start, m)
		if found != nil {
			res.Schedule = found
			res.Status = StatusOptimal
			res.Nodes = e.nodes
			return res, nil
		}
		if exhausted {
			res.Nodes = e.nodes
			res.Status = StatusBudget
			return res, nil
		}
	}
	res.Nodes = e.nodes
	if res.Schedule != nil {
		res.Status = StatusOptimal
		return res, nil
	}
	res.Status = StatusInfeasible
	return res, nil
}

type exactSearch struct {
	in       *dynflow.Instance
	start    dynflow.Tick
	maxNodes int
	nodes    int
	deadline time.Time
}

// exhaustedBudget reports whether the node or time budget ran out; it
// checks the clock only every few nodes.
func (e *exactSearch) exhaustedBudget() bool {
	if e.nodes > e.maxNodes {
		return true
	}
	if !e.deadline.IsZero() && time.Now().After(e.deadline) {
		return true
	}
	return false
}

// search tries to flip all pending switches within makespan m, standing at
// tick t with the flips in s already placed. It returns the completed
// schedule or nil, plus whether the node budget ran out.
func (e *exactSearch) search(s *dynflow.Schedule, pending []graph.NodeID, t dynflow.Tick, m dynflow.Tick) (*dynflow.Schedule, bool) {
	if len(pending) == 0 {
		e.nodes++
		if e.exhaustedBudget() {
			return nil, true
		}
		if dynflow.Validate(e.in, s).OK() {
			return s.Clone(), false
		}
		return nil, false
	}
	if t > e.start+m {
		return nil, false
	}
	forced := t == e.start+m // last tick: everything remaining must flip
	return e.chooseSubset(s, pending, 0, t, m, forced)
}

// chooseSubset enumerates the subset of pending[idx:] flipping at tick t
// (include-first, so larger update sets are tried earlier), then validates
// events up to t and advances to t+1.
func (e *exactSearch) chooseSubset(s *dynflow.Schedule, pending []graph.NodeID, idx int, t, m dynflow.Tick, forced bool) (*dynflow.Schedule, bool) {
	if idx == len(pending) {
		e.nodes++
		if e.exhaustedBudget() {
			return nil, true
		}
		if !violationFreeBefore(e.in, s, t) {
			return nil, false
		}
		var rest []graph.NodeID
		for _, v := range pending {
			if _, ok := s.Time(v); !ok {
				rest = append(rest, v)
			}
		}
		return e.search(s, rest, t+1, m)
	}
	v := pending[idx]
	// Include v at t.
	s.Set(v, t)
	if found, exhausted := e.chooseSubset(s, pending, idx+1, t, m, forced); found != nil || exhausted {
		return found, exhausted
	}
	delete(s.Times, v)
	// Exclude v (not allowed at the last tick).
	if forced {
		return nil, false
	}
	return e.chooseSubset(s, pending, idx+1, t, m, forced)
}

// violationFreeBefore validates the partial schedule (unflipped switches
// keep old rules) and accepts it when every violation event is stamped
// strictly after cutoff — such events may still be repaired by later flips,
// while events at or before cutoff are final.
func violationFreeBefore(in *dynflow.Instance, s *dynflow.Schedule, cutoff dynflow.Tick) bool {
	r := dynflow.Validate(in, s)
	for _, ev := range r.Congestion {
		if ev.Link.Depart <= cutoff {
			return false
		}
	}
	for _, ev := range r.Loops {
		if ev.Tick <= cutoff {
			return false
		}
	}
	for _, ev := range r.Blackholes {
		if ev.Tick <= cutoff {
			return false
		}
	}
	return true
}

// Feasible reports whether any congestion- and loop-free schedule exists,
// within the given node budget. The boolean is meaningful only when the
// returned status is not StatusBudget.
func Feasible(in *dynflow.Instance, opts Options) (bool, Status, error) {
	res, err := Exact(in, opts)
	if err != nil {
		return false, 0, err
	}
	switch res.Status {
	case StatusOptimal:
		return true, res.Status, nil
	case StatusInfeasible:
		return false, res.Status, nil
	default:
		return res.Schedule != nil, res.Status, nil
	}
}
