// Package metrics provides the small statistics toolkit used by the
// evaluation harness: empirical CDFs (Fig. 11), five-number box-plot
// summaries (Fig. 9), aggregate counters with confidence-free means
// (Figs. 7, 8, 10), and fixed-width text rendering for terminal reports.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary is a five-number box-plot summary plus the mean.
type Summary struct {
	N                        int
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
}

// Summarize computes the summary of xs (xs is not modified). An empty
// input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	total := 0.0
	for _, x := range s {
		total += x
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   total / float64(len(s)),
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds the empirical CDF of xs.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P[X <= x].
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Inverse returns the smallest x with P[X <= x] >= p.
func (c *CDF) Inverse(p float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return c.sorted[0]
	}
	idx := int(math.Ceil(p*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// Points returns (x, P[X <= x]) steps suitable for plotting.
func (c *CDF) Points() [][2]float64 {
	out := make([][2]float64, 0, len(c.sorted))
	for i, x := range c.sorted {
		if i+1 < len(c.sorted) && c.sorted[i+1] == x {
			continue // keep only the last step at each distinct x
		}
		out = append(out, [2]float64{x, float64(i+1) / float64(len(c.sorted))})
	}
	return out
}

// Mean returns the arithmetic mean of xs (NaN when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}

// Percent returns 100 * num/den, or 0 when den is zero.
func Percent(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// Table renders rows of cells as aligned fixed-width text with a header,
// for the terminal reports the experiment harness prints.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row formatting each value with %v (floats with %.4g).
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC 4180 comma-separated values: cells
// containing commas, double quotes, or line breaks are quoted, with
// embedded quotes doubled. Plain numeric and label cells — everything
// the harness emits today — render unchanged.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvCell(cell))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func csvCell(s string) string {
	if !strings.ContainsAny(s, ",\"\r\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
