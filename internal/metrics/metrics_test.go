package metrics

import (
	"encoding/csv"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("quartiles = %f %f", s.Q1, s.Q3)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Fatalf("median = %f, want 5", got)
	}
	if got := Quantile(xs, 0); got != 0 {
		t.Fatalf("q0 = %f", got)
	}
	if got := Quantile(xs, 1); got != 10 {
		t.Fatalf("q1 = %f", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile not NaN")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {99, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); got != cse.want {
			t.Fatalf("At(%f) = %f, want %f", cse.x, got, cse.want)
		}
	}
	if got := c.Inverse(0.5); got != 2 {
		t.Fatalf("Inverse(0.5) = %f, want 2", got)
	}
	if got := c.Inverse(1); got != 3 {
		t.Fatalf("Inverse(1) = %f, want 3", got)
	}
	pts := c.Points()
	if len(pts) != 3 { // distinct xs: 1, 2, 3
		t.Fatalf("points = %v", pts)
	}
	if pts[1][0] != 2 || pts[1][1] != 0.75 {
		t.Fatalf("points[1] = %v", pts[1])
	}
}

// TestCDFProperties: At is monotone and Inverse is its quasi-inverse.
func TestCDFProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Round(rng.Float64()*20) / 2
		}
		c := NewCDF(xs)
		prev := -1.0
		for x := -1.0; x <= 11; x += 0.25 {
			p := c.At(x)
			if p < prev-1e-12 {
				return false
			}
			prev = p
		}
		for _, p := range []float64{0.1, 0.5, 0.9, 1} {
			x := c.Inverse(p)
			if c.At(x) < p-1e-12 {
				return false
			}
		}
		// Points are sorted and end at probability 1.
		pts := c.Points()
		if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i][0] < pts[j][0] }) {
			return false
		}
		return pts[len(pts)-1][1] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanAndPercent(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("mean = %f", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean not NaN")
	}
	if got := Percent(3, 4); got != 75 {
		t.Fatalf("percent = %f", got)
	}
	if got := Percent(1, 0); got != 0 {
		t.Fatalf("percent div0 = %f", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"n", "chronus", "or"}}
	tb.AddRowf(10, 95.5, 60.25)
	tb.AddRow("20", "90", "40")
	text := tb.String()
	if !strings.Contains(text, "chronus") || !strings.Contains(text, "95.5") {
		t.Fatalf("table text:\n%s", text)
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "n,chronus,or\n") {
		t.Fatalf("csv:\n%s", csv)
	}
	if !strings.Contains(csv, "10,95.5,60.25") {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := &Table{Header: []string{"plain", "with,comma"}}
	tb.AddRow(`say "hi"`, "line\nbreak")
	tb.AddRow("1", "2")
	got := tb.CSV()
	want := "plain,\"with,comma\"\n\"say \"\"hi\"\"\",\"line\nbreak\"\n1,2\n"
	if got != want {
		t.Fatalf("csv = %q, want %q", got, want)
	}
	// encoding/csv must round-trip the quoted output.
	recs, err := csv.NewReader(strings.NewReader(got)).ReadAll()
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(recs) != 3 || recs[1][0] != `say "hi"` || recs[1][1] != "line\nbreak" {
		t.Fatalf("round-trip = %v", recs)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile not NaN")
	}
	xs := []float64{5, 1, 3}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q=0: %f", got)
	}
	if got := Quantile(xs, -0.5); got != 1 {
		t.Fatalf("q<0: %f", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("q=1: %f", got)
	}
	if got := Quantile(xs, 2); got != 5 {
		t.Fatalf("q>1: %f", got)
	}
	// Duplicates: every quantile of a constant sample is that constant.
	con := []float64{7, 7, 7, 7}
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := Quantile(con, q); got != 7 {
			t.Fatalf("constant q=%f: %f", q, got)
		}
	}
	// Single element.
	if got := Quantile([]float64{42}, 0.73); got != 42 {
		t.Fatalf("singleton: %f", got)
	}
}

func TestCDFInverseEdgeCases(t *testing.T) {
	empty := NewCDF(nil)
	if !math.IsNaN(empty.Inverse(0.5)) || !math.IsNaN(empty.At(1)) {
		t.Fatal("empty CDF not NaN")
	}
	c := NewCDF([]float64{1, 2, 2, 9})
	if got := c.Inverse(0); got != 1 {
		t.Fatalf("p=0: %f", got)
	}
	if got := c.Inverse(-1); got != 1 {
		t.Fatalf("p<0: %f", got)
	}
	if got := c.Inverse(1); got != 9 {
		t.Fatalf("p=1: %f", got)
	}
	if got := c.Inverse(2); got != 9 {
		t.Fatalf("p>1: %f", got)
	}
	// Duplicates: the median of {1,2,2,9} is 2 and P[X <= 2] covers both
	// copies.
	if got := c.Inverse(0.5); got != 2 {
		t.Fatalf("p=0.5: %f", got)
	}
	if got := c.At(2); got != 0.75 {
		t.Fatalf("At(2) = %f", got)
	}
	// Inverse is the left-continuous quantile: the smallest x with
	// P[X <= x] >= p.
	if got := c.Inverse(0.76); got != 9 {
		t.Fatalf("p=0.76: %f", got)
	}
}
