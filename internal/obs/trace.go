package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
)

// Attr is one key/value annotation on a trace event. Values are
// pre-formatted strings so that event serialization is deterministic
// (no map iteration, no float formatting surprises).
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// A formats an attribute value deterministically: integers and strings
// verbatim, everything else through %v.
func A(k string, v any) Attr {
	switch x := v.(type) {
	case string:
		return Attr{K: k, V: x}
	default:
		return Attr{K: k, V: fmt.Sprintf("%v", x)}
	}
}

// Event is one structured trace record. VT is the virtual sim-clock
// stamp in ticks (the deterministic coordinate); Wall is the wall-clock
// stamp in Unix nanoseconds and stays zero (omitted from JSON) when the
// tracer runs in deterministic mode. Span events carry the virtual
// duration in Dur; point events leave it zero.
type Event struct {
	Seq   uint64 `json:"seq"`
	VT    int64  `json:"vt"`
	Wall  int64  `json:"wall,omitempty"`
	Name  string `json:"name"`
	Dur   int64  `json:"dur,omitempty"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// Attr returns the value of the named attribute, "" when absent — the
// shared accessor for event-stream consumers (audit, health, the state
// store) that fold attributes by name.
func (e Event) Attr(k string) string {
	for _, a := range e.Attrs {
		if a.K == k {
			return a.V
		}
	}
	return ""
}

// AttrInt returns the named attribute parsed as a base-10 integer, 0
// when absent or malformed.
func (e Event) AttrInt(k string) int64 {
	v, _ := strconv.ParseInt(e.Attr(k), 10, 64)
	return v
}

// AttrUint returns the named attribute parsed as a base-10 unsigned
// integer, 0 when absent or malformed.
func (e Event) AttrUint(k string) uint64 {
	v, _ := strconv.ParseUint(e.Attr(k), 10, 64)
	return v
}

// A Sink receives every event a Tracer records, in sequence order, at
// the moment it enters the ring. It is the durability hook: the ring is
// a bounded in-memory window, a sink can be a crash-safe journal (see
// internal/journal). Record is called with the tracer lock held so the
// sink sees events in exactly ring order; implementations must never
// block (hand off to a bounded buffer and count what overflows) and
// must not call back into the tracer.
type Sink interface {
	Record(Event)
}

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// Wall, when set, stamps each event with a wall clock (typically
	// func() int64 { return time.Now().UnixNano() }). Leaving it nil
	// selects deterministic mode: events carry only virtual time, so
	// for a fixed seed the serialized stream is byte-identical run to
	// run.
	Wall func() int64
	// Cap bounds the number of retained events (default 65536); the
	// oldest events are dropped first. Sequence numbers stay monotonic
	// across drops so readers can detect gaps.
	Cap int
	// Drops, when set, is incremented once per event evicted from the
	// ring, so ring overflow shows up in a metrics exposition (e.g. the
	// chronus_trace_dropped_events_total family) instead of having to be
	// inferred from sequence gaps.
	Drops *Counter
	// Sink, when set, additionally receives every recorded event in
	// sequence order — the attachment point for a durable journal.
	// Eviction from the ring does not remove an event from the sink, so
	// a journal-backed sink retains events the ring has long dropped.
	Sink Sink
}

// Tracer collects structured events in a bounded in-memory ring.
// It is safe for concurrent use; a nil *Tracer is a no-op.
type Tracer struct {
	mu      sync.Mutex
	events  []Event // ring, valid in [head, head+count)
	head    int
	count   int
	seq     uint64
	spanID  uint64
	dropped uint64
	wall    func() int64
	drops   *Counter
	sink    Sink
}

const defaultTracerCap = 65536

// NewTracer builds a tracer.
func NewTracer(o TracerOptions) *Tracer {
	cap := o.Cap
	if cap <= 0 {
		cap = defaultTracerCap
	}
	return &Tracer{events: make([]Event, cap), wall: o.Wall, drops: o.Drops, sink: o.Sink}
}

// Point records an instantaneous event at virtual time vt.
func (t *Tracer) Point(vt int64, name string, attrs ...Attr) {
	if t == nil {
		return
	}
	t.add(Event{VT: vt, Name: name, Attrs: attrs})
}

// Span records an event covering virtual times [start, end].
func (t *Tracer) Span(name string, start, end int64, attrs ...Attr) {
	if t == nil {
		return
	}
	t.add(Event{VT: start, Dur: end - start, Name: name, Attrs: attrs})
}

func (t *Tracer) add(e Event) {
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	if t.wall != nil {
		e.Wall = t.wall()
	}
	if t.count == len(t.events) {
		// Ring full: overwrite the oldest.
		t.events[t.head] = e
		t.head = (t.head + 1) % len(t.events)
		t.dropped++
		t.drops.Inc()
	} else {
		t.events[(t.head+t.count)%len(t.events)] = e
		t.count++
	}
	if t.sink != nil {
		// Under the lock so the sink observes ring order; the Sink
		// contract forbids blocking here.
		t.sink.Record(e)
	}
	t.mu.Unlock()
}

// Dropped reports how many events were evicted from the ring.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Events returns the retained events with Seq > since, oldest first.
func (t *Tracer) Events(since uint64) []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.count)
	for i := 0; i < t.count; i++ {
		e := t.events[(t.head+i)%len(t.events)]
		if e.Seq > since {
			out = append(out, e)
		}
	}
	return out
}

// Page returns up to limit retained events with Seq > since, oldest
// first, plus the cursor to pass as since on the next call (the Seq of
// the last returned event, or since itself when nothing qualified). A
// limit <= 0 means no bound. It is the building block of paged trace
// endpoints such as chronusd's /trace?limit=.
func (t *Tracer) Page(since uint64, limit int) ([]Event, uint64) {
	ps := t.PageStats(since, limit)
	return ps.Events, ps.Next
}

// PageStats is one atomic page read from the ring: the events, the
// resume cursor, and the eviction accounting taken under the same lock
// so all four numbers describe the same instant. Reading Dropped() in
// a separate call can disagree with the page it is reported next to
// when writers race the reader between the two lock acquisitions.
type PageStats struct {
	// Events are up to limit retained events with Seq > since, oldest
	// first.
	Events []Event
	// Next is the cursor to pass as since on the next call: the Seq of
	// the last returned event, or since itself when nothing qualified.
	Next uint64
	// Skipped counts the events with Seq > since that the ring evicted
	// before this read could return them — the exact gap between the
	// caller's cursor and the first event of this page. A paging client
	// that sums Skipped across pages accounts for every sequence number
	// it never saw; without it the only signal is the global Dropped
	// total, which also counts evictions of events the client DID see
	// on earlier pages.
	Skipped uint64
	// Dropped is the ring's total eviction count at the moment of the
	// read.
	Dropped uint64
}

// PageStats returns up to limit retained events with Seq > since plus
// cursor and eviction accounting captured atomically; see the PageStats
// type for the field contracts. A limit <= 0 means no bound.
func (t *Tracer) PageStats(since uint64, limit int) PageStats {
	if t == nil {
		return PageStats{Next: since}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ps := PageStats{Next: since, Dropped: t.dropped}
	if t.count > 0 {
		// Sequence numbers are dense, so the retained ring always holds
		// the contiguous range [seq-count+1, seq]; anything between the
		// cursor and that range's start was evicted unseen.
		if oldest := t.seq - uint64(t.count) + 1; since+1 < oldest {
			ps.Skipped = oldest - since - 1
		}
	}
	out := make([]Event, 0, t.count)
	for i := 0; i < t.count; i++ {
		e := t.events[(t.head+i)%len(t.events)]
		if e.Seq <= since {
			continue
		}
		out = append(out, e)
		if limit > 0 && len(out) == limit {
			break
		}
	}
	ps.Events = out
	if len(out) > 0 {
		ps.Next = out[len(out)-1].Seq
	}
	return ps
}

// WriteJSONL writes the retained events with Seq > since as one JSON
// object per line via the shared codec (EncodeJSONLine). In
// deterministic mode (no wall clock) the output for a fixed seed is
// byte-identical run to run.
func (t *Tracer) WriteJSONL(w io.Writer, since uint64) error {
	var buf []byte
	for _, e := range t.Events(since) {
		var err error
		buf, err = EncodeJSONLine(buf[:0], e)
		if err != nil {
			return err
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
