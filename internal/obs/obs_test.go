package obs

import (
	"bytes"
	"fmt"
	"math"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x_total") != c {
		t.Fatal("Counter lookup is not idempotent")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 5, 5, math.Inf(1), 10})
	for _, v := range []float64{0.5, 1, 2, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 110.5 {
		t.Fatalf("sum = %g, want 110.5", h.Sum())
	}
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 2`,
		`lat_bucket{le="5"} 3`,
		`lat_bucket{le="10"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_sum 110.5`,
		`lat_count 5`,
		`# TYPE lat histogram`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabeledSeriesShareOneFamily(t *testing.T) {
	r := NewRegistry()
	r.Help("msgs_total", "messages by direction")
	r.Counter(`msgs_total{dir="tx"}`).Add(2)
	r.Counter(`msgs_total{dir="rx"}`).Add(3)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if n := strings.Count(out, "# TYPE msgs_total counter"); n != 1 {
		t.Fatalf("want exactly one TYPE line, got %d:\n%s", n, out)
	}
	if !strings.Contains(out, "# HELP msgs_total messages by direction") {
		t.Errorf("missing HELP line:\n%s", out)
	}
	if !strings.Contains(out, `msgs_total{dir="rx"} 3`) || !strings.Contains(out, `msgs_total{dir="tx"} 2`) {
		t.Errorf("missing labeled series:\n%s", out)
	}
}

func TestLabeledHistogramMergesLeLabel(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`rtt{peer="a"}`, []float64{1})
	h.Observe(0.5)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`rtt_bucket{peer="a",le="1"} 1`,
		`rtt_bucket{peer="a",le="+Inf"} 1`,
		`rtt_sum{peer="a"} 0.5`,
		`rtt_count{peer="a"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// expositionLine matches the sample/comment lines of the text format.
var expositionLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.e+-]+|\+?Inf)$`)

func TestExpositionFormatValidity(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Inc()
	r.Gauge("b").Set(-2)
	r.Histogram("c", []float64{1, 2}).Observe(1.5)
	r.Help("a_total", "a help")
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty exposition")
	}
	for _, line := range lines {
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line %q", line)
		}
	}
	// Families must be sorted.
	var fams []string
	for _, line := range lines {
		if strings.HasPrefix(line, "# TYPE ") {
			fams = append(fams, strings.Fields(line)[2])
		}
	}
	for i := 1; i < len(fams); i++ {
		if fams[i] < fams[i-1] {
			t.Errorf("families out of order: %v", fams)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Help("x", "y")
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	g := r.Gauge("g")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge must read 0")
	}
	h := r.Histogram("h", []float64{1})
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram must read 0")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	var tr *Tracer
	tr.Point(1, "x")
	tr.Span("y", 1, 2)
	if tr.Events(0) != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer must be empty")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}, 0); err != nil {
		t.Fatal(err)
	}
}

func TestTracerEventsAndSince(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	tr.Point(10, "a", A("k", "v"), A("n", 42))
	tr.Span("b", 20, 35)
	evs := tr.Events(0)
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Seq != 1 || evs[0].VT != 10 || evs[0].Name != "a" {
		t.Fatalf("bad first event %+v", evs[0])
	}
	if evs[0].Attrs[1] != (Attr{K: "n", V: "42"}) {
		t.Fatalf("bad attr %+v", evs[0].Attrs[1])
	}
	if evs[1].Dur != 15 {
		t.Fatalf("span dur = %d, want 15", evs[1].Dur)
	}
	if evs[0].Wall != 0 {
		t.Fatal("deterministic tracer must not stamp wall time")
	}
	since := tr.Events(1)
	if len(since) != 1 || since[0].Name != "b" {
		t.Fatalf("since filter broken: %+v", since)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(TracerOptions{Cap: 4})
	for i := 0; i < 10; i++ {
		tr.Point(int64(i), fmt.Sprintf("e%d", i))
	}
	evs := tr.Events(0)
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	if evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("wrong window: %+v", evs)
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
}

func TestTracerJSONLDeterministic(t *testing.T) {
	render := func() string {
		tr := NewTracer(TracerOptions{})
		tr.Point(1, "x", A("a", 1), A("b", "s"))
		tr.Span("y", 2, 9, A("c", 3.5))
		var b bytes.Buffer
		if err := tr.WriteJSONL(&b, 0); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	one, two := render(), render()
	if one != two {
		t.Fatalf("JSONL not deterministic:\n%s\n---\n%s", one, two)
	}
	if !strings.Contains(one, `"name":"x"`) || !strings.Contains(one, `"dur":7`) {
		t.Fatalf("unexpected JSONL:\n%s", one)
	}
}

func TestTracerWallMode(t *testing.T) {
	now := int64(1000)
	tr := NewTracer(TracerOptions{Wall: func() int64 { now++; return now }})
	tr.Point(1, "x")
	tr.Point(2, "y")
	evs := tr.Events(0)
	if evs[0].Wall != 1001 || evs[1].Wall != 1002 {
		t.Fatalf("wall stamps wrong: %+v", evs)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(TracerOptions{Cap: 128})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c_total").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", []float64{10, 100}).Observe(float64(i))
				tr.Point(int64(i), "e")
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 4000 {
		t.Fatalf("hist count = %d, want 4000", got)
	}
	if got := r.Histogram("h", nil).Sum(); got != 8*float64(499*500/2) {
		t.Fatalf("hist sum = %g", got)
	}
	if len(tr.Events(0)) != 128 {
		t.Fatalf("ring should be full")
	}
}

func TestTracerDropsCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("chronus_trace_dropped_events_total")
	tr := NewTracer(TracerOptions{Cap: 4, Drops: c})
	for i := 0; i < 10; i++ {
		tr.Point(int64(i), "e")
	}
	if got := c.Value(); got != 6 {
		t.Fatalf("drops counter = %d, want 6", got)
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped() = %d, want 6", tr.Dropped())
	}
}

func TestTracerPage(t *testing.T) {
	tr := NewTracer(TracerOptions{Cap: 16})
	for i := 0; i < 10; i++ {
		tr.Point(int64(i), fmt.Sprintf("e%d", i))
	}
	page1, next := tr.Page(0, 4)
	if len(page1) != 4 || page1[0].Seq != 1 || next != 4 {
		t.Fatalf("page1 = %+v next = %d", page1, next)
	}
	page2, next := tr.Page(next, 4)
	if len(page2) != 4 || page2[0].Seq != 5 || next != 8 {
		t.Fatalf("page2 = %+v next = %d", page2, next)
	}
	page3, next := tr.Page(next, 4)
	if len(page3) != 2 || page3[1].Seq != 10 || next != 10 {
		t.Fatalf("page3 = %+v next = %d", page3, next)
	}
	// Exhausted: the cursor stays put and the page is empty.
	page4, next := tr.Page(next, 4)
	if len(page4) != 0 || next != 10 {
		t.Fatalf("page4 = %+v next = %d", page4, next)
	}
	// limit <= 0 means everything.
	all, _ := tr.Page(0, 0)
	if len(all) != 10 {
		t.Fatalf("unbounded page = %d events, want 10", len(all))
	}
	// Nil tracer is a no-op.
	var nilTr *Tracer
	if evs, next := nilTr.Page(3, 5); evs != nil || next != 3 {
		t.Fatalf("nil tracer page = %v, %d", evs, next)
	}
}
