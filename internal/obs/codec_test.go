package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestCodecRoundTripByteIdentity pins the single-serializer contract:
// decode(encode(e)) == e, and re-encoding the decoded event reproduces
// the original bytes exactly, for every event shape the stack emits
// (point events, wall-stamped events, span carriers, empty attrs).
func TestCodecRoundTripByteIdentity(t *testing.T) {
	events := []Event{
		{Seq: 1, VT: 0, Name: "boot"},
		{Seq: 2, VT: 42, Name: "emu.rate", Attrs: []Attr{{K: "link", V: "R1>R2"}, {K: "rate", V: "7"}}},
		{Seq: 3, VT: 100, Wall: 1700000000123456789, Name: "ctl.flowmod", Attrs: []Attr{{K: "switch", V: "R3"}}},
		{Seq: 4, VT: 50, Dur: 25, Name: SpanEventName, Attrs: []Attr{
			{K: "span", V: "3"}, {K: "parent", V: "1"}, {K: "op", V: "solve"}, {K: "scheme", V: "chronus"}}},
		{Seq: 5, VT: -7, Name: "weird\"chars\n", Attrs: []Attr{{K: "k", V: `va"l`}}},
	}
	for _, e := range events {
		line, err := EncodeJSONLine(nil, e)
		if err != nil {
			t.Fatalf("encode %+v: %v", e, err)
		}
		if !bytes.HasSuffix(line, []byte("\n")) {
			t.Fatalf("encoded line not newline-terminated: %q", line)
		}
		got, err := DecodeJSONLine(bytes.TrimSuffix(line, []byte("\n")))
		if err != nil {
			t.Fatalf("decode %q: %v", line, err)
		}
		again, err := EncodeJSONLine(nil, got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(line, again) {
			t.Fatalf("re-encode drifted:\n first %q\nsecond %q", line, again)
		}
	}
}

// TestCodecMatchesWriteJSONL: the tracer's own export is the codec,
// line for line — no second encoder behind WriteJSONL.
func TestCodecMatchesWriteJSONL(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	tr.Point(1, "a", A("x", 1))
	tr.Span("b", 2, 9, A("y", "z"))
	var w strings.Builder
	if err := tr.WriteJSONL(&w, 0); err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, e := range tr.Events(0) {
		var err error
		want, err = EncodeJSONLine(want, e)
		if err != nil {
			t.Fatal(err)
		}
	}
	if w.String() != string(want) {
		t.Fatalf("WriteJSONL diverged from codec:\n%q\n%q", w.String(), want)
	}
}

func TestDecodeJSONLineRejectsGarbage(t *testing.T) {
	if _, err := DecodeJSONLine([]byte(`{"seq": 1,`)); err == nil {
		t.Fatal("torn line decoded without error")
	}
}

// TestTracerSinkSeesEveryEvent: the sink receives each event exactly
// once in sequence order, including events the ring later evicts.
func TestTracerSinkSeesEveryEvent(t *testing.T) {
	var got []Event
	tr := NewTracer(TracerOptions{Cap: 4, Sink: sinkFunc(func(e Event) { got = append(got, e) })})
	const n = 20
	for i := 0; i < n; i++ {
		tr.Point(int64(i), "ev")
	}
	if len(got) != n {
		t.Fatalf("sink saw %d events, want %d", len(got), n)
	}
	for i, e := range got {
		if e.Seq != uint64(i+1) {
			t.Fatalf("sink event %d has seq %d", i, e.Seq)
		}
	}
	if tr.Dropped() != n-4 {
		t.Fatalf("ring dropped %d, want %d", tr.Dropped(), n-4)
	}
}

type sinkFunc func(Event)

func (f sinkFunc) Record(e Event) { f(e) }
