package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestSpanEventEncoding(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	root := tr.StartSpan(10, "update", 0, A("method", "chronus"))
	child := tr.StartSpan(12, "solve", root.SpanID(), A("scheme", "chronus"))
	child.End(15, A("outcome", "ok"))
	root.End(20)

	evs := tr.Events(0)
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// Spans are recorded at End time: child first.
	c, r := evs[0], evs[1]
	if c.Name != SpanEventName || r.Name != SpanEventName {
		t.Fatalf("event names = %q, %q, want %q", c.Name, r.Name, SpanEventName)
	}
	if c.VT != 12 || c.Dur != 3 {
		t.Errorf("child VT/Dur = %d/%d, want 12/3", c.VT, c.Dur)
	}
	wantChild := []Attr{{"span", "2"}, {"parent", "1"}, {"op", "solve"}, {"scheme", "chronus"}, {"outcome", "ok"}}
	if len(c.Attrs) != len(wantChild) {
		t.Fatalf("child attrs = %v", c.Attrs)
	}
	for i, a := range wantChild {
		if c.Attrs[i] != a {
			t.Errorf("child attr[%d] = %v, want %v", i, c.Attrs[i], a)
		}
	}
	// Root has no parent attribute at all.
	for _, a := range r.Attrs {
		if a.K == "parent" {
			t.Errorf("root span carries a parent attr: %v", r.Attrs)
		}
	}
}

func TestEmitSpanAndNilSafety(t *testing.T) {
	var nilT *Tracer
	if sp := nilT.StartSpan(0, "x", 0); sp != nil {
		t.Fatal("nil tracer should return nil span")
	}
	var nilSpan *SpanCtx
	nilSpan.End(5)                   // must not panic
	if id := nilSpan.SpanID(); id != 0 {
		t.Fatalf("nil span id = %d", id)
	}
	if id := nilT.EmitSpan("x", 0, 1, 2); id != 0 {
		t.Fatalf("nil tracer EmitSpan id = %d", id)
	}

	tr := NewTracer(TracerOptions{})
	id := tr.EmitSpan("ctl.send", 0, 7, 7, A("xid", 3))
	if id != 1 {
		t.Fatalf("first span id = %d, want 1", id)
	}
	ev := tr.Events(0)[0]
	if ev.VT != 7 || ev.Dur != 0 {
		t.Errorf("emit span VT/Dur = %d/%d, want 7/0", ev.VT, ev.Dur)
	}
}

func TestBuildSpanForest(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	root := tr.StartSpan(0, "update", 0, A("method", "chronus"))
	exec := tr.StartSpan(5, "ctl.execute", root.SpanID(), A("mode", "timed"))
	// Controller-side send with xid 42; switch-side recv correlates via
	// the xid attribute rather than a span id.
	tr.EmitSpan("ctl.send", exec.SpanID(), 5, 5, A("switch", "R2"), A("xid", 42))
	recv := tr.StartSpan(8, "sw.recv", 0, A("switch", "R2"), A("xid", 42))
	tr.EmitSpan("sw.apply", recv.SpanID(), 20, 20, A("switch", "R2"), A("skew", 0))
	recv.End(20)
	exec.End(21)
	root.End(25)
	// A span whose parent is not in the window surfaces as a root.
	tr.EmitSpan("orphan", SpanID(999), 30, 31)

	forest := BuildSpanForest(tr.Events(0))
	if len(forest) != 2 {
		t.Fatalf("got %d roots, want 2 (update + orphan)", len(forest))
	}
	up := forest[0]
	if up.Op != "update" || forest[1].Op != "orphan" {
		t.Fatalf("root ops = %s, %s", forest[0].Op, forest[1].Op)
	}
	if len(up.Children) != 1 || up.Children[0].Op != "ctl.execute" {
		t.Fatalf("update children = %+v", up.Children)
	}
	ex := up.Children[0]
	// The xid link rule binds sw.* to the ctl.* span carrying the same
	// xid — ctl.send here — so execute has exactly one child.
	if len(ex.Children) != 1 || ex.Children[0].Op != "ctl.send" {
		t.Fatalf("execute children = %+v, want one ctl.send", ex.Children)
	}
	send := ex.Children[0]
	if len(send.Children) != 1 || send.Children[0].Op != "sw.recv" {
		t.Fatalf("ctl.send children = %+v, want the xid-correlated sw.recv", send.Children)
	}
	rv := send.Children[0]
	if rv.Start != 8 || rv.End != 20 {
		t.Errorf("recv span [%d,%d], want [8,20]", rv.Start, rv.End)
	}
	if len(rv.Children) != 1 || rv.Children[0].Op != "sw.apply" {
		t.Fatalf("recv children = %+v", rv.Children)
	}
	if got := rv.Attr("switch"); got != "R2" {
		t.Errorf("recv switch attr = %q", got)
	}

	// The forest JSON encoding must be deterministic.
	j1, _ := json.Marshal(forest)
	j2, _ := json.Marshal(BuildSpanForest(tr.Events(0)))
	if !bytes.Equal(j1, j2) {
		t.Error("forest JSON not stable across builds")
	}
	var count int
	up.Walk(func(*SpanNode) { count++ })
	if count != 5 {
		t.Errorf("walk visited %d spans, want 5", count)
	}
}

func TestBuildSpanForestIgnoresOtherEvents(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	tr.Point(1, "sw.flowmod", A("switch", "R1"))
	tr.EmitSpan("update", 0, 0, 9)
	tr.Point(2, "sched", A("switch", "R1"))
	forest := BuildSpanForest(tr.Events(0))
	if len(forest) != 1 || forest[0].Op != "update" {
		t.Fatalf("forest = %+v", forest)
	}
}

// TestTracerPageWhileDropping drives a tiny ring from a writer
// goroutine while a reader pages concurrently — the scenario behind
// chronusd's /trace and /spans endpoints serving during a busy update.
// Run under -race this checks the locking; the assertions check the
// paging invariants (monotonic seqs, no phantom events, gaps only ever
// explained by drops).
func TestTracerPageWhileDropping(t *testing.T) {
	drops := &Counter{}
	tr := NewTracer(TracerOptions{Cap: 8, Drops: drops})
	const total = 4000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			tr.Point(int64(i), "tick", A("i", i))
		}
	}()
	var cursor uint64
	var seen int
	for {
		evs, next := tr.Page(cursor, 3)
		if len(evs) > 3 {
			t.Errorf("page returned %d > limit 3", len(evs))
		}
		last := cursor
		for _, e := range evs {
			if e.Seq <= last {
				t.Fatalf("non-monotonic seq %d after %d", e.Seq, last)
			}
			last = e.Seq
			if e.Name != "tick" {
				t.Fatalf("phantom event %q", e.Name)
			}
			seen++
		}
		if next < cursor {
			t.Fatalf("cursor went backwards: %d -> %d", cursor, next)
		}
		cursor = next
		if cursor >= total {
			break
		}
	}
	wg.Wait()
	dropped := tr.Dropped()
	if uint64(seen)+dropped < total {
		t.Errorf("seen %d + dropped %d < total %d: events vanished without drop accounting", seen, dropped, total)
	}
	if uint64(drops.Value()) != dropped {
		t.Errorf("drops counter %d != tracer dropped %d", drops.Value(), dropped)
	}
}

// TestTracerPageStatsWhileDropping is the exact-accounting version of
// the paging test: a writer floods a tiny ring while a reader pages
// with PageStats, and every sequence number must be accounted for as
// either seen or reported in a page's Skipped gap — no duplicates, no
// silent losses beyond the per-page drop accounting.
func TestTracerPageStatsWhileDropping(t *testing.T) {
	tr := NewTracer(TracerOptions{Cap: 8, Drops: &Counter{}})
	const total = 4000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			tr.Point(int64(i), "tick", A("i", i))
		}
	}()
	var cursor, seen, skipped uint64
	for cursor < total {
		ps := tr.PageStats(cursor, 3)
		if len(ps.Events) == 0 {
			if ps.Next != cursor {
				t.Fatalf("empty page moved the cursor: %d -> %d", cursor, ps.Next)
			}
			if ps.Skipped != 0 {
				t.Fatalf("empty page reported skipped=%d", ps.Skipped)
			}
			continue // writer still running; retry
		}
		// The gap contract: the first event of the page sits exactly
		// Skipped+1 past the cursor, and the page itself is contiguous
		// (the ring retains a dense sequence range).
		if want := cursor + ps.Skipped + 1; ps.Events[0].Seq != want {
			t.Fatalf("first seq %d != cursor %d + skipped %d + 1", ps.Events[0].Seq, cursor, ps.Skipped)
		}
		for i := 1; i < len(ps.Events); i++ {
			if ps.Events[i].Seq != ps.Events[i-1].Seq+1 {
				t.Fatalf("page not contiguous: %d after %d", ps.Events[i].Seq, ps.Events[i-1].Seq)
			}
		}
		if ps.Next != ps.Events[len(ps.Events)-1].Seq {
			t.Fatalf("next %d != last seq %d", ps.Next, ps.Events[len(ps.Events)-1].Seq)
		}
		seen += uint64(len(ps.Events))
		skipped += ps.Skipped
		cursor = ps.Next
	}
	wg.Wait()
	// Every sequence number in [1, cursor] was either delivered or
	// reported skipped — exactly once each.
	if seen+skipped != cursor {
		t.Fatalf("seen %d + skipped %d != final cursor %d: sequence numbers duplicated or silently lost", seen, skipped, cursor)
	}
	if d := tr.Dropped(); skipped > d {
		t.Fatalf("reported skipped %d exceeds total drops %d", skipped, d)
	}
}
