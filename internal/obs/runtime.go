package obs

import "runtime"

// RegisterRuntimeMetrics adds Go runtime gauges to the registry,
// sampled lazily at exposition time. It is opt-in because the values
// are inherently nondeterministic: nothing in the deterministic
// experiment or golden-test paths registers them, only long-lived
// daemons (chronusd) where live memory and goroutine counts matter.
//
// Note that chronus_go_heap_alloc_bytes stalls the exposition for a
// runtime.ReadMemStats (a stop-the-world on large heaps), which is the
// standard cost of heap introspection and fine at scrape frequencies.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	r.Help("chronus_go_heap_alloc_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).")
	r.GaugeFunc("chronus_go_heap_alloc_bytes", func() int64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return int64(m.HeapAlloc)
	})
	r.Help("chronus_go_gc_cycles", "Completed GC cycles since process start.")
	r.GaugeFunc("chronus_go_gc_cycles", func() int64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return int64(m.NumGC)
	})
	r.Help("chronus_go_goroutines", "Live goroutines.")
	r.GaugeFunc("chronus_go_goroutines", func() int64 {
		return int64(runtime.NumGoroutine())
	})
}
