package obs

import (
	"encoding/json"
	"fmt"
)

// This file is the single JSONL codec for trace events. Every producer
// and consumer of the on-the-wire event format — Tracer.WriteJSONL, the
// chronusd /trace endpoint, the journal writer, the audit readers and
// `mutp -trace` — goes through EncodeJSONLine/DecodeJSONLine, so there
// is exactly one serialization and it cannot drift between the live
// stream and the durable record. The encoding is canonical: for a fixed
// event the bytes are identical everywhere (struct-ordered keys, no
// map iteration, zero fields omitted per the Event tags), which is what
// lets a journal capture be compared byte-for-byte against the
// in-memory endpoints.

// EncodeJSONLine appends the canonical JSON encoding of e plus a
// trailing newline to buf and returns the extended slice.
func EncodeJSONLine(buf []byte, e Event) ([]byte, error) {
	line, err := json.Marshal(e)
	if err != nil {
		return buf, err
	}
	buf = append(buf, line...)
	return append(buf, '\n'), nil
}

// DecodeJSONLine parses one line of the JSONL stream (with or without
// its trailing newline) back into an Event.
func DecodeJSONLine(line []byte) (Event, error) {
	var e Event
	if err := json.Unmarshal(line, &e); err != nil {
		return Event{}, fmt.Errorf("obs: decode event line: %w", err)
	}
	return e, nil
}
