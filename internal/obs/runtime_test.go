package obs

import (
	"strings"
	"testing"
)

func TestGaugeFuncExposition(t *testing.T) {
	r := NewRegistry()
	v := int64(7)
	r.GaugeFunc("chronus_dynamic_value", func() int64 { return v })
	r.Help("chronus_dynamic_value", "A lazily sampled value.")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE chronus_dynamic_value gauge\n") {
		t.Errorf("missing TYPE line:\n%s", out)
	}
	if !strings.Contains(out, "chronus_dynamic_value 7\n") {
		t.Errorf("missing sample:\n%s", out)
	}
	v = 9
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "chronus_dynamic_value 9\n") {
		t.Errorf("gauge func not re-evaluated:\n%s", b.String())
	}
	// Nil registry and nil func are no-ops.
	var nilR *Registry
	nilR.GaugeFunc("x", func() int64 { return 1 })
	r.GaugeFunc("y", nil)
}

func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	RegisterRuntimeMetrics(nil) // no-op
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, fam := range []string{
		"chronus_go_heap_alloc_bytes",
		"chronus_go_gc_cycles",
		"chronus_go_goroutines",
	} {
		if !strings.Contains(out, "# TYPE "+fam+" gauge\n") {
			t.Errorf("missing family %s:\n%s", fam, out)
		}
	}
	// Goroutine and heap gauges must report something alive.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "chronus_go_goroutines ") || strings.HasPrefix(line, "chronus_go_heap_alloc_bytes ") {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("suspicious zero sample: %q", line)
			}
		}
	}
}
