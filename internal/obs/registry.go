// Package obs is the repo's telemetry layer: a Registry of atomic
// counters, gauges and fixed-bucket histograms with Prometheus text
// exposition, and a Tracer emitting structured events stamped with the
// virtual sim clock (and optionally wall time).
//
// The package is dependency-free (standard library only) and holds no
// global state: every instrument belongs to an explicitly created
// Registry or Tracer that the caller threads through options. Both
// types and all instruments are nil-safe — methods on a nil receiver
// are no-ops — so instrumented hot paths pay only a nil check when
// telemetry is disabled, which keeps the experiment harness and its
// determinism guarantees untouched by default.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram. Bucket bounds are
// inclusive upper limits; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    atomicFloat
	count  atomic.Int64
}

// atomicFloat accumulates a float64 with compare-and-swap.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		cur := math.Float64frombits(old)
		if f.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Registry holds named instruments. Instrument names follow Prometheus
// conventions and may carry a label set in braces, e.g.
// `chronus_flowmods_total{switch="R2"}`; the part before the brace is
// the metric family, which groups series under one # TYPE line in the
// exposition. Lookups are idempotent: asking for an existing name
// returns the same instrument, so packages can (re-)register their
// instruments cheaply at construction time.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	gaugeFns  map[string]func() int64
	hists     map[string]*Histogram
	help      map[string]string
	exemplars map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		gaugeFns:  make(map[string]func() int64),
		hists:     make(map[string]*Histogram),
		help:      make(map[string]string),
		exemplars: make(map[string]string),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge whose value is produced by calling f at
// exposition time — the shape for values that live outside the
// registry, such as Go runtime statistics. Registration is idempotent
// (the latest function wins) and the name must not collide with a
// static Gauge of the same name. f is called with the registry lock
// held, so it must not call back into the registry.
func (r *Registry) GaugeFunc(name string, f func() int64) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFns[name] = f
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (bounds are sorted and deduplicated;
// later calls may pass nil to look the histogram up).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		bs := make([]float64, 0, len(bounds))
		for _, b := range bounds {
			// +Inf is implicit and NaN unorderable; drop both.
			if !math.IsInf(b, 1) && !math.IsNaN(b) {
				bs = append(bs, b)
			}
		}
		sort.Float64s(bs)
		uniq := bs[:0]
		for i, b := range bs {
			if i == 0 || b != bs[i-1] {
				uniq = append(uniq, b)
			}
		}
		h = &Histogram{bounds: uniq, counts: make([]atomic.Int64, len(uniq)+1)}
		r.hists[name] = h
	}
	return h
}

// Help records the # HELP text for a metric family.
func (r *Registry) Help(family, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[family] = text
}

// Exemplar attaches a one-line annotation to a series, rendered as an
// `# EXEMPLAR <series> <text>` comment right after the series in the
// exposition. The text format 0.0.4 has no native exemplar syntax, so
// the annotation rides in a comment scrapers ignore — it is how a
// histogram observation can point back at the span that produced it
// (e.g. chronus_update_stage_seconds carrying the update's span-id).
// The latest exemplar per series wins; empty text removes it.
func (r *Registry) Exemplar(series, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if text == "" {
		delete(r.exemplars, series)
		return
	}
	r.exemplars[series] = text
}

// family returns the metric family of a series name (the part before
// any label braces).
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// suffixed appends a Prometheus suffix to a series name ahead of its
// label set: suffixed(`x{a="b"}`, "_sum") returns `x_sum{a="b"}`.
func suffixed(name, suffix string) string {
	fam := family(name)
	return fam + suffix + name[len(fam):]
}

// bucketName renders a histogram bucket series, merging the le label
// into any existing label set: bucketName(`x{a="b"}`, "5") returns
// `x_bucket{a="b",le="5"}`.
func bucketName(name, le string) string {
	fam := family(name)
	labels := name[len(fam):]
	if labels == "" {
		return fmt.Sprintf("%s_bucket{le=%q}", fam, le)
	}
	return fmt.Sprintf("%s_bucket%s,le=%q}", fam, strings.TrimSuffix(labels, "}"), le)
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// formatBound renders a bucket bound for the le label.
func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return formatValue(b)
}

// WritePrometheus renders every instrument in the text exposition
// format (version 0.0.4), families sorted by name, series sorted within
// each family, so the output is deterministic for a fixed set of
// instrument values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type series struct {
		name string
		kind string // counter, gauge, histogram
	}
	r.mu.Lock()
	families := make(map[string][]series)
	add := func(name, kind string) {
		f := family(name)
		families[f] = append(families[f], series{name: name, kind: kind})
	}
	for name := range r.counters {
		add(name, "counter")
	}
	for name := range r.gauges {
		add(name, "gauge")
	}
	for name := range r.gaugeFns {
		add(name, "gauge")
	}
	for name := range r.hists {
		add(name, "histogram")
	}
	famNames := make([]string, 0, len(families))
	for f := range families {
		famNames = append(famNames, f)
	}
	sort.Strings(famNames)

	var b strings.Builder
	for _, f := range famNames {
		ss := families[f]
		sort.Slice(ss, func(i, j int) bool { return ss[i].name < ss[j].name })
		if help, ok := r.help[f]; ok {
			fmt.Fprintf(&b, "# HELP %s %s\n", f, help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f, ss[0].kind)
		for _, s := range ss {
			switch s.kind {
			case "counter":
				fmt.Fprintf(&b, "%s %d\n", s.name, r.counters[s.name].Value())
			case "gauge":
				if g, ok := r.gauges[s.name]; ok {
					fmt.Fprintf(&b, "%s %d\n", s.name, g.Value())
				} else {
					fmt.Fprintf(&b, "%s %d\n", s.name, r.gaugeFns[s.name]())
				}
			case "histogram":
				h := r.hists[s.name]
				cum := int64(0)
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					fmt.Fprintf(&b, "%s %d\n", bucketName(s.name, formatBound(bound)), cum)
				}
				cum += h.counts[len(h.bounds)].Load()
				fmt.Fprintf(&b, "%s %d\n", bucketName(s.name, "+Inf"), cum)
				fmt.Fprintf(&b, "%s %s\n", suffixed(s.name, "_sum"), formatValue(h.Sum()))
				fmt.Fprintf(&b, "%s %d\n", suffixed(s.name, "_count"), h.Count())
			}
			if ex, ok := r.exemplars[s.name]; ok {
				fmt.Fprintf(&b, "# EXEMPLAR %s %s\n", s.name, ex)
			}
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}
