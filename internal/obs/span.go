package obs

import (
	"sort"
	"strconv"
	"strings"
)

// SpanID identifies one span within a Tracer's event stream. IDs are
// allocated sequentially per tracer, so for a fixed seed and virtual
// clock the whole span tree — IDs included — is byte-deterministic.
// Zero is "no span" and doubles as the nil parent.
type SpanID uint64

// SpanEventName is the event name under which finished spans are
// recorded in the tracer ring. Spans reuse the flat event stream (one
// event per finished span, emitted at End) rather than a second buffer,
// so paging, drop accounting and JSONL export all keep working, and
// consumers that switch on event names (the auditor, the mutp
// timeline) can ignore spans by skipping this one name.
const SpanEventName = "span"

// Reserved attribute keys that encode the span structure inside the
// flat event. They always come first, in this order, followed by any
// user attributes.
const (
	spanAttrID     = "span"
	spanAttrParent = "parent"
	spanAttrOp     = "op"
)

// SpanCtx is an in-flight span. It is created by StartSpan and records
// a single "span" event when End is called; until then nothing enters
// the ring, so an abandoned span simply never appears. A nil *SpanCtx
// is a no-op (returned by a nil tracer), which keeps instrumented call
// sites free of tracing conditionals.
type SpanCtx struct {
	t      *Tracer
	id     SpanID
	parent SpanID
	op     string
	start  int64
	attrs  []Attr
}

// nextSpanID allocates the next span ID under the tracer lock.
func (t *Tracer) nextSpanID() SpanID {
	t.mu.Lock()
	t.spanID++
	id := SpanID(t.spanID)
	t.mu.Unlock()
	return id
}

// StartSpan opens a span named op at virtual time vt under parent
// (zero for a root). The span is recorded only when End is called.
func (t *Tracer) StartSpan(vt int64, op string, parent SpanID, attrs ...Attr) *SpanCtx {
	if t == nil {
		return nil
	}
	return &SpanCtx{t: t, id: t.nextSpanID(), parent: parent, op: op, start: vt, attrs: attrs}
}

// EmitSpan records a complete span covering [start, end] in one call
// and returns its ID — the shape used for instantaneous hops like a
// message send, where there is nothing to defer.
func (t *Tracer) EmitSpan(op string, parent SpanID, start, end int64, attrs ...Attr) SpanID {
	if t == nil {
		return 0
	}
	s := t.StartSpan(start, op, parent, attrs...)
	s.End(end)
	return s.id
}

// SpanID returns the span's ID, zero on a nil span.
func (s *SpanCtx) SpanID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// End closes the span at virtual time vt, appending any extra
// attributes, and records it as one event. Call it exactly once.
func (s *SpanCtx) End(vt int64, attrs ...Attr) {
	if s == nil {
		return
	}
	all := make([]Attr, 0, 3+len(s.attrs)+len(attrs))
	all = append(all, Attr{K: spanAttrID, V: strconv.FormatUint(uint64(s.id), 10)})
	if s.parent != 0 {
		all = append(all, Attr{K: spanAttrParent, V: strconv.FormatUint(uint64(s.parent), 10)})
	}
	all = append(all, Attr{K: spanAttrOp, V: s.op})
	all = append(all, s.attrs...)
	all = append(all, attrs...)
	s.t.add(Event{VT: s.start, Dur: vt - s.start, Name: SpanEventName, Attrs: all})
}

// SpanNode is one reconstructed span in a forest. Attrs holds only the
// user attributes; the structural ones (span/parent/op) are lifted
// into fields.
type SpanNode struct {
	ID       SpanID      `json:"id"`
	Parent   SpanID      `json:"parent,omitempty"`
	Op       string      `json:"op"`
	Seq      uint64      `json:"seq"`
	Start    int64       `json:"start"`
	End      int64       `json:"end"`
	Attrs    []Attr      `json:"attrs,omitempty"`
	Children []*SpanNode `json:"children,omitempty"`
}

// Attr returns the value of the named user attribute, "" if absent.
func (n *SpanNode) Attr(key string) string {
	for _, a := range n.Attrs {
		if a.K == key {
			return a.V
		}
	}
	return ""
}

// Walk visits n and every descendant in deterministic (sorted) order.
func (n *SpanNode) Walk(f func(*SpanNode)) {
	f(n)
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// BuildSpanForest reconstructs span trees from an event slice (other
// event names are ignored). Two linking rules apply:
//
//  1. In-process: a span's parent attribute names another span ID.
//  2. Cross-process: switchd cannot know the controller's span IDs, so
//     a parentless switch-side span (op prefixed "sw.") carrying an
//     "xid" attribute is attached under the controller-side span (op
//     prefixed "ctl.") that carries the same xid — the OFP transaction
//     ID correlates the two halves of each FlowMod/Barrier round-trip.
//
// Spans whose declared parent is not in the slice (paged out or
// dropped) surface as roots. Roots and children are sorted by
// (Start, ID), so for a deterministic tracer the forest — and its JSON
// encoding — is byte-identical run to run.
func BuildSpanForest(events []Event) []*SpanNode {
	byID := make(map[SpanID]*SpanNode)
	ctlByXid := make(map[string]SpanID)
	var nodes []*SpanNode
	for _, e := range events {
		if e.Name != SpanEventName {
			continue
		}
		n := &SpanNode{Seq: e.Seq, Start: e.VT, End: e.VT + e.Dur}
		for _, a := range e.Attrs {
			switch a.K {
			case spanAttrID:
				v, _ := strconv.ParseUint(a.V, 10, 64)
				n.ID = SpanID(v)
			case spanAttrParent:
				v, _ := strconv.ParseUint(a.V, 10, 64)
				n.Parent = SpanID(v)
			case spanAttrOp:
				n.Op = a.V
			default:
				n.Attrs = append(n.Attrs, a)
			}
		}
		if n.ID == 0 {
			continue // malformed
		}
		byID[n.ID] = n
		nodes = append(nodes, n)
		if strings.HasPrefix(n.Op, "ctl.") {
			if xid := n.Attr("xid"); xid != "" {
				ctlByXid[xid] = n.ID
			}
		}
	}
	for _, n := range nodes {
		if n.Parent == 0 && strings.HasPrefix(n.Op, "sw.") {
			if xid := n.Attr("xid"); xid != "" {
				if pid, ok := ctlByXid[xid]; ok && pid != n.ID {
					n.Parent = pid
				}
			}
		}
	}
	var roots []*SpanNode
	for _, n := range nodes {
		if p, ok := byID[n.Parent]; ok && n.Parent != n.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	order := func(s []*SpanNode) {
		sort.Slice(s, func(i, j int) bool {
			if s[i].Start != s[j].Start {
				return s[i].Start < s[j].Start
			}
			return s[i].ID < s[j].ID
		})
	}
	for _, n := range nodes {
		order(n.Children)
	}
	order(roots)
	return roots
}
