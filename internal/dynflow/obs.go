package dynflow

import (
	"github.com/chronus-sdn/chronus/internal/obs"
)

// validatorMetrics bundles the validator's instruments; built from a
// possibly-nil registry (nil instruments are no-ops).
type validatorMetrics struct {
	runs       *obs.Counter
	traces     *obs.Counter
	denseLoads *obs.Counter
	mapLoads   *obs.Counter
	window     *obs.Histogram
}

// RegisterMetrics pre-registers the validator metric families on r so
// they appear in expositions before the first validation.
func RegisterMetrics(r *obs.Registry) {
	newValidatorMetrics(r)
	if r != nil {
		r.Help("chronus_solver_cache_hits_total", "Solver precomputation cache hits by cache (tracer, precomp, plan).")
		r.Help("chronus_solver_cache_misses_total", "Solver precomputation cache misses by cache (tracer, precomp, plan).")
		r.Counter(`chronus_solver_cache_hits_total{cache="tracer"}`)
		r.Counter(`chronus_solver_cache_misses_total{cache="tracer"}`)
	}
}

func newValidatorMetrics(r *obs.Registry) validatorMetrics {
	if r != nil {
		r.Help("chronus_validator_runs_total", "ground-truth validations")
		r.Help("chronus_validator_traces_total", "emission traces walked")
		r.Help("chronus_validator_load_accounting_total", "load-accounting runs by backend (dense array vs map fallback)")
		r.Help("chronus_validator_window_ticks", "validation window size in ticks")
	}
	return validatorMetrics{
		runs:       r.Counter("chronus_validator_runs_total"),
		traces:     r.Counter("chronus_validator_traces_total"),
		denseLoads: r.Counter(`chronus_validator_load_accounting_total{backend="dense"}`),
		mapLoads:   r.Counter(`chronus_validator_load_accounting_total{backend="map"}`),
		window:     r.Histogram("chronus_validator_window_ticks", []float64{8, 16, 32, 64, 128, 256, 512, 1024, 4096}),
	}
}
