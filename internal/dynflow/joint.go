package dynflow

import (
	"fmt"
	"sort"

	"github.com/chronus-sdn/chronus/internal/graph"
)

// FlowUpdate pairs one flow's update instance with its schedule, for joint
// validation of several concurrent flows on one topology.
type FlowUpdate struct {
	// Name labels the flow in events.
	Name string
	In   *Instance
	S    *Schedule
}

// JointEvent is a violation found by ValidateJoint, attributed to a flow
// (loops, blackholes) or to the shared capacity (congestion, which has no
// single owner).
type JointEvent struct {
	Kind TraceStatus // Looped or Blackholed; congestion uses JointCongestion
	Flow string
	At   graph.NodeID
	Tick Tick
}

// JointCongestion is an over-capacity time-extended link instance under the
// combined load of all flows.
type JointCongestion struct {
	Link LinkInstance
	Load graph.Capacity
	Cap  graph.Capacity
}

// JointReport is the outcome of ValidateJoint.
type JointReport struct {
	Congestion []JointCongestion
	Events     []JointEvent
}

// OK reports whether the joint update is violation-free.
func (r *JointReport) OK() bool { return len(r.Congestion) == 0 && len(r.Events) == 0 }

// Summary renders a one-line result.
func (r *JointReport) Summary() string {
	if r.OK() {
		return "ok"
	}
	return fmt.Sprintf("violations: %d congested link instances, %d per-flow events", len(r.Congestion), len(r.Events))
}

// ValidateJoint checks several flows' updates against the shared topology:
// each flow's emissions are traced through its own time-varying
// configuration (Definition 2's loop-freedom per flow), and the loads of
// all flows accumulate per time-extended link instance against the link
// capacity (Definition 3 over the sum of flows). All instances must share
// one graph.
func ValidateJoint(updates []FlowUpdate) (*JointReport, error) {
	r := &JointReport{}
	if len(updates) == 0 {
		return r, nil
	}
	g := updates[0].In.G
	for _, u := range updates {
		if u.In.G != g {
			return nil, fmt.Errorf("dynflow: flow %q uses a different graph", u.Name)
		}
	}

	loads := make(map[LinkInstance]graph.Capacity)
	for _, u := range updates {
		start := u.S.Start - Tick(u.In.Init.Delay(g))
		end := u.S.End()
		// Joint validation must cover the whole horizon of all flows: a
		// steady flow keeps loading its links while another migrates, so
		// emissions continue to the global latest arrival.
		latest := end
		var traces []Trace
		for e := start; e <= end; e++ {
			tr := TraceEmission(u.In, u.S, e)
			traces = append(traces, tr)
			if a := tr.Arrive(); a > latest {
				latest = a
			}
		}
		for e := end + 1; e <= latest; e++ {
			traces = append(traces, TraceEmission(u.In, u.S, e))
		}
		for _, tr := range traces {
			for _, h := range tr.Hops {
				loads[LinkInstance{From: h.From, To: h.To, Depart: h.Depart}] += u.In.Demand
			}
			switch tr.Status {
			case Looped, Blackholed:
				r.Events = append(r.Events, JointEvent{Kind: tr.Status, Flow: u.Name, At: tr.At, Tick: tr.Arrive()})
			}
		}
	}

	// The per-flow windows may differ; congestion is only meaningful on
	// ticks covered by every involved flow's emission stream. Steady-state
	// coverage: each flow emits from its own window start; before that its
	// units are not modeled. To keep the check sound, extend each flow's
	// window to the global one.
	globalLo, globalHi := windowBounds(updates)
	for _, u := range updates {
		lo := u.S.Start - Tick(u.In.Init.Delay(g))
		for e := globalLo; e < lo; e++ {
			tr := TraceEmission(u.In, u.S, e)
			for _, h := range tr.Hops {
				loads[LinkInstance{From: h.From, To: h.To, Depart: h.Depart}] += u.In.Demand
			}
		}
		end := u.S.End()
		latest := latestArrivalOf(u, end)
		for e := latest + 1; e <= globalHi; e++ {
			tr := TraceEmission(u.In, u.S, e)
			for _, h := range tr.Hops {
				loads[LinkInstance{From: h.From, To: h.To, Depart: h.Depart}] += u.In.Demand
			}
		}
	}

	for li, load := range loads {
		l, ok := g.Link(li.From, li.To)
		if !ok {
			continue
		}
		if load > l.Cap {
			r.Congestion = append(r.Congestion, JointCongestion{Link: li, Load: load, Cap: l.Cap})
		}
	}
	sort.Slice(r.Congestion, func(i, j int) bool { return r.Congestion[i].Link.Depart < r.Congestion[j].Link.Depart })
	sort.Slice(r.Events, func(i, j int) bool { return r.Events[i].Tick < r.Events[j].Tick })
	return r, nil
}

func windowBounds(updates []FlowUpdate) (Tick, Tick) {
	g := updates[0].In.G
	lo := updates[0].S.Start - Tick(updates[0].In.Init.Delay(g))
	hi := updates[0].S.End()
	for _, u := range updates {
		if l := u.S.Start - Tick(u.In.Init.Delay(g)); l < lo {
			lo = l
		}
		if h := latestArrivalOf(u, u.S.End()); h > hi {
			hi = h
		}
	}
	return lo, hi
}

func latestArrivalOf(u FlowUpdate, end Tick) Tick {
	latest := end
	for e := end - Tick(u.In.Init.Delay(u.In.G)); e <= end; e++ {
		tr := TraceEmission(u.In, u.S, e)
		if a := tr.Arrive(); a > latest {
			latest = a
		}
	}
	return latest
}
