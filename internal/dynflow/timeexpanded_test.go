package dynflow

import (
	"testing"
	"testing/quick"

	"github.com/chronus-sdn/chronus/internal/graph"
)

func TestExpandCounts(t *testing.T) {
	in := fig1(t)
	ten := Expand(in.G, 0, 3)
	if got, want := ten.NumNodes(), 6*4; got != want {
		t.Fatalf("NumNodes = %d, want %d", got, want)
	}
	// Each physical link (delay 1) yields one instance per departure tick in
	// [0,2]: 10 links × 3 ticks.
	if got, want := ten.NumLinks(), 10*3; got != want {
		t.Fatalf("NumLinks = %d, want %d", got, want)
	}
}

func TestExpandWindowClipping(t *testing.T) {
	g := graph.New()
	v := g.AddNodes("a", "b")
	g.MustAddLink(v[0], v[1], 1, 5)
	ten := Expand(g, 0, 4) // delay 5 never fits
	if ten.NumLinks() != 0 {
		t.Fatalf("NumLinks = %d, want 0", ten.NumLinks())
	}
	ten = Expand(g, 0, 5)
	if ten.NumLinks() != 1 {
		t.Fatalf("NumLinks = %d, want 1", ten.NumLinks())
	}
	l := ten.Links()[0]
	if l.From.T != 0 || l.To.T != 5 {
		t.Fatalf("link = %+v", l)
	}
}

func TestExpandAdjacency(t *testing.T) {
	in := fig1(t)
	ten := Expand(in.G, 0, 3)
	v1 := in.G.Lookup("v1")
	out := ten.Out(TENode{V: v1, T: 0})
	if len(out) != 2 { // v1->v2 and v1->v5 link copies
		t.Fatalf("Out(v1(0)) = %v, want 2 links", out)
	}
	for _, l := range out {
		if l.To.T != 1 {
			t.Fatalf("arrival tick = %d, want 1", l.To.T)
		}
		back := ten.In(l.To)
		found := false
		for _, b := range back {
			if b.From == l.From {
				found = true
			}
		}
		if !found {
			t.Fatalf("In(%v) missing reverse entry of %v", l.To, l)
		}
	}
	if !ten.Contains(TENode{V: v1, T: 3}) {
		t.Fatal("Contains false inside window")
	}
	if ten.Contains(TENode{V: v1, T: 4}) {
		t.Fatal("Contains true outside window")
	}
}

func TestExpandSwappedWindow(t *testing.T) {
	in := fig1(t)
	a := Expand(in.G, 3, 0)
	b := Expand(in.G, 0, 3)
	if a.NumLinks() != b.NumLinks() || a.T0 != b.T0 || a.T1 != b.T1 {
		t.Fatal("Expand does not normalize a swapped window")
	}
}

func TestTracePathMapsHops(t *testing.T) {
	in := fig1(t)
	s := paperSchedule(in)
	tr := TraceEmission(in, s, 2)
	ten := Expand(in.G, 0, 10)
	tels := ten.TracePath(tr)
	if len(tels) != len(tr.Hops) {
		t.Fatalf("TracePath kept %d of %d hops", len(tels), len(tr.Hops))
	}
	for i, l := range tels {
		if l.From.V != tr.Hops[i].From || l.From.T != tr.Hops[i].Depart {
			t.Fatalf("hop %d mapped to %v", i, l)
		}
		if l.Instance() != (LinkInstance{From: tr.Hops[i].From, To: tr.Hops[i].To, Depart: tr.Hops[i].Depart}) {
			t.Fatalf("Instance mismatch at hop %d", i)
		}
	}
	// A narrow window clips hops.
	narrow := Expand(in.G, 0, 3)
	if got := narrow.TracePath(tr); len(got) >= len(tr.Hops) {
		t.Fatalf("narrow window kept %d hops", len(got))
	}
}

func TestEnumeratePathsSmall(t *testing.T) {
	in := fig1(t)
	ten := Expand(in.G, 0, 12)
	paths := ten.EnumeratePaths(in.Source(), in.Dest(), 0, 0)
	if len(paths) < 2 {
		t.Fatalf("found %d paths, want at least the old and new routes", len(paths))
	}
	// Every enumerated path is loop-free over physical switches.
	for _, p := range paths {
		seen := map[graph.NodeID]bool{in.Source(): true}
		for _, l := range p {
			if seen[l.To.V] {
				t.Fatalf("path revisits %v: %v", l.To, p)
			}
			seen[l.To.V] = true
		}
		if p[len(p)-1].To.V != in.Dest() {
			t.Fatalf("path does not reach dest: %v", p)
		}
	}
	// The limit is honored.
	if got := ten.EnumeratePaths(in.Source(), in.Dest(), 0, 1); len(got) != 1 {
		t.Fatalf("limit ignored: %d paths", len(got))
	}
}

// TestExpandTickTranslationInvariance: G_T over [a, b] is isomorphic to
// G_T over [a+k, b+k] — link counts and per-node degrees agree under
// translation.
func TestExpandTickTranslationInvariance(t *testing.T) {
	in := fig1(t)
	f := func(shift int8) bool {
		k := Tick(shift)
		base := Expand(in.G, 0, 6)
		moved := Expand(in.G, k, 6+k)
		if base.NumLinks() != moved.NumLinks() {
			return false
		}
		for _, id := range in.G.Nodes() {
			for tt := Tick(0); tt <= 6; tt++ {
				a := base.Out(TENode{V: id, T: tt})
				b := moved.Out(TENode{V: id, T: tt + k})
				if len(a) != len(b) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
