package dynflow

import (
	"sync"

	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/obs"
)

// The skeleton cache shares tracerCore values — the immutable G_T
// adjacency — across instances whose graphs fingerprint identically.
// chronusd serving repeated /update requests over one topology, mutp
// batch runs and the experiment harness all hit this: every solve after
// the first reuses the skeleton and only allocates per-instance scratch.
//
// Entries are immutable after insertion, so readers never copy. The cache
// is bounded; at capacity an arbitrary entry is evicted (the workload this
// serves touches a handful of topologies, so any policy is as good as
// another and the simplest one has no bookkeeping to race on).

// skeletonCacheCap bounds the shared skeleton cache entry count.
const skeletonCacheCap = 128

var skelCache = struct {
	sync.Mutex
	m       map[uint64]*tracerCore
	enabled bool
}{m: make(map[uint64]*tracerCore), enabled: true}

// SetSkeletonCache enables or disables cross-instance skeleton sharing
// and reports the previous setting. Disabling also drops cached entries,
// so tests can compare cached and uncached behaviour from a clean slate.
func SetSkeletonCache(on bool) bool {
	skelCache.Lock()
	defer skelCache.Unlock()
	prev := skelCache.enabled
	skelCache.enabled = on
	if !on {
		skelCache.m = make(map[uint64]*tracerCore)
	}
	return prev
}

// tracerCoreFor returns a skeleton valid for g's current fingerprint,
// serving it from the shared cache when possible. Hits and misses are
// recorded on r (which may be nil) under the solver cache family.
func tracerCoreFor(g *graph.Graph, fp uint64, r *obs.Registry) *tracerCore {
	skelCache.Lock()
	if skelCache.enabled {
		if c, ok := skelCache.m[fp]; ok && c.nodes == g.NumNodes() && c.links == g.NumLinks() {
			skelCache.Unlock()
			r.Counter(`chronus_solver_cache_hits_total{cache="tracer"}`).Inc()
			return c
		}
	}
	skelCache.Unlock()
	r.Counter(`chronus_solver_cache_misses_total{cache="tracer"}`).Inc()
	c := newTracerCore(g, fp)
	skelCache.Lock()
	if skelCache.enabled {
		if len(skelCache.m) >= skeletonCacheCap {
			for k := range skelCache.m {
				delete(skelCache.m, k)
				break
			}
		}
		skelCache.m[fp] = c
	}
	skelCache.Unlock()
	return c
}
