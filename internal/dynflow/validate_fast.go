package dynflow

import (
	"github.com/chronus-sdn/chronus/internal/graph"
)

// tracerCore is the immutable, instance-independent part of a tracer:
// the graph's adjacency resolved into dense per-node slices with link
// ordinals — the skeleton of the time-expanded network G_T, which depends
// only on (topology, capacities, delays). It is never mutated after
// construction, so one core is safely shared by every tracer (and hence
// every concurrent solve) over graphs with the same fingerprint; see
// tracerCoreFor in arena.go for the cross-instance cache.
type tracerCore struct {
	// out[v] lists v's outgoing links with their ordinals.
	out   [][]tracerLink
	caps  []graph.Capacity  // by ordinal
	pairs [][2]graph.NodeID // ordinal -> (from, to)
	// fingerprint detects graph mutations that invalidate a cached tracer.
	nodes, links int
	fp           uint64
}

// tracer is the allocation-light engine behind Validate and TraceEmission:
// adjacency resolved through the shared tracerCore skeleton, per-trace
// visited sets via stamping, and load accounting keyed by (link ordinal,
// departure tick) packed into one integer.
type tracer struct {
	in *Instance
	*tracerCore
	// visit stamps detect revisits without a per-trace map.
	visit []uint64
	stamp uint64

	// Load accounting scratch, reused across Validate calls. When the
	// (links × window) product is small the dense epoch-stamped array is
	// used; otherwise loads fall back to a map.
	loadVal   []graph.Capacity
	loadEpoch []uint32
	epoch     uint32
	touched   []int64
	span      int64
	loadMap   map[int64]graph.Capacity
	dense     bool
}

// denseLoadLimit caps the dense scratch size (entries).
const denseLoadLimit = 1 << 22

// beginLoads prepares load accounting for a window of the given span.
func (tr *tracer) beginLoads(span int64) {
	tr.span = span
	tr.touched = tr.touched[:0]
	need := int64(len(tr.caps)) * span
	if need > 0 && need <= denseLoadLimit {
		tr.dense = true
		if int64(len(tr.loadVal)) < need {
			tr.loadVal = make([]graph.Capacity, need)
			tr.loadEpoch = make([]uint32, need)
		}
		tr.epoch++
		if tr.epoch == 0 { // wrapped: clear stamps
			for i := range tr.loadEpoch {
				tr.loadEpoch[i] = 0
			}
			tr.epoch = 1
		}
		return
	}
	tr.dense = false
	tr.loadMap = make(map[int64]graph.Capacity, 1024)
}

// addLoad accounts one unit of demand departing on ordinal at offset ticks
// past the window start.
func (tr *tracer) addLoad(ordinal int32, offset int64) {
	if offset < 0 || offset >= tr.span {
		return // outside the accounted window (cannot happen by window construction)
	}
	key := int64(ordinal)*tr.span + offset
	if tr.dense {
		if tr.loadEpoch[key] != tr.epoch {
			tr.loadEpoch[key] = tr.epoch
			tr.loadVal[key] = 0
			tr.touched = append(tr.touched, key)
		}
		tr.loadVal[key] += tr.in.Demand
		return
	}
	if _, ok := tr.loadMap[key]; !ok {
		tr.touched = append(tr.touched, key)
	}
	tr.loadMap[key] += tr.in.Demand
}

// loadAt reads an accounted load by key.
func (tr *tracer) loadAt(key int64) graph.Capacity {
	if tr.dense {
		return tr.loadVal[key]
	}
	return tr.loadMap[key]
}

type tracerLink struct {
	to      graph.NodeID
	delay   Tick
	ordinal int32
}

// newTracerCore builds the G_T skeleton for a graph: the delay-annotated
// adjacency with stable link ordinals, plus the fingerprint it is valid
// for. This is the O(V+E) work the cross-instance cache hoists out of
// repeated solves over the same topology.
func newTracerCore(g *graph.Graph, fp uint64) *tracerCore {
	n := g.NumNodes()
	c := &tracerCore{
		out: make([][]tracerLink, n),
		fp:  fp,
	}
	ord := int32(0)
	for _, id := range g.Nodes() {
		for _, l := range g.Out(id) {
			c.out[id] = append(c.out[id], tracerLink{to: l.To, delay: Tick(l.Delay), ordinal: ord})
			c.caps = append(c.caps, l.Cap)
			c.pairs = append(c.pairs, [2]graph.NodeID{id, l.To})
			ord++
		}
	}
	c.nodes = n
	c.links = g.NumLinks()
	return c
}

func newTracer(in *Instance, core *tracerCore) *tracer {
	return &tracer{
		in:         in,
		tracerCore: core,
		visit:      make([]uint64, core.nodes),
	}
}

// tracerFor returns the instance's cached tracer, rebuilding it when the
// graph changed. Skeletons come from the shared fingerprint-keyed cache
// (see arena.go), so a rebuild over a known topology reuses the adjacency
// wholesale and only allocates fresh per-instance scratch.
func tracerFor(in *Instance) *tracer {
	fp := in.G.Fingerprint()
	if in.trc != nil && in.trc.nodes == in.G.NumNodes() && in.trc.links == in.G.NumLinks() &&
		in.trc.fp == fp {
		return in.trc
	}
	in.trc = newTracer(in, tracerCoreFor(in.G, fp, in.Obs))
	return in.trc
}

func (tr *tracer) link(from, to graph.NodeID) (tracerLink, bool) {
	if int(from) >= len(tr.out) {
		return tracerLink{}, false
	}
	for _, l := range tr.out[from] {
		if l.to == to {
			return l, true
		}
	}
	return tracerLink{}, false
}

// trace follows one emission, accumulating loads (when record is true) and
// returning the terminal status with its location and tick.
func (tr *tracer) trace(s *Schedule, emit Tick, base Tick, record bool) (status TraceStatus, at graph.NodeID, end Tick) {
	in := tr.in
	cur := in.Source()
	t := emit
	dest := in.Dest()
	tr.stamp++
	tr.visit[cur] = tr.stamp
	for step := 0; step <= len(tr.visit); step++ {
		if cur == dest {
			return Delivered, graph.Invalid, t
		}
		nh := NextHopAt(in, s, cur, t)
		if nh == graph.Invalid {
			return Blackholed, cur, t
		}
		l, ok := tr.link(cur, nh)
		if !ok {
			return Blackholed, cur, t
		}
		if record {
			tr.addLoad(l.ordinal, int64(t-base))
		}
		t += l.delay
		cur = nh
		if int(cur) < len(tr.visit) && tr.visit[cur] == tr.stamp {
			return Looped, cur, t
		}
		tr.visit[cur] = tr.stamp
	}
	return Looped, cur, t
}
