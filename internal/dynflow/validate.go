package dynflow

import (
	"fmt"
	"sort"

	"github.com/chronus-sdn/chronus/internal/graph"
)

// Hop is one link traversal of an emission trace.
type Hop struct {
	From   graph.NodeID
	To     graph.NodeID
	Depart Tick // tick the unit leaves From
	Arrive Tick // Depart + link delay
}

// TraceStatus classifies how an emission trace terminated.
type TraceStatus int

const (
	// Delivered means the unit reached the destination.
	Delivered TraceStatus = iota + 1
	// Looped means the unit revisited a switch (Definition 2 violation).
	Looped
	// Blackholed means a switch had no matching rule.
	Blackholed
)

func (ts TraceStatus) String() string {
	switch ts {
	case Delivered:
		return "delivered"
	case Looped:
		return "looped"
	case Blackholed:
		return "blackholed"
	default:
		return fmt.Sprintf("TraceStatus(%d)", int(ts))
	}
}

// Trace is the journey of the flow unit emitted at tick Emit.
type Trace struct {
	Emit   Tick
	Hops   []Hop
	Status TraceStatus
	// At identifies where a loop or blackhole occurred (the revisited or
	// rule-less switch); Invalid for delivered traces.
	At graph.NodeID
}

// Arrive returns the tick at which the trace terminated (delivery tick, or
// the arrival tick at the violating switch).
func (tr *Trace) Arrive() Tick {
	if len(tr.Hops) == 0 {
		return tr.Emit
	}
	return tr.Hops[len(tr.Hops)-1].Arrive
}

// TraceEmission follows the flow unit emitted at tick emit from the source
// through the time-varying configuration induced by s.
func TraceEmission(in *Instance, s *Schedule, emit Tick) Trace {
	tr := Trace{Emit: emit, At: graph.Invalid}
	cur := in.Source()
	t := emit
	visited := make(map[graph.NodeID]struct{}, len(in.Init)+len(in.Fin))
	visited[cur] = struct{}{}
	dest := in.Dest()
	// A simple trace visits each switch at most once; NumNodes+1 iterations
	// therefore always suffice before a revisit is detected.
	for step := 0; step <= in.G.NumNodes(); step++ {
		if cur == dest {
			tr.Status = Delivered
			return tr
		}
		nh := NextHopAt(in, s, cur, t)
		if nh == graph.Invalid {
			tr.Status = Blackholed
			tr.At = cur
			return tr
		}
		l, ok := in.G.Link(cur, nh)
		if !ok {
			// Rules always reference real links; treat a dangling rule as a
			// blackhole rather than panicking in the validator.
			tr.Status = Blackholed
			tr.At = cur
			return tr
		}
		tr.Hops = append(tr.Hops, Hop{From: cur, To: nh, Depart: t, Arrive: t + Tick(l.Delay)})
		t += Tick(l.Delay)
		cur = nh
		if _, seen := visited[cur]; seen {
			tr.Status = Looped
			tr.At = cur
			return tr
		}
		visited[cur] = struct{}{}
	}
	// Unreachable with revisit detection, but keep the validator total.
	tr.Status = Looped
	tr.At = cur
	return tr
}

// LinkInstance identifies a time-extended link ⟨u(t), v(t+σ)⟩ by its
// physical link and departure tick.
type LinkInstance struct {
	From   graph.NodeID
	To     graph.NodeID
	Depart Tick
}

// CongestionEvent records a time-extended link whose accumulated load
// exceeds its capacity.
type CongestionEvent struct {
	Link LinkInstance
	Load graph.Capacity
	Cap  graph.Capacity
}

// LoopEvent records an emission that revisited a switch.
type LoopEvent struct {
	Emit Tick
	At   graph.NodeID
	Tick Tick // arrival tick at the revisited switch
}

// BlackholeEvent records an emission that hit a switch with no rule.
type BlackholeEvent struct {
	Emit Tick
	At   graph.NodeID
	Tick Tick
}

// Report is the outcome of validating a schedule against an instance.
type Report struct {
	Congestion []CongestionEvent
	Loops      []LoopEvent
	Blackholes []BlackholeEvent
	// Loads is the accumulated demand per time-extended link instance over
	// the validation window. Validate leaves it nil (it accounts loads in
	// reusable scratch and reports only violations); producers that build
	// reports by hand, like the two-phase baseline, may fill it in.
	Loads map[LinkInstance]graph.Capacity
	// Window is the emission tick range that was traced, inclusive.
	WindowStart, WindowEnd Tick
	// LatestArrival is the latest tick at which any traced unit was still
	// in flight: after it, the data plane is in the static post-schedule
	// state. Schedulers use it as the drain horizon.
	LatestArrival Tick
}

// OK reports whether the schedule is congestion-free, loop-free and
// blackhole-free over the validation window.
func (r *Report) OK() bool {
	return len(r.Congestion) == 0 && len(r.Loops) == 0 && len(r.Blackholes) == 0
}

// CongestedLinkInstances returns the number of distinct over-capacity
// time-extended links (the quantity plotted in the paper's Fig. 8).
func (r *Report) CongestedLinkInstances() int { return len(r.Congestion) }

// CongestedPhysicalLinks returns the number of distinct physical links that
// were over capacity at any tick.
func (r *Report) CongestedPhysicalLinks() int {
	seen := make(map[[2]graph.NodeID]struct{})
	for _, ev := range r.Congestion {
		seen[[2]graph.NodeID{ev.Link.From, ev.Link.To}] = struct{}{}
	}
	return len(seen)
}

// PeakOverload returns the maximum load−capacity excess observed, in demand
// units; zero when congestion-free.
func (r *Report) PeakOverload() graph.Capacity {
	var peak graph.Capacity
	for _, ev := range r.Congestion {
		if over := ev.Load - ev.Cap; over > peak {
			peak = over
		}
	}
	return peak
}

// Summary renders a one-line human-readable result.
func (r *Report) Summary() string {
	if r.OK() {
		return fmt.Sprintf("ok (window %d..%d)", r.WindowStart, r.WindowEnd)
	}
	return fmt.Sprintf("violations: %d congested link instances, %d loops, %d blackholes (window %d..%d)",
		len(r.Congestion), len(r.Loops), len(r.Blackholes), r.WindowStart, r.WindowEnd)
}

// Validate traces every relevant emission tick and checks Definitions 2 and
// 3 of the paper at every moment in time.
//
// The emission window is [Start − φ(p_init), End], extended past End until
// every unit that could share a link instance with an in-flight mixed-
// configuration unit has been traced. Emissions after the extension follow
// the pure final configuration and cannot collide pairwise (consecutive
// emissions depart each final-path link at strictly increasing ticks), so
// the window is sufficient as well as finite.
func Validate(in *Instance, s *Schedule) *Report {
	tr := tracerFor(in)
	start := s.Start - Tick(in.Init.Delay(in.G))
	end := s.End()
	r := &Report{WindowStart: start}
	var vm validatorMetrics
	if in.Obs != nil {
		vm = newValidatorMetrics(in.Obs)
		vm.runs.Inc()
	}

	// Departure ticks stay below end + 2 × (max trace duration): the last
	// traced emission is at latestArrival <= end + maxTrace, and its own
	// trace lasts at most maxTrace more.
	var maxDelay Tick = 1
	for _, outs := range tr.out {
		for _, l := range outs {
			if l.delay > maxDelay {
				maxDelay = l.delay
			}
		}
	}
	maxTrace := Tick(tr.nodes+1) * maxDelay
	tr.beginLoads(int64(end-start) + 2*int64(maxTrace) + 1)

	record := func(e Tick) Tick {
		status, at, arrive := tr.trace(s, e, start, true)
		switch status {
		case Looped:
			r.Loops = append(r.Loops, LoopEvent{Emit: e, At: at, Tick: arrive})
		case Blackholed:
			r.Blackholes = append(r.Blackholes, BlackholeEvent{Emit: e, At: at, Tick: arrive})
		}
		return arrive
	}
	latestArrival := end
	traced := int64(0)
	for e := start; e <= end; e++ {
		traced++
		if a := record(e); a > latestArrival {
			latestArrival = a
		}
	}
	// Pure-final emissions that can still overlap the in-flight tail.
	for e := end + 1; e <= latestArrival; e++ {
		traced++
		record(e)
	}
	r.WindowEnd = latestArrival
	r.LatestArrival = latestArrival
	if in.Obs != nil {
		vm.traces.Add(traced)
		vm.window.Observe(float64(latestArrival - start + 1))
		if tr.dense {
			vm.denseLoads.Inc()
		} else {
			vm.mapLoads.Inc()
		}
	}

	for _, key := range tr.touched {
		load := tr.loadAt(key)
		ordinal := int32(key / tr.span)
		if load > tr.caps[ordinal] {
			pair := tr.pairs[ordinal]
			li := LinkInstance{From: pair[0], To: pair[1], Depart: Tick(key%tr.span) + start}
			r.Congestion = append(r.Congestion, CongestionEvent{Link: li, Load: load, Cap: tr.caps[ordinal]})
		}
	}
	sort.Slice(r.Congestion, func(i, j int) bool {
		a, b := r.Congestion[i].Link, r.Congestion[j].Link
		if a.Depart != b.Depart {
			return a.Depart < b.Depart
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	sort.Slice(r.Loops, func(i, j int) bool { return r.Loops[i].Emit < r.Loops[j].Emit })
	sort.Slice(r.Blackholes, func(i, j int) bool { return r.Blackholes[i].Emit < r.Blackholes[j].Emit })
	return r
}

// ValidateImmediate is a convenience: validate the schedule that flips every
// switch in the update set at Start simultaneously (the "no coordination"
// straw man from the paper's Fig. 2(a)).
func ValidateImmediate(in *Instance, start Tick) *Report {
	s := NewSchedule(start)
	for _, v := range in.UpdateSet() {
		s.Set(v, start)
	}
	return Validate(in, s)
}
