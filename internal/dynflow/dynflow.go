// Package dynflow implements the paper's dynamic-flow semantics: a single
// flow of fixed demand continuously emitted by a source switch, traversing a
// network whose per-switch forwarding rules flip from an initial to a final
// path at scheduled time points.
//
// The package provides the ground-truth validator for the congestion-free
// (Definition 3) and loop-free (Definition 2) conditions: it traces every
// emission tick through the time-varying configuration and accumulates load
// per time-extended link instance ⟨u(t), v(t+σ)⟩, exactly as in the paper's
// time-extended network model. Every scheduler in this repository is tested
// against this validator.
package dynflow

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/obs"
)

// Tick is a discrete time step of the timed SDN.
type Tick int64

// Instance is one MUTP instance: move a dynamic flow of demand Demand from
// the Init path to the Fin path in graph G. Both paths must share source and
// destination.
type Instance struct {
	G      *graph.Graph
	Demand graph.Capacity
	Init   graph.Path
	Fin    graph.Path

	// Obs, when set, receives validator telemetry (runs, traces walked,
	// window sizes, dense-vs-map load accounting); nil disables it. The
	// registry travels with the instance because Validate's signature is
	// fixed across every scheduler and test.
	Obs *obs.Registry

	// idx caches O(1) next-hop lookups; it is rebuilt whenever the paths
	// it was derived from change (see ensureIndex).
	idx *pathIndex
	// trc caches the validator's adjacency tables; rebuilt whenever the
	// graph changes (see tracerFor).
	trc *tracer
}

// pathIndex holds per-switch next hops as dense arrays for O(1) lookup on
// the scheduling hot paths. initLen/finLen and the head pointers detect
// staleness when a caller swaps the instance's paths.
type pathIndex struct {
	oldNext, newNext  []graph.NodeID
	initHead, finHead *graph.NodeID
	initLen, finLen   int
}

func (in *Instance) ensureIndex() *pathIndex {
	idx := in.idx
	if idx != nil && idx.initLen == len(in.Init) && idx.finLen == len(in.Fin) &&
		(idx.initLen == 0 || idx.initHead == &in.Init[0]) &&
		(idx.finLen == 0 || idx.finHead == &in.Fin[0]) {
		return idx
	}
	n := in.G.NumNodes()
	idx = &pathIndex{
		oldNext: make([]graph.NodeID, n),
		newNext: make([]graph.NodeID, n),
		initLen: len(in.Init),
		finLen:  len(in.Fin),
	}
	if idx.initLen > 0 {
		idx.initHead = &in.Init[0]
	}
	if idx.finLen > 0 {
		idx.finHead = &in.Fin[0]
	}
	for i := range idx.oldNext {
		idx.oldNext[i] = graph.Invalid
		idx.newNext[i] = graph.Invalid
	}
	for i := 0; i+1 < len(in.Init); i++ {
		if v := in.Init[i]; v >= 0 && int(v) < n {
			idx.oldNext[v] = in.Init[i+1]
		}
	}
	for i := 0; i+1 < len(in.Fin); i++ {
		if v := in.Fin[i]; v >= 0 && int(v) < n {
			idx.newNext[v] = in.Fin[i+1]
		}
	}
	in.idx = idx
	return idx
}

// Validate checks structural well-formedness of the instance.
func (in *Instance) Validate() error {
	if in.G == nil {
		return errors.New("dynflow: nil graph")
	}
	if in.Demand <= 0 {
		return fmt.Errorf("dynflow: non-positive demand %d", in.Demand)
	}
	if err := in.Init.Validate(in.G); err != nil {
		return fmt.Errorf("dynflow: initial path: %w", err)
	}
	if err := in.Fin.Validate(in.G); err != nil {
		return fmt.Errorf("dynflow: final path: %w", err)
	}
	if in.Init.Source() != in.Fin.Source() {
		return errors.New("dynflow: paths disagree on source")
	}
	if in.Init.Dest() != in.Fin.Dest() {
		return errors.New("dynflow: paths disagree on destination")
	}
	for _, l := range in.Init.Links(in.G) {
		if l.Cap < in.Demand {
			return fmt.Errorf("dynflow: initial path link %s->%s capacity %d < demand %d",
				in.G.Name(l.From), in.G.Name(l.To), l.Cap, in.Demand)
		}
	}
	for _, l := range in.Fin.Links(in.G) {
		if l.Cap < in.Demand {
			return fmt.Errorf("dynflow: final path link %s->%s capacity %d < demand %d",
				in.G.Name(l.From), in.G.Name(l.To), l.Cap, in.Demand)
		}
	}
	for i := 1; i < len(in.Init); i++ {
		if l, _ := in.G.Link(in.Init[i-1], in.Init[i]); l.Delay < 1 {
			return fmt.Errorf("dynflow: initial path link %s->%s has delay %d (schedulers require >= 1)",
				in.G.Name(l.From), in.G.Name(l.To), l.Delay)
		}
	}
	for i := 1; i < len(in.Fin); i++ {
		if l, _ := in.G.Link(in.Fin[i-1], in.Fin[i]); l.Delay < 1 {
			return fmt.Errorf("dynflow: final path link %s->%s has delay %d (schedulers require >= 1)",
				in.G.Name(l.From), in.G.Name(l.To), l.Delay)
		}
	}
	return nil
}

// Source returns the common source switch.
func (in *Instance) Source() graph.NodeID { return in.Init.Source() }

// Dest returns the common destination switch.
func (in *Instance) Dest() graph.NodeID { return in.Init.Dest() }

// OldNext returns v's next hop on the initial path, or Invalid.
func (in *Instance) OldNext(v graph.NodeID) graph.NodeID {
	if idx := in.ensureIndex(); v >= 0 && int(v) < len(idx.oldNext) {
		return idx.oldNext[v]
	}
	return graph.Invalid
}

// NewNext returns v's next hop on the final path, or Invalid.
func (in *Instance) NewNext(v graph.NodeID) graph.NodeID {
	if idx := in.ensureIndex(); v >= 0 && int(v) < len(idx.newNext) {
		return idx.newNext[v]
	}
	return graph.Invalid
}

// NeedsUpdate reports whether v requires a rule change: v forwards on the
// final path and its final next hop differs from its initial one (including
// the case where v had no initial rule).
func (in *Instance) NeedsUpdate(v graph.NodeID) bool {
	nn := in.NewNext(v)
	if nn == graph.Invalid {
		return false
	}
	return in.OldNext(v) != nn
}

// UpdateSet returns, in final-path order, the switches that require updates.
func (in *Instance) UpdateSet() []graph.NodeID {
	var out []graph.NodeID
	for _, v := range in.Fin[:len(in.Fin)-1] {
		if in.NeedsUpdate(v) {
			out = append(out, v)
		}
	}
	return out
}

// Schedule assigns each updated switch an absolute activation tick. A switch
// updated at tick t forwards per its old rule for packets arriving before t
// and per its new rule from t (inclusive) onward. Start is the first tick at
// which any update may take effect (the paper's t0).
type Schedule struct {
	Start Tick
	Times map[graph.NodeID]Tick
}

// NewSchedule returns an empty schedule starting at start.
func NewSchedule(start Tick) *Schedule {
	return &Schedule{Start: start, Times: make(map[graph.NodeID]Tick)}
}

// Set records that v updates at tick t.
func (s *Schedule) Set(v graph.NodeID, t Tick) { s.Times[v] = t }

// Time returns v's update tick and whether v is scheduled.
func (s *Schedule) Time(v graph.NodeID) (Tick, bool) {
	t, ok := s.Times[v]
	return t, ok
}

// End returns the latest scheduled tick, or Start when nothing is scheduled.
func (s *Schedule) End() Tick {
	end := s.Start
	for _, t := range s.Times {
		if t > end {
			end = t
		}
	}
	return end
}

// Makespan returns End − Start: the paper's total update time in time units.
func (s *Schedule) Makespan() Tick { return s.End() - s.Start }

// Rounds returns the distinct update ticks in ascending order.
func (s *Schedule) Rounds() []Tick {
	seen := make(map[Tick]struct{}, len(s.Times))
	for _, t := range s.Times {
		seen[t] = struct{}{}
	}
	out := make([]Tick, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// At returns the switches updating at tick t, sorted by ID.
func (s *Schedule) At(t Tick) []graph.NodeID {
	var out []graph.NodeID
	for v, tv := range s.Times {
		if tv == t {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Complete reports whether every switch in the instance's update set is
// scheduled no earlier than Start.
func (s *Schedule) Complete(in *Instance) bool {
	for _, v := range in.UpdateSet() {
		t, ok := s.Times[v]
		if !ok || t < s.Start {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (s *Schedule) Clone() *Schedule {
	c := NewSchedule(s.Start)
	for v, t := range s.Times {
		c.Times[v] = t
	}
	return c
}

// String renders the schedule grouped by tick, e.g. "t0:[v2] t1:[v3]".
func (s *Schedule) String() string {
	var b strings.Builder
	for i, t := range s.Rounds() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "t%d:%v", t-s.Start, s.At(t))
	}
	return b.String()
}

// Format renders the schedule with switch names from the instance graph.
func (s *Schedule) Format(in *Instance) string {
	var b strings.Builder
	for i, t := range s.Rounds() {
		if i > 0 {
			b.WriteString("; ")
		}
		names := make([]string, 0, 4)
		for _, v := range s.At(t) {
			names = append(names, in.G.Name(v))
		}
		fmt.Fprintf(&b, "t+%d: %s", t-s.Start, strings.Join(names, ","))
	}
	return b.String()
}

// NextHopAt returns the forwarding decision of switch v for a packet
// arriving at tick t under schedule s: the new rule if v has been scheduled
// and activated by t, otherwise the old rule; Invalid means no matching rule
// (blackhole).
func NextHopAt(in *Instance, s *Schedule, v graph.NodeID, t Tick) graph.NodeID {
	nn := in.NewNext(v)
	if nn != graph.Invalid {
		if tv, ok := s.Times[v]; ok && t >= tv {
			return nn
		}
	}
	if on := in.OldNext(v); on != graph.Invalid {
		return on
	}
	// A switch only on the final path that has not yet activated its new
	// rule has no rule for this flow at all.
	return graph.Invalid
}
