package dynflow

import (
	"testing"

	"github.com/chronus-sdn/chronus/internal/graph"
)

// fig1 builds the paper's running example (Fig. 1): six switches, unit link
// capacities and delays, initial path v1..v6 along the line and final path
// reversing through the same switches (v1->v5->v4->v3->v2->v6). The paper's
// congestion-and-loop-free timed sequence is v2@t0, v3@t1, {v1,v4}@t2,
// v5@t3.
func fig1(t testing.TB) *Instance {
	t.Helper()
	g := graph.New()
	v := g.AddNodes("v1", "v2", "v3", "v4", "v5", "v6")
	// Initial (solid) path links.
	g.MustAddLink(v[0], v[1], 1, 1)
	g.MustAddLink(v[1], v[2], 1, 1)
	g.MustAddLink(v[2], v[3], 1, 1)
	g.MustAddLink(v[3], v[4], 1, 1)
	g.MustAddLink(v[4], v[5], 1, 1)
	// Final (dashed) path links.
	g.MustAddLink(v[0], v[4], 1, 1)
	g.MustAddLink(v[4], v[3], 1, 1)
	g.MustAddLink(v[3], v[2], 1, 1)
	g.MustAddLink(v[2], v[1], 1, 1)
	g.MustAddLink(v[1], v[5], 1, 1)
	in := &Instance{
		G:      g,
		Demand: 1,
		Init:   graph.Path{v[0], v[1], v[2], v[3], v[4], v[5]},
		Fin:    graph.Path{v[0], v[4], v[3], v[2], v[1], v[5]},
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("fig1 instance invalid: %v", err)
	}
	return in
}

// paperSchedule is the timed sequence from Fig. 1(e)-(h).
func paperSchedule(in *Instance) *Schedule {
	g := in.G
	s := NewSchedule(0)
	s.Set(g.Lookup("v2"), 0)
	s.Set(g.Lookup("v3"), 1)
	s.Set(g.Lookup("v1"), 2)
	s.Set(g.Lookup("v4"), 2)
	s.Set(g.Lookup("v5"), 3)
	return s
}

func TestInstanceValidate(t *testing.T) {
	in := fig1(t)
	bad := *in
	bad.Demand = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero demand accepted")
	}
	bad = *in
	bad.Fin = graph.Path{in.Init[1], in.Init[2]}
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched endpoints accepted")
	}
	bad = *in
	bad.Demand = 5
	if err := bad.Validate(); err == nil {
		t.Fatal("demand above path capacity accepted")
	}
}

func TestUpdateSet(t *testing.T) {
	in := fig1(t)
	us := in.UpdateSet()
	if len(us) != 5 {
		t.Fatalf("update set = %v, want 5 switches", us)
	}
	for _, v := range us {
		if v == in.Dest() {
			t.Fatal("destination in update set")
		}
		if !in.NeedsUpdate(v) {
			t.Fatalf("NeedsUpdate(%s) = false for member of update set", in.G.Name(v))
		}
	}
	if in.NeedsUpdate(in.Dest()) {
		t.Fatal("destination needs update")
	}
}

func TestNeedsUpdateSharedSuffix(t *testing.T) {
	// When initial and final paths share a suffix, suffix switches keep
	// their next hops and need no update.
	g := graph.New()
	v := g.AddNodes("a", "b", "c", "d")
	g.MustAddLink(v[0], v[1], 2, 1)
	g.MustAddLink(v[1], v[3], 2, 1)
	g.MustAddLink(v[0], v[2], 2, 1)
	g.MustAddLink(v[2], v[1], 2, 1)
	in := &Instance{
		G:      g,
		Demand: 1,
		Init:   graph.Path{v[0], v[1], v[3]},
		Fin:    graph.Path{v[0], v[2], v[1], v[3]},
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.NeedsUpdate(v[1]) {
		t.Fatal("b keeps its next hop but NeedsUpdate is true")
	}
	if !in.NeedsUpdate(v[0]) || !in.NeedsUpdate(v[2]) {
		t.Fatal("a and c must need updates")
	}
}

func TestScheduleBasics(t *testing.T) {
	in := fig1(t)
	s := paperSchedule(in)
	if got := s.Makespan(); got != 3 {
		t.Fatalf("Makespan = %d, want 3", got)
	}
	if got := s.End(); got != 3 {
		t.Fatalf("End = %d, want 3", got)
	}
	rounds := s.Rounds()
	if len(rounds) != 4 {
		t.Fatalf("Rounds = %v, want 4 rounds", rounds)
	}
	if got := s.At(2); len(got) != 2 {
		t.Fatalf("At(2) = %v, want two switches", got)
	}
	if !s.Complete(in) {
		t.Fatal("paper schedule reported incomplete")
	}
	c := s.Clone()
	c.Set(in.G.Lookup("v5"), 9)
	if got, _ := s.Time(in.G.Lookup("v5")); got != 3 {
		t.Fatal("Clone is shallow")
	}
	partial := NewSchedule(0)
	if partial.Complete(in) {
		t.Fatal("empty schedule reported complete")
	}
	if partial.Makespan() != 0 {
		t.Fatal("empty schedule has nonzero makespan")
	}
}

func TestNextHopAtFlip(t *testing.T) {
	in := fig1(t)
	g := in.G
	v2 := g.Lookup("v2")
	s := NewSchedule(0)
	s.Set(v2, 5)
	if got := NextHopAt(in, s, v2, 4); got != g.Lookup("v3") {
		t.Fatalf("before flip: next hop = %s", g.Name(got))
	}
	if got := NextHopAt(in, s, v2, 5); got != g.Lookup("v6") {
		t.Fatalf("at flip: next hop = %s", g.Name(got))
	}
	// Unscheduled switch keeps the old rule.
	v3 := g.Lookup("v3")
	if got := NextHopAt(in, s, v3, 100); got != g.Lookup("v4") {
		t.Fatalf("unscheduled switch moved: %s", g.Name(got))
	}
}

func TestTraceOldPath(t *testing.T) {
	in := fig1(t)
	s := NewSchedule(0) // nothing updated
	tr := TraceEmission(in, s, -5)
	if tr.Status != Delivered {
		t.Fatalf("status = %v", tr.Status)
	}
	if len(tr.Hops) != 5 {
		t.Fatalf("hops = %d, want 5", len(tr.Hops))
	}
	if tr.Arrive() != 0 {
		t.Fatalf("arrive = %d, want 0", tr.Arrive())
	}
}

func TestTraceLoop(t *testing.T) {
	in := fig1(t)
	g := in.G
	// Only v4 updated at 0: in-flight flow at v4 bounces back to v3.
	s := NewSchedule(0)
	s.Set(g.Lookup("v4"), 0)
	tr := TraceEmission(in, s, -3) // at v4 exactly at tick 0
	if tr.Status != Looped {
		t.Fatalf("status = %v, want looped", tr.Status)
	}
	if tr.At != g.Lookup("v3") {
		t.Fatalf("loop at %s, want v3", g.Name(tr.At))
	}
}

func TestTraceBlackhole(t *testing.T) {
	// A switch that exists only on the final path and is not yet activated
	// blackholes traffic steered to it.
	g := graph.New()
	v := g.AddNodes("s", "m", "n", "d")
	g.MustAddLink(v[0], v[1], 2, 1)
	g.MustAddLink(v[1], v[3], 2, 1)
	g.MustAddLink(v[0], v[2], 2, 1)
	g.MustAddLink(v[2], v[3], 2, 1)
	in := &Instance{G: g, Demand: 1,
		Init: graph.Path{v[0], v[1], v[3]},
		Fin:  graph.Path{v[0], v[2], v[3]},
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	s := NewSchedule(0)
	s.Set(v[0], 0) // source flips; n has no rule yet
	tr := TraceEmission(in, s, 0)
	if tr.Status != Blackholed || tr.At != v[2] {
		t.Fatalf("trace = %+v, want blackhole at n", tr)
	}
	// Installing n first then flipping the source is clean.
	s2 := NewSchedule(0)
	s2.Set(v[2], 0)
	s2.Set(v[0], 1)
	if r := Validate(in, s2); !r.OK() {
		t.Fatalf("install-before-use schedule rejected: %s", r.Summary())
	}
}

func TestValidatePaperSchedule(t *testing.T) {
	in := fig1(t)
	r := Validate(in, paperSchedule(in))
	if !r.OK() {
		t.Fatalf("paper schedule rejected: %s", r.Summary())
	}
	if r.WindowEnd <= r.WindowStart {
		t.Fatal("degenerate validation window")
	}
}

func TestValidateImmediateLoops(t *testing.T) {
	in := fig1(t)
	r := ValidateImmediate(in, 0)
	if r.OK() {
		t.Fatal("simultaneous flip of the reversal example must violate")
	}
	if len(r.Loops) == 0 {
		t.Fatal("expected forwarding loops, got none")
	}
}

func TestValidateDetectsCongestion(t *testing.T) {
	in := fig1(t)
	g := in.G
	// v1 and v2 at t0: new flow from v1 meets in-flight old flow on
	// (v5, v6) — the congestion mechanism from the motivating example.
	s := NewSchedule(0)
	s.Set(g.Lookup("v1"), 0)
	s.Set(g.Lookup("v2"), 0)
	// Remaining switches late enough to not disturb the window.
	s.Set(g.Lookup("v3"), 10)
	s.Set(g.Lookup("v4"), 11)
	s.Set(g.Lookup("v5"), 12)
	r := Validate(in, s)
	if len(r.Congestion) == 0 {
		t.Fatalf("expected congestion, got: %s", r.Summary())
	}
	found := false
	for _, ev := range r.Congestion {
		if ev.Link.From == g.Lookup("v5") && ev.Link.To == g.Lookup("v6") {
			found = true
			if ev.Load != 2 || ev.Cap != 1 {
				t.Fatalf("congestion event = %+v, want load 2 cap 1", ev)
			}
		}
	}
	if !found {
		t.Fatalf("no congestion on (v5,v6): %+v", r.Congestion)
	}
	if r.PeakOverload() != 1 {
		t.Fatalf("PeakOverload = %d, want 1", r.PeakOverload())
	}
	if r.CongestedPhysicalLinks() < 1 {
		t.Fatal("CongestedPhysicalLinks = 0")
	}
}

func TestValidateWindowCoversInFlight(t *testing.T) {
	in := fig1(t)
	s := paperSchedule(in)
	r := Validate(in, s)
	if r.WindowStart != -5 {
		t.Fatalf("WindowStart = %d, want -5 (t0 - φ(p_init))", r.WindowStart)
	}
	if r.WindowEnd < s.End() {
		t.Fatalf("WindowEnd = %d before schedule end %d", r.WindowEnd, s.End())
	}
}

func TestReportSummary(t *testing.T) {
	in := fig1(t)
	ok := Validate(in, paperSchedule(in))
	if got := ok.Summary(); got == "" || ok.CongestedLinkInstances() != 0 {
		t.Fatalf("Summary/counters wrong for clean report: %q", got)
	}
	bad := ValidateImmediate(in, 0)
	if got := bad.Summary(); got == "" {
		t.Fatal("empty summary for violating report")
	}
}
