package dynflow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/chronus-sdn/chronus/internal/graph"
)

// randomScheduleFor assigns random ticks in [0, span] to a random subset of
// the update set.
func randomScheduleFor(rng *rand.Rand, in *Instance, span int64) *Schedule {
	s := NewSchedule(0)
	for _, v := range in.UpdateSet() {
		if rng.Intn(4) > 0 {
			s.Set(v, Tick(rng.Int63n(span+1)))
		}
	}
	return s
}

// randomReversalInstance builds a fig1-style instance with random size and
// delays: line initial path, reversed final path.
func randomReversalInstance(rng *rand.Rand) *Instance {
	n := 4 + rng.Intn(8)
	g := graph.New()
	ids := make([]graph.NodeID, n)
	for i := range ids {
		ids[i] = g.AddNode(string(rune('a' + i)))
	}
	d := func() graph.Delay { return graph.Delay(1 + rng.Intn(3)) }
	for i := 0; i+1 < n; i++ {
		g.MustAddLink(ids[i], ids[i+1], 1, d())
	}
	g.MustAddLink(ids[0], ids[n-2], 1, d())
	for i := n - 2; i >= 2; i-- {
		g.MustAddLink(ids[i], ids[i-1], 1, d())
	}
	g.MustAddLink(ids[1], ids[n-1], 1, d())
	init := make(graph.Path, n)
	copy(init, ids)
	fin := graph.Path{ids[0]}
	for i := n - 2; i >= 1; i-- {
		fin = append(fin, ids[i])
	}
	fin = append(fin, ids[n-1])
	return &Instance{G: g, Demand: 1, Init: init, Fin: fin}
}

// TestValidateMatchesTraceEmission: the optimized validator's loop and
// blackhole events agree with the reference per-emission tracer on random
// schedules (the validator runs a different engine internally).
func TestValidateMatchesTraceEmission(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomReversalInstance(rng)
		if err := in.Validate(); err != nil {
			return false
		}
		s := randomScheduleFor(rng, in, 12)
		r := Validate(in, s)

		// Recompute events with the reference tracer over the same window.
		var loops, blackholes int
		for e := r.WindowStart; e <= r.WindowEnd; e++ {
			tr := TraceEmission(in, s, e)
			switch tr.Status {
			case Looped:
				loops++
			case Blackholed:
				blackholes++
			}
		}
		return loops == len(r.Loops) && blackholes == len(r.Blackholes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestValidateCongestionMatchesManualLoads: recomputing loads by hand from
// TraceEmission hops reproduces exactly the congestion events Validate
// reports.
func TestValidateCongestionMatchesManualLoads(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomReversalInstance(rng)
		if err := in.Validate(); err != nil {
			return false
		}
		s := randomScheduleFor(rng, in, 10)
		r := Validate(in, s)

		loads := make(map[LinkInstance]graph.Capacity)
		for e := r.WindowStart; e <= r.WindowEnd; e++ {
			tr := TraceEmission(in, s, e)
			for _, h := range tr.Hops {
				loads[LinkInstance{From: h.From, To: h.To, Depart: h.Depart}] += in.Demand
			}
		}
		manual := make(map[LinkInstance]graph.Capacity)
		for li, load := range loads {
			l, ok := in.G.Link(li.From, li.To)
			if ok && load > l.Cap {
				manual[li] = load
			}
		}
		if len(manual) != len(r.Congestion) {
			return false
		}
		for _, ev := range r.Congestion {
			if manual[ev.Link] != ev.Load {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestValidateTimeTranslation: shifting a schedule (and its start) by a
// constant shifts the report but not its verdict.
func TestValidateTimeTranslation(t *testing.T) {
	f := func(seed int64, shiftRaw int16) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomReversalInstance(rng)
		if err := in.Validate(); err != nil {
			return false
		}
		s := randomScheduleFor(rng, in, 8)
		shift := Tick(shiftRaw % 1000)
		moved := NewSchedule(s.Start + shift)
		for v, tv := range s.Times {
			moved.Set(v, tv+shift)
		}
		a := Validate(in, s)
		b := Validate(in, moved)
		return a.OK() == b.OK() &&
			len(a.Congestion) == len(b.Congestion) &&
			len(a.Loops) == len(b.Loops) &&
			len(a.Blackholes) == len(b.Blackholes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
