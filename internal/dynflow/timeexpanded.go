package dynflow

import (
	"fmt"

	"github.com/chronus-sdn/chronus/internal/graph"
)

// TENode is a switch copy v(t) in the time-extended network.
type TENode struct {
	V graph.NodeID
	T Tick
}

func (n TENode) String() string { return fmt.Sprintf("%d(%d)", n.V, n.T) }

// TELink is a time-extended link ⟨u(t), v(t+σ)⟩ inheriting the physical
// link's capacity.
type TELink struct {
	From TENode
	To   TENode
	Cap  graph.Capacity
}

// Instance returns the link-instance key (physical link + departure tick)
// used by the validator's load accounting.
func (l TELink) Instance() LinkInstance {
	return LinkInstance{From: l.From.V, To: l.To.V, Depart: l.From.T}
}

// TEN is a materialized time-extended network G_T over the tick window
// [T0, T1] (Definition 4 of the paper). It exists for the ILP encoder, for
// tests, and for exposition; the validator and the greedy scheduler compute
// over the same semantics without materializing it.
type TEN struct {
	G      *graph.Graph
	T0, T1 Tick
	links  []TELink
	out    map[TENode][]TELink
	in     map[TENode][]TELink
}

// Expand materializes the time-extended network of g over [t0, t1]. A link
// instance ⟨u(t), v(t+σ)⟩ is included when both endpoints fall inside the
// window.
func Expand(g *graph.Graph, t0, t1 Tick) *TEN {
	if t1 < t0 {
		t0, t1 = t1, t0
	}
	ten := &TEN{
		G:   g,
		T0:  t0,
		T1:  t1,
		out: make(map[TENode][]TELink),
		in:  make(map[TENode][]TELink),
	}
	for _, l := range g.Links() {
		for t := t0; t+Tick(l.Delay) <= t1; t++ {
			tel := TELink{
				From: TENode{V: l.From, T: t},
				To:   TENode{V: l.To, T: t + Tick(l.Delay)},
				Cap:  l.Cap,
			}
			ten.links = append(ten.links, tel)
			ten.out[tel.From] = append(ten.out[tel.From], tel)
			ten.in[tel.To] = append(ten.in[tel.To], tel)
		}
	}
	return ten
}

// NumNodes returns |V| × window length, the node count of G_T.
func (ten *TEN) NumNodes() int {
	return ten.G.NumNodes() * int(ten.T1-ten.T0+1)
}

// NumLinks returns the number of time-extended links.
func (ten *TEN) NumLinks() int { return len(ten.links) }

// Links returns all time-extended links. The slice must not be modified.
func (ten *TEN) Links() []TELink { return ten.links }

// Out returns the outgoing time-extended links of node n.
func (ten *TEN) Out(n TENode) []TELink { return ten.out[n] }

// In returns the incoming time-extended links of node n.
func (ten *TEN) In(n TENode) []TELink { return ten.in[n] }

// Contains reports whether n lies in the window.
func (ten *TEN) Contains(n TENode) bool {
	return ten.G.HasNode(n.V) && n.T >= ten.T0 && n.T <= ten.T1
}

// TracePath maps an emission trace onto time-extended links; hops departing
// outside the window are skipped.
func (ten *TEN) TracePath(tr Trace) []TELink {
	var out []TELink
	for _, h := range tr.Hops {
		l, ok := ten.G.Link(h.From, h.To)
		if !ok {
			continue
		}
		if h.Depart < ten.T0 || h.Arrive > ten.T1 {
			continue
		}
		out = append(out, TELink{
			From: TENode{V: h.From, T: h.Depart},
			To:   TENode{V: h.To, T: h.Arrive},
			Cap:  l.Cap,
		})
	}
	return out
}

// EnumeratePaths enumerates every loop-free path through the time-extended
// network from src emitted at tick emit to dst, visiting each *physical*
// switch at most once (Definition 2). It is exponential and intended only
// for the literal ILP (3) encoding on small instances; limit bounds the
// number of returned paths (0 means no limit).
func (ten *TEN) EnumeratePaths(src, dst graph.NodeID, emit Tick, limit int) [][]TELink {
	var out [][]TELink
	visited := make(map[graph.NodeID]bool, ten.G.NumNodes())
	var cur []TELink
	var rec func(n TENode) bool
	rec = func(n TENode) bool {
		if n.V == dst {
			out = append(out, append([]TELink(nil), cur...))
			return limit > 0 && len(out) >= limit
		}
		visited[n.V] = true
		defer func() { visited[n.V] = false }()
		for _, l := range ten.out[n] {
			if visited[l.To.V] {
				continue
			}
			cur = append(cur, l)
			stop := rec(l.To)
			cur = cur[:len(cur)-1]
			if stop {
				return true
			}
		}
		return false
	}
	rec(TENode{V: src, T: emit})
	return out
}
