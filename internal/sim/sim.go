// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock and an event queue with stable FIFO ordering among
// same-time events. The data-plane emulator (internal/emu), the switch
// agents and the clock-sync model all run on this kernel, which is what
// makes the Mininet-substitute experiments reproducible run to run.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual time in emulator ticks (the emulator interprets one tick
// as one millisecond).
type Time int64

// Kernel is a discrete-event scheduler. The zero value is not usable; call
// NewKernel.
type Kernel struct {
	now   Time
	seq   uint64
	queue eventQueue
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// NewKernel returns a kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Pending returns the number of queued events.
func (k *Kernel) Pending() int { return len(k.queue) }

// At schedules fn at absolute time t. Scheduling in the past panics: it
// indicates a causality bug in the caller.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", t, k.now))
	}
	k.seq++
	heap.Push(&k.queue, &event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn d ticks from now.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	k.At(k.now+d, fn)
}

// Step executes the next event; it reports false when the queue is empty.
func (k *Kernel) Step() bool {
	if len(k.queue) == 0 {
		return false
	}
	ev := heap.Pop(&k.queue).(*event)
	k.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue drains, with a safety cap on the
// number of events to turn runaway feedback loops into a panic rather than
// a hang.
func (k *Kernel) Run() {
	const cap = 50_000_000
	for i := 0; ; i++ {
		if i >= cap {
			panic("sim: event cap exceeded; runaway event loop")
		}
		if !k.Step() {
			return
		}
	}
}

// RunUntil executes events with time <= t, then advances the clock to t.
func (k *Kernel) RunUntil(t Time) {
	for len(k.queue) > 0 && k.queue[0].at <= t {
		k.Step()
	}
	if t > k.now {
		k.now = t
	}
}
