package sim

import (
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(5, func() { got = append(got, 2) })
	k.At(3, func() { got = append(got, 1) })
	k.At(9, func() { got = append(got, 3) })
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if k.Now() != 9 {
		t.Fatalf("now = %d, want 9", k.Now())
	}
}

func TestFIFOWithinSameTime(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(7, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: %v", got)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	k := NewKernel()
	var fired []Time
	k.At(2, func() {
		fired = append(fired, k.Now())
		k.After(3, func() { fired = append(fired, k.Now()) })
	})
	k.Run()
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 5 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	k := NewKernel()
	k.At(5, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for past scheduling")
		}
	}()
	k.At(1, func() {})
}

func TestNegativeAfterPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative delay")
		}
	}()
	k.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, at := range []Time{1, 4, 8} {
		at := at
		k.At(at, func() { fired = append(fired, at) })
	}
	k.RunUntil(5)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want events at 1 and 4", fired)
	}
	if k.Now() != 5 {
		t.Fatalf("now = %d, want 5", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
	k.Run()
	if len(fired) != 3 || k.Now() != 8 {
		t.Fatalf("fired = %v now = %d", fired, k.Now())
	}
}

// TestClockMonotonic: under random event insertion, execution times are
// non-decreasing.
func TestClockMonotonic(t *testing.T) {
	f := func(delays []uint8) bool {
		k := NewKernel()
		var times []Time
		for _, d := range delays {
			d := Time(d)
			k.At(d, func() {
				times = append(times, k.Now())
				if d%3 == 0 {
					k.After(Time(d%5), func() { times = append(times, k.Now()) })
				}
			})
		}
		k.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
