package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleMax(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12
	p := &Problem{NumVars: 2, Objective: []float64{3, 2}}
	p.AddConstraint([]float64{1, 1}, LE, 4)
	p.AddConstraint([]float64{1, 3}, LE, 6)
	s := solveOK(t, p)
	if s.Status != Optimal || !approx(s.Objective, 12) {
		t.Fatalf("solution = %+v, want obj 12", s)
	}
}

func TestClassicTwoVar(t *testing.T) {
	// max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6 -> x=3, y=1.5, obj=21
	p := &Problem{NumVars: 2, Objective: []float64{5, 4}}
	p.AddConstraint([]float64{6, 4}, LE, 24)
	p.AddConstraint([]float64{1, 2}, LE, 6)
	s := solveOK(t, p)
	if !approx(s.Objective, 21) || !approx(s.X[0], 3) || !approx(s.X[1], 1.5) {
		t.Fatalf("solution = %+v, want x=3 y=1.5 obj=21", s)
	}
}

func TestGEAndEQConstraints(t *testing.T) {
	// max x + y s.t. x + y <= 10, x >= 2, y = 3 -> x=7, y=3, obj=10
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint([]float64{1, 1}, LE, 10)
	p.AddConstraint([]float64{1, 0}, GE, 2)
	p.AddConstraint([]float64{0, 1}, EQ, 3)
	s := solveOK(t, p)
	if s.Status != Optimal || !approx(s.Objective, 10) || !approx(s.X[1], 3) {
		t.Fatalf("solution = %+v", s)
	}
}

func TestInfeasible(t *testing.T) {
	p := &Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint([]float64{1}, LE, 1)
	p.AddConstraint([]float64{1}, GE, 2)
	s := solveOK(t, p)
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []float64{1, 0}}
	p.AddConstraint([]float64{0, 1}, LE, 5)
	s := solveOK(t, p)
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -1 with x,y>=0 means y >= x + 1; max x + y with y <= 5.
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint([]float64{1, -1}, LE, -1)
	p.AddConstraint([]float64{0, 1}, LE, 5)
	s := solveOK(t, p)
	if s.Status != Optimal || !approx(s.Objective, 9) { // x=4, y=5
		t.Fatalf("solution = %+v, want obj 9", s)
	}
}

func TestEqualityOnly(t *testing.T) {
	// max x s.t. x + y = 4, x - y = 2 -> x=3, y=1
	p := &Problem{NumVars: 2, Objective: []float64{1, 0}}
	p.AddConstraint([]float64{1, 1}, EQ, 4)
	p.AddConstraint([]float64{1, -1}, EQ, 2)
	s := solveOK(t, p)
	if !approx(s.X[0], 3) || !approx(s.X[1], 1) {
		t.Fatalf("solution = %+v, want x=3 y=1", s)
	}
}

func TestDegeneratePivoting(t *testing.T) {
	// A classic degenerate instance (Beale-like); Bland's rule must not
	// cycle.
	p := &Problem{NumVars: 4, Objective: []float64{0.75, -150, 0.02, -6}}
	p.AddConstraint([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddConstraint([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1)
	s := solveOK(t, p)
	if s.Status != Optimal || !approx(s.Objective, 0.05) {
		t.Fatalf("solution = %+v, want obj 0.05", s)
	}
}

func TestMalformed(t *testing.T) {
	if _, err := Solve(&Problem{NumVars: 0}); err == nil {
		t.Fatal("zero vars accepted")
	}
	p := &Problem{NumVars: 1, Objective: []float64{1, 2}}
	if _, err := Solve(p); err == nil {
		t.Fatal("oversized objective accepted")
	}
	p = &Problem{NumVars: 2}
	p.Constraints = append(p.Constraints, Constraint{Coeffs: []float64{1}, Op: Op(9), RHS: 1})
	if _, err := Solve(p); err == nil {
		t.Fatal("invalid op accepted")
	}
}

func TestShortCoefficientVectors(t *testing.T) {
	// Missing trailing coefficients are zero.
	p := &Problem{NumVars: 3, Objective: []float64{1}}
	p.AddConstraint([]float64{1}, LE, 7)
	s := solveOK(t, p)
	if !approx(s.Objective, 7) {
		t.Fatalf("obj = %f, want 7", s.Objective)
	}
}

// TestSolutionsSatisfyConstraints: on random feasible bounded programs, the
// reported optimum satisfies every constraint.
func TestSolutionsSatisfyConstraints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := 2 + rng.Intn(5)
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.Float64()*4 - 1
		}
		for i := 0; i < m; i++ {
			coeffs := make([]float64, n)
			for j := range coeffs {
				coeffs[j] = rng.Float64() * 3 // nonnegative rows keep it bounded-ish
			}
			p.AddConstraint(coeffs, LE, 1+rng.Float64()*10)
		}
		// Box to guarantee boundedness.
		for j := 0; j < n; j++ {
			coeffs := make([]float64, n)
			coeffs[j] = 1
			p.AddConstraint(coeffs, LE, 50)
		}
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return false
		}
		for _, c := range p.Constraints {
			lhs := 0.0
			for j, co := range c.Coeffs {
				lhs += co * s.X[j]
			}
			if lhs > c.RHS+1e-6 {
				return false
			}
		}
		for _, x := range s.X {
			if x < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestObjectiveIsOptimalOnBoxes: for per-variable box constraints the
// optimum is analytic; the solver must match it.
func TestObjectiveIsOptimalOnBoxes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		want := 0.0
		for j := 0; j < n; j++ {
			c := rng.Float64()*6 - 3
			ub := rng.Float64() * 10
			p.Objective[j] = c
			coeffs := make([]float64, n)
			coeffs[j] = 1
			p.AddConstraint(coeffs, LE, ub)
			if c > 0 {
				want += c * ub
			}
		}
		s, err := Solve(p)
		if err != nil || s.Status != Optimal {
			return false
		}
		return math.Abs(s.Objective-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
