// Package lp implements a small dense linear-programming solver: a
// two-phase primal simplex with Bland's anti-cycling rule. It is the
// substrate for the 0/1 branch-and-bound solver in internal/ilp, which in
// turn powers the OPT baseline (the paper solves the MUTP integer program
// (3) and the order-replacement round minimization with branch and bound).
//
// The solver targets the small, dense programs produced by those encoders;
// it makes no attempt at sparse or revised-simplex efficiency.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

const (
	// LE is <=.
	LE Op = iota + 1
	// GE is >=.
	GE
	// EQ is =.
	EQ
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Constraint is a linear constraint sum(Coeffs[i] * x[i]) Op RHS.
// Coeffs may be shorter than the variable count; missing entries are zero.
type Constraint struct {
	Coeffs []float64
	Op     Op
	RHS    float64
}

// Problem is a linear program over x >= 0: maximize Objective · x subject
// to Constraints.
type Problem struct {
	NumVars     int
	Objective   []float64
	Constraints []Constraint
}

// AddConstraint appends a constraint.
func (p *Problem) AddConstraint(coeffs []float64, op Op, rhs float64) {
	p.Constraints = append(p.Constraints, Constraint{Coeffs: coeffs, Op: op, RHS: rhs})
}

// Status classifies the outcome of Solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota + 1
	// Infeasible means no point satisfies the constraints.
	Infeasible
	// Unbounded means the objective is unbounded above.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
}

// ErrMalformed is returned for structurally invalid problems.
var ErrMalformed = errors.New("lp: malformed problem")

const eps = 1e-9

// Solve runs two-phase primal simplex on the problem. Variables are
// implicitly bounded below by zero; upper bounds must be expressed as
// constraints.
func Solve(p *Problem) (*Solution, error) {
	if p.NumVars <= 0 {
		return nil, fmt.Errorf("%w: NumVars=%d", ErrMalformed, p.NumVars)
	}
	if len(p.Objective) > p.NumVars {
		return nil, fmt.Errorf("%w: objective has %d coefficients for %d variables", ErrMalformed, len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) > p.NumVars {
			return nil, fmt.Errorf("%w: constraint %d has %d coefficients for %d variables", ErrMalformed, i, len(c.Coeffs), p.NumVars)
		}
		switch c.Op {
		case LE, GE, EQ:
		default:
			return nil, fmt.Errorf("%w: constraint %d has invalid op", ErrMalformed, i)
		}
	}
	t := newTableau(p)
	if t.needPhase1 {
		if !t.phase1() {
			return &Solution{Status: Infeasible}, nil
		}
	}
	status := t.phase2()
	if status == Unbounded {
		return &Solution{Status: Unbounded}, nil
	}
	x := t.extract()
	obj := 0.0
	for i, c := range p.Objective {
		obj += c * x[i]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj}, nil
}

// tableau is a dense simplex tableau in standard equality form
// A x = b, x >= 0, with slack/surplus/artificial columns appended.
type tableau struct {
	m, n       int // rows, total columns (excluding RHS)
	structural int // original variable count
	a          [][]float64
	b          []float64
	basis      []int // basis[i] = column basic in row i
	artStart   int   // first artificial column, or n if none
	needPhase1 bool
	obj        []float64 // phase-2 objective over all columns
}

func newTableau(p *Problem) *tableau {
	m := len(p.Constraints)
	// Count extra columns: one slack/surplus per inequality, one artificial
	// per GE/EQ (and per LE with negative RHS after normalization).
	t := &tableau{m: m, structural: p.NumVars}
	type rowPlan struct {
		slack int // +1 LE, -1 GE, 0 EQ (after sign normalization)
		art   bool
	}
	plans := make([]rowPlan, m)
	rows := make([][]float64, m)
	b := make([]float64, m)
	for i, c := range p.Constraints {
		row := make([]float64, p.NumVars)
		copy(row, c.Coeffs)
		rhs := c.RHS
		op := c.Op
		if rhs < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			rhs = -rhs
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		rows[i] = row
		b[i] = rhs
		switch op {
		case LE:
			plans[i] = rowPlan{slack: +1}
		case GE:
			plans[i] = rowPlan{slack: -1, art: true}
		case EQ:
			plans[i] = rowPlan{art: true}
		}
	}
	slackCount := 0
	artCount := 0
	for _, pl := range plans {
		if pl.slack != 0 {
			slackCount++
		}
		if pl.art {
			artCount++
		}
	}
	t.n = p.NumVars + slackCount + artCount
	t.artStart = p.NumVars + slackCount
	t.needPhase1 = artCount > 0
	t.a = make([][]float64, m)
	t.b = b
	t.basis = make([]int, m)
	slackCol := p.NumVars
	artCol := t.artStart
	for i := range rows {
		full := make([]float64, t.n)
		copy(full, rows[i])
		if plans[i].slack != 0 {
			full[slackCol] = float64(plans[i].slack)
			if plans[i].slack > 0 {
				t.basis[i] = slackCol
			}
			slackCol++
		}
		if plans[i].art {
			full[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.a[i] = full
	}
	t.obj = make([]float64, t.n)
	copy(t.obj, p.Objective)
	return t
}

// pivot performs a pivot on (row, col).
func (t *tableau) pivot(row, col int) {
	pr := t.a[row]
	pv := pr[col]
	for j := range pr {
		pr[j] /= pv
	}
	t.b[row] /= pv
	for i := range t.a {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		t.b[i] -= f * t.b[row]
	}
	t.basis[row] = col
}

// simplex maximizes the given objective (as reduced costs computed on the
// fly) over the current tableau using Bland's rule; cols limits the entering
// columns considered. Returns false when unbounded.
func (t *tableau) simplex(obj []float64, cols int) bool {
	for iter := 0; ; iter++ {
		// Reduced costs: c_j - c_B B^{-1} A_j. With the tableau kept in
		// canonical form, compute z_j from the basis directly.
		cb := make([]float64, t.m)
		for i, bi := range t.basis {
			if bi < len(obj) {
				cb[i] = obj[bi]
			}
		}
		enter := -1
		for j := 0; j < cols; j++ {
			if t.isBasic(j) {
				continue
			}
			zj := 0.0
			for i := 0; i < t.m; i++ {
				zj += cb[i] * t.a[i][j]
			}
			cj := 0.0
			if j < len(obj) {
				cj = obj[j]
			}
			if cj-zj > eps {
				enter = j // Bland: first improving column
				break
			}
		}
		if enter < 0 {
			return true
		}
		leave := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][enter] > eps {
				ratio := t.b[i] / t.a[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return false // unbounded
		}
		t.pivot(leave, enter)
	}
}

func (t *tableau) isBasic(col int) bool {
	for _, b := range t.basis {
		if b == col {
			return true
		}
	}
	return false
}

// phase1 drives artificial variables to zero; returns false if infeasible.
func (t *tableau) phase1() bool {
	obj := make([]float64, t.n)
	for j := t.artStart; j < t.n; j++ {
		obj[j] = -1
	}
	if !t.simplex(obj, t.n) {
		return false
	}
	// Feasible iff the artificial sum is (near) zero.
	sum := 0.0
	for i, bi := range t.basis {
		if bi >= t.artStart {
			sum += t.b[i]
		}
	}
	if sum > 1e-7 {
		return false
	}
	// Pivot any remaining artificial basics out where possible.
	for i, bi := range t.basis {
		if bi < t.artStart {
			continue
		}
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				break
			}
		}
	}
	return true
}

// phase2 maximizes the real objective over structural+slack columns.
func (t *tableau) phase2() Status {
	if !t.simplex(t.obj, t.artStart) {
		return Unbounded
	}
	return Optimal
}

func (t *tableau) extract() []float64 {
	x := make([]float64, t.structural)
	for i, bi := range t.basis {
		if bi < t.structural {
			x[bi] = t.b[i]
		}
	}
	return x
}
