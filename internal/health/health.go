// Package health is the live SLO layer over Chronus updates: it folds
// the scheduling tolerance a plan *promises* (per-switch slack from
// core.ScheduleSlack) against the timing error the execution *shows*
// (per-switch fire skew from the trace stream) into margins, burn
// rates and a single OK/WARN/CRIT verdict.
//
// The engine is deliberately more nervous than the auditor: the
// auditor flags an update after a violation is provable from the full
// trace, while the health rules degrade as soon as the margin shrinks
// — an invalid plan is CRIT before its first FlowMod is sent, a
// critical-path switch firing late is CRIT at the apply event, and
// half the slack consumed is already WARN.
//
// With a ClockSource attached (internal/clock), the engine goes one
// step earlier still: it extrapolates each switch's estimated clock
// offset and drift to that switch's scheduled apply tick and degrades
// to WARN when the *predicted* skew already exceeds the slack — before
// the first late apply, not after.
package health

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"github.com/chronus-sdn/chronus/internal/obs"
)

// Level is the overall health verdict, ordered by severity.
type Level int

// Severity order matters: rules compute the max.
const (
	OK Level = iota
	Warn
	Crit
)

// String renders the level the way /health and the dashboard show it.
func (l Level) String() string {
	switch l {
	case Warn:
		return "WARN"
	case Crit:
		return "CRIT"
	default:
		return "OK"
	}
}

// warnBurnPct is the fraction of a switch's slack that may be consumed
// by observed skew before the engine degrades to WARN.
const warnBurnPct = 50

// SkewWindow is how many recent applies the windowed worst-skew view
// spans. A transient spike ages out of margins and burn after this many
// clean applies; the all-time maximum stays visible separately.
const SkewWindow = 8

// Backpressure thresholds for the admission-queue rules.
const (
	// QueueWarnPct is the queue-depth percentage at which the engine
	// degrades to WARN.
	QueueWarnPct = 80
	// SaturationStreakWarn is how many consecutive submissions may be
	// refused or preempted at a full queue before saturation is judged
	// sustained (WARN).
	SaturationStreakWarn = 3
	// QueueWaitWarnTicks is the oldest-queued-update age (virtual
	// ticks) past which the engine degrades to WARN.
	QueueWaitWarnTicks = 1000
)

// TenantQueue is one tenant's admission accounting as the health rules
// see it: how much it submits, how often it is refused, and the
// priority/preemption picture (whether its updates evict others or are
// evicted themselves).
type TenantQueue struct {
	Tenant      string `json:"tenant"`
	Submitted   int64  `json:"submitted"`
	Refused     int64  `json:"refused,omitempty"`
	Preempted   int64  `json:"preempted,omitempty"`
	MaxPriority int    `json:"max_priority,omitempty"`
}

// QueueStats is the admission-queue surface the backpressure rules
// judge (implemented by internal/admit via a daemon-side adapter).
type QueueStats struct {
	// Depth and Cap are the current and maximum queue occupancy.
	Depth int `json:"depth"`
	Cap   int `json:"cap"`
	// OldestWaitTicks is the virtual-time age of the oldest queued
	// update.
	OldestWaitTicks int64 `json:"oldest_wait_ticks"`
	// SaturationStreak counts consecutive submissions refused or
	// preempted against a full queue; any successful enqueue with room
	// resets it.
	SaturationStreak int `json:"saturation_streak"`
	// Tenants is the per-tenant accounting, ascending by name.
	Tenants []TenantQueue `json:"tenants,omitempty"`
}

// QueueSource supplies live admission-queue stats.
type QueueSource interface {
	QueueHealth() QueueStats
}

// DriftUpdate is one not-yet-converged update as the drift rules judge
// it: its observed-state status (converging / stranded / diverged), how
// long it has lagged its intent, and the slack its schedule promised.
type DriftUpdate struct {
	// Update identifies the update across daemon runs ("run/id").
	Update string `json:"update"`
	Status string `json:"status"`
	// AgeTicks is how long the observed state has lagged the planned
	// end-state (cumulative virtual ticks across restarts).
	AgeTicks int64 `json:"age_ticks"`
	// SlackTicks is the schedule's tightest per-switch slack — the
	// tolerance the drift age is judged against.
	SlackTicks int64 `json:"slack_ticks"`
}

// DriftStats is the desired-vs-observed surface the drift rules judge
// (implemented by internal/state via a daemon-side adapter). Updates
// lists only the not-yet-converged executions; converged and plan-only
// updates carry no drift.
type DriftStats struct {
	Tracked       int           `json:"tracked"`
	Stranded      int           `json:"stranded"`
	Diverged      int           `json:"diverged"`
	Converging    int           `json:"converging"`
	WorstAgeTicks int64         `json:"worst_age_ticks"`
	Updates       []DriftUpdate `json:"updates,omitempty"`
}

// DriftSource supplies live desired-vs-observed drift stats.
type DriftSource interface {
	DriftHealth() DriftStats
}

// ClockSource supplies predictive clock-quality estimates (implemented
// by internal/clock's Estimator). Skews and margins are in milliticks.
type ClockSource interface {
	// PredictSkew bounds |skew| expected at atTick; ok is false when no
	// estimate exists for the switch yet.
	PredictSkew(sw string, atTick int64) (milliTicks int64, ok bool)
	// TicksToViolation forecasts how many ticks after fromTick the
	// predicted skew crosses slackTicks: 0 = already past, -1 = never.
	TicksToViolation(sw string, slackTicks, fromTick int64) int64
}

// PlanSwitch is one switch's promise in a plan: its scheduled slack.
type PlanSwitch struct {
	Switch string `json:"switch"`
	// SlackTicks is how many ticks this switch's activation may slip
	// before the validator reports a violation.
	SlackTicks int64 `json:"slack_ticks"`
	// ApplyTick is the reference tick the switch is scheduled to fire
	// at (0 when unknown); the forecast extrapolates clock error there.
	ApplyTick int64 `json:"apply_tick,omitempty"`
	// Critical marks zero-slack switches (any slip breaks the update).
	Critical bool `json:"critical"`
}

// Plan is what the engine holds an execution accountable to.
type Plan struct {
	// Kind is the execution strategy: "timed", "rounds" or "twophase".
	// Only timed plans carry slack promises; "rounds" runs without any
	// timing guarantee and is WARN by rule.
	Kind string `json:"kind"`
	// Valid is the validator's verdict on the planned schedule; a plan
	// known to violate (e.g. a best-effort oneshot) is CRIT from the
	// moment it is set, before any switch applies anything.
	Valid bool `json:"valid"`
	// Switches lists the per-switch promises of a timed plan.
	Switches []PlanSwitch `json:"switches,omitempty"`
	// StartTick is the reference tick the plan was armed at; forecasts
	// count time-to-violation from here.
	StartTick int64 `json:"start_tick,omitempty"`
}

// SwitchHealth is the live margin of one switch.
type SwitchHealth struct {
	Switch string `json:"switch"`
	// SlackTicks is the plan's promise.
	SlackTicks int64 `json:"slack_ticks"`
	// WorstSkewTicks is the largest absolute fire skew within the last
	// SkewWindow applies — a spike ages out once clean fires follow it.
	WorstSkewTicks int64 `json:"worst_skew_ticks"`
	// WorstEverSkewTicks is the all-time maximum for this plan; it never
	// decays and is what the margin-violation (CRIT) rule judges.
	WorstEverSkewTicks int64 `json:"worst_skew_ever_ticks"`
	// MarginTicks is SlackTicks - WorstSkewTicks; negative means the
	// validator's tolerance is provably exceeded.
	MarginTicks int64 `json:"margin_ticks"`
	// BurnPct is the percentage of slack consumed (100 when a critical
	// switch has slipped at all).
	BurnPct int64 `json:"burn_pct"`
	// Critical marks plan-critical switches.
	Critical bool `json:"critical"`
	// Applies counts observed rule applications on this switch.
	Applies int64 `json:"applies"`
	// ApplyTick echoes the plan's scheduled fire tick (0 when unknown).
	ApplyTick int64 `json:"apply_tick,omitempty"`
	// Forecast marks that a clock estimate existed for this switch and
	// the predictive fields below are meaningful.
	Forecast bool `json:"forecast,omitempty"`
	// PredictedSkewMilliTicks bounds |skew| the clock estimator expects
	// at ApplyTick (milliticks).
	PredictedSkewMilliTicks int64 `json:"predicted_skew_mticks,omitempty"`
	// PredictedMarginMilliTicks is SlackTicks*1000 minus the predicted
	// skew; negative forecasts a violation before it is observed.
	PredictedMarginMilliTicks int64 `json:"predicted_margin_mticks,omitempty"`
	// TTVTicks is the forecast time-to-violation counted from the
	// plan's StartTick: 0 = already past the slack, -1 = never.
	TTVTicks int64 `json:"ttv_ticks,omitempty"`
}

// Verdict is the machine-readable /health payload.
type Verdict struct {
	Level string `json:"level"`
	// Reasons lists every rule that fired, most severe first.
	Reasons []string `json:"reasons"`
	// Plan echoes what the engine is judging against; nil when idle.
	Plan *Plan `json:"plan,omitempty"`
	// WorstSwitch is the switch with the smallest margin ("" when no
	// timed plan is active) — the live analogue of the audit package's
	// gating switch.
	WorstSwitch      string `json:"worst_switch,omitempty"`
	WorstMarginTicks int64  `json:"worst_margin_ticks"`
	// PredictedWorstMarginMilliTicks is the smallest forecast margin
	// across switches with clock estimates (milliticks); only set when
	// a ClockSource is attached and at least one forecast exists.
	PredictedWorstMarginMilliTicks int64 `json:"predicted_worst_margin_mticks,omitempty"`
	// Switches reports per-switch margins, ascending by name.
	Switches []SwitchHealth `json:"switches,omitempty"`
	// Disconnects counts control sessions lost since the plan was set.
	Disconnects int64 `json:"disconnects"`
	// Queue reports the admission pipeline the backpressure rules
	// judged; nil when no QueueSource is attached.
	Queue *QueueStats `json:"queue,omitempty"`
	// Drift reports the desired-vs-observed state the drift rules
	// judged; nil when no DriftSource is attached.
	Drift *DriftStats `json:"drift,omitempty"`
}

// Engine folds trace events into live margins. All methods are safe
// for concurrent use; a nil engine is a no-op observer.
type Engine struct {
	mu          sync.Mutex
	reg         *obs.Registry
	clock       ClockSource
	queue       QueueSource
	drift       DriftSource
	plan        *Plan
	slack       map[string]PlanSwitch
	skews       map[string][]int64 // last SkewWindow absolute skews
	skewEver    map[string]int64   // all-time max for this plan
	applies     map[string]int64
	disconnects int64
	cursor      uint64
}

// New builds an engine exporting its gauges on reg (nil disables the
// metric mirror but not the engine).
func New(reg *obs.Registry) *Engine {
	reg.Help("chronus_slack_margin_ticks", "Per-switch remaining scheduling tolerance: planned slack minus worst observed fire skew.")
	reg.Help("chronus_health_level", "Overall health verdict: 0 OK, 1 WARN, 2 CRIT.")
	reg.Help("chronus_health_worst_margin_ticks", "Smallest per-switch slack margin (the live gating switch).")
	reg.Help("chronus_health_burn_worst_pct", "Largest per-switch slack burn percentage.")
	reg.Help("chronus_health_predicted_worst_margin_ticks", "Smallest forecast slack margin from the clock estimator, extrapolated to each switch's scheduled apply tick.")
	return &Engine{
		reg:      reg,
		slack:    map[string]PlanSwitch{},
		skews:    map[string][]int64{},
		skewEver: map[string]int64{},
		applies:  map[string]int64{},
	}
}

// SetClock attaches the clock-quality estimator the predictive rules
// read from. Safe to leave unset: the engine then judges observed skew
// only, as before.
func (e *Engine) SetClock(c ClockSource) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.clock = c
}

// SetQueue attaches the admission-queue source the backpressure rules
// read from. Safe to leave unset: the engine then judges execution
// margins only, as before.
func (e *Engine) SetQueue(q QueueSource) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queue = q
}

// SetDrift attaches the observed-state store the drift rules read
// from. Safe to leave unset: the engine then judges queue and execution
// margins only, as before.
func (e *Engine) SetDrift(d DriftSource) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.drift = d
}

// SetPlan arms the engine with a new plan and clears the observations
// of the previous one (the margins of a finished update stay readable
// until the next plan arrives).
func (e *Engine) SetPlan(p Plan) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.plan = &p
	e.slack = map[string]PlanSwitch{}
	e.skews = map[string][]int64{}
	e.skewEver = map[string]int64{}
	e.applies = map[string]int64{}
	e.disconnects = 0
	for _, s := range p.Switches {
		e.slack[s.Switch] = s
		e.reg.Gauge(fmt.Sprintf("chronus_slack_margin_ticks{switch=%q}", s.Switch)).Set(s.SlackTicks)
	}
}

// Cursor returns the trace sequence number up to which events have
// been folded; feed Observe the events after it.
func (e *Engine) Cursor() uint64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cursor
}

// Observe folds a batch of trace events (as returned by
// Tracer.Events(engine.Cursor())) into the margins. It consumes
// sw.apply fire skews and ctl.disconnect events; everything else only
// moves the cursor.
func (e *Engine) Observe(events []obs.Event) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ev := range events {
		if ev.Seq > e.cursor {
			e.cursor = ev.Seq
		}
		switch ev.Name {
		case "sw.apply":
			var sw string
			var skew int64
			for _, a := range ev.Attrs {
				switch a.K {
				case "switch":
					sw = a.V
				case "skew":
					skew, _ = strconv.ParseInt(a.V, 10, 64)
				}
			}
			if sw == "" {
				continue
			}
			if skew < 0 {
				skew = -skew
			}
			e.applies[sw]++
			ring := append(e.skews[sw], skew)
			if len(ring) > SkewWindow {
				ring = ring[len(ring)-SkewWindow:]
			}
			e.skews[sw] = ring
			if skew > e.skewEver[sw] {
				e.skewEver[sw] = skew
			}
			if p, ok := e.slack[sw]; ok {
				e.reg.Gauge(fmt.Sprintf("chronus_slack_margin_ticks{switch=%q}", sw)).Set(p.SlackTicks - e.windowedSkew(sw))
			}
		case "ctl.disconnect":
			e.disconnects++
		}
	}
}

// windowedSkew returns the worst absolute skew within the last
// SkewWindow applies of sw. Callers hold e.mu.
func (e *Engine) windowedSkew(sw string) int64 {
	var worst int64
	for _, s := range e.skews[sw] {
		if s > worst {
			worst = s
		}
	}
	return worst
}

// Verdict evaluates the rules table and mirrors the summary gauges.
// The rules, in severity order:
//
//	CRIT  plan known invalid (validator violations at plan time)
//	CRIT  control session lost during the update
//	CRIT  all-time margin < 0 on any switch (skew provably past the
//	      tolerance at some point of this plan — the violation is a
//	      fact and does not age out; a critical switch slipping at all
//	      is this rule with slack 0)
//	WARN  plan executes without timing guarantees (kind "rounds")
//	WARN  clock forecast predicts skew past the slack at a switch's
//	      scheduled apply tick (fires before the first late apply)
//	WARN  burn >= 50% of slack on any switch, judged on the windowed
//	      worst skew so a transient spike recovers
//	WARN  admission queue at >= 80% of capacity (backpressure close)
//	WARN  sustained admission saturation: >= 3 consecutive submissions
//	      refused or preempted against a full queue
//	WARN  oldest queued update waiting > 1000 virtual ticks
//	CRIT  an update is stranded mid-schedule (half-executed with no
//	      applies pending — the observed-state store's restart-recovery
//	      signal)
//	WARN  an update's drift age exceeds its schedule slack (the
//	      observed state is lagging the planner's intent longer than
//	      the plan tolerated)
//	OK    otherwise (per-tenant preemption counts are surfaced in the
//	      queue stats either way)
//
// Queue and drift rules are independent of the plan: a saturated
// admission queue or a stranded past update degrades an otherwise idle
// daemon too.
func (e *Engine) Verdict() Verdict {
	if e == nil {
		return Verdict{Level: OK.String()}
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	v := Verdict{Disconnects: e.disconnects}
	level := OK
	raise := func(l Level, reason string) {
		if l > level {
			level = l
		}
		v.Reasons = append(v.Reasons, fmt.Sprintf("%s: %s", l, reason))
	}

	if e.queue != nil {
		qs := e.queue.QueueHealth()
		v.Queue = &qs
		if qs.Cap > 0 && qs.Depth*100 >= qs.Cap*QueueWarnPct {
			raise(Warn, fmt.Sprintf("admission queue at %d%% of capacity (%d/%d)",
				100*qs.Depth/qs.Cap, qs.Depth, qs.Cap))
		}
		if qs.SaturationStreak >= SaturationStreakWarn {
			raise(Warn, fmt.Sprintf("sustained admission saturation: %d consecutive submissions refused or preempted at a full queue", qs.SaturationStreak))
		}
		if qs.OldestWaitTicks > QueueWaitWarnTicks {
			raise(Warn, fmt.Sprintf("oldest queued update waiting %d ticks (threshold %d)",
				qs.OldestWaitTicks, QueueWaitWarnTicks))
		}
		for _, t := range qs.Tenants {
			if t.Preempted > 0 {
				raise(OK, fmt.Sprintf("tenant %s: %d update(s) preempted by higher-priority submissions", t.Tenant, t.Preempted))
			}
		}
	}

	if e.drift != nil {
		ds := e.drift.DriftHealth()
		v.Drift = &ds
		if ds.Stranded > 0 {
			raise(Crit, fmt.Sprintf("%d update(s) stranded mid-schedule (half-executed, no applies pending)", ds.Stranded))
		}
		for _, u := range ds.Updates {
			if u.Status != "stranded" && u.AgeTicks > u.SlackTicks {
				raise(Warn, fmt.Sprintf("update %s drifting %d ticks past its %d-tick slack (%s)",
					u.Update, u.AgeTicks, u.SlackTicks, u.Status))
			}
		}
	}

	if e.plan == nil {
		if len(v.Reasons) == 0 {
			v.Reasons = []string{"OK: idle (no update planned yet)"}
		}
		v.Level = level.String()
		e.setSummaryGauges(level, 0, 0)
		return v
	}
	plan := *e.plan
	v.Plan = &plan

	if !plan.Valid {
		raise(Crit, "planned schedule violates the validator (best-effort execution)")
	}
	if e.disconnects > 0 {
		raise(Crit, fmt.Sprintf("%d control session(s) lost during the update", e.disconnects))
	}
	if plan.Kind == "rounds" {
		raise(Warn, "barrier-paced execution carries no timed-slack guarantee")
	}

	names := make([]string, 0, len(e.slack))
	for name := range e.slack {
		names = append(names, name)
	}
	sort.Strings(names)
	worstMargin, worstBurn := int64(0), int64(0)
	predWorst, anyForecast := int64(0), false
	first := true
	for _, name := range names {
		p := e.slack[name]
		skew := e.windowedSkew(name)
		ever := e.skewEver[name]
		margin := p.SlackTicks - skew
		burn := int64(0)
		if p.SlackTicks > 0 {
			burn = 100 * skew / p.SlackTicks
		} else if skew > 0 {
			burn = 100
		}
		sh := SwitchHealth{
			Switch:             name,
			SlackTicks:         p.SlackTicks,
			WorstSkewTicks:     skew,
			WorstEverSkewTicks: ever,
			MarginTicks:        margin,
			BurnPct:            burn,
			Critical:           p.Critical,
			Applies:            e.applies[name],
			ApplyTick:          p.ApplyTick,
		}
		if e.clock != nil && p.ApplyTick > 0 {
			if pred, ok := e.clock.PredictSkew(name, p.ApplyTick); ok {
				sh.Forecast = true
				sh.PredictedSkewMilliTicks = pred
				sh.PredictedMarginMilliTicks = p.SlackTicks*1000 - pred
				sh.TTVTicks = e.clock.TicksToViolation(name, p.SlackTicks, plan.StartTick)
				if !anyForecast || sh.PredictedMarginMilliTicks < predWorst {
					predWorst = sh.PredictedMarginMilliTicks
					anyForecast = true
				}
				if sh.PredictedMarginMilliTicks < 0 {
					raise(Warn, fmt.Sprintf("switch %s forecast to skew %d mticks at tick %d, past its %d-tick slack (ttv %d)",
						name, pred, p.ApplyTick, p.SlackTicks, sh.TTVTicks))
				}
			}
		}
		v.Switches = append(v.Switches, sh)
		if first || margin < worstMargin {
			worstMargin = margin
			v.WorstSwitch = name
			first = false
		}
		if burn > worstBurn {
			worstBurn = burn
		}
		if p.SlackTicks-ever < 0 {
			raise(Crit, fmt.Sprintf("switch %s skewed %d ticks past its %d-tick slack", name, ever, p.SlackTicks))
		} else if burn >= warnBurnPct {
			raise(Warn, fmt.Sprintf("switch %s burned %d%% of its slack", name, burn))
		}
	}
	v.WorstMarginTicks = worstMargin
	if anyForecast {
		v.PredictedWorstMarginMilliTicks = predWorst
	}

	if len(v.Reasons) == 0 {
		raise(OK, "all margins inside slack")
	}
	v.Level = level.String()
	e.setSummaryGauges(level, worstMargin, worstBurn)
	if anyForecast {
		e.reg.Gauge("chronus_health_predicted_worst_margin_ticks").Set(roundMilli(predWorst))
	}
	return v
}

// roundMilli converts milliticks to whole ticks, rounding half away
// from zero.
func roundMilli(m int64) int64 {
	if m >= 0 {
		return (m + 500) / 1000
	}
	return -((-m + 500) / 1000)
}

func (e *Engine) setSummaryGauges(level Level, worstMargin, worstBurn int64) {
	e.reg.Gauge("chronus_health_level").Set(int64(level))
	e.reg.Gauge("chronus_health_worst_margin_ticks").Set(worstMargin)
	e.reg.Gauge("chronus_health_burn_worst_pct").Set(worstBurn)
}
