package health

import (
	"strings"
	"testing"

	"github.com/chronus-sdn/chronus/internal/obs"
)

func applyEvent(seq uint64, sw string, skew int64) obs.Event {
	return obs.Event{Seq: seq, Name: "sw.apply", Attrs: []obs.Attr{
		obs.A("switch", sw), obs.A("skew", skew),
	}}
}

func TestIdleVerdict(t *testing.T) {
	e := New(obs.NewRegistry())
	v := e.Verdict()
	if v.Level != "OK" {
		t.Fatalf("idle level = %s", v.Level)
	}
	if len(v.Reasons) != 1 || !strings.Contains(v.Reasons[0], "idle") {
		t.Fatalf("idle reasons = %v", v.Reasons)
	}
}

func TestInvalidPlanIsCritBeforeAnyEvent(t *testing.T) {
	// The oneshot case: a best-effort schedule the validator rejects
	// must be CRIT from SetPlan, before any switch applies anything —
	// strictly earlier than the auditor, which needs the full trace.
	e := New(obs.NewRegistry())
	e.SetPlan(Plan{Kind: "timed", Valid: false, Switches: []PlanSwitch{
		{Switch: "R1", SlackTicks: 0, Critical: true},
	}})
	v := e.Verdict()
	if v.Level != "CRIT" {
		t.Fatalf("invalid plan level = %s, want CRIT", v.Level)
	}
}

func TestMarginBurnAndCrit(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(reg)
	e.SetPlan(Plan{Kind: "timed", Valid: true, Switches: []PlanSwitch{
		{Switch: "R1", SlackTicks: 10},
		{Switch: "R2", SlackTicks: 4},
		{Switch: "R3", SlackTicks: 0, Critical: true},
	}})
	if v := e.Verdict(); v.Level != "OK" {
		t.Fatalf("fresh valid plan level = %s: %v", v.Level, v.Reasons)
	}

	// R1 burns 30%: still OK. Skew folds as worst |skew|.
	e.Observe([]obs.Event{applyEvent(1, "R1", -3)})
	v := e.Verdict()
	if v.Level != "OK" {
		t.Fatalf("30%% burn level = %s: %v", v.Level, v.Reasons)
	}
	if v.Switches[0].MarginTicks != 7 || v.Switches[0].BurnPct != 30 {
		t.Fatalf("R1 health = %+v", v.Switches[0])
	}

	// R2 burns 50%: WARN. The untouched critical switch R3 (slack 0,
	// margin 0) is still the worst margin.
	e.Observe([]obs.Event{applyEvent(2, "R2", 2)})
	v = e.Verdict()
	if v.Level != "WARN" {
		t.Fatalf("50%% burn level = %s: %v", v.Level, v.Reasons)
	}
	if v.WorstSwitch != "R3" || v.WorstMarginTicks != 0 {
		t.Fatalf("worst = %s/%d, want R3/0", v.WorstSwitch, v.WorstMarginTicks)
	}

	// The critical switch slips one tick: CRIT (margin -1).
	e.Observe([]obs.Event{applyEvent(3, "R3", 1)})
	v = e.Verdict()
	if v.Level != "CRIT" {
		t.Fatalf("critical slip level = %s: %v", v.Level, v.Reasons)
	}
	if v.WorstSwitch != "R3" || v.WorstMarginTicks != -1 {
		t.Fatalf("worst = %s/%d, want R3/-1", v.WorstSwitch, v.WorstMarginTicks)
	}
	if e.Cursor() != 3 {
		t.Fatalf("cursor = %d, want 3", e.Cursor())
	}

	// Gauges mirror the verdict.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`chronus_slack_margin_ticks{switch="R1"} 7`,
		`chronus_slack_margin_ticks{switch="R2"} 2`,
		`chronus_slack_margin_ticks{switch="R3"} -1`,
		"chronus_health_level 2",
		"chronus_health_worst_margin_ticks -1",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRoundsPlanWarnsAndDisconnectCrits(t *testing.T) {
	e := New(nil) // nil registry: engine still works
	e.SetPlan(Plan{Kind: "rounds", Valid: true})
	v := e.Verdict()
	if v.Level != "WARN" {
		t.Fatalf("rounds level = %s: %v", v.Level, v.Reasons)
	}
	e.Observe([]obs.Event{{Seq: 9, Name: "ctl.disconnect"}})
	v = e.Verdict()
	if v.Level != "CRIT" || v.Disconnects != 1 {
		t.Fatalf("disconnect level = %s, disconnects = %d", v.Level, v.Disconnects)
	}
	// A new plan clears the observations.
	e.SetPlan(Plan{Kind: "timed", Valid: true})
	if v := e.Verdict(); v.Level != "OK" {
		t.Fatalf("replan level = %s: %v", v.Level, v.Reasons)
	}
	if e.Cursor() != 9 {
		t.Fatalf("cursor reset by SetPlan: %d", e.Cursor())
	}
}

func TestNilEngine(t *testing.T) {
	var e *Engine
	e.SetPlan(Plan{})
	e.Observe(nil)
	if c := e.Cursor(); c != 0 {
		t.Fatalf("nil cursor = %d", c)
	}
	if v := e.Verdict(); v.Level != "OK" {
		t.Fatalf("nil verdict = %s", v.Level)
	}
}
