package health

import (
	"strings"
	"testing"

	"github.com/chronus-sdn/chronus/internal/obs"
)

func applyEvent(seq uint64, sw string, skew int64) obs.Event {
	return obs.Event{Seq: seq, Name: "sw.apply", Attrs: []obs.Attr{
		obs.A("switch", sw), obs.A("skew", skew),
	}}
}

func TestIdleVerdict(t *testing.T) {
	e := New(obs.NewRegistry())
	v := e.Verdict()
	if v.Level != "OK" {
		t.Fatalf("idle level = %s", v.Level)
	}
	if len(v.Reasons) != 1 || !strings.Contains(v.Reasons[0], "idle") {
		t.Fatalf("idle reasons = %v", v.Reasons)
	}
}

func TestInvalidPlanIsCritBeforeAnyEvent(t *testing.T) {
	// The oneshot case: a best-effort schedule the validator rejects
	// must be CRIT from SetPlan, before any switch applies anything —
	// strictly earlier than the auditor, which needs the full trace.
	e := New(obs.NewRegistry())
	e.SetPlan(Plan{Kind: "timed", Valid: false, Switches: []PlanSwitch{
		{Switch: "R1", SlackTicks: 0, Critical: true},
	}})
	v := e.Verdict()
	if v.Level != "CRIT" {
		t.Fatalf("invalid plan level = %s, want CRIT", v.Level)
	}
}

func TestMarginBurnAndCrit(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(reg)
	e.SetPlan(Plan{Kind: "timed", Valid: true, Switches: []PlanSwitch{
		{Switch: "R1", SlackTicks: 10},
		{Switch: "R2", SlackTicks: 4},
		{Switch: "R3", SlackTicks: 0, Critical: true},
	}})
	if v := e.Verdict(); v.Level != "OK" {
		t.Fatalf("fresh valid plan level = %s: %v", v.Level, v.Reasons)
	}

	// R1 burns 30%: still OK. Skew folds as worst |skew|.
	e.Observe([]obs.Event{applyEvent(1, "R1", -3)})
	v := e.Verdict()
	if v.Level != "OK" {
		t.Fatalf("30%% burn level = %s: %v", v.Level, v.Reasons)
	}
	if v.Switches[0].MarginTicks != 7 || v.Switches[0].BurnPct != 30 {
		t.Fatalf("R1 health = %+v", v.Switches[0])
	}

	// R2 burns 50%: WARN. The untouched critical switch R3 (slack 0,
	// margin 0) is still the worst margin.
	e.Observe([]obs.Event{applyEvent(2, "R2", 2)})
	v = e.Verdict()
	if v.Level != "WARN" {
		t.Fatalf("50%% burn level = %s: %v", v.Level, v.Reasons)
	}
	if v.WorstSwitch != "R3" || v.WorstMarginTicks != 0 {
		t.Fatalf("worst = %s/%d, want R3/0", v.WorstSwitch, v.WorstMarginTicks)
	}

	// The critical switch slips one tick: CRIT (margin -1).
	e.Observe([]obs.Event{applyEvent(3, "R3", 1)})
	v = e.Verdict()
	if v.Level != "CRIT" {
		t.Fatalf("critical slip level = %s: %v", v.Level, v.Reasons)
	}
	if v.WorstSwitch != "R3" || v.WorstMarginTicks != -1 {
		t.Fatalf("worst = %s/%d, want R3/-1", v.WorstSwitch, v.WorstMarginTicks)
	}
	if e.Cursor() != 3 {
		t.Fatalf("cursor = %d, want 3", e.Cursor())
	}

	// Gauges mirror the verdict.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`chronus_slack_margin_ticks{switch="R1"} 7`,
		`chronus_slack_margin_ticks{switch="R2"} 2`,
		`chronus_slack_margin_ticks{switch="R3"} -1`,
		"chronus_health_level 2",
		"chronus_health_worst_margin_ticks -1",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWindowedSkewRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(reg)
	e.SetPlan(Plan{Kind: "timed", Valid: true, Switches: []PlanSwitch{
		{Switch: "R1", SlackTicks: 10},
	}})
	// One transient 6-tick spike: 60% burn, WARN.
	e.Observe([]obs.Event{applyEvent(1, "R1", 6)})
	v := e.Verdict()
	if v.Level != "WARN" {
		t.Fatalf("spike level = %s: %v", v.Level, v.Reasons)
	}
	if v.Switches[0].WorstSkewTicks != 6 || v.Switches[0].WorstEverSkewTicks != 6 {
		t.Fatalf("spike skews = %+v", v.Switches[0])
	}
	// SkewWindow clean applies push the spike out of the window: the
	// live margin recovers to OK while the all-time max stays visible.
	evs := make([]obs.Event, 0, SkewWindow)
	for i := 0; i < SkewWindow; i++ {
		evs = append(evs, applyEvent(uint64(2+i), "R1", 0))
	}
	e.Observe(evs)
	v = e.Verdict()
	if v.Level != "OK" {
		t.Fatalf("recovered level = %s: %v", v.Level, v.Reasons)
	}
	sh := v.Switches[0]
	if sh.WorstSkewTicks != 0 || sh.MarginTicks != 10 || sh.BurnPct != 0 {
		t.Fatalf("recovered health = %+v", sh)
	}
	if sh.WorstEverSkewTicks != 6 {
		t.Fatalf("all-time max lost: %+v", sh)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `chronus_slack_margin_ticks{switch="R1"} 10`+"\n") {
		t.Errorf("margin gauge did not recover:\n%s", b.String())
	}
}

func TestViolationDoesNotAgeOut(t *testing.T) {
	// A skew past the slack is a fact about this plan: CRIT must hold
	// even after the spike leaves the recovery window.
	e := New(nil)
	e.SetPlan(Plan{Kind: "timed", Valid: true, Switches: []PlanSwitch{
		{Switch: "R1", SlackTicks: 3},
	}})
	e.Observe([]obs.Event{applyEvent(1, "R1", 5)})
	evs := make([]obs.Event, 0, SkewWindow)
	for i := 0; i < SkewWindow; i++ {
		evs = append(evs, applyEvent(uint64(2+i), "R1", 0))
	}
	e.Observe(evs)
	v := e.Verdict()
	if v.Level != "CRIT" {
		t.Fatalf("aged-out violation level = %s: %v", v.Level, v.Reasons)
	}
	if v.Switches[0].WorstSkewTicks != 0 || v.Switches[0].WorstEverSkewTicks != 5 {
		t.Fatalf("skews = %+v", v.Switches[0])
	}
}

// stubClock is a canned ClockSource for forecast tests.
type stubClock struct {
	pred map[string]int64
	ttv  int64
}

func (s stubClock) PredictSkew(sw string, atTick int64) (int64, bool) {
	p, ok := s.pred[sw]
	return p, ok
}

func (s stubClock) TicksToViolation(sw string, slackTicks, fromTick int64) int64 {
	return s.ttv
}

func TestForecastWarnsBeforeLateApply(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(reg)
	// R1's clock is forecast to be 7.5 ticks off at its apply tick but
	// only has 5 ticks of slack: WARN with zero applies observed.
	e.SetClock(stubClock{pred: map[string]int64{"R1": 7500}, ttv: 42})
	e.SetPlan(Plan{Kind: "timed", Valid: true, StartTick: 100, Switches: []PlanSwitch{
		{Switch: "R1", SlackTicks: 5, ApplyTick: 400},
		{Switch: "R2", SlackTicks: 5, ApplyTick: 400}, // no estimate: no forecast
	}})
	v := e.Verdict()
	if v.Level != "WARN" {
		t.Fatalf("forecast level = %s: %v", v.Level, v.Reasons)
	}
	sh := v.Switches[0]
	if !sh.Forecast || sh.PredictedSkewMilliTicks != 7500 || sh.PredictedMarginMilliTicks != -2500 || sh.TTVTicks != 42 {
		t.Fatalf("forecast fields = %+v", sh)
	}
	if sh.Applies != 0 || sh.WorstSkewTicks != 0 {
		t.Fatalf("forecast must precede any observed apply: %+v", sh)
	}
	if v.Switches[1].Forecast {
		t.Fatalf("R2 has no estimate, forecast = %+v", v.Switches[1])
	}
	if v.PredictedWorstMarginMilliTicks != -2500 {
		t.Fatalf("predicted worst margin = %d, want -2500", v.PredictedWorstMarginMilliTicks)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "chronus_health_predicted_worst_margin_ticks -3\n") {
		t.Errorf("predicted gauge missing (-2500 mticks rounds to -3):\n%s", b.String())
	}

	// A healthy forecast stays OK and still reports the margin.
	e2 := New(nil)
	e2.SetClock(stubClock{pred: map[string]int64{"R1": 2000}, ttv: -1})
	e2.SetPlan(Plan{Kind: "timed", Valid: true, StartTick: 100, Switches: []PlanSwitch{
		{Switch: "R1", SlackTicks: 5, ApplyTick: 400},
	}})
	v2 := e2.Verdict()
	if v2.Level != "OK" {
		t.Fatalf("healthy forecast level = %s: %v", v2.Level, v2.Reasons)
	}
	if v2.PredictedWorstMarginMilliTicks != 3000 || v2.Switches[0].TTVTicks != -1 {
		t.Fatalf("healthy forecast = %+v", v2.Switches[0])
	}
}

func TestRoundsPlanWarnsAndDisconnectCrits(t *testing.T) {
	e := New(nil) // nil registry: engine still works
	e.SetPlan(Plan{Kind: "rounds", Valid: true})
	v := e.Verdict()
	if v.Level != "WARN" {
		t.Fatalf("rounds level = %s: %v", v.Level, v.Reasons)
	}
	e.Observe([]obs.Event{{Seq: 9, Name: "ctl.disconnect"}})
	v = e.Verdict()
	if v.Level != "CRIT" || v.Disconnects != 1 {
		t.Fatalf("disconnect level = %s, disconnects = %d", v.Level, v.Disconnects)
	}
	// A new plan clears the observations.
	e.SetPlan(Plan{Kind: "timed", Valid: true})
	if v := e.Verdict(); v.Level != "OK" {
		t.Fatalf("replan level = %s: %v", v.Level, v.Reasons)
	}
	if e.Cursor() != 9 {
		t.Fatalf("cursor reset by SetPlan: %d", e.Cursor())
	}
}

func TestNilEngine(t *testing.T) {
	var e *Engine
	e.SetPlan(Plan{})
	e.Observe(nil)
	if c := e.Cursor(); c != 0 {
		t.Fatalf("nil cursor = %d", c)
	}
	if v := e.Verdict(); v.Level != "OK" {
		t.Fatalf("nil verdict = %s", v.Level)
	}
}

// fakeQueue is a static QueueSource for the backpressure-rule tests.
type fakeQueue struct{ qs QueueStats }

func (f fakeQueue) QueueHealth() QueueStats { return f.qs }

func queueReasons(t *testing.T, qs QueueStats) (Verdict, string) {
	t.Helper()
	e := New(obs.NewRegistry())
	e.SetQueue(fakeQueue{qs})
	v := e.Verdict()
	return v, strings.Join(v.Reasons, "; ")
}

func TestQueueDepthWarns(t *testing.T) {
	// Below the threshold: queue stats attach, but the verdict stays OK.
	v, joined := queueReasons(t, QueueStats{Depth: 10, Cap: 100})
	if v.Level != "OK" || v.Queue == nil || v.Queue.Depth != 10 {
		t.Fatalf("shallow queue: level=%s queue=%+v (%s)", v.Level, v.Queue, joined)
	}
	// At 80% of capacity the backpressure rule fires even with no plan.
	v, joined = queueReasons(t, QueueStats{Depth: 80, Cap: 100})
	if v.Level != "WARN" || !strings.Contains(joined, "80% of capacity") {
		t.Fatalf("saturating queue: level=%s reasons=%s", v.Level, joined)
	}
}

func TestSustainedSaturationWarns(t *testing.T) {
	v, joined := queueReasons(t, QueueStats{Depth: 1, Cap: 100, SaturationStreak: SaturationStreakWarn - 1})
	if v.Level != "OK" {
		t.Fatalf("short streak: level=%s reasons=%s", v.Level, joined)
	}
	v, joined = queueReasons(t, QueueStats{Depth: 1, Cap: 100, SaturationStreak: SaturationStreakWarn})
	if v.Level != "WARN" || !strings.Contains(joined, "sustained admission saturation") {
		t.Fatalf("sustained streak: level=%s reasons=%s", v.Level, joined)
	}
}

func TestOldestWaitWarns(t *testing.T) {
	v, joined := queueReasons(t, QueueStats{Depth: 1, Cap: 100, OldestWaitTicks: QueueWaitWarnTicks + 1})
	if v.Level != "WARN" || !strings.Contains(joined, "oldest queued update") {
		t.Fatalf("stale queue head: level=%s reasons=%s", v.Level, joined)
	}
}

func TestTenantPreemptionSurfaces(t *testing.T) {
	// Preemption is informational — surfaced per tenant without
	// degrading the verdict level.
	v, joined := queueReasons(t, QueueStats{Depth: 1, Cap: 100, Tenants: []TenantQueue{
		{Tenant: "bulk", Submitted: 9, Preempted: 2},
		{Tenant: "urgent", Submitted: 3},
	}})
	if v.Level != "OK" {
		t.Fatalf("preemption degraded the verdict: level=%s reasons=%s", v.Level, joined)
	}
	if !strings.Contains(joined, "tenant bulk: 2 update(s) preempted") {
		t.Fatalf("missing preemption reason: %s", joined)
	}
	if strings.Contains(joined, "tenant urgent") {
		t.Fatalf("unpreempted tenant surfaced: %s", joined)
	}
}

type fakeDrift struct{ ds DriftStats }

func (f fakeDrift) DriftHealth() DriftStats { return f.ds }

func driftReasons(t *testing.T, ds DriftStats) (Verdict, string) {
	t.Helper()
	e := New(obs.NewRegistry())
	e.SetDrift(fakeDrift{ds})
	v := e.Verdict()
	return v, strings.Join(v.Reasons, "; ")
}

func TestDriftStrandedIsCrit(t *testing.T) {
	// Converging within slack: stats attach, verdict stays OK.
	v, joined := driftReasons(t, DriftStats{Tracked: 1, Converging: 1, Updates: []DriftUpdate{
		{Update: "1/1", Status: "converging", AgeTicks: 0, SlackTicks: 20},
	}})
	if v.Level != "OK" || v.Drift == nil || v.Drift.Converging != 1 {
		t.Fatalf("converging: level=%s drift=%+v (%s)", v.Level, v.Drift, joined)
	}

	// A stranded update is CRIT even with no plan armed: the drift rules
	// judge dead runs, which by definition have no live plan.
	v, joined = driftReasons(t, DriftStats{Tracked: 1, Stranded: 1, Updates: []DriftUpdate{
		{Update: "1/1", Status: "stranded", AgeTicks: 300, SlackTicks: 20},
	}})
	if v.Level != "CRIT" || !strings.Contains(joined, "stranded mid-schedule") {
		t.Fatalf("stranded: level=%s reasons=%s", v.Level, joined)
	}
}

func TestDriftAgePastSlackWarns(t *testing.T) {
	// Age within the schedule's slack: no rule fires.
	v, joined := driftReasons(t, DriftStats{Tracked: 1, Converging: 1, Updates: []DriftUpdate{
		{Update: "1/2", Status: "converging", AgeTicks: 19, SlackTicks: 20},
	}})
	if v.Level != "OK" {
		t.Fatalf("within slack: level=%s reasons=%s", v.Level, joined)
	}
	// Past the slack: WARN naming the update.
	v, joined = driftReasons(t, DriftStats{Tracked: 1, Diverged: 1, Updates: []DriftUpdate{
		{Update: "1/2", Status: "diverged", AgeTicks: 21, SlackTicks: 20},
	}})
	if v.Level != "WARN" || !strings.Contains(joined, "update 1/2 drifting 21 ticks past its 20-tick slack") {
		t.Fatalf("past slack: level=%s reasons=%s", v.Level, joined)
	}
}
