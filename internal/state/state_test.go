package state

import (
	"bytes"
	"testing"

	"github.com/chronus-sdn/chronus/internal/journal"
	"github.com/chronus-sdn/chronus/internal/obs"
)

func ev(seq uint64, vt int64, name string, attrs ...obs.Attr) obs.Event {
	return obs.Event{Seq: seq, VT: vt, Name: name, Attrs: attrs}
}

// intentEv builds a state.intent event the way the daemon emits it.
func intentEv(seq uint64, vt int64, id uint64, kind string, sws []IntentSwitch) obs.Event {
	return ev(seq, vt, "state.intent",
		obs.A("id", id), obs.A("tenant", "default"), obs.A("flow", "agg"),
		obs.A("key", "agg/0"), obs.A("kind", kind), obs.A("method", "chronus"),
		obs.A("slack", int64(10)), obs.A("switches", EncodeIntentSwitches(sws)))
}

func applyEv(seq uint64, vt int64, sw, next string) obs.Event {
	return ev(seq, vt, "sw.apply",
		obs.A("switch", sw), obs.A("skew", int64(0)), obs.A("at", vt),
		obs.A("key", "agg/0"), obs.A("cmd", "mod"), obs.A("next", next))
}

func timedFlowmodEv(seq uint64, vt, at int64, sw, next string) obs.Event {
	return ev(seq, vt, "sw.flowmod",
		obs.A("switch", sw), obs.A("kind", "timed"), obs.A("at", at),
		obs.A("key", "agg/0"), obs.A("cmd", "mod"), obs.A("next", next))
}

// scheduleEvents is a canonical two-switch timed update: intent at tick
// 10, FlowMods received at 12/13, applies due at 100 (R2) and 200 (R3).
func scheduleEvents() []obs.Event {
	return []obs.Event{
		intentEv(1, 10, 1, "execute", []IntentSwitch{
			{Switch: "R2", Next: "R5", At: 100},
			{Switch: "R3", Next: "R6", At: 200},
		}),
		timedFlowmodEv(2, 12, 100, "R2", "R5"),
		timedFlowmodEv(3, 13, 200, "R3", "R6"),
	}
}

// TestStoreDeterministicFold: the store is a pure function of the fed
// events — Observe (live) and Prefeed (replay) over the same sequence
// must produce byte-identical snapshot and drift bodies.
func TestStoreDeterministicFold(t *testing.T) {
	events := append(scheduleEvents(),
		applyEv(4, 100, "R2", "R5"),
		ev(5, 110, "emu.rate", obs.A("link", "R1>R2"), obs.A("key", "agg/0"),
			obs.A("rate", int64(300)), obs.A("total", int64(300)),
			obs.A("cap", int64(500)), obs.A("delay", int64(2))),
		applyEv(6, 200, "R3", "R6"),
	)

	live := New(Options{})
	live.Observe(events)
	replayed := New(Options{})
	replayed.Prefeed(events)

	for _, body := range []struct {
		name string
		a, b any
	}{
		{"state", live.StateBody(-1), replayed.StateBody(-1)},
		{"state?at=150", live.StateBody(150), replayed.StateBody(150)},
		{"drift", live.DriftBody(), replayed.DriftBody()},
	} {
		ab, err := Encode(body.a)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := Encode(body.b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab, bb) {
			t.Errorf("%s: Observe and Prefeed diverge:\nlive:\n%s\nreplay:\n%s", body.name, ab, bb)
		}
	}
	if live.Cursor() != 6 {
		t.Fatalf("Observe cursor = %d, want 6", live.Cursor())
	}
	if replayed.Cursor() != 0 {
		t.Fatalf("Prefeed moved the cursor to %d", replayed.Cursor())
	}
}

// TestDriftLifecycle walks one update converging → converged, and a
// clobbered aftermath → diverged.
func TestDriftLifecycle(t *testing.T) {
	s := New(Options{})
	s.Observe(scheduleEvents())

	rep := s.DriftBody()
	if rep.Tracked != 1 || len(rep.Updates) != 1 {
		t.Fatalf("tracked = %+v", rep)
	}
	if got := rep.Updates[0].Status; got != "converging" {
		t.Fatalf("before applies: status = %q, want converging", got)
	}
	if rep.Counts["converging"] != 1 {
		t.Fatalf("counts = %v", rep.Counts)
	}

	// First apply lands: still converging (R3 pends).
	s.Observe([]obs.Event{applyEv(4, 100, "R2", "R5")})
	rep = s.DriftBody()
	u := rep.Updates[0]
	if u.Status != "converging" {
		t.Fatalf("after one apply: status = %q, want converging", u.Status)
	}
	states := map[string]string{}
	for _, sw := range u.Switches {
		states[sw.Switch] = sw.State
	}
	if states["R2"] != "applied" || states["R3"] != "pending" {
		t.Fatalf("switch states = %v", states)
	}

	// Second apply: converged, zero drift age.
	s.Observe([]obs.Event{applyEv(5, 200, "R3", "R6")})
	u = s.DriftBody().Updates[0]
	if u.Status != "converged" || u.DriftAgeTicks != 0 {
		t.Fatalf("after both applies: %+v", u)
	}

	// A later change overwrites R2's rule: clobbered → diverged.
	s.Observe([]obs.Event{applyEv(6, 250, "R2", "R9")})
	u = s.DriftBody().Updates[0]
	if u.Status != "diverged" {
		t.Fatalf("after clobber: status = %q, want diverged", u.Status)
	}
	for _, sw := range u.Switches {
		if sw.Switch == "R2" && (sw.State != "clobbered" || sw.ObservedNext != "R9") {
			t.Fatalf("R2 evidence = %+v", sw)
		}
	}
}

// TestRunBoundaryStrandsPending: a sequence regression (new daemon run
// on the same journal) kills the dead run's pending FlowMods, turning a
// half-executed schedule into a stranded verdict with applied+missing
// evidence.
func TestRunBoundaryStrandsPending(t *testing.T) {
	s := New(Options{})
	s.Prefeed(append(scheduleEvents(), applyEv(4, 100, "R2", "R5")))
	// The daemon dies before R3's tick-200 apply; the restart's stream
	// starts over at seq 1.
	s.BeginRun()
	s.Observe([]obs.Event{ev(1, 5, "ctl.send", obs.A("switch", "R1"))})

	rep := s.DriftBody()
	if rep.Run != 2 {
		t.Fatalf("run = %d, want 2", rep.Run)
	}
	if len(rep.Updates) != 1 {
		t.Fatalf("updates = %+v", rep.Updates)
	}
	u := rep.Updates[0]
	if u.Status != "stranded" || u.Run != 1 {
		t.Fatalf("dead-run update = %+v", u)
	}
	states := map[string]string{}
	for _, sw := range u.Switches {
		states[sw.Switch] = sw.State
	}
	if states["R2"] != "applied" || states["R3"] != "missing" {
		t.Fatalf("switch states = %v, want R2 applied, R3 missing", states)
	}
	// Dead-run stranding ages from the moment the run died: cum now is
	// runEnd(1)=100 plus the new run's lastTick 5.
	if u.DriftAgeTicks != 5 {
		t.Fatalf("drift age = %d, want 5", u.DriftAgeTicks)
	}
	if rep.Counts["stranded"] != 1 {
		t.Fatalf("counts = %v", rep.Counts)
	}

	// The restart's own state snapshot no longer lists the dead run's
	// update overlay (it belongs to run 1), but drift keeps it.
	snap := s.StateBody(-1)
	if len(snap.Updates) != 0 {
		t.Fatalf("snapshot leaked dead-run overlays: %+v", snap.Updates)
	}
}

// TestPlanOnlyIntentIsPlanned: kind != "execute" never expects applies.
func TestPlanOnlyIntentIsPlanned(t *testing.T) {
	s := New(Options{})
	s.Observe([]obs.Event{intentEv(1, 10, 7, "plan", []IntentSwitch{{Switch: "R2", Next: "R5", At: 100}})})
	u := s.DriftBody().Updates[0]
	if u.Status != "planned" || u.DriftAgeTicks != 0 {
		t.Fatalf("plan-only update = %+v", u)
	}
}

// TestTimeTravelPending: a past-tick snapshot reconstructs "received
// but not yet applied" from the rule history's receive stamps, even
// after the apply has long landed.
func TestTimeTravelPending(t *testing.T) {
	s := New(Options{})
	s.Observe(append(scheduleEvents(),
		applyEv(4, 100, "R2", "R5"),
		applyEv(5, 200, "R3", "R6"),
	))

	now := s.StateBody(-1)
	if now.TimeTravel {
		t.Fatalf("live snapshot marked time_travel: %+v", now)
	}
	for _, sw := range now.Switches {
		if len(sw.Pending) != 0 {
			t.Fatalf("live snapshot still pending: %+v", sw)
		}
	}

	past := s.StateBody(150)
	if !past.TimeTravel || past.At != 150 || past.Now != 200 {
		t.Fatalf("snapshot header = %+v", past)
	}
	var r2Applied, r3Pending bool
	for _, sw := range past.Switches {
		switch sw.Switch {
		case "R2":
			for _, r := range sw.Rules {
				if r.Key == "agg/0" && r.Next == "R5" && r.Since == 100 {
					r2Applied = true
				}
			}
		case "R3":
			for _, p := range sw.Pending {
				if p.Key == "agg/0" && p.At == 200 && p.Next == "R6" && p.Received == 13 {
					r3Pending = true
				}
			}
		}
	}
	if !r2Applied || !r3Pending {
		t.Fatalf("at tick 150: r2Applied=%v r3Pending=%v: %+v", r2Applied, r3Pending, past.Switches)
	}
	// The overlay mirrors it: update still converging at tick 150 with
	// R3 outstanding.
	if len(past.Updates) != 1 || past.Updates[0].Status != "converging" {
		t.Fatalf("overlay at 150 = %+v", past.Updates)
	}
	if got := past.Updates[0].PendingSwitches; len(got) != 1 || got[0] != "R3" {
		t.Fatalf("pending switches = %v", got)
	}
}

func rateEv(seq uint64, vt, total int64) obs.Event {
	return ev(seq, vt, "emu.rate", obs.A("link", "R1>R2"), obs.A("key", "agg/0"),
		obs.A("rate", total), obs.A("total", total),
		obs.A("cap", int64(500)), obs.A("delay", int64(2)))
}

// TestLinkTimelineRingEviction: a full ring evicts oldest-first; with
// no journal the gap is reported, never papered over.
func TestLinkTimelineRingEviction(t *testing.T) {
	s := New(Options{RingCap: 4})
	var events []obs.Event
	for i := 0; i < 10; i++ {
		events = append(events, rateEv(uint64(i+1), int64(10*(i+1)), int64(100+i)))
	}
	s.Observe(events)

	tl, ok := s.LinkTimeline("R1>R2", 0)
	if !ok {
		t.Fatal("link unknown")
	}
	if len(tl.Points) != 4 || tl.Points[0].At != 70 || tl.Points[3].At != 100 {
		t.Fatalf("ring points = %+v", tl.Points)
	}
	if tl.EvictedPoints != 6 || tl.Source != "ring" {
		t.Fatalf("timeline = %+v", tl)
	}

	// A window the ring still covers reports no eviction.
	tl, _ = s.LinkTimeline("R1>R2", 70)
	if tl.EvictedPoints != 0 || len(tl.Points) != 4 {
		t.Fatalf("covered window = %+v", tl)
	}

	if _, ok := s.LinkTimeline("R9>R10", 0); ok {
		t.Fatal("unknown link reported ok")
	}
}

// TestLinkTimelineJournalBackfill: when a journal directory backs the
// store, timeline reads past the ring replay the evicted points.
func TestLinkTimelineJournalBackfill(t *testing.T) {
	dir := t.TempDir()
	jw, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var events []obs.Event
	for i := 0; i < 10; i++ {
		events = append(events, rateEv(uint64(i+1), int64(10*(i+1)), int64(100+i)))
	}
	for _, e := range events {
		jw.Record(e)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	s := New(Options{RingCap: 4, JournalDir: dir})
	s.Observe(events)
	tl, ok := s.LinkTimeline("R1>R2", 0)
	if !ok {
		t.Fatal("link unknown")
	}
	if tl.Source != "ring+journal" {
		t.Fatalf("source = %q, want ring+journal", tl.Source)
	}
	if len(tl.Points) != 10 {
		t.Fatalf("backfilled points = %+v", tl.Points)
	}
	for i, p := range tl.Points {
		if p.At != int64(10*(i+1)) || p.Total != int64(100+i) {
			t.Fatalf("point %d = %+v", i, p)
		}
	}
}

// TestFromJournalMatchesPrefeed: the offline constructor is the same
// fold as a manual Prefeed over ReadAll.
func TestFromJournalMatchesPrefeed(t *testing.T) {
	dir := t.TempDir()
	jw, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	events := append(scheduleEvents(), applyEv(4, 100, "R2", "R5"))
	for _, e := range events {
		jw.Record(e)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	fromJ, stats, err := FromJournal(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != len(events) {
		t.Fatalf("stats.Events = %d, want %d", stats.Events, len(events))
	}
	manual := New(Options{JournalDir: dir})
	manual.Prefeed(events)

	a, _ := Encode(fromJ.DriftBody())
	b, _ := Encode(manual.DriftBody())
	if !bytes.Equal(a, b) {
		t.Fatalf("FromJournal drift diverges from Prefeed:\n%s\nvs\n%s", a, b)
	}
}

// TestEncodeIntentSwitchesRoundTrip: the emitters' wire format parses
// back into the same sorted promises.
func TestEncodeIntentSwitchesRoundTrip(t *testing.T) {
	in := []IntentSwitch{
		{Switch: "R7", Next: "R8", At: 300},
		{Switch: "R2", Next: "R5", At: 100},
		{Switch: "R3", Next: "host", At: 200},
	}
	enc := EncodeIntentSwitches(in)
	if enc != "R2=R5@100;R3=host@200;R7=R8@300" {
		t.Fatalf("encoded = %q", enc)
	}
	s := New(Options{})
	s.Observe([]obs.Event{intentEv(1, 10, 3, "execute", in)})
	u := s.DriftBody().Updates[0]
	if len(u.Switches) != 3 {
		t.Fatalf("parsed switches = %+v", u.Switches)
	}
	want := []struct {
		sw, next string
		at       int64
	}{{"R2", "R5", 100}, {"R3", "host", 200}, {"R7", "R8", 300}}
	for i, w := range want {
		got := u.Switches[i]
		if got.Switch != w.sw || got.IntendedNext != w.next || got.IntendedAt != w.at {
			t.Fatalf("switch %d = %+v, want %+v", i, got, w)
		}
	}
}

// TestNoteSkippedSurfacesMissedEvents: ring gaps must show up in the
// snapshot rather than silently posing as ground truth.
func TestNoteSkippedSurfacesMissedEvents(t *testing.T) {
	s := New(Options{})
	s.Observe(scheduleEvents())
	s.NoteSkipped(7)
	if got := s.StateBody(-1).MissedEvents; got != 7 {
		t.Fatalf("missed_events = %d, want 7", got)
	}
}
