// Package state is the time-travel observed-state store: it folds the
// trace/journal event stream — the same events internal/audit consumes
// — into tick-indexed snapshots of what the data plane actually did:
// per-switch flow tables (full rule-change history, so any past tick of
// the current run can be reconstructed), per-link utilization
// timeseries (a bounded ring of recent points, backed by journal replay
// for ticks the ring has evicted), and per-update overlays recording
// which in-flight update owns which pending rule changes.
//
// Layered on top is drift detection (see drift.go): each admitted
// update's planner-intended end-state — recorded at plan time as a
// state.intent trace event — is diffed against the observed tables and
// classified as converging, stranded, diverged or converged.
//
// The store is a pure function of the fed events: feeding the same
// sequence (live from the tracer ring, or replayed from a journal
// directory) produces byte-identical snapshot and drift bodies, which
// is what lets `mutp -state-from <journal-dir>` reproduce a dead
// daemon's GET /state and GET /drift byte for byte.
//
// Daemon restarts are first-class: a journal directory shared across
// runs contains several event streams whose sequence numbers each start
// over, and the store detects those regressions (or an explicit
// BeginRun after a boot-time prefeed) as run boundaries. A boundary
// resets the live tables and — crucially — kills every pending timed
// rule change of the dead run, which is exactly what turns a
// half-executed schedule into a `stranded` drift verdict: the
// restart-recovery signal.
package state

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/chronus-sdn/chronus/internal/obs"
)

// DefaultRingCap bounds the per-link utilization ring: how many recent
// rate points each link retains in memory. Older points stay reachable
// through journal replay when a journal directory is configured.
const DefaultRingCap = 1024

// Options configures a Store.
type Options struct {
	// JournalDir, when set, is the durable journal backing the link
	// timelines: timeline reads older than the in-memory ring replay
	// the journal segments instead of reporting a gap.
	JournalDir string
	// RingCap bounds the per-link timeline ring (0 = DefaultRingCap).
	RingCap int
	// Obs, when set, receives the chronus_state_* gauges (tracked
	// updates, stranded count, worst drift age), refreshed on every
	// drift report.
	Obs *obs.Registry
}

// ruleChange is one observed change of a (switch, key) rule. next ""
// records a deletion. recv, for timed applies, is the tick the switch
// received the FlowMod — which is what lets a time-travel snapshot
// reconstruct "received but not yet applied" for past ticks.
type ruleChange struct {
	run  int
	tick int64
	next string
	recv int64
}

// pendingMod is a timed FlowMod a switch has accepted but not yet
// applied (current run only; a run boundary discards these — nothing
// pends across a daemon death).
type pendingMod struct {
	recv int64
	at   int64
	next string
	cmd  string
}

// sentMod records the controller-side send of a timed FlowMod (current
// run only) — evidence that an intent reached the wire even when the
// switch-side receipt was lost to a crash.
type sentMod struct {
	tick int64
	at   int64
	next string
}

// dropMark is one emu.drop event: a key that started blackholing.
type dropMark struct {
	run  int
	tick int64
	key  string
}

type swState struct {
	rules   map[string][]ruleChange
	pending map[string]pendingMod
	sent    map[string]sentMod
	drops   []dropMark
}

// point is one link-utilization sample: the link's total rate as of
// tick, in run.
type point struct {
	run   int
	tick  int64
	total int64
}

type linkState struct {
	cap     int64
	points  []point
	evicted int
	total   int64
	peak    int64
}

// updKey identifies an update across runs: admission ids restart at 1
// with every daemon run sharing a journal directory.
type updKey struct {
	run int
	id  uint64
}

// intentSwitch is one switch's slice of a recorded plan: the next hop
// it must end up forwarding to, and the tick it is scheduled to apply.
type intentSwitch struct {
	sw   string
	next string
	at   int64
}

// updIntent is one update's planner-intended end-state, parsed from a
// state.intent trace event.
type updIntent struct {
	run      int
	id       uint64
	tenant   string
	flow     string
	key      string
	kind     string // "execute" (data-plane) or "plan" (plan-only)
	method   string
	slack    int64
	planned  int64
	switches []intentSwitch
}

// Store folds trace events into the observed-state model. All methods
// are safe for concurrent use.
type Store struct {
	mu sync.Mutex
	o  Options

	cursor  uint64 // live tracer cursor (Observe feeds)
	lastSeq uint64 // last folded Seq, for run-boundary detection
	missed  uint64 // events evicted from the ring before they were folded

	run      int     // current run number (0 until the first event)
	runEnds  []int64 // final lastTick of each completed run
	lastTick int64   // newest tick of the current run

	switches map[string]*swState
	links    map[string]*linkState
	updates  map[updKey]*updIntent
	order    []updKey
}

// New builds a store and registers its gauge help strings.
func New(o Options) *Store {
	if o.RingCap <= 0 {
		o.RingCap = DefaultRingCap
	}
	if o.Obs != nil {
		o.Obs.Help("chronus_state_tracked_updates", "Updates with a recorded planner intent in the observed-state store.")
		o.Obs.Help("chronus_state_stranded_updates", "Updates stranded mid-schedule: half-executed with no further applies pending.")
		o.Obs.Help("chronus_state_drift_age_ticks", "Worst drift age across non-converged executed updates (ticks since the observed state should have matched the intent).")
	}
	return &Store{
		o:        o,
		switches: map[string]*swState{},
		links:    map[string]*linkState{},
		updates:  map[updKey]*updIntent{},
	}
}

// Cursor returns the trace sequence number up to which live events have
// been folded; feed Observe the tracer page after it.
func (s *Store) Cursor() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cursor
}

// LastTick returns the newest tick folded in the current run.
func (s *Store) LastTick() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastTick
}

// Observe folds a batch of live tracer events (as returned by
// Tracer.PageStats(store.Cursor(), 0)) and advances the cursor.
func (s *Store) Observe(events []obs.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range events {
		if e.Seq > s.cursor {
			s.cursor = e.Seq
		}
		s.ingest(e)
	}
}

// NoteSkipped accounts for events the tracer ring evicted before they
// could be folded. They are lost to the live store (the journal, when
// configured, still has them) and surface as missed_events in
// snapshots, so a gap can never silently masquerade as ground truth.
func (s *Store) NoteSkipped(n uint64) {
	if n == 0 {
		return
	}
	s.mu.Lock()
	s.missed += n
	s.mu.Unlock()
}

// Prefeed folds events replayed from a journal written by earlier runs
// (or, offline, by all runs) without touching the live cursor. Sequence
// regressions inside the replayed stream are detected as run
// boundaries, exactly as journal.Replay warns about them.
func (s *Store) Prefeed(events []obs.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range events {
		s.ingest(e)
	}
}

// BeginRun forces a run boundary: the caller (a daemon that just
// prefed the previous runs' journal) is about to feed a fresh run whose
// sequence numbers start over. A no-op before any event was folded.
func (s *Store) BeginRun() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.beginRunLocked()
}

// beginRunLocked closes the current run and resets the live surfaces:
// tables' pending/sent maps and link totals die with the run (rule
// histories and intents are retained — they are the drift evidence).
func (s *Store) beginRunLocked() {
	if s.run == 0 {
		return
	}
	s.runEnds = append(s.runEnds, s.lastTick)
	s.run++
	s.lastTick = 0
	s.lastSeq = 0
	for _, st := range s.switches {
		st.pending = map[string]pendingMod{}
		st.sent = map[string]sentMod{}
	}
	for _, l := range s.links {
		l.total = 0
		l.peak = 0
	}
}

// offset returns the cumulative tick offset of run r: the summed final
// ticks of every run before it. cum(r, t) = offset(r) + t gives a
// monotonic coordinate across restarts, which is what drift ages are
// measured in.
func (s *Store) offset(r int) int64 {
	var o int64
	for i := 0; i < r-1 && i < len(s.runEnds); i++ {
		o += s.runEnds[i]
	}
	return o
}

func (s *Store) sw(name string) *swState {
	st, ok := s.switches[name]
	if !ok {
		st = &swState{
			rules:   map[string][]ruleChange{},
			pending: map[string]pendingMod{},
			sent:    map[string]sentMod{},
		}
		s.switches[name] = st
	}
	return st
}

func (s *Store) link(name string) *linkState {
	l, ok := s.links[name]
	if !ok {
		l = &linkState{}
		s.links[name] = l
	}
	return l
}

// ingest folds one event. Callers hold s.mu.
func (s *Store) ingest(e obs.Event) {
	if e.Seq <= s.lastSeq {
		// Sequence numbers are strictly increasing within one daemon
		// run; a regression means a new run started writing to the same
		// journal directory.
		s.beginRunLocked()
	}
	s.lastSeq = e.Seq
	if s.run == 0 {
		s.run = 1
	}
	if e.VT > s.lastTick {
		s.lastTick = e.VT
	}
	switch e.Name {
	case "state.intent":
		s.ingestIntent(e)
	case "sw.flowmod":
		st := s.sw(e.Attr("switch"))
		key := e.Attr("key")
		cmd := e.Attr("cmd")
		next := e.Attr("next")
		if e.Attr("kind") == "timed" {
			st.pending[key] = pendingMod{recv: e.VT, at: e.AttrInt("at"), next: next, cmd: cmd}
			return
		}
		s.applyRule(st, key, cmd, next, e.VT, 0)
	case "sw.apply":
		st := s.sw(e.Attr("switch"))
		key := e.Attr("key")
		recv := int64(0)
		if p, ok := st.pending[key]; ok {
			recv = p.recv
			delete(st.pending, key)
		}
		s.applyRule(st, key, e.Attr("cmd"), e.Attr("next"), e.VT, recv)
	case "ctl.flowmod":
		st := s.sw(e.Attr("switch"))
		st.sent[e.Attr("key")] = sentMod{tick: e.VT, at: e.AttrInt("at"), next: e.Attr("next")}
	case "emu.rate":
		l := s.link(e.Attr("link"))
		l.cap = e.AttrInt("cap")
		total := e.AttrInt("total")
		l.total = total
		if total > l.peak {
			l.peak = total
		}
		if n := len(l.points); n > 0 && l.points[n-1].run == s.run && l.points[n-1].tick == e.VT {
			l.points[n-1].total = total
			return
		}
		l.points = append(l.points, point{run: s.run, tick: e.VT, total: total})
		if len(l.points) > s.o.RingCap {
			drop := len(l.points) - s.o.RingCap
			l.points = append(l.points[:0], l.points[drop:]...)
			l.evicted += drop
		}
	case "emu.drop":
		st := s.sw(e.Attr("switch"))
		st.drops = append(st.drops, dropMark{run: s.run, tick: e.VT, key: e.Attr("key")})
	}
}

// applyRule appends one observed rule change to the history.
func (s *Store) applyRule(st *swState, key, cmd, next string, tick, recv int64) {
	if cmd == "del" {
		next = ""
	}
	st.rules[key] = append(st.rules[key], ruleChange{run: s.run, tick: tick, next: next, recv: recv})
}

// intentKeyString renders an update's cross-run identity ("run/id").
func intentKeyString(k updKey) string {
	return strconv.Itoa(k.run) + "/" + strconv.FormatUint(k.id, 10)
}

// ingestIntent parses a state.intent event: the planner-intended
// end-state recorded at plan time. The switches attribute packs the
// per-switch promises as "SW=NEXT@TICK;..." sorted by switch name.
func (s *Store) ingestIntent(e obs.Event) {
	id := e.AttrUint("id")
	if id == 0 {
		return
	}
	u := &updIntent{
		run:     s.run,
		id:      id,
		tenant:  e.Attr("tenant"),
		flow:    e.Attr("flow"),
		key:     e.Attr("key"),
		kind:    e.Attr("kind"),
		method:  e.Attr("method"),
		slack:   e.AttrInt("slack"),
		planned: e.VT,
	}
	if enc := e.Attr("switches"); enc != "" {
		for _, part := range strings.Split(enc, ";") {
			eq := strings.IndexByte(part, '=')
			at := strings.LastIndexByte(part, '@')
			if eq < 0 || at < eq {
				continue
			}
			tick, _ := strconv.ParseInt(part[at+1:], 10, 64)
			u.switches = append(u.switches, intentSwitch{
				sw:   part[:eq],
				next: part[eq+1 : at],
				at:   tick,
			})
		}
	}
	sort.Slice(u.switches, func(i, j int) bool { return u.switches[i].sw < u.switches[j].sw })
	k := updKey{run: s.run, id: id}
	if _, dup := s.updates[k]; !dup {
		s.order = append(s.order, k)
	}
	s.updates[k] = u
}

// EncodeIntentSwitches packs per-switch intents the way state.intent
// events carry them ("SW=NEXT@TICK;...", sorted by switch name) — the
// emitters (chronusd, internal/admit) and the parser above share this
// one format.
func EncodeIntentSwitches(sws []IntentSwitch) string {
	sorted := append([]IntentSwitch(nil), sws...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Switch < sorted[j].Switch })
	var b strings.Builder
	for i, sw := range sorted {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(sw.Switch)
		b.WriteByte('=')
		b.WriteString(sw.Next)
		b.WriteByte('@')
		b.WriteString(strconv.FormatInt(sw.At, 10))
	}
	return b.String()
}

// IntentSwitch is one switch's promise as emitters hand it to
// EncodeIntentSwitches.
type IntentSwitch struct {
	Switch string
	Next   string
	At     int64
}
