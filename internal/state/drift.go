package state

// Drift detection: diff each update's planner-intended end-state (the
// state.intent event recorded at plan time) against the observed rule
// histories and classify the gap.
//
// Per-switch states:
//
//   - applied   — a rule change matching the intended next hop landed at
//     or after the plan (and by the evaluation tick).
//   - pending   — the intended change is still in flight in the current
//     run: the switch holds the timed FlowMod, or its scheduled tick has
//     not arrived yet.
//   - missing   — no matching apply was observed and nothing pends: in a
//     dead run this is definitive (pending state died with the daemon).
//   - clobbered — the intended change applied but a later change
//     overwrote it.
//
// Update statuses roll up from the switches:
//
//   - planned    — plan-only admission (kind != "execute"); never
//     expected to touch the data plane.
//   - converged  — every switch applied and still holds the intent.
//   - converging — at least one switch still pending; the schedule is
//     in flight.
//   - stranded   — at least one switch missing with nothing pending:
//     the half-executed remainder will never arrive without operator
//     (or restart-recovery) action.
//   - diverged   — everything applied but some switch was clobbered
//     afterwards.

// DriftSwitch is one switch's evidence line in a drift report.
type DriftSwitch struct {
	Switch       string `json:"switch"`
	IntendedNext string `json:"intended_next"`
	IntendedAt   int64  `json:"intended_at"`
	State        string `json:"state"`
	AppliedAt    int64  `json:"applied_at,omitempty"`
	SentAt       int64  `json:"sent_at,omitempty"`
	ObservedNext string `json:"observed_next,omitempty"`
}

// DriftUpdate is one tracked update's drift verdict with per-switch
// evidence. DriftAgeTicks is measured on the cumulative cross-run tick
// axis: how long the observed state has lagged the intent.
type DriftUpdate struct {
	Run           int           `json:"run"`
	ID            uint64        `json:"id"`
	Tenant        string        `json:"tenant"`
	Flow          string        `json:"flow"`
	Key           string        `json:"key"`
	Kind          string        `json:"kind"`
	Method        string        `json:"method"`
	Status        string        `json:"status"`
	PlannedAt     int64         `json:"planned_at"`
	SlackTicks    int64         `json:"slack_ticks"`
	DriftAgeTicks int64         `json:"drift_age_ticks"`
	Switches      []DriftSwitch `json:"switches"`
}

// DriftReport is the GET /drift body.
type DriftReport struct {
	Run     int            `json:"run"`
	Now     int64          `json:"now"`
	Tracked int            `json:"tracked"`
	Counts  map[string]int `json:"counts"`
	Updates []DriftUpdate  `json:"updates"`
}

// DriftBody builds the drift report over every tracked update, across
// runs, and refreshes the chronus_state_* gauges.
func (s *Store) DriftBody() DriftReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := DriftReport{
		Run:     s.run,
		Now:     s.lastTick,
		Tracked: len(s.order),
		Counts:  map[string]int{"converged": 0, "converging": 0, "diverged": 0, "planned": 0, "stranded": 0},
		Updates: []DriftUpdate{},
	}
	cumNow := s.offset(s.run) + s.lastTick
	var stranded int
	var worstAge int64
	for _, k := range s.order {
		u := s.updates[k]
		asOf := s.lastTick
		deadRun := u.run != s.run
		if deadRun {
			asOf = s.runEnd(u.run)
		}
		status, sws := s.classify(u, asOf)
		age := s.driftAge(u, status, deadRun, cumNow)
		rep.Counts[status]++
		if status == "stranded" {
			stranded++
		}
		if status != "converged" && status != "planned" && u.kind == "execute" && age > worstAge {
			worstAge = age
		}
		rep.Updates = append(rep.Updates, DriftUpdate{
			Run: u.run, ID: u.id, Tenant: u.tenant, Flow: u.flow, Key: u.key,
			Kind: u.kind, Method: u.method, Status: status, PlannedAt: u.planned,
			SlackTicks: u.slack, DriftAgeTicks: age, Switches: sws,
		})
	}
	if s.o.Obs != nil {
		s.o.Obs.Gauge("chronus_state_tracked_updates").Set(int64(len(s.order)))
		s.o.Obs.Gauge("chronus_state_stranded_updates").Set(int64(stranded))
		s.o.Obs.Gauge("chronus_state_drift_age_ticks").Set(worstAge)
	}
	return rep
}

// runEnd returns the final observed tick of a completed run.
func (s *Store) runEnd(run int) int64 {
	if run-1 < len(s.runEnds) {
		return s.runEnds[run-1]
	}
	return s.lastTick
}

// driftAge measures, on the cumulative tick axis, how long the update
// has been past the point where it should have converged. Converged and
// plan-only updates have no drift. A stranded update in a dead run ages
// from the moment its run died (its schedule can never progress again);
// everything else ages from its last intended apply tick.
func (s *Store) driftAge(u *updIntent, status string, deadRun bool, cumNow int64) int64 {
	if status == "converged" || status == "planned" {
		return 0
	}
	if status == "stranded" && deadRun {
		return cumNow - (s.offset(u.run) + s.runEnd(u.run))
	}
	var maxAt int64
	for _, sw := range u.switches {
		if sw.at > maxAt {
			maxAt = sw.at
		}
	}
	if maxAt == 0 {
		maxAt = u.planned
	}
	if age := cumNow - (s.offset(u.run) + maxAt); age > 0 {
		return age
	}
	return 0
}

// classify evaluates one update against the observed tables as of tick
// asOf (expressed in the update's own run's coordinates). Callers hold
// s.mu.
func (s *Store) classify(u *updIntent, asOf int64) (string, []DriftSwitch) {
	sws := make([]DriftSwitch, 0, len(u.switches))
	var applied, pending, missing, clobbered int
	for _, in := range u.switches {
		d := DriftSwitch{Switch: in.sw, IntendedNext: in.next, IntendedAt: in.at}
		st := s.switches[in.sw]
		if st != nil {
			if u.run == s.run {
				if sm, ok := st.sent[u.key]; ok && sm.tick <= asOf {
					d.SentAt = sm.tick
				}
			}
			if cur, ok := ruleAsOf(st.rules[u.key], u.run, asOf); ok {
				d.ObservedNext = cur.next
			}
			for _, c := range st.rules[u.key] {
				if c.run == u.run && c.tick >= u.planned && c.tick <= asOf && c.next == in.next {
					d.State = "applied"
					d.AppliedAt = c.tick
					break
				}
			}
		}
		switch {
		case d.State == "applied" && d.ObservedNext != in.next:
			d.State = "clobbered"
			clobbered++
		case d.State == "applied":
			applied++
		case u.run == s.run && (in.at > asOf || holdsPending(st, u.key, asOf)):
			d.State = "pending"
			pending++
		default:
			d.State = "missing"
			missing++
		}
		sws = append(sws, d)
	}
	var status string
	switch {
	case u.kind != "execute":
		status = "planned"
	case applied == len(sws):
		status = "converged"
	case pending > 0:
		status = "converging"
	case missing > 0:
		status = "stranded"
	default:
		status = "diverged"
	}
	return status, sws
}

// holdsPending reports whether the switch held an unapplied timed
// FlowMod for the key at tick asOf.
func holdsPending(st *swState, key string, asOf int64) bool {
	if st == nil {
		return false
	}
	p, ok := st.pending[key]
	return ok && p.recv <= asOf
}
