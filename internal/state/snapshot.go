package state

import (
	"encoding/json"
	"sort"
)

// Encode renders a snapshot/drift/timeline body exactly the way the
// daemon's writeJSON does (two-space indent, trailing newline), so the
// offline `mutp -state-from` output is byte-identical to the live HTTP
// bodies for the same event stream.
func Encode(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// RuleSnap is one installed rule at the snapshot tick. Since is the
// tick of the change that installed the current next hop.
type RuleSnap struct {
	Key   string `json:"key"`
	Next  string `json:"next"`
	Since int64  `json:"since"`
}

// PendingSnap is a timed FlowMod a switch held but had not yet applied
// at the snapshot tick.
type PendingSnap struct {
	Key      string `json:"key"`
	At       int64  `json:"at"`
	Next     string `json:"next"`
	Received int64  `json:"received"`
}

// SwitchSnap is one switch's observed table at the snapshot tick.
type SwitchSnap struct {
	Switch  string        `json:"switch"`
	Rules   []RuleSnap    `json:"rules"`
	Pending []PendingSnap `json:"pending,omitempty"`
	Drops   int           `json:"drops,omitempty"`
}

// LinkSnap is one link's observed utilization at the snapshot tick.
// Rate is the instantaneous total rate of the newest sample at or
// before the tick (NOT the peak — GET /links reports peaks separately),
// Since is that sample's tick.
type LinkSnap struct {
	Link     string `json:"link"`
	Capacity int64  `json:"capacity"`
	Rate     int64  `json:"rate"`
	Since    int64  `json:"since"`
}

// UpdateOverlay maps an in-flight update onto the snapshot: its drift
// status as of the snapshot tick and the switches whose intended rule
// change had not yet been observed.
type UpdateOverlay struct {
	Run             int      `json:"run"`
	ID              uint64   `json:"id"`
	Tenant          string   `json:"tenant"`
	Flow            string   `json:"flow"`
	Key             string   `json:"key"`
	Kind            string   `json:"kind"`
	Method          string   `json:"method"`
	Status          string   `json:"status"`
	PlannedAt       int64    `json:"planned_at"`
	PendingSwitches []string `json:"pending_switches,omitempty"`
}

// StateSnapshot is the GET /state body: the observed data-plane state
// of the current run as of tick At. TimeTravel marks a reconstruction
// of a past tick (At < Now) rather than the live view.
type StateSnapshot struct {
	Run          int             `json:"run"`
	Now          int64           `json:"now"`
	At           int64           `json:"at"`
	TimeTravel   bool            `json:"time_travel"`
	MissedEvents uint64          `json:"missed_events,omitempty"`
	Switches     []SwitchSnap    `json:"switches"`
	Links        []LinkSnap      `json:"links"`
	Updates      []UpdateOverlay `json:"updates"`
}

// StateBody builds the snapshot of the current run as of tick at; a
// negative at means "now" (the newest folded tick).
func (s *Store) StateBody(at int64) StateSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := at
	if t < 0 {
		t = s.lastTick
	}
	snap := StateSnapshot{
		Run:          s.run,
		Now:          s.lastTick,
		At:           t,
		TimeTravel:   t < s.lastTick,
		MissedEvents: s.missed,
		Switches:     []SwitchSnap{},
		Links:        []LinkSnap{},
		Updates:      []UpdateOverlay{},
	}
	for _, name := range sortedKeys(s.switches) {
		st := s.switches[name]
		sw := SwitchSnap{Switch: name, Rules: []RuleSnap{}}
		for _, key := range sortedKeys(st.rules) {
			if c, ok := ruleAsOf(st.rules[key], s.run, t); ok && c.next != "" {
				sw.Rules = append(sw.Rules, RuleSnap{Key: key, Next: c.next, Since: c.tick})
			}
		}
		sw.Pending = pendingAsOf(st, s.run, t)
		for _, d := range st.drops {
			if d.run == s.run && d.tick <= t {
				sw.Drops++
			}
		}
		if len(sw.Rules) > 0 || len(sw.Pending) > 0 || sw.Drops > 0 {
			snap.Switches = append(snap.Switches, sw)
		}
	}
	for _, name := range sortedKeys(s.links) {
		l := s.links[name]
		for i := len(l.points) - 1; i >= 0; i-- {
			p := l.points[i]
			if p.run == s.run && p.tick <= t {
				snap.Links = append(snap.Links, LinkSnap{Link: name, Capacity: l.cap, Rate: p.total, Since: p.tick})
				break
			}
		}
	}
	for _, k := range s.order {
		u := s.updates[k]
		if u.run != s.run || u.planned > t {
			continue
		}
		status, sws := s.classify(u, t)
		ov := UpdateOverlay{
			Run: u.run, ID: u.id, Tenant: u.tenant, Flow: u.flow, Key: u.key,
			Kind: u.kind, Method: u.method, Status: status, PlannedAt: u.planned,
		}
		for _, d := range sws {
			if d.State != "applied" {
				ov.PendingSwitches = append(ov.PendingSwitches, d.Switch)
			}
		}
		snap.Updates = append(snap.Updates, ov)
	}
	return snap
}

// ruleAsOf returns the newest rule change of the given run at or before
// tick t.
func ruleAsOf(changes []ruleChange, run int, t int64) (ruleChange, bool) {
	for i := len(changes) - 1; i >= 0; i-- {
		c := changes[i]
		if c.run == run && c.tick <= t {
			return c, true
		}
	}
	return ruleChange{}, false
}

// pendingAsOf reconstructs the timed FlowMods a switch held unapplied
// at tick t: live pending entries received by then, plus already
// applied changes whose receive/apply window straddles t (that is what
// makes past-tick snapshots honest about in-flight state).
func pendingAsOf(st *swState, run int, t int64) []PendingSnap {
	var out []PendingSnap
	for key, p := range st.pending {
		if p.recv <= t {
			out = append(out, PendingSnap{Key: key, At: p.at, Next: p.next, Received: p.recv})
		}
	}
	for key, changes := range st.rules {
		for _, c := range changes {
			if c.run == run && c.recv > 0 && c.recv <= t && c.tick > t {
				out = append(out, PendingSnap{Key: key, At: c.tick, Next: c.next, Received: c.recv})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		return out[i].At < out[j].At
	})
	return out
}

// TimelinePoint is one utilization sample on a link timeline.
type TimelinePoint struct {
	At    int64 `json:"at"`
	Total int64 `json:"total"`
}

// Timeline is the GET /links/{from}/{to}/timeline body: the current
// run's utilization samples for one link from tick Since on. Source
// reports where the points came from: "ring" when the in-memory window
// covered the request, "ring+journal" when older points were replayed
// from the journal. EvictedPoints counts ring evictions that could not
// be backfilled (no journal configured).
type Timeline struct {
	Link          string          `json:"link"`
	Run           int             `json:"run"`
	Capacity      int64           `json:"capacity"`
	Since         int64           `json:"since"`
	Source        string          `json:"source"`
	Points        []TimelinePoint `json:"points"`
	EvictedPoints int             `json:"evicted_points,omitempty"`
}

// LinkTimeline builds the timeline for one link. ok is false when the
// store has never seen the link (the caller decides whether the name is
// valid topology-wise).
func (s *Store) LinkTimeline(link string, since int64) (Timeline, bool) {
	s.mu.Lock()
	l, known := s.links[link]
	tl := Timeline{Link: link, Run: s.run, Since: since, Source: "ring", Points: []TimelinePoint{}}
	if !known {
		s.mu.Unlock()
		return tl, false
	}
	tl.Capacity = l.cap
	var ringOldest int64 = -1
	for _, p := range l.points {
		if p.run != s.run {
			continue
		}
		if ringOldest < 0 {
			ringOldest = p.tick
		}
		if p.tick >= since {
			tl.Points = append(tl.Points, TimelinePoint{At: p.tick, Total: p.total})
		}
	}
	evicted := l.evicted
	dir := s.o.JournalDir
	s.mu.Unlock()

	if evicted > 0 && (ringOldest < 0 || since < ringOldest) {
		if dir == "" {
			tl.EvictedPoints = evicted
			return tl, true
		}
		// The ring no longer covers the requested window: replay the
		// journal for the final run's older samples and splice them in
		// front of the retained points.
		older := replayLinkPoints(dir, link, since, ringOldest)
		if len(older) > 0 {
			tl.Points = append(older, tl.Points...)
			tl.Source = "ring+journal"
		}
	}
	return tl, true
}

// sortedKeys returns a map's keys in ascending order — the snapshot
// bodies are golden-pinned, so every list must have one canonical
// order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
