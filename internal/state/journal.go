package state

import (
	"github.com/chronus-sdn/chronus/internal/journal"
	"github.com/chronus-sdn/chronus/internal/obs"
)

// FromJournal builds a store purely from a journal directory — the
// offline path behind `mutp -state-from`. The replay folds every
// recorded run; sequence regressions between runs become run
// boundaries, so the resulting run numbering (and therefore the
// snapshot and drift bodies) matches a live daemon that prefed the same
// directory at boot: N-1 regressions either way yield run N.
func FromJournal(dir string, o Options) (*Store, journal.ReadStats, error) {
	events, stats, err := journal.ReadAll(dir, 0)
	if err != nil {
		return nil, stats, err
	}
	o.JournalDir = dir
	s := New(o)
	s.Prefeed(events)
	return s, stats, nil
}

// replayLinkPoints recovers a link's utilization samples that the
// in-memory ring has evicted: it replays the journal, tracks run
// boundaries the same way the live fold does, and returns the FINAL
// run's emu.rate points for the link with since <= tick < before
// (before < 0 means no upper bound), last sample per tick. Replay
// errors degrade to "no backfill" — the ring data is still served.
func replayLinkPoints(dir, link string, since, before int64) []TimelinePoint {
	var pts []TimelinePoint
	var lastSeq uint64
	_, err := journal.Replay(dir, 0, func(e obs.Event) error {
		if e.Seq <= lastSeq {
			// Run boundary: only the final run's samples matter, so
			// start over.
			pts = pts[:0]
		}
		lastSeq = e.Seq
		if e.Name != "emu.rate" || e.Attr("link") != link {
			return nil
		}
		if e.VT < since || (before >= 0 && e.VT >= before) {
			return nil
		}
		if n := len(pts); n > 0 && pts[n-1].At == e.VT {
			pts[n-1].Total = e.AttrInt("total")
			return nil
		}
		pts = append(pts, TimelinePoint{At: e.VT, Total: e.AttrInt("total")})
		return nil
	})
	if err != nil {
		return nil
	}
	return pts
}
