package switchd

import (
	"github.com/chronus-sdn/chronus/internal/obs"
)

// agentMetrics bundles the agent-side instruments. All agents attached
// to one registry share the same counters (per-switch breakdown lives in
// the trace, not the registry, to keep cardinality bounded).
type agentMetrics struct {
	immediate *obs.Counter
	timed     *obs.Counter
	barriers  *obs.Counter
	statsReqs *obs.Counter
	fireSkew   *obs.Histogram
	skewEarly  *obs.Counter
	skewLate   *obs.Counter
	skewOnTime *obs.Counter
}

// RegisterMetrics pre-registers the switch-agent metric families on r so
// they appear in expositions before the first control message.
func RegisterMetrics(r *obs.Registry) {
	newAgentMetrics(r)
}

func newAgentMetrics(r *obs.Registry) agentMetrics {
	if r != nil {
		r.Help("chronus_switchd_flowmods_total", "FlowMods accepted by agents, by execution kind")
		r.Help("chronus_switchd_barriers_total", "barrier requests answered by agents")
		r.Help("chronus_switchd_stats_requests_total", "statistics requests answered by agents")
		r.Help("chronus_switchd_fire_skew_ticks", "absolute skew between a timed FlowMod's requested and actual apply tick")
		r.Help("chronus_switchd_fire_skew_sign_total", "timed fires by skew direction: early (local clock fast), late (slow or clamped), ontime")
	}
	return agentMetrics{
		immediate: r.Counter(`chronus_switchd_flowmods_total{kind="immediate"}`),
		timed:     r.Counter(`chronus_switchd_flowmods_total{kind="timed"}`),
		barriers:  r.Counter("chronus_switchd_barriers_total"),
		statsReqs: r.Counter("chronus_switchd_stats_requests_total"),
		// Adversary sweeps push skew to hundreds of ticks; keep the top
		// buckets wide enough that those fires don't all land in +Inf.
		fireSkew:   r.Histogram("chronus_switchd_fire_skew_ticks", []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}),
		skewEarly:  r.Counter(`chronus_switchd_fire_skew_sign_total{sign="early"}`),
		skewLate:   r.Counter(`chronus_switchd_fire_skew_sign_total{sign="late"}`),
		skewOnTime: r.Counter(`chronus_switchd_fire_skew_sign_total{sign="ontime"}`),
	}
}

// SetObs attaches telemetry sinks to the agent: registry counters for
// FlowMods, barriers, stats requests and scheduled-update fire skew, and
// trace events for each control action. Either argument may be nil.
// Call it before the agent handles traffic; the agent itself stays
// lock-free (counters are atomic, the tracer locks internally).
func (a *Agent) SetObs(r *obs.Registry, tr *obs.Tracer) {
	a.met = newAgentMetrics(r)
	a.trace = tr
}
