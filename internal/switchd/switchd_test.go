package switchd

import (
	"strings"
	"testing"

	"github.com/chronus-sdn/chronus/internal/emu"
	"github.com/chronus-sdn/chronus/internal/ofp"
	"github.com/chronus-sdn/chronus/internal/sim"
	"github.com/chronus-sdn/chronus/internal/timesync"
	"github.com/chronus-sdn/chronus/internal/topo"
)

func newAgent(t *testing.T, clock *timesync.Ensemble) (*Agent, *emu.Network, *sim.Kernel) {
	t.Helper()
	g, ids := topo.Line(3, 100, 5)
	k := sim.NewKernel()
	n := emu.New(g, k)
	return New(n, ids[1], clock), n, k
}

func TestHandshakeMessages(t *testing.T) {
	a, _, _ := newAgent(t, nil)
	if r := a.Handle(&ofp.Hello{XID: 1}); len(r) != 1 || r[0].Type() != ofp.TypeHello {
		t.Fatalf("hello reply = %+v", r)
	}
	r := a.Handle(&ofp.EchoRequest{XID: 2, Payload: "x"})
	if e, ok := r[0].(*ofp.EchoReply); !ok || e.Payload != "x" || e.XID != 2 {
		t.Fatalf("echo reply = %+v", r[0])
	}
	r = a.Handle(&ofp.FeaturesRequest{XID: 3})
	f, ok := r[0].(*ofp.FeaturesReply)
	if !ok || !f.TimedUpdates || f.Name != "v2" {
		t.Fatalf("features reply = %+v", r[0])
	}
	r = a.Handle(&ofp.BarrierRequest{XID: 4})
	if _, ok := r[0].(*ofp.BarrierReply); !ok {
		t.Fatalf("barrier reply = %+v", r[0])
	}
	// Unexpected message type yields an error reply.
	r = a.Handle(&ofp.BarrierReply{XID: 5})
	if e, ok := r[0].(*ofp.ErrorMsg); !ok || e.Code != ofp.ErrCodeBadRequest {
		t.Fatalf("reply = %+v", r[0])
	}
}

func TestImmediateFlowMod(t *testing.T) {
	a, n, k := newAgent(t, nil)
	g := n.G
	r := a.Handle(&ofp.FlowMod{
		XID: 1, Command: ofp.FlowAdd, Flow: "f", Tag: 0,
		Action: ofp.ActionOutput, NextHop: int32(g.Lookup("v3")),
	})
	if len(r) != 0 {
		t.Fatalf("flowmod replied %+v", r)
	}
	if n.Switch(g.Lookup("v2")).RuleCount() != 1 {
		t.Fatal("rule not installed")
	}
	// Delete with no action payload.
	if r := a.Handle(&ofp.FlowMod{XID: 2, Command: ofp.FlowDelete, Flow: "f"}); len(r) != 0 {
		t.Fatalf("delete replied %+v", r)
	}
	if n.Switch(g.Lookup("v2")).RuleCount() != 0 {
		t.Fatal("rule not deleted")
	}
	_ = k
}

func TestFlowModValidation(t *testing.T) {
	a, _, _ := newAgent(t, nil)
	r := a.Handle(&ofp.FlowMod{XID: 1, Command: ofp.FlowAdd, Flow: "f", Action: ofp.ActionOutput, NextHop: 99})
	e, ok := r[0].(*ofp.ErrorMsg)
	if !ok || e.Code != ofp.ErrCodeBadFlowMod || !strings.Contains(e.Message, "no port") {
		t.Fatalf("reply = %+v", r[0])
	}
	r = a.Handle(&ofp.FlowMod{XID: 2, Command: ofp.FlowAdd, Flow: "f", Action: ofp.ActionKind(77)})
	if _, ok := r[0].(*ofp.ErrorMsg); !ok {
		t.Fatalf("unknown action accepted: %+v", r[0])
	}
}

func TestTimedFlowModAppliesAtLocalTime(t *testing.T) {
	a, n, k := newAgent(t, nil)
	g := n.G
	k.At(0, func() {
		a.Handle(&ofp.FlowMod{
			XID: 1, Command: ofp.FlowAdd, Flow: "f",
			Action: ofp.ActionOutput, NextHop: int32(g.Lookup("v3")),
			ExecuteAt: 50,
		})
	})
	k.RunUntil(10)
	if n.Switch(g.Lookup("v2")).RuleCount() != 0 {
		t.Fatal("timed rule applied early")
	}
	if a.PendingTimed() != 1 {
		t.Fatalf("PendingTimed = %d, want 1", a.PendingTimed())
	}
	k.RunUntil(50)
	if n.Switch(g.Lookup("v2")).RuleCount() != 1 {
		t.Fatal("timed rule not applied at its instant")
	}
	if a.PendingTimed() != 0 {
		t.Fatalf("PendingTimed = %d, want 0", a.PendingTimed())
	}
}

func TestTimedFlowModWithClockOffset(t *testing.T) {
	g, ids := topo.Line(3, 100, 5)
	k := sim.NewKernel()
	n := emu.New(g, k)
	ens := timesync.New(timesync.Params{
		Seed:           1,
		SyncIntervalNs: 1_000_000_000_000, // one epoch over the test window
		SyncErrorNs:    10 * timesync.TickNs,
	}, g.Nodes())
	a := New(n, ids[1], ens)
	const sched = 100
	want := ens.ApplyTick(ids[1], sched)
	k.At(0, func() {
		a.Handle(&ofp.FlowMod{
			XID: 1, Command: ofp.FlowAdd, Flow: "f",
			Action: ofp.ActionOutput, NextHop: int32(ids[2]),
			ExecuteAt: sched,
		})
	})
	if want != sched {
		// The ensemble moved the instant; confirm the rule is absent just
		// before and present at the shifted tick.
		k.RunUntil(minTime(want, sched) - 1)
		if n.Switch(ids[1]).RuleCount() != 0 {
			t.Fatal("applied before both instants")
		}
	}
	k.RunUntil(maxTime(want, sched) + 1)
	if n.Switch(ids[1]).RuleCount() != 1 {
		t.Fatal("rule never applied")
	}
}

func minTime(a, b sim.Time) sim.Time {
	if a < b {
		return a
	}
	return b
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

func TestLateTimedFlowModAppliesNow(t *testing.T) {
	a, n, k := newAgent(t, nil)
	g := n.G
	k.At(100, func() {
		a.Handle(&ofp.FlowMod{
			XID: 1, Command: ofp.FlowAdd, Flow: "f",
			Action: ofp.ActionOutput, NextHop: int32(g.Lookup("v3")),
			ExecuteAt: 50, // already in the past
		})
	})
	k.RunUntil(101)
	if n.Switch(g.Lookup("v2")).RuleCount() != 1 {
		t.Fatal("late timed rule not applied immediately")
	}
}

func TestStatsReplies(t *testing.T) {
	a, n, k := newAgent(t, nil)
	g := n.G
	key := emu.FlowKey{Flow: "f", Tag: 0}
	k.At(0, func() {
		n.Switch(g.Lookup("v1")).InstallRule(key, emu.Action{NextHop: g.Lookup("v2")})
		n.Switch(g.Lookup("v2")).InstallRule(key, emu.Action{NextHop: g.Lookup("v3")})
		n.Switch(g.Lookup("v3")).InstallRule(key, emu.Action{ToHost: true})
		n.Inject(g.Lookup("v1"), key, 10)
	})
	k.RunUntil(100)
	r := a.Handle(&ofp.StatsRequest{XID: 1, Kind: ofp.StatsPorts})
	reply := r[0].(*ofp.StatsReply)
	if len(reply.Ports) != 1 || reply.Ports[0].PeerID != uint32(g.Lookup("v3")) {
		t.Fatalf("ports = %+v", reply.Ports)
	}
	if reply.Ports[0].Bytes == 0 {
		t.Fatal("port counter empty after traffic")
	}
	r = a.Handle(&ofp.StatsRequest{XID: 2, Kind: ofp.StatsFlows})
	reply = r[0].(*ofp.StatsReply)
	if len(reply.Flows) != 1 || reply.Flows[0].Flow != "f" || reply.Flows[0].Bytes == 0 {
		t.Fatalf("flows = %+v", reply.Flows)
	}
}
