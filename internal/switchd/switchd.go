// Package switchd implements the switch agent: the software running
// "on" each emulated switch. It speaks the ofp control protocol, applies
// FlowMods to its emu.Switch — immediately or, for timed FlowMods, at the
// instant its local timesync clock reaches the scheduled time — and answers
// barriers, feature queries and statistics requests.
//
// Handle must be invoked from within a simulation event (or via a
// controller.Harness, which serializes external callers into the event
// loop); the agent itself is free of locking, like the rest of the
// emulation.
package switchd

import (
	"fmt"

	"github.com/chronus-sdn/chronus/internal/emu"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/obs"
	"github.com/chronus-sdn/chronus/internal/ofp"
	"github.com/chronus-sdn/chronus/internal/sim"
	"github.com/chronus-sdn/chronus/internal/timesync"
)

// Agent is one switch's control agent.
type Agent struct {
	net   *emu.Network
	sw    *emu.Switch
	id    graph.NodeID
	clock *timesync.Ensemble // nil means a perfect clock

	// scheduled counts timed FlowMods accepted but not yet applied.
	scheduled int
	applied   int

	notify func(ofp.Msg)

	met   agentMetrics
	trace *obs.Tracer
}

// New builds the agent for switch id. clock may be nil for a perfect local
// clock.
func New(net *emu.Network, id graph.NodeID, clock *timesync.Ensemble) *Agent {
	sw := net.Switch(id)
	if sw == nil {
		panic(fmt.Sprintf("switchd: no switch %d", id))
	}
	a := &Agent{net: net, sw: sw, id: id, clock: clock}
	sw.SetMissHandler(func(key emu.FlowKey, reason emu.MissReason) {
		if a.notify == nil {
			return
		}
		r := ofp.ReasonNoMatch
		if reason == emu.MissTTLExpired {
			r = ofp.ReasonTTLExpired
		}
		a.notify(&ofp.PacketIn{
			SwitchID: uint32(a.id),
			Flow:     key.Flow,
			Tag:      uint16(key.Tag),
			Reason:   r,
		})
	})
	return a
}

// SetNotify installs the asynchronous switch-to-controller channel used for
// PacketIn notifications (nil disables them).
func (a *Agent) SetNotify(send func(ofp.Msg)) { a.notify = send }

// ID returns the switch's node ID.
func (a *Agent) ID() graph.NodeID { return a.id }

// PendingTimed returns how many timed FlowMods are scheduled but not yet
// applied.
func (a *Agent) PendingTimed() int { return a.scheduled - a.applied }

// Handle processes one control message and returns the replies to send.
// It must run inside a simulation event.
func (a *Agent) Handle(m ofp.Msg) []ofp.Msg {
	switch req := m.(type) {
	case *ofp.Hello:
		return []ofp.Msg{&ofp.Hello{XID: req.XID}}
	case *ofp.EchoRequest:
		return []ofp.Msg{&ofp.EchoReply{XID: req.XID, Payload: req.Payload}}
	case *ofp.FeaturesRequest:
		return []ofp.Msg{&ofp.FeaturesReply{
			XID:          req.XID,
			DatapathID:   uint64(a.id) + 1,
			Name:         a.sw.Name(),
			TimedUpdates: true,
		}}
	case *ofp.FlowMod:
		if err := a.flowMod(req); err != nil {
			return []ofp.Msg{&ofp.ErrorMsg{XID: req.XID, Code: ofp.ErrCodeBadFlowMod, Message: err.Error()}}
		}
		return nil
	case *ofp.BarrierRequest:
		// Timed FlowMods count as processed once scheduled: the barrier
		// confirms receipt and scheduling, per the Time4 model.
		a.met.barriers.Inc()
		if a.trace != nil {
			now := int64(a.net.K.Now())
			a.trace.Point(now, "sw.barrier", obs.A("switch", a.sw.Name()))
			// Parentless on purpose: the xid links it under the
			// controller's ctl.send span when the forest is built.
			a.trace.EmitSpan("sw.barrier", 0, now, now,
				obs.A("switch", a.sw.Name()), obs.A("xid", req.XID))
		}
		return []ofp.Msg{&ofp.BarrierReply{XID: req.XID}}
	case *ofp.StatsRequest:
		a.met.statsReqs.Inc()
		return []ofp.Msg{a.stats(req)}
	default:
		return []ofp.Msg{&ofp.ErrorMsg{XID: m.Xid(), Code: ofp.ErrCodeBadRequest, Message: fmt.Sprintf("unexpected %v", m.Type())}}
	}
}

func (a *Agent) flowMod(m *ofp.FlowMod) error {
	var action emu.Action
	if m.Command != ofp.FlowDelete {
		switch m.Action {
		case ofp.ActionToHost:
			action = emu.Action{ToHost: true}
		case ofp.ActionOutput:
			nh := graph.NodeID(m.NextHop)
			if _, ok := a.net.G.Link(a.id, nh); !ok {
				return fmt.Errorf("switch %s has no port toward node %d", a.sw.Name(), nh)
			}
			action = emu.Action{NextHop: nh}
		default:
			return fmt.Errorf("unknown action %d", m.Action)
		}
	}
	key := emu.FlowKey{Flow: m.Flow, Tag: emu.Tag(m.Tag)}

	// Rule-content attributes carried by sw.flowmod and sw.apply events:
	// enough for a trace consumer to rebuild the forwarding table without
	// access to the live switch (the audit package's state reconstruction).
	cmd := "mod"
	next := "-"
	switch m.Command {
	case ofp.FlowAdd:
		cmd = "add"
	case ofp.FlowDelete:
		cmd = "del"
	}
	if m.Command != ofp.FlowDelete {
		if action.ToHost {
			next = "host"
		} else {
			next = a.net.G.Name(action.NextHop)
		}
	}

	apply := func() {
		a.applied++
		switch m.Command {
		case ofp.FlowAdd, ofp.FlowModify:
			a.sw.InstallRule(key, action)
		case ofp.FlowDelete:
			a.sw.RemoveRule(key)
		}
	}
	if m.ExecuteAt == 0 {
		a.met.immediate.Inc()
		if a.trace != nil {
			now := int64(a.net.K.Now())
			a.trace.Point(now, "sw.flowmod",
				obs.A("switch", a.sw.Name()), obs.A("kind", "immediate"),
				obs.A("key", key.String()), obs.A("cmd", cmd), obs.A("next", next))
			a.trace.EmitSpan("sw.recv", 0, now, now,
				obs.A("switch", a.sw.Name()), obs.A("xid", m.XID),
				obs.A("kind", "immediate"), obs.A("key", key.String()))
		}
		a.scheduled++
		apply()
		return nil
	}
	requested := sim.Time(m.ExecuteAt)
	at := requested
	if a.clock != nil {
		at = a.clock.ApplyTick(a.id, at)
	}
	now := a.net.K.Now()
	if at < now {
		// The scheduled instant has already passed on the local clock
		// (e.g. control latency exceeded the lead time): apply now, late.
		at = now
	}
	a.met.timed.Inc()
	// The recv span covers the whole switch-side residency of a timed
	// FlowMod — arrival through scheduled application — and is left
	// parentless so the xid folds it under the controller's send span.
	recvSpan := a.trace.StartSpan(int64(now), "sw.recv",
		0, obs.A("switch", a.sw.Name()), obs.A("xid", m.XID),
		obs.A("kind", "timed"), obs.A("at", int64(requested)), obs.A("key", key.String()))
	if a.trace != nil {
		a.trace.Point(int64(now), "sw.flowmod",
			obs.A("switch", a.sw.Name()), obs.A("kind", "timed"), obs.A("at", int64(requested)),
			obs.A("key", key.String()), obs.A("cmd", cmd), obs.A("next", next))
	}
	a.scheduled++
	a.net.K.At(at, func() {
		// Fire skew is measured against the controller's requested tick, so
		// it folds in both the local clock offset and any lateness clamp.
		skew := int64(a.net.K.Now()) - int64(requested)
		abs := skew
		if abs < 0 {
			abs = -abs
		}
		a.met.fireSkew.Observe(float64(abs))
		switch {
		case skew < 0:
			a.met.skewEarly.Inc()
		case skew > 0:
			a.met.skewLate.Inc()
		default:
			a.met.skewOnTime.Inc()
		}
		if a.trace != nil {
			fire := int64(a.net.K.Now())
			a.trace.Point(fire, "sw.apply",
				obs.A("switch", a.sw.Name()), obs.A("skew", skew),
				obs.A("at", int64(requested)),
				obs.A("key", key.String()), obs.A("cmd", cmd), obs.A("next", next))
			a.trace.EmitSpan("sw.apply", recvSpan.SpanID(), fire, fire,
				obs.A("switch", a.sw.Name()), obs.A("xid", m.XID), obs.A("skew", skew))
			recvSpan.End(fire)
		}
		apply()
	})
	return nil
}

func (a *Agent) stats(req *ofp.StatsRequest) ofp.Msg {
	reply := &ofp.StatsReply{XID: req.XID, Kind: req.Kind}
	switch req.Kind {
	case ofp.StatsPorts:
		for _, l := range a.net.Links() {
			if l.From() != a.id {
				continue
			}
			reply.Ports = append(reply.Ports, ofp.PortStat{
				PeerID: uint32(l.To()),
				Bytes:  uint64(l.Bytes()),
			})
		}
	case ofp.StatsFlows:
		for _, r := range a.sw.DumpRules() {
			reply.Flows = append(reply.Flows, ofp.FlowStat{
				Flow:  r.Key.Flow,
				Tag:   uint16(r.Key.Tag),
				Bytes: uint64(r.Bytes),
			})
		}
	}
	return reply
}

// Serve reads messages from conn until EOF, executing each through do
// (which must serialize into the simulation loop) and writing the replies
// back. It is the TCP-transport entry point used by cmd/chronusd.
func Serve(conn *ofp.Conn, a *Agent, do func(func())) error {
	for {
		m, err := conn.Recv()
		if err != nil {
			return err
		}
		var replies []ofp.Msg
		do(func() { replies = a.Handle(m) })
		for _, r := range replies {
			if err := conn.Send(r); err != nil {
				return err
			}
		}
	}
}
