package audit

import (
	"fmt"
	"io"
	"strings"
)

// CongestionViolation is one reconstructed overload interval on a link:
// aggregate utilization exceeded capacity from Start until End (virtual
// ticks; End == -1 means the interval was still open when the trace
// ended). Keys lists every flow that contributed while it ran.
type CongestionViolation struct {
	Link  string   `json:"link"`
	Start int64    `json:"start"`
	End   int64    `json:"end"`
	Peak  int64    `json:"peak"`
	Cap   int64    `json:"cap"`
	Keys  []string `json:"keys,omitempty"`
}

// LoopViolation is one forwarding loop. Kind is "config-cycle" (the
// installed tables themselves cycled at Tick), "transient-loop" (an
// in-flight packet revisited a switch during the replay), or
// "ttl-expired" (the emulator saw a TTL expiry the replay could not
// attribute to a reconstructed cycle). For replayed loops Count is how
// many emissions looped and [FirstEmit, LastEmit] the emission ticks.
type LoopViolation struct {
	Kind      string `json:"kind"`
	Key       string `json:"key"`
	At        string `json:"at"`
	Tick      int64  `json:"tick"`
	Cycle     string `json:"cycle,omitempty"`
	Count     int    `json:"count,omitempty"`
	FirstEmit int64  `json:"first_emit,omitempty"`
	LastEmit  int64  `json:"last_emit,omitempty"`
}

// BlackholeViolation is a flow arriving at a switch holding no rule for
// it. Observed marks blackholes the emulator's own drop events confirm.
type BlackholeViolation struct {
	At       string `json:"at"`
	Key      string `json:"key"`
	Tick     int64  `json:"tick"`
	Count    int    `json:"count,omitempty"`
	Observed bool   `json:"observed"`
}

// ReplayStats summarizes the emission replay.
type ReplayStats struct {
	Emissions  int `json:"emissions"`
	Delivered  int `json:"delivered"`
	Looped     int `json:"looped"`
	Blackholed int `json:"blackholed"`
}

// SwitchLane is one switch's control-plane timeline, all in virtual
// ticks; -1 means the instant was not observed. Lead is sched - recv
// (how far ahead of its activation the FlowMod arrived) and Skew the
// activation error the switch itself reported.
type SwitchLane struct {
	Switch  string `json:"switch"`
	Planned int64  `json:"planned"`
	Sent    int64  `json:"sent"`
	Sched   int64  `json:"sched"`
	Recv    int64  `json:"recv"`
	Barrier int64  `json:"barrier"`
	Apply   int64  `json:"apply"`
	Skew    int64  `json:"skew"`
	Lead    int64  `json:"lead"`
}

// CriticalPath is the schedule critical-path summary: Gating is the
// switch whose activation completed last, Makespan the span from the
// earliest scheduled tick to the last activation (-1 if unobserved).
type CriticalPath struct {
	Switches []SwitchLane `json:"switches,omitempty"`
	Gating   string       `json:"gating,omitempty"`
	Makespan int64        `json:"makespan"`
}

// Report is the auditor's verdict over one trace.
type Report struct {
	Events        int    `json:"events"`
	MissingEvents uint64 `json:"missing_events"`

	Congestion []CongestionViolation `json:"congestion,omitempty"`
	Loops      []LoopViolation       `json:"loops,omitempty"`
	Blackholes []BlackholeViolation  `json:"blackholes,omitempty"`

	// EmuOverloads counts the emulator's own overload spans, and
	// DetectorsAgree whether they match the reconstruction exactly.
	EmuOverloads   int  `json:"emu_overloads"`
	DetectorsAgree bool `json:"detectors_agree"`

	Replay   ReplayStats  `json:"replay"`
	Critical CriticalPath `json:"critical"`
	Notes    []string     `json:"notes,omitempty"`
}

// Violations counts every invariant violation in the report.
func (r *Report) Violations() int {
	return len(r.Congestion) + len(r.Loops) + len(r.Blackholes)
}

// OK reports whether the trace audited clean.
func (r *Report) OK() bool { return r.Violations() == 0 }

func lane(v int64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

// Render writes the human-readable report. Output is a pure function of
// the report contents (and therefore of the fed events).
func (r *Report) Render(w io.Writer) {
	verdict := "PASS"
	if !r.OK() {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "audit: %s — %d violation(s) over %d event(s)\n", verdict, r.Violations(), r.Events)
	if r.MissingEvents > 0 {
		fmt.Fprintf(w, "trace: %d event(s) missing from the stream (ring overflow?)\n", r.MissingEvents)
	}

	if len(r.Congestion) > 0 {
		fmt.Fprintf(w, "congestion: %d interval(s)\n", len(r.Congestion))
		for _, c := range r.Congestion {
			end := lane(c.End)
			if c.End < 0 {
				end = "open"
			}
			fmt.Fprintf(w, "  link %s: ticks [%d, %s) peak %d over cap %d", c.Link, c.Start, end, c.Peak, c.Cap)
			if len(c.Keys) > 0 {
				fmt.Fprintf(w, " flows %s", strings.Join(c.Keys, ","))
			}
			fmt.Fprintln(w)
		}
	}
	if len(r.Loops) > 0 {
		fmt.Fprintf(w, "loops: %d\n", len(r.Loops))
		for _, l := range r.Loops {
			switch l.Kind {
			case "config-cycle":
				fmt.Fprintf(w, "  config-cycle flow %s at tick %d: %s\n", l.Key, l.Tick, l.Cycle)
			case "transient-loop":
				fmt.Fprintf(w, "  transient-loop flow %s via %s: first closed at tick %d, %d emission(s) over ticks [%d, %d]\n",
					l.Key, l.Cycle, l.Tick, l.Count, l.FirstEmit, l.LastEmit)
			default:
				fmt.Fprintf(w, "  %s flow %s at tick %d\n", l.Kind, l.Key, l.Tick)
			}
		}
	}
	if len(r.Blackholes) > 0 {
		fmt.Fprintf(w, "blackholes: %d\n", len(r.Blackholes))
		for _, b := range r.Blackholes {
			mark := ""
			if b.Observed {
				mark = " (observed by emulator)"
			}
			fmt.Fprintf(w, "  flow %s dropped at %s from tick %d, %d emission(s)%s\n", b.Key, b.At, b.Tick, b.Count, mark)
		}
	}

	agree := "matches"
	if !r.DetectorsAgree {
		agree = "DISAGREES with"
	}
	fmt.Fprintf(w, "cross-check: reconstructed congestion %s the emulator (%d span(s))\n", agree, r.EmuOverloads)
	fmt.Fprintf(w, "replay: %d emission(s) — %d delivered, %d looped, %d blackholed\n",
		r.Replay.Emissions, r.Replay.Delivered, r.Replay.Looped, r.Replay.Blackholed)

	if len(r.Critical.Switches) > 0 {
		fmt.Fprintln(w, "critical path:")
		fmt.Fprintf(w, "  %-8s %8s %8s %8s %8s %8s %8s %6s %6s\n",
			"switch", "planned", "sent", "sched", "recv", "barrier", "apply", "skew", "lead")
		for _, s := range r.Critical.Switches {
			gate := " "
			if s.Switch == r.Critical.Gating {
				gate = "*"
			}
			fmt.Fprintf(w, "%s %-8s %8s %8s %8s %8s %8s %8s %6d %6s\n",
				gate, s.Switch, lane(s.Planned), lane(s.Sent), lane(s.Sched),
				lane(s.Recv), lane(s.Barrier), lane(s.Apply), s.Skew, lane(s.Lead))
		}
		if r.Critical.Gating != "" {
			fmt.Fprintf(w, "  gating: %s (makespan %d tick(s))\n", r.Critical.Gating, r.Critical.Makespan)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// String renders the report to a string.
func (r *Report) String() string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}
