// Package audit is the runtime consistency auditor: it ingests the
// structured event stream an obs.Tracer records while a schedule
// executes on the emulated data plane — live, or offline from the JSONL
// files `mutp -trace` writes — and independently re-verifies the two
// invariants the paper's Theorem 3 promises at every moment of a Chronus
// update: loop freedom (Definition 2) and congestion freedom
// (Definition 3).
//
// The auditor deliberately re-derives everything from the trace alone —
// it never touches the live network, the instance, or the schedule — so
// it cross-checks the emulator rather than repeating it:
//
//   - Per-switch forwarding state is reconstructed from sw.flowmod
//     (immediate) and sw.apply (timed activation) events, whose key/cmd/
//     next attributes carry the rule content. At every state-change
//     instant an Algorithm-4-style check walks forward from each flipped
//     switch's new next hop; reaching the flipped switch again is a
//     configuration cycle.
//   - Because a simultaneous ("one-shot") update never exhibits an
//     instantaneous cycle, the auditor additionally replays emissions
//     through the reconstructed time-varying tables at the actually
//     observed activation ticks — the dynamic-flow semantics of
//     dynflow.TraceEmission — catching the in-flight loops and
//     blackholes of Definition 2 that only exist for traffic already in
//     the network when rules flip.
//   - Per-link utilization (old + in-flight + new traffic) is
//     reconstructed from emu.rate events and compared against capacity;
//     the resulting overload intervals are then cross-checked against
//     the emulator's own emu.overload spans, so the two congestion
//     detectors police each other.
//
// On the same stream the auditor computes a schedule critical path: per
// switch, the planned tick, FlowMod send/receive, barrier and activation
// instants, the activation skew, the sched→recv lead, and which switch
// gated the makespan.
//
// # Event contract
//
// The auditor consumes the events emitted across internal/emu,
// internal/switchd and internal/controller (all attribute values are
// strings; integers in base 10):
//
//	emu.inject   switch, key, rate            injection rate change at the source
//	emu.rate     link (u>v), key, rate, total, cap, delay
//	                                          per-link per-key utilization change
//	emu.overload link, peak, cap (span)       the emulator's own overload verdict
//	emu.drop     switch, key, reason          blackhole/TTL ground truth
//	sw.flowmod   switch, kind, key, cmd, next [, at]
//	sw.apply     switch, skew, at, key, cmd, next
//	sw.barrier   switch
//	ctl.flowmod  switch, at, key, next
//	sched        switch                       planned activation (VT = planned tick)
//
// Unknown event names are ignored, so the stream may carry additional
// families (scheduler decisions, barrier spans) without confusing the
// auditor.
//
// # Determinism
//
// Report construction is a pure function of the fed events: all maps are
// iterated through sorted key lists, ties are broken by sequence number,
// and rendering prints virtual ticks only. Feeding the byte-identical
// trace a fixed-seed execution produces therefore yields byte-identical
// reports — enforced by the mutp golden test.
package audit

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/chronus-sdn/chronus/internal/obs"
)

// Auditor accumulates trace events and derives a consistency Report.
// Feed order does not matter: Report sorts by virtual time (sequence
// number as tie-break) before reconstructing.
type Auditor struct {
	events []obs.Event
}

// New returns an empty auditor.
func New() *Auditor { return &Auditor{} }

// Feed adds events to the auditor.
func (a *Auditor) Feed(evs ...obs.Event) {
	a.events = append(a.events, evs...)
}

// ReadJSONL feeds every event of a JSON-Lines stream (the format
// obs.Tracer.WriteJSONL and the chronusd /trace endpoint emit). Any
// malformed line — including a torn trailing one — is a line-numbered
// error; use ReadJSONLTolerant for captures that may have been cut off
// mid-write.
func (a *Auditor) ReadJSONL(r io.Reader) error {
	_, _, err := a.readJSONL(r, true)
	return err
}

// ReadJSONLTolerant is ReadJSONL for captures taken from a live writer:
// a final line missing its terminating newline that fails to parse is a
// torn mid-write tail, reported in warn and skipped rather than failing
// the whole read. Corruption anywhere else — a malformed line that IS
// newline-terminated, or a malformed line followed by more data — still
// fails with a line-numbered error, because nothing after a corrupt
// record can be trusted to be aligned. n is the number of events fed.
func (a *Auditor) ReadJSONLTolerant(r io.Reader) (n int, warn string, err error) {
	return a.readJSONL(r, false)
}

func (a *Auditor) readJSONL(r io.Reader, strict bool) (n int, warn string, err error) {
	br := bufio.NewReaderSize(r, 64*1024)
	line := 0
	for {
		text, rerr := br.ReadString('\n')
		if rerr != nil && rerr != io.EOF {
			return n, warn, rerr
		}
		atEOF := rerr == io.EOF
		if text != "" {
			line++
			if t := strings.TrimSpace(text); t != "" {
				e, uerr := obs.DecodeJSONLine([]byte(t))
				if uerr != nil {
					// A bad final line with no terminating newline is a
					// torn mid-write tail, not corruption.
					if !strict && atEOF {
						warn = fmt.Sprintf("line %d: ignoring torn trailing line: %v", line, uerr)
					} else {
						return n, warn, fmt.Errorf("audit: line %d: %w", line, uerr)
					}
				} else {
					a.events = append(a.events, e)
					n++
				}
			}
		}
		if atEOF {
			return n, warn, nil
		}
	}
}

// attr returns the value of the named attribute, or "".
func attr(e obs.Event, k string) string {
	for _, a := range e.Attrs {
		if a.K == k {
			return a.V
		}
	}
	return ""
}

// attrInt parses the named attribute as a base-10 integer.
func attrInt(e obs.Event, k string) (int64, bool) {
	v := attr(e, k)
	if v == "" {
		return 0, false
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// splitLink splits a "u>v" link label into its endpoints.
func splitLink(label string) (string, string, bool) {
	from, to, ok := strings.Cut(label, ">")
	return from, to, ok
}

// Report reconstructs forwarding and utilization state from the fed
// events and returns the auditor's verdict.
func (a *Auditor) Report() *Report {
	st := newState()
	evs := append([]obs.Event(nil), a.events...)
	// Virtual-time order with sequence tie-break: kernel-emitted events
	// keep their causal order, while plan markers (sched) land at their
	// planned instant.
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].VT != evs[j].VT {
			return evs[i].VT < evs[j].VT
		}
		return evs[i].Seq < evs[j].Seq
	})
	for _, e := range evs {
		st.ingest(e)
	}
	st.flushBatch()

	r := &Report{Events: len(a.events)}
	r.MissingEvents = missingEvents(a.events)
	st.finishCongestion(r)
	st.finishLoops(r)
	st.finishCritical(r)
	r.Notes = st.sortedNotes()
	return r
}

// missingEvents infers how many events are absent from the stream via
// sequence-number gaps (the tracer ring drops oldest-first but keeps Seq
// monotonic, so every eviction leaves a gap).
func missingEvents(evs []obs.Event) uint64 {
	if len(evs) == 0 {
		return 0
	}
	seqs := make([]uint64, 0, len(evs))
	for _, e := range evs {
		seqs = append(seqs, e.Seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	missing := seqs[0] - 1
	for i := 1; i < len(seqs); i++ {
		if seqs[i] > seqs[i-1] {
			missing += seqs[i] - seqs[i-1] - 1
		}
	}
	return missing
}
