package audit

import (
	"fmt"
	"sort"

	"github.com/chronus-sdn/chronus/internal/obs"
)

// ruleChange is one reconstructed forwarding-table change: from tick on
// (inclusive), the switch forwards key to next ("" = no rule, "host" =
// deliver locally).
type ruleChange struct {
	tick int64
	next string
}

// rateChange is one injection-rate change at the source.
type rateChange struct {
	tick int64
	rate int64
}

// flip is one pending state change of the current same-tick batch.
type flip struct {
	sw, key, next string
}

// linkState reconstructs one link's utilization from emu.rate events.
type linkState struct {
	cap    int64
	rates  map[string]int64 // key -> aggregate rate
	open   *CongestionViolation
	keys   map[string]bool // keys seen while the open interval ran
	closed []CongestionViolation
}

// state is the full reconstruction the auditor builds from one pass over
// the time-ordered events.
type state struct {
	// Forwarding reconstruction.
	tables   map[string]map[string]string       // switch -> key -> next
	ruleHist map[string]map[string][]ruleChange // switch -> key -> changes, tick-ascending
	batchVT  int64
	batch    []flip
	cycles   []LoopViolation

	// Utilization reconstruction.
	links  map[string]*linkState
	delays map[[2]string]int64

	// Injection replay inputs.
	inject map[string][]rateChange // key -> changes, tick-ascending
	source map[string]string       // key -> source switch

	// Emulator ground truth, for cross-checks.
	emuOverloads []CongestionViolation
	dropNoRule   map[[2]string]int64 // (switch, key) -> first drop tick
	ttlByKey     map[string]int64    // key -> first ttl-expiry tick
	ttlDrops     int

	// Control-plane timeline.
	lanes map[string]*SwitchLane

	notes map[string]bool
}

func newState() *state {
	return &state{
		tables:     make(map[string]map[string]string),
		ruleHist:   make(map[string]map[string][]ruleChange),
		batchVT:    -1 << 62,
		links:      make(map[string]*linkState),
		delays:     make(map[[2]string]int64),
		inject:     make(map[string][]rateChange),
		source:     make(map[string]string),
		dropNoRule: make(map[[2]string]int64),
		ttlByKey:   make(map[string]int64),
		lanes:      make(map[string]*SwitchLane),
		notes:      make(map[string]bool),
	}
}

func (st *state) note(format string, args ...any) {
	st.notes[fmt.Sprintf(format, args...)] = true
}

func (st *state) sortedNotes() []string {
	out := make([]string, 0, len(st.notes))
	for n := range st.notes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (st *state) lane(sw string) *SwitchLane {
	l, ok := st.lanes[sw]
	if !ok {
		l = &SwitchLane{Switch: sw, Planned: -1, Sent: -1, Sched: -1, Recv: -1, Barrier: -1, Apply: -1, Lead: -1}
		st.lanes[sw] = l
	}
	return l
}

// ingest dispatches one time-ordered event into the reconstruction.
func (st *state) ingest(e obs.Event) {
	switch e.Name {
	case "sw.flowmod":
		sw := attr(e, "switch")
		if attr(e, "kind") == "timed" {
			l := st.lane(sw)
			l.Recv = e.VT
			if at, ok := attrInt(e, "at"); ok && l.Sched < 0 {
				l.Sched = at
			}
			return // receipt only; the table changes at sw.apply
		}
		st.applyRule(e.VT, sw, attr(e, "key"), attr(e, "cmd"), attr(e, "next"))
	case "sw.apply":
		sw := attr(e, "switch")
		l := st.lane(sw)
		l.Apply = e.VT
		if skew, ok := attrInt(e, "skew"); ok {
			l.Skew = skew
		}
		if at, ok := attrInt(e, "at"); ok && l.Sched < 0 {
			l.Sched = at
		}
		st.applyRule(e.VT, sw, attr(e, "key"), attr(e, "cmd"), attr(e, "next"))
	case "sw.barrier":
		if l := st.lane(attr(e, "switch")); l.Apply < 0 {
			l.Barrier = e.VT
		}
	case "ctl.flowmod":
		if at, ok := attrInt(e, "at"); ok && at > 0 {
			l := st.lane(attr(e, "switch"))
			l.Sent = e.VT
			l.Sched = at
		}
	case "sched":
		st.lane(attr(e, "switch")).Planned = e.VT
	case "emu.inject":
		key := attr(e, "key")
		rate, _ := attrInt(e, "rate")
		st.inject[key] = append(st.inject[key], rateChange{tick: e.VT, rate: rate})
		if rate > 0 {
			st.source[key] = attr(e, "switch")
		}
	case "emu.rate":
		st.linkRate(e)
	case "emu.overload":
		st.emuOverloads = append(st.emuOverloads, CongestionViolation{
			Link:  attr(e, "link"),
			Start: e.VT,
			End:   e.VT + e.Dur,
			Peak:  mustInt(e, "peak"),
			Cap:   mustInt(e, "cap"),
		})
	case "emu.drop":
		sw, key := attr(e, "switch"), attr(e, "key")
		if attr(e, "reason") == "ttl_expired" {
			st.ttlDrops++
			if _, seen := st.ttlByKey[key]; !seen {
				st.ttlByKey[key] = e.VT
			}
			return
		}
		if _, seen := st.dropNoRule[[2]string{sw, key}]; !seen {
			st.dropNoRule[[2]string{sw, key}] = e.VT
		}
	}
}

func mustInt(e obs.Event, k string) int64 {
	v, _ := attrInt(e, k)
	return v
}

// applyRule records a forwarding-table change and queues it for the
// same-tick configuration-cycle check.
func (st *state) applyRule(vt int64, sw, key, cmd, next string) {
	if sw == "" || key == "" {
		return
	}
	if vt != st.batchVT {
		st.flushBatch()
		st.batchVT = vt
	}
	if cmd == "del" {
		next = ""
	}
	tbl, ok := st.tables[sw]
	if !ok {
		tbl = make(map[string]string)
		st.tables[sw] = tbl
	}
	if next == "" {
		delete(tbl, key)
	} else {
		tbl[key] = next
	}
	hist, ok := st.ruleHist[sw]
	if !ok {
		hist = make(map[string][]ruleChange)
		st.ruleHist[sw] = hist
	}
	hist[key] = append(hist[key], ruleChange{tick: vt, next: next})
	st.batch = append(st.batch, flip{sw: sw, key: key, next: next})
}

// flushBatch runs the Algorithm-4-style instantaneous loop check over the
// batch of rule changes that took effect at the same tick: for each
// flipped switch v, walk forward from its new next hop through the
// current tables; reaching v again means the configuration itself has a
// cycle. (Chronus's scheduler runs the same check backward over the
// active path before accepting a candidate; here it audits what the
// switches actually installed.)
func (st *state) flushBatch() {
	if len(st.batch) == 0 {
		return
	}
	seen := make(map[string]bool)
	for _, f := range st.batch {
		if f.next == "" || f.next == "host" {
			continue
		}
		path := []string{f.sw}
		visited := map[string]bool{f.sw: true}
		cur := f.next
		for step := 0; step <= len(st.tables)+1; step++ {
			if cur == "" || cur == "host" {
				break
			}
			if cur == f.sw {
				cyc := canonicalCycle(path)
				if !seen[cyc] {
					seen[cyc] = true
					st.cycles = append(st.cycles, LoopViolation{
						Kind:  "config-cycle",
						Key:   f.key,
						At:    f.sw,
						Tick:  st.batchVT,
						Cycle: cyc,
					})
				}
				break
			}
			if visited[cur] {
				break // a cycle not through f.sw; its own flip flags it
			}
			visited[cur] = true
			path = append(path, cur)
			cur = st.tables[cur][f.key]
		}
	}
	st.batch = st.batch[:0]
}

// canonicalCycle renders a cycle rotated to start at its smallest
// member, so the same cycle detected from different switches dedupes.
func canonicalCycle(path []string) string {
	min := 0
	for i := range path {
		if path[i] < path[min] {
			min = i
		}
	}
	rot := append(append([]string(nil), path[min:]...), path[:min]...)
	rot = append(rot, rot[0])
	return joinCycle(rot)
}

func joinCycle(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ">"
		}
		out += p
	}
	return out
}

// linkRate processes one emu.rate event: update the per-key rate table,
// independently recompute the link total, and track overload intervals
// with the same open/close/blip semantics the emulator uses.
func (st *state) linkRate(e obs.Event) {
	label := attr(e, "link")
	ls, ok := st.links[label]
	if !ok {
		ls = &linkState{cap: mustInt(e, "cap"), rates: make(map[string]int64)}
		st.links[label] = ls
	}
	if from, to, ok := splitLink(label); ok {
		if d, ok := attrInt(e, "delay"); ok && d > 0 {
			st.delays[[2]string{from, to}] = d
		}
	}
	key := attr(e, "key")
	rate := mustInt(e, "rate")
	if rate == 0 {
		delete(ls.rates, key)
	} else {
		ls.rates[key] = rate
	}
	var total int64
	for _, r := range ls.rates {
		total += r
	}
	if reported, ok := attrInt(e, "total"); ok && reported != total {
		st.note("link %s: reconstructed total %d disagrees with emulator total %d at tick %d", label, total, reported, e.VT)
	}

	over := total > ls.cap
	switch {
	case over && ls.open == nil:
		ls.open = &CongestionViolation{Link: label, Start: e.VT, End: -1, Peak: total, Cap: ls.cap}
		ls.keys = make(map[string]bool)
		for k := range ls.rates {
			ls.keys[k] = true
		}
	case over:
		if total > ls.open.Peak {
			ls.open.Peak = total
		}
		for k := range ls.rates {
			ls.keys[k] = true
		}
	case ls.open != nil:
		if ls.open.Start != e.VT {
			// A zero-length blip (two changes at the same instant) is
			// discarded, mirroring the emulator's interval recorder.
			ls.open.End = e.VT
			ls.open.Keys = sortedKeys(ls.keys)
			ls.closed = append(ls.closed, *ls.open)
		}
		ls.open, ls.keys = nil, nil
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// finishCongestion collects the reconstructed overload intervals into
// the report and cross-checks them against the emulator's own spans.
func (st *state) finishCongestion(r *Report) {
	labels := make([]string, 0, len(st.links))
	for l := range st.links {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var reconstructed []CongestionViolation
	for _, label := range labels {
		ls := st.links[label]
		reconstructed = append(reconstructed, ls.closed...)
		if ls.open != nil {
			still := *ls.open
			still.Keys = sortedKeys(ls.keys)
			reconstructed = append(reconstructed, still)
			st.note("link %s: overload still open when the trace ended", label)
		}
	}
	sortCongestion(reconstructed)
	r.Congestion = reconstructed

	// The two congestion detectors police each other: every closed
	// reconstructed interval must match an emulator overload span and
	// vice versa. Open intervals are excluded — the emulator, too, only
	// reports an interval once it closes.
	var closed []CongestionViolation
	for _, c := range reconstructed {
		if c.End >= 0 {
			closed = append(closed, c)
		}
	}
	emu := append([]CongestionViolation(nil), st.emuOverloads...)
	sortCongestion(emu)
	r.EmuOverloads = len(emu)
	r.DetectorsAgree = len(closed) == len(emu)
	if r.DetectorsAgree {
		for i := range closed {
			a, b := closed[i], emu[i]
			if a.Link != b.Link || a.Start != b.Start || a.End != b.End || a.Peak != b.Peak || a.Cap != b.Cap {
				r.DetectorsAgree = false
				break
			}
		}
	}
	if !r.DetectorsAgree {
		st.note("congestion detectors disagree: %d reconstructed closed intervals vs %d emulator spans", len(closed), len(emu))
	}
}

func sortCongestion(cs []CongestionViolation) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Link != cs[j].Link {
			return cs[i].Link < cs[j].Link
		}
		if cs[i].Start != cs[j].Start {
			return cs[i].Start < cs[j].Start
		}
		return cs[i].End < cs[j].End
	})
}

// finishCritical assembles the per-switch control timeline and the
// critical-path summary.
func (st *state) finishCritical(r *Report) {
	names := make([]string, 0, len(st.lanes))
	for n := range st.lanes {
		names = append(names, n)
	}
	sort.Strings(names)
	cp := CriticalPath{Makespan: -1}
	minSched, maxApply := int64(-1), int64(-1)
	for _, n := range names {
		l := st.lanes[n]
		if l.Sched < 0 && l.Recv < 0 && l.Apply < 0 {
			continue // no timed-update activity; not part of the critical path
		}
		if l.Sched >= 0 && l.Recv >= 0 {
			l.Lead = l.Sched - l.Recv
		}
		cp.Switches = append(cp.Switches, *l)
		if l.Sched >= 0 && (minSched < 0 || l.Sched < minSched) {
			minSched = l.Sched
		}
		if l.Apply > maxApply {
			maxApply = l.Apply
			cp.Gating = l.Switch
		}
	}
	if minSched >= 0 && maxApply >= 0 {
		cp.Makespan = maxApply - minSched
	}
	r.Critical = cp
}
