package audit

import "sort"

// finishLoops assembles the loop and blackhole verdicts: the
// instantaneous configuration cycles found while ingesting, plus a
// dynamic-flow replay of emissions through the reconstructed
// time-varying tables that catches Definition-2 violations — packets
// already in flight when rules flip — which no instantaneous check can
// see.
func (st *state) finishLoops(r *Report) {
	loops := append([]LoopViolation(nil), st.cycles...)
	transient := make(map[string]*LoopViolation)
	holes := make(map[[2]string]*BlackholeViolation)
	var stats ReplayStats

	keys := make([]string, 0, len(st.inject))
	for k := range st.inject {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	maxDelay := int64(1)
	for _, d := range st.delays {
		if d > maxDelay {
			maxDelay = d
		}
	}

	for _, key := range keys {
		src := st.source[key]
		if src == "" {
			continue // never injected at a positive rate
		}
		injStart := int64(-1)
		for _, c := range st.inject[key] {
			if c.rate > 0 {
				injStart = c.tick
				break
			}
		}
		if injStart < 0 {
			continue
		}

		// Rule changes after injection started are the interesting
		// instants; anything at or before injStart is provisioning the
		// flow rode in on from the outset.
		changeSet := make(map[int64]bool)
		for _, perKey := range st.ruleHist {
			for _, c := range perKey[key] {
				if c.tick > injStart {
					changeSet[c.tick] = true
				}
			}
		}
		changes := make([]int64, 0, len(changeSet))
		for t := range changeSet {
			changes = append(changes, t)
		}
		sort.Slice(changes, func(i, j int) bool { return changes[i] < changes[j] })

		// Emission window, mirroring dynflow.Validate: wide enough before
		// the first change that any packet still in flight when it lands
		// is covered, then extended past the last change until the
		// longest-lived base-window packet has arrived.
		start, end := injStart, injStart
		if len(changes) > 0 {
			span := int64(len(st.ruleHist)+1) * maxDelay
			start = changes[0] - span
			if start < injStart {
				start = injStart
			}
			end = changes[len(changes)-1]
		}
		latest := end
		for t := start; t <= end; t++ {
			if st.rateAt(key, t) <= 0 {
				continue
			}
			if arrival := st.traceOne(key, src, t, &stats, transient, holes); arrival > latest {
				latest = arrival
			}
		}
		for t := end + 1; t <= latest; t++ {
			if st.rateAt(key, t) <= 0 {
				continue
			}
			st.traceOne(key, src, t, &stats, transient, holes)
		}
	}

	loopedKeys := make(map[string]bool)
	for _, l := range loops {
		loopedKeys[l.Key] = true
	}
	for _, l := range transient {
		loops = append(loops, *l)
		loopedKeys[l.Key] = true
	}

	// TTL expiries are the emulator's own loop symptom: a packet only
	// exhausts its TTL by circulating. If the replay already explains the
	// key, the expiry is corroboration; otherwise it is evidence of a
	// loop the reconstruction missed, and is reported on its own.
	ttlKeys := make([]string, 0, len(st.ttlByKey))
	for k := range st.ttlByKey {
		ttlKeys = append(ttlKeys, k)
	}
	sort.Strings(ttlKeys)
	for _, k := range ttlKeys {
		if !loopedKeys[k] {
			loops = append(loops, LoopViolation{Kind: "ttl-expired", Key: k, At: "-", Tick: st.ttlByKey[k]})
			st.note("flow %s: emulator reported TTL expiry but the replay found no loop", k)
		}
	}
	if st.ttlDrops > 0 {
		st.note("emulator dropped %d packet(s) to TTL expiry", st.ttlDrops)
	}

	sort.Slice(loops, func(i, j int) bool {
		a, b := loops[i], loops[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		if a.Tick != b.Tick {
			return a.Tick < b.Tick
		}
		return a.Cycle < b.Cycle
	})
	r.Loops = loops

	// Merge the emulator's observed no-rule drops into the replayed
	// blackholes; drops the replay did not predict still get reported.
	var bh []BlackholeViolation
	for at, h := range holes {
		if t, ok := st.dropNoRule[at]; ok {
			h.Observed = true
			if t < h.Tick {
				h.Tick = t
			}
		}
		bh = append(bh, *h)
	}
	observedOnly := make([][2]string, 0, len(st.dropNoRule))
	for at := range st.dropNoRule {
		if _, ok := holes[at]; !ok {
			observedOnly = append(observedOnly, at)
		}
	}
	sort.Slice(observedOnly, func(i, j int) bool {
		if observedOnly[i][0] != observedOnly[j][0] {
			return observedOnly[i][0] < observedOnly[j][0]
		}
		return observedOnly[i][1] < observedOnly[j][1]
	})
	for _, at := range observedOnly {
		bh = append(bh, BlackholeViolation{At: at[0], Key: at[1], Tick: st.dropNoRule[at], Observed: true})
		st.note("switch %s: emulator dropped flow %s with no rule but the replay did not predict it", at[0], at[1])
	}
	sort.Slice(bh, func(i, j int) bool {
		if bh[i].At != bh[j].At {
			return bh[i].At < bh[j].At
		}
		return bh[i].Key < bh[j].Key
	})
	r.Blackholes = bh
	r.Replay = stats
}

// traceOne follows a single emission of key, departing src at tick t,
// through the reconstructed tables, and returns its arrival (or drop)
// tick. Loops and blackholes it encounters are aggregated per (key,
// cycle) and (switch, key) respectively.
func (st *state) traceOne(key, src string, t int64, stats *ReplayStats, transient map[string]*LoopViolation, holes map[[2]string]*BlackholeViolation) int64 {
	stats.Emissions++
	emit := t
	cur := src
	visited := map[string]int{src: 0}
	path := []string{src}
	for {
		next := st.ruleAt(cur, key, t)
		switch next {
		case "":
			stats.Blackholed++
			h, ok := holes[[2]string{cur, key}]
			if !ok {
				h = &BlackholeViolation{At: cur, Key: key, Tick: t}
				holes[[2]string{cur, key}] = h
			}
			h.Count++
			return t
		case "host":
			stats.Delivered++
			return t
		}
		d := st.delays[[2]string{cur, next}]
		if d <= 0 {
			d = 1
			st.note("link %s>%s: no observed delay; replay assumes 1 tick", cur, next)
		}
		t += d
		if i, ok := visited[next]; ok {
			stats.Looped++
			cyc := canonicalCycle(path[i:])
			id := key + "|" + cyc
			l, ok := transient[id]
			if !ok {
				l = &LoopViolation{Kind: "transient-loop", Key: key, At: next, Tick: t, Cycle: cyc, FirstEmit: emit, LastEmit: emit}
				transient[id] = l
			}
			l.Count++
			if emit < l.FirstEmit {
				l.FirstEmit = emit
			}
			if emit > l.LastEmit {
				l.LastEmit = emit
			}
			if t < l.Tick {
				l.Tick = t
			}
			return t
		}
		visited[next] = len(path)
		path = append(path, next)
		cur = next
	}
}

// rateAt returns key's injection rate in effect at tick t.
func (st *state) rateAt(key string, t int64) int64 {
	cs := st.inject[key]
	for i := len(cs) - 1; i >= 0; i-- {
		if cs[i].tick <= t {
			return cs[i].rate
		}
	}
	return 0
}

// ruleAt returns the next hop sw's table held for key at tick t, or ""
// if no rule was installed then.
func (st *state) ruleAt(sw, key string, t int64) string {
	cs := st.ruleHist[sw][key]
	for i := len(cs) - 1; i >= 0; i-- {
		if cs[i].tick <= t {
			return cs[i].next
		}
	}
	return ""
}
