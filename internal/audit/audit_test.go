package audit

import (
	"strings"
	"testing"

	"github.com/chronus-sdn/chronus/internal/obs"
)

// ev builds a test event; attrs alternate key, value.
func ev(seq uint64, vt int64, name string, attrs ...string) obs.Event {
	e := obs.Event{Seq: seq, VT: vt, Name: name}
	for i := 0; i+1 < len(attrs); i += 2 {
		e.Attrs = append(e.Attrs, obs.Attr{K: attrs[i], V: attrs[i+1]})
	}
	return e
}

func TestCongestionReconstruction(t *testing.T) {
	a := New()
	// One link with cap 10: key f/0 at 8 from tick 5, key g/0 at 8 from
	// tick 7 (total 16 > 10), g/0 gone at tick 12.
	a.Feed(
		ev(1, 5, "emu.rate", "link", "v1>v2", "key", "f/0", "rate", "8", "total", "8", "cap", "10", "delay", "1"),
		ev(2, 7, "emu.rate", "link", "v1>v2", "key", "g/0", "rate", "8", "total", "16", "cap", "10", "delay", "1"),
		ev(3, 12, "emu.rate", "link", "v1>v2", "key", "g/0", "rate", "0", "total", "8", "cap", "10", "delay", "1"),
		// The emulator's own span for the same overload.
		obs.Event{Seq: 4, VT: 7, Dur: 5, Name: "emu.overload", Attrs: []obs.Attr{
			{K: "link", V: "v1>v2"}, {K: "peak", V: "16"}, {K: "cap", V: "10"}}},
	)
	r := a.Report()
	if len(r.Congestion) != 1 {
		t.Fatalf("congestion = %+v, want 1 interval", r.Congestion)
	}
	c := r.Congestion[0]
	if c.Link != "v1>v2" || c.Start != 7 || c.End != 12 || c.Peak != 16 || c.Cap != 10 {
		t.Errorf("interval = %+v", c)
	}
	if want := []string{"f/0", "g/0"}; len(c.Keys) != 2 || c.Keys[0] != want[0] || c.Keys[1] != want[1] {
		t.Errorf("keys = %v, want %v", c.Keys, want)
	}
	if !r.DetectorsAgree || r.EmuOverloads != 1 {
		t.Errorf("DetectorsAgree=%v EmuOverloads=%d, want agreement with 1 span", r.DetectorsAgree, r.EmuOverloads)
	}
	if r.OK() {
		t.Error("report with congestion must not be OK")
	}
}

func TestDetectorDisagreementIsNoted(t *testing.T) {
	a := New()
	// Emulator claims an overload the rate stream does not support.
	a.Feed(obs.Event{Seq: 1, VT: 7, Dur: 5, Name: "emu.overload", Attrs: []obs.Attr{
		{K: "link", V: "v1>v2"}, {K: "peak", V: "16"}, {K: "cap", V: "10"}}})
	r := a.Report()
	if r.DetectorsAgree {
		t.Error("detectors must disagree when the rate stream shows no overload")
	}
	if len(r.Notes) == 0 {
		t.Error("disagreement should leave a note")
	}
}

func TestConfigCycleDetected(t *testing.T) {
	a := New()
	// v1 -> v2 installed, then v2 -> v1 at the same tick: instantaneous cycle.
	a.Feed(
		ev(1, 10, "sw.flowmod", "switch", "v1", "kind", "immediate", "key", "f/0", "cmd", "add", "next", "v2"),
		ev(2, 10, "sw.flowmod", "switch", "v2", "kind", "immediate", "key", "f/0", "cmd", "add", "next", "v1"),
	)
	r := a.Report()
	if len(r.Loops) != 1 {
		t.Fatalf("loops = %+v, want 1", r.Loops)
	}
	l := r.Loops[0]
	if l.Kind != "config-cycle" || l.Tick != 10 || l.Cycle != "v1>v2>v1" {
		t.Errorf("loop = %+v", l)
	}
}

func TestTransientLoopViaReplay(t *testing.T) {
	// Initial path v1->v2->host. At tick 20, v1 flips to v3 and v3 points
	// back to v1 — but v1's flip lands at 20 while a packet emitted at 19
	// is still in flight toward v2: no instantaneous cycle ever exists
	// (v1->v3, v3->v1 *is* one; make it v3 -> v1 installed at 20 and v1
	// -> v3 at 21 so each instant is acyclic, yet a packet leaving v1 at
	// 21 reaches v3 at 22 and is sent back to v1, which now points to v3:
	// an in-flight loop).
	a := New()
	a.Feed(
		// Provisioning at tick 0.
		ev(1, 0, "sw.flowmod", "switch", "v1", "kind", "immediate", "key", "f/0", "cmd", "add", "next", "v2"),
		ev(2, 0, "sw.flowmod", "switch", "v2", "kind", "immediate", "key", "f/0", "cmd", "add", "next", "host"),
		ev(3, 1, "emu.inject", "switch", "v1", "key", "f/0", "rate", "5"),
		// Delays become known from rate events.
		ev(4, 1, "emu.rate", "link", "v1>v2", "key", "f/0", "rate", "5", "total", "5", "cap", "10", "delay", "1"),
		ev(5, 1, "emu.rate", "link", "v1>v3", "key", "f/0", "rate", "0", "total", "0", "cap", "10", "delay", "1"),
		ev(6, 1, "emu.rate", "link", "v3>v1", "key", "f/0", "rate", "0", "total", "0", "cap", "10", "delay", "1"),
		// The update: v3 -> v1 at tick 20, v1 -> v3 at tick 21.
		ev(7, 20, "sw.apply", "switch", "v3", "skew", "0", "at", "20", "key", "f/0", "cmd", "add", "next", "v1"),
		ev(8, 21, "sw.apply", "switch", "v1", "skew", "0", "at", "21", "key", "f/0", "cmd", "mod", "next", "v3"),
	)
	r := a.Report()
	var transient []LoopViolation
	for _, l := range r.Loops {
		if l.Kind == "transient-loop" {
			transient = append(transient, l)
		}
	}
	if len(transient) != 1 {
		t.Fatalf("loops = %+v, want one transient-loop", r.Loops)
	}
	if transient[0].Cycle != "v1>v3>v1" {
		t.Errorf("cycle = %q, want v1>v3>v1", transient[0].Cycle)
	}
	if r.Replay.Looped == 0 || r.Replay.Delivered == 0 {
		t.Errorf("replay = %+v, want both delivered and looped emissions", r.Replay)
	}
}

func TestCleanTimedUpdateAuditsClean(t *testing.T) {
	a := New()
	a.Feed(
		ev(1, 0, "sw.flowmod", "switch", "v1", "kind", "immediate", "key", "f/0", "cmd", "add", "next", "v2"),
		ev(2, 0, "sw.flowmod", "switch", "v2", "kind", "immediate", "key", "f/0", "cmd", "add", "next", "host"),
		ev(3, 1, "emu.inject", "switch", "v1", "key", "f/0", "rate", "5"),
		ev(4, 1, "emu.rate", "link", "v1>v2", "key", "f/0", "rate", "5", "total", "5", "cap", "10", "delay", "1"),
		// Timed flip of v1 to a direct host delivery: recv at 12, apply at 30.
		ev(5, 10, "sched", "switch", "v1"),
		ev(6, 11, "ctl.flowmod", "switch", "v1", "at", "30", "key", "f/0", "next", "host"),
		ev(7, 12, "sw.flowmod", "switch", "v1", "kind", "timed", "at", "30", "key", "f/0", "cmd", "mod", "next", "host"),
		ev(8, 13, "sw.barrier", "switch", "v1"),
		ev(9, 30, "sw.apply", "switch", "v1", "skew", "0", "at", "30", "key", "f/0", "cmd", "mod", "next", "host"),
	)
	r := a.Report()
	if !r.OK() {
		t.Fatalf("expected clean audit, got:\n%s", r)
	}
	if len(r.Critical.Switches) != 1 {
		t.Fatalf("critical = %+v, want one switch", r.Critical)
	}
	s := r.Critical.Switches[0]
	if s.Switch != "v1" || s.Sched != 30 || s.Recv != 12 || s.Apply != 30 || s.Lead != 18 || s.Barrier != 13 {
		t.Errorf("lane = %+v", s)
	}
	if r.Critical.Gating != "v1" {
		t.Errorf("gating = %q, want v1", r.Critical.Gating)
	}
}

func TestBlackholeMergedWithObservedDrops(t *testing.T) {
	a := New()
	a.Feed(
		ev(1, 0, "sw.flowmod", "switch", "v1", "kind", "immediate", "key", "f/0", "cmd", "add", "next", "v2"),
		ev(2, 1, "emu.inject", "switch", "v1", "key", "f/0", "rate", "5"),
		ev(3, 1, "emu.rate", "link", "v1>v2", "key", "f/0", "rate", "5", "total", "5", "cap", "10", "delay", "1"),
		// v2 never gets a rule; the emulator confirms the drop.
		ev(4, 2, "emu.drop", "switch", "v2", "key", "f/0", "reason", "no_rule"),
	)
	r := a.Report()
	if len(r.Blackholes) != 1 {
		t.Fatalf("blackholes = %+v, want 1", r.Blackholes)
	}
	b := r.Blackholes[0]
	if b.At != "v2" || !b.Observed {
		t.Errorf("blackhole = %+v, want observed drop at v2", b)
	}
}

func TestMissingEventsFromSeqGaps(t *testing.T) {
	a := New()
	a.Feed(
		ev(3, 0, "sw.barrier", "switch", "v1"),
		ev(7, 1, "sw.barrier", "switch", "v1"),
	)
	if got := a.Report().MissingEvents; got != 5 {
		t.Errorf("MissingEvents = %d, want 5 (seq 1,2,4,5,6)", got)
	}
}

func TestReadJSONL(t *testing.T) {
	a := New()
	stream := `{"seq":1,"vt":10,"name":"sw.flowmod","attrs":[{"k":"switch","v":"v1"},{"k":"kind","v":"immediate"},{"k":"key","v":"f/0"},{"k":"cmd","v":"add"},{"k":"next","v":"v2"}]}

{"seq":2,"vt":10,"name":"sw.flowmod","attrs":[{"k":"switch","v":"v2"},{"k":"kind","v":"immediate"},{"k":"key","v":"f/0"},{"k":"cmd","v":"add"},{"k":"next","v":"v1"}]}
`
	if err := a.ReadJSONL(strings.NewReader(stream)); err != nil {
		t.Fatal(err)
	}
	r := a.Report()
	if r.Events != 2 || len(r.Loops) != 1 {
		t.Errorf("events=%d loops=%+v, want 2 events and the config cycle", r.Events, r.Loops)
	}

	bad := New()
	if err := bad.ReadJSONL(strings.NewReader("{not json}\n")); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("err = %v, want line-numbered parse error", err)
	}
}

func TestReportRenderDeterministic(t *testing.T) {
	build := func() string {
		a := New()
		a.Feed(
			ev(2, 10, "sw.flowmod", "switch", "v2", "kind", "immediate", "key", "f/0", "cmd", "add", "next", "v1"),
			ev(1, 10, "sw.flowmod", "switch", "v1", "kind", "immediate", "key", "f/0", "cmd", "add", "next", "v2"),
			ev(3, 5, "emu.rate", "link", "v1>v2", "key", "f/0", "rate", "15", "total", "15", "cap", "10", "delay", "1"),
			ev(4, 9, "emu.rate", "link", "v1>v2", "key", "f/0", "rate", "0", "total", "0", "cap", "10", "delay", "1"),
		)
		return a.Report().String()
	}
	if a, b := build(), build(); a != b {
		t.Errorf("render not deterministic:\n%s\nvs\n%s", a, b)
	}
}

// TestReadJSONLTolerant pins the torn-capture semantics: a final line
// cut off mid-write (no terminating newline) is warned about and
// skipped; the same bytes followed by a newline — or by more data — are
// corruption and fail with the line number.
func TestReadJSONLTolerant(t *testing.T) {
	const good = `{"seq":1,"vt":10,"name":"sw.flowmod","attrs":[{"k":"switch","v":"v1"}]}`

	t.Run("torn-last-line", func(t *testing.T) {
		a := New()
		n, warn, err := a.ReadJSONLTolerant(strings.NewReader(good + "\n" + `{"seq":2,"vt":11,"na`))
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("n = %d, want the 1 intact event", n)
		}
		if !strings.Contains(warn, "line 2") || !strings.Contains(warn, "torn") {
			t.Fatalf("warn = %q, want a line-numbered torn-line warning", warn)
		}
	})

	t.Run("terminated-bad-line-still-fails", func(t *testing.T) {
		a := New()
		_, _, err := a.ReadJSONLTolerant(strings.NewReader(good + "\n" + `{"seq":2,"vt":11,"na` + "\n"))
		if err == nil || !strings.Contains(err.Error(), "line 2") {
			t.Fatalf("err = %v, want line-numbered error for newline-terminated corruption", err)
		}
	})

	t.Run("mid-stream-corruption-still-fails", func(t *testing.T) {
		a := New()
		_, _, err := a.ReadJSONLTolerant(strings.NewReader(`{broken}` + "\n" + good + "\n"))
		if err == nil || !strings.Contains(err.Error(), "line 1") {
			t.Fatalf("err = %v, want line-numbered error for mid-stream corruption", err)
		}
	})

	t.Run("valid-unterminated-last-line", func(t *testing.T) {
		a := New()
		n, warn, err := a.ReadJSONLTolerant(strings.NewReader(good + "\n" + good))
		if err != nil || warn != "" || n != 2 {
			t.Fatalf("n=%d warn=%q err=%v, want both events accepted silently", n, warn, err)
		}
	})

	t.Run("empty", func(t *testing.T) {
		for _, input := range []string{"", "\n\n  \n"} {
			a := New()
			n, warn, err := a.ReadJSONLTolerant(strings.NewReader(input))
			if err != nil || warn != "" || n != 0 {
				t.Fatalf("input %q: n=%d warn=%q err=%v, want a clean zero-event read", input, n, warn, err)
			}
		}
	})

	// Strict ReadJSONL keeps failing on the torn tail too.
	t.Run("strict-torn-last-line", func(t *testing.T) {
		a := New()
		err := a.ReadJSONL(strings.NewReader(good + "\n" + `{"seq":2,"vt":11,"na`))
		if err == nil || !strings.Contains(err.Error(), "line 2") {
			t.Fatalf("err = %v, want strict reader to reject the torn line", err)
		}
	})
}
