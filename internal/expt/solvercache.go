package expt

import (
	"time"

	"github.com/chronus-sdn/chronus/internal/core"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/metrics"
	"github.com/chronus-sdn/chronus/internal/scheme"
)

// SolverCachePoint measures the chronusd-shaped workload — the same
// topology solved over and over — for one scheme: per-solve wall time
// with every cross-solve cache bypassed (cold) versus the steady state
// with the caches warm, and the resulting speedup.
type SolverCachePoint struct {
	Scheme      string
	N           int
	Repeats     int
	ColdSeconds float64 // mean per-solve, caches bypassed
	WarmSeconds float64 // mean per-solve, caches primed
	Speedup     float64 // ColdSeconds / WarmSeconds
}

// solverCacheRepeats is how many solves each arm of the measurement
// averages over; warm solves are cache hits and individually too fast to
// time singly.
const solverCacheRepeats = 20

// SolverCacheBench measures the incremental solve path: for each greedy
// scheme at the largest quality size, it solves one fixed instance
// repeatedly with the caches bypassed and again with them warm. This is
// the daemon's steady-state shape (one managed topology, many plan
// requests), so the warm column is what chronusd and batch re-solves
// actually pay. The two arms run the identical engine on the identical
// instance; only cache state differs, so the speedup column isolates
// the caches' contribution. Wall-clock, and therefore — like Fig. 10's
// seconds — not byte-deterministic across runs.
func SolverCacheBench(cfg Config) ([]SolverCachePoint, error) {
	n := cfg.Sizes[len(cfg.Sizes)-1]
	rng := rngFor(cfg, "solver-cache", int64(n))
	ctx := newInstCtx(rng, instanceParams(n))
	points := make([]SolverCachePoint, 0, 2)
	for _, name := range []string{"chronus", "chronus-fast"} {
		// Drop cache state left behind by whatever ran earlier in this
		// process so the warm arm measures entries this loop populated.
		scheme.SetPlanCache(false)
		scheme.SetPlanCache(true)
		core.SetPrecompCache(false)
		core.SetPrecompCache(true)
		dynflow.SetSkeletonCache(false)
		dynflow.SetSkeletonCache(true)

		cold, err := timeSolves(name, ctx.in, scheme.Options{BestEffort: true, NoCache: true})
		if err != nil {
			return nil, err
		}
		// Prime once, then measure steady-state hits.
		if _, err := scheme.Solve(name, ctx.in, scheme.Options{BestEffort: true}); err != nil {
			return nil, err
		}
		warm, err := timeSolves(name, ctx.in, scheme.Options{BestEffort: true})
		if err != nil {
			return nil, err
		}
		p := SolverCachePoint{Scheme: name, N: n, Repeats: solverCacheRepeats, ColdSeconds: cold, WarmSeconds: warm}
		if warm > 0 {
			p.Speedup = cold / warm
		}
		points = append(points, p)
	}
	return points, nil
}

func timeSolves(name string, in *dynflow.Instance, o scheme.Options) (perSolveSeconds float64, err error) {
	start := time.Now()
	for i := 0; i < solverCacheRepeats; i++ {
		if _, err := scheme.Solve(name, in, o); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds() / solverCacheRepeats, nil
}

// SolverCacheTable renders the repeated-solve measurement.
func SolverCacheTable(points []SolverCachePoint) *metrics.Table {
	t := &metrics.Table{Header: []string{
		"scheme", "switches", "repeats", "cold_ms", "warm_ms", "speedup",
	}}
	for _, p := range points {
		t.AddRowf(p.Scheme, p.N, p.Repeats, p.ColdSeconds*1e3, p.WarmSeconds*1e3, p.Speedup)
	}
	return t
}
