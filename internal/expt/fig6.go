package expt

import (
	"fmt"

	"github.com/chronus-sdn/chronus/internal/controller"
	"github.com/chronus-sdn/chronus/internal/emu"
	"github.com/chronus-sdn/chronus/internal/metrics"
	"github.com/chronus-sdn/chronus/internal/sim"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// Fig6Series is one scheme's bandwidth-over-time measurement on the
// monitored link.
type Fig6Series struct {
	Scheme  string
	Samples []controller.Sample
	// Peak is the maximum sampled rate; the capacity is
	// topo.EmulationCapacityMbps.
	Peak float64
	// OverloadTicks is the emulator's ground-truth time over capacity on
	// any link during the run.
	OverloadTicks sim.Time
	// Drops is the total traffic blackholed or looped away.
	Drops float64
}

// Fig6Result reproduces Fig. 6: link bandwidth consumption versus time
// while the ten-switch emulated network (the Mininet stand-in) migrates a
// 500 Mbps aggregate flow, under Chronus timed updates, two-phase commit,
// and order-replacement rounds.
type Fig6Result struct {
	Link   [2]string
	Series []Fig6Series
}

// fig6UpdateAt is the tick at which each scheme starts its update.
const fig6UpdateAt = 500

// Fig6Bandwidth runs the three schemes on fresh emulated networks and
// derives the monitored link's bandwidth series from its byte counters:
// counter delta over each sampling interval divided by the interval —
// the measurement method of the paper's prototype (which polls the
// Floodlight statistics module), reconstructed deterministically from the
// counter timeline after the run.
func Fig6Bandwidth(cfg Config) (*Fig6Result, error) {
	in := topo.EmulationTopo()
	res := &Fig6Result{}

	windowStart := sim.Time(fig6UpdateAt - 2*cfg.Fig6Interval)
	windowEnd := windowStart + sim.Time(int64(cfg.Fig6Samples)*cfg.Fig6Interval)

	// Each series runs on a fresh network (and its own instance copy:
	// Instance carries lazy caches, so concurrent runs must not share
	// one); the monitored link is chosen after the fact as the one OR
	// overloads hardest (relative to its capacity), which is the link the
	// paper's figure zooms in on. All three series then read the same
	// link's counters.
	type runState struct {
		scheme  string
		monitor bool
		h       *controller.Harness
	}

	run := func(label string, execute executor) (runState, error) {
		in := topo.EmulationTopo()
		h := controller.NewHarness(in.G)
		c := controller.New(h, controller.Options{Seed: cfg.Seed})
		c.AttachAll(nil)
		f := controller.FlowSpec{Name: "agg", Tag: 0, Path: in.Init, Rate: emu.Rate(in.Demand)}
		if err := c.Provision(f); err != nil {
			return runState{}, fmt.Errorf("%s: provision: %w", label, err)
		}
		h.AdvanceTo(fig6UpdateAt)
		if err := execute(in, c, h, f); err != nil {
			return runState{}, fmt.Errorf("%s: execute: %w", label, err)
		}
		h.AdvanceTo(windowEnd + 10)
		return runState{scheme: label, h: h}, nil
	}

	// The figure's cast: Chronus plans via the registry and executes
	// time-triggered (shifted past the control latency), two-phase commit
	// is a pure execution strategy, and OR plans rounds via the registry
	// and paces them with barriers. The monitor flag marks the run whose
	// worst overloaded link the figure zooms in on.
	entries := []struct {
		label   string
		monitor bool
		exec    executor
	}{
		{"chronus", false, timedExecutor("chronus", fig6UpdateAt+50)},
		{"tp", false, twoPhaseExecutor()},
		{"or", true, roundExecutor("or", 1)},
	}
	runs, err := fanout(cfg, len(entries), func(i int) (runState, error) {
		st, err := run(entries[i].label, entries[i].exec)
		st.monitor = entries[i].monitor
		return st, err
	})
	if err != nil {
		return nil, err
	}

	// Pick the monitored link: the one whose sampled (counter-delta)
	// bandwidth peaks highest in the OR run — the paper's figure zooms in
	// on the link where OR's spike is visible, which is a link that keeps
	// carrying steady traffic while misrouted traffic piles on. Fall back
	// to the final route's egress hop when OR happened to stay clean.
	from, to := in.Fin[len(in.Fin)-2], in.Fin[len(in.Fin)-1]
	bestPeak := 0.0
	for _, st := range runs {
		if !st.monitor {
			continue
		}
		for _, l := range st.h.Net.Links() {
			for _, smp := range sampleTimeline(l.Timeline(), windowStart, sim.Time(cfg.Fig6Interval), cfg.Fig6Samples) {
				if smp.Rate > bestPeak {
					bestPeak = smp.Rate
					from, to = l.From(), l.To()
				}
			}
		}
	}
	res.Link = [2]string{in.G.Name(from), in.G.Name(to)}

	for _, st := range runs {
		link := st.h.Net.Link(from, to)
		s := Fig6Series{
			Scheme:  st.scheme,
			Samples: sampleTimeline(link.Timeline(), windowStart, sim.Time(cfg.Fig6Interval), cfg.Fig6Samples),
		}
		for _, smp := range s.Samples {
			if smp.Rate > s.Peak {
				s.Peak = smp.Rate
			}
		}
		s.OverloadTicks = st.h.Net.TotalOverloadTicks()
		for _, id := range in.G.Nodes() {
			s.Drops += st.h.Net.Switch(id).Dropped()
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}

// sampleTimeline converts a rate-step timeline into per-interval average
// rates: exactly the byte-counter-delta measurement, evaluated offline.
func sampleTimeline(points []emu.RatePoint, start, interval sim.Time, count int) []controller.Sample {
	integrate := func(a, b sim.Time) float64 {
		total := 0.0
		var rate emu.Rate
		prev := a
		for _, p := range points {
			if p.At <= a {
				rate = p.Rate
				continue
			}
			if p.At >= b {
				break
			}
			total += float64(rate) * float64(p.At-prev)
			rate = p.Rate
			prev = p.At
		}
		total += float64(rate) * float64(b-prev)
		return total
	}
	out := make([]controller.Sample, 0, count)
	for i := 0; i < count; i++ {
		a := start + sim.Time(i)*interval
		b := a + interval
		out = append(out, controller.Sample{At: b, Rate: integrate(a, b) / float64(interval)})
	}
	return out
}

// Table renders the series side by side: one row per sampling instant.
func (r *Fig6Result) Table() *metrics.Table {
	t := &metrics.Table{Header: []string{"time"}}
	for _, s := range r.Series {
		t.Header = append(t.Header, s.Scheme+"_mbps")
	}
	if len(r.Series) == 0 {
		return t
	}
	for i := range r.Series[0].Samples {
		row := []string{fmt.Sprintf("%d", r.Series[0].Samples[i].At)}
		for _, s := range r.Series {
			row = append(row, fmt.Sprintf("%.1f", s.Samples[i].Rate))
		}
		t.AddRow(row...)
	}
	return t
}

// Summary renders peak rates and ground-truth overload per scheme.
func (r *Fig6Result) Summary() *metrics.Table {
	t := &metrics.Table{Header: []string{"scheme", "peak_mbps", "capacity", "overload_ticks", "drops"}}
	for _, s := range r.Series {
		t.AddRowf(s.Scheme, s.Peak, topo.EmulationCapacityMbps, int64(s.OverloadTicks), s.Drops)
	}
	return t
}
