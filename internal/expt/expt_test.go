package expt

import (
	"strings"
	"testing"

	"github.com/chronus-sdn/chronus/internal/topo"
)

// The experiment tests assert the qualitative shapes the paper reports, at
// Quick scale: who wins, roughly by how much, and that every table renders.

func TestFig6Shapes(t *testing.T) {
	cfg := Quick(1)
	res, err := Fig6Bandwidth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(res.Series))
	}
	byName := map[string]Fig6Series{}
	for _, s := range res.Series {
		byName[s.Scheme] = s
	}
	// Chronus and TP stay within capacity; OR exceeds it (the paper's
	// ~600 Mbps spike on a 500 Mbps link).
	if byName["chronus"].OverloadTicks != 0 || byName["chronus"].Drops != 0 {
		t.Fatalf("chronus violated: %+v", byName["chronus"])
	}
	if byName["tp"].OverloadTicks != 0 || byName["tp"].Drops != 0 {
		t.Fatalf("tp violated: %+v", byName["tp"])
	}
	if byName["or"].OverloadTicks == 0 {
		t.Fatal("or run showed no overload; the figure would be vacuous")
	}
	if byName["or"].Peak <= float64(topo.EmulationCapacityMbps) {
		t.Fatalf("or peak %.1f did not exceed capacity on the monitored link %v", byName["or"].Peak, res.Link)
	}
	if got := res.Table().String(); !strings.Contains(got, "chronus_mbps") {
		t.Fatalf("table missing columns:\n%s", got)
	}
	if got := res.Summary().CSV(); !strings.Contains(got, "or,") {
		t.Fatalf("summary CSV malformed:\n%s", got)
	}
}

func TestQualityShapes(t *testing.T) {
	cfg := Quick(2)
	f7, f8, err := EvaluateQuality(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f7.Chronus) != len(cfg.Sizes) {
		t.Fatalf("points = %d", len(f7.Chronus))
	}
	for i := range cfg.Sizes {
		c, o := f7.Chronus[i], f7.OR[i]
		// Chronus is congestion-free far more often than OR at every size.
		if c.CongestionFreePct <= o.CongestionFreePct {
			t.Fatalf("size %d: chronus %.1f%% <= or %.1f%%", c.N, c.CongestionFreePct, o.CongestionFreePct)
		}
		// Fig. 8: Chronus congests far fewer time-extended links.
		if f8.Chronus[i].MeanCongestedLinks >= f8.OR[i].MeanCongestedLinks {
			t.Fatalf("size %d: chronus links %.2f >= or %.2f", c.N,
				f8.Chronus[i].MeanCongestedLinks, f8.OR[i].MeanCongestedLinks)
		}
	}
	// At the largest size, Chronus stays in the paper's band (>50%
	// congestion-free) while OR collapses (<20%).
	last := len(cfg.Sizes) - 1
	if f7.Chronus[last].CongestionFreePct < 50 {
		t.Fatalf("chronus at n=%d only %.1f%% congestion-free", cfg.Sizes[last], f7.Chronus[last].CongestionFreePct)
	}
	if f7.OR[last].CongestionFreePct > 20 {
		t.Fatalf("or at n=%d unexpectedly high: %.1f%%", cfg.Sizes[last], f7.OR[last].CongestionFreePct)
	}
	if f7.Table().String() == "" || f8.Table().String() == "" {
		t.Fatal("empty tables")
	}
	// The runtime-audit cross-check: sampled executions exist at every
	// size, and the trace auditor's verdict always matches the analytic
	// validator's (clean Chronus schedules audit clean, flagged one-shots
	// audit flagged).
	if len(f7.Audit) != len(cfg.Sizes) {
		t.Fatalf("audit points = %d, want %d", len(f7.Audit), len(cfg.Sizes))
	}
	for _, p := range f7.Audit {
		if p.Checks == 0 {
			t.Fatalf("size %d: no audited executions", p.N)
		}
		if p.Agree != p.Checks {
			t.Fatalf("size %d: auditor and validator disagree on %d of %d executions",
				p.N, p.Checks-p.Agree, p.Checks)
		}
	}
	if h := f7.Table().Header; h[len(h)-2] != "audit_checks" || h[len(h)-1] != "audit_agree" {
		t.Fatalf("fig7 header missing audit columns: %v", h)
	}
}

func TestFig9Shapes(t *testing.T) {
	cfg := Quick(3)
	res, err := Fig9RuleOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		// The paper reports over 60% rule savings versus two-phase.
		if p.SavingsPct < 55 {
			t.Fatalf("n=%d: savings %.1f%% below 55%%", p.N, p.SavingsPct)
		}
		if p.Chronus.Max <= p.Chronus.Min {
			t.Fatalf("n=%d: degenerate box plot %+v", p.N, p.Chronus)
		}
		if p.TPMean <= p.Chronus.Mean {
			t.Fatalf("n=%d: TP cheaper than chronus", p.N)
		}
	}
	// TP grows faster than Chronus with size.
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.TPMean-first.TPMean <= last.Chronus.Mean-first.Chronus.Mean {
		t.Fatal("TP did not grow faster than Chronus")
	}
}

func TestFig10Shapes(t *testing.T) {
	cfg := Quick(4)
	res, err := Fig10RunningTime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		// Chronus completes while the exact searches burn their budgets.
		if p.OPTBudget == 0 {
			t.Fatalf("n=%d: OPT never hit its budget", p.N)
		}
		if p.Chronus <= 0 {
			t.Fatalf("n=%d: chronus time not measured", p.N)
		}
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}

func TestFig11Shapes(t *testing.T) {
	cfg := Quick(5)
	res, err := Fig11UpdateTimeCDF(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved == 0 {
		t.Fatal("no instances solved")
	}
	// OPT's median update time never exceeds Chronus's (it is optimal or a
	// better-seeded incumbent).
	if res.OPT.Inverse(0.5) > res.Chronus.Inverse(0.5) {
		t.Fatalf("OPT median %.1f > chronus median %.1f", res.OPT.Inverse(0.5), res.Chronus.Inverse(0.5))
	}
	// Near-optimality: chronus's 90th percentile stays within 2x OPT's.
	if res.Chronus.Inverse(0.9) > 2*res.OPT.Inverse(0.9)+4 {
		t.Fatalf("chronus p90 %.1f far beyond OPT p90 %.1f", res.Chronus.Inverse(0.9), res.OPT.Inverse(0.9))
	}
	if res.Table().String() == "" {
		t.Fatal("empty table")
	}
}

func TestTable2(t *testing.T) {
	cfg := Quick(6)
	res, err := Table2FlowTables(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := res.Source.String()
	dst := res.Dest.String()
	if !strings.Contains(src, "10.0.1.0/24") || !strings.Contains(src, "output:") {
		t.Fatalf("source table:\n%s", src)
	}
	if !strings.Contains(dst, "output:host") {
		t.Fatalf("dest table must deliver to hosts:\n%s", dst)
	}
}

func TestAblationClockSkewShape(t *testing.T) {
	cfg := Quick(7)
	points, err := AblationClockSkew(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if points[0].SyncErrorNs != 0 || points[0].Violated != 0 {
		t.Fatalf("perfect clocks violated: %+v", points[0])
	}
	// Microsecond-accurate clocks (the paper's premise) stay safe.
	if points[1].SyncErrorNs != 1000 || points[1].Violated != 0 {
		t.Fatalf("1µs clocks violated: %+v", points[1])
	}
	// Some sufficiently coarse level must violate, otherwise the premise
	// would be untestable.
	worst := points[len(points)-1]
	if worst.Violated == 0 {
		t.Fatalf("even %dns sync error never violated", worst.SyncErrorNs)
	}
	if ClockSkewTable(points).String() == "" {
		t.Fatal("empty table")
	}
}

func TestAblationAcceptanceModeShape(t *testing.T) {
	cfg := Quick(8)
	cfg.Sizes = []int{10, 20}
	cfg.InstancesPerRun = 10
	points, err := AblationAcceptanceMode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.ExactSolved == 0 || p.FastSolved == 0 {
			t.Fatalf("n=%d: nothing solved: %+v", p.N, p)
		}
	}
	if ModeTable(points).String() == "" {
		t.Fatal("empty table")
	}
}

func TestAblationExecutionModeShape(t *testing.T) {
	cfg := Quick(9)
	points, err := AblationExecutionMode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	timed, paced := points[0], points[1]
	if timed.Scheme != "timed" || paced.Scheme != "barrier-paced" {
		t.Fatalf("unexpected order: %+v", points)
	}
	// The timed execution never violates (it realizes the proven schedule).
	if timed.OverloadTicks != 0 || timed.Drops != 0 {
		t.Fatalf("timed execution violated: %+v", timed)
	}
	if ExecModeTable(points).String() == "" {
		t.Fatal("empty table")
	}
}
