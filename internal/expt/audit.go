package expt

import (
	"github.com/chronus-sdn/chronus/internal/audit"
	"github.com/chronus-sdn/chronus/internal/controller"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/emu"
	"github.com/chronus-sdn/chronus/internal/obs"
	"github.com/chronus-sdn/chronus/internal/sim"
)

// auditHeadroom is how many ticks past "now" a schedule is shifted
// before execution, leaving room for the seeded control latency of the
// timed FlowMods (mirrors cmd/mutp's trace headroom).
const auditHeadroom = 50

// auditedExecution executes schedule s for instance in on a fresh
// emulated testbed with a deterministic tracer attached, and returns the
// runtime auditor's report over the recorded events. The testbed's only
// randomness is the controller's seeded latency model, so for a fixed
// seed the report is identical run to run — the audit columns of Fig. 7
// stay byte-deterministic at every worker count.
func auditedExecution(in *dynflow.Instance, s *dynflow.Schedule, seed int64) (*audit.Report, error) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TracerOptions{})
	tb := controller.NewHarness(in.G)
	tb.Net.SetObs(reg, tracer)
	ctl := controller.New(tb, controller.Options{Seed: seed, Obs: reg, Trace: tracer})
	ctl.AttachAll(nil)

	flow := controller.FlowSpec{Name: "f", Tag: 0, Path: in.Init, Rate: emu.Rate(in.Demand)}
	if err := ctl.Provision(flow); err != nil {
		return nil, err
	}
	tb.AdvanceBy(auditHeadroom)

	start := dynflow.Tick(tb.Now()) + auditHeadroom
	shifted := dynflow.NewSchedule(start)
	for v, tv := range s.Times {
		shifted.Set(v, start+(tv-s.Start))
	}
	if err := ctl.ExecuteTimed(in, shifted, flow); err != nil {
		return nil, err
	}
	drain := sim.Time(in.Init.Delay(in.G)+in.Fin.Delay(in.G)) + 10
	tb.AdvanceTo(sim.Time(shifted.End()) + drain)

	a := audit.New()
	a.Feed(tracer.Events(0)...)
	return a.Report(), nil
}

// oneShotSchedule flips every switch of the update set at once — the
// naive baseline whose in-flight transients the auditor must flag.
func oneShotSchedule(in *dynflow.Instance) *dynflow.Schedule {
	s := dynflow.NewSchedule(0)
	for _, v := range in.UpdateSet() {
		s.Set(v, 0)
	}
	return s
}
