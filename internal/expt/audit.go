package expt

import (
	"github.com/chronus-sdn/chronus/internal/audit"
	"github.com/chronus-sdn/chronus/internal/controller"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/emu"
	"github.com/chronus-sdn/chronus/internal/obs"
	"github.com/chronus-sdn/chronus/internal/sim"
)

// auditHeadroom is how many ticks past "now" a schedule is shifted
// before execution, leaving room for the seeded control latency of the
// timed FlowMods (mirrors cmd/mutp's trace headroom).
const auditHeadroom = 50

// auditedExecution executes schedule s for the context's instance on a
// fresh emulated testbed with a deterministic tracer attached, and returns
// the runtime auditor's report over the recorded events. The drain horizon
// comes from the shared instance context instead of being rederived per
// execution. The testbed's only randomness is the controller's seeded
// latency model, so for a fixed seed the report is identical run to run —
// the audit columns of Fig. 7 stay byte-deterministic at every worker
// count.
func auditedExecution(ctx *instCtx, s *dynflow.Schedule, seed int64) (*audit.Report, error) {
	in := ctx.in
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TracerOptions{})
	tb := controller.NewHarness(in.G)
	tb.Net.SetObs(reg, tracer)
	ctl := controller.New(tb, controller.Options{Seed: seed, Obs: reg, Trace: tracer})
	ctl.AttachAll(nil)

	flow := controller.FlowSpec{Name: "f", Tag: 0, Path: in.Init, Rate: emu.Rate(in.Demand)}
	if err := ctl.Provision(flow); err != nil {
		return nil, err
	}
	tb.AdvanceBy(auditHeadroom)

	start := dynflow.Tick(tb.Now()) + auditHeadroom
	shifted := shiftSchedule(s, start)
	if err := ctl.ExecuteTimed(in, shifted, flow); err != nil {
		return nil, err
	}
	drain := sim.Time(ctx.pathDelay) + 10
	tb.AdvanceTo(sim.Time(shifted.End()) + drain)

	a := audit.New()
	a.Feed(tracer.Events(0)...)
	return a.Report(), nil
}
