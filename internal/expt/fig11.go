package expt

import (
	"errors"
	"fmt"

	"github.com/chronus-sdn/chronus/internal/metrics"
	"github.com/chronus-sdn/chronus/internal/scheme"
)

// Fig11Result reproduces Fig. 11: the CDF of the total update time (the
// schedule makespan, in time units) at a fixed switch count, for Chronus
// and for OPT. Instances that neither scheme can solve congestion-free are
// excluded (they have no update time), as in the paper.
type Fig11Result struct {
	N        int
	Chronus  *metrics.CDF
	OPT      *metrics.CDF
	Solved   int
	Excluded int
	// OPTBudgetHits counts instances where OPT returned its incumbent
	// after exhausting the node budget (its point is then an upper bound).
	OPTBudgetHits int
}

// fig11Sample is one instance's outcome.
type fig11Sample struct {
	solved, budgetHit bool
	chronus, opt      float64
}

// fig11Cast pairs the exact-mode greedy against the budgeted exact search;
// an instance enters the CDFs only when every cast scheme produced a timed
// schedule.
func fig11Cast(cfg Config) ([]schemeRun, error) {
	return resolveCast([]schemeRun{
		{name: "chronus"},
		{name: "opt", opts: scheme.Options{Budget: scheme.Budget{MaxNodes: cfg.OPTNodes}}},
	})
}

// Fig11UpdateTimeCDF computes update-time distributions over
// cfg.CDFInstances random instances with cfg.CDFSize switches. Each
// instance is an independent task with its own rngFor generator (keyed by
// size and instance index) and samples merge in instance order, so the
// CDFs are identical at every cfg.Procs.
func Fig11UpdateTimeCDF(cfg Config) (*Fig11Result, error) {
	res := &Fig11Result{N: cfg.CDFSize}
	cast, err := fig11Cast(cfg)
	if err != nil {
		return nil, err
	}
	samples, err := fanout(cfg, cfg.CDFInstances, func(k int) (fig11Sample, error) {
		var s fig11Sample
		rng := rngFor(cfg, "fig11", int64(cfg.CDFSize)*1_000_000+int64(k))
		ctx := newInstCtx(rng, instanceParams(cfg.CDFSize))
		makespans := make(map[string]float64, len(cast))
		budgetHit := false
		for _, r := range cast {
			cres, err := r.s.Solve(ctx.in, r.opts)
			if err != nil {
				if errors.Is(err, scheme.ErrInfeasible) {
					return s, nil // excluded: no congestion-free update time
				}
				return s, err
			}
			if cres.Schedule == nil {
				return s, nil // budget exhausted with no incumbent: excluded
			}
			makespans[r.name] = float64(cres.Schedule.Makespan())
			if cres.Diagnostics["budget_exhausted"] > 0 {
				budgetHit = true
			}
		}
		s.solved = true
		s.budgetHit = budgetHit
		s.chronus = makespans["chronus"]
		s.opt = makespans["opt"]
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	var chronus, optTimes []float64
	for _, s := range samples {
		if !s.solved {
			res.Excluded++
			continue
		}
		res.Solved++
		if s.budgetHit {
			res.OPTBudgetHits++
		}
		chronus = append(chronus, s.chronus)
		optTimes = append(optTimes, s.opt)
	}
	res.Chronus = metrics.NewCDF(chronus)
	res.OPT = metrics.NewCDF(optTimes)
	return res, nil
}

// Table renders the two CDFs on a shared grid of update times.
func (r *Fig11Result) Table() *metrics.Table {
	t := &metrics.Table{Header: []string{"time_units", "chronus_cdf", "opt_cdf"}}
	maxX := 0.0
	for _, pts := range [][][2]float64{r.Chronus.Points(), r.OPT.Points()} {
		for _, p := range pts {
			if p[0] > maxX {
				maxX = p[0]
			}
		}
	}
	for x := 0.0; x <= maxX; x++ {
		t.AddRow(
			fmt.Sprintf("%.0f", x),
			fmt.Sprintf("%.3f", r.Chronus.At(x)),
			fmt.Sprintf("%.3f", r.OPT.At(x)),
		)
	}
	return t
}
