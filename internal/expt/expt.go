// Package expt is the evaluation harness: one generator per table and
// figure of the paper's evaluation section (Table II, Figures 6-11), plus
// the ablations DESIGN.md calls out (clock skew, greedy acceptance mode,
// execution mode). Each generator is deterministic under its Config seed
// and returns both raw data and a rendered metrics.Table with the same rows
// or series the paper reports; cmd/experiments prints them and
// bench_test.go wraps them as benchmarks.
//
// The generators fan their independent (size, run) tasks out over
// Config.Procs workers through internal/par; every task derives its own
// RNG via rngFor and results merge in fixed task order, so all tables
// except wall-clock timing columns are byte-identical at every worker
// count (see the determinism regression test).
package expt

import (
	"context"
	"math/rand"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/par"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// Config scales the experiment suite. Default matches the paper's setup;
// Quick shrinks everything for tests and benchmarks.
type Config struct {
	Seed int64

	// Procs bounds the worker count of the parallel fan-out: every
	// generator dispatches its independent per-(size, run) tasks through
	// internal/par, each task deriving its own RNG through rngFor, and
	// merges results in deterministic task order — so tables are
	// byte-identical at every Procs value. 0 means runtime.GOMAXPROCS(0);
	// 1 is the serial reference path.
	Procs int

	// Sizes are the switch counts of the quality experiments
	// (Figs. 7, 8, 9; paper: 10..60 step 10).
	Sizes []int
	// Runs is the number of independent runs per size (paper: >= 30).
	Runs int
	// InstancesPerRun is the number of update instances compared per run
	// (paper: 50).
	InstancesPerRun int
	// OPTRuns caps how many of the runs also evaluate OPT, whose
	// branch-and-bound cost dominates; the paper's OPT line is equally a
	// budgeted branch and bound.
	OPTRuns int
	// OPTNodes is OPT's node budget per instance.
	OPTNodes int

	// ORRoundWidth is the tick width of one OR round when replaying OR on
	// the timed validator (the intra-round asynchrony window).
	ORRoundWidth dynflow.Tick

	// BigSizes are the Fig. 10 switch counts (paper: 1000..6000).
	BigSizes []int
	// BigInstances is the number of instances timed per big size.
	BigInstances int
	// BigNodes is the node budget for OR and OPT in Fig. 10 and
	// BigTimeoutSec the wall-clock limit per instance; exceeding either
	// reproduces the paper's "does not complete within the limit"
	// behaviour.
	BigNodes      int
	BigTimeoutSec int

	// CDFSize and CDFInstances configure Fig. 11 (paper: 40 switches).
	CDFSize      int
	CDFInstances int

	// Fig6Samples and Fig6Interval configure the bandwidth time series.
	Fig6Samples  int
	Fig6Interval int64

	// SoakUpdates is how many tenant updates the admission-pipeline soak
	// drives through one engine (all enqueued before the first wave, so
	// the peak in-flight count equals it).
	SoakUpdates int
	// SoakPods and SoakPodSize shape the soak topology: SoakPods
	// link-disjoint random pods of SoakPodSize switches merged into one
	// graph. Same-pod updates conflict; cross-pod updates are disjoint.
	SoakPods    int
	SoakPodSize int
	// SoakAudits caps how many admitted schedules the soak additionally
	// executes on an emulated testbed with the runtime auditor attached.
	SoakAudits int
	// SoakRepeats is how many rounds the disjoint-throughput comparison
	// (conflict-graph pipeline vs one serialized joint batch) averages.
	SoakRepeats int
}

// Default returns the paper-scale configuration.
func Default(seed int64) Config {
	return Config{
		Seed:            seed,
		Sizes:           []int{10, 20, 30, 40, 50, 60},
		Runs:            10,
		InstancesPerRun: 50,
		OPTRuns:         2,
		OPTNodes:        400,
		ORRoundWidth:    2,
		BigSizes:        []int{1000, 2000, 3000, 4000, 5000, 6000},
		BigInstances:    2,
		BigNodes:        600,
		BigTimeoutSec:   20,
		CDFSize:         40,
		CDFInstances:    200,
		Fig6Samples:     60,
		Fig6Interval:    20,
		SoakUpdates:     2500,
		SoakPods:        8,
		SoakPodSize:     5,
		SoakAudits:      10,
		SoakRepeats:     3,
	}
}

// Quick returns a reduced configuration for tests and benchmarks.
func Quick(seed int64) Config {
	return Config{
		Seed:            seed,
		Sizes:           []int{10, 20, 30},
		Runs:            3,
		InstancesPerRun: 10,
		OPTRuns:         1,
		OPTNodes:        150,
		ORRoundWidth:    2,
		BigSizes:        []int{200, 400},
		BigInstances:    1,
		BigNodes:        150,
		BigTimeoutSec:   2,
		CDFSize:         20,
		CDFInstances:    30,
		Fig6Samples:     60,
		Fig6Interval:    20,
		SoakUpdates:     300,
		SoakPods:        4,
		SoakPodSize:     5,
		SoakAudits:      3,
		SoakRepeats:     1,
	}
}

// instanceParams is the generator profile of the quality experiments
// (Figs. 7, 8, 9, 11): the initial route is the fixed line over all
// switches and the final route is random, per the paper's simulation setup.
func instanceParams(n int) topo.RandomParams {
	return topo.DefaultRandomParams(n)
}

// bigParams is the Fig. 10 profile: random routing with a shallower final
// path so instances remain schedulable at thousands of switches (the
// running-time figure measures scale, not adversarial hardness).
func bigParams(n int) topo.RandomParams {
	p := topo.DefaultRandomParams(n)
	p.FinalInclude = 0.3
	p.MaxDelay = 2
	return p
}

// rngFor derives a deterministic sub-generator per experiment stage.
// Parallel tasks must never share a *rand.Rand: each task derives its own
// generator here, keyed by (stage, task), which is what makes the fan-out
// reproducible at any worker count.
func rngFor(cfg Config, stage string, k int64) *rand.Rand {
	h := cfg.Seed
	for _, c := range stage {
		h = h*131 + int64(c)
	}
	return rand.New(rand.NewSource(h*1_000_003 + k))
}

// fanout runs n independent experiment tasks through the bounded pool and
// returns the results in task order (see par.Map's determinism contract).
func fanout[T any](cfg Config, n int, f func(i int) (T, error)) ([]T, error) {
	return par.Map(context.Background(), cfg.Procs, n, func(_ context.Context, i int) (T, error) {
		return f(i)
	})
}
