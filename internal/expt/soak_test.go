package expt

import "testing"

func TestSoakQuickCleanAndDeterministic(t *testing.T) {
	cfg := Quick(7)
	res, err := Soak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations != 0 {
		t.Fatalf("%d jointly-invalid held sets admitted", res.Violations)
	}
	if res.Overcommits != 0 {
		t.Fatalf("ledger overcommit self-check fired %d times", res.Overcommits)
	}
	if res.AuditViolations != 0 {
		t.Fatalf("%d audit violations across %d audited executions", res.AuditViolations, res.Audited)
	}
	if res.Audited == 0 {
		t.Fatal("no admitted schedule was audited")
	}
	if res.MaxInFlight != cfg.SoakUpdates {
		t.Fatalf("peak in-flight %d, want all %d enqueued before the first wave", res.MaxInFlight, cfg.SoakUpdates)
	}
	if got := res.Done + res.Refused + res.Failed; got != cfg.SoakUpdates {
		t.Fatalf("terminal states sum to %d of %d updates", got, cfg.SoakUpdates)
	}
	if res.Done == 0 || res.Refused == 0 {
		t.Fatalf("degenerate soak: done=%d refused=%d — the mix should exercise both paths", res.Done, res.Refused)
	}

	// The deterministic columns must not depend on the worker count.
	serial := cfg
	serial.Procs = 1
	res1, err := Soak(serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := cfg
	parallel.Procs = 8
	res8, err := Soak(parallel)
	if err != nil {
		t.Fatal(err)
	}
	norm := func(r *SoakResult) SoakResult {
		c := *r
		c.PipelineSeconds, c.BaselineSeconds, c.Speedup = 0, 0, 0
		return c
	}
	if norm(res1) != norm(res8) {
		t.Fatalf("soak outcome differs across worker counts:\nprocs=1: %+v\nprocs=8: %+v", norm(res1), norm(res8))
	}
}
