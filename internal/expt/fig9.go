package expt

import (
	"github.com/chronus-sdn/chronus/internal/baseline"
	"github.com/chronus-sdn/chronus/internal/metrics"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// Fig9Point is the rule-space comparison at one switch count: a box-plot
// summary of Chronus's resident rules at the update peak against the
// two-phase mean (the paper plots Chronus as a box plot and TP as points,
// noting TP leaves the chart beyond 40 switches).
type Fig9Point struct {
	N          int
	Chronus    metrics.Summary
	TPMean     float64
	SavingsPct float64
}

// Fig9Result reproduces Fig. 9.
type Fig9Result struct {
	Points []Fig9Point
}

// Fig9RuleOverhead accounts flow-table usage per update instance under
// Chronus (rules modified in place, fresh installs only on final-only
// switches) and two-phase commit (both versions resident plus per-host
// stamping entries at the ingress, per Table II's tagged host rules).
// The ingress hosts one prefix per switch, as in pod-style deployments.
func Fig9RuleOverhead(cfg Config) (*Fig9Result, error) {
	res := &Fig9Result{}
	for _, n := range cfg.Sizes {
		rng := rngFor(cfg, "fig9", int64(n))
		var chronus []float64
		var tpSum float64
		count := cfg.Runs * cfg.InstancesPerRun
		params := instanceParams(n)
		// Randomize the initial path too so the box plot reflects topology
		// diversity (final-only switches need fresh installs).
		params.InitInclude = 0.75
		for k := 0; k < count; k++ {
			in := topo.RandomInstance(rng, params)
			acc := baseline.CountRules(in, n)
			chronus = append(chronus, float64(acc.ChronusPeak))
			tpSum += float64(acc.TPPeak)
		}
		tpMean := tpSum / float64(count)
		sum := metrics.Summarize(chronus)
		res.Points = append(res.Points, Fig9Point{
			N:          n,
			Chronus:    sum,
			TPMean:     tpMean,
			SavingsPct: 100 * (1 - sum.Mean/tpMean),
		})
	}
	return res, nil
}

// Table renders Fig. 9 with box-plot columns for Chronus.
func (r *Fig9Result) Table() *metrics.Table {
	t := &metrics.Table{Header: []string{
		"switches", "chronus_min", "chronus_q1", "chronus_med", "chronus_q3", "chronus_max", "chronus_mean", "tp_mean", "savings_pct",
	}}
	for _, p := range r.Points {
		t.AddRowf(p.N, p.Chronus.Min, p.Chronus.Q1, p.Chronus.Median, p.Chronus.Q3, p.Chronus.Max, p.Chronus.Mean, p.TPMean, p.SavingsPct)
	}
	return t
}
