package expt

import (
	"github.com/chronus-sdn/chronus/internal/baseline"
	"github.com/chronus-sdn/chronus/internal/metrics"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// Fig9Point is the rule-space comparison at one switch count: a box-plot
// summary of Chronus's resident rules at the update peak against the
// two-phase mean (the paper plots Chronus as a box plot and TP as points,
// noting TP leaves the chart beyond 40 switches).
type Fig9Point struct {
	N          int
	Chronus    metrics.Summary
	TPMean     float64
	SavingsPct float64
}

// Fig9Result reproduces Fig. 9.
type Fig9Result struct {
	Points []Fig9Point
}

// fig9Tally is one (size, run) task's samples.
type fig9Tally struct {
	chronus []float64
	tpSum   float64
}

// Fig9RuleOverhead accounts flow-table usage per update instance under
// Chronus (rules modified in place, fresh installs only on final-only
// switches) and two-phase commit (both versions resident plus per-host
// stamping entries at the ingress, per Table II's tagged host rules).
// The ingress hosts one prefix per switch, as in pod-style deployments.
// Each (size, run) block of InstancesPerRun instances is an independent
// task with its own rngFor generator; per-size points merge the blocks in
// run order, so the table is the same at every cfg.Procs.
func Fig9RuleOverhead(cfg Config) (*Fig9Result, error) {
	res := &Fig9Result{}
	tallies, err := fanout(cfg, len(cfg.Sizes)*cfg.Runs, func(i int) (fig9Tally, error) {
		n, run := cfg.Sizes[i/cfg.Runs], i%cfg.Runs
		rng := rngFor(cfg, "fig9", int64(n)*1000+int64(run))
		params := instanceParams(n)
		// Randomize the initial path too so the box plot reflects topology
		// diversity (final-only switches need fresh installs).
		params.InitInclude = 0.75
		var t fig9Tally
		for k := 0; k < cfg.InstancesPerRun; k++ {
			in := topo.RandomInstance(rng, params)
			acc := baseline.CountRules(in, n)
			t.chronus = append(t.chronus, float64(acc.ChronusPeak))
			t.tpSum += float64(acc.TPPeak)
		}
		return t, nil
	})
	if err != nil {
		return nil, err
	}
	for si, n := range cfg.Sizes {
		var chronus []float64
		var tpSum float64
		for run := 0; run < cfg.Runs; run++ {
			t := tallies[si*cfg.Runs+run]
			chronus = append(chronus, t.chronus...)
			tpSum += t.tpSum
		}
		count := cfg.Runs * cfg.InstancesPerRun
		tpMean := tpSum / float64(count)
		sum := metrics.Summarize(chronus)
		res.Points = append(res.Points, Fig9Point{
			N:          n,
			Chronus:    sum,
			TPMean:     tpMean,
			SavingsPct: 100 * (1 - sum.Mean/tpMean),
		})
	}
	return res, nil
}

// Table renders Fig. 9 with box-plot columns for Chronus.
func (r *Fig9Result) Table() *metrics.Table {
	t := &metrics.Table{Header: []string{
		"switches", "chronus_min", "chronus_q1", "chronus_med", "chronus_q3", "chronus_max", "chronus_mean", "tp_mean", "savings_pct",
	}}
	for _, p := range r.Points {
		t.AddRowf(p.N, p.Chronus.Min, p.Chronus.Q1, p.Chronus.Median, p.Chronus.Q3, p.Chronus.Max, p.Chronus.Mean, p.TPMean, p.SavingsPct)
	}
	return t
}
