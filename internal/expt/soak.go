package expt

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/chronus-sdn/chronus/internal/admit"
	"github.com/chronus-sdn/chronus/internal/audit"
	"github.com/chronus-sdn/chronus/internal/batch"
	"github.com/chronus-sdn/chronus/internal/controller"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/emu"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/metrics"
	"github.com/chronus-sdn/chronus/internal/obs"
	"github.com/chronus-sdn/chronus/internal/sim"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// soakPod is one link-disjoint region of the soak topology: a random
// instance re-rooted into the shared graph, whose two paths soak
// updates migrate between (in either direction).
type soakPod struct {
	init, fin graph.Path
	demand    graph.Capacity
}

// SoakResult is the admission-pipeline soak: one engine on a pod-merged
// topology, Config.SoakUpdates tenant updates all enqueued up front and
// drained wave by wave with capacity holds opening and closing between
// waves. All columns except the wall-clock throughput arm are
// deterministic under the config seed.
type SoakResult struct {
	Pods, Switches, Updates int

	// Terminal-state tally after the full drain.
	Done, Refused, Failed int
	HoldsCompleted        int
	// MaxInFlight is the peak count of registered, non-terminal updates
	// (every update is enqueued before the first wave plans).
	MaxInFlight int
	Waves       uint64

	// Violations counts joint-validation failures over the sets of
	// concurrently-held schedules, checked after every wave; Overcommits
	// is the ledger's own chronus_admit_ledger_overcommit_total. Both
	// must be zero.
	Violations  int
	Overcommits int64

	// Audited schedules were additionally executed on an emulated
	// testbed with the runtime auditor attached; AuditViolations sums
	// the auditors' verdicts and must be zero.
	Audited         int
	AuditViolations int

	// The disjoint-throughput comparison: SoakRepeats rounds of one
	// update per pod, planned through the engine's conflict-graph
	// pipeline versus composed as one serialized joint batch (the
	// pre-pipeline path, where every update joins a single admitted set
	// and each admission re-validates the whole set). Wall-clock, so —
	// like Fig. 10's seconds — not byte-deterministic.
	PipelineSeconds float64
	BaselineSeconds float64
	Speedup         float64
}

// soakPodParams shapes each pod: mostly slack capacities so several
// small updates can share a pod, short delays to keep drains cheap.
func soakPodParams(n int) topo.RandomParams {
	p := topo.DefaultRandomParams(n)
	p.Demand = 4
	p.TightFraction = 0.25
	p.MaxDelay = 3
	return p
}

// soakTopology merges Config.SoakPods random instances into one shared
// graph, prefixing node names with the pod index. Pods share no links,
// so cross-pod updates are disjoint by construction.
func soakTopology(cfg Config) (*graph.Graph, []soakPod) {
	g := graph.New()
	pods := make([]soakPod, cfg.SoakPods)
	for p := 0; p < cfg.SoakPods; p++ {
		in := topo.RandomInstance(rngFor(cfg, "soak-pod", int64(p)), soakPodParams(cfg.SoakPodSize))
		remap := make([]graph.NodeID, in.G.NumNodes())
		for _, id := range in.G.Nodes() {
			remap[id] = g.AddNode(fmt.Sprintf("p%d.%s", p, in.G.Name(id)))
		}
		for _, l := range in.G.Links() {
			g.MustAddLink(remap[l.From], remap[l.To], l.Cap, l.Delay)
		}
		rePath := func(path graph.Path) graph.Path {
			out := make(graph.Path, len(path))
			for i, id := range path {
				out[i] = remap[id]
			}
			return out
		}
		pods[p] = soakPod{init: rePath(in.Init), fin: rePath(in.Fin), demand: in.Demand}
	}
	return g, pods
}

// soakRequest draws one tenant update: a random pod, either migration
// direction, a demand within the pod's instance demand, and a spread of
// priorities; every fifth update holds its reservation open across
// waves.
func soakRequest(rng *rand.Rand, pods []soakPod, i int) admit.Request {
	p := rng.Intn(len(pods))
	init, fin := pods[p].init, pods[p].fin
	if rng.Intn(2) == 0 {
		init, fin = fin, init
	}
	return admit.Request{
		Tenant:   fmt.Sprintf("tenant-%d", p%4),
		Flow:     fmt.Sprintf("u%d", i),
		Demand:   1 + graph.Capacity(rng.Intn(int(pods[p].demand))),
		Init:     init,
		Fin:      fin,
		Priority: rng.Intn(3),
		Hold:     i%5 == 0,
	}
}

// soakHold tracks one open capacity hold across waves.
type soakHold struct {
	id   uint64
	wave uint64
}

// Soak drives the admission pipeline at scale: every update is
// submitted before the first wave plans (so the engine holds
// SoakUpdates registered in-flight updates at once), then the queue is
// drained one coalescing window at a time. After each wave the set of
// concurrently-held schedules is re-validated jointly on the real
// graph, and holds older than two waves are completed, crediting the
// ledger for later waves. A sample of admitted schedules is finally
// executed on an emulated testbed under the runtime auditor.
func Soak(cfg Config) (*SoakResult, error) {
	g, pods := soakTopology(cfg)
	reg := obs.NewRegistry()
	var vt int64
	e := admit.New(g, admit.Options{
		QueueCap: cfg.SoakUpdates,
		Procs:    cfg.Procs,
		Obs:      reg,
		Now:      func() int64 { return vt },
	})
	res := &SoakResult{Pods: cfg.SoakPods, Switches: g.NumNodes(), Updates: cfg.SoakUpdates}

	rng := rngFor(cfg, "soak-drive", 0)
	reqs := make(map[uint64]admit.Request, cfg.SoakUpdates)
	var ids []uint64
	for i := 0; i < cfg.SoakUpdates; i++ {
		vt++
		req := soakRequest(rng, pods, i)
		id, err := e.Submit(req)
		if err != nil {
			return nil, fmt.Errorf("soak: submit %d: %w", i, err)
		}
		reqs[id] = req
		ids = append(ids, id)
	}
	if d := e.Snapshot().Depth; d > res.MaxInFlight {
		res.MaxInFlight = d
	}

	var holds []soakHold
	for {
		vt++
		progressed := e.DrainOne()
		snap := e.Snapshot()
		res.Waves = snap.Waves

		// Collect holds that opened this wave and re-validate the whole
		// concurrently-held set against the real capacities.
		known := make(map[uint64]bool, len(holds))
		for _, h := range holds {
			known[h.id] = true
		}
		for _, id := range ids {
			if known[id] {
				continue
			}
			if v, _ := e.View(id); v.State == string(admit.StateExecuting) {
				holds = append(holds, soakHold{id: id, wave: snap.Waves})
			}
		}
		bad, err := soakValidateHolds(g, e, reqs, holds)
		if err != nil {
			return nil, err
		}
		if bad {
			res.Violations++
		}

		// Holds older than two waves complete, crediting their links;
		// once the queue is empty everything outstanding completes.
		keep := holds[:0]
		for _, h := range holds {
			v, _ := e.View(h.id)
			if v.State != string(admit.StateExecuting) {
				continue
			}
			if snap.Waves-h.wave >= 2 || !progressed {
				e.Complete(h.id)
				res.HoldsCompleted++
				continue
			}
			keep = append(keep, h)
		}
		holds = keep
		if !progressed && len(holds) == 0 {
			break
		}
	}

	final := e.Snapshot()
	res.Done = final.States[string(admit.StateDone)]
	res.Refused = final.States[string(admit.StateRefused)]
	res.Failed = final.States[string(admit.StateFailed)]
	res.Overcommits = reg.Counter("chronus_admit_ledger_overcommit_total").Value()
	if u := e.Ledger().Utilization(); u.Holds != 0 || u.ReservedUnits != 0 {
		return nil, fmt.Errorf("soak: ledger dirty after full drain: %+v", u)
	}

	if err := soakAudit(cfg, g, e, reqs, ids, res); err != nil {
		return nil, err
	}
	soakThroughput(cfg, res)
	return res, nil
}

// soakValidateHolds re-validates the currently-held schedules jointly
// on the real graph: the ledger may refuse combinations the validator
// would pass, but must never admit a combination it fails.
func soakValidateHolds(g *graph.Graph, e *admit.Engine, reqs map[uint64]admit.Request, holds []soakHold) (bool, error) {
	var joint []dynflow.FlowUpdate
	for _, h := range holds {
		v, ok := e.View(h.id)
		if !ok || v.State != string(admit.StateExecuting) {
			continue
		}
		s, ok := e.ScheduleOf(h.id)
		if !ok {
			continue
		}
		req := reqs[h.id]
		joint = append(joint, dynflow.FlowUpdate{
			Name: fmt.Sprintf("h%d", h.id),
			In:   &dynflow.Instance{G: g, Demand: req.Demand, Init: req.Init, Fin: req.Fin},
			S:    s,
		})
	}
	if len(joint) == 0 {
		return false, nil
	}
	report, err := dynflow.ValidateJoint(joint)
	if err != nil {
		return false, err
	}
	return !report.OK(), nil
}

// soakAudit executes up to cfg.SoakAudits admitted schedules on a fresh
// emulated testbed each, with the runtime auditor reading the trace.
func soakAudit(cfg Config, g *graph.Graph, e *admit.Engine, reqs map[uint64]admit.Request, ids []uint64, res *SoakResult) error {
	for _, id := range ids {
		if res.Audited >= cfg.SoakAudits {
			break
		}
		v, ok := e.View(id)
		if !ok || v.State != string(admit.StateDone) || len(v.Schedule) == 0 {
			continue
		}
		s, ok := e.ScheduleOf(id)
		if !ok {
			continue
		}
		req := reqs[id]
		in := &dynflow.Instance{G: g, Demand: req.Demand, Init: req.Init, Fin: req.Fin}
		report, err := soakAuditedExecution(in, s, cfg.Seed+int64(id))
		if err != nil {
			return fmt.Errorf("soak: audited execution of update %d: %w", id, err)
		}
		res.Audited++
		res.AuditViolations += report.Violations()
	}
	return nil
}

// soakAuditedExecution runs one schedule on an emulated testbed built
// over the soak graph and returns the runtime auditor's report, exactly
// like the Fig. 7 audit column but on the merged topology.
func soakAuditedExecution(in *dynflow.Instance, s *dynflow.Schedule, seed int64) (*audit.Report, error) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(obs.TracerOptions{})
	tb := controller.NewHarness(in.G)
	tb.Net.SetObs(reg, tracer)
	ctl := controller.New(tb, controller.Options{Seed: seed, Obs: reg, Trace: tracer})
	ctl.AttachAll(nil)

	flow := controller.FlowSpec{Name: "f", Tag: 0, Path: in.Init, Rate: emu.Rate(in.Demand)}
	if err := ctl.Provision(flow); err != nil {
		return nil, err
	}
	tb.AdvanceBy(auditHeadroom)

	start := dynflow.Tick(tb.Now()) + auditHeadroom
	shifted := shiftSchedule(s, start)
	if err := ctl.ExecuteTimed(in, shifted, flow); err != nil {
		return nil, err
	}
	drain := sim.Time(in.Init.Delay(in.G)+in.Fin.Delay(in.G)) + 10
	tb.AdvanceTo(sim.Time(shifted.End()) + drain)

	a := audit.New()
	a.Feed(tracer.Events(0)...)
	return a.Report(), nil
}

// soakThroughput times SoakRepeats rounds of one-update-per-pod — fully
// disjoint — through the conflict-graph pipeline versus the serialized
// baseline that composes all of them as one joint batch (every
// admission re-validating the whole admitted set, as the pre-pipeline
// update path did).
func soakThroughput(cfg Config, res *SoakResult) {
	g, pods := soakTopology(cfg)
	flows := make([]batch.Flow, len(pods))
	reqs := make([]admit.Request, len(pods))
	for p, pod := range pods {
		flows[p] = batch.Flow{Name: fmt.Sprintf("d%d", p), Demand: 1, Init: pod.init, Fin: pod.fin}
		reqs[p] = admit.Request{Tenant: "d", Flow: flows[p].Name, Demand: 1, Init: pod.init, Fin: pod.fin}
	}

	start := time.Now()
	for r := 0; r < cfg.SoakRepeats; r++ {
		e := admit.New(g, admit.Options{QueueCap: len(reqs) + 1, Procs: cfg.Procs})
		for _, req := range reqs {
			if _, err := e.Submit(req); err != nil {
				return
			}
		}
		e.Drain()
	}
	res.PipelineSeconds = time.Since(start).Seconds() / float64(cfg.SoakRepeats)

	start = time.Now()
	for r := 0; r < cfg.SoakRepeats; r++ {
		if _, _, err := batch.SolveEach(g, flows, batch.Options{Scheme: "chronus"}); err != nil {
			return
		}
	}
	res.BaselineSeconds = time.Since(start).Seconds() / float64(cfg.SoakRepeats)
	if res.PipelineSeconds > 0 {
		res.Speedup = res.BaselineSeconds / res.PipelineSeconds
	}
}

// SoakTable renders the soak run; wall-clock columns last.
func SoakTable(r *SoakResult) *metrics.Table {
	t := &metrics.Table{Header: []string{
		"updates", "pods", "switches", "done", "refused", "failed",
		"holds_done", "max_in_flight", "waves", "violations", "overcommits",
		"audited", "audit_violations", "pipeline_ms", "baseline_ms", "speedup",
	}}
	t.AddRowf(r.Updates, r.Pods, r.Switches, r.Done, r.Refused, r.Failed,
		r.HoldsCompleted, r.MaxInFlight, r.Waves, r.Violations, r.Overcommits,
		r.Audited, r.AuditViolations, r.PipelineSeconds*1e3, r.BaselineSeconds*1e3, r.Speedup)
	return t
}
