package expt

import (
	"fmt"
	"math/rand"

	"github.com/chronus-sdn/chronus/internal/baseline"
	"github.com/chronus-sdn/chronus/internal/controller"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/scheme"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// instCtx is the shared per-instance context of the quality and timing
// experiments: the random instance plus the steady-state quantities every
// scheme at that (size, run, instance) point reuses — the update set and
// the two path delays are computed once here instead of once per scheme.
type instCtx struct {
	in *dynflow.Instance
	// updates is |update set|: the switches whose rules change.
	updates int
	// pathDelay is the steady-state end-to-end delay of the initial plus
	// the final path — the drain horizon the audited executions wait out.
	pathDelay graph.Delay
}

// newInstCtx draws one random instance from rng and precomputes its shared
// steady-state context (this also warms the instance's lazy caches, so the
// per-scheme solves that follow race on nothing).
func newInstCtx(rng *rand.Rand, p topo.RandomParams) *instCtx {
	in := topo.RandomInstance(rng, p)
	return &instCtx{
		in:        in,
		updates:   len(in.UpdateSet()),
		pathDelay: in.Init.Delay(in.G) + in.Fin.Delay(in.G),
	}
}

// schemeRun is one entry of an experiment's scheme cast: a registry scheme
// plus the options this experiment hands it. Casts are resolved once per
// task, outside the per-instance loops.
type schemeRun struct {
	name string
	s    scheme.Scheme
	opts scheme.Options
	// sampled restricts evaluation to the first cfg.OPTRuns runs (the
	// budgeted exact searches are too slow for the full population).
	sampled bool
}

// resolveCast looks every cast entry up in the registry.
func resolveCast(cast []schemeRun) ([]schemeRun, error) {
	for i := range cast {
		s, err := scheme.Lookup(cast[i].name)
		if err != nil {
			return nil, err
		}
		cast[i].s = s
	}
	return cast, nil
}

// shiftSchedule re-bases a relative schedule so its first allowed
// activation is start.
func shiftSchedule(s *dynflow.Schedule, start dynflow.Tick) *dynflow.Schedule {
	out := dynflow.NewSchedule(start)
	for v, tv := range s.Times {
		out.Set(v, start+(tv-s.Start))
	}
	return out
}

// executor drives one update strategy onto an emulated testbed: plan (via
// a registry scheme, where planning applies) and execute. The emulation
// experiments iterate executors the way the analytic ones iterate scheme
// casts.
type executor func(in *dynflow.Instance, c *controller.Controller, h *controller.Harness, f controller.FlowSpec) error

// timedExecutor plans with the named registry scheme and executes the
// schedule time-triggered (timed FlowMods), shifted to activate at start.
func timedExecutor(name string, start dynflow.Tick) executor {
	return func(in *dynflow.Instance, c *controller.Controller, h *controller.Harness, f controller.FlowSpec) error {
		res, err := scheme.Solve(name, in, scheme.Options{})
		if err != nil {
			return err
		}
		if res.Schedule == nil {
			return fmt.Errorf("scheme %q produced no timed schedule", name)
		}
		return c.ExecuteTimed(in, shiftSchedule(res.Schedule, start), f)
	}
}

// pacedExecutor plans with the named registry scheme but drives the
// schedule with barrier pacing — one controller round trip per time unit —
// instead of timed FlowMods.
func pacedExecutor(name string) executor {
	return func(in *dynflow.Instance, c *controller.Controller, h *controller.Harness, f controller.FlowSpec) error {
		res, err := scheme.Solve(name, in, scheme.Options{})
		if err != nil {
			return err
		}
		if res.Schedule == nil {
			return fmt.Errorf("scheme %q produced no timed schedule", name)
		}
		return c.ExecuteBarrierPaced(in, shiftSchedule(res.Schedule, 0), f, 1)
	}
}

// roundExecutor plans rounds with the named registry scheme and paces
// them with barriers, width ticks per round.
func roundExecutor(name string, width dynflow.Tick) executor {
	return func(in *dynflow.Instance, c *controller.Controller, h *controller.Harness, f controller.FlowSpec) error {
		res, err := scheme.Solve(name, in, scheme.Options{})
		if err != nil {
			return err
		}
		if res.Rounds == nil {
			return fmt.Errorf("scheme %q produced no rounds", name)
		}
		s := baseline.ORSchedule(res.Rounds, baseline.ORScheduleOptions{Start: 0, RoundWidth: width})
		return c.ExecuteBarrierPaced(in, s, f, 1)
	}
}

// twoPhaseExecutor is the two-phase-commit execution strategy. It has no
// planning scheme: per-packet consistency comes from version stamping, at
// the rule-space cost Fig. 9 quantifies.
func twoPhaseExecutor() executor {
	return func(in *dynflow.Instance, c *controller.Controller, h *controller.Harness, f controller.FlowSpec) error {
		return c.ExecuteTwoPhase(in, f, 1)
	}
}
