package expt

import (
	"fmt"

	"github.com/chronus-sdn/chronus/internal/controller"
	"github.com/chronus-sdn/chronus/internal/emu"
	"github.com/chronus-sdn/chronus/internal/metrics"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// Table2Result reproduces Table II: the flow tables at the source and
// destination switches of the emulation topology, with per-host entries and
// version tags (the source stamps; the destination delivers to hosts).
type Table2Result struct {
	Source, Dest *metrics.Table
}

// Table2FlowTables provisions per-host flows on the emulated network and
// dumps the resulting source and destination flow tables.
func Table2FlowTables(cfg Config) (*Table2Result, error) {
	in := topo.EmulationTopo()
	h := controller.NewHarness(in.G)
	c := controller.New(h, controller.Options{Seed: cfg.Seed})
	c.AttachAll(nil)

	// One flow per host prefix behind the source, all riding the initial
	// route, tagged with the active version (Table II's Tag column).
	const hosts = 3
	const versionTag = 1
	for i := 1; i <= hosts; i++ {
		f := controller.FlowSpec{
			Name: fmt.Sprintf("10.0.%d.0/24", i),
			Tag:  versionTag,
			Path: in.Init,
			Rate: emu.Rate(in.Demand) / hosts,
		}
		if err := c.Provision(f); err != nil {
			return nil, err
		}
	}
	h.AdvanceBy(200)

	dump := func(name string) *metrics.Table {
		t := &metrics.Table{Header: []string{"match_dst", "tag", "action", "bytes"}}
		sw := h.Net.Switch(in.G.Lookup(name))
		for _, r := range sw.DumpRules() {
			t.AddRow(r.Key.Flow, fmt.Sprintf("%d", r.Key.Tag), r.Action, fmt.Sprintf("%.0f", r.Bytes))
		}
		return t
	}
	return &Table2Result{
		Source: dump(in.G.Name(in.Source())),
		Dest:   dump(in.G.Name(in.Dest())),
	}, nil
}
