package expt

import (
	"strings"
	"testing"
)

// TestSkewAdversarySemantics pins the adversary's story on seed 11: the
// zero-error level is clean by all three judges, every past-slack level
// is forecast to WARN before a single update FlowMod fires, and the
// health engine first reaches CRIT on exactly the sweep step where the
// trace auditor first reports a real violation.
func TestSkewAdversarySemantics(t *testing.T) {
	pts, err := SkewAdversary(Quick(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(skewAdvErrorsTicks) {
		t.Fatalf("got %d points, want %d", len(pts), len(skewAdvErrorsTicks))
	}

	// Level 0: perfectly synced clocks — clean across the board.
	base := pts[0]
	if base.ErrorTicks != 0 || base.PreLevel != "OK" || base.PostLevel != "OK" ||
		!base.AuditOK || base.Violations != 0 || base.PredictedMarginMilliTicks != 0 {
		t.Fatalf("zero-error level not clean: %+v", base)
	}

	firstCrit, firstFail := -1, -1
	for i, p := range pts {
		if p.PostLevel == "CRIT" && firstCrit < 0 {
			firstCrit = i
		}
		if !p.AuditOK && firstFail < 0 {
			firstFail = i
		}
		if p.ErrorTicks == 0 {
			continue
		}
		// Every past-slack level must be forecast before execution: the
		// probes alone reveal the injected error, so the engine is WARN
		// with a negative predicted margin while zero FlowMods are late.
		if p.PreLevel != "WARN" {
			t.Errorf("error=%d pre-execution level = %s, want WARN (forecast)", p.ErrorTicks, p.PreLevel)
		}
		if p.PredictedMarginMilliTicks >= 0 {
			t.Errorf("error=%d predicted margin = %d mticks, want < 0", p.ErrorTicks, p.PredictedMarginMilliTicks)
		}
	}
	if firstCrit < 0 || firstFail < 0 {
		t.Fatalf("sweep never escalated: firstCrit=%d firstFail=%d\n%s", firstCrit, firstFail, SkewAdvTable(pts).String())
	}
	// The acceptance pin: health reaches CRIT on the same sweep step
	// where the auditor first reports a violation — no earlier (crying
	// wolf) and no later (missing real damage).
	if firstCrit != firstFail {
		t.Errorf("first CRIT at step %d (error=%d) but first audit FAIL at step %d (error=%d)\n%s",
			firstCrit, pts[firstCrit].ErrorTicks, firstFail, pts[firstFail].ErrorTicks, SkewAdvTable(pts).String())
	}
	esc := pts[firstFail]
	if esc.Violations < 1 || esc.ObservedMarginTicks >= 0 {
		t.Errorf("escalation step lacks evidence: %+v", esc)
	}
	// The largest injected error must be unambiguous by both judges.
	last := pts[len(pts)-1]
	if last.PostLevel != "CRIT" || last.AuditOK || last.Violations < 1 {
		t.Errorf("max-error level = %+v, want CRIT with audit violations", last)
	}
}

// TestSkewAdvTableRendering checks the PASS/FAIL rendering and the
// header contract the CI gate greps for.
func TestSkewAdvTableRendering(t *testing.T) {
	tab := SkewAdvTable([]SkewAdvPoint{
		{ErrorTicks: 0, PreLevel: "OK", PostLevel: "OK", AuditOK: true},
		{ErrorTicks: 8, PredictedMarginMilliTicks: -1500, PreLevel: "WARN", PostLevel: "CRIT",
			ObservedMarginTicks: -2, AuditOK: false, Violations: 3},
	})
	out := tab.String()
	for _, want := range []string{"error_ticks", "predicted_margin_mticks", "pre_level", "post_level", "audit", "PASS", "FAIL", "-1500"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	if !strings.Contains(csv, "8,-1500,WARN,CRIT,-2,FAIL,3") {
		t.Errorf("csv row mismatch:\n%s", csv)
	}
}

// TestSkewAdversaryDeterministicAcrossProcs: the sweep's CSV must be
// byte-identical at any worker count for a fixed seed.
func TestSkewAdversaryDeterministicAcrossProcs(t *testing.T) {
	sc, pc := determinismConfigs()
	ps, err := SkewAdversary(sc)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := SkewAdversary(pc)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTable(t, "skewadv table", SkewAdvTable(ps).String(), SkewAdvTable(pp).String())
	assertSameTable(t, "skewadv csv", SkewAdvTable(ps).CSV(), SkewAdvTable(pp).CSV())
}
