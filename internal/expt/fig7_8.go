package expt

import (
	"errors"
	"math/rand"

	"github.com/chronus-sdn/chronus/internal/baseline"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/metrics"
	"github.com/chronus-sdn/chronus/internal/scheme"
)

// SizePoint aggregates one scheme's outcome at one switch count.
type SizePoint struct {
	N int
	// CongestionFreePct is the percentage of update instances for which
	// the scheme produced a congestion-free update (Fig. 7).
	CongestionFreePct float64
	// MeanCongestedLinks is the average number of congested time-extended
	// link instances per update instance (Fig. 8).
	MeanCongestedLinks float64
	// Instances is the number of instances behind the point.
	Instances int
}

// Fig7Result carries the Fig. 7 percentages per scheme, and Fig8Result the
// congested-link counts; both come from the same instance population, so
// EvaluateQuality computes them together.
type Fig7Result struct {
	Chronus, OPT, OR []SizePoint
	// Audit cross-checks the analytic validator against the runtime
	// auditor, indexed like the scheme slices: per size, how many sampled
	// executions were audited and how often the two verdicts agreed (a
	// clean Chronus schedule must audit clean; a one-shot update the
	// validator flags must be flagged by the auditor too).
	Audit []AuditPoint
}

// AuditPoint is one size's validator-versus-auditor tally.
type AuditPoint struct {
	N      int
	Checks int
	Agree  int
}

// Fig8Result carries the congested time-extended link counts (Fig. 8
// compares Chronus and OR).
type Fig8Result struct {
	Chronus, OR []SizePoint
}

// fig7Cast is the Fig. 7/8 scheme set, resolved from the registry. The
// order is load-bearing twice over: the OR replay consumes rng jitter
// right after the instance draw it belongs to, and the first entry is the
// timed scheme whose sampled executions the runtime audit cross-checks.
func fig7Cast(cfg Config) ([]schemeRun, error) {
	return resolveCast([]schemeRun{
		{name: "chronus", opts: scheme.Options{BestEffort: true}},
		{name: "or"},
		{name: "opt", opts: scheme.Options{Budget: scheme.Budget{MaxNodes: cfg.OPTNodes}}, sampled: true},
	})
}

// schemeTally is one scheme's partial counts within a task.
type schemeTally struct {
	free, total int
	congSum     float64
}

// score folds one solve outcome into the tally, dispatching on the shape
// of the result rather than the scheme's name: timed schedules count their
// validated report (clean by construction unless flagged best-effort),
// round sequences are replayed on the validator with intra-round jitter
// from rng, and infeasibility charges the whole final path.
func (st *schemeTally) score(ctx *instCtx, res *scheme.Result, err error, rng *rand.Rand, width dynflow.Tick) {
	st.total++
	switch {
	case err != nil:
		// Infeasible for this scheme's notion of a solution: stuck rounds
		// or a proven-empty search. Count the whole path as congested.
		st.congSum += float64(len(ctx.in.Fin))
	case res.Rounds != nil && res.Schedule == nil:
		s := baseline.ORSchedule(res.Rounds, baseline.ORScheduleOptions{Start: 0, RoundWidth: width, Rng: rng})
		r := dynflow.Validate(ctx.in, s)
		st.congSum += float64(r.CongestedLinkInstances())
		// Congestion-free means no congested link instances and no
		// transient loops — the same test the best-effort branch applies.
		if r.CongestedLinkInstances() == 0 && len(r.Loops) == 0 {
			st.free++
		}
	case res.Schedule != nil && res.BestEffort:
		st.congSum += float64(res.Report.CongestedLinkInstances())
		if res.Report.CongestedLinkInstances() == 0 && len(res.Report.Loops) == 0 {
			st.free++
		}
	case res.Schedule != nil:
		st.free++ // violation-free by construction (property-tested)
	default:
		// Budget ran out with no incumbent: not congestion-free, nothing
		// measurable to charge.
	}
}

// qualityTally is one (size, run) task's partial counts per cast scheme;
// per-size points merge tallies in run order.
type qualityTally struct {
	schemes                 map[string]*schemeTally
	auditChecks, auditAgree int
}

func (t *qualityTally) tally(name string) *schemeTally {
	if t.schemes == nil {
		t.schemes = map[string]*schemeTally{}
	}
	st, ok := t.schemes[name]
	if !ok {
		st = &schemeTally{}
		t.schemes[name] = st
	}
	return st
}

func (t *qualityTally) add(o qualityTally) {
	for name, st := range o.schemes {
		dst := t.tally(name)
		dst.free += st.free
		dst.total += st.total
		dst.congSum += st.congSum
	}
	t.auditChecks += o.auditChecks
	t.auditAgree += o.auditAgree
}

// qualityRun evaluates one run's InstancesPerRun instances under its own
// rngFor-derived generator; it is the unit of the parallel fan-out. Each
// instance context is built once and shared by every cast scheme.
func qualityRun(cfg Config, n, run int) (qualityTally, error) {
	rng := rngFor(cfg, "fig7", int64(n)*1000+int64(run))
	cast, err := fig7Cast(cfg)
	if err != nil {
		return qualityTally{}, err
	}
	evalSampled := run < cfg.OPTRuns
	var t qualityTally
	for k := 0; k < cfg.InstancesPerRun; k++ {
		ctx := newInstCtx(rng, instanceParams(n))

		// cast[0] is the timed scheme whose sampled executions the
		// runtime audit replays below.
		var timed *scheme.Result
		for i, r := range cast {
			if r.sampled && !evalSampled {
				continue
			}
			res, err := r.s.Solve(ctx.in, r.opts)
			if err != nil && !errors.Is(err, scheme.ErrInfeasible) {
				return t, err
			}
			t.tally(r.name).score(ctx, res, err, rng, cfg.ORRoundWidth)
			if i == 0 {
				timed = res
			}
		}

		// Runtime audit cross-check on the first instance of each run:
		// execute on the emulated testbed and let the trace auditor
		// re-derive the verdict independently of the validator. A clean
		// schedule must audit clean; the one-shot baseline must be flagged
		// whenever the validator flags it. The testbed draws no numbers
		// from rng, so the other columns are unaffected.
		if k == 0 {
			execSeed := int64(n)*100_003 + int64(run)
			if timed != nil && !timed.BestEffort {
				rep, err := auditedExecution(ctx, timed.Schedule, execSeed)
				if err != nil {
					return t, err
				}
				t.auditChecks++
				if rep.OK() && rep.DetectorsAgree {
					t.auditAgree++
				}
			}
			oneShot, err := scheme.Solve("oneshot", ctx.in, scheme.Options{})
			if err != nil {
				return t, err
			}
			rep, err := auditedExecution(ctx, oneShot.Schedule, execSeed+1)
			if err != nil {
				return t, err
			}
			t.auditChecks++
			if oneShot.Report.OK() == rep.OK() && rep.DetectorsAgree {
				t.auditAgree++
			}
		}
	}
	return t, nil
}

// EvaluateQuality runs the Fig. 7/8 simulation: per switch count, Runs
// independent runs of InstancesPerRun random update instances; each
// instance is evaluated by the registry cast of fig7Cast (Chronus with
// best-effort fallback, OR rounds replayed with intra-round jitter, and —
// on a subset of runs — budgeted OPT). Runs execute concurrently
// (cfg.Procs workers) and merge in (size, run) order, so the result is
// independent of the worker count.
func EvaluateQuality(cfg Config) (*Fig7Result, *Fig8Result, error) {
	f7 := &Fig7Result{}
	f8 := &Fig8Result{}
	tallies, err := fanout(cfg, len(cfg.Sizes)*cfg.Runs, func(i int) (qualityTally, error) {
		return qualityRun(cfg, cfg.Sizes[i/cfg.Runs], i%cfg.Runs)
	})
	if err != nil {
		return nil, nil, err
	}
	for si, n := range cfg.Sizes {
		var t qualityTally
		for run := 0; run < cfg.Runs; run++ {
			t.add(tallies[si*cfg.Runs+run])
		}
		chr, or, opt := t.tally("chronus"), t.tally("or"), t.tally("opt")
		f7.Chronus = append(f7.Chronus, SizePoint{N: n, CongestionFreePct: metrics.Percent(chr.free, chr.total), Instances: chr.total})
		f7.OR = append(f7.OR, SizePoint{N: n, CongestionFreePct: metrics.Percent(or.free, or.total), Instances: or.total})
		f7.OPT = append(f7.OPT, SizePoint{N: n, CongestionFreePct: metrics.Percent(opt.free, opt.total), Instances: opt.total})
		f7.Audit = append(f7.Audit, AuditPoint{N: n, Checks: t.auditChecks, Agree: t.auditAgree})
		f8.Chronus = append(f8.Chronus, SizePoint{N: n, MeanCongestedLinks: chr.congSum / float64(chr.total), Instances: chr.total})
		f8.OR = append(f8.OR, SizePoint{N: n, MeanCongestedLinks: or.congSum / float64(or.total), Instances: or.total})
	}
	return f7, f8, nil
}

// Table renders Fig. 7: % congestion-free instances per scheme and size,
// plus the runtime-audit cross-check columns (audited executions and how
// many agreed with the analytic validator's verdict).
func (r *Fig7Result) Table() *metrics.Table {
	t := &metrics.Table{Header: []string{"switches", "chronus_pct", "opt_pct", "or_pct", "audit_checks", "audit_agree"}}
	for i := range r.Chronus {
		t.AddRowf(r.Chronus[i].N, r.Chronus[i].CongestionFreePct, r.OPT[i].CongestionFreePct, r.OR[i].CongestionFreePct,
			r.Audit[i].Checks, r.Audit[i].Agree)
	}
	return t
}

// Table renders Fig. 8: mean congested time-extended links per scheme.
func (r *Fig8Result) Table() *metrics.Table {
	t := &metrics.Table{Header: []string{"switches", "chronus_links", "or_links"}}
	for i := range r.Chronus {
		t.AddRowf(r.Chronus[i].N, r.Chronus[i].MeanCongestedLinks, r.OR[i].MeanCongestedLinks)
	}
	return t
}
