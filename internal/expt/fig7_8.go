package expt

import (
	"errors"

	"github.com/chronus-sdn/chronus/internal/baseline"
	"github.com/chronus-sdn/chronus/internal/core"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/metrics"
	"github.com/chronus-sdn/chronus/internal/opt"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// SizePoint aggregates one scheme's outcome at one switch count.
type SizePoint struct {
	N int
	// CongestionFreePct is the percentage of update instances for which
	// the scheme produced a congestion-free update (Fig. 7).
	CongestionFreePct float64
	// MeanCongestedLinks is the average number of congested time-extended
	// link instances per update instance (Fig. 8).
	MeanCongestedLinks float64
	// Instances is the number of instances behind the point.
	Instances int
}

// Fig7Result carries the Fig. 7 percentages per scheme, and Fig8Result the
// congested-link counts; both come from the same instance population, so
// EvaluateQuality computes them together.
type Fig7Result struct {
	Chronus, OPT, OR []SizePoint
	// Audit cross-checks the analytic validator against the runtime
	// auditor, indexed like the scheme slices: per size, how many sampled
	// executions were audited and how often the two verdicts agreed (a
	// clean Chronus schedule must audit clean; a one-shot update the
	// validator flags must be flagged by the auditor too).
	Audit []AuditPoint
}

// AuditPoint is one size's validator-versus-auditor tally.
type AuditPoint struct {
	N      int
	Checks int
	Agree  int
}

// Fig8Result carries the congested time-extended link counts (Fig. 8
// compares Chronus and OR).
type Fig8Result struct {
	Chronus, OR []SizePoint
}

// qualityTally is one (size, run) task's partial counts; per-size points
// merge tallies in run order.
type qualityTally struct {
	chrFree, orFree, optFree    int
	chrTotal, orTotal, optTotal int
	chrCongSum, orCongSum       float64
	auditChecks, auditAgree     int
}

func (t *qualityTally) add(o qualityTally) {
	t.chrFree += o.chrFree
	t.orFree += o.orFree
	t.optFree += o.optFree
	t.chrTotal += o.chrTotal
	t.orTotal += o.orTotal
	t.optTotal += o.optTotal
	t.chrCongSum += o.chrCongSum
	t.orCongSum += o.orCongSum
	t.auditChecks += o.auditChecks
	t.auditAgree += o.auditAgree
}

// qualityRun evaluates one run's InstancesPerRun instances under its own
// rngFor-derived generator; it is the unit of the parallel fan-out.
func qualityRun(cfg Config, n, run int) (qualityTally, error) {
	rng := rngFor(cfg, "fig7", int64(n)*1000+int64(run))
	evalOPT := run < cfg.OPTRuns
	var t qualityTally
	for k := 0; k < cfg.InstancesPerRun; k++ {
		in := topo.RandomInstance(rng, instanceParams(n))

		// Chronus: the exact-mode greedy (the quality variant at
		// these sizes); on infeasibility the remaining switches
		// flip after the drain (best effort) and the validator
		// counts the damage.
		res, err := core.Greedy(in, core.Options{Mode: core.ModeExact, BestEffort: true})
		if err != nil && !errors.Is(err, core.ErrInfeasible) {
			return t, err
		}
		t.chrTotal++
		if res.BestEffort {
			t.chrCongSum += float64(res.Report.CongestedLinkInstances())
			if res.Report.CongestedLinkInstances() == 0 && len(res.Report.Loops) == 0 {
				t.chrFree++
			}
		} else {
			t.chrFree++ // violation-free by construction (property-tested)
		}

		// Runtime audit cross-check on the first instance of each run:
		// execute on the emulated testbed and let the trace auditor
		// re-derive the verdict independently of the validator. A clean
		// Chronus schedule must audit clean; the one-shot baseline must be
		// flagged whenever the validator flags it. The testbed draws no
		// numbers from rng, so the other columns are unaffected.
		if k == 0 {
			execSeed := int64(n)*100_003 + int64(run)
			if !res.BestEffort {
				rep, err := auditedExecution(in, res.Schedule, execSeed)
				if err != nil {
					return t, err
				}
				t.auditChecks++
				if rep.OK() && rep.DetectorsAgree {
					t.auditAgree++
				}
			}
			oneShot := oneShotSchedule(in)
			rep, err := auditedExecution(in, oneShot, execSeed+1)
			if err != nil {
				return t, err
			}
			t.auditChecks++
			if dynflow.Validate(in, oneShot).OK() == rep.OK() && rep.DetectorsAgree {
				t.auditAgree++
			}
		}

		// OR: loop-free rounds replayed with intra-round jitter.
		rounds, err := baseline.ORGreedy(in)
		t.orTotal++
		if err != nil {
			t.orCongSum += float64(len(in.Fin)) // stuck: count the whole path
		} else {
			s := baseline.ORSchedule(rounds, baseline.ORScheduleOptions{
				Start: 0, RoundWidth: cfg.ORRoundWidth, Rng: rng,
			})
			r := dynflow.Validate(in, s)
			t.orCongSum += float64(r.CongestedLinkInstances())
			// Congestion-free means no congested link instances and no
			// transient loops — the same test Chronus's best-effort
			// branch applies above.
			if r.CongestedLinkInstances() == 0 && len(r.Loops) == 0 {
				t.orFree++
			}
		}

		// OPT: budgeted exact feasibility on the sampled runs.
		if evalOPT {
			feasible, _, err := opt.Feasible(in, opt.Options{MaxNodes: cfg.OPTNodes})
			if err != nil {
				return t, err
			}
			t.optTotal++
			if feasible {
				t.optFree++
			}
		}
	}
	return t, nil
}

// EvaluateQuality runs the Fig. 7/8 simulation: per switch count, Runs
// independent runs of InstancesPerRun random update instances; each
// instance is scheduled by Chronus (fast greedy with best-effort fallback),
// replayed under OR rounds with intra-round jitter, and — on a subset of
// runs — decided by budgeted OPT. Runs execute concurrently (cfg.Procs
// workers) and merge in (size, run) order, so the result is independent of
// the worker count.
func EvaluateQuality(cfg Config) (*Fig7Result, *Fig8Result, error) {
	f7 := &Fig7Result{}
	f8 := &Fig8Result{}
	tallies, err := fanout(cfg, len(cfg.Sizes)*cfg.Runs, func(i int) (qualityTally, error) {
		return qualityRun(cfg, cfg.Sizes[i/cfg.Runs], i%cfg.Runs)
	})
	if err != nil {
		return nil, nil, err
	}
	for si, n := range cfg.Sizes {
		var t qualityTally
		for run := 0; run < cfg.Runs; run++ {
			t.add(tallies[si*cfg.Runs+run])
		}
		f7.Chronus = append(f7.Chronus, SizePoint{N: n, CongestionFreePct: metrics.Percent(t.chrFree, t.chrTotal), Instances: t.chrTotal})
		f7.OR = append(f7.OR, SizePoint{N: n, CongestionFreePct: metrics.Percent(t.orFree, t.orTotal), Instances: t.orTotal})
		f7.OPT = append(f7.OPT, SizePoint{N: n, CongestionFreePct: metrics.Percent(t.optFree, t.optTotal), Instances: t.optTotal})
		f7.Audit = append(f7.Audit, AuditPoint{N: n, Checks: t.auditChecks, Agree: t.auditAgree})
		f8.Chronus = append(f8.Chronus, SizePoint{N: n, MeanCongestedLinks: t.chrCongSum / float64(t.chrTotal), Instances: t.chrTotal})
		f8.OR = append(f8.OR, SizePoint{N: n, MeanCongestedLinks: t.orCongSum / float64(t.orTotal), Instances: t.orTotal})
	}
	return f7, f8, nil
}

// Table renders Fig. 7: % congestion-free instances per scheme and size,
// plus the runtime-audit cross-check columns (audited executions and how
// many agreed with the analytic validator's verdict).
func (r *Fig7Result) Table() *metrics.Table {
	t := &metrics.Table{Header: []string{"switches", "chronus_pct", "opt_pct", "or_pct", "audit_checks", "audit_agree"}}
	for i := range r.Chronus {
		t.AddRowf(r.Chronus[i].N, r.Chronus[i].CongestionFreePct, r.OPT[i].CongestionFreePct, r.OR[i].CongestionFreePct,
			r.Audit[i].Checks, r.Audit[i].Agree)
	}
	return t
}

// Table renders Fig. 8: mean congested time-extended links per scheme.
func (r *Fig8Result) Table() *metrics.Table {
	t := &metrics.Table{Header: []string{"switches", "chronus_links", "or_links"}}
	for i := range r.Chronus {
		t.AddRowf(r.Chronus[i].N, r.Chronus[i].MeanCongestedLinks, r.OR[i].MeanCongestedLinks)
	}
	return t
}
