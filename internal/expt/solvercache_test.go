package expt

import "testing"

// TestSolverCacheBenchSpeedup is the acceptance gate for the incremental
// solve path: on the repeated same-topology workload the warm (cached)
// solves must be at least 2x faster per solve than the cold (bypassed)
// ones. Warm solves are plan-cache hits — clone-and-return against a full
// engine run — so in practice the margin is orders of magnitude; the 2x
// floor keeps the assertion robust on loaded CI machines.
func TestSolverCacheBenchSpeedup(t *testing.T) {
	points, err := SolverCacheBench(Quick(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %+v, want chronus and chronus-fast", points)
	}
	for _, p := range points {
		if p.ColdSeconds <= 0 || p.WarmSeconds <= 0 {
			t.Fatalf("%s: degenerate timings: %+v", p.Scheme, p)
		}
		if p.Speedup < 2 {
			t.Errorf("%s: warm/cold speedup %.1fx < 2x (cold %.3fms, warm %.3fms)", p.Scheme, p.Speedup, p.ColdSeconds*1e3, p.WarmSeconds*1e3)
		}
	}
}
