package expt

import (
	"errors"
	"time"

	"github.com/chronus-sdn/chronus/internal/controller"
	"github.com/chronus-sdn/chronus/internal/emu"
	"github.com/chronus-sdn/chronus/internal/metrics"
	"github.com/chronus-sdn/chronus/internal/scheme"
	"github.com/chronus-sdn/chronus/internal/sim"
	"github.com/chronus-sdn/chronus/internal/timesync"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// ClockSkewPoint is one sync-error level of the clock ablation.
type ClockSkewPoint struct {
	SyncErrorNs   int64
	OverloadTicks sim.Time
	Drops         float64
	Violated      int // runs with any overload or drop
	Runs          int
}

// clockSkewSample is one (sync-error level, seed) emulation run.
type clockSkewSample struct {
	over  sim.Time
	drops float64
}

// AblationClockSkew quantifies the paper's premise that microsecond-
// accurate clocks make timed updates safe: the same provably safe schedule
// is executed under clock ensembles of increasing sync error, and the
// emulator records when transient violations appear. With millisecond
// ticks, violations should start once the error approaches the link
// delays. Every (error level, seed) run is an independent emulation on its
// own harness, dispatched through the parallel pool and merged in seed
// order.
func AblationClockSkew(cfg Config) ([]ClockSkewPoint, error) {
	errorsNs := []int64{0, 1_000, 100_000, timesync.TickNs, 5 * timesync.TickNs, 20 * timesync.TickNs, 100 * timesync.TickNs}
	const runs = 5
	samples, err := fanout(cfg, len(errorsNs)*runs, func(i int) (clockSkewSample, error) {
		errNs, seed := errorsNs[i/runs], int64(i%runs)
		var smp clockSkewSample
		// Each run builds its own instance: Instance carries lazily-built
		// lookup caches, so concurrent tasks must not share one.
		in := topo.EmulationTopo()
		h := controller.NewHarness(in.G)
		c := controller.New(h, controller.Options{Seed: cfg.Seed + seed})
		var ens *timesync.Ensemble
		if errNs > 0 {
			ens = timesync.New(timesync.Params{
				Seed:           cfg.Seed + seed,
				SyncIntervalNs: 1_000_000_000,
				SyncErrorNs:    errNs,
				DriftPPB:       10_000,
			}, in.G.Nodes())
		}
		c.AttachAll(ens)
		f := controller.FlowSpec{Name: "agg", Tag: 0, Path: in.Init, Rate: emu.Rate(in.Demand)}
		if err := c.Provision(f); err != nil {
			return smp, err
		}
		h.AdvanceTo(300)
		if err := timedExecutor("chronus", 400)(in, c, h, f); err != nil {
			return smp, err
		}
		h.AdvanceTo(900)
		smp.over = h.Net.TotalOverloadTicks()
		for _, id := range in.G.Nodes() {
			smp.drops += h.Net.Switch(id).Dropped()
		}
		return smp, nil
	})
	if err != nil {
		return nil, err
	}
	var out []ClockSkewPoint
	for ei, errNs := range errorsNs {
		point := ClockSkewPoint{SyncErrorNs: errNs, Runs: runs}
		for seed := 0; seed < runs; seed++ {
			smp := samples[ei*runs+seed]
			point.OverloadTicks += smp.over
			point.Drops += smp.drops
			if smp.over > 0 || smp.drops > 0 {
				point.Violated++
			}
		}
		out = append(out, point)
	}
	return out, nil
}

// ClockSkewTable renders the ablation.
func ClockSkewTable(points []ClockSkewPoint) *metrics.Table {
	t := &metrics.Table{Header: []string{"sync_error_ns", "violated_runs", "runs", "overload_ticks", "drops"}}
	for _, p := range points {
		t.AddRowf(p.SyncErrorNs, p.Violated, p.Runs, int64(p.OverloadTicks), p.Drops)
	}
	return t
}

// ModePoint compares the greedy acceptance modes (and the naive
// drain-paced sequential baseline) at one size.
type ModePoint struct {
	N                                  int
	ExactMakespan                      float64
	FastMakespan                       float64
	SeqMakespan                        float64
	ExactSeconds                       float64
	FastSeconds                        float64
	ExactSolved, FastSolved, SeqSolved int
	Instances                          int
}

// modeAccum is one scheme's running makespan/solve/time tally within the
// acceptance-mode ablation.
type modeAccum struct {
	solved, count int
	makespanSum   float64
	seconds       float64
}

func (a *modeAccum) meanMakespan() float64 {
	if a.count == 0 {
		return 0
	}
	return a.makespanSum / float64(a.count)
}

// AblationAcceptanceMode compares ModeExact (validator-backed) against
// ModeFast (closed-form in-flight accounting) and the drain-paced
// sequential baseline, all via the registry: solution quality (makespan),
// success rate and scheduling time. This quantifies what the paper's local
// checks give up relative to ground-truth re-validation. One task per
// switch count (each size keeps its own rngFor stream); the per-size
// seconds are wall-clock and so, unlike every other column, vary with the
// worker count.
func AblationAcceptanceMode(cfg Config) ([]ModePoint, error) {
	return fanout(cfg, len(cfg.Sizes), func(si int) (ModePoint, error) {
		n := cfg.Sizes[si]
		cast, err := resolveCast([]schemeRun{
			{name: "chronus"}, {name: "chronus-fast"}, {name: "sequential"},
		})
		if err != nil {
			return ModePoint{}, err
		}
		rng := rngFor(cfg, "ablation-mode", int64(n))
		p := ModePoint{N: n, Instances: cfg.InstancesPerRun}
		accum := map[string]*modeAccum{}
		for _, r := range cast {
			accum[r.name] = &modeAccum{}
		}
		for k := 0; k < cfg.InstancesPerRun; k++ {
			ctx := newInstCtx(rng, instanceParams(n))
			for _, r := range cast {
				a := accum[r.name]
				start := time.Now()
				res, err := r.s.Solve(ctx.in, r.opts)
				a.seconds += time.Since(start).Seconds()
				if err != nil {
					if errors.Is(err, scheme.ErrInfeasible) {
						continue
					}
					return p, err
				}
				a.solved++
				a.makespanSum += float64(res.Schedule.Makespan())
				a.count++
			}
		}
		exact, fast, seq := accum["chronus"], accum["chronus-fast"], accum["sequential"]
		p.ExactSolved, p.FastSolved, p.SeqSolved = exact.solved, fast.solved, seq.solved
		p.ExactMakespan, p.FastMakespan, p.SeqMakespan = exact.meanMakespan(), fast.meanMakespan(), seq.meanMakespan()
		p.ExactSeconds, p.FastSeconds = exact.seconds, fast.seconds
		return p, nil
	})
}

// ModeTable renders the acceptance-mode ablation.
func ModeTable(points []ModePoint) *metrics.Table {
	t := &metrics.Table{Header: []string{
		"switches", "exact_solved", "fast_solved", "seq_solved", "instances",
		"exact_makespan", "fast_makespan", "seq_makespan", "exact_s", "fast_s",
	}}
	for _, p := range points {
		t.AddRowf(p.N, p.ExactSolved, p.FastSolved, p.SeqSolved, p.Instances,
			p.ExactMakespan, p.FastMakespan, p.SeqMakespan, p.ExactSeconds, p.FastSeconds)
	}
	return t
}

// ExecModePoint compares time-triggered execution against barrier pacing.
type ExecModePoint struct {
	Scheme        string
	UpdateTicks   sim.Time
	OverloadTicks sim.Time
	Drops         float64
}

// AblationExecutionMode executes the same Chronus schedule on the emulated
// network (a) time-triggered (timed FlowMods on synchronized clocks) and
// (b) barrier-paced (the literal Algorithm 5 loop, one controller round
// trip per time unit). It reports the data-plane transition duration and
// any transient violations: barrier pacing stretches the update and, with
// control-latency jitter, can break the timing the schedule relies on —
// the paper's core argument for timed SDNs.
func AblationExecutionMode(cfg Config) ([]ExecModePoint, error) {
	// Each scheme runs on its own instance copy (Instance carries lazy
	// caches, so concurrent executions must not share one); the topology
	// and the greedy schedule are deterministic, so both schemes still
	// execute the identical update plan.
	run := func(label string, exec executor) (ExecModePoint, error) {
		in := topo.EmulationTopo()
		h := controller.NewHarness(in.G)
		c := controller.New(h, controller.Options{Seed: cfg.Seed, MinLatency: 1, MaxLatency: 8})
		c.AttachAll(nil)
		f := controller.FlowSpec{Name: "agg", Tag: 0, Path: in.Init, Rate: emu.Rate(in.Demand)}
		if err := c.Provision(f); err != nil {
			return ExecModePoint{}, err
		}
		h.AdvanceTo(400)
		tStart := h.Now()
		if err := exec(in, c, h, f); err != nil {
			return ExecModePoint{}, err
		}
		// Run until the new path carries traffic end to end.
		h.AdvanceTo(tStart + 600)
		var drops float64
		for _, id := range in.G.Nodes() {
			drops += h.Net.Switch(id).Dropped()
		}
		// Transition duration: last rate change on any link.
		var last sim.Time
		for _, l := range h.Net.Links() {
			tl := l.Timeline()
			if len(tl) > 0 && tl[len(tl)-1].At > last {
				last = tl[len(tl)-1].At
			}
		}
		return ExecModePoint{
			Scheme:        label,
			UpdateTicks:   last - tStart,
			OverloadTicks: h.Net.TotalOverloadTicks(),
			Drops:         drops,
		}, nil
	}
	// The two executions run on independent harnesses; dispatch both
	// through the pool and keep the fixed (timed, barrier-paced) order.
	// Both plan the same registry scheme — only the execution differs.
	entries := []struct {
		label string
		exec  executor
	}{
		{"timed", timedExecutor("chronus", 450)},
		{"barrier-paced", pacedExecutor("chronus")},
	}
	return fanout(cfg, len(entries), func(i int) (ExecModePoint, error) {
		return run(entries[i].label, entries[i].exec)
	})
}

// ExecModeTable renders the execution-mode ablation.
func ExecModeTable(points []ExecModePoint) *metrics.Table {
	t := &metrics.Table{Header: []string{"execution", "update_ticks", "overload_ticks", "drops"}}
	for _, p := range points {
		t.AddRowf(p.Scheme, int64(p.UpdateTicks), int64(p.OverloadTicks), p.Drops)
	}
	return t
}
