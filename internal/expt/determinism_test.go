package expt

import (
	"testing"
)

// The harness's core guarantee: for a fixed seed, every generator renders
// byte-identical tables and CSVs at any worker count. Wall-clock columns
// (Fig. 10 seconds, the acceptance-mode ablation's seconds) are the sole
// exemption; their deterministic companion columns are compared instead.

func determinismConfigs() (serial, parallel Config) {
	serial = Quick(11)
	serial.Procs = 1
	parallel = Quick(11)
	parallel.Procs = 8
	return serial, parallel
}

func assertSameTable(t *testing.T, name, serial, parallel string) {
	t.Helper()
	if serial != parallel {
		t.Errorf("%s diverged between -procs 1 and -procs 8:\n--- procs=1:\n%s\n--- procs=8:\n%s", name, serial, parallel)
	}
}

func TestEvaluateQualityDeterministicAcrossProcs(t *testing.T) {
	sc, pc := determinismConfigs()
	f7s, f8s, err := EvaluateQuality(sc)
	if err != nil {
		t.Fatal(err)
	}
	f7p, f8p, err := EvaluateQuality(pc)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTable(t, "fig7 table", f7s.Table().String(), f7p.Table().String())
	assertSameTable(t, "fig7 csv", f7s.Table().CSV(), f7p.Table().CSV())
	assertSameTable(t, "fig8 table", f8s.Table().String(), f8p.Table().String())
	assertSameTable(t, "fig8 csv", f8s.Table().CSV(), f8p.Table().CSV())
}

func TestFig9DeterministicAcrossProcs(t *testing.T) {
	sc, pc := determinismConfigs()
	rs, err := Fig9RuleOverhead(sc)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Fig9RuleOverhead(pc)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTable(t, "fig9 table", rs.Table().String(), rp.Table().String())
	assertSameTable(t, "fig9 csv", rs.Table().CSV(), rp.Table().CSV())
}

func TestFig10DeterministicInstancePopulation(t *testing.T) {
	sc, pc := determinismConfigs()
	// One size and a tight budget keep the doubled (procs=1 and procs=8)
	// timing run cheap; the determinism property is scale-independent.
	for _, c := range []*Config{&sc, &pc} {
		c.BigSizes = []int{200}
		c.BigTimeoutSec = 1
	}
	rs, err := Fig10RunningTime(sc)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Fig10RunningTime(pc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Points) != len(rp.Points) {
		t.Fatalf("points: %d vs %d", len(rs.Points), len(rp.Points))
	}
	for i := range rs.Points {
		s, p := rs.Points[i], rp.Points[i]
		// The measured seconds are wall-clock; the instance population and
		// the budget outcomes must match exactly.
		if s.N != p.N || s.ORBudget != p.ORBudget || s.OPTBudget != p.OPTBudget {
			t.Errorf("point %d diverged: procs=1 %+v, procs=8 %+v", i, s, p)
		}
	}
}

func TestFig11DeterministicAcrossProcs(t *testing.T) {
	sc, pc := determinismConfigs()
	rs, err := Fig11UpdateTimeCDF(sc)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Fig11UpdateTimeCDF(pc)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Solved != rp.Solved || rs.Excluded != rp.Excluded || rs.OPTBudgetHits != rp.OPTBudgetHits {
		t.Errorf("counts diverged: procs=1 %d/%d/%d, procs=8 %d/%d/%d",
			rs.Solved, rs.Excluded, rs.OPTBudgetHits, rp.Solved, rp.Excluded, rp.OPTBudgetHits)
	}
	assertSameTable(t, "fig11 table", rs.Table().String(), rp.Table().String())
	assertSameTable(t, "fig11 csv", rs.Table().CSV(), rp.Table().CSV())
}

func TestFig6DeterministicAcrossProcs(t *testing.T) {
	sc, pc := determinismConfigs()
	rs, err := Fig6Bandwidth(sc)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Fig6Bandwidth(pc)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Link != rp.Link {
		t.Errorf("monitored link diverged: %v vs %v", rs.Link, rp.Link)
	}
	assertSameTable(t, "fig6 series", rs.Table().String(), rp.Table().String())
	assertSameTable(t, "fig6 summary", rs.Summary().CSV(), rp.Summary().CSV())
}

func TestAblationsDeterministicAcrossProcs(t *testing.T) {
	sc, pc := determinismConfigs()

	css, err := AblationClockSkew(sc)
	if err != nil {
		t.Fatal(err)
	}
	csp, err := AblationClockSkew(pc)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTable(t, "clock-skew table", ClockSkewTable(css).String(), ClockSkewTable(csp).String())

	ems, err := AblationExecutionMode(sc)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := AblationExecutionMode(pc)
	if err != nil {
		t.Fatal(err)
	}
	assertSameTable(t, "exec-mode table", ExecModeTable(ems).String(), ExecModeTable(emp).String())

	ams, err := AblationAcceptanceMode(sc)
	if err != nil {
		t.Fatal(err)
	}
	amp, err := AblationAcceptanceMode(pc)
	if err != nil {
		t.Fatal(err)
	}
	// Blank the wall-clock columns, then the rendered rows must match.
	for i := range ams {
		ams[i].ExactSeconds, ams[i].FastSeconds = 0, 0
	}
	for i := range amp {
		amp[i].ExactSeconds, amp[i].FastSeconds = 0, 0
	}
	assertSameTable(t, "acceptance-mode table", ModeTable(ams).String(), ModeTable(amp).String())
}
