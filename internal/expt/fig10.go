package expt

import (
	"errors"
	"time"

	"github.com/chronus-sdn/chronus/internal/baseline"
	"github.com/chronus-sdn/chronus/internal/core"
	"github.com/chronus-sdn/chronus/internal/metrics"
	"github.com/chronus-sdn/chronus/internal/opt"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// Fig10Point is the running-time comparison at one switch count.
type Fig10Point struct {
	N int
	// Seconds per scheme, averaged over BigInstances.
	Chronus, OR, OPT float64
	// ORBudget / OPTBudget report how many instances exhausted the search
	// budget (the paper's "does not complete within the time limit").
	ORBudget, OPTBudget int
}

// Fig10Result reproduces Fig. 10: scheduling time versus switch count at
// thousands of switches. Chronus runs its fast greedy to completion; OR and
// OPT run their branch and bound under a node budget, so their reported
// time is a lower bound whenever the budget flag is set — exactly the
// paper's "exceeds the limit" semantics.
type Fig10Result struct {
	Points []Fig10Point
}

// Fig10RunningTime measures wall-clock scheduling time per scheme.
func Fig10RunningTime(cfg Config) (*Fig10Result, error) {
	res := &Fig10Result{}
	for _, n := range cfg.BigSizes {
		point := Fig10Point{N: n}
		for k := 0; k < cfg.BigInstances; k++ {
			rng := rngFor(cfg, "fig10", int64(n)*100+int64(k))
			in := topo.RandomInstance(rng, bigParams(n))

			start := time.Now()
			_, err := core.Greedy(in, core.Options{Mode: core.ModeFast})
			point.Chronus += time.Since(start).Seconds()
			if err != nil && !errors.Is(err, core.ErrInfeasible) {
				return nil, err
			}

			timeout := time.Duration(cfg.BigTimeoutSec) * time.Second
			start = time.Now()
			orRes, err := baseline.OROptimal(in, baseline.OROptions{MaxNodes: cfg.BigNodes, Timeout: timeout})
			point.OR += time.Since(start).Seconds()
			if err == nil && !orRes.Exact {
				point.ORBudget++
			}

			start = time.Now()
			optRes, err := opt.Exact(in, opt.Options{MaxNodes: cfg.BigNodes, Timeout: timeout})
			point.OPT += time.Since(start).Seconds()
			if err != nil {
				return nil, err
			}
			if optRes.Status == opt.StatusBudget {
				point.OPTBudget++
			}
		}
		inv := 1 / float64(cfg.BigInstances)
		point.Chronus *= inv
		point.OR *= inv
		point.OPT *= inv
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// Table renders Fig. 10.
func (r *Fig10Result) Table() *metrics.Table {
	t := &metrics.Table{Header: []string{"switches", "chronus_s", "or_s", "or_budget_hit", "opt_s", "opt_budget_hit"}}
	for _, p := range r.Points {
		t.AddRowf(p.N, p.Chronus, p.OR, p.ORBudget, p.OPT, p.OPTBudget)
	}
	return t
}
