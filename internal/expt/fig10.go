package expt

import (
	"errors"
	"time"

	"github.com/chronus-sdn/chronus/internal/metrics"
	"github.com/chronus-sdn/chronus/internal/scheme"
)

// Fig10Point is the running-time comparison at one switch count.
type Fig10Point struct {
	N int
	// Seconds per scheme, averaged over BigInstances.
	Chronus, OR, OPT float64
	// ORBudget / OPTBudget report how many instances exhausted the search
	// budget (the paper's "does not complete within the time limit").
	ORBudget, OPTBudget int
}

// Fig10Result reproduces Fig. 10: scheduling time versus switch count at
// thousands of switches. Chronus runs its fast greedy to completion; OR and
// OPT run their branch and bound under a node budget, so their reported
// time is a lower bound whenever the budget flag is set — exactly the
// paper's "exceeds the limit" semantics.
type Fig10Result struct {
	Points []Fig10Point
}

// fig10Cast is the running-time scheme set: the fast greedy unbudgeted,
// the two exact searches under the configured node and time budget.
func fig10Cast(cfg Config) ([]schemeRun, error) {
	budget := scheme.Budget{MaxNodes: cfg.BigNodes, Timeout: time.Duration(cfg.BigTimeoutSec) * time.Second}
	return resolveCast([]schemeRun{
		{name: "chronus-fast"},
		{name: "or", opts: scheme.Options{Budget: budget}},
		{name: "opt", opts: scheme.Options{Budget: budget}},
	})
}

// fig10Sample is one (size, instance) timing task's outcome, per scheme.
type fig10Sample struct {
	seconds map[string]float64
	budget  map[string]int
}

// fig10Instance times the cast on one random instance; the RNG key is per
// (size, instance), so the instance population is identical at every
// worker count (the measured seconds, like any wall-clock quantity, are
// not — run with Procs = 1 for uncontended timings).
func fig10Instance(cfg Config, n, k int) (fig10Sample, error) {
	s := fig10Sample{seconds: map[string]float64{}, budget: map[string]int{}}
	cast, err := fig10Cast(cfg)
	if err != nil {
		return s, err
	}
	rng := rngFor(cfg, "fig10", int64(n)*100+int64(k))
	ctx := newInstCtx(rng, bigParams(n))

	for _, r := range cast {
		start := time.Now()
		res, err := r.s.Solve(ctx.in, r.opts)
		s.seconds[r.name] = time.Since(start).Seconds()
		if err != nil {
			if errors.Is(err, scheme.ErrInfeasible) {
				continue
			}
			return s, err
		}
		if res.Diagnostics["budget_exhausted"] > 0 {
			s.budget[r.name]++
		}
	}
	return s, nil
}

// Fig10RunningTime measures wall-clock scheduling time per scheme.
func Fig10RunningTime(cfg Config) (*Fig10Result, error) {
	res := &Fig10Result{}
	samples, err := fanout(cfg, len(cfg.BigSizes)*cfg.BigInstances, func(i int) (fig10Sample, error) {
		return fig10Instance(cfg, cfg.BigSizes[i/cfg.BigInstances], i%cfg.BigInstances)
	})
	if err != nil {
		return nil, err
	}
	for si, n := range cfg.BigSizes {
		point := Fig10Point{N: n}
		for k := 0; k < cfg.BigInstances; k++ {
			s := samples[si*cfg.BigInstances+k]
			point.Chronus += s.seconds["chronus-fast"]
			point.OR += s.seconds["or"]
			point.OPT += s.seconds["opt"]
			point.ORBudget += s.budget["or"]
			point.OPTBudget += s.budget["opt"]
		}
		inv := 1 / float64(cfg.BigInstances)
		point.Chronus *= inv
		point.OR *= inv
		point.OPT *= inv
		res.Points = append(res.Points, point)
	}
	return res, nil
}

// Table renders Fig. 10.
func (r *Fig10Result) Table() *metrics.Table {
	t := &metrics.Table{Header: []string{"switches", "chronus_s", "or_s", "or_budget_hit", "opt_s", "opt_budget_hit"}}
	for _, p := range r.Points {
		t.AddRowf(p.N, p.Chronus, p.OR, p.ORBudget, p.OPT, p.OPTBudget)
	}
	return t
}
