package expt

import (
	"github.com/chronus-sdn/chronus/internal/audit"
	"github.com/chronus-sdn/chronus/internal/clock"
	"github.com/chronus-sdn/chronus/internal/controller"
	"github.com/chronus-sdn/chronus/internal/core"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/emu"
	"github.com/chronus-sdn/chronus/internal/health"
	"github.com/chronus-sdn/chronus/internal/metrics"
	"github.com/chronus-sdn/chronus/internal/obs"
	"github.com/chronus-sdn/chronus/internal/scheme"
	"github.com/chronus-sdn/chronus/internal/sim"
	"github.com/chronus-sdn/chronus/internal/timesync"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// SkewAdvPoint is one injected-error level of the clock-skew adversary:
// the same provably safe chronus schedule executed under a clock
// ensemble whose sync error sweeps past the per-switch slack, with
// three independent judges recorded side by side — the clock
// estimator's *forecast* (taken after probing but before execution),
// the health engine's observed verdict after the update, and the
// trace auditor's ground truth.
type SkewAdvPoint struct {
	// ErrorTicks is the injected sync error (SyncErrorNs / TickNs).
	ErrorTicks int64
	// PredictedMarginMilliTicks is the worst forecast slack margin
	// across switches at plan time, before any update FlowMod fires.
	PredictedMarginMilliTicks int64
	// PreLevel is the health verdict at plan time (forecast only): the
	// OK->WARN transition here precedes the first late apply.
	PreLevel string
	// PostLevel is the verdict after execution and drain.
	PostLevel string
	// ObservedMarginTicks is the worst per-switch margin after the run.
	ObservedMarginTicks int64
	// AuditOK and Violations are the trace auditor's ground truth.
	AuditOK    bool
	Violations int
}

// skewAdvErrorsTicks is the sweep grid in ticks: sub-slack levels must
// stay OK with a passing audit, past-slack levels must reach CRIT with
// auditor evidence. The grid starts at 2 ticks past zero: a 1-tick
// error already trips the zero-slack critical switches' health margin
// but usually drains without observable congestion, so the first
// non-zero level is placed where the health verdict and the auditor's
// ground truth flip together.
var skewAdvErrorsTicks = []int64{0, 2, 4, 8, 16, 32}

// skewAdvSyncIntervalTicks keeps sync epochs shorter than the probe
// spacing, so consecutive probes sample fresh offset draws and the
// estimator's jitter captures the full injected spread.
const skewAdvSyncIntervalTicks = 45

// skewAdvProbeRounds is how many timed no-op probe rounds seed the
// estimator before the update is planned.
const skewAdvProbeRounds = 12

// SkewAdversary runs the sweep: one independent emulation per error
// level (each on its own harness, dispatched through the pool), all
// planning the identical chronus schedule. Per level it (1) probes the
// clocks, (2) arms the health engine with the plan plus the clock
// forecast and records the pre-execution verdict, (3) executes the
// timed update under the skewed ensemble, and (4) records the
// post-execution verdict next to the auditor's report. Deterministic
// for a fixed cfg.Seed at any Procs.
func SkewAdversary(cfg Config) ([]SkewAdvPoint, error) {
	return fanout(cfg, len(skewAdvErrorsTicks), func(i int) (SkewAdvPoint, error) {
		errTicks := skewAdvErrorsTicks[i]
		p := SkewAdvPoint{ErrorTicks: errTicks}

		in := topo.EmulationTopo()
		reg := obs.NewRegistry()
		tracer := obs.NewTracer(obs.TracerOptions{})
		tb := controller.NewHarness(in.G)
		tb.Net.SetObs(reg, tracer)
		ctl := controller.New(tb, controller.Options{Seed: cfg.Seed, Obs: reg, Trace: tracer})
		var ens *timesync.Ensemble
		if errTicks > 0 {
			ens = timesync.New(timesync.Params{
				Seed:           cfg.Seed,
				SyncIntervalNs: skewAdvSyncIntervalTicks * timesync.TickNs,
				SyncErrorNs:    errTicks * timesync.TickNs,
			}, in.G.Nodes())
		}
		ctl.AttachAll(ens)

		flow := controller.FlowSpec{Name: "agg", Tag: 0, Path: in.Init, Rate: emu.Rate(in.Demand)}
		if err := ctl.Provision(flow); err != nil {
			return p, err
		}
		tb.AdvanceBy(auditHeadroom)

		// Probe: timed no-op fires sample each switch's offset across
		// several sync epochs; the barrier pairs sample control RTT.
		est := clock.New(reg)
		for r := 0; r < skewAdvProbeRounds; r++ {
			at := tb.Now() + 20
			if err := ctl.ProbeClocks("clockprobe", at, in.G.Nodes()...); err != nil {
				return p, err
			}
			// Land past the fire even when the probe came back |errTicks|
			// late, and into the next sync epoch for a fresh offset draw.
			tb.AdvanceTo(at + sim.Time(errTicks) + 10)
		}
		if err := ctl.DeleteFlow("clockprobe", in.G.Nodes()...); err != nil {
			return p, err
		}
		est.Observe(tracer.Events(est.Cursor()))

		// Plan the update and arm the health engine. The engine's cursor
		// is advanced past the probe events first, so the plan's margins
		// start clean (SetPlan clears observations, not the cursor).
		hl := health.New(reg)
		hl.SetClock(est)
		hl.Observe(tracer.Events(hl.Cursor()))
		res, err := scheme.Solve("chronus", in, scheme.Options{})
		if err != nil {
			return p, err
		}
		now := int64(tb.Now())
		start := dynflow.Tick(now) + auditHeadroom
		shifted := shiftSchedule(res.Schedule, start)
		plan := health.Plan{Kind: "timed", Valid: true, StartTick: now}
		for _, sl := range core.ScheduleSlack(in, res.Schedule) {
			plan.Switches = append(plan.Switches, health.PlanSwitch{
				Switch:     in.G.Name(sl.V),
				SlackTicks: int64(sl.Slack),
				ApplyTick:  int64(start + (sl.Time - res.Schedule.Start)),
				Critical:   sl.Critical,
			})
		}
		hl.SetPlan(plan)
		pre := hl.Verdict()
		p.PreLevel = pre.Level
		p.PredictedMarginMilliTicks = pre.PredictedWorstMarginMilliTicks

		if err := ctl.ExecuteTimed(in, shifted, flow); err != nil {
			return p, err
		}
		drain := sim.Time(in.Init.Delay(in.G)+in.Fin.Delay(in.G)) + sim.Time(errTicks) + 10
		tb.AdvanceTo(sim.Time(shifted.End()) + drain)

		hl.Observe(tracer.Events(hl.Cursor()))
		post := hl.Verdict()
		p.PostLevel = post.Level
		p.ObservedMarginTicks = post.WorstMarginTicks

		a := audit.New()
		a.Feed(tracer.Events(0)...)
		rep := a.Report()
		p.AuditOK = rep.OK()
		p.Violations = rep.Violations()
		return p, nil
	})
}

// SkewAdvTable renders the sweep.
func SkewAdvTable(points []SkewAdvPoint) *metrics.Table {
	t := &metrics.Table{Header: []string{
		"error_ticks", "predicted_margin_mticks", "pre_level", "post_level",
		"observed_margin_ticks", "audit", "violations",
	}}
	for _, p := range points {
		auditCol := "PASS"
		if !p.AuditOK {
			auditCol = "FAIL"
		}
		t.AddRowf(p.ErrorTicks, p.PredictedMarginMilliTicks, p.PreLevel, p.PostLevel,
			p.ObservedMarginTicks, auditCol, p.Violations)
	}
	return t
}
