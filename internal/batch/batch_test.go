package batch

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"github.com/chronus-sdn/chronus/internal/core"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/scheme"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// twoFlowNet builds a diamond where two flows swap sides: f1 moves from the
// top route to the bottom, f2 from the bottom to the top. Each route has
// capacity for one flow only, so the updates must be sequenced.
func twoFlowNet(t *testing.T) (*graph.Graph, []Flow) {
	t.Helper()
	g := graph.New()
	ids := g.AddNodes("s1", "s2", "t1", "t2", "up", "dn")
	s1, s2, t1, t2, up, dn := ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]
	// Shared middle routes with capacity 1 each.
	g.MustAddLink(up, dn, 9, 1) // unrelated cross link keeps the graph interesting
	g.MustAddLink(s1, up, 1, 1)
	g.MustAddLink(s2, up, 1, 1)
	g.MustAddLink(s1, dn, 1, 1)
	g.MustAddLink(s2, dn, 1, 1)
	g.MustAddLink(up, t1, 1, 1)
	g.MustAddLink(up, t2, 1, 1)
	g.MustAddLink(dn, t1, 1, 1)
	g.MustAddLink(dn, t2, 1, 1)
	flows := []Flow{
		{Name: "f1", Demand: 1, Init: graph.Path{s1, up, t1}, Fin: graph.Path{s1, dn, t1}},
		{Name: "f2", Demand: 1, Init: graph.Path{s2, dn, t2}, Fin: graph.Path{s2, up, t2}},
	}
	return g, flows
}

func TestBatchTwoFlowSwap(t *testing.T) {
	g, flows := twoFlowNet(t)
	plan, err := Solve(g, flows, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if len(plan.Updates) != 2 {
		t.Fatalf("updates = %d", len(plan.Updates))
	}
	if !plan.Report.OK() {
		t.Fatalf("joint report: %s", plan.Report.Summary())
	}
	// Sequential spacing: the second flow starts after the first drains.
	first, second := plan.Updates[0], plan.Updates[1]
	if second.S.Start <= first.S.End() {
		t.Fatalf("second flow starts at %d, before first ends at %d", second.S.Start, first.S.End())
	}
	if plan.Makespan(0) <= 0 {
		t.Fatal("zero makespan for a two-flow batch")
	}
}

func TestBatchRejectsOversubscribedSteadyState(t *testing.T) {
	g, flows := twoFlowNet(t)
	// Both flows target the bottom route: the final configuration needs 2
	// units on (dn, t*) adjacent links... make them collide on (s-side):
	flows[1].Fin = graph.Path{g.Lookup("s2"), g.Lookup("dn"), g.Lookup("t2")}
	flows[0].Fin = graph.Path{g.Lookup("s1"), g.Lookup("dn"), g.Lookup("t1")}
	// Saturate one shared link by pointing both finals through (dn,t1).
	flows[1].Fin = graph.Path{g.Lookup("s2"), g.Lookup("dn"), g.Lookup("t1")}
	// Distinct destinations are required by Instance validation, so force
	// the collision on a shared middle link instead: capacity 1 on (s1,dn)
	// cannot carry both... build the direct case:
	gg := graph.New()
	ids := gg.AddNodes("a", "b", "m", "n", "x", "y")
	a, b, m, n, x, y := ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]
	gg.MustAddLink(a, m, 1, 1)
	gg.MustAddLink(b, m, 1, 1)
	gg.MustAddLink(m, n, 1, 1) // the bottleneck both finals want
	gg.MustAddLink(n, x, 1, 1)
	gg.MustAddLink(n, y, 1, 1)
	gg.MustAddLink(a, x, 1, 1) // initial direct links
	gg.MustAddLink(b, y, 1, 1)
	bad := []Flow{
		{Name: "f1", Demand: 1, Init: graph.Path{a, x}, Fin: graph.Path{a, m, n, x}},
		{Name: "f2", Demand: 1, Init: graph.Path{b, y}, Fin: graph.Path{b, m, n, y}},
	}
	if _, err := Solve(gg, bad, Options{}); err == nil {
		t.Fatal("oversubscribed final configuration accepted")
	}
}

func TestBatchEmpty(t *testing.T) {
	g, _ := twoFlowNet(t)
	plan, err := Solve(g, nil, Options{})
	if err != nil || len(plan.Updates) != 0 || !plan.Report.OK() {
		t.Fatalf("empty batch: %v %+v", err, plan)
	}
}

func TestBatchGapAndMode(t *testing.T) {
	g, flows := twoFlowNet(t)
	plan, err := Solve(g, flows, Options{Gap: 25, Mode: core.ModeFast})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	first, second := plan.Updates[0], plan.Updates[1]
	if second.S.Start < first.S.End()+25 {
		t.Fatalf("gap not honored: %d after %d", second.S.Start, first.S.End())
	}
}

func TestBatchSaturatedMixedConfiguration(t *testing.T) {
	// f1 settles onto a link that f2 needs for its own migration while f2
	// still waits: the mixed configuration is oversubscribed and the batch
	// reports infeasibility rather than a violating plan.
	g := graph.New()
	ids := g.AddNodes("a", "b", "c", "d", "e")
	a, b, c, d, e := ids[0], ids[1], ids[2], ids[3], ids[4]
	g.MustAddLink(a, c, 1, 1)
	g.MustAddLink(b, c, 1, 1)
	g.MustAddLink(c, d, 1, 1) // contended by f1's final and f2's initial
	g.MustAddLink(a, d, 1, 1)
	g.MustAddLink(b, e, 9, 1)
	g.MustAddLink(e, d, 9, 1)
	flows := []Flow{
		{Name: "f1", Demand: 1, Init: graph.Path{a, d}, Fin: graph.Path{a, c, d}},
		{Name: "f2", Demand: 1, Init: graph.Path{b, c, d}, Fin: graph.Path{b, e, d}},
	}
	// Initial config: f2 on (c,d); final config: f1 on (c,d) — each fine
	// alone, but f1 migrates first onto (c,d) while f2 still sits there.
	_, err := Solve(g, flows, Options{})
	if err == nil {
		t.Fatal("mixed-configuration saturation accepted")
	}
	if !errors.Is(err, ErrInfeasible) && err != nil {
		// Any error is acceptable as long as no violating plan is returned;
		// prefer the typed one.
		t.Logf("non-typed error (acceptable): %v", err)
	}
	// Reordering the batch fixes it: migrate f2 away first.
	reordered := []Flow{flows[1], flows[0]}
	plan, err := Solve(g, reordered, Options{})
	if err != nil {
		t.Fatalf("reordered batch failed: %v", err)
	}
	if !plan.Report.OK() {
		t.Fatalf("reordered joint report: %s", plan.Report.Summary())
	}
}

// TestBatchRandomJointClean: random multi-flow batches that Solve accepts
// are always violation-free under the joint validator (which Solve itself
// asserts, but this re-checks through the public surface with independent
// instances).
func TestBatchRandomJointClean(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	accepted := 0
	for trial := 0; trial < 30; trial++ {
		// Two independent random instances placed on disjoint graphs glued
		// into one shared graph (disjoint flows always compose).
		inA := topo.RandomInstance(rng, topo.DefaultRandomParams(6+rng.Intn(5)))
		g := inA.G
		offsetNames := func(p graph.Path, m map[graph.NodeID]graph.NodeID) graph.Path {
			out := make(graph.Path, len(p))
			for i, v := range p {
				out[i] = m[v]
			}
			return out
		}
		inB := topo.RandomInstance(rng, topo.DefaultRandomParams(6+rng.Intn(5)))
		idMap := make(map[graph.NodeID]graph.NodeID, inB.G.NumNodes())
		for _, v := range inB.G.Nodes() {
			idMap[v] = g.AddNode("B" + inB.G.Name(v))
		}
		for _, l := range inB.G.Links() {
			g.MustAddLink(idMap[l.From], idMap[l.To], l.Cap, l.Delay)
		}
		flows := []Flow{
			{Name: "fa", Demand: inA.Demand, Init: inA.Init, Fin: inA.Fin},
			{Name: "fb", Demand: inB.Demand, Init: offsetNames(inB.Init, idMap), Fin: offsetNames(inB.Fin, idMap)},
		}
		plan, err := Solve(g, flows, Options{Mode: core.ModeFast})
		if err != nil {
			continue // per-flow infeasibility is fine
		}
		accepted++
		report, jerr := dynflow.ValidateJoint(plan.Updates)
		if jerr != nil {
			t.Fatal(jerr)
		}
		if !report.OK() {
			t.Fatalf("trial %d: accepted batch violates: %s", trial, report.Summary())
		}
	}
	if accepted == 0 {
		t.Fatal("no batch accepted across 30 trials")
	}
}

// TestBatchErrorsNameFlow asserts the satellite contract: every error
// Solve can return carries the offending flow's name, so a failed batch
// of hundreds of flows is debuggable from the message alone.
func TestBatchErrorsNameFlow(t *testing.T) {
	// Oversubscribed steady state: both finals cross the (m, n) bottleneck.
	gg := graph.New()
	ids := gg.AddNodes("a", "b", "m", "n", "x", "y")
	a, b, m, n, x, y := ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]
	gg.MustAddLink(a, m, 1, 1)
	gg.MustAddLink(b, m, 1, 1)
	gg.MustAddLink(m, n, 1, 1)
	gg.MustAddLink(n, x, 1, 1)
	gg.MustAddLink(n, y, 1, 1)
	gg.MustAddLink(a, x, 1, 1)
	gg.MustAddLink(b, y, 1, 1)
	over := []Flow{
		{Name: "alpha", Demand: 1, Init: graph.Path{a, x}, Fin: graph.Path{a, m, n, x}},
		{Name: "beta", Demand: 1, Init: graph.Path{b, y}, Fin: graph.Path{b, m, n, y}},
	}
	_, err := Solve(gg, over, Options{})
	if err == nil {
		t.Fatal("oversubscribed final accepted")
	}
	for _, want := range []string{`"alpha"`, `"beta"`} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("oversubscription error %q does not name flow %s", err, want)
		}
	}

	// Missing link in a steady state.
	bogus := []Flow{{Name: "ghost", Demand: 1, Init: graph.Path{a, x}, Fin: graph.Path{a, y}}}
	_, err = Solve(gg, bogus, Options{})
	if err == nil || !strings.Contains(err.Error(), `"ghost"`) {
		t.Fatalf("missing-link error does not name flow: %v", err)
	}

	// Mixed-configuration saturation (residualGraph path).
	g2 := graph.New()
	ids2 := g2.AddNodes("a", "b", "c", "d", "e")
	a2, b2, c2, d2, e2 := ids2[0], ids2[1], ids2[2], ids2[3], ids2[4]
	g2.MustAddLink(a2, c2, 1, 1)
	g2.MustAddLink(b2, c2, 1, 1)
	g2.MustAddLink(c2, d2, 1, 1)
	g2.MustAddLink(a2, d2, 1, 1)
	g2.MustAddLink(b2, e2, 9, 1)
	g2.MustAddLink(e2, d2, 9, 1)
	mixed := []Flow{
		{Name: "first", Demand: 1, Init: graph.Path{a2, d2}, Fin: graph.Path{a2, c2, d2}},
		{Name: "second", Demand: 1, Init: graph.Path{b2, c2, d2}, Fin: graph.Path{b2, e2, d2}},
	}
	_, err = Solve(g2, mixed, Options{})
	if err == nil || !strings.Contains(err.Error(), `"second"`) && !strings.Contains(err.Error(), `"first"`) {
		t.Fatalf("mixed-saturation error does not name a flow: %v", err)
	}

	// A scheme that plans rounds, not timed schedules, cannot compose.
	g3, flows3 := twoFlowNet(t)
	_, err = Solve(g3, flows3, Options{Scheme: "or"})
	if err == nil || !strings.Contains(err.Error(), `"f1"`) {
		t.Fatalf("untimed-scheme error does not name flow: %v", err)
	}

	// Unknown scheme name (no flow to blame; the registry lists names).
	_, err = Solve(g3, flows3, Options{Scheme: "nope"})
	if !errors.Is(err, scheme.ErrUnknown) {
		t.Fatalf("unknown scheme error = %v", err)
	}
}

// TestBatchCrossSchemeJointClean is the batch half of the cross-scheme
// property: every registered scheme that can produce timed schedules
// yields batches whose joint report is clean (best-effort schemes are
// allowed to fail joint validation and are skipped when they do).
func TestBatchCrossSchemeJointClean(t *testing.T) {
	for _, name := range scheme.Names() {
		g, flows := twoFlowNet(t)
		plan, err := Solve(g, flows, Options{Scheme: name})
		if err != nil {
			// Round-based and decision-only schemes cannot compose; their
			// refusal must name the first flow. Best-effort schemes may
			// fail joint validation instead.
			if !strings.Contains(err.Error(), `"f1"`) && !strings.Contains(err.Error(), "joint validation") {
				t.Fatalf("%s: unexpected error: %v", name, err)
			}
			continue
		}
		if !plan.Report.OK() {
			t.Fatalf("%s: accepted batch violates: %s", name, plan.Report.Summary())
		}
		report, jerr := dynflow.ValidateJoint(plan.Updates)
		if jerr != nil || !report.OK() {
			t.Fatalf("%s: re-validation failed: %v %s", name, jerr, report.Summary())
		}
	}
}

// TestSolveEachRefusesPerFlow: where Solve fails the whole batch on one
// inadmissible flow, SolveEach admits the rest and refuses just the
// offender with a named reason.
func TestSolveEachRefusesPerFlow(t *testing.T) {
	g, flows := twoFlowNet(t)
	// A third flow oversubscribes its final configuration: demand 2 on
	// capacity-1 links can never settle.
	bad := Flow{Name: "hog", Demand: 2,
		Init: graph.Path{g.Lookup("s1"), g.Lookup("up"), g.Lookup("t1")},
		Fin:  graph.Path{g.Lookup("s1"), g.Lookup("dn"), g.Lookup("t1")}}
	plan, refusals, err := SolveEach(g, append(flows, bad), Options{})
	if err != nil {
		t.Fatalf("SolveEach: %v", err)
	}
	if len(plan.Updates) != 2 || !plan.Report.OK() {
		t.Fatalf("admitted %d updates (report ok=%v), want the 2 good flows", len(plan.Updates), plan.Report.OK())
	}
	if len(refusals) != 1 || refusals[0].Flow != "hog" || refusals[0].Deferred {
		t.Fatalf("refusals = %+v, want one non-deferred refusal of hog", refusals)
	}
	if refusals[0].Reason == "" {
		t.Fatal("refusal carries no reason")
	}
}

// TestSolveEachRefusalLandsOnNewcomer: an admitted flow's schedule must
// never be invalidated by a later admission — the joint re-validation
// charges the failure to the newcomer.
func TestSolveEachRefusalLandsOnNewcomer(t *testing.T) {
	g, flows := twoFlowNet(t)
	// Duplicate f1's migration under a new name: the steady-state sum on
	// its capacity-1 links breaks only once the clone joins the set.
	clone := flows[0]
	clone.Name = "f1-clone"
	plan, refusals, err := SolveEach(g, []Flow{flows[0], flows[1], clone}, Options{})
	if err != nil {
		t.Fatalf("SolveEach: %v", err)
	}
	for _, u := range plan.Updates {
		if u.Name == "f1-clone" {
			t.Fatal("newcomer admitted over the earlier identical flow")
		}
	}
	if len(refusals) != 1 || refusals[0].Flow != "f1-clone" {
		t.Fatalf("refusals = %+v, want f1-clone refused", refusals)
	}
}

// TestSolveEachWindowDefers: flows beyond the coalescing window are
// deferred — marked resubmittable — not refused for cause.
func TestSolveEachWindowDefers(t *testing.T) {
	g, flows := twoFlowNet(t)
	plan, refusals, err := SolveEach(g, flows, Options{Window: 1})
	if err != nil {
		t.Fatalf("SolveEach: %v", err)
	}
	if len(plan.Updates) != 1 {
		t.Fatalf("admitted %d flows with window 1", len(plan.Updates))
	}
	if len(refusals) != 1 || !refusals[0].Deferred {
		t.Fatalf("refusals = %+v, want one deferred", refusals)
	}
	// The deferred flow is admissible as-is on the next window.
	plan2, refusals2, err := SolveEach(g, []Flow{flows[1]}, Options{Window: 1})
	if err != nil || len(plan2.Updates) != 1 || len(refusals2) != 0 {
		t.Fatalf("resubmission of deferred flow: %v %d updates %d refusals", err, len(plan2.Updates), len(refusals2))
	}
}
