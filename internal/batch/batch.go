// Package batch schedules updates for several flows on one topology — the
// workload of traffic-engineering systems like SWAN and zUpdate that the
// paper positions itself against, composed from Chronus's single-flow
// scheduler.
//
// The composition is sequential: flows migrate one at a time, each against
// a residual topology whose capacities are reduced by the steady loads of
// all other flows (flows already migrated occupy their final paths, flows
// still waiting occupy their initial paths). Start times are spaced so one
// flow's in-flight transients have fully drained before the next flow
// begins. The combined plan is finally checked by the joint ground-truth
// validator, so the returned batch is violation-free under the summed load.
package batch

import (
	"fmt"
	"sort"
	"strings"

	"github.com/chronus-sdn/chronus/internal/core"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/scheme"
)

// Flow is one flow's update request.
type Flow struct {
	Name string
	// Demand of the flow.
	Demand graph.Capacity
	// Init and Fin are the flow's current and target paths; both must live
	// on the batch's shared graph.
	Init, Fin graph.Path
}

// Options configures Solve.
type Options struct {
	// Start is the first tick of the whole batch.
	Start dynflow.Tick
	// Scheme names the per-flow scheduler in the scheme registry. Empty
	// derives "chronus" or "chronus-fast" from Mode. The named scheme must
	// produce a timed schedule for every flow (round-based and
	// decision-only schemes cannot be sequentially composed).
	Scheme string
	// Mode selects the greedy acceptance mode when Scheme is empty (zero
	// value: ModeExact).
	Mode core.Mode
	// Gap adds idle ticks between consecutive flows' updates on top of the
	// computed drain spacing.
	Gap dynflow.Tick
	// Window caps how many flows SolveEach jointly composes in one
	// coalescing window; flows beyond it are deferred (refused with a
	// "deferred" reason) for the caller to resubmit on the next window.
	// 0 means unbounded. Solve ignores it: an all-or-nothing batch has
	// no partial-admission window to defer into.
	Window int
}

// schemeName resolves the effective registry name.
func (o Options) schemeName() string {
	if o.Scheme != "" {
		return o.Scheme
	}
	if o.Mode == core.ModeFast {
		return "chronus-fast"
	}
	return "chronus"
}

// Plan is a scheduled batch.
type Plan struct {
	// Updates pairs each flow with its schedule, in execution order.
	Updates []dynflow.FlowUpdate
	// Report is the joint validation of the whole batch.
	Report *dynflow.JointReport
}

// Makespan returns the span from the batch start to the last scheduled
// update.
func (p *Plan) Makespan(start dynflow.Tick) dynflow.Tick {
	end := start
	for _, u := range p.Updates {
		if e := u.S.End(); e > end {
			end = e
		}
	}
	return end - start
}

// ErrInfeasible wraps core.ErrInfeasible with the failing flow's name.
var ErrInfeasible = core.ErrInfeasible

// Solve schedules the batch on graph g. The flows' initial configurations
// must be jointly feasible (every link carries at most its capacity under
// the sum of initial paths), and likewise the final configurations; Solve
// verifies both before scheduling.
func Solve(g *graph.Graph, flows []Flow, opts Options) (*Plan, error) {
	name := opts.schemeName()
	s, err := scheme.Lookup(name)
	if err != nil {
		return nil, fmt.Errorf("batch: %w", err)
	}
	if len(flows) == 0 {
		return &Plan{Report: &dynflow.JointReport{}}, nil
	}
	if err := checkSteadyState(g, flows, false); err != nil {
		return nil, fmt.Errorf("batch: initial configuration: %w", err)
	}
	if err := checkSteadyState(g, flows, true); err != nil {
		return nil, fmt.Errorf("batch: final configuration: %w", err)
	}

	plan, err := compose(g, flows, opts, s, name)
	if err != nil {
		return nil, err
	}

	report, err := dynflow.ValidateJoint(plan.Updates)
	if err != nil {
		return nil, err
	}
	plan.Report = report
	if !report.OK() {
		return plan, fmt.Errorf("batch: joint validation failed for flow(s) %s: %s",
			strings.Join(violatingFlows(report, flows), ", "), report.Summary())
	}
	return plan, nil
}

// compose schedules flows in order, each on the residual topology of
// the others' steady loads, with start times spaced past the previous
// flow's drain. Errors name the failing flow.
func compose(g *graph.Graph, flows []Flow, opts Options, s scheme.Scheme, name string) (*Plan, error) {
	plan := &Plan{}
	start := opts.Start
	for i, f := range flows {
		residual, err := residualGraph(g, flows, i)
		if err != nil {
			return nil, err
		}
		in := &dynflow.Instance{G: residual, Demand: f.Demand, Init: f.Init, Fin: f.Fin}
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("batch: flow %q: %w", f.Name, err)
		}
		res, err := s.Solve(in, scheme.Options{Start: start})
		if err != nil {
			return nil, fmt.Errorf("batch: flow %q: %w", f.Name, err)
		}
		if res.Schedule == nil {
			return nil, fmt.Errorf("batch: flow %q: scheme %q produced no timed schedule to compose", f.Name, name)
		}
		// Re-anchor the schedule on the shared graph's instance for joint
		// validation and for callers executing the plan.
		full := &dynflow.Instance{G: g, Demand: f.Demand, Init: f.Init, Fin: f.Fin}
		plan.Updates = append(plan.Updates, dynflow.FlowUpdate{Name: f.Name, In: full, S: res.Schedule})

		// Next flow starts after this one's transients have drained.
		drain := dynflow.Tick(f.Init.Delay(g) + f.Fin.Delay(g))
		start = res.Schedule.End() + drain + 1 + opts.Gap
	}
	return plan, nil
}

// Refusal names one flow SolveEach could not admit and why. Reasons are
// deterministic prose: the same flows in the same order produce the
// same refusals byte for byte.
type Refusal struct {
	Flow   string `json:"flow"`
	Reason string `json:"reason"`
	// Deferred marks a flow refused only because the coalescing window
	// was full — it is admissible as-is on a later window, unlike a flow
	// refused for infeasibility or oversubscription.
	Deferred bool `json:"deferred,omitempty"`
}

// SolveEach is Solve with per-flow admission: instead of failing the
// whole batch on the first inadmissible flow, each flow is tried in
// order and the ones that cannot be composed are refused individually
// with a reason (steady-state oversubscription, missing link, no safe
// schedule on the residual topology, a failed joint validation). Every
// admission re-composes and joint-validates the whole admitted set —
// an earlier flow's schedule can stop validating once a newcomer's
// initial-path load joins the residual accounting, and that refusal
// must land on the newcomer — so the returned plan is violation-free
// under the joint validator by construction. With Options.Window > 0
// at most Window flows are admitted per call and the rest are deferred
// for the next window.
func SolveEach(g *graph.Graph, flows []Flow, opts Options) (*Plan, []Refusal, error) {
	name := opts.schemeName()
	s, err := scheme.Lookup(name)
	if err != nil {
		return nil, nil, fmt.Errorf("batch: %w", err)
	}
	current := &Plan{Report: &dynflow.JointReport{}}
	var admitted []Flow
	var refusals []Refusal
	refuse := func(f Flow, reason string, deferred bool) {
		refusals = append(refusals, Refusal{Flow: f.Name, Reason: reason, Deferred: deferred})
	}
	for _, f := range flows {
		if opts.Window > 0 && len(admitted) >= opts.Window {
			refuse(f, fmt.Sprintf("deferred: coalescing window full (%d flows)", opts.Window), true)
			continue
		}
		candidate := append(append([]Flow{}, admitted...), f)
		if err := checkSteadyState(g, candidate, false); err != nil {
			refuse(f, fmt.Sprintf("initial configuration: %v", err), false)
			continue
		}
		if err := checkSteadyState(g, candidate, true); err != nil {
			refuse(f, fmt.Sprintf("final configuration: %v", err), false)
			continue
		}
		p, err := compose(g, candidate, opts, s, name)
		if err != nil {
			refuse(f, err.Error(), false)
			continue
		}
		report, err := dynflow.ValidateJoint(p.Updates)
		if err != nil {
			return nil, refusals, err
		}
		if !report.OK() {
			refuse(f, fmt.Sprintf("joint validation with the admitted set fails: %s", report.Summary()), false)
			continue
		}
		p.Report = report
		current, admitted = p, candidate
	}
	return current, refusals, nil
}

// violatingFlows names the flows implicated in a failed joint report: the
// owners of per-flow events when there are any, otherwise (congestion has
// no single owner) every flow in the batch.
func violatingFlows(report *dynflow.JointReport, flows []Flow) []string {
	seen := map[string]bool{}
	var names []string
	for _, ev := range report.Events {
		if !seen[ev.Flow] {
			seen[ev.Flow] = true
			names = append(names, fmt.Sprintf("%q", ev.Flow))
		}
	}
	if len(names) > 0 {
		sort.Strings(names)
		return names
	}
	for _, f := range flows {
		names = append(names, fmt.Sprintf("%q", f.Name))
	}
	return names
}

// residualGraph reduces every link's capacity by the steady loads of the
// other flows around flow i's migration: flows before i occupy their final
// paths, flows after i their initial paths.
func residualGraph(g *graph.Graph, flows []Flow, i int) (*graph.Graph, error) {
	residual := g.Clone()
	occupy := func(p graph.Path, d graph.Capacity, name string) error {
		for k := 1; k < len(p); k++ {
			l, ok := residual.Link(p[k-1], p[k])
			if !ok {
				return fmt.Errorf("batch: flow %q path uses missing link", name)
			}
			rest := l.Cap - d
			if rest <= 0 {
				// The link is fully consumed by another flow's steady
				// state. If the migrating flow needs it, the mixed
				// configuration (that flow settled, this one not) is
				// oversubscribed — a case neither pure-initial nor
				// pure-final steady check covers — so the sequential order
				// is infeasible here.
				if flowUsesLink(flows[i], p[k-1], p[k]) {
					return fmt.Errorf("batch: link %s->%s is saturated by flow %q while flow %q migrates; reorder the batch: %w",
						residual.Name(p[k-1]), residual.Name(p[k]), name, flows[i].Name, core.ErrInfeasible)
				}
				residual.RemoveLink(p[k-1], p[k])
				continue
			}
			if err := residual.SetCapacity(p[k-1], p[k], rest); err != nil {
				return err
			}
		}
		return nil
	}
	for j, other := range flows {
		if j == i {
			continue
		}
		p := other.Init
		if j < i {
			p = other.Fin
		}
		if err := occupy(p, other.Demand, other.Name); err != nil {
			return nil, err
		}
	}
	return residual, nil
}

func flowUsesLink(f Flow, from, to graph.NodeID) bool {
	for _, p := range []graph.Path{f.Init, f.Fin} {
		for k := 1; k < len(p); k++ {
			if p[k-1] == from && p[k] == to {
				return true
			}
		}
	}
	return false
}

// checkSteadyState verifies that the summed steady loads respect every
// link capacity; final selects the final paths. Violations name the
// contributing flows, and links are checked in a fixed order so the first
// reported violation is deterministic.
func checkSteadyState(g *graph.Graph, flows []Flow, final bool) error {
	type linkLoad struct {
		total graph.Capacity
		names []string
	}
	loads := make(map[[2]graph.NodeID]*linkLoad)
	var keys [][2]graph.NodeID
	for _, f := range flows {
		p := f.Init
		if final {
			p = f.Fin
		}
		for k := 1; k < len(p); k++ {
			key := [2]graph.NodeID{p[k-1], p[k]}
			l := loads[key]
			if l == nil {
				l = &linkLoad{}
				loads[key] = l
				keys = append(keys, key)
			}
			l.total += f.Demand
			l.names = append(l.names, fmt.Sprintf("%q", f.Name))
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		d := loads[key]
		who := strings.Join(d.names, ", ")
		l, ok := g.Link(key[0], key[1])
		if !ok {
			return fmt.Errorf("missing link %s->%s used by flow(s) %s", g.Name(key[0]), g.Name(key[1]), who)
		}
		if d.total > l.Cap {
			return fmt.Errorf("link %s->%s oversubscribed by flow(s) %s: %d > %d", g.Name(key[0]), g.Name(key[1]), who, d.total, l.Cap)
		}
	}
	return nil
}
