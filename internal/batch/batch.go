// Package batch schedules updates for several flows on one topology — the
// workload of traffic-engineering systems like SWAN and zUpdate that the
// paper positions itself against, composed from Chronus's single-flow
// scheduler.
//
// The composition is sequential: flows migrate one at a time, each against
// a residual topology whose capacities are reduced by the steady loads of
// all other flows (flows already migrated occupy their final paths, flows
// still waiting occupy their initial paths). Start times are spaced so one
// flow's in-flight transients have fully drained before the next flow
// begins. The combined plan is finally checked by the joint ground-truth
// validator, so the returned batch is violation-free under the summed load.
package batch

import (
	"errors"
	"fmt"

	"github.com/chronus-sdn/chronus/internal/core"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
)

// Flow is one flow's update request.
type Flow struct {
	Name string
	// Demand of the flow.
	Demand graph.Capacity
	// Init and Fin are the flow's current and target paths; both must live
	// on the batch's shared graph.
	Init, Fin graph.Path
}

// Options configures Solve.
type Options struct {
	// Start is the first tick of the whole batch.
	Start dynflow.Tick
	// Mode selects the per-flow scheduler engine (zero value: ModeExact).
	Mode core.Mode
	// Gap adds idle ticks between consecutive flows' updates on top of the
	// computed drain spacing.
	Gap dynflow.Tick
}

// Plan is a scheduled batch.
type Plan struct {
	// Updates pairs each flow with its schedule, in execution order.
	Updates []dynflow.FlowUpdate
	// Report is the joint validation of the whole batch.
	Report *dynflow.JointReport
}

// Makespan returns the span from the batch start to the last scheduled
// update.
func (p *Plan) Makespan(start dynflow.Tick) dynflow.Tick {
	end := start
	for _, u := range p.Updates {
		if e := u.S.End(); e > end {
			end = e
		}
	}
	return end - start
}

// ErrInfeasible wraps core.ErrInfeasible with the failing flow's name.
var ErrInfeasible = core.ErrInfeasible

// Solve schedules the batch on graph g. The flows' initial configurations
// must be jointly feasible (every link carries at most its capacity under
// the sum of initial paths), and likewise the final configurations; Solve
// verifies both before scheduling.
func Solve(g *graph.Graph, flows []Flow, opts Options) (*Plan, error) {
	if len(flows) == 0 {
		return &Plan{Report: &dynflow.JointReport{}}, nil
	}
	if err := checkSteadyState(g, flows, false); err != nil {
		return nil, fmt.Errorf("batch: initial configuration: %w", err)
	}
	if err := checkSteadyState(g, flows, true); err != nil {
		return nil, fmt.Errorf("batch: final configuration: %w", err)
	}

	plan := &Plan{}
	start := opts.Start
	for i, f := range flows {
		residual, err := residualGraph(g, flows, i)
		if err != nil {
			return nil, err
		}
		in := &dynflow.Instance{G: residual, Demand: f.Demand, Init: f.Init, Fin: f.Fin}
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("batch: flow %q: %w", f.Name, err)
		}
		res, err := core.Greedy(in, core.Options{Start: start, Mode: opts.Mode})
		if err != nil {
			if errors.Is(err, core.ErrInfeasible) {
				return nil, fmt.Errorf("batch: flow %q: %w", f.Name, err)
			}
			return nil, err
		}
		// Re-anchor the schedule on the shared graph's instance for joint
		// validation and for callers executing the plan.
		full := &dynflow.Instance{G: g, Demand: f.Demand, Init: f.Init, Fin: f.Fin}
		plan.Updates = append(plan.Updates, dynflow.FlowUpdate{Name: f.Name, In: full, S: res.Schedule})

		// Next flow starts after this one's transients have drained.
		drain := dynflow.Tick(f.Init.Delay(g) + f.Fin.Delay(g))
		start = res.Schedule.End() + drain + 1 + opts.Gap
	}

	report, err := dynflow.ValidateJoint(plan.Updates)
	if err != nil {
		return nil, err
	}
	plan.Report = report
	if !report.OK() {
		return plan, fmt.Errorf("batch: joint validation failed: %s", report.Summary())
	}
	return plan, nil
}

// residualGraph reduces every link's capacity by the steady loads of the
// other flows around flow i's migration: flows before i occupy their final
// paths, flows after i their initial paths.
func residualGraph(g *graph.Graph, flows []Flow, i int) (*graph.Graph, error) {
	residual := g.Clone()
	occupy := func(p graph.Path, d graph.Capacity, name string) error {
		for k := 1; k < len(p); k++ {
			l, ok := residual.Link(p[k-1], p[k])
			if !ok {
				return fmt.Errorf("batch: flow %q path uses missing link", name)
			}
			rest := l.Cap - d
			if rest <= 0 {
				// The link is fully consumed by another flow's steady
				// state. If the migrating flow needs it, the mixed
				// configuration (that flow settled, this one not) is
				// oversubscribed — a case neither pure-initial nor
				// pure-final steady check covers — so the sequential order
				// is infeasible here.
				if flowUsesLink(flows[i], p[k-1], p[k]) {
					return fmt.Errorf("batch: link %s->%s is saturated by flow %q while flow %q migrates; reorder the batch: %w",
						residual.Name(p[k-1]), residual.Name(p[k]), name, flows[i].Name, core.ErrInfeasible)
				}
				residual.RemoveLink(p[k-1], p[k])
				continue
			}
			if err := residual.SetCapacity(p[k-1], p[k], rest); err != nil {
				return err
			}
		}
		return nil
	}
	for j, other := range flows {
		if j == i {
			continue
		}
		p := other.Init
		if j < i {
			p = other.Fin
		}
		if err := occupy(p, other.Demand, other.Name); err != nil {
			return nil, err
		}
	}
	return residual, nil
}

func flowUsesLink(f Flow, from, to graph.NodeID) bool {
	for _, p := range []graph.Path{f.Init, f.Fin} {
		for k := 1; k < len(p); k++ {
			if p[k-1] == from && p[k] == to {
				return true
			}
		}
	}
	return false
}

// checkSteadyState verifies that the summed steady loads respect every
// link capacity; final selects the final paths.
func checkSteadyState(g *graph.Graph, flows []Flow, final bool) error {
	load := make(map[[2]graph.NodeID]graph.Capacity)
	for _, f := range flows {
		p := f.Init
		if final {
			p = f.Fin
		}
		for k := 1; k < len(p); k++ {
			load[[2]graph.NodeID{p[k-1], p[k]}] += f.Demand
		}
	}
	for key, d := range load {
		l, ok := g.Link(key[0], key[1])
		if !ok {
			return fmt.Errorf("missing link %s->%s", g.Name(key[0]), g.Name(key[1]))
		}
		if d > l.Cap {
			return fmt.Errorf("link %s->%s oversubscribed: %d > %d", g.Name(key[0]), g.Name(key[1]), d, l.Cap)
		}
	}
	return nil
}
