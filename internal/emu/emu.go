// Package emu is the data-plane emulator standing in for the paper's
// Mininet/Open vSwitch testbed: switches with exact-match flow tables,
// links with capacity and propagation delay, and fluid flows whose rate
// changes propagate through the network at link speed.
//
// The fluid model is what makes the Fig. 6 experiment meaningful: when a
// rule flips, traffic already in flight keeps arriving on the old route for
// one propagation delay per hop, so links transiently carry old and new
// traffic simultaneously — the same mechanism the dynamic-flow model
// (internal/dynflow) captures discretely. The emulator integrates per-link
// byte counters so the controller can measure bandwidth consumption exactly
// the way the paper's Floodlight statistics module does (byte-counter
// deltas divided by the sampling interval).
//
// Exact-match tables follow the paper's own justification: prefix and
// wildcard rules "are increasingly being substituted with exact match
// rules in SDNs".
//
// All mutations must be performed from within simulation events (the switch
// agents in internal/switchd do this); the emulator is not goroutine-safe
// by design — determinism comes from the single-threaded event kernel.
package emu

import (
	"fmt"
	"sort"

	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/obs"
	"github.com/chronus-sdn/chronus/internal/sim"
)

// Rate is a traffic rate in capacity units (Mbps in the experiments).
type Rate int64

// Tag is a version tag carried by traffic (the paper's two-phase updates
// use VLAN IDs).
type Tag uint16

// FlowKey identifies a traffic aggregate: a named flow plus its version
// tag. Forwarding rules match FlowKeys exactly.
type FlowKey struct {
	Flow string
	Tag  Tag
}

func (k FlowKey) String() string { return fmt.Sprintf("%s/%d", k.Flow, k.Tag) }

// DefaultTTL is the hop budget of injected traffic; looping fluid dies
// after DefaultTTL hops, like TTL-expired packets.
const DefaultTTL = 64

// Network is an emulated data plane over a graph topology.
type Network struct {
	G        *graph.Graph
	K        *sim.Kernel
	switches map[graph.NodeID]*Switch
	links    map[[2]graph.NodeID]*Link

	met   emuMetrics
	trace *obs.Tracer
}

// New builds the emulated network: one Switch per graph node, one Link per
// graph link.
func New(g *graph.Graph, k *sim.Kernel) *Network {
	n := &Network{
		G:        g,
		K:        k,
		switches: make(map[graph.NodeID]*Switch, g.NumNodes()),
		links:    make(map[[2]graph.NodeID]*Link, g.NumLinks()),
	}
	for _, id := range g.Nodes() {
		n.switches[id] = newSwitch(n, id)
	}
	for _, l := range g.Links() {
		n.links[[2]graph.NodeID{l.From, l.To}] = newLink(n, l)
	}
	return n
}

// Switch returns the switch for a node; nil if unknown.
func (n *Network) Switch(id graph.NodeID) *Switch { return n.switches[id] }

// Link returns the link (from, to); nil if absent.
func (n *Network) Link(from, to graph.NodeID) *Link {
	return n.links[[2]graph.NodeID{from, to}]
}

// Links returns all links in deterministic order.
func (n *Network) Links() []*Link {
	keys := make([][2]graph.NodeID, 0, len(n.links))
	for k := range n.links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]*Link, 0, len(keys))
	for _, k := range keys {
		out = append(out, n.links[k])
	}
	return out
}

// Inject sets the rate at which the host attached to src emits traffic for
// the given flow key, effective now. Passing rate 0 stops the injection.
// Re-tagging traffic (the two-phase ingress stamp) is Inject(old tag, 0)
// plus Inject(new tag, rate) in the same event.
func (n *Network) Inject(src graph.NodeID, key FlowKey, rate Rate) {
	sw := n.switches[src]
	if sw == nil {
		panic(fmt.Sprintf("emu: inject at unknown switch %d", src))
	}
	if n.trace != nil {
		// The injection record is what lets a trace consumer (the audit
		// package) replay emissions: which switch sources the key, at what
		// rate, from which tick.
		n.trace.Point(int64(n.K.Now()), "emu.inject",
			obs.A("switch", sw.Name()), obs.A("key", key.String()),
			obs.A("rate", int64(rate)))
	}
	sw.setInput(hostPort, key, DefaultTTL, rate)
}

// hostPort is the pseudo in-link identifier for host-injected traffic.
var hostPort = [2]graph.NodeID{-2, -2}

// TotalOverloadTicks sums, over all links, the time spent above capacity.
func (n *Network) TotalOverloadTicks() sim.Time {
	var total sim.Time
	for _, l := range n.Links() {
		for _, iv := range l.Overloads() {
			total += iv.Duration(n.K.Now())
		}
	}
	return total
}

// CongestedLinks returns the number of links that ever exceeded capacity.
func (n *Network) CongestedLinks() int {
	count := 0
	for _, l := range n.Links() {
		if len(l.Overloads()) > 0 {
			count++
		}
	}
	return count
}
