package emu

import (
	"math/rand"
	"testing"

	"github.com/chronus-sdn/chronus/internal/core"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/sim"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// lineNet builds a 4-switch line with the flow routed end to end.
func lineNet(t *testing.T) (*Network, *sim.Kernel, []graph.NodeID) {
	t.Helper()
	g, ids := topo.Line(4, 100, 10) // 100 Mbps, 10 ms per hop
	k := sim.NewKernel()
	n := New(g, k)
	key := FlowKey{Flow: "f", Tag: 0}
	for i := 0; i+1 < len(ids); i++ {
		n.Switch(ids[i]).InstallRule(key, Action{NextHop: ids[i+1]})
	}
	n.Switch(ids[3]).InstallRule(key, Action{ToHost: true})
	return n, k, ids
}

func TestSteadyDelivery(t *testing.T) {
	n, k, ids := lineNet(t)
	key := FlowKey{Flow: "f", Tag: 0}
	k.At(0, func() { n.Inject(ids[0], key, 80) })
	k.RunUntil(1000)

	// Path delay is 30 ms; delivery runs for 970 ms at 80 units.
	want := 80.0 * 970
	if got := n.Switch(ids[3]).Delivered(); got != want {
		t.Fatalf("delivered = %f, want %f", got, want)
	}
	// Every link settles at 80 units, below capacity.
	for _, l := range n.Links() {
		if l.Rate() != 80 {
			t.Fatalf("link %d->%d rate = %d, want 80", l.From(), l.To(), l.Rate())
		}
		if len(l.Overloads()) != 0 {
			t.Fatalf("unexpected overload on %d->%d", l.From(), l.To())
		}
	}
	// First link carries traffic from t=0: 1000 ms × 80.
	if got := n.Link(ids[0], ids[1]).Bytes(); got != 80*1000 {
		t.Fatalf("first link bytes = %f", got)
	}
	// Last link carries from t=20.
	if got := n.Link(ids[2], ids[3]).Bytes(); got != 80*980 {
		t.Fatalf("last link bytes = %f", got)
	}
}

func TestStopDrains(t *testing.T) {
	n, k, ids := lineNet(t)
	key := FlowKey{Flow: "f", Tag: 0}
	k.At(0, func() { n.Inject(ids[0], key, 50) })
	k.At(500, func() { n.Inject(ids[0], key, 0) })
	k.RunUntil(2000)
	if got := n.Switch(ids[3]).Delivered(); got != 50.0*500 {
		t.Fatalf("delivered = %f, want %f", got, 50.0*500)
	}
	for _, l := range n.Links() {
		if l.Rate() != 0 {
			t.Fatalf("link %d->%d still carries %d", l.From(), l.To(), l.Rate())
		}
	}
}

func TestMissingRuleDrops(t *testing.T) {
	g, ids := topo.Line(3, 10, 5)
	k := sim.NewKernel()
	n := New(g, k)
	key := FlowKey{Flow: "f", Tag: 0}
	n.Switch(ids[0]).InstallRule(key, Action{NextHop: ids[1]})
	// ids[1] has no rule: blackhole.
	k.At(0, func() { n.Inject(ids[0], key, 10) })
	k.RunUntil(100)
	if got := n.Switch(ids[1]).Dropped(); got != 10.0*95 {
		t.Fatalf("dropped = %f, want %f", got, 10.0*95)
	}
	if got := n.Switch(ids[2]).Delivered(); got != 0 {
		t.Fatalf("delivered = %f, want 0", got)
	}
}

func TestForwardingLoopDiesByTTL(t *testing.T) {
	g := graph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.MustAddLink(a, b, 10, 1)
	g.MustAddLink(b, c, 10, 1)
	g.MustAddLink(c, b, 10, 1)
	k := sim.NewKernel()
	n := New(g, k)
	key := FlowKey{Flow: "f", Tag: 0}
	n.Switch(a).InstallRule(key, Action{NextHop: b})
	n.Switch(b).InstallRule(key, Action{NextHop: c})
	n.Switch(c).InstallRule(key, Action{NextHop: b}) // loop b <-> c
	k.At(0, func() { n.Inject(a, key, 4) })
	k.RunUntil(500)
	// The loop multiplies occupancy: the b->c link carries many TTL
	// generations at once.
	if got := n.Link(b, c).Rate(); got <= 4 {
		t.Fatalf("loop link rate = %d, want amplification > 4", got)
	}
	drops := n.Switch(b).Dropped() + n.Switch(c).Dropped()
	if drops == 0 {
		t.Fatal("no TTL-expiry drops recorded")
	}
	// The overload recorder sees it: capacity is 10, loop carries ~4×31.
	if len(n.Link(b, c).Overloads()) == 0 {
		t.Fatal("loop did not register overload")
	}
}

func TestRetagIngress(t *testing.T) {
	g, ids := topo.Line(3, 100, 5)
	k := sim.NewKernel()
	n := New(g, k)
	oldKey := FlowKey{Flow: "f", Tag: 1}
	newKey := FlowKey{Flow: "f", Tag: 2}
	for _, key := range []FlowKey{oldKey, newKey} {
		n.Switch(ids[0]).InstallRule(key, Action{NextHop: ids[1]})
		n.Switch(ids[1]).InstallRule(key, Action{NextHop: ids[2]})
		n.Switch(ids[2]).InstallRule(key, Action{ToHost: true})
	}
	k.At(0, func() { n.Inject(ids[0], oldKey, 30) })
	k.At(100, func() {
		// Two-phase stamp flip: same event, no gap.
		n.Inject(ids[0], oldKey, 0)
		n.Inject(ids[0], newKey, 30)
	})
	k.RunUntil(300)
	if got := n.Switch(ids[2]).Delivered(); got != 30.0*(300-10) {
		t.Fatalf("delivered = %f, want %f", got, 30.0*(300-10))
	}
	for _, l := range n.Links() {
		if len(l.Overloads()) != 0 {
			t.Fatal("retagging must not overload")
		}
		if l.Rate() != 30 {
			t.Fatalf("steady rate = %d, want 30", l.Rate())
		}
	}
}

func TestTransientOverlapOverloads(t *testing.T) {
	// Old route s->a->m->d (20 ms to m), new route s->m (5 ms): flipping s
	// overlaps old in-flight traffic with new traffic on (m, d) for 15 ms.
	g := graph.New()
	s, a, m, d := g.AddNode("s"), g.AddNode("a"), g.AddNode("m"), g.AddNode("d")
	g.MustAddLink(s, a, 100, 10)
	g.MustAddLink(a, m, 100, 10)
	g.MustAddLink(m, d, 100, 10)
	g.MustAddLink(s, m, 100, 5)
	k := sim.NewKernel()
	n := New(g, k)
	key := FlowKey{Flow: "f", Tag: 0}
	n.Switch(s).InstallRule(key, Action{NextHop: a})
	n.Switch(a).InstallRule(key, Action{NextHop: m})
	n.Switch(m).InstallRule(key, Action{NextHop: d})
	n.Switch(d).InstallRule(key, Action{ToHost: true})
	k.At(0, func() { n.Inject(s, key, 100) })
	k.At(200, func() { n.Switch(s).InstallRule(key, Action{NextHop: m}) })
	k.RunUntil(400)

	ovs := n.Link(m, d).Overloads()
	if len(ovs) != 1 {
		t.Fatalf("overloads = %+v, want exactly one", ovs)
	}
	ov := ovs[0]
	if ov.Peak != 200 {
		t.Fatalf("peak = %d, want 200", ov.Peak)
	}
	// New traffic reaches m at 205; old keeps arriving until 220.
	if ov.Start != 205 || ov.End != 220 {
		t.Fatalf("overload window = [%d, %d], want [205, 220]", ov.Start, ov.End)
	}
	if n.TotalOverloadTicks() != 15 {
		t.Fatalf("total overload = %d, want 15", n.TotalOverloadTicks())
	}
	if n.CongestedLinks() != 1 {
		t.Fatalf("congested links = %d, want 1", n.CongestedLinks())
	}
}

// TestEmuAgreesWithDynflowOnFig1: replaying the paper's timed sequence in
// the fluid emulator is overload- and loop-free, while the naive
// simultaneous flip is not — the emulator and the dynamic-flow validator
// agree on the running example.
func TestEmuAgreesWithDynflowOnFig1(t *testing.T) {
	in := topo.Fig1Example()
	run := func(s *dynflow.Schedule) *Network {
		k := sim.NewKernel()
		n := New(in.G, k)
		key := FlowKey{Flow: "f", Tag: 0}
		// Old rules + destination delivery.
		for i := 0; i+1 < len(in.Init); i++ {
			n.Switch(in.Init[i]).InstallRule(key, Action{NextHop: in.Init[i+1]})
		}
		n.Switch(in.Dest()).InstallRule(key, Action{ToHost: true})
		k.At(0, func() { n.Inject(in.Source(), key, 1) })
		// Flips at schedule ticks, offset so the flow is in steady state.
		const off = 50
		for v, tv := range s.Times {
			v, tv := v, tv
			k.At(off+sim.Time(tv), func() {
				n.Switch(v).InstallRule(key, Action{NextHop: in.Fin.NextHop(v)})
			})
		}
		k.RunUntil(off + 100)
		return n
	}

	clean := run(topo.PaperSchedule(in))
	for _, l := range clean.Links() {
		if len(l.Overloads()) != 0 {
			t.Fatalf("paper schedule overloaded link %d->%d in the emulator", l.From(), l.To())
		}
	}
	var drops float64
	for _, id := range in.G.Nodes() {
		drops += clean.Switch(id).Dropped()
	}
	if drops != 0 {
		t.Fatalf("paper schedule dropped %f", drops)
	}

	// The paper's congestion case: v1 and v2 flip together, so new traffic
	// funnels onto (v5,v6) while old traffic is still draining through
	// v3..v5 (dynflow.TestValidateDetectsCongestion shows the discrete
	// analogue). Note the fluid model intentionally does not flag the
	// all-at-once flip: its violations are per-unit revisits (Definition
	// 2), which staggered 1-tick fluid segments do not expose as overload.
	naive := dynflow.NewSchedule(0)
	naive.Set(in.G.Lookup("v1"), 0)
	naive.Set(in.G.Lookup("v2"), 0)
	bad := run(naive)
	l56 := bad.Link(in.G.Lookup("v5"), in.G.Lookup("v6"))
	ovs := l56.Overloads()
	if len(ovs) == 0 {
		t.Fatal("v1+v2 flip showed no overload on (v5,v6) in the emulator")
	}
	if ovs[0].Peak != 2 {
		t.Fatalf("overload peak = %d, want 2 (old + new demand)", ovs[0].Peak)
	}
}

func TestDumpRulesAndCounters(t *testing.T) {
	n, k, ids := lineNet(t)
	key := FlowKey{Flow: "f", Tag: 0}
	k.At(0, func() { n.Inject(ids[0], key, 10) })
	k.RunUntil(100)
	sw := n.Switch(ids[1])
	dump := sw.DumpRules()
	if len(dump) != 1 {
		t.Fatalf("dump = %+v", dump)
	}
	if dump[0].Action != "output:2" {
		t.Fatalf("action = %q", dump[0].Action)
	}
	if dump[0].Bytes != 10.0*90 { // arrives at t=10
		t.Fatalf("rule bytes = %f, want %f", dump[0].Bytes, 10.0*90)
	}
	if sw.RuleCount() != 1 || sw.FlowMods() != 1 {
		t.Fatalf("count=%d mods=%d", sw.RuleCount(), sw.FlowMods())
	}
	sw.RemoveRule(key)
	if sw.RuleCount() != 0 || sw.FlowMods() != 2 {
		t.Fatal("remove not accounted")
	}
	sw.RemoveRule(key) // idempotent
	if sw.FlowMods() != 2 {
		t.Fatal("no-op remove counted")
	}
}

// TestEmuAgreesOnRandomSchedules is the cross-model check at scale: any
// schedule the (discrete, unit-based) Chronus scheduler certifies must also
// run clean on the (continuous, fluid) emulator — no overload with positive
// duration, no drops — across random instances.
func TestEmuAgreesOnRandomSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	checked := 0
	for i := 0; i < 25; i++ {
		in := topo.RandomInstance(rng, topo.DefaultRandomParams(5+rng.Intn(10)))
		res, err := core.Greedy(in, core.Options{Mode: core.ModeFast})
		if err != nil {
			continue
		}
		checked++
		k := sim.NewKernel()
		n := New(in.G, k)
		key := FlowKey{Flow: "f", Tag: 0}
		for j := 0; j+1 < len(in.Init); j++ {
			n.Switch(in.Init[j]).InstallRule(key, Action{NextHop: in.Init[j+1]})
		}
		n.Switch(in.Dest()).InstallRule(key, Action{ToHost: true})
		k.At(0, func() { n.Inject(in.Source(), key, Rate(in.Demand)) })
		const off = 200 // steady state before the update begins
		for v, tv := range res.Schedule.Times {
			v, tv := v, tv
			k.At(off+sim.Time(tv), func() {
				n.Switch(v).InstallRule(key, Action{NextHop: in.Fin.NextHop(v)})
			})
		}
		k.RunUntil(off + 500)
		for _, l := range n.Links() {
			if ovs := l.Overloads(); len(ovs) > 0 {
				t.Fatalf("instance %d: emulator overloaded %d->%d: %+v (schedule %s)",
					i, l.From(), l.To(), ovs, res.Schedule.Format(in))
			}
		}
		var drops float64
		for _, id := range in.G.Nodes() {
			drops += n.Switch(id).Dropped()
		}
		if drops > 0 {
			t.Fatalf("instance %d: emulator dropped %f", i, drops)
		}
	}
	if checked < 5 {
		t.Fatalf("only %d schedules checked", checked)
	}
}
