package emu

import (
	"fmt"
	"sort"

	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/sim"
)

// Action is what a rule does with matching traffic.
type Action struct {
	// NextHop forwards to the adjacent switch; used when ToHost is false.
	NextHop graph.NodeID
	// ToHost delivers to the locally attached host.
	ToHost bool
}

func (a Action) String() string {
	if a.ToHost {
		return "output:host"
	}
	return fmt.Sprintf("output:%d", a.NextHop)
}

// Rule is one exact-match flow-table entry with its counters.
type Rule struct {
	Key    FlowKey
	Action Action

	bytes counter
}

// Bytes returns the rule's byte counter at time now (unit·ticks, the
// integral of matched rate).
func (r *Rule) Bytes(now sim.Time) float64 { return r.bytes.at(now) }

// Switch is an emulated OpenFlow-style switch: an exact-match flow table,
// per-key arrival bookkeeping and delivery/drop counters.
type Switch struct {
	net *Network
	id  graph.NodeID

	rules map[FlowKey]*Rule
	// in[inPort][key][ttl] is the arrival rate of (key, ttl) traffic from
	// inPort (a link's endpoint pair, or hostPort).
	in map[[2]graph.NodeID]map[FlowKey]map[int]Rate
	// out[key][ttl] is the currently forwarded contribution, to diff when
	// rules or arrivals change.
	out map[FlowKey]map[int]outContribution

	delivered counter // traffic handed to the local host
	dropped   counter // traffic without a matching rule or with expired TTL
	hostByKey map[FlowKey]hostRates
	flowMods  int64

	// missHandler, when set, fires once each time a key transitions from
	// not-dropping to dropping — the emulator's PacketIn hook.
	missHandler func(key FlowKey, reason MissReason)
}

// MissReason classifies why a switch started dropping a key's traffic.
type MissReason uint8

// Miss reasons.
const (
	// MissNoRule: no flow-table entry matched.
	MissNoRule MissReason = iota + 1
	// MissTTLExpired: the hop budget ran out (forwarding loop).
	MissTTLExpired
)

// SetMissHandler installs the drop-notification hook (nil disables it).
func (sw *Switch) SetMissHandler(h func(key FlowKey, reason MissReason)) {
	sw.missHandler = h
}

type outContribution struct {
	action Action
	rate   Rate
}

func newSwitch(n *Network, id graph.NodeID) *Switch {
	return &Switch{
		net:   n,
		id:    id,
		rules: make(map[FlowKey]*Rule),
		in:    make(map[[2]graph.NodeID]map[FlowKey]map[int]Rate),
		out:   make(map[FlowKey]map[int]outContribution),
	}
}

// ID returns the switch's node ID.
func (sw *Switch) ID() graph.NodeID { return sw.id }

// Name returns the switch's topology name.
func (sw *Switch) Name() string { return sw.net.G.Name(sw.id) }

// InstallRule adds or replaces the entry for key, effective immediately
// (the caller runs inside a simulation event; rule timing is the switch
// agent's concern).
func (sw *Switch) InstallRule(key FlowKey, action Action) {
	r, ok := sw.rules[key]
	if !ok {
		r = &Rule{Key: key}
		sw.rules[key] = r
	}
	now := sw.net.K.Now()
	r.bytes.setRate(now, 0) // close the old integration segment
	r.Action = action
	sw.flowMods++
	sw.reroute(key)
}

// RemoveRule deletes the entry for key.
func (sw *Switch) RemoveRule(key FlowKey) {
	if _, ok := sw.rules[key]; !ok {
		return
	}
	delete(sw.rules, key)
	sw.flowMods++
	sw.reroute(key)
}

// RuleCount returns the number of resident entries.
func (sw *Switch) RuleCount() int { return len(sw.rules) }

// FlowMods returns how many table modifications the switch has applied.
func (sw *Switch) FlowMods() int64 { return sw.flowMods }

// RuleInfo is a dump entry for displaying flow tables (the paper's
// Table II).
type RuleInfo struct {
	Key    FlowKey
	Action string
	Bytes  float64
}

// DumpRules returns the flow table sorted by key.
func (sw *Switch) DumpRules() []RuleInfo {
	out := make([]RuleInfo, 0, len(sw.rules))
	now := sw.net.K.Now()
	for _, r := range sw.rules {
		out = append(out, RuleInfo{Key: r.Key, Action: r.Action.String(), Bytes: r.Bytes(now)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Flow != out[j].Key.Flow {
			return out[i].Key.Flow < out[j].Key.Flow
		}
		return out[i].Key.Tag < out[j].Key.Tag
	})
	return out
}

// Delivered returns the bytes delivered to the local host by time now.
func (sw *Switch) Delivered() float64 { return sw.delivered.at(sw.net.K.Now()) }

// Dropped returns the bytes dropped (no rule / TTL expired) by time now.
func (sw *Switch) Dropped() float64 { return sw.dropped.at(sw.net.K.Now()) }

// DropRate returns the current drop rate.
func (sw *Switch) DropRate() Rate { return sw.dropped.rate }

// setInput records that (key, ttl) traffic arrives from inPort at the given
// rate, then re-evaluates forwarding for key.
func (sw *Switch) setInput(inPort [2]graph.NodeID, key FlowKey, ttl int, rate Rate) {
	byKey, ok := sw.in[inPort]
	if !ok {
		byKey = make(map[FlowKey]map[int]Rate)
		sw.in[inPort] = byKey
	}
	byTTL, ok := byKey[key]
	if !ok {
		byTTL = make(map[int]Rate)
		byKey[key] = byTTL
	}
	if rate == 0 {
		delete(byTTL, ttl)
	} else {
		byTTL[ttl] = rate
	}
	sw.reroute(key)
}

// arrivalByTTL aggregates the arrival rate for key across in-ports.
func (sw *Switch) arrivalByTTL(key FlowKey) map[int]Rate {
	agg := make(map[int]Rate)
	for _, byKey := range sw.in {
		for ttl, rate := range byKey[key] {
			agg[ttl] += rate
		}
	}
	return agg
}

// reroute recomputes the forwarding of key's traffic after an arrival or
// rule change, diffing against the previous contribution and propagating
// rate-change fronts downstream with the link delay.
func (sw *Switch) reroute(key FlowKey) {
	now := sw.net.K.Now()
	arr := sw.arrivalByTTL(key)
	rule := sw.rules[key]

	prev := sw.out[key]
	next := make(map[int]outContribution, len(arr))
	var droppedRate, deliveredRate Rate
	missReason := MissReason(0)
	for ttl, rate := range arr {
		switch {
		case rule == nil:
			droppedRate += rate
			missReason = MissNoRule
		case rule.Action.ToHost:
			deliveredRate += rate
		case ttl <= 0:
			droppedRate += rate
			if missReason == 0 {
				missReason = MissTTLExpired
			}
		case sw.net.Link(sw.id, rule.Action.NextHop) == nil:
			// Dangling rule (non-adjacent next hop): port drop.
			droppedRate += rate
			missReason = MissNoRule
		default:
			next[ttl] = outContribution{action: rule.Action, rate: rate}
		}
	}

	// Rule byte counter integrates all matched traffic.
	if rule != nil {
		var matched Rate
		for _, rate := range arr {
			matched += rate
		}
		rule.bytes.setRate(now, matched)
	}
	startedDropping := sw.updateHostCounters(now, key, deliveredRate, droppedRate)
	if startedDropping {
		sw.net.dropStarted(sw, now, key, missReason)
		if sw.missHandler != nil {
			sw.missHandler(key, missReason)
		}
	}

	// Diff previous vs next per (ttl, action) and emit changes.
	for ttl, pc := range prev {
		nc, ok := next[ttl]
		if ok && nc.action == pc.action && nc.rate == pc.rate {
			continue
		}
		sw.emit(now, key, ttl, pc.action, 0)
	}
	for ttl, nc := range next {
		pc, ok := prev[ttl]
		if ok && pc.action == nc.action && pc.rate == nc.rate {
			continue
		}
		sw.emit(now, key, ttl, nc.action, nc.rate)
	}
	if len(next) == 0 {
		delete(sw.out, key)
	} else {
		sw.out[key] = next
	}
}

// hostRates tracks the per-key delivered/dropped rates so aggregate
// counters stay correct when several keys change independently.
type hostRates struct {
	delivered Rate
	dropped   Rate
}

// updateHostCounters reconciles the per-key delivered/dropped rates and
// reports whether the key just transitioned into dropping.
func (sw *Switch) updateHostCounters(now sim.Time, key FlowKey, delivered, dropped Rate) bool {
	if sw.hostByKey == nil {
		sw.hostByKey = make(map[FlowKey]hostRates)
	}
	prev := sw.hostByKey[key]
	if prev.delivered == delivered && prev.dropped == dropped {
		return false
	}
	sw.delivered.setRate(now, sw.delivered.rate-prev.delivered+delivered)
	sw.dropped.setRate(now, sw.dropped.rate-prev.dropped+dropped)
	if delivered == 0 && dropped == 0 {
		delete(sw.hostByKey, key)
	} else {
		sw.hostByKey[key] = hostRates{delivered: delivered, dropped: dropped}
	}
	return prev.dropped == 0 && dropped > 0
}

// emit updates the outgoing link contribution for (key, ttl) and schedules
// the arrival-front at the downstream switch.
func (sw *Switch) emit(now sim.Time, key FlowKey, ttl int, action Action, rate Rate) {
	link := sw.net.Link(sw.id, action.NextHop)
	if link == nil {
		// A rule pointing at a non-adjacent switch: traffic is dropped at
		// the port. Count it.
		return
	}
	link.setContribution(now, key, ttl, rate)
	peer := sw.net.Switch(action.NextHop)
	port := [2]graph.NodeID{sw.id, action.NextHop}
	delay := sim.Time(link.spec.Delay)
	sw.net.K.At(now+delay, func() {
		peer.setInput(port, key, ttl-1, rate)
	})
}
