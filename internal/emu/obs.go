package emu

import (
	"github.com/chronus-sdn/chronus/internal/obs"
	"github.com/chronus-sdn/chronus/internal/sim"
)

// emuMetrics bundles the data-plane instruments shared by every switch
// and link of one network.
type emuMetrics struct {
	overloads  *obs.Counter
	dropNoRule *obs.Counter
	dropTTL    *obs.Counter
}

// RegisterMetrics pre-registers the emulator metric families on r so they
// appear in expositions before the first event.
func RegisterMetrics(r *obs.Registry) {
	newEmuMetrics(r)
}

func newEmuMetrics(r *obs.Registry) emuMetrics {
	if r != nil {
		r.Help("chronus_emu_overloads_total", "link overload intervals recorded (congestion events)")
		r.Help("chronus_emu_drop_starts_total", "keys that started blackholing, by miss reason")
	}
	return emuMetrics{
		overloads:  r.Counter("chronus_emu_overloads_total"),
		dropNoRule: r.Counter(`chronus_emu_drop_starts_total{reason="no_rule"}`),
		dropTTL:    r.Counter(`chronus_emu_drop_starts_total{reason="ttl_expired"}`),
	}
}

// SetObs attaches telemetry sinks to the network: congestion and
// blackhole counters on r, and per-event trace records on tr. Either
// argument may be nil. Like all emulator mutations it must be called
// from outside (or before) any running simulation events.
func (n *Network) SetObs(r *obs.Registry, tr *obs.Tracer) {
	n.met = newEmuMetrics(r)
	n.trace = tr
}

// overloadClosed records a completed link overload interval. It fires at
// interval close rather than open so zero-length blips — which the
// emulator discards from Overloads() — never reach the telemetry, and
// the counter agrees with CongestedLinks().
func (n *Network) overloadClosed(l *Link, start, end sim.Time, peak Rate) {
	n.met.overloads.Inc()
	if n.trace != nil {
		n.trace.Span("emu.overload", int64(start), int64(end),
			obs.A("link", n.G.Name(l.From())+">"+n.G.Name(l.To())),
			obs.A("peak", int64(peak)), obs.A("cap", int64(l.Capacity())))
	}
}

// dropStarted records a key transitioning into blackholing at a switch.
func (n *Network) dropStarted(sw *Switch, now sim.Time, key FlowKey, reason MissReason) {
	if reason == MissTTLExpired {
		n.met.dropTTL.Inc()
	} else {
		n.met.dropNoRule.Inc()
	}
	if n.trace != nil {
		n.trace.Point(int64(now), "emu.drop",
			obs.A("switch", sw.Name()), obs.A("key", key.String()),
			obs.A("reason", missReasonString(reason)))
	}
}

func missReasonString(r MissReason) string {
	if r == MissTTLExpired {
		return "ttl_expired"
	}
	return "no_rule"
}
