package emu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/sim"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// TestConservationProperty: after all traffic drains, every injected byte
// was either delivered to a host or dropped (blackhole/TTL) — the fluid
// emulator conserves traffic.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		in := topo.RandomInstance(rng, topo.DefaultRandomParams(n))
		g := in.G
		k := sim.NewKernel()
		net := New(g, k)
		key := FlowKey{Flow: "f", Tag: 0}

		// Program the initial path; randomly mutate some switches midway
		// to new rules (possibly creating loops or blackholes).
		for i := 0; i+1 < len(in.Init); i++ {
			net.Switch(in.Init[i]).InstallRule(key, Action{NextHop: in.Init[i+1]})
		}
		net.Switch(in.Dest()).InstallRule(key, Action{ToHost: true})

		const rate = 8
		const stop = 200
		k.At(0, func() { net.Inject(in.Source(), key, rate) })
		for _, v := range in.UpdateSet() {
			v := v
			if rng.Intn(2) == 0 {
				at := sim.Time(20 + rng.Intn(100))
				k.At(at, func() {
					net.Switch(v).InstallRule(key, Action{NextHop: in.Fin.NextHop(v)})
				})
			}
		}
		k.At(stop, func() { net.Inject(in.Source(), key, 0) })
		k.RunUntil(5000)

		injected := float64(rate * stop)
		var accounted float64
		for _, id := range g.Nodes() {
			accounted += net.Switch(id).Delivered() + net.Switch(id).Dropped()
		}
		// Everything drained: no link still carries traffic.
		for _, l := range net.Links() {
			if l.Rate() != 0 {
				return false
			}
		}
		diff := injected - accounted
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestLinkTimelineMatchesCounter: integrating a link's rate timeline equals
// its byte counter at any sampled instant.
func TestLinkTimelineMatchesCounter(t *testing.T) {
	g, ids := topo.Line(4, 50, 7)
	k := sim.NewKernel()
	net := New(g, k)
	key := FlowKey{Flow: "f", Tag: 0}
	for i := 0; i+1 < len(ids); i++ {
		net.Switch(ids[i]).InstallRule(key, Action{NextHop: ids[i+1]})
	}
	net.Switch(ids[3]).InstallRule(key, Action{ToHost: true})
	k.At(0, func() { net.Inject(ids[0], key, 30) })
	k.At(100, func() { net.Inject(ids[0], key, 10) })
	k.At(200, func() { net.Inject(ids[0], key, 0) })
	k.RunUntil(400)

	l := net.Link(ids[1], ids[2])
	var integral float64
	tl := l.Timeline()
	for i, p := range tl {
		end := sim.Time(400)
		if i+1 < len(tl) {
			end = tl[i+1].At
		}
		integral += float64(p.Rate) * float64(end-p.At)
	}
	if counter := l.Bytes(); counter != integral {
		t.Fatalf("counter %f != timeline integral %f", counter, integral)
	}
}

// TestOverloadAccountingProperty: a link's overload intervals exactly cover
// the times its timeline exceeds capacity.
func TestOverloadAccountingProperty(t *testing.T) {
	g := graph.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.MustAddLink(a, b, 10, 1)
	k := sim.NewKernel()
	net := New(g, k)
	net.Switch(b).InstallRule(FlowKey{Flow: "x", Tag: 0}, Action{ToHost: true})
	net.Switch(b).InstallRule(FlowKey{Flow: "y", Tag: 0}, Action{ToHost: true})
	net.Switch(a).InstallRule(FlowKey{Flow: "x", Tag: 0}, Action{NextHop: b})
	net.Switch(a).InstallRule(FlowKey{Flow: "y", Tag: 0}, Action{NextHop: b})

	k.At(0, func() { net.Inject(a, FlowKey{Flow: "x", Tag: 0}, 8) })
	k.At(50, func() { net.Inject(a, FlowKey{Flow: "y", Tag: 0}, 8) }) // 16 > 10
	k.At(80, func() { net.Inject(a, FlowKey{Flow: "x", Tag: 0}, 0) })
	k.At(120, func() { net.Inject(a, FlowKey{Flow: "y", Tag: 0}, 12) }) // 12 > 10
	k.At(150, func() { net.Inject(a, FlowKey{Flow: "y", Tag: 0}, 0) })
	k.RunUntil(300)

	l := net.Link(a, b)
	ovs := l.Overloads()
	if len(ovs) != 2 {
		t.Fatalf("overloads = %+v, want 2 intervals", ovs)
	}
	if ovs[0].Start != 50 || ovs[0].End != 80 || ovs[0].Peak != 16 {
		t.Fatalf("first overload = %+v", ovs[0])
	}
	if ovs[1].Start != 120 || ovs[1].End != 150 || ovs[1].Peak != 12 {
		t.Fatalf("second overload = %+v", ovs[1])
	}
	if got := ovs[0].Duration(300) + ovs[1].Duration(300); got != 60 {
		t.Fatalf("total overload = %d, want 60", got)
	}
}
