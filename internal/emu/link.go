package emu

import (
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/obs"
	"github.com/chronus-sdn/chronus/internal/sim"
)

// counter integrates a piecewise-constant rate over virtual time, the way
// hardware byte counters accumulate traffic.
type counter struct {
	since sim.Time
	total float64
	rate  Rate
}

// setRate closes the current integration segment at time now and continues
// at the new rate.
func (c *counter) setRate(now sim.Time, rate Rate) {
	c.total += float64(c.rate) * float64(now-c.since)
	c.since = now
	c.rate = rate
}

// at returns the integrated value at time now (now must be >= the last
// change).
func (c *counter) at(now sim.Time) float64 {
	return c.total + float64(c.rate)*float64(now-c.since)
}

// RatePoint is one step of a link's total-rate timeline.
type RatePoint struct {
	At   sim.Time
	Rate Rate
}

// Overload is a maximal interval during which a link's total rate exceeded
// its capacity. End is -1 while the overload is still open.
type Overload struct {
	Start sim.Time
	End   sim.Time
	Peak  Rate
}

// Duration returns the overload's length, treating an open interval as
// running until now.
func (o Overload) Duration(now sim.Time) sim.Time {
	end := o.End
	if end < 0 {
		end = now
	}
	return end - o.Start
}

// Link is an emulated unidirectional link: capacity, propagation delay,
// per-flow-key contributions, a byte counter and an overload recorder.
type Link struct {
	net  *Network
	spec graph.Link

	contrib map[FlowKey]map[int]Rate
	total   Rate
	bytes   counter

	timeline  []RatePoint
	overloads []Overload
	peak      Rate
}

func newLink(n *Network, spec graph.Link) *Link {
	return &Link{
		net:     n,
		spec:    spec,
		contrib: make(map[FlowKey]map[int]Rate),
	}
}

// From returns the upstream switch ID.
func (l *Link) From() graph.NodeID { return l.spec.From }

// To returns the downstream switch ID.
func (l *Link) To() graph.NodeID { return l.spec.To }

// Capacity returns the link capacity.
func (l *Link) Capacity() Rate { return Rate(l.spec.Cap) }

// Rate returns the current total offered rate.
func (l *Link) Rate() Rate { return l.total }

// Peak returns the highest total rate ever offered.
func (l *Link) Peak() Rate { return l.peak }

// Bytes returns the integrated traffic volume at time now (unit·ticks).
func (l *Link) Bytes() float64 { return l.bytes.at(l.net.K.Now()) }

// BytesAt returns the integrated traffic volume at an explicit time; the
// time must not precede the last rate change.
func (l *Link) BytesAt(now sim.Time) float64 { return l.bytes.at(now) }

// Timeline returns the total-rate change points in order.
func (l *Link) Timeline() []RatePoint {
	return append([]RatePoint(nil), l.timeline...)
}

// Overloads returns the over-capacity intervals recorded so far.
func (l *Link) Overloads() []Overload {
	return append([]Overload(nil), l.overloads...)
}

// setContribution updates the (key, ttl) contribution at time now.
func (l *Link) setContribution(now sim.Time, key FlowKey, ttl int, rate Rate) {
	byTTL, ok := l.contrib[key]
	if !ok {
		if rate == 0 {
			return
		}
		byTTL = make(map[int]Rate)
		l.contrib[key] = byTTL
	}
	old := byTTL[ttl]
	if old == rate {
		return
	}
	if rate == 0 {
		delete(byTTL, ttl)
		if len(byTTL) == 0 {
			delete(l.contrib, key)
		}
	} else {
		byTTL[ttl] = rate
	}
	l.setTotal(now, l.total-old+rate)
	if l.net.trace != nil {
		// One utilization record per contribution change: the key's
		// aggregate rate (across TTL bands) plus the link total, capacity
		// and delay. Trace consumers reconstruct per-link load and the
		// in-flight hop timing from these (see internal/audit).
		var keyRate Rate
		for _, r := range l.contrib[key] {
			keyRate += r
		}
		l.net.trace.Point(int64(now), "emu.rate",
			obs.A("link", l.net.G.Name(l.spec.From)+">"+l.net.G.Name(l.spec.To)),
			obs.A("key", key.String()),
			obs.A("rate", int64(keyRate)),
			obs.A("total", int64(l.total)),
			obs.A("cap", int64(l.spec.Cap)),
			obs.A("delay", int64(l.spec.Delay)))
	}
}

func (l *Link) setTotal(now sim.Time, total Rate) {
	if total == l.total {
		return
	}
	l.bytes.setRate(now, total)
	l.total = total
	if total > l.peak {
		l.peak = total
	}
	// Compress the timeline: a same-time change overwrites.
	if n := len(l.timeline); n > 0 && l.timeline[n-1].At == now {
		l.timeline[n-1].Rate = total
	} else {
		l.timeline = append(l.timeline, RatePoint{At: now, Rate: total})
	}
	over := total > l.Capacity()
	openIdx := -1
	if n := len(l.overloads); n > 0 && l.overloads[n-1].End < 0 {
		openIdx = n - 1
	}
	switch {
	case over && openIdx < 0:
		l.overloads = append(l.overloads, Overload{Start: now, End: -1, Peak: total})
	case over && openIdx >= 0:
		if total > l.overloads[openIdx].Peak {
			l.overloads[openIdx].Peak = total
		}
	case !over && openIdx >= 0:
		o := l.overloads[openIdx]
		l.overloads[openIdx].End = now
		if o.Start == now {
			// Zero-length blip (rate changed twice at the same instant):
			// discard.
			l.overloads = l.overloads[:openIdx]
		} else {
			l.net.overloadClosed(l, o.Start, now, o.Peak)
		}
	}
}
