// Package buildinfo derives version identity from the Go build info
// embedded in the binary, for the -version flags and the
// chronus_build_info metric shared by chronusd, mutp and experiments.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"

	"github.com/chronus-sdn/chronus/internal/obs"
)

// Version returns the module version baked into the binary —
// "(devel)" for plain `go build` trees, a pseudo-version or tag for
// released builds — falling back to "unknown" when the binary carries
// no build info at all (e.g. some test binaries).
func Version() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

// GoVersion returns the toolchain that built the binary.
func GoVersion() string { return runtime.Version() }

// String renders the one-line -version output for the named binary.
func String(binary string) string {
	return fmt.Sprintf("%s %s (%s)", binary, Version(), GoVersion())
}

// Register exposes the standard build-info gauge: a constant 1 whose
// labels carry the identity, the Prometheus idiom for build metadata.
func Register(r *obs.Registry) {
	r.Help("chronus_build_info", "Build identity; the value is always 1, the labels carry version and toolchain.")
	r.Gauge(fmt.Sprintf("chronus_build_info{version=%q,go_version=%q}", Version(), GoVersion())).Set(1)
}
