package buildinfo

import (
	"strings"
	"testing"

	"github.com/chronus-sdn/chronus/internal/obs"
)

func TestVersionStrings(t *testing.T) {
	if Version() == "" {
		t.Error("empty Version")
	}
	if !strings.HasPrefix(GoVersion(), "go") {
		t.Errorf("GoVersion = %q", GoVersion())
	}
	s := String("chronusd")
	if !strings.HasPrefix(s, "chronusd ") || !strings.Contains(s, GoVersion()) {
		t.Errorf("String = %q", s)
	}
}

func TestRegister(t *testing.T) {
	r := obs.NewRegistry()
	Register(r)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE chronus_build_info gauge\n") {
		t.Errorf("missing TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `chronus_build_info{version=`) || !strings.Contains(out, `go_version="`+GoVersion()+`"} 1`) {
		t.Errorf("missing build info sample:\n%s", out)
	}
}
