package core

import (
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
)

// LoopFree implements Algorithm 4: it reports whether updating switch v at
// tick t is free of forwarding loops under the configuration in force at t.
//
// Let w be v's new next hop. Two walks are performed:
//
//   - backward (the paper's formulation): from v along the incoming solid
//     (currently active) lines toward the source; if w appears upstream, a
//     unit that travelled through w to reach v would be sent back to w by
//     the new rule — a loop (Definition 2);
//   - forward: from w along the current configuration; redirected units
//     must reach the destination without returning to v, entering a cycle,
//     or hitting a switch with no rule (blackhole).
//
// The forward walk subsumes the backward one (if w is upstream of v on the
// active path, the walk from w reaches v), but both are kept: the backward
// walk is the paper's check and is cheaper on the common reject.
//
// The check inspects the snapshot configuration at t, which is exact for
// units on the active path; ModeExact additionally re-validates, covering
// in-flight units that crossed earlier flips, while ModeFast defers updates
// of switches still receiving draining traffic (see fastState).
func LoopFree(in *dynflow.Instance, s *dynflow.Schedule, v graph.NodeID, t dynflow.Tick) bool {
	return loopFreeOnPath(in, s, activePath(in, s, t), v, t)
}

// loopFreeOnPath is LoopFree with the snapshot active path precomputed;
// the greedy inner loop calls it once per candidate without re-walking the
// configuration.
func loopFreeOnPath(in *dynflow.Instance, s *dynflow.Schedule, cur graph.Path, v graph.NodeID, t dynflow.Tick) bool {
	w := in.NewNext(v)
	if w == graph.Invalid {
		return true
	}
	if i := cur.Index(v); i >= 0 {
		// Walk back via in.solidline.source from v toward the source.
		for j := i - 1; j >= 0; j-- {
			if cur[j] == w {
				return false
			}
		}
	}
	seen := make(map[graph.NodeID]bool, in.G.NumNodes())
	for cursor := w; cursor != in.Dest(); {
		if cursor == graph.Invalid {
			// Blackhole on the redirected route: reject so that rules are
			// installed destination-first (install-before-use).
			return false
		}
		if cursor == v || seen[cursor] {
			return false
		}
		seen[cursor] = true
		cursor = snapshotNext(in, s, cursor, t)
	}
	return true
}
