package core

import (
	"math"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
)

// interval is a closed range of departure ticks on a link during which one
// unit of the flow (demand d) occupies the link per tick.
type interval struct {
	lo, hi dynflow.Tick
}

type linkKey struct {
	from, to graph.NodeID
}

// sinceForever marks a ramp that has been flowing since before the
// scheduling window (the initial path's steady state).
const sinceForever = dynflow.Tick(math.MinInt64 / 4)

// fastState is the ModeFast engine behind Greedy: a closed-form account of
// every unit in flight, exploiting the structure of a single dynamic flow.
//
// Because the source emits one unit per tick and all updates happen at or
// before the current tick, the set of departure ticks on any link is a
// union of "ramps" {e + c : e in E} over contiguous emission ranges E. The
// active path carries one infinite ramp per link; every past redirection
// truncated the then-active suffix into finite intervals (draining
// traffic). A candidate update of switch v at tick t is safe when
//
//   - no draining unit arrives at v at or after t (such units carry
//     histories the snapshot checks cannot see, so the update is deferred
//     until the drain passes — at most a path delay), and
//   - the redirected units' new route shares no tick with a draining
//     interval or with the about-to-be-truncated old suffix on any link
//     that cannot carry the combined load.
//
// The committed state is collision-free by induction: truncation only
// shrinks occupancy, and every new infinite ramp was checked against all
// finite intervals over its entire future.
type fastState struct {
	in *dynflow.Instance
	// active is the path currently carried from the source. A unit emitted
	// at e departs active[i] toward active[i+1] at e + offset[i]; that
	// ramp has been in effect for departures since activeSince[i].
	active      graph.Path
	activePos   []int32 // node -> index on active, -1 off-path
	offset      []dynflow.Tick
	activeSince []dynflow.Tick
	// drains holds the finite occupancy intervals per link (departure
	// ticks), each representing demand d.
	drains map[linkKey][]interval
	// arrivesUntil[v] is the latest tick at which a draining (non-active)
	// unit can still arrive at v.
	arrivesUntil map[graph.NodeID]dynflow.Tick

	// ws supplies the pooled node-indexed scratch (activePos mirror and
	// route-walk visit stamps); routeLinks/routeOffs are per-solve route
	// buffers reused across walks.
	ws         *workspace
	routeLinks []linkKey
	routeOffs  []dynflow.Tick
}

func newFastState(in *dynflow.Instance, ws *workspace) *fastState {
	fs := &fastState{
		in:           in,
		drains:       make(map[linkKey][]interval),
		arrivesUntil: make(map[graph.NodeID]dynflow.Tick),
		ws:           ws,
	}
	fs.activePos = ws.activePos[:in.G.NumNodes()]
	for i := range fs.activePos {
		fs.activePos[i] = -1
	}
	since := make([]dynflow.Tick, len(in.Init))
	for i := range since {
		since[i] = sinceForever
	}
	fs.setActive(in.Init, since)
	return fs
}

// setActive installs p as the active path; since[i] is the first departure
// tick of the ramp on link (p[i], p[i+1]). activePos was initialized to
// all -1 by newFastState; each install clears only the outgoing path.
func (fs *fastState) setActive(p graph.Path, since []dynflow.Tick) {
	for _, v := range fs.active {
		if int(v) < len(fs.activePos) {
			fs.activePos[v] = -1
		}
	}
	fs.active = p
	for i, v := range p {
		if int(v) < len(fs.activePos) {
			fs.activePos[v] = int32(i)
		}
	}
	fs.activeSince = since
	fs.offset = fs.offset[:0]
	var c dynflow.Tick
	for i := range p {
		fs.offset = append(fs.offset, c)
		if i+1 < len(p) {
			l, ok := fs.in.G.Link(p[i], p[i+1])
			if !ok {
				// The active path always follows real links; a dangling
				// rule would have been rejected by LoopFree.
				break
			}
			c += dynflow.Tick(l.Delay)
		}
	}
}

// route follows the configuration at tick t from v's new next hop to the
// destination, returning the link sequence with cumulative departure
// offsets relative to the moment a unit leaves v. It returns ok=false on a
// cycle or missing rule (callers run LoopFree first, so this is a guard).
func (fs *fastState) route(s *dynflow.Schedule, v graph.NodeID, t dynflow.Tick) (links []linkKey, offs []dynflow.Tick, ok bool) {
	in := fs.in
	cur := v
	next := in.NewNext(v)
	var c dynflow.Tick
	fs.ws.visitGen++
	fs.mark(v)
	links = fs.routeLinks[:0]
	offs = fs.routeOffs[:0]
	for {
		if next == graph.Invalid || fs.marked(next) {
			return nil, nil, false
		}
		l, lok := fs.link(cur, next)
		if !lok {
			return nil, nil, false
		}
		links = append(links, linkKey{from: cur, to: next})
		offs = append(offs, c)
		c += dynflow.Tick(l.Delay)
		cur = next
		if cur == in.Dest() {
			fs.routeLinks, fs.routeOffs = links, offs
			return links, offs, true
		}
		fs.mark(cur)
		next = snapshotNext(in, s, cur, t)
	}
}

// link resolves (a, b) by scanning a's adjacency, which beats hashing the
// node pair on the hot path (degrees are small).
func (fs *fastState) link(a, b graph.NodeID) (graph.Link, bool) {
	for _, l := range fs.in.G.Out(a) {
		if l.To == b {
			return l, true
		}
	}
	return graph.Link{}, false
}

func (fs *fastState) mark(v graph.NodeID) {
	if uint64(v) < uint64(len(fs.ws.visit)) {
		fs.ws.visit[v] = fs.ws.visitGen
	}
}

func (fs *fastState) marked(v graph.NodeID) bool {
	return uint64(v) < uint64(len(fs.ws.visit)) && fs.ws.visit[v] == fs.ws.visitGen
}

// tryUpdate checks whether flipping v at tick t keeps the data plane
// congestion-free and commits the flip when it does. Loop-freedom must
// already have been established via LoopFree; s must contain all flips
// accepted so far, excluding v's.
//
// On rejection, retry is the earliest tick at which the same attempt could
// succeed with the configuration unchanged (every rejection condition is
// monotone in t: draining intervals only recede), or neverTick when only a
// configuration change can help. The scheduler uses the hints to jump over
// idle drain ticks instead of probing one tick at a time.
func (fs *fastState) tryUpdate(s *dynflow.Schedule, v graph.NodeID, t dynflow.Tick) (ok bool, retry dynflow.Tick) {
	in := fs.in
	// Defer while draining units still arrive at v: their histories are
	// not visible to snapshot checks.
	if until, has := fs.arrivesUntil[v]; has && until >= t {
		return false, until + 1
	}
	ai := -1
	if int(v) < len(fs.activePos) {
		ai = int(fs.activePos[v])
	}
	if ai < 0 {
		// No traffic reaches v now or before the drain horizon: the rule
		// change is inert until upstream flips, whose own checks will see
		// it via the snapshot.
		return true, 0
	}
	links, offs, routeOK := fs.route(s, v, t)
	if !routeOK {
		return false, neverTick
	}
	// Emissions e >= e0 are redirected; e < e0 continue on the old suffix.
	e0 := t - fs.offset[ai]

	// truncFor returns the truncated occupancy the old active suffix would
	// keep on route link (a, b) after this flip, computed on demand from
	// the active-position index (the suffix link at position i drains its
	// last unit at e0-1+offset[i]).
	truncFor := func(a, b graph.NodeID) (interval, bool) {
		if int(a) >= len(fs.activePos) {
			return interval{}, false
		}
		i := int(fs.activePos[a])
		if i < ai || i+1 >= len(fs.active) || fs.active[i+1] != b {
			return interval{}, false
		}
		iv := interval{lo: fs.activeSince[i], hi: e0 - 1 + fs.offset[i]}
		return iv, iv.lo <= iv.hi
	}

	// Check every link of the new route against finite occupancies. On
	// rejection, accumulate the earliest tick at which every currently
	// colliding interval has drained past the tail start.
	var retryAt dynflow.Tick = -1
	for i, lk := range links {
		l, lok := fs.link(lk.from, lk.to)
		if !lok {
			return false, neverTick
		}
		tailLo := t + offs[i]
		var collide []interval
		var worstHi dynflow.Tick
		for _, iv := range fs.drains[lk] {
			if iv.hi >= tailLo {
				collide = append(collide, iv)
				if iv.hi > worstHi {
					worstHi = iv.hi
				}
			}
		}
		if tv, has := truncFor(lk.from, lk.to); has && tv.hi >= tailLo {
			collide = append(collide, tv)
			if tv.hi > worstHi {
				worstHi = tv.hi
			}
		}
		if len(collide) == 0 {
			continue
		}
		// The tail contributes demand d at every tick >= tailLo; each
		// collider contributes d on its own ticks.
		k := int(l.Cap/in.Demand) - 1 // concurrent drains the link absorbs
		if k >= 1 && (len(collide) <= k || overlapDepth(collide, tailLo) <= k) {
			continue
		}
		if r := worstHi - offs[i] + 1; r > retryAt {
			retryAt = r
		}
	}
	if retryAt >= 0 {
		if retryAt <= t {
			retryAt = t + 1
		}
		return false, retryAt
	}

	// Commit: truncate the old suffix into drains, record arrival
	// horizons, install the new active path, and prune stale intervals.
	for i := ai; i+1 < len(fs.active); i++ {
		lk := linkKey{from: fs.active[i], to: fs.active[i+1]}
		iv := interval{lo: fs.activeSince[i], hi: e0 - 1 + fs.offset[i]}
		if iv.lo > iv.hi {
			continue
		}
		fs.drains[lk] = append(fs.drains[lk], iv)
		arr := e0 - 1 + fs.offset[i+1]
		if cur, ok := fs.arrivesUntil[fs.active[i+1]]; !ok || arr > cur {
			fs.arrivesUntil[fs.active[i+1]] = arr
		}
	}
	newActive := append(graph.Path(nil), fs.active[:ai+1]...)
	newSince := append([]dynflow.Tick(nil), fs.activeSince[:ai]...)
	for i, lk := range links {
		newSince = append(newSince, t+offs[i])
		newActive = append(newActive, lk.to)
	}
	newSince = append(newSince, 0) // unused terminal slot, keeps lengths equal
	fs.setActive(newActive, newSince)
	fs.prune(t)
	return true, 0
}

// neverTick marks a rejection that only a configuration change can lift.
const neverTick = dynflow.Tick(math.MaxInt64 / 4)

// overlapDepth returns the maximum number of intervals simultaneously
// covering a single tick >= floor.
func overlapDepth(ivs []interval, floor dynflow.Tick) int {
	best := 0
	for _, a := range ivs {
		lo := maxTick(a.lo, floor)
		if lo > a.hi {
			continue
		}
		// Depth at a.lo clamped to floor (depth changes only at interval
		// starts, so checking each clamped start is sufficient).
		depth := 0
		for _, b := range ivs {
			if b.lo <= lo && lo <= b.hi {
				depth++
			}
		}
		if depth > best {
			best = depth
		}
	}
	return best
}

// prune drops intervals that can no longer collide with any future tail
// (every future tail departs at >= t).
func (fs *fastState) prune(t dynflow.Tick) {
	for lk, ivs := range fs.drains {
		kept := ivs[:0]
		for _, iv := range ivs {
			if iv.hi >= t {
				kept = append(kept, iv)
			}
		}
		if len(kept) == 0 {
			delete(fs.drains, lk)
		} else {
			fs.drains[lk] = kept
		}
	}
}

// drainHorizon returns the latest tick at which any draining unit is still
// in flight; past it the configuration's traffic is static.
func (fs *fastState) drainHorizon() dynflow.Tick {
	var h dynflow.Tick
	first := true
	for _, until := range fs.arrivesUntil {
		if first || until > h {
			h = until
			first = false
		}
	}
	return h
}

func maxTick(a, b dynflow.Tick) dynflow.Tick {
	if a > b {
		return a
	}
	return b
}
