package core

import (
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
)

// loopChecker answers Algorithm 4 queries against a fixed configuration
// snapshot in amortized O(1) per switch: between two accepted updates the
// configuration does not change, so walk destinations can be memoized with
// path compression. Greedy rebuilds the checker after every acceptance.
type loopChecker struct {
	in  *dynflow.Instance
	s   *dynflow.Schedule
	t   dynflow.Tick
	cur graph.Path
	pos []int32 // node -> active-path index, -1 off-path
	// resolve caches, for off-path switches, where the snapshot
	// configuration eventually leads.
	resolve map[graph.NodeID]resolveResult
}

func (lc *loopChecker) posOf(v graph.NodeID) (int, bool) {
	if v < 0 || int(v) >= len(lc.pos) || lc.pos[v] < 0 {
		return -1, false
	}
	return int(lc.pos[v]), true
}

type resolveKind uint8

const (
	resolveDest resolveKind = iota + 1 // reaches the destination off-path
	resolvePath                        // joins the active path
	resolveDead                        // cycle among off-path switches or blackhole
)

type resolveResult struct {
	kind resolveKind
	pos  int // active-path index for resolvePath
}

func newLoopChecker(in *dynflow.Instance, s *dynflow.Schedule, t dynflow.Tick) *loopChecker {
	cur := activePath(in, s, t)
	pos := make([]int32, in.G.NumNodes())
	for i := range pos {
		pos[i] = -1
	}
	for i, u := range cur {
		if int(u) < len(pos) {
			pos[u] = int32(i)
		}
	}
	return &loopChecker{
		in:      in,
		s:       s,
		t:       t,
		cur:     cur,
		pos:     pos,
		resolve: make(map[graph.NodeID]resolveResult),
	}
}

// ok reports whether updating v at the snapshot tick is loop-free
// (Algorithm 4): the redirected route from v's new next hop must reach the
// destination or rejoin the active path strictly downstream of v, without
// cycling or blackholing.
func (lc *loopChecker) ok(v graph.NodeID) bool {
	w := lc.in.NewNext(v)
	if w == graph.Invalid {
		return true
	}
	iv, onPath := lc.posOf(v)
	if p, ok := lc.posOf(w); ok {
		if !onPath {
			return true // v carries no fresh traffic; w's position is moot
		}
		return p > iv
	}
	r := lc.walk(w)
	switch r.kind {
	case resolveDead:
		return false
	case resolveDest:
		return true
	default: // resolvePath
		if !onPath {
			return true
		}
		return r.pos > iv
	}
}

// walk resolves where the snapshot configuration leads from off-path node
// x, memoizing every node on the way.
func (lc *loopChecker) walk(x graph.NodeID) resolveResult {
	var trail []graph.NodeID
	visiting := make(map[graph.NodeID]bool)
	cur := x
	var result resolveResult
	for {
		if r, ok := lc.resolve[cur]; ok {
			result = r
			break
		}
		if p, ok := lc.posOf(cur); ok {
			result = resolveResult{kind: resolvePath, pos: p}
			break
		}
		if cur == lc.in.Dest() {
			result = resolveResult{kind: resolveDest}
			break
		}
		if visiting[cur] {
			result = resolveResult{kind: resolveDead}
			break
		}
		visiting[cur] = true
		trail = append(trail, cur)
		next := snapshotNext(lc.in, lc.s, cur, lc.t)
		if next == graph.Invalid {
			result = resolveResult{kind: resolveDead}
			break
		}
		cur = next
	}
	for _, u := range trail {
		lc.resolve[u] = result
	}
	return result
}
