package core

import (
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
)

// loopChecker answers Algorithm 4 queries against a fixed configuration
// snapshot in amortized O(1) per switch: between two accepted updates the
// configuration does not change, so walk destinations can be memoized with
// path compression. Greedy rebuilds the checker after every acceptance; the
// rebuild is cheap because all node-indexed state lives in the pooled
// workspace as generation-stamped arrays — a rebuild bumps two generations
// and restamps the active path instead of reallocating.
type loopChecker struct {
	in  *dynflow.Instance
	s   *dynflow.Schedule
	t   dynflow.Tick
	cur graph.Path
	ws  *workspace
}

func (lc *loopChecker) posOf(v graph.NodeID) (int, bool) {
	ws := lc.ws
	if uint64(v) >= uint64(len(ws.pos)) || ws.posStamp[v] != ws.posGen {
		return -1, false
	}
	return int(ws.pos[v]), true
}

type resolveKind uint8

const (
	resolveDest resolveKind = iota + 1 // reaches the destination off-path
	resolvePath                        // joins the active path
	resolveDead                        // cycle among off-path switches or blackhole
)

type resolveResult struct {
	kind resolveKind
	pos  int // active-path index for resolvePath
}

func newLoopChecker(in *dynflow.Instance, s *dynflow.Schedule, t dynflow.Tick, ws *workspace) *loopChecker {
	cur := activePathInto(ws.pathA[:0], in, s, t, ws)
	ws.pathA = cur
	ws.posGen++
	ws.resGen++
	for i, u := range cur {
		if uint64(u) < uint64(len(ws.pos)) {
			ws.pos[u] = int32(i)
			ws.posStamp[u] = ws.posGen
		}
	}
	return &loopChecker{in: in, s: s, t: t, cur: cur, ws: ws}
}

// ok reports whether updating v at the snapshot tick is loop-free
// (Algorithm 4): the redirected route from v's new next hop must reach the
// destination or rejoin the active path strictly downstream of v, without
// cycling or blackholing.
func (lc *loopChecker) ok(v graph.NodeID) bool {
	w := lc.in.NewNext(v)
	if w == graph.Invalid {
		return true
	}
	iv, onPath := lc.posOf(v)
	if p, ok := lc.posOf(w); ok {
		if !onPath {
			return true // v carries no fresh traffic; w's position is moot
		}
		return p > iv
	}
	r := lc.walk(w)
	switch r.kind {
	case resolveDead:
		return false
	case resolveDest:
		return true
	default: // resolvePath
		if !onPath {
			return true
		}
		return r.pos > iv
	}
}

// walk resolves where the snapshot configuration leads from off-path node
// x, memoizing every node on the way in the workspace's stamped arrays.
func (lc *loopChecker) walk(x graph.NodeID) resolveResult {
	ws := lc.ws
	ws.walkGen++
	trail := ws.trail[:0]
	cur := x
	var result resolveResult
	for {
		if uint64(cur) < uint64(len(ws.resStamp)) && ws.resStamp[cur] == ws.resGen {
			result = resolveResult{kind: ws.resKind[cur], pos: int(ws.resPos[cur])}
			break
		}
		if p, ok := lc.posOf(cur); ok {
			result = resolveResult{kind: resolvePath, pos: p}
			break
		}
		if cur == lc.in.Dest() {
			result = resolveResult{kind: resolveDest}
			break
		}
		if uint64(cur) < uint64(len(ws.walkMark)) && ws.walkMark[cur] == ws.walkGen {
			result = resolveResult{kind: resolveDead}
			break
		}
		if uint64(cur) < uint64(len(ws.walkMark)) {
			ws.walkMark[cur] = ws.walkGen
		}
		trail = append(trail, cur)
		next := snapshotNext(lc.in, lc.s, cur, lc.t)
		if next == graph.Invalid {
			result = resolveResult{kind: resolveDead}
			break
		}
		cur = next
	}
	for _, u := range trail {
		if uint64(u) < uint64(len(ws.resStamp)) {
			ws.resStamp[u] = ws.resGen
			ws.resKind[u] = result.kind
			ws.resPos[u] = int32(result.pos)
		}
	}
	ws.trail = trail
	return result
}
