// Package core implements the paper's primary contribution: Chronus, a set
// of algorithms that compute timed update schedules for the Minimum Update
// Time Problem (MUTP). A schedule assigns each switch whose rule changes an
// absolute activation tick such that the data plane stays congestion-free
// and loop-free at every moment while the dynamic flow migrates from the
// initial to the final path.
//
// The package contains:
//
//   - Greedy (Algorithm 2): per-tick maximal updates driven by
//     dependency-relation sets and a loop check;
//   - DependencyChains (Algorithm 3): the congestion-induced update order;
//   - LoopFree (Algorithm 4): the backward walk detecting transient loops;
//   - TreeFeasible (Algorithm 1): the polynomial feasibility check for
//     identical link delays.
//
// Greedy runs in one of two modes. ModeExact (the default) accepts a
// candidate update only after re-validating the partial schedule with the
// dynflow ground-truth validator, so the returned schedule is always
// congestion- and loop-free by construction (Theorem 3 made constructive).
// ModeFast applies only the paper's local checks (Algorithms 3 and 4) and
// runs in O(n) per tick; it is the variant whose running time the paper's
// Fig. 10 reports at thousands of switches.
package core

import (
	"errors"
	"fmt"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/obs"
)

// Mode selects the greedy acceptance test.
type Mode int

const (
	// ModeExact re-validates every tentative update with the dynflow
	// validator; the result is guaranteed violation-free.
	ModeExact Mode = iota + 1
	// ModeFast uses only the paper's local checks (dependency heads +
	// Algorithm 4); it is linear per tick but relies on Theorem 3's
	// argument rather than re-validation.
	ModeFast
)

func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "exact"
	case ModeFast:
		return "fast"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options configures Greedy.
type Options struct {
	// Start is t0, the first tick at which an update may activate.
	Start dynflow.Tick
	// Mode selects the acceptance test; zero value means ModeExact.
	Mode Mode
	// MaxTicks caps the number of ticks the scheduler may advance past
	// Start before giving up (0 = automatic bound derived from the
	// instance's drain time).
	MaxTicks dynflow.Tick
	// BestEffort makes Greedy return a complete schedule even when no
	// violation-free one was found: once the data plane has drained and no
	// switch can safely update, the remaining switches are flipped anyway
	// and the violations are reported. This mirrors what an operator must
	// do when the instance is infeasible (the update cannot simply be
	// abandoned) and feeds the Fig. 8 congested-link accounting.
	BestEffort bool
	// Obs receives scheduler counters (candidates accepted / deferred /
	// rejected, wake-heap jumps, validator invocations, backoff resets,
	// dependency cycles); nil disables instrumentation.
	Obs *obs.Registry
	// Trace receives per-decision scheduler events stamped with the
	// schedule tick; nil disables tracing.
	Trace *obs.Tracer
	// NoCache disables the cross-solve precomputation cache for this solve
	// (the pooled workspaces stay in use — pooling is invisible to
	// results). It exists for the cache on/off property tests and as an
	// escape hatch.
	NoCache bool
}

// ErrInfeasible is returned when no congestion- and loop-free schedule was
// found: the data plane drained to a static state and no pending switch
// could be updated.
var ErrInfeasible = errors.New("core: no feasible congestion- and loop-free update schedule")

// ErrDependencyCycle is returned by the fast mode when Algorithm 3's
// dependency relation contains a cycle (paper: the update is infeasible).
var ErrDependencyCycle = errors.New("core: dependency relation contains a cycle")

// snapshotNext returns v's forwarding decision under the configuration in
// force at tick t (all scheduled flips at or before t applied).
func snapshotNext(in *dynflow.Instance, s *dynflow.Schedule, v graph.NodeID, t dynflow.Tick) graph.NodeID {
	return dynflow.NextHopAt(in, s, v, t)
}

// activePath returns the path currently taken by freshly emitted flow under
// the configuration at tick t, stopping at the destination or when a cycle
// in the static configuration is hit (in which case the returned path ends
// at the first repeated switch).
func activePath(in *dynflow.Instance, s *dynflow.Schedule, t dynflow.Tick) graph.Path {
	var p graph.Path
	seen := make(map[graph.NodeID]bool, in.G.NumNodes())
	cur := in.Source()
	for cur != graph.Invalid && !seen[cur] {
		p = append(p, cur)
		seen[cur] = true
		if cur == in.Dest() {
			break
		}
		cur = snapshotNext(in, s, cur, t)
	}
	return p
}

// autoMaxTicks derives a generous scheduling horizon: every switch may need
// to wait for a full drain of in-flight traffic, and a trace visits each
// switch at most once with bounded per-hop delay.
func autoMaxTicks(in *dynflow.Instance) dynflow.Tick {
	return autoMaxTicksFrom(in, scanMaxDelay(in))
}

// autoMaxTicksFrom is autoMaxTicks with the topology's maximum link delay
// already in hand (from the precomputation cache on the solver hot path).
func autoMaxTicksFrom(in *dynflow.Instance, maxDelay graph.Delay) dynflow.Tick {
	drain := dynflow.Tick(int64(maxDelay) * int64(in.G.NumNodes()+1))
	n := dynflow.Tick(len(in.UpdateSet()) + 1)
	return n*drain + dynflow.Tick(in.Init.Delay(in.G)) + 4
}

func minUint(a, b uint) uint {
	if a < b {
		return a
	}
	return b
}
