package core

import (
	"sync"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
)

// workspace is the per-solve scratch arena: every node-indexed structure the
// greedy scheduler, the loop checker, the dependency analysis and the fast
// state rebuild per round lives here as a generation-stamped array instead
// of a freshly allocated map. Resetting a structure is a generation bump
// (O(1)), not a reallocation, so the working state survives across greedy
// rounds; whole workspaces are recycled across solves through a bounded
// freelist (see getWorkspace), so steady-state solving allocates no
// node-sized scratch at all.
//
// A stamped entry is live when its stamp equals the current generation.
// Consumers bump the generation *before* each use, so generations are
// always ≥ 1 and the zero-valued arrays of a fresh workspace never alias a
// live entry. Generations persist across pooling and only ever increase.
type workspace struct {
	n int // node count the arrays are sized for

	// seen marks nodes visited by activePathInto.
	seen    []uint64
	seenGen uint64

	// pos is the active-path index map shared by the loop checker and the
	// dependency analysis (their uses never overlap within a solve).
	pos      []int32
	posStamp []uint64
	posGen   uint64

	// res memoizes loopChecker.walk resolutions for one configuration
	// snapshot; walkMark detects cycles within a single walk.
	resKind  []resolveKind
	resPos   []int32
	resStamp []uint64
	resGen   uint64
	walkMark []uint64
	walkGen  uint64
	trail    []graph.NodeID

	// Exact-mode backoff state; an acceptance resets it by bumping the
	// generation. sleepCount tracks live entries so the reset (and its
	// metric) fires only when there is state to drop.
	sleep      []dynflow.Tick
	strikes    []uint32
	sleepStamp []uint64
	sleepGen   uint64
	sleepCount int

	// pend marks the pending set during dependency analysis.
	pend    []uint64
	pendGen uint64

	// pathA holds the loop checker's active path, pathB the dependency
	// analysis's; two buffers because a live loopChecker must not see its
	// path clobbered by a concurrent-in-scope dependency pass.
	pathA graph.Path
	pathB graph.Path

	// Fast-mode arrays: activePos is fastState's node→active-index map,
	// visit/visitGen its route-walk cycle marks.
	activePos []int32
	visit     []uint64
	visitGen  uint64
}

func newWorkspace(n int) *workspace {
	return &workspace{
		n:          n,
		seen:       make([]uint64, n),
		pos:        make([]int32, n),
		posStamp:   make([]uint64, n),
		resKind:    make([]resolveKind, n),
		resPos:     make([]int32, n),
		resStamp:   make([]uint64, n),
		walkMark:   make([]uint64, n),
		sleep:      make([]dynflow.Tick, n),
		strikes:    make([]uint32, n),
		sleepStamp: make([]uint64, n),
		pend:       make([]uint64, n),
		activePos:  make([]int32, n),
		visit:      make([]uint64, n),
	}
}

// bytes reports the workspace's retained scratch capacity, the quantity the
// pooled-bytes gauge accounts for parked workspaces.
func (ws *workspace) bytes() int64 {
	b := int64(cap(ws.seen)+cap(ws.posStamp)+cap(ws.resStamp)+cap(ws.walkMark)+cap(ws.sleepStamp)+cap(ws.pend)+cap(ws.visit)) * 8
	b += int64(cap(ws.pos)+cap(ws.resPos)+cap(ws.activePos)) * 4
	b += int64(cap(ws.resKind))
	b += int64(cap(ws.sleep)) * 8
	b += int64(cap(ws.strikes)) * 4
	b += int64(cap(ws.trail)+cap(ws.pathA)+cap(ws.pathB)) * int64(8)
	return b
}

// sleepOf returns v's backoff deadline and whether any backoff entry exists
// for v in the current epoch (mirroring the map's two-value read).
func (ws *workspace) sleepOf(v graph.NodeID) (dynflow.Tick, bool) {
	if uint64(v) < uint64(len(ws.sleep)) && ws.sleepStamp[v] == ws.sleepGen {
		return ws.sleep[v], true
	}
	return 0, false
}

// bumpStrike increments v's rejection count within the current backoff
// epoch and returns the new count.
func (ws *workspace) bumpStrike(v graph.NodeID) uint32 {
	if uint64(v) >= uint64(len(ws.strikes)) {
		return 1
	}
	if ws.sleepStamp[v] != ws.sleepGen {
		ws.sleepStamp[v] = ws.sleepGen
		ws.strikes[v] = 0
		ws.sleep[v] = 0
		ws.sleepCount++
	}
	ws.strikes[v]++
	return ws.strikes[v]
}

// setSleep records v's backoff deadline (bumpStrike must have stamped v).
func (ws *workspace) setSleep(v graph.NodeID, until dynflow.Tick) {
	if uint64(v) < uint64(len(ws.sleep)) {
		ws.sleep[v] = until
	}
}

// resetSleep opens a fresh backoff epoch, dropping every entry in O(1).
func (ws *workspace) resetSleep() {
	ws.sleepGen++
	ws.sleepCount = 0
}

// activePathInto appends the path taken by freshly emitted flow under the
// configuration at tick t to p (normally a recycled buffer sliced to zero),
// stopping at the destination or the first repeated switch. It is the
// workspace-backed equivalent of activePath.
func activePathInto(p graph.Path, in *dynflow.Instance, s *dynflow.Schedule, t dynflow.Tick, ws *workspace) graph.Path {
	ws.seenGen++
	cur := in.Source()
	for cur != graph.Invalid {
		if uint64(cur) >= uint64(len(ws.seen)) || ws.seen[cur] == ws.seenGen {
			break
		}
		p = append(p, cur)
		ws.seen[cur] = ws.seenGen
		if cur == in.Dest() {
			break
		}
		cur = snapshotNext(in, s, cur, t)
	}
	return p
}

// wsPool is the bounded freelist recycling workspaces across solves. A
// plain mutex-guarded slice instead of sync.Pool: the GC never evicts
// entries behind our back, so the pooled-bytes gauge is exact and the
// retained memory is strictly bounded by wsPoolCap arenas.
var wsPool struct {
	sync.Mutex
	free  []*workspace
	bytes int64
}

// wsPoolCap bounds how many idle workspaces the freelist retains.
const wsPoolCap = 8

// getWorkspace returns a workspace sized for n nodes, recycling a pooled
// one when available (grown in place if it is too small).
func getWorkspace(n int) *workspace {
	wsPool.Lock()
	if len(wsPool.free) > 0 {
		ws := wsPool.free[len(wsPool.free)-1]
		wsPool.free = wsPool.free[:len(wsPool.free)-1]
		wsPool.bytes -= ws.bytes()
		wsPool.Unlock()
		if ws.n < n {
			grown := newWorkspace(n)
			grown.seenGen = ws.seenGen
			grown.posGen = ws.posGen
			grown.resGen = ws.resGen
			grown.walkGen = ws.walkGen
			grown.sleepGen = ws.sleepGen
			grown.pendGen = ws.pendGen
			grown.visitGen = ws.visitGen
			ws = grown
		}
		return ws
	}
	wsPool.Unlock()
	return newWorkspace(n)
}

// putWorkspace parks ws for reuse; at capacity it is dropped for the GC.
func putWorkspace(ws *workspace) {
	if ws == nil {
		return
	}
	wsPool.Lock()
	if len(wsPool.free) < wsPoolCap {
		wsPool.free = append(wsPool.free, ws)
		wsPool.bytes += ws.bytes()
	}
	wsPool.Unlock()
}

// PooledBytes reports the scratch bytes currently parked in the workspace
// freelist — the value behind the chronus_solver_pool_bytes gauge.
func PooledBytes() int64 {
	wsPool.Lock()
	defer wsPool.Unlock()
	return wsPool.bytes
}
