package core

import (
	"container/heap"
	"fmt"
	"sort"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/obs"
)

// Result carries the schedule produced by Greedy together with scheduling
// statistics used by the evaluation harness.
type Result struct {
	Schedule *dynflow.Schedule
	// TicksUsed is the number of scheduler rounds (distinct ticks at which
	// candidates were evaluated), including idle drain rounds.
	TicksUsed int
	// Validations counts ground-truth validator invocations (ModeExact
	// only; ModeFast never invokes the validator).
	Validations int
	// DependencyCycles counts rounds at which Algorithm 3 reported a
	// cyclic dependency relation. The paper's Algorithm 2 aborts in that
	// case; we record the event and fall back to ID order, since the
	// per-candidate acceptance checks are the actual safety guard.
	DependencyCycles int
	// BestEffort is true when Options.BestEffort was set and the scheduler
	// got stuck: the remaining switches were flipped after the drain, and
	// Report carries the resulting violations.
	BestEffort bool
	// Report is the final validation of the returned schedule. It is nil
	// in ModeFast (unless BestEffort fired), which by design never invokes
	// the validator; callers that want the guarantee run dynflow.Validate
	// themselves.
	Report *dynflow.Report
}

// Greedy implements Algorithm 2: starting at opts.Start it updates, at each
// tick, as many pending switches as pass the acceptance test, preferring
// the heads of the dependency chains of Algorithm 3. It returns
// ErrInfeasible when no violation-free schedule exists within the tick
// budget — either the data plane drained to a static configuration with no
// safe update left (waiting longer cannot change anything, per the argument
// of Theorem 2), or the schedule would exceed the budget.
//
// In ModeExact the acceptance test is full re-validation with the dynflow
// ground-truth validator; in ModeFast it is the closed-form in-flight
// account of fastState plus Algorithm 4's loop check, which never traces
// emissions. The fast mode is event-driven: rejected candidates carry a
// retry tick (all rejection conditions are monotone in time while the
// configuration is unchanged), so the scheduler jumps between wake events
// instead of probing every tick.
func Greedy(in *dynflow.Instance, opts Options) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	mode := opts.Mode
	if mode == 0 {
		mode = ModeExact
	}
	sm := newSchedMetrics(opts.Obs)
	sm.runs.Inc()
	res := &Result{Schedule: dynflow.NewSchedule(opts.Start)}
	if len(in.UpdateSet()) == 0 {
		if mode == ModeExact {
			res.Report = dynflow.Validate(in, res.Schedule)
			res.Validations++
			sm.validations.Inc()
		}
		return res, nil
	}
	ws := getWorkspace(in.G.NumNodes())
	defer putWorkspace(ws)
	var err error
	if mode == ModeFast {
		res, err = greedyFast(in, opts, sm, res, ws)
	} else {
		res, err = greedyExact(in, opts, sm, res, ws)
	}
	if err == nil {
		sm.makespan.Observe(float64(res.Schedule.Makespan()))
	}
	return res, err
}

// greedyExact is the validator-backed variant: per tick, try every pending
// candidate and keep those the ground-truth validator approves. Intended
// for the instance sizes of the quality experiments (tens of switches).
func greedyExact(in *dynflow.Instance, opts Options, sm schedMetrics, res *Result, ws *workspace) (*Result, error) {
	s := res.Schedule
	pending := in.UpdateSet()
	maxTicks := opts.MaxTicks
	if maxTicks <= 0 {
		maxTicks = autoMaxTicksFrom(in, topoFactsFor(in, opts.Obs, opts.NoCache).maxDelay)
	}
	pathDrain := dynflow.Tick(in.Init.Delay(in.G) + in.Fin.Delay(in.G))
	drainHorizon := s.Start + dynflow.Tick(in.Init.Delay(in.G))
	var lastReport *dynflow.Report

	// Validator rejections stem from in-flight collisions that recede over
	// time but carry no closed-form retry tick, so rejected candidates back
	// off exponentially (reset whenever an acceptance changes the
	// configuration). This bounds revalidations per candidate per epoch to
	// a logarithm of the drain time at a small makespan cost. The backoff
	// state lives in the workspace's stamped arrays; resetSleep opens a
	// fresh epoch.
	ws.resetSleep()

	t := s.Start
	for len(pending) > 0 {
		if t-s.Start > maxTicks {
			if opts.BestEffort {
				bestEffortFinish(s, pending, t)
				res.BestEffort = true
				break
			}
			return res, fmt.Errorf("%w: exceeded tick budget %d", ErrInfeasible, maxTicks)
		}
		res.TicksUsed++
		order, cycleErr := candidateOrder(in, s, pending, t, ws)
		if cycleErr != nil {
			res.DependencyCycles++
			sm.cycles.Inc()
		}
		lc := newLoopChecker(in, s, t, ws)
		accepted := make(map[graph.NodeID]bool)
		for changed := true; changed; {
			changed = false
			for _, cand := range order {
				if accepted[cand.v] {
					continue
				}
				if su, _ := ws.sleepOf(cand.v); su > t {
					sm.deferred.Inc()
					continue
				}
				if !lc.ok(cand.v) {
					sm.deferred.Inc()
					continue
				}
				s.Set(cand.v, t)
				res.Validations++
				sm.validations.Inc()
				r := dynflow.Validate(in, s)
				if !r.OK() {
					delete(s.Times, cand.v)
					n := ws.bumpStrike(cand.v)
					backoff := dynflow.Tick(1) << minUint(uint(n)-1, 7)
					ws.setSleep(cand.v, t+backoff)
					sm.rejected.Inc()
					continue
				}
				lastReport = r
				accepted[cand.v] = true
				changed = true
				sm.accepted.Inc()
				if opts.Trace != nil {
					opts.Trace.Point(int64(t), "sched.accept", obs.A("switch", in.G.Name(cand.v)))
				}
				lc = newLoopChecker(in, s, t, ws)
				if ws.sleepCount > 0 {
					ws.resetSleep()
					sm.backoffResets.Inc()
				}
			}
		}
		if len(accepted) > 0 {
			pending = removeAll(pending, accepted)
			if lastReport != nil && lastReport.LatestArrival > drainHorizon {
				drainHorizon = lastReport.LatestArrival
			}
			if dh := t + pathDrain; dh > drainHorizon {
				drainHorizon = dh
			}
			t++
			continue
		}
		if t > drainHorizon {
			if opts.BestEffort {
				bestEffortFinish(s, pending, t)
				res.BestEffort = true
				break
			}
			return res, fmt.Errorf("%w: static configuration at tick %d with %d switches pending",
				ErrInfeasible, t, len(pending))
		}
		// Nothing accepted: every pending candidate is either backing off
		// (validator rejection) or loop-parked (configuration-bound, so
		// only an acceptance can unlock it). Skip ahead to the earliest
		// backoff wake-up; if nobody is backing off the configuration is
		// static and the instance is infeasible.
		next := dynflow.Tick(0)
		found := false
		for _, v := range pending {
			if su, ok := ws.sleepOf(v); ok && su > t {
				if !found || su < next {
					next = su
					found = true
				}
			}
		}
		if !found {
			if opts.BestEffort {
				bestEffortFinish(s, pending, t)
				res.BestEffort = true
				break
			}
			return res, fmt.Errorf("%w: static configuration at tick %d with %d switches pending",
				ErrInfeasible, t, len(pending))
		}
		t = next
		sm.wakeJumps.Inc()
	}
	res.Report = lastReport
	if res.Report == nil || res.BestEffort {
		res.Report = dynflow.Validate(in, s)
		res.Validations++
		sm.validations.Inc()
	}
	if !res.BestEffort && !res.Report.OK() {
		// Cannot happen: every acceptance was validator-approved and the
		// validator is deterministic. Guard anyway.
		return res, fmt.Errorf("core: internal error: exact-mode schedule failed validation: %s", res.Report.Summary())
	}
	return res, nil
}

// wakeEvent schedules a candidate's re-evaluation.
type wakeEvent struct {
	at dynflow.Tick
	v  graph.NodeID
}

type wakeHeap []wakeEvent

func (h wakeHeap) Len() int { return len(h) }
func (h wakeHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].v < h[j].v
}
func (h wakeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *wakeHeap) Push(x any)   { *h = append(*h, x.(wakeEvent)) }
func (h *wakeHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// greedyFast is the event-driven fast variant.
func greedyFast(in *dynflow.Instance, opts Options, sm schedMetrics, res *Result, ws *workspace) (*Result, error) {
	s := res.Schedule
	fs := newFastState(in, ws)
	maxTicks := opts.MaxTicks
	if maxTicks <= 0 {
		maxTicks = fastTickBudgetFrom(in, topoFactsFor(in, opts.Obs, opts.NoCache).maxDelay)
	}

	pendingCount := 0
	state := make(map[graph.NodeID]int) // 0 absent, 1 pending, 2 done
	for _, v := range in.UpdateSet() {
		state[v] = 1
		pendingCount++
	}

	// ready holds candidates due for evaluation now; wakes holds candidates
	// sleeping until a collision drains; parked holds candidates whose
	// rejection only a configuration change can lift.
	order, cycleErr := candidateOrder(in, s, in.UpdateSet(), s.Start, ws)
	if cycleErr != nil {
		res.DependencyCycles++
		sm.cycles.Inc()
	}
	ready := make([]graph.NodeID, 0, len(order))
	for _, c := range order {
		ready = append(ready, c.v)
	}
	var wakes wakeHeap
	var parked []graph.NodeID
	lc := newLoopChecker(in, s, s.Start, ws)

	t := s.Start
	for pendingCount > 0 {
		res.TicksUsed++
		// Evaluate the ready set to a fixpoint at tick t.
		for len(ready) > 0 {
			v := ready[0]
			ready = ready[1:]
			if state[v] != 1 {
				continue
			}
			if !lc.ok(v) {
				parked = append(parked, v)
				sm.deferred.Inc()
				continue
			}
			ok, retry := fs.tryUpdate(s, v, t)
			if !ok {
				if retry >= neverTick {
					parked = append(parked, v)
					sm.deferred.Inc()
				} else {
					heap.Push(&wakes, wakeEvent{at: retry, v: v})
					sm.rejected.Inc()
				}
				continue
			}
			s.Set(v, t)
			state[v] = 2
			pendingCount--
			sm.accepted.Inc()
			if opts.Trace != nil {
				opts.Trace.Point(int64(t), "sched.accept", obs.A("switch", in.G.Name(v)))
			}
			// Configuration changed: refresh the snapshot checker and give
			// the parked candidates another chance.
			lc = newLoopChecker(in, s, t, ws)
			ready = append(ready, parked...)
			parked = parked[:0]
		}
		if pendingCount == 0 {
			break
		}
		// Advance to the next wake event.
		if len(wakes) == 0 {
			// Static configuration, no drain event pending: infeasible.
			if opts.BestEffort {
				bestEffortFinish(s, pendingByState(state), maxTick(t, fs.drainHorizon()+1))
				res.BestEffort = true
				break
			}
			return res, fmt.Errorf("%w: static configuration at tick %d with %d switches pending",
				ErrInfeasible, t, pendingCount)
		}
		next := wakes[0].at
		if next <= t {
			next = t + 1
		}
		if next-s.Start > maxTicks {
			if opts.BestEffort {
				bestEffortFinish(s, pendingByState(state), maxTick(t, fs.drainHorizon()+1))
				res.BestEffort = true
				break
			}
			return res, fmt.Errorf("%w: exceeded tick budget %d", ErrInfeasible, maxTicks)
		}
		t = next
		sm.wakeJumps.Inc()
		for len(wakes) > 0 && wakes[0].at <= t {
			ev := heap.Pop(&wakes).(wakeEvent)
			if state[ev.v] == 1 {
				ready = append(ready, ev.v)
			}
		}
	}
	if res.BestEffort {
		res.Report = dynflow.Validate(in, s)
		sm.validations.Inc()
	}
	return res, nil
}

func pendingByState(state map[graph.NodeID]int) []graph.NodeID {
	var out []graph.NodeID
	for v, st := range state {
		if st == 1 {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// fastTickBudgetFrom bounds the schedule horizon for the fast mode: a
// handful of end-to-end drain times. Feasible schedules complete well
// within it (every wait is bounded by the drain of some earlier
// redirection); an update needing more is treated as infeasible, which
// also bounds the running time on adversarial instances. maxDelay is the
// topology's maximum link delay (from the precomputation cache).
func fastTickBudgetFrom(in *dynflow.Instance, maxDelay graph.Delay) dynflow.Tick {
	return 8*dynflow.Tick(in.Init.Delay(in.G)+in.Fin.Delay(in.G)) + 16*dynflow.Tick(maxDelay) + 16
}

type candidate struct {
	v    graph.NodeID
	head bool
}

// candidateOrder lists pending switches with chain heads first (in chain
// order), then the remaining chain members. On a dependency cycle the order
// falls back to pending sorted by ID; the error is reported so callers can
// count the event (the paper's Algorithm 2 would abort here).
func candidateOrder(in *dynflow.Instance, s *dynflow.Schedule, pending []graph.NodeID, t dynflow.Tick, ws *workspace) ([]candidate, error) {
	chains, err := dependencyChains(in, s, pending, t, ws)
	if err != nil {
		sorted := append([]graph.NodeID(nil), pending...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		out := make([]candidate, len(sorted))
		for i, v := range sorted {
			out[i] = candidate{v: v, head: false}
		}
		return out, err
	}
	var out []candidate
	for _, c := range chains {
		if len(c) > 0 {
			out = append(out, candidate{v: c[0], head: true})
		}
	}
	for _, c := range chains {
		for _, v := range c[1:] {
			out = append(out, candidate{v: v, head: false})
		}
	}
	return out, nil
}

func removeAll(pending []graph.NodeID, drop map[graph.NodeID]bool) []graph.NodeID {
	out := pending[:0]
	for _, v := range pending {
		if !drop[v] {
			out = append(out, v)
		}
	}
	return out
}

// bestEffortFinish flips every remaining switch at tick t: the data plane
// has drained, so this minimizes the remaining exposure; the caller reads
// the resulting violations off Result.Report (the Fig. 8 accounting).
func bestEffortFinish(s *dynflow.Schedule, pending []graph.NodeID, t dynflow.Tick) {
	for _, v := range pending {
		s.Set(v, t)
	}
}
