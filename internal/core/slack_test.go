package core

import (
	"testing"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/topo"
)

func TestScheduleSlackFig1(t *testing.T) {
	in := topo.Fig1Example()
	res, err := Greedy(in, Options{Mode: ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	slacks := ScheduleSlack(in, res.Schedule)
	if len(slacks) != len(res.Schedule.Times) {
		t.Fatalf("got %d entries, want %d", len(slacks), len(res.Schedule.Times))
	}
	horizon := autoMaxTicks(in)
	anyCritical, anyLoose := false, false
	for i, s := range slacks {
		if i > 0 && slacks[i-1].V >= s.V {
			t.Fatalf("not sorted by NodeID: %+v", slacks)
		}
		if s.Time != res.Schedule.Times[s.V] {
			t.Errorf("switch %d: Time = %d, want %d", s.V, s.Time, res.Schedule.Times[s.V])
		}
		if s.Slack < 0 || s.Slack > horizon {
			t.Errorf("switch %d: slack %d outside [0, %d]", s.V, s.Slack, horizon)
		}
		if s.Critical != (s.Slack == 0) {
			t.Errorf("switch %d: Critical=%v but Slack=%d", s.V, s.Critical, s.Slack)
		}
		anyCritical = anyCritical || s.Critical
		anyLoose = anyLoose || s.Slack > 0

		// The certificate: delaying by Slack keeps the schedule clean,
		// delaying one more tick (when below the cap) breaks it.
		trial := res.Schedule.Clone()
		trial.Times[s.V] = s.Time + s.Slack
		if !dynflow.Validate(in, trial).OK() {
			t.Errorf("switch %d: delay by slack %d should still validate", s.V, s.Slack)
		}
		if s.Slack < horizon {
			trial.Times[s.V] = s.Time + s.Slack + 1
			if dynflow.Validate(in, trial).OK() {
				t.Errorf("switch %d: delay by slack+1 = %d should violate", s.V, s.Slack+1)
			}
		}
	}
	if !anyCritical {
		t.Error("fig1 should have at least one zero-slack (critical) switch")
	}
	if !anyLoose {
		t.Error("fig1 should have at least one switch with positive slack")
	}
}

func TestScheduleSlackViolatingScheduleAllCritical(t *testing.T) {
	in := topo.Fig1Example()
	oneShot := dynflow.NewSchedule(0)
	for _, v := range in.UpdateSet() {
		oneShot.Set(v, 0)
	}
	if dynflow.Validate(in, oneShot).OK() {
		t.Fatal("fig1 one-shot should violate (precondition)")
	}
	for _, s := range ScheduleSlack(in, oneShot) {
		if !s.Critical || s.Slack != 0 {
			t.Errorf("switch %d: %+v, want zero-slack critical", s.V, s)
		}
	}
}
