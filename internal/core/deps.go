package core

import (
	"fmt"
	"sort"
	"strings"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
)

// Chain is one dependency relation o ∈ O_t: switches in the order they must
// be updated (earlier elements divert the old flow that would otherwise
// collide with later elements' new flow).
type Chain []graph.NodeID

// Format renders the chain with switch names, e.g. "v2=>v4=>v1".
func (c Chain) Format(g *graph.Graph) string {
	parts := make([]string, len(c))
	for i, v := range c {
		parts[i] = g.Name(v)
	}
	return strings.Join(parts, "=>")
}

// DependencyChains computes the dependency relation set O_t of Algorithm 3
// at tick t for the pending (not yet scheduled) switches.
//
// For each pending switch vi, consider updating it at t: its new flow
// departs on link ⟨vi, v⟩ and arrives at v at t' = t + σ(vi, v). At t', v
// still forwards the old flow arriving from its current upstream v̄ toward
// its current next hop ṽ. If link ⟨v, ṽ⟩ cannot carry both flows
// (C < 2d), the old flow must have been diverted first, which requires v̄'s
// update to precede vi's: the relation (v̄ ⇒ vi).
//
// Relations sharing a common element are merged (the paper's example merges
// {v1⇒v2} and {v2⇒v3} into {v1⇒v2⇒v3}); the merged structure is a DAG whose
// weakly connected components are returned in topological order. A cyclic
// dependency yields ErrDependencyCycle (Algorithm 2 lines 7-8: no
// congestion-free update order exists under the paper's local reasoning).
func DependencyChains(in *dynflow.Instance, s *dynflow.Schedule, pending []graph.NodeID, t dynflow.Tick) ([]Chain, error) {
	ws := getWorkspace(in.G.NumNodes())
	defer putWorkspace(ws)
	return dependencyChains(in, s, pending, t, ws)
}

// dependencyChains is DependencyChains over a caller-supplied workspace;
// the scheduler's per-tick calls go through here so the node-indexed
// scratch (pending marks, active-path positions) is stamped, not
// reallocated.
func dependencyChains(in *dynflow.Instance, s *dynflow.Schedule, pending []graph.NodeID, t dynflow.Tick, ws *workspace) ([]Chain, error) {
	ws.pendGen++
	for _, v := range pending {
		if uint64(v) < uint64(len(ws.pend)) {
			ws.pend[v] = ws.pendGen
		}
	}
	isPending := func(v graph.NodeID) bool {
		return uint64(v) < uint64(len(ws.pend)) && ws.pend[v] == ws.pendGen
	}
	cur := activePathInto(ws.pathB[:0], in, s, t, ws)
	ws.pathB = cur
	ws.posGen++
	for i, u := range cur {
		if uint64(u) < uint64(len(ws.pos)) {
			ws.pos[u] = int32(i)
			ws.posStamp[u] = ws.posGen
		}
	}
	upstream := func(v graph.NodeID) graph.NodeID {
		if uint64(v) >= uint64(len(ws.pos)) || ws.posStamp[v] != ws.posGen || ws.pos[v] <= 0 {
			return graph.Invalid
		}
		return cur[ws.pos[v]-1]
	}
	succ := make(map[graph.NodeID][]graph.NodeID)
	for _, vi := range pending {
		v := in.NewNext(vi)
		if v == graph.Invalid || v == in.Dest() {
			continue
		}
		l, ok := in.G.Link(vi, v)
		if !ok {
			continue
		}
		tArr := t + dynflow.Tick(l.Delay)
		vUp := upstream(v)
		vNext := snapshotNext(in, s, v, tArr)
		if vNext == graph.Invalid {
			continue
		}
		out, ok := in.G.Link(v, vNext)
		if !ok {
			continue
		}
		if out.Cap < 2*in.Demand && vUp != graph.Invalid && isPending(vUp) && vUp != vi {
			succ[vUp] = append(succ[vUp], vi)
		}
	}

	// Kahn's algorithm per weakly connected component; a residue after the
	// topological pass is a cycle.
	comp := components(pending, succ)
	var chains []Chain
	for _, members := range comp {
		chain, ok := topoOrder(members, succ)
		if !ok {
			return nil, fmt.Errorf("%w: involving %s", ErrDependencyCycle, Chain(members).Format(in.G))
		}
		chains = append(chains, chain)
	}
	sort.Slice(chains, func(i, j int) bool { return chains[i][0] < chains[j][0] })
	return chains, nil
}

// components groups pending switches into weakly connected components of
// the dependency digraph, each sorted for determinism.
func components(pending []graph.NodeID, succ map[graph.NodeID][]graph.NodeID) [][]graph.NodeID {
	adj := make(map[graph.NodeID][]graph.NodeID)
	for u, vs := range succ {
		for _, v := range vs {
			adj[u] = append(adj[u], v)
			adj[v] = append(adj[v], u)
		}
	}
	seen := make(map[graph.NodeID]bool, len(pending))
	var out [][]graph.NodeID
	for _, start := range pending {
		if seen[start] {
			continue
		}
		var members []graph.NodeID
		stack := []graph.NodeID{start}
		seen[start] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, u)
			for _, v := range adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, members)
	}
	return out
}

// topoOrder returns members in a topological order of the dependency edges,
// or ok=false when the component is cyclic. Ties break by node ID.
func topoOrder(members []graph.NodeID, succ map[graph.NodeID][]graph.NodeID) (Chain, bool) {
	inComp := make(map[graph.NodeID]bool, len(members))
	for _, v := range members {
		inComp[v] = true
	}
	indeg := make(map[graph.NodeID]int, len(members))
	for _, v := range members {
		indeg[v] = 0
	}
	for _, u := range members {
		for _, v := range succ[u] {
			if inComp[v] {
				indeg[v]++
			}
		}
	}
	var ready []graph.NodeID
	for _, v := range members {
		if indeg[v] == 0 {
			ready = append(ready, v)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	var order Chain
	for len(ready) > 0 {
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		var added bool
		for _, w := range succ[v] {
			if !inComp[w] {
				continue
			}
			indeg[w]--
			if indeg[w] == 0 {
				ready = append(ready, w)
				added = true
			}
		}
		if added {
			sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
		}
	}
	if len(order) != len(members) {
		return nil, false
	}
	return order, true
}

// Heads returns the first element of each chain: the switches Algorithm 2
// may update at the current tick.
func Heads(chains []Chain) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(chains))
	for _, c := range chains {
		if len(c) > 0 {
			out = append(out, c[0])
		}
	}
	return out
}
