package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// TestGreedyExactAlwaysClean: whenever exact-mode Greedy returns a schedule
// on a random instance, the ground-truth validator accepts it (Theorem 3
// made constructive).
func TestGreedyExactAlwaysClean(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 4 + int(nRaw%16)
		rng := rand.New(rand.NewSource(seed))
		in := topo.RandomInstance(rng, topo.DefaultRandomParams(n))
		res, err := Greedy(in, Options{Mode: ModeExact})
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		if !res.Schedule.Complete(in) {
			return false
		}
		return dynflow.Validate(in, res.Schedule).OK()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyFastAlwaysClean: the fast mode never invokes the validator, yet
// its closed-form in-flight accounting must produce schedules the validator
// accepts. This is the strongest guarantee of the fastState engine.
func TestGreedyFastAlwaysClean(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 4 + int(nRaw%16)
		rng := rand.New(rand.NewSource(seed))
		in := topo.RandomInstance(rng, topo.DefaultRandomParams(n))
		res, err := Greedy(in, Options{Mode: ModeFast})
		if err != nil {
			return errors.Is(err, ErrInfeasible)
		}
		if res.Validations != 0 {
			return false
		}
		if !res.Schedule.Complete(in) {
			return false
		}
		return dynflow.Validate(in, res.Schedule).OK()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyDeterministic: identical instances yield identical schedules.
func TestGreedyDeterministic(t *testing.T) {
	for _, mode := range []Mode{ModeExact, ModeFast} {
		a := topo.RandomInstance(rand.New(rand.NewSource(11)), topo.DefaultRandomParams(12))
		b := topo.RandomInstance(rand.New(rand.NewSource(11)), topo.DefaultRandomParams(12))
		ra, errA := Greedy(a, Options{Mode: mode})
		rb, errB := Greedy(b, Options{Mode: mode})
		if (errA == nil) != (errB == nil) {
			t.Fatalf("mode %v: nondeterministic feasibility", mode)
		}
		if errA != nil {
			continue
		}
		for v, ta := range ra.Schedule.Times {
			if tb, ok := rb.Schedule.Times[v]; !ok || tb != ta {
				t.Fatalf("mode %v: nondeterministic time for %s: %d vs %d", mode, a.G.Name(v), ta, tb)
			}
		}
	}
}

// TestGreedyFastNeverSlowerThanDouble: a loose quality bound — on instances
// both modes solve, the fast mode's makespan stays within the exact mode's
// makespan plus the instance's drain time (its deferrals wait out at most
// one drain per dependency layer; empirically the average gap is ~1 tick).
func TestGreedyFastQualityGap(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	solvedBoth := 0
	for i := 0; i < 200; i++ {
		n := 4 + rng.Intn(12)
		in := topo.RandomInstance(rng, topo.DefaultRandomParams(n))
		ex, errE := Greedy(in, Options{Mode: ModeExact})
		fa, errF := Greedy(in, Options{Mode: ModeFast})
		if errE != nil || errF != nil {
			continue
		}
		solvedBoth++
		drain := dynflow.Tick(in.Init.Delay(in.G) + in.Fin.Delay(in.G))
		if fa.Schedule.Makespan() > ex.Schedule.Makespan()+drain {
			t.Fatalf("instance %d: fast makespan %d far exceeds exact %d (drain %d)",
				i, fa.Schedule.Makespan(), ex.Schedule.Makespan(), drain)
		}
	}
	if solvedBoth < 50 {
		t.Fatalf("only %d instances solved by both modes; generator drifted", solvedBoth)
	}
}

// TestTreeGreedyAgreement: TreeFeasible and exact Greedy are different
// heuristic decision procedures (Algorithm 1 is one-switch-at-a-time and
// structural; Greedy is timed and can use simultaneity). They must agree on
// the large majority of uniform-delay instances.
func TestTreeGreedyAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	agree, total := 0, 0
	for i := 0; i < 300; i++ {
		n := 4 + rng.Intn(12)
		p := topo.DefaultRandomParams(n)
		p.MaxDelay = 1
		in := topo.RandomInstance(rng, p)
		_, gErr := Greedy(in, Options{Mode: ModeExact})
		tOK, _, tErr := TreeFeasible(in)
		if tErr != nil {
			t.Fatalf("TreeFeasible error on uniform instance: %v", tErr)
		}
		total++
		if (gErr == nil) == tOK {
			agree++
		}
	}
	if ratio := float64(agree) / float64(total); ratio < 0.80 {
		t.Fatalf("tree/greedy agreement %.2f below 0.80 (%d/%d)", ratio, agree, total)
	}
}

// TestGreedySourceOnlyUpdate: when only the source's rule changes and the
// new route is node-disjoint from the old one, the schedule is a single
// immediate flip (disjoint links share no capacity, so no timing needed).
func TestGreedySourceOnlyUpdate(t *testing.T) {
	g, ids := topo.Line(4, 1, 1)
	b1 := g.AddNode("b1")
	b2 := g.AddNode("b2")
	g.MustAddLink(ids[0], b1, 1, 1)
	g.MustAddLink(b1, b2, 1, 1)
	g.MustAddLink(b2, ids[3], 1, 1)
	in := &dynflow.Instance{
		G:      g,
		Demand: 1,
		Init:   graph.Path{ids[0], ids[1], ids[2], ids[3]},
		Fin:    graph.Path{ids[0], b1, b2, ids[3]},
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeExact, ModeFast} {
		res := mustGreedy(t, in, mode)
		if res.Schedule.Makespan() != 0 {
			t.Fatalf("mode %v: makespan %d, want 0 (schedule %s)", mode, res.Schedule.Makespan(), res.Schedule.Format(in))
		}
		if r := dynflow.Validate(in, res.Schedule); !r.OK() {
			t.Fatalf("mode %v: %s", mode, r.Summary())
		}
	}
}
