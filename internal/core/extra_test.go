package core

import (
	"math/rand"
	"testing"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// TestTopoOrderCycleDetection exercises the dependency-cycle branch of
// Algorithm 3's merge directly.
func TestTopoOrderCycleDetection(t *testing.T) {
	succ := map[graph.NodeID][]graph.NodeID{
		1: {2},
		2: {3},
		3: {1},
	}
	if _, ok := topoOrder([]graph.NodeID{1, 2, 3}, succ); ok {
		t.Fatal("cycle not detected")
	}
	succ = map[graph.NodeID][]graph.NodeID{1: {2}, 2: {3}}
	order, ok := topoOrder([]graph.NodeID{1, 2, 3}, succ)
	if !ok || len(order) != 3 || order[0] != 1 || order[2] != 3 {
		t.Fatalf("order = %v ok=%v", order, ok)
	}
}

// TestComponentsGrouping: disconnected dependency relations form separate
// chains.
func TestComponentsGrouping(t *testing.T) {
	succ := map[graph.NodeID][]graph.NodeID{1: {2}, 5: {6}}
	comp := components([]graph.NodeID{1, 2, 5, 6, 9}, succ)
	if len(comp) != 3 {
		t.Fatalf("components = %v, want 3", comp)
	}
}

// TestLoopCheckerBlackholeAndCycle: the cached checker rejects redirects
// into rule-less switches and off-path cycles.
func TestLoopCheckerBlackholeAndCycle(t *testing.T) {
	g := graph.New()
	v := g.AddNodes("s", "a", "d", "x", "y")
	s, a, d, x, y := v[0], v[1], v[2], v[3], v[4]
	g.MustAddLink(s, a, 2, 1)
	g.MustAddLink(a, d, 2, 1)
	g.MustAddLink(s, x, 2, 1)
	g.MustAddLink(x, y, 2, 1)
	g.MustAddLink(y, d, 2, 1)
	in := &dynflow.Instance{G: g, Demand: 1,
		Init: graph.Path{s, a, d},
		Fin:  graph.Path{s, x, y, d},
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	sched := dynflow.NewSchedule(0)
	lc := newLoopChecker(in, sched, 0, newWorkspace(g.NumNodes()))
	// s redirects to x, whose rule does not exist yet: blackhole → reject.
	if lc.ok(s) {
		t.Fatal("redirect into rule-less switch accepted")
	}
	// x itself is off the active path and its new next hop resolves to a
	// dead end (y has no rule): still reject — install downstream first.
	if lc.ok(x) {
		t.Fatal("install toward rule-less downstream accepted")
	}
	if !lc.ok(y) {
		t.Fatal("terminal install rejected")
	}
	// With y and x installed, s is acceptable.
	sched.Set(y, 0)
	sched.Set(x, 0)
	lc = newLoopChecker(in, sched, 0, newWorkspace(g.NumNodes()))
	if !lc.ok(s) {
		t.Fatal("s rejected although the new route is fully installed")
	}
}

// TestTreeFeasibleOrderOutput: the returned order flips the crossing
// switches one at a time and covers the update set.
func TestTreeFeasibleOrderOutput(t *testing.T) {
	in := topo.Fig1Example()
	ok, order, err := TreeFeasible(in)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	seen := map[graph.NodeID]bool{}
	for _, v := range order {
		if seen[v] {
			t.Fatalf("switch %s repeated in order %v", in.G.Name(v), order)
		}
		seen[v] = true
	}
	for _, v := range in.UpdateSet() {
		if !seen[v] {
			t.Fatalf("update-set switch %s missing from order", in.G.Name(v))
		}
	}
	// v2 must cross first (everything else loops or congests initially).
	if in.G.Name(order[0]) != "v2" {
		t.Fatalf("first crossing switch = %s, want v2", in.G.Name(order[0]))
	}
}

// TestGreedyFastDeterministicSchedule: the event-driven engine is
// deterministic at the schedule level, not just feasibility.
func TestGreedyFastDeterministicSchedule(t *testing.T) {
	in := topo.EmulationTopo()
	a, errA := Greedy(in, Options{Mode: ModeFast})
	b, errB := Greedy(in, Options{Mode: ModeFast})
	if errA != nil || errB != nil {
		t.Fatalf("errs: %v %v", errA, errB)
	}
	for v, ta := range a.Schedule.Times {
		if tb := b.Schedule.Times[v]; tb != ta {
			t.Fatalf("nondeterministic: %s at %d vs %d", in.G.Name(v), ta, tb)
		}
	}
}

// TestGreedyRespectsStart: no update is ever scheduled before Start.
func TestGreedyRespectsStart(t *testing.T) {
	in := topo.Fig1Example()
	for _, mode := range []Mode{ModeExact, ModeFast} {
		res, err := Greedy(in, Options{Start: 77, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		for v, tv := range res.Schedule.Times {
			if tv < 77 {
				t.Fatalf("mode %v: %s scheduled at %d < start", mode, in.G.Name(v), tv)
			}
		}
	}
}

// TestGreedyMaxTicksBudget: a tiny budget triggers the infeasibility error
// on an instance that needs more time.
func TestGreedyMaxTicksBudget(t *testing.T) {
	in := topo.Fig1Example()
	for _, mode := range []Mode{ModeExact, ModeFast} {
		_, err := Greedy(in, Options{Mode: mode, MaxTicks: 1})
		if err == nil {
			t.Fatalf("mode %v: 1-tick budget succeeded on a makespan-3 instance", mode)
		}
	}
}

func TestSequentialDrainFig1(t *testing.T) {
	in := topo.Fig1Example()
	s, err := SequentialDrain(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r := dynflow.Validate(in, s); !r.OK() {
		t.Fatalf("sequential drain violates: %s", r.Summary())
	}
	// The naive baseline is drastically slower than Chronus here.
	gr, err := Greedy(in, Options{Mode: ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan() <= gr.Schedule.Makespan() {
		t.Fatalf("sequential makespan %d not worse than chronus %d", s.Makespan(), gr.Schedule.Makespan())
	}
}

func TestSequentialDrainInfeasibleInstance(t *testing.T) {
	in := catchUp(t, 1)
	if _, err := SequentialDrain(in, 0); err == nil {
		t.Fatal("sequential drain succeeded on the catch-up instance")
	}
}

// TestSequentialDrainProperty: whenever it returns a schedule, that
// schedule is validator-clean (it is validated internally; re-check via the
// public surface) and complete.
func TestSequentialDrainProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ok := 0
	for i := 0; i < 60; i++ {
		in := topo.RandomInstance(rng, topo.DefaultRandomParams(4+rng.Intn(10)))
		s, err := SequentialDrain(in, 5)
		if err != nil {
			continue
		}
		ok++
		if !s.Complete(in) {
			t.Fatalf("instance %d: incomplete schedule", i)
		}
		if r := dynflow.Validate(in, s); !r.OK() {
			t.Fatalf("instance %d: %s", i, r.Summary())
		}
	}
	if ok == 0 {
		t.Fatal("sequential drain never succeeded")
	}
}
