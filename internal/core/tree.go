package core

import (
	"errors"
	"fmt"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
)

// ErrNonUniformDelays is returned by TreeFeasible when link delays differ;
// Theorem 2 only covers identical transmission delays.
var ErrNonUniformDelays = errors.New("core: tree feasibility check requires identical link delays")

// TreeFeasible implements Algorithm 1: it decides in polynomial time
// whether a congestion- and loop-free timed update sequence exists for the
// instance, assuming every link has the same transmission delay (the
// precondition of Theorem 2).
//
// Interpretation notes (the paper describes Algorithm 1 at a high level,
// with the running example of Fig. 3): the algorithm repeatedly updates a
// switch whose dashed (final-path) edge crosses from the branch currently
// carrying the flow to the other branch. Such an update is always loop-free
// (checked via Algorithm 4's walk); it is congestion-safe iff either
//
//	(a) the new route from the switch to the point where it merges back
//	    into the currently active path is at least as slow as the old
//	    route (new units cannot catch up with in-flight old units:
//	    conditions (5)/(8) of the paper), or
//	(b) every link on the shared suffix after the merge point can carry
//	    both flows, i.e. its capacity is >= 2d (the merged-node ".cons"
//	    bookkeeping: condition (4) negated).
//
// Per Cases 1-2 of Theorem 2's proof, if a switch's update is infeasible
// under both conditions now, it remains infeasible at every later time, so
// a pass that gets stuck proves global infeasibility.
//
// The returned order is one feasible crossing sequence (useful for tests
// and exposition); callers needing concrete time points use Greedy.
func TreeFeasible(in *dynflow.Instance) (bool, []graph.NodeID, error) {
	if err := in.Validate(); err != nil {
		return false, nil, err
	}
	var sigma graph.Delay = -1
	for _, l := range in.G.Links() {
		if sigma < 0 {
			sigma = l.Delay
		} else if l.Delay != sigma {
			return false, nil, fmt.Errorf("%w: found %d and %d", ErrNonUniformDelays, sigma, l.Delay)
		}
	}

	// Virtual schedule: accepted switches are flipped at widely separated
	// ticks so that snapshot queries at "now" reflect exactly the accepted
	// updates. The structural conditions below do not depend on the
	// concrete tick values.
	s := dynflow.NewSchedule(0)
	step := dynflow.Tick(in.G.NumNodes())*dynflow.Tick(sigma) + 1
	now := dynflow.Tick(0)

	pending := in.UpdateSet()
	var order []graph.NodeID
	for len(pending) > 0 {
		progressed := false
		for i, v := range pending {
			if !LoopFree(in, s, v, now) {
				continue
			}
			if !crossingSafe(in, s, v, now) {
				continue
			}
			now += step
			s.Set(v, now)
			order = append(order, v)
			pending = append(pending[:i], pending[i+1:]...)
			progressed = true
			break
		}
		if !progressed {
			return false, order, nil
		}
	}
	return true, order, nil
}

// crossingSafe checks the congestion conditions (a)/(b) described on
// TreeFeasible for updating v under the configuration in force at tick now.
func crossingSafe(in *dynflow.Instance, s *dynflow.Schedule, v graph.NodeID, now dynflow.Tick) bool {
	cur := activePath(in, s, now)
	iv := cur.Index(v)
	if iv < 0 {
		// v carries no fresh traffic: flipping its rule affects nobody
		// until upstream switches redirect flow, and those flips perform
		// their own checks against the then-active path.
		return true
	}
	w := in.NewNext(v)
	if w == graph.Invalid {
		return true
	}
	// Follow the new route from v under the current configuration until it
	// merges back into the active path (or reaches the destination).
	onCur := make(map[graph.NodeID]int, len(cur))
	for i, u := range cur {
		onCur[u] = i
	}
	newDelay := dynflow.Tick(0)
	mergeIdx := -1
	seen := map[graph.NodeID]bool{v: true}
	cursor := v
	next := w
	for {
		l, ok := in.G.Link(cursor, next)
		if !ok {
			// Dangling rule; the greedy/exact layers surface this as a
			// blackhole. Structurally treat as unsafe.
			return false
		}
		newDelay += dynflow.Tick(l.Delay)
		cursor = next
		if idx, ok := onCur[cursor]; ok && idx > iv {
			mergeIdx = idx
			break
		}
		if cursor == in.Dest() {
			break
		}
		if seen[cursor] {
			return false
		}
		seen[cursor] = true
		next = snapshotNext(in, s, cursor, now)
		if next == graph.Invalid {
			return false
		}
	}
	if mergeIdx < 0 {
		// The new route reaches the destination without touching the
		// active path: no link is shared, so no old/new collision.
		return true
	}
	// Old route delay from v to the merge point along the active path.
	oldDelay := dynflow.Tick(graph.Path(cur[iv : mergeIdx+1]).Delay(in.G))
	if newDelay >= oldDelay {
		return true // condition (a): no catch-up
	}
	// Condition (b): the shared suffix (merge point to destination along
	// the active path) must accommodate both flows.
	suffix := graph.Path(cur[mergeIdx:])
	if len(suffix) < 2 {
		return true // merge at the destination: nothing shared
	}
	return suffix.MinCapacity(in.G) >= 2*in.Demand
}
