package core

import (
	"github.com/chronus-sdn/chronus/internal/obs"
)

// schedMetrics bundles the scheduler's instruments. Built from a
// possibly-nil registry, in which case every instrument is a nil no-op
// and instrumentation costs one predictable branch per event.
type schedMetrics struct {
	accepted      *obs.Counter
	deferred      *obs.Counter
	rejected      *obs.Counter
	validations   *obs.Counter
	wakeJumps     *obs.Counter
	backoffResets *obs.Counter
	cycles        *obs.Counter
	runs          *obs.Counter
	makespan      *obs.Histogram
}

// RegisterMetrics pre-registers the scheduler metric families on r so
// they appear in expositions before the first solve. Greedy calls it
// implicitly; daemons call it at boot.
func RegisterMetrics(r *obs.Registry) {
	newSchedMetrics(r)
	if r != nil {
		r.Help("chronus_solver_cache_hits_total", "Solver precomputation cache hits by cache (tracer, precomp, plan).")
		r.Help("chronus_solver_cache_misses_total", "Solver precomputation cache misses by cache (tracer, precomp, plan).")
		r.Counter(`chronus_solver_cache_hits_total{cache="precomp"}`)
		r.Counter(`chronus_solver_cache_misses_total{cache="precomp"}`)
		r.Help("chronus_solver_pool_bytes", "Scratch bytes parked in the pooled solver workspace freelist.")
		r.GaugeFunc("chronus_solver_pool_bytes", PooledBytes)
	}
}

func newSchedMetrics(r *obs.Registry) schedMetrics {
	if r != nil {
		r.Help("chronus_scheduler_candidates_total", "candidate evaluations by outcome (accepted, deferred, rejected)")
		r.Help("chronus_scheduler_wake_jumps_total", "event-driven jumps between wake ticks")
		r.Help("chronus_scheduler_validator_runs_total", "ground-truth validator invocations by the scheduler")
		r.Help("chronus_scheduler_backoff_resets_total", "exponential-backoff resets after an acceptance")
		r.Help("chronus_scheduler_dependency_cycles_total", "rounds whose dependency relation was cyclic")
		r.Help("chronus_scheduler_runs_total", "Greedy invocations")
		r.Help("chronus_scheduler_makespan_ticks", "schedule makespan in ticks")
	}
	return schedMetrics{
		accepted:      r.Counter(`chronus_scheduler_candidates_total{outcome="accepted"}`),
		deferred:      r.Counter(`chronus_scheduler_candidates_total{outcome="deferred"}`),
		rejected:      r.Counter(`chronus_scheduler_candidates_total{outcome="rejected"}`),
		validations:   r.Counter("chronus_scheduler_validator_runs_total"),
		wakeJumps:     r.Counter("chronus_scheduler_wake_jumps_total"),
		backoffResets: r.Counter("chronus_scheduler_backoff_resets_total"),
		cycles:        r.Counter("chronus_scheduler_dependency_cycles_total"),
		runs:          r.Counter("chronus_scheduler_runs_total"),
		makespan:      r.Histogram("chronus_scheduler_makespan_ticks", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}),
	}
}
