package core

import (
	"sync"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/obs"
)

// The precomputation cache holds per-topology invariants — facts derived
// only from (topology, capacities, delays) — keyed by the graph's canonical
// fingerprint, so repeated solves over one topology (the chronusd workload)
// skip the per-solve link scans. Entries are tiny values, immutable after
// insertion, bounded in count.

// topoFacts are the cached per-topology invariants.
type topoFacts struct {
	// maxDelay is the largest link delay (at least 1), the quantity behind
	// the automatic tick budgets of both greedy modes.
	maxDelay graph.Delay
}

// topoCacheCap bounds the precomputation cache entry count.
const topoCacheCap = 256

var topoCache = struct {
	sync.Mutex
	m       map[uint64]topoFacts
	enabled bool
}{m: make(map[uint64]topoFacts), enabled: true}

// SetPrecompCache enables or disables the per-topology precomputation
// cache and reports the previous setting; disabling drops cached entries.
// It exists for the cache on/off property tests.
func SetPrecompCache(on bool) bool {
	topoCache.Lock()
	defer topoCache.Unlock()
	prev := topoCache.enabled
	topoCache.enabled = on
	if !on {
		topoCache.m = make(map[uint64]topoFacts)
	}
	return prev
}

// scanMaxDelay is the uncached fact computation: one pass over the links.
func scanMaxDelay(in *dynflow.Instance) graph.Delay {
	var maxDelay graph.Delay = 1
	for _, l := range in.G.Links() {
		if l.Delay > maxDelay {
			maxDelay = l.Delay
		}
	}
	return maxDelay
}

// topoFactsFor returns the instance's per-topology invariants, serving them
// from the fingerprint-keyed cache unless noCache is set. Hits and misses
// are recorded on r (which may be nil).
func topoFactsFor(in *dynflow.Instance, r *obs.Registry, noCache bool) topoFacts {
	if noCache {
		return topoFacts{maxDelay: scanMaxDelay(in)}
	}
	fp := in.G.Fingerprint()
	topoCache.Lock()
	if topoCache.enabled {
		if f, ok := topoCache.m[fp]; ok {
			topoCache.Unlock()
			r.Counter(`chronus_solver_cache_hits_total{cache="precomp"}`).Inc()
			return f
		}
	}
	topoCache.Unlock()
	r.Counter(`chronus_solver_cache_misses_total{cache="precomp"}`).Inc()
	f := topoFacts{maxDelay: scanMaxDelay(in)}
	topoCache.Lock()
	if topoCache.enabled {
		if len(topoCache.m) >= topoCacheCap {
			for k := range topoCache.m {
				delete(topoCache.m, k)
				break
			}
		}
		topoCache.m[fp] = f
	}
	topoCache.Unlock()
	return f
}
