package core

import (
	"errors"
	"testing"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// catchUp builds the minimal infeasible instance: the new route reaches the
// shared tight link (m,d) one tick faster than the old route, so for every
// flip time of s a new unit collides with an in-flight old unit.
func catchUp(t *testing.T, sharedCap graph.Capacity) *dynflow.Instance {
	t.Helper()
	g := graph.New()
	v := g.AddNodes("s", "a", "m", "d")
	g.MustAddLink(v[0], v[1], 1, 1) // s->a
	g.MustAddLink(v[1], v[2], 1, 1) // a->m
	g.MustAddLink(v[2], v[3], sharedCap, 1)
	g.MustAddLink(v[0], v[2], 1, 1) // s->m shortcut
	in := &dynflow.Instance{
		G:      g,
		Demand: 1,
		Init:   graph.Path{v[0], v[1], v[2], v[3]},
		Fin:    graph.Path{v[0], v[2], v[3]},
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("catchUp instance invalid: %v", err)
	}
	return in
}

func mustGreedy(t *testing.T, in *dynflow.Instance, mode Mode) *Result {
	t.Helper()
	res, err := Greedy(in, Options{Mode: mode})
	if err != nil {
		t.Fatalf("Greedy(%v): %v", mode, err)
	}
	if !res.Schedule.Complete(in) {
		t.Fatalf("Greedy(%v): incomplete schedule %v", mode, res.Schedule)
	}
	return res
}

func TestGreedyExactFig1MatchesPaper(t *testing.T) {
	in := topo.Fig1Example()
	res := mustGreedy(t, in, ModeExact)
	s := res.Schedule
	if !res.Report.OK() {
		t.Fatalf("report not OK: %s", res.Report.Summary())
	}
	want := map[string]dynflow.Tick{"v2": 0, "v3": 1, "v1": 2, "v4": 2, "v5": 3}
	for name, wt := range want {
		got, ok := s.Time(in.G.Lookup(name))
		if !ok || got != wt {
			t.Errorf("τ(%s) = %d (ok=%v), want %d; schedule: %s", name, got, ok, wt, s.Format(in))
		}
	}
	if s.Makespan() != 3 {
		t.Fatalf("makespan = %d, want 3", s.Makespan())
	}
}

func TestGreedyFastFig1(t *testing.T) {
	in := topo.Fig1Example()
	res := mustGreedy(t, in, ModeFast)
	if res.Validations != 0 {
		t.Fatalf("fast mode invoked the validator %d times", res.Validations)
	}
	if r := dynflow.Validate(in, res.Schedule); !r.OK() {
		t.Fatalf("fast schedule violates: %s (schedule %s)", r.Summary(), res.Schedule.Format(in))
	}
	if res.Schedule.Makespan() != 3 {
		t.Fatalf("fast makespan = %d, want 3 (schedule %s)", res.Schedule.Makespan(), res.Schedule.Format(in))
	}
}

func TestGreedyNonZeroStart(t *testing.T) {
	in := topo.Fig1Example()
	res, err := Greedy(in, Options{Start: 100, Mode: ModeExact})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Schedule.Time(in.G.Lookup("v2")); got != 100 {
		t.Fatalf("τ(v2) = %d, want 100", got)
	}
	if res.Schedule.Makespan() != 3 {
		t.Fatalf("makespan = %d, want 3", res.Schedule.Makespan())
	}
}

func TestGreedyInfeasibleCatchUp(t *testing.T) {
	for _, mode := range []Mode{ModeExact, ModeFast} {
		in := catchUp(t, 1)
		_, err := Greedy(in, Options{Mode: mode})
		if !errors.Is(err, ErrInfeasible) {
			t.Fatalf("Greedy(%v) = %v, want ErrInfeasible", mode, err)
		}
	}
}

func TestGreedyFeasibleWithSlack(t *testing.T) {
	for _, mode := range []Mode{ModeExact, ModeFast} {
		in := catchUp(t, 2)
		res := mustGreedy(t, in, mode)
		if r := dynflow.Validate(in, res.Schedule); !r.OK() {
			t.Fatalf("mode %v: %s", mode, r.Summary())
		}
		if res.Schedule.Makespan() != 0 {
			t.Fatalf("mode %v: makespan = %d, want 0 (single switch, immediate)", mode, res.Schedule.Makespan())
		}
	}
}

func TestGreedyInstallBeforeUse(t *testing.T) {
	// Final-only switches must be installed before the source flips.
	g := graph.New()
	v := g.AddNodes("s", "x", "n1", "n2", "d")
	g.MustAddLink(v[0], v[1], 2, 1)
	g.MustAddLink(v[1], v[4], 2, 1)
	g.MustAddLink(v[0], v[2], 2, 1)
	g.MustAddLink(v[2], v[3], 2, 1)
	g.MustAddLink(v[3], v[4], 2, 1)
	in := &dynflow.Instance{
		G:      g,
		Demand: 1,
		Init:   graph.Path{v[0], v[1], v[4]},
		Fin:    graph.Path{v[0], v[2], v[3], v[4]},
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeExact, ModeFast} {
		res := mustGreedy(t, in, mode)
		s := res.Schedule
		if r := dynflow.Validate(in, s); !r.OK() {
			t.Fatalf("mode %v: %s", mode, r.Summary())
		}
		ts, _ := s.Time(v[0])
		t1, _ := s.Time(v[2])
		t2, _ := s.Time(v[3])
		if ts < t1 || ts < t2 {
			t.Fatalf("mode %v: source flipped before rules installed: %s", mode, s.Format(in))
		}
	}
}

func TestDependencyChainsFig1AtT0(t *testing.T) {
	in := topo.Fig1Example()
	s := dynflow.NewSchedule(0)
	chains, err := DependencyChains(in, s, in.UpdateSet(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(chains) != 1 {
		t.Fatalf("chains = %d, want one merged chain: %v", len(chains), chains)
	}
	// With the snapshot-based reading of Algorithm 3 the merged relation at
	// t0 is v2=>v4=>v1=>v3=>v5 (the paper's Fig. 5 lists v2=>v4=>v3=>v1=>v5;
	// both agree that only v2 is a head at t0, which is what Algorithm 2
	// consumes).
	got := chains[0].Format(in.G)
	if got != "v2=>v4=>v1=>v3=>v5" {
		t.Fatalf("chain = %s", got)
	}
	heads := Heads(chains)
	if len(heads) != 1 || in.G.Name(heads[0]) != "v2" {
		t.Fatalf("heads = %v, want [v2]", heads)
	}
}

func TestDependencyChainsAfterV2(t *testing.T) {
	in := topo.Fig1Example()
	s := dynflow.NewSchedule(0)
	s.Set(in.G.Lookup("v2"), 0)
	pending := []graph.NodeID{
		in.G.Lookup("v1"), in.G.Lookup("v3"), in.G.Lookup("v4"), in.G.Lookup("v5"),
	}
	chains, err := DependencyChains(in, s, pending, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig. 5 shows {(v3 v1 v5), (v4)} at t1: multiple relations,
	// with v4 independent. The snapshot reading agrees that v4 and v5 are
	// unconstrained and that v1/v3 are related.
	if len(chains) < 2 {
		t.Fatalf("chains = %v, want at least 2 relations", chains)
	}
	total := 0
	for _, c := range chains {
		total += len(c)
	}
	if total != 4 {
		t.Fatalf("chains cover %d switches, want 4: %v", total, chains)
	}
}

func TestLoopFreeFig1(t *testing.T) {
	in := topo.Fig1Example()
	s := dynflow.NewSchedule(0)
	cases := []struct {
		name string
		want bool
	}{
		{"v1", true}, // redirect to v5 -> old v5 rule -> v6: no revisit
		{"v2", true}, // redirect straight to v6
		{"v3", false},
		{"v4", false},
		{"v5", false},
	}
	for _, c := range cases {
		if got := LoopFree(in, s, in.G.Lookup(c.name), 0); got != c.want {
			t.Errorf("LoopFree(%s@0) = %v, want %v", c.name, got, c.want)
		}
	}
	// After v2 and v3 flipped, v4's redirect becomes loop-free.
	s.Set(in.G.Lookup("v2"), 0)
	s.Set(in.G.Lookup("v3"), 1)
	if !LoopFree(in, s, in.G.Lookup("v4"), 2) {
		t.Error("LoopFree(v4@2) = false after v2,v3 flipped")
	}
}

func TestTreeFeasible(t *testing.T) {
	in := topo.Fig1Example()
	ok, order, err := TreeFeasible(in)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("Fig1 reported infeasible (order so far %v)", order)
	}
	if len(order) != 5 {
		t.Fatalf("order covers %d switches, want 5", len(order))
	}

	if ok, _, err := TreeFeasible(catchUp(t, 1)); err != nil || ok {
		t.Fatalf("catch-up instance: ok=%v err=%v, want infeasible", ok, err)
	}
	if ok, _, err := TreeFeasible(catchUp(t, 2)); err != nil || !ok {
		t.Fatalf("slack catch-up: ok=%v err=%v, want feasible", ok, err)
	}
}

func TestTreeFeasibleRejectsNonUniformDelays(t *testing.T) {
	in := topo.EmulationTopo()
	_, _, err := TreeFeasible(in)
	if !errors.Is(err, ErrNonUniformDelays) {
		t.Fatalf("err = %v, want ErrNonUniformDelays", err)
	}
}

func TestGreedyEmulationTopo(t *testing.T) {
	in := topo.EmulationTopo()
	res := mustGreedy(t, in, ModeExact)
	if !res.Report.OK() {
		t.Fatalf("report: %s", res.Report.Summary())
	}
	fast := mustGreedy(t, in, ModeFast)
	if r := dynflow.Validate(in, fast.Schedule); !r.OK() {
		t.Fatalf("fast schedule on emulation topo violates: %s", r.Summary())
	}
}

func TestModeString(t *testing.T) {
	if ModeExact.String() != "exact" || ModeFast.String() != "fast" {
		t.Fatal("Mode.String broken")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode renders empty")
	}
}
