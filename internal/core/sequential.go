package core

import (
	"fmt"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
)

// SequentialDrain is the naive timed baseline: install the final-only
// switches first (they carry no traffic yet), then flip the remaining
// switches one at a time in reverse final-path order, spacing consecutive
// flips by a full end-to-end drain so that no two transients ever coexist.
//
// It needs no dependency analysis and no per-flip checks — only a clock —
// which makes it the simplest schedule an operator could run on a timed
// SDN. Its makespan is Θ(updates × drain), which is exactly what Chronus's
// per-tick parallelism collapses; the acceptance-mode ablation quantifies
// the gap. The result is validated before being returned: like any fixed
// strategy it cannot be safe on infeasible instances (ErrInfeasible).
func SequentialDrain(in *dynflow.Instance, start dynflow.Tick) (*dynflow.Schedule, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	s := dynflow.NewSchedule(start)
	drain := dynflow.Tick(in.Init.Delay(in.G)+in.Fin.Delay(in.G)) + 1

	// Phase 1: fresh installs on final-only switches, reverse order, all at
	// the start tick (no traffic can reach them yet).
	var flips []graph.NodeID
	for i := len(in.Fin) - 2; i >= 0; i-- {
		v := in.Fin[i]
		if !in.NeedsUpdate(v) {
			continue
		}
		if in.OldNext(v) == graph.Invalid {
			s.Set(v, start)
		} else {
			flips = append(flips, v)
		}
	}
	// Phase 2: one flip per drain interval, reverse final-path order.
	t := start + 1
	for _, v := range flips {
		s.Set(v, t)
		t += drain
	}
	if r := dynflow.Validate(in, s); !r.OK() {
		return nil, fmt.Errorf("%w: drain-paced sequential update violates (%s)", ErrInfeasible, r.Summary())
	}
	return s, nil
}
