package core

import (
	"sort"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
)

// SwitchSlack is the scheduling tolerance of one switch in a validated
// schedule: how many ticks its activation may slip before the schedule
// stops being congestion- and loop-free.
type SwitchSlack struct {
	// V is the switch.
	V graph.NodeID
	// Time is v's scheduled activation tick.
	Time dynflow.Tick
	// Slack is the largest delay d such that activating v at Time+d (all
	// other switches unchanged) still validates clean. It is capped at
	// the instance's scheduling horizon (autoMaxTicks); a switch whose
	// delay never broke the schedule within the horizon reports the cap.
	Slack dynflow.Tick
	// Critical marks zero-slack switches: any slip at all breaks one of
	// the invariants, so these gate the correctness of the makespan.
	Critical bool
}

// ScheduleSlack computes the per-switch slack of a schedule against the
// dynamic-flow validator: for each scheduled switch it delays that one
// activation until Validate reports a violation. It answers the
// operational question behind critical-path analysis — which switches
// must fire on time, and how much timing error the rest tolerate — and
// complements the event-based critical path the audit package derives
// from an execution trace.
//
// Switches are returned in ascending NodeID order. The result is only
// meaningful for schedules that validate clean; for a violating schedule
// every switch reports zero slack.
func ScheduleSlack(in *dynflow.Instance, s *dynflow.Schedule) []SwitchSlack {
	ids := make([]graph.NodeID, 0, len(s.Times))
	for v := range s.Times {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]SwitchSlack, 0, len(ids))
	if !dynflow.Validate(in, s).OK() {
		for _, v := range ids {
			out = append(out, SwitchSlack{V: v, Time: s.Times[v], Critical: true})
		}
		return out
	}
	horizon := autoMaxTicks(in)
	for _, v := range ids {
		slack := horizon
		trial := s.Clone()
		for d := dynflow.Tick(1); d <= horizon; d++ {
			trial.Times[v] = s.Times[v] + d
			if !dynflow.Validate(in, trial).OK() {
				slack = d - 1
				break
			}
		}
		out = append(out, SwitchSlack{V: v, Time: s.Times[v], Slack: slack, Critical: slack == 0})
	}
	return out
}
