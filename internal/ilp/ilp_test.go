package ilp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/chronus-sdn/chronus/internal/lp"
)

func solveOK(t *testing.T, p *Problem, opts Options) *Solution {
	t.Helper()
	s, err := Solve(p, opts)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestKnapsack(t *testing.T) {
	// max 10a + 6b + 4c s.t. a + b + c <= 2 (weights 1) -> a,b -> 16
	p := &Problem{NumVars: 3, Objective: []float64{10, 6, 4}}
	p.AddConstraint([]float64{1, 1, 1}, lp.LE, 2)
	s := solveOK(t, p, Options{})
	if s.Status != Optimal || s.Objective != 16 {
		t.Fatalf("solution = %+v, want 16", s)
	}
	if s.X[0] != 1 || s.X[1] != 1 || s.X[2] != 0 {
		t.Fatalf("X = %v", s.X)
	}
}

func TestFractionalRelaxationForcedInteger(t *testing.T) {
	// max 5a + 4b s.t. 2a + 2b <= 3: LP relax gives 1.5 items; ILP picks a.
	p := &Problem{NumVars: 2, Objective: []float64{5, 4}}
	p.AddConstraint([]float64{2, 2}, lp.LE, 3)
	s := solveOK(t, p, Options{})
	if s.Status != Optimal || s.Objective != 5 {
		t.Fatalf("solution = %+v, want 5", s)
	}
}

func TestInfeasibleILP(t *testing.T) {
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint([]float64{1, 1}, lp.GE, 3) // binaries cannot reach 3
	s := solveOK(t, p, Options{})
	if s.Status != Infeasible || s.Found {
		t.Fatalf("solution = %+v, want infeasible", s)
	}
}

func TestEqualityCoupling(t *testing.T) {
	// a + b = 1 and a = b is infeasible over binaries.
	p := &Problem{NumVars: 2, Objective: []float64{1, 0}}
	p.AddConstraint([]float64{1, 1}, lp.EQ, 1)
	p.AddConstraint([]float64{1, -1}, lp.EQ, 0)
	s := solveOK(t, p, Options{})
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestSetCover(t *testing.T) {
	// Minimize sets covering {1,2,3}: sets {1,2}, {2,3}, {3}, {1}.
	// Min cover = 2 ({1,2},{2,3}). Maximize negative cost.
	p := &Problem{NumVars: 4, Objective: []float64{-1, -1, -1, -1}}
	p.AddConstraint([]float64{1, 0, 0, 1}, lp.GE, 1) // element 1
	p.AddConstraint([]float64{1, 1, 0, 0}, lp.GE, 1) // element 2
	p.AddConstraint([]float64{0, 1, 1, 0}, lp.GE, 1) // element 3
	s := solveOK(t, p, Options{})
	if s.Status != Optimal || s.Objective != -2 {
		t.Fatalf("solution = %+v, want -2", s)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// Uniform weights 2 with an odd budget force a fractional root
	// relaxation, so a single node cannot prove optimality.
	n := 12
	p := &Problem{NumVars: n, Objective: make([]float64, n)}
	coeffs := make([]float64, n)
	for j := 0; j < n; j++ {
		p.Objective[j] = 1
		coeffs[j] = 2
	}
	p.AddConstraint(coeffs, lp.LE, 11)
	s := solveOK(t, p, Options{MaxNodes: 1})
	if s.Status != Budget {
		t.Fatalf("status = %v, want budget", s.Status)
	}
}

func TestMalformedILP(t *testing.T) {
	if _, err := Solve(&Problem{NumVars: 0}, Options{}); err == nil {
		t.Fatal("zero vars accepted")
	}
}

// TestAgainstBruteForce: on small random programs, branch and bound matches
// exhaustive enumeration exactly.
func TestAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5) // up to 6 vars -> 64 assignments
		m := 1 + rng.Intn(4)
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = math.Round(rng.Float64()*20 - 5)
		}
		for i := 0; i < m; i++ {
			coeffs := make([]float64, n)
			for j := range coeffs {
				coeffs[j] = math.Round(rng.Float64() * 5)
			}
			ops := []lp.Op{lp.LE, lp.GE}
			op := ops[rng.Intn(len(ops))]
			rhs := math.Round(rng.Float64() * float64(n) * 2)
			p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: coeffs, Op: op, RHS: rhs})
		}
		got, err := Solve(p, Options{})
		if err != nil {
			return false
		}
		bestObj := math.Inf(-1)
		found := false
		for mask := 0; mask < 1<<n; mask++ {
			feasible := true
			for _, c := range p.Constraints {
				lhs := 0.0
				for j := 0; j < n; j++ {
					if mask&(1<<j) != 0 {
						lhs += c.Coeffs[j]
					}
				}
				switch c.Op {
				case lp.LE:
					feasible = feasible && lhs <= c.RHS+1e-9
				case lp.GE:
					feasible = feasible && lhs >= c.RHS-1e-9
				case lp.EQ:
					feasible = feasible && math.Abs(lhs-c.RHS) < 1e-9
				}
			}
			if !feasible {
				continue
			}
			found = true
			obj := 0.0
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					obj += p.Objective[j]
				}
			}
			if obj > bestObj {
				bestObj = obj
			}
		}
		if !found {
			return got.Status == Infeasible
		}
		return got.Status == Optimal && math.Abs(got.Objective-bestObj) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
