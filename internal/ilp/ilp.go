// Package ilp solves 0/1 integer linear programs by branch and bound over
// LP relaxations (internal/lp). The paper uses branch and bound both for
// OPT (the MUTP integer program (3)) and for the round-minimizing order
// replacement baseline; this package provides that machinery with explicit
// node budgets so the evaluation can reproduce the "does not complete
// within the time limit" behaviour of Fig. 10.
package ilp

import (
	"errors"
	"fmt"
	"math"

	"github.com/chronus-sdn/chronus/internal/lp"
)

// Problem is a 0/1 integer program: maximize Objective · x subject to
// Constraints, x[i] ∈ {0, 1}.
type Problem struct {
	NumVars     int
	Objective   []float64
	Constraints []lp.Constraint
}

// AddConstraint appends a linear constraint.
func (p *Problem) AddConstraint(coeffs []float64, op lp.Op, rhs float64) {
	p.Constraints = append(p.Constraints, lp.Constraint{Coeffs: coeffs, Op: op, RHS: rhs})
}

// Status classifies the outcome.
type Status int

const (
	// Optimal means the returned assignment is provably optimal.
	Optimal Status = iota + 1
	// Infeasible means no 0/1 assignment satisfies the constraints.
	Infeasible
	// Budget means the node budget was exhausted; X holds the best
	// incumbent found (if Found is true).
	Budget
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Budget:
		return "budget-exhausted"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Options configures the search.
type Options struct {
	// MaxNodes caps branch-and-bound nodes (0 = default 100000).
	MaxNodes int
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	Found     bool
	X         []int
	Objective float64
	Nodes     int
}

// ErrMalformed mirrors lp.ErrMalformed for invalid programs.
var ErrMalformed = errors.New("ilp: malformed problem")

const intTol = 1e-6

// Solve runs depth-first branch and bound. Fractional LP optima provide
// upper bounds; branching picks the most fractional variable, exploring the
// rounded branch first.
func Solve(p *Problem, opts Options) (*Solution, error) {
	if p.NumVars <= 0 {
		return nil, fmt.Errorf("%w: NumVars=%d", ErrMalformed, p.NumVars)
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 100000
	}
	sol := &Solution{Objective: math.Inf(-1)}
	fixed := make([]int, p.NumVars) // -1 free, 0 or 1 fixed
	for i := range fixed {
		fixed[i] = -1
	}
	exhausted, err := branch(p, fixed, sol, maxNodes)
	if err != nil {
		return nil, err
	}
	switch {
	case exhausted && sol.Found:
		sol.Status = Budget
	case exhausted:
		sol.Status = Budget
	case sol.Found:
		sol.Status = Optimal
	default:
		sol.Status = Infeasible
	}
	return sol, nil
}

// branch explores the subtree with the given fixings; returns true when the
// node budget ran out.
func branch(p *Problem, fixed []int, sol *Solution, maxNodes int) (bool, error) {
	if sol.Nodes >= maxNodes {
		return true, nil
	}
	sol.Nodes++

	relax := &lp.Problem{NumVars: p.NumVars, Objective: p.Objective}
	relax.Constraints = append(relax.Constraints, p.Constraints...)
	for j := 0; j < p.NumVars; j++ {
		coeffs := make([]float64, j+1)
		coeffs[j] = 1
		switch fixed[j] {
		case -1:
			relax.Constraints = append(relax.Constraints, lp.Constraint{Coeffs: coeffs, Op: lp.LE, RHS: 1})
		default:
			relax.Constraints = append(relax.Constraints, lp.Constraint{Coeffs: coeffs, Op: lp.EQ, RHS: float64(fixed[j])})
		}
	}
	s, err := lp.Solve(relax)
	if err != nil {
		return false, err
	}
	if s.Status == lp.Infeasible {
		return false, nil
	}
	if s.Status == lp.Unbounded {
		// Binaries are boxed, so the relaxation is never unbounded.
		return false, fmt.Errorf("ilp: internal error: boxed relaxation unbounded")
	}
	if sol.Found && s.Objective <= sol.Objective+1e-9 {
		return false, nil // bound: cannot improve the incumbent
	}
	// Integral?
	branchVar := -1
	worstFrac := 0.0
	for j := 0; j < p.NumVars; j++ {
		f := math.Abs(s.X[j] - math.Round(s.X[j]))
		if f > intTol && f > worstFrac {
			worstFrac = f
			branchVar = j
		}
	}
	if branchVar < 0 {
		obj := 0.0
		x := make([]int, p.NumVars)
		for j := 0; j < p.NumVars; j++ {
			x[j] = int(math.Round(s.X[j]))
			if j < len(p.Objective) {
				obj += p.Objective[j] * float64(x[j])
			}
		}
		if !sol.Found || obj > sol.Objective {
			sol.Found = true
			sol.Objective = obj
			sol.X = x
		}
		return false, nil
	}
	first := int(math.Round(s.X[branchVar]))
	for _, val := range []int{first, 1 - first} {
		fixed[branchVar] = val
		exhausted, err := branch(p, fixed, sol, maxNodes)
		fixed[branchVar] = -1
		if err != nil || exhausted {
			return exhausted, err
		}
	}
	return false, nil
}
