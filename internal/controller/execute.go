package controller

import (
	"fmt"
	"sort"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/emu"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/obs"
	"github.com/chronus-sdn/chronus/internal/ofp"
	"github.com/chronus-sdn/chronus/internal/sim"
)

// beginExecute opens a ctl.execute span for one execution strategy and
// pushes it as the ambient parent; the returned func pops and ends it,
// stamping the outcome from *err (use with a named return and defer).
func (c *Controller) beginExecute(mode string, switches int, err *error) func() {
	sp := c.opts.Trace.StartSpan(int64(c.h.Now()), "ctl.execute", c.curSpan(),
		obs.A("mode", mode), obs.A("switches", switches))
	c.pushSpan(sp.SpanID())
	return func() {
		c.popSpan()
		outcome := "ok"
		if *err != nil {
			outcome = "error"
		}
		sp.End(int64(c.h.Now()), obs.A("outcome", outcome))
	}
}

// FlowSpec describes one traffic aggregate to provision.
type FlowSpec struct {
	Name string
	Tag  emu.Tag
	Path graph.Path
	Rate emu.Rate
}

// Provision installs the flow's rules destination-first (so no packet ever
// hits a missing rule), barriers every switch, and starts the injection at
// the source.
func (c *Controller) Provision(f FlowSpec) error {
	if len(f.Path) < 2 {
		return fmt.Errorf("controller: flow %q path too short", f.Name)
	}
	dst := f.Path.Dest()
	if _, err := c.send(dst, &ofp.FlowMod{
		Command: ofp.FlowAdd, Flow: f.Name, Tag: uint16(f.Tag), Action: ofp.ActionToHost,
	}); err != nil {
		return err
	}
	for i := len(f.Path) - 2; i >= 0; i-- {
		if _, err := c.send(f.Path[i], &ofp.FlowMod{
			Command: ofp.FlowAdd, Flow: f.Name, Tag: uint16(f.Tag),
			Action: ofp.ActionOutput, NextHop: int32(f.Path[i+1]),
		}); err != nil {
			return err
		}
	}
	if err := c.Barrier(f.Path...); err != nil {
		return err
	}
	src := f.Path.Source()
	key := emu.FlowKey{Flow: f.Name, Tag: f.Tag}
	c.h.Do(func() {
		c.h.Net.Inject(src, key, f.Rate)
	})
	return nil
}

// StopFlow halts the injection at the flow's source.
func (c *Controller) StopFlow(f FlowSpec) {
	key := emu.FlowKey{Flow: f.Name, Tag: f.Tag}
	src := f.Path.Source()
	c.h.Do(func() { c.h.Net.Inject(src, key, 0) })
}

// ExecuteTimed performs the Chronus update (Algorithm 5, time-triggered
// variant): every switch in the schedule receives one timed FlowMod whose
// ExecuteAt is the scheduled tick, followed by a barrier confirming that
// all switches have accepted their scheduled updates. The data plane then
// flips by itself as local clocks reach the scheduled instants; the caller
// advances virtual time (h.AdvanceTo) past the schedule end.
//
// The schedule's ticks are interpreted as absolute virtual times; they must
// lie in the future when the FlowMods arrive, i.e. leave at least the
// control latency of headroom.
func (c *Controller) ExecuteTimed(in *dynflow.Instance, s *dynflow.Schedule, f FlowSpec) (err error) {
	defer c.beginExecute("timed", len(s.Times), &err)()
	var ids []graph.NodeID
	for v := range s.Times {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, v := range ids {
		tv := s.Times[v]
		nh := in.Fin.NextHop(v)
		if nh == graph.Invalid {
			return fmt.Errorf("controller: switch %s has no final next hop", c.h.G.Name(v))
		}
		cmd := ofp.FlowModify
		if in.OldNext(v) == graph.Invalid {
			cmd = ofp.FlowAdd
		}
		if _, err := c.send(v, &ofp.FlowMod{
			Command: cmd, Flow: f.Name, Tag: uint16(f.Tag),
			Action: ofp.ActionOutput, NextHop: int32(nh),
			ExecuteAt: int64(tv),
		}); err != nil {
			return err
		}
	}
	return c.Barrier(ids...)
}

// ExecuteBarrierPaced is the literal Algorithm 5 loop used when switches
// lack timed-update support: for each distinct schedule tick, send the
// round's FlowMods immediately, send barrier requests, wait for all barrier
// replies, then sleep one time unit (advance virtual time). Because the
// FlowMods of a round reach their switches after unpredictable control
// latencies, rounds exhibit exactly the intra-round asynchrony the paper's
// motivating example describes.
func (c *Controller) ExecuteBarrierPaced(in *dynflow.Instance, s *dynflow.Schedule, f FlowSpec, unit sim.Time) (err error) {
	defer c.beginExecute("rounds", len(s.Times), &err)()
	if unit <= 0 {
		unit = 1
	}
	for _, round := range s.Rounds() {
		rsp := c.opts.Trace.StartSpan(int64(c.h.Now()), "ctl.round", c.curSpan(),
			obs.A("round", round), obs.A("switches", len(s.At(round))))
		c.pushSpan(rsp.SpanID())
		endRound := func(e error) error {
			c.popSpan()
			outcome := "ok"
			if e != nil {
				outcome = "error"
			}
			rsp.End(int64(c.h.Now()), obs.A("outcome", outcome))
			return e
		}
		for _, v := range s.At(round) {
			nh := in.Fin.NextHop(v)
			if nh == graph.Invalid {
				return endRound(fmt.Errorf("controller: switch %s has no final next hop", c.h.G.Name(v)))
			}
			cmd := ofp.FlowModify
			if in.OldNext(v) == graph.Invalid {
				cmd = ofp.FlowAdd
			}
			if _, serr := c.send(v, &ofp.FlowMod{
				Command: cmd, Flow: f.Name, Tag: uint16(f.Tag),
				Action: ofp.ActionOutput, NextHop: int32(nh),
			}); serr != nil {
				return endRound(serr)
			}
		}
		if berr := c.Barrier(s.At(round)...); berr != nil {
			return endRound(berr)
		}
		c.h.AdvanceBy(unit) // "Sleep for one time unit."
		endRound(nil)
	}
	return nil
}

// ExecuteTwoPhase performs the TP baseline: phase one installs the final
// path's rules under a fresh version tag everywhere and barriers; phase two
// flips the ingress stamp so newly emitted traffic carries the new tag;
// after the old traffic drains, the old version's rules are deleted.
func (c *Controller) ExecuteTwoPhase(in *dynflow.Instance, f FlowSpec, newTag emu.Tag) (err error) {
	defer c.beginExecute("twophase", len(in.Fin), &err)()
	// Phase 1: install tagged copies along the final path, dest-first.
	dst := in.Fin.Dest()
	if _, err := c.send(dst, &ofp.FlowMod{
		Command: ofp.FlowAdd, Flow: f.Name, Tag: uint16(newTag), Action: ofp.ActionToHost,
	}); err != nil {
		return err
	}
	for i := len(in.Fin) - 2; i >= 0; i-- {
		if _, err := c.send(in.Fin[i], &ofp.FlowMod{
			Command: ofp.FlowAdd, Flow: f.Name, Tag: uint16(newTag),
			Action: ofp.ActionOutput, NextHop: int32(in.Fin[i+1]),
		}); err != nil {
			return err
		}
	}
	if err := c.Barrier(in.Fin...); err != nil {
		return err
	}
	// Phase 2: restamp at the ingress — one atomic event.
	src := in.Source()
	oldKey := emu.FlowKey{Flow: f.Name, Tag: f.Tag}
	newKey := emu.FlowKey{Flow: f.Name, Tag: newTag}
	c.h.Do(func() {
		c.h.Net.Inject(src, oldKey, 0)
		c.h.Net.Inject(src, newKey, f.Rate)
	})
	// Drain, then garbage-collect the old version.
	c.h.AdvanceBy(sim.Time(in.Init.Delay(in.G)) + 1)
	for _, v := range in.Init {
		if _, err := c.send(v, &ofp.FlowMod{
			Command: ofp.FlowDelete, Flow: f.Name, Tag: uint16(f.Tag),
		}); err != nil {
			return err
		}
	}
	return c.Barrier(in.Init...)
}

// ProbeClocks sends every listed switch one timed no-op FlowMod (a
// host-action rule on a dedicated probe flow that carries no traffic)
// scheduled for the same reference tick, followed by a barrier. The
// timed fires emit sw.apply events whose skew samples — and the
// barrier's send/receive span pair — feed the clock-quality estimator
// (internal/clock) without disturbing any real flow. The caller
// advances virtual time past `at` for the fires to happen.
func (c *Controller) ProbeClocks(flow string, at sim.Time, ids ...graph.NodeID) (err error) {
	defer c.beginExecute("clockprobe", len(ids), &err)()
	for _, v := range ids {
		if _, err := c.send(v, &ofp.FlowMod{
			Command: ofp.FlowAdd, Flow: flow, Action: ofp.ActionToHost,
			ExecuteAt: int64(at),
		}); err != nil {
			return err
		}
	}
	return c.Barrier(ids...)
}

// DeleteFlow removes the named flow's untagged rule from every listed
// switch and barriers. ProbeClocks callers use it to garbage-collect
// the probe rules once the scheduled fires have happened.
func (c *Controller) DeleteFlow(flow string, ids ...graph.NodeID) error {
	for _, v := range ids {
		if _, err := c.send(v, &ofp.FlowMod{
			Command: ofp.FlowDelete, Flow: flow,
		}); err != nil {
			return err
		}
	}
	return c.Barrier(ids...)
}

// Sample is one bandwidth measurement of a link.
type Sample struct {
	At   sim.Time
	Rate float64 // units per tick, averaged over the sampling interval
}

// SampleLink measures the bandwidth consumption of link (from → to) the way
// the paper's prototype does: it polls the upstream switch's port byte
// counters over the control channel every interval ticks and divides the
// counter delta by the interval. It advances virtual time as it runs and
// returns count samples.
func (c *Controller) SampleLink(from, to graph.NodeID, interval sim.Time, count int) ([]Sample, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("controller: non-positive sampling interval %d", interval)
	}
	prev, err := c.portBytes(from, to)
	if err != nil {
		return nil, err
	}
	prevT := c.h.Now()
	var out []Sample
	for i := 0; i < count; i++ {
		c.h.AdvanceTo(prevT + interval)
		cur, err := c.portBytes(from, to)
		if err != nil {
			return nil, err
		}
		now := prevT + interval
		out = append(out, Sample{At: now, Rate: (cur - prev) / float64(interval)})
		prev, prevT = cur, now
	}
	return out, nil
}

// portBytes fetches the byte counter of the port on `from` facing `to`.
func (c *Controller) portBytes(from, to graph.NodeID) (float64, error) {
	x, err := c.send(from, &ofp.StatsRequest{Kind: ofp.StatsPorts})
	if err != nil {
		return 0, err
	}
	replies, err := c.await([]uint32{x})
	if err != nil {
		return 0, err
	}
	if err := checkErrors(replies); err != nil {
		return 0, err
	}
	reply, ok := replies[x].(*ofp.StatsReply)
	if !ok {
		return 0, fmt.Errorf("controller: unexpected stats reply %T", replies[x])
	}
	for _, p := range reply.Ports {
		if graph.NodeID(p.PeerID) == to {
			return float64(p.Bytes), nil
		}
	}
	return 0, fmt.Errorf("controller: switch %s reported no port toward %s", c.h.G.Name(from), c.h.G.Name(to))
}
