package controller

import (
	"net"
	"testing"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/ofp"
	"github.com/chronus-sdn/chronus/internal/switchd"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// TestEndToEndOverTCP runs the full control path over real TCP sockets:
// every switch agent listens on its own socket, the controller dials each,
// performs the hello/features handshake, provisions the flow, executes the
// paper's timed schedule, and verifies the emulated data plane migrated
// cleanly.
func TestEndToEndOverTCP(t *testing.T) {
	in := topo.Fig1Example()
	h := NewHarness(in.G)
	c := New(h, Options{Seed: 1})

	// One listener per switch; agents funnel into the shared harness.
	listeners := make(map[graph.NodeID]net.Listener)
	for _, id := range in.G.Nodes() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[id] = ln
		agent := switchd.New(h.Net, id, nil)
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			oc := ofp.NewConn(conn)
			defer oc.Close()
			// Handshake: hello + features handled by Serve via Handle.
			_ = switchd.Serve(oc, agent, h.Do)
		}()
	}
	t.Cleanup(func() {
		for _, ln := range listeners {
			ln.Close()
		}
	})

	for id, ln := range listeners {
		conn, err := ofp.Dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		name, err := c.AttachTCP(id, conn)
		if err != nil {
			t.Fatalf("AttachTCP(%d): %v", id, err)
		}
		if name != in.G.Name(id) {
			t.Fatalf("switch announced %q, want %q", name, in.G.Name(id))
		}
	}

	f := FlowSpec{Name: "f0", Tag: 0, Path: in.Init, Rate: 1}
	if err := c.Provision(f); err != nil {
		t.Fatalf("Provision over TCP: %v", err)
	}
	h.AdvanceTo(100)

	s := dynflow.NewSchedule(150)
	for v, tv := range topo.PaperSchedule(in).Times {
		s.Set(v, 150+tv)
	}
	if err := c.ExecuteTimed(in, s, f); err != nil {
		t.Fatalf("ExecuteTimed over TCP: %v", err)
	}
	h.AdvanceTo(300)

	noOverloads(t, h)
	if drops := totalDrops(h); drops != 0 {
		t.Fatalf("drops = %f", drops)
	}
	if l := h.Net.Link(in.G.Lookup("v1"), in.G.Lookup("v5")); l.Rate() != 1 {
		t.Fatalf("final path not active over TCP path: rate = %d", l.Rate())
	}

	// Stats over TCP too.
	samples, err := c.SampleLink(in.G.Lookup("v1"), in.G.Lookup("v5"), 50, 3)
	if err != nil {
		t.Fatalf("SampleLink over TCP: %v", err)
	}
	for _, smp := range samples {
		if smp.Rate < 0.5 || smp.Rate > 1.5 {
			t.Fatalf("sample = %+v, want ~1", smp)
		}
	}
}
