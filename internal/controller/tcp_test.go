package controller

import (
	"errors"
	"net"
	"testing"
	"time"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/ofp"
	"github.com/chronus-sdn/chronus/internal/switchd"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// TestEndToEndOverTCP runs the full control path over real TCP sockets:
// every switch agent listens on its own socket, the controller dials each,
// performs the hello/features handshake, provisions the flow, executes the
// paper's timed schedule, and verifies the emulated data plane migrated
// cleanly.
func TestEndToEndOverTCP(t *testing.T) {
	in := topo.Fig1Example()
	h := NewHarness(in.G)
	c := New(h, Options{Seed: 1})

	// One listener per switch; agents funnel into the shared harness.
	listeners := make(map[graph.NodeID]net.Listener)
	for _, id := range in.G.Nodes() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[id] = ln
		agent := switchd.New(h.Net, id, nil)
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			oc := ofp.NewConn(conn)
			defer oc.Close()
			// Handshake: hello + features handled by Serve via Handle.
			_ = switchd.Serve(oc, agent, h.Do)
		}()
	}
	t.Cleanup(func() {
		for _, ln := range listeners {
			ln.Close()
		}
	})

	for id, ln := range listeners {
		conn, err := ofp.Dial(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		name, err := c.AttachTCP(id, conn)
		if err != nil {
			t.Fatalf("AttachTCP(%d): %v", id, err)
		}
		if name != in.G.Name(id) {
			t.Fatalf("switch announced %q, want %q", name, in.G.Name(id))
		}
	}

	f := FlowSpec{Name: "f0", Tag: 0, Path: in.Init, Rate: 1}
	if err := c.Provision(f); err != nil {
		t.Fatalf("Provision over TCP: %v", err)
	}
	h.AdvanceTo(100)

	s := dynflow.NewSchedule(150)
	for v, tv := range topo.PaperSchedule(in).Times {
		s.Set(v, 150+tv)
	}
	if err := c.ExecuteTimed(in, s, f); err != nil {
		t.Fatalf("ExecuteTimed over TCP: %v", err)
	}
	h.AdvanceTo(300)

	noOverloads(t, h)
	if drops := totalDrops(h); drops != 0 {
		t.Fatalf("drops = %f", drops)
	}
	if l := h.Net.Link(in.G.Lookup("v1"), in.G.Lookup("v5")); l.Rate() != 1 {
		t.Fatalf("final path not active over TCP path: rate = %d", l.Rate())
	}

	// Stats over TCP too.
	samples, err := c.SampleLink(in.G.Lookup("v1"), in.G.Lookup("v5"), 50, 3)
	if err != nil {
		t.Fatalf("SampleLink over TCP: %v", err)
	}
	for _, smp := range samples {
		if smp.Rate < 0.5 || smp.Rate > 1.5 {
			t.Fatalf("sample = %+v, want ~1", smp)
		}
	}
}

// fakePeer runs a scripted switch end of the handshake on the far side of
// a net.Pipe and returns the controller-side ofp.Conn.
func fakePeer(t *testing.T, script func(pc *ofp.Conn)) *ofp.Conn {
	t.Helper()
	cli, srv := net.Pipe()
	t.Cleanup(func() { cli.Close(); srv.Close() })
	pc := ofp.NewConn(srv)
	go script(pc)
	return ofp.NewConn(cli)
}

func newTCPTestController(t *testing.T) (*Controller, graph.NodeID) {
	t.Helper()
	in := topo.Fig1Example()
	h := NewHarness(in.G)
	return New(h, Options{Seed: 1}), in.G.Nodes()[0]
}

// A switch that does not advertise the Time4 timed-update capability
// would silently miss every scheduled FlowMod; AttachTCP must refuse it.
func TestAttachTCPRejectsUntimedSwitch(t *testing.T) {
	c, id := newTCPTestController(t)
	conn := fakePeer(t, func(pc *ofp.Conn) {
		m, _ := pc.Recv()
		pc.Send(&ofp.Hello{XID: m.Xid()})
		m, _ = pc.Recv()
		pc.Send(&ofp.FeaturesReply{XID: m.Xid(), Name: "legacy", TimedUpdates: false})
	})
	_, err := c.AttachTCP(id, conn)
	if !errors.Is(err, ErrTimedUpdatesUnsupported) {
		t.Fatalf("err = %v, want ErrTimedUpdatesUnsupported", err)
	}
	if err := c.Barrier(id); !errors.Is(err, ErrNoSession) {
		t.Fatalf("rejected switch was attached anyway: Barrier err = %v", err)
	}
}

// The first reply of the handshake must be the peer's Hello; anything else
// (here an EchoReply) fails the attach instead of being swallowed.
func TestAttachTCPRejectsNonHello(t *testing.T) {
	c, id := newTCPTestController(t)
	conn := fakePeer(t, func(pc *ofp.Conn) {
		m, _ := pc.Recv()
		pc.Send(&ofp.EchoReply{XID: m.Xid(), Payload: "not a hello"})
	})
	_, err := c.AttachTCP(id, conn)
	if !errors.Is(err, ErrHandshake) {
		t.Fatalf("err = %v, want ErrHandshake", err)
	}
	if err := c.Barrier(id); !errors.Is(err, ErrNoSession) {
		t.Fatalf("switch attached after broken handshake: Barrier err = %v", err)
	}
}

// When the transport dies after a successful attach, the reply reader must
// detach the session (so executors fail fast with ErrNoSession) and
// surface the disconnect through the counter and callback.
func TestAttachTCPDetachesOnDisconnect(t *testing.T) {
	in := topo.Fig1Example()
	h := NewHarness(in.G)
	gone := make(chan graph.NodeID, 1)
	c := New(h, Options{Seed: 1, OnDisconnect: func(id graph.NodeID, err error) {
		gone <- id
	}})
	id := in.G.Nodes()[0]

	cli, srv := net.Pipe()
	t.Cleanup(func() { cli.Close(); srv.Close() })
	pc := ofp.NewConn(srv)
	go func() {
		m, _ := pc.Recv()
		pc.Send(&ofp.Hello{XID: m.Xid()})
		m, _ = pc.Recv()
		pc.Send(&ofp.FeaturesReply{XID: m.Xid(), Name: "s1", TimedUpdates: true})
	}()
	name, err := c.AttachTCP(id, ofp.NewConn(cli))
	if err != nil {
		t.Fatal(err)
	}
	if name != "s1" {
		t.Fatalf("name = %q", name)
	}
	if c.Disconnects() != 0 {
		t.Fatalf("disconnects = %d before any disconnect", c.Disconnects())
	}

	srv.Close() // switch dies

	select {
	case got := <-gone:
		if got != id {
			t.Fatalf("OnDisconnect(%d), want %d", got, id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnDisconnect never fired")
	}
	if c.Disconnects() != 1 {
		t.Fatalf("disconnects = %d, want 1", c.Disconnects())
	}
	// The dead session is gone: executors get ErrNoSession immediately
	// instead of barriering forever against the vanished switch.
	if err := c.Barrier(id); !errors.Is(err, ErrNoSession) {
		t.Fatalf("Barrier after disconnect: err = %v, want ErrNoSession", err)
	}
}

// A reconnect that replaces the dead session must survive the old reader's
// late exit: sessionClosed only detaches the session it belonged to.
func TestSessionClosedKeepsReplacement(t *testing.T) {
	c, id := newTCPTestController(t)
	old := &tcpSession{}
	c.AttachSession(id, old)
	replacement := &tcpSession{}
	c.AttachSession(id, replacement)
	c.sessionClosed(id, old, errors.New("late reader exit"))
	if c.Disconnects() != 0 {
		t.Fatalf("stale reader counted a disconnect: %d", c.Disconnects())
	}
	if s, err := c.session(id); err != nil || s != Session(replacement) {
		t.Fatalf("replacement session lost: %v, %v", s, err)
	}
	// The replacement's own death still counts.
	c.sessionClosed(id, replacement, errors.New("real exit"))
	if c.Disconnects() != 1 {
		t.Fatalf("disconnects = %d, want 1", c.Disconnects())
	}
	if _, err := c.session(id); !errors.Is(err, ErrNoSession) {
		t.Fatalf("dead session still registered: %v", err)
	}
}

// A dropped control channel must not strand the update: after the
// disconnect surfaces (counter + callback), re-dialing and re-attaching
// the same switch yields a session over which timed FlowMods execute the
// schedule as if the drop never happened.
func TestReconnectResumesTimedUpdates(t *testing.T) {
	in := topo.Fig1Example()
	h := NewHarness(in.G)
	gone := make(chan graph.NodeID, 4)
	c := New(h, Options{Seed: 1, OnDisconnect: func(id graph.NodeID, err error) {
		gone <- id
	}})

	// One listener per switch, each accepting any number of consecutive
	// connections so a reconnect reaches the same agent.
	listeners := make(map[graph.NodeID]net.Listener)
	for _, id := range in.G.Nodes() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[id] = ln
		agent := switchd.New(h.Net, id, nil)
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go func() {
					oc := ofp.NewConn(conn)
					defer oc.Close()
					_ = switchd.Serve(oc, agent, h.Do)
				}()
			}
		}()
	}
	t.Cleanup(func() {
		for _, ln := range listeners {
			ln.Close()
		}
	})

	dial := func(id graph.NodeID) *ofp.Conn {
		t.Helper()
		conn, err := ofp.Dial(listeners[id].Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		return conn
	}
	conns := make(map[graph.NodeID]*ofp.Conn)
	for id := range listeners {
		conns[id] = dial(id)
		if _, err := c.AttachTCP(id, conns[id]); err != nil {
			t.Fatalf("AttachTCP(%d): %v", id, err)
		}
	}

	f := FlowSpec{Name: "f0", Tag: 0, Path: in.Init, Rate: 1}
	if err := c.Provision(f); err != nil {
		t.Fatal(err)
	}
	h.AdvanceTo(100)

	// Kill one switch's control channel mid-flight.
	victim := in.G.Lookup("v3")
	conns[victim].Close()
	select {
	case got := <-gone:
		if got != victim {
			t.Fatalf("OnDisconnect(%d), want %d", got, victim)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnDisconnect never fired")
	}
	if c.Disconnects() != 1 {
		t.Fatalf("disconnects = %d, want 1", c.Disconnects())
	}
	if err := c.Barrier(victim); !errors.Is(err, ErrNoSession) {
		t.Fatalf("Barrier on dead session: err = %v, want ErrNoSession", err)
	}

	// Reconnect: fresh socket, same switch, full handshake again.
	name, err := c.AttachTCP(victim, dial(victim))
	if err != nil {
		t.Fatalf("re-AttachTCP: %v", err)
	}
	if name != in.G.Name(victim) {
		t.Fatalf("reattached switch announced %q, want %q", name, in.G.Name(victim))
	}
	if err := c.Barrier(victim); err != nil {
		t.Fatalf("Barrier after reconnect: %v", err)
	}

	// The timed schedule must now execute cleanly across all switches,
	// including the reattached one.
	s := dynflow.NewSchedule(150)
	for v, tv := range topo.PaperSchedule(in).Times {
		s.Set(v, 150+tv)
	}
	if err := c.ExecuteTimed(in, s, f); err != nil {
		t.Fatalf("ExecuteTimed after reconnect: %v", err)
	}
	h.AdvanceTo(300)

	noOverloads(t, h)
	if drops := totalDrops(h); drops != 0 {
		t.Fatalf("drops = %f after reconnect", drops)
	}
	if l := h.Net.Link(in.G.Lookup("v1"), in.G.Lookup("v5")); l.Rate() != 1 {
		t.Fatalf("final path not active after reconnect: rate = %d", l.Rate())
	}
	if c.Disconnects() != 1 {
		t.Fatalf("reconnect added spurious disconnects: %d", c.Disconnects())
	}
}
