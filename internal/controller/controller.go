// Package controller implements the Chronus controller: session management
// toward switch agents, barrier orchestration, the timed-update executor of
// the paper's Algorithm 5 (both the time-triggered variant and the literal
// barrier-paced loop), the two-phase executor for the TP baseline, and the
// byte-counter bandwidth monitor used to draw Fig. 6.
//
// The controller drives a Harness, which owns the simulation kernel and the
// emulated network and serializes all access; control messages travel
// through Session objects that model (virtual mode) or are (TCP mode) an
// asynchronous channel, so update commands reach switches out of order and
// after unpredictable latency — the root cause of the consistency problem
// the paper addresses.
package controller

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/chronus-sdn/chronus/internal/emu"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/obs"
	"github.com/chronus-sdn/chronus/internal/ofp"
	"github.com/chronus-sdn/chronus/internal/sim"
	"github.com/chronus-sdn/chronus/internal/switchd"
	"github.com/chronus-sdn/chronus/internal/timesync"
)

// Harness owns the kernel and the emulated network and serializes all
// access to them. Virtual time advances only through the harness.
type Harness struct {
	mu  sync.Mutex
	K   *sim.Kernel
	Net *emu.Network
	G   *graph.Graph
}

// NewHarness builds the emulated network for g.
func NewHarness(g *graph.Graph) *Harness {
	k := sim.NewKernel()
	return &Harness{K: k, Net: emu.New(g, k), G: g}
}

// Do runs f with exclusive access to the kernel and network.
func (h *Harness) Do(f func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	f()
}

// Now returns the current virtual time.
func (h *Harness) Now() sim.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.K.Now()
}

// AdvanceTo runs the emulation up to virtual time t.
func (h *Harness) AdvanceTo(t sim.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.K.RunUntil(t)
}

// AdvanceBy runs the emulation d ticks forward.
func (h *Harness) AdvanceBy(d sim.Time) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.K.RunUntil(h.K.Now() + d)
}

// Session is an asynchronous control channel to one switch agent.
type Session interface {
	// Send delivers m toward the switch; replies come back through the
	// controller's RecordReply.
	Send(m ofp.Msg) error
}

// Options configures a Controller.
type Options struct {
	// Seed drives the control-channel latency model.
	Seed int64
	// MinLatency/MaxLatency bound the per-message control latency in
	// ticks for virtual sessions (defaults 1..8; the spread is the
	// data-plane asynchrony of the paper's motivating example).
	MinLatency, MaxLatency sim.Time
	// ReplyTimeout bounds real-time waiting for replies (default 5 s);
	// it matters only for TCP sessions and broken tests.
	ReplyTimeout time.Duration
	// OnDisconnect, when set, is called (from the session's reader
	// goroutine) after a connected session drops and has been detached;
	// err is the read error that ended the session.
	OnDisconnect func(id graph.NodeID, err error)
	// Obs receives controller counters (FlowMods sent, barrier round
	// trips and their virtual-time latency, disconnects, stats polls,
	// PacketIns). When nil the controller creates a private registry, so
	// the tallies behind Disconnects() always exist.
	Obs *obs.Registry
	// Trace receives control-plane events (FlowMod sends, barrier spans,
	// disconnects) stamped with virtual time; nil disables tracing.
	Trace *obs.Tracer
}

// RegisterMetrics pre-registers the controller metric families on r so
// they appear in expositions before the first control message.
func RegisterMetrics(r *obs.Registry) {
	newCtlMetrics(r)
}

// ctlMetrics bundles the controller's registry instruments.
type ctlMetrics struct {
	flowMods    *obs.Counter
	barriers    *obs.Counter
	barrierRTT  *obs.Histogram
	disconnects *obs.Counter
	statsPolls  *obs.Counter
	packetIns   *obs.Counter
}

func newCtlMetrics(r *obs.Registry) ctlMetrics {
	r.Help("chronus_controller_flowmods_sent_total", "FlowMod messages sent to switches")
	r.Help("chronus_controller_barriers_total", "barrier rounds issued")
	r.Help("chronus_controller_barrier_rtt_ticks", "barrier round-trip latency in virtual ticks")
	r.Help("chronus_controller_disconnects_total", "sessions detached after transport failure")
	r.Help("chronus_controller_stats_polls_total", "port-statistics polls")
	r.Help("chronus_controller_packetins_total", "asynchronous PacketIn notifications received")
	return ctlMetrics{
		flowMods:    r.Counter("chronus_controller_flowmods_sent_total"),
		barriers:    r.Counter("chronus_controller_barriers_total"),
		barrierRTT:  r.Histogram("chronus_controller_barrier_rtt_ticks", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
		disconnects: r.Counter("chronus_controller_disconnects_total"),
		statsPolls:  r.Counter("chronus_controller_stats_polls_total"),
		packetIns:   r.Counter("chronus_controller_packetins_total"),
	}
}

// Controller manages sessions and executes update plans.
type Controller struct {
	h    *Harness
	opts Options
	rng  *rand.Rand
	met  ctlMetrics

	mu        sync.Mutex
	sessions  map[graph.NodeID]Session
	replies   map[uint32]ofp.Msg
	asyncErrs []*ofp.ErrorMsg
	// viaKernel marks outstanding requests whose replies arrive as kernel
	// events (virtual sessions); waiting for those may step the kernel,
	// while waiting for wire replies must not advance virtual time (it
	// would fire future timed updates early).
	viaKernel map[uint32]bool
	packetIns []*ofp.PacketIn
	nextXID   uint32
	notify    chan struct{}
	// spanBase and spanStack track the ambient parent span for control
	// operations: spanBase is set by the embedding server around an
	// update (SetSpan), spanStack by Execute*/Barrier around their own
	// nested spans. curSpan reads the innermost.
	spanBase  obs.SpanID
	spanStack []obs.SpanID
}

// New builds a controller on the harness.
func New(h *Harness, opts Options) *Controller {
	if opts.MaxLatency <= 0 {
		opts.MinLatency, opts.MaxLatency = 1, 8
	}
	if opts.MinLatency < 0 || opts.MinLatency > opts.MaxLatency {
		opts.MinLatency = opts.MaxLatency
	}
	if opts.ReplyTimeout <= 0 {
		opts.ReplyTimeout = 5 * time.Second
	}
	if opts.Obs == nil {
		// A private registry keeps the counters behind Disconnects()
		// (and the rest of the tallies) alive without requiring every
		// caller to care about telemetry.
		opts.Obs = obs.NewRegistry()
	}
	return &Controller{
		h:         h,
		opts:      opts,
		rng:       rand.New(rand.NewSource(opts.Seed)),
		met:       newCtlMetrics(opts.Obs),
		sessions:  make(map[graph.NodeID]Session),
		replies:   make(map[uint32]ofp.Msg),
		viaKernel: make(map[uint32]bool),
		notify:    make(chan struct{}, 1),
	}
}

// AttachAll creates an in-process agent and virtual session for every
// switch in the topology. clock may be nil for perfect clocks.
func (c *Controller) AttachAll(clock *timesync.Ensemble) {
	for _, id := range c.h.G.Nodes() {
		c.Attach(id, clock)
	}
}

// Attach creates the agent and virtual session for one switch. The
// agent inherits the controller's telemetry sinks.
func (c *Controller) Attach(id graph.NodeID, clock *timesync.Ensemble) {
	agent := switchd.New(c.h.Net, id, clock)
	agent.SetObs(c.opts.Obs, c.opts.Trace)
	// Asynchronous switch-to-controller notifications (PacketIn) travel
	// the same virtual channel as replies. The miss handler fires inside a
	// kernel event, so scheduling the delivery is safe here.
	agent.SetNotify(func(m ofp.Msg) {
		c.h.K.After(c.latency(), func() { c.RecordReply(m) })
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sessions[id] = &virtualSession{c: c, agent: agent}
}

// PacketIns returns the asynchronous switch notifications received so far
// (drops due to missing rules or TTL expiry).
func (c *Controller) PacketIns() []*ofp.PacketIn {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*ofp.PacketIn(nil), c.packetIns...)
}

// AttachSession registers an externally managed session (e.g. TCP).
func (c *Controller) AttachSession(id graph.NodeID, s Session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sessions[id] = s
}

// Detach removes the session for id, if any; subsequent sends to id fail
// with ErrNoSession rather than blocking on a dead transport.
func (c *Controller) Detach(id graph.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.sessions, id)
}

// Disconnects reports how many attached sessions have been detached
// because their transport failed (see sessionClosed). It reads the
// chronus_controller_disconnects_total registry counter.
func (c *Controller) Disconnects() int {
	return int(c.met.disconnects.Value())
}

// sessionClosed detaches a dead session: called by a session's reader
// goroutine when its transport errors out. The registered session is
// removed only if it still is s — a reconnect may already have attached a
// replacement, which must survive the old reader's exit. The disconnect is
// surfaced through the Disconnects counter and Options.OnDisconnect so
// executors and operators learn the switch is gone instead of barriering
// against it forever.
func (c *Controller) sessionClosed(id graph.NodeID, s Session, err error) {
	c.mu.Lock()
	if cur, ok := c.sessions[id]; !ok || cur != s {
		c.mu.Unlock()
		return
	}
	delete(c.sessions, id)
	c.met.disconnects.Inc()
	cb := c.opts.OnDisconnect
	c.mu.Unlock()
	if c.opts.Trace != nil {
		c.opts.Trace.Point(int64(c.h.Now()), "ctl.disconnect",
			obs.A("switch", c.h.G.Name(id)), obs.A("err", err.Error()))
	}
	if cb != nil {
		cb(id, err)
	}
	// Wake any await() so it re-checks instead of sleeping out its timeout
	// against replies that can no longer arrive.
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

// RecordReply stores a reply arriving from any session and wakes waiters.
// Protocol errors are additionally collected so that the next barrier
// surfaces them even when the failed request itself is not being awaited
// (FlowMods are fire-and-forget until the barrier).
func (c *Controller) RecordReply(m ofp.Msg) {
	c.mu.Lock()
	switch v := m.(type) {
	case *ofp.PacketIn:
		c.packetIns = append(c.packetIns, v)
		c.met.packetIns.Inc()
	case *ofp.ErrorMsg:
		c.replies[m.Xid()] = m
		c.asyncErrs = append(c.asyncErrs, v)
	default:
		c.replies[m.Xid()] = m
	}
	c.mu.Unlock()
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

// takeAsyncErrors drains the collected protocol errors.
func (c *Controller) takeAsyncErrors() []*ofp.ErrorMsg {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.asyncErrs
	c.asyncErrs = nil
	return out
}

// virtualSession delivers messages through the kernel with random control
// latency; replies travel back with independent latency. Like the TCP
// channel it models, the session is FIFO in each direction: a message never
// overtakes an earlier one on the same session (this is what gives the
// OpenFlow barrier its meaning), while messages to different switches
// arrive in arbitrary relative order.
type virtualSession struct {
	c       *Controller
	agent   *switchd.Agent
	inHead  sim.Time // earliest permissible next delivery to the switch
	outHead sim.Time // earliest permissible next reply arrival
}

func (s *virtualSession) Send(m ofp.Msg) error {
	c := s.c
	c.h.Do(func() {
		at := c.h.K.Now() + c.latency()
		if at < s.inHead {
			at = s.inHead
		}
		s.inHead = at
		c.h.K.At(at, func() {
			replies := s.agent.Handle(m)
			for _, r := range replies {
				r := r
				back := c.h.K.Now() + c.latency()
				if back < s.outHead {
					back = s.outHead
				}
				s.outHead = back
				c.h.K.At(back, func() { c.RecordReply(r) })
			}
		})
	})
	return nil
}

// latency draws a control-channel latency; the caller holds the harness
// lock (c.rng is guarded by it through the single-threaded Send paths).
func (c *Controller) latency() sim.Time {
	span := int64(c.opts.MaxLatency - c.opts.MinLatency)
	if span <= 0 {
		return c.opts.MinLatency
	}
	return c.opts.MinLatency + sim.Time(c.rng.Int63n(span+1))
}

// xid allocates a transaction ID.
func (c *Controller) xid() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextXID++
	return c.nextXID
}

// SetSpan sets the ambient parent span under which subsequent control
// operations (Execute*, Barrier, individual sends) record their spans;
// zero clears it. Callers that own an update-level root span bracket
// execution with SetSpan(root)/SetSpan(0) so the whole control
// exchange hangs off that root.
func (c *Controller) SetSpan(id obs.SpanID) {
	c.mu.Lock()
	c.spanBase = id
	c.mu.Unlock()
}

func (c *Controller) pushSpan(id obs.SpanID) {
	c.mu.Lock()
	c.spanStack = append(c.spanStack, id)
	c.mu.Unlock()
}

func (c *Controller) popSpan() {
	c.mu.Lock()
	if n := len(c.spanStack); n > 0 {
		c.spanStack = c.spanStack[:n-1]
	}
	c.mu.Unlock()
}

func (c *Controller) curSpan() obs.SpanID {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(c.spanStack) - 1; i >= 0; i-- {
		if c.spanStack[i] != 0 {
			return c.spanStack[i]
		}
	}
	return c.spanBase
}

// ErrNoSession is returned when addressing an unattached switch.
var ErrNoSession = errors.New("controller: no session for switch")

// ErrTimeout is returned when replies do not arrive.
var ErrTimeout = errors.New("controller: timed out awaiting replies")

func (c *Controller) session(id graph.NodeID) (Session, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSession, id)
	}
	return s, nil
}

// send transmits m to id with a fresh xid and returns the xid.
func (c *Controller) send(id graph.NodeID, m ofp.Msg) (uint32, error) {
	s, err := c.session(id)
	if err != nil {
		return 0, err
	}
	x := c.xid()
	setXID(m, x)
	_, virtual := s.(*virtualSession)
	c.mu.Lock()
	c.viaKernel[x] = virtual
	c.mu.Unlock()
	if err := s.Send(m); err != nil {
		return 0, err
	}
	switch v := m.(type) {
	case *ofp.FlowMod:
		c.met.flowMods.Inc()
		if c.opts.Trace != nil {
			next := "-"
			if v.Command != ofp.FlowDelete {
				if v.Action == ofp.ActionToHost {
					next = "host"
				} else {
					next = c.h.G.Name(graph.NodeID(v.NextHop))
				}
			}
			c.opts.Trace.Point(int64(c.h.Now()), "ctl.flowmod",
				obs.A("switch", c.h.G.Name(id)), obs.A("at", v.ExecuteAt),
				obs.A("key", fmt.Sprintf("%s/%d", v.Flow, v.Tag)), obs.A("next", next))
			// The send span's xid is what stitches the switch-side half
			// of this round-trip (sw.recv/sw.apply) into the tree.
			now := int64(c.h.Now())
			c.opts.Trace.EmitSpan("ctl.send", c.curSpan(), now, now,
				obs.A("switch", c.h.G.Name(id)), obs.A("xid", x),
				obs.A("kind", "flowmod"), obs.A("at", v.ExecuteAt))
		}
	case *ofp.BarrierRequest:
		if c.opts.Trace != nil {
			now := int64(c.h.Now())
			c.opts.Trace.EmitSpan("ctl.send", c.curSpan(), now, now,
				obs.A("switch", c.h.G.Name(id)), obs.A("xid", x),
				obs.A("kind", "barrier"))
		}
	case *ofp.StatsRequest:
		c.met.statsPolls.Inc()
	}
	return x, nil
}

func setXID(m ofp.Msg, x uint32) {
	switch v := m.(type) {
	case *ofp.Hello:
		v.XID = x
	case *ofp.EchoRequest:
		v.XID = x
	case *ofp.FeaturesRequest:
		v.XID = x
	case *ofp.FlowMod:
		v.XID = x
	case *ofp.BarrierRequest:
		v.XID = x
	case *ofp.StatsRequest:
		v.XID = x
	default:
		panic(fmt.Sprintf("controller: cannot set xid on %T", m))
	}
}

// await blocks until every xid has a reply, advancing virtual time as
// needed (virtual sessions) and waiting for the wire (TCP sessions). It
// returns the replies by xid.
func (c *Controller) await(xids []uint32) (map[uint32]ofp.Msg, error) {
	deadline := time.Now().Add(c.opts.ReplyTimeout)
	out := make(map[uint32]ofp.Msg, len(xids))
	for {
		kernelPending := false
		c.mu.Lock()
		for _, x := range xids {
			if m, ok := c.replies[x]; ok {
				out[x] = m
				delete(c.replies, x)
				delete(c.viaKernel, x)
			}
		}
		for _, x := range xids {
			if _, got := out[x]; !got && c.viaKernel[x] {
				kernelPending = true
			}
		}
		c.mu.Unlock()
		if len(out) == len(xids) {
			return out, nil
		}
		// Only step virtual time when a missing reply will arrive as a
		// kernel event; wire replies must not drag future data-plane and
		// timed-update events forward.
		if kernelPending {
			progressed := false
			c.h.Do(func() { progressed = c.h.K.Step() })
			if progressed {
				continue
			}
		}
		if time.Now().After(deadline) {
			return out, fmt.Errorf("%w: %d of %d replies", ErrTimeout, len(out), len(xids))
		}
		select {
		case <-c.notify:
		case <-time.After(200 * time.Microsecond):
		}
	}
}

// checkErrors fails if any reply is a protocol error.
func checkErrors(replies map[uint32]ofp.Msg) error {
	for _, m := range replies {
		if e, ok := m.(*ofp.ErrorMsg); ok {
			return fmt.Errorf("controller: switch error %d: %s", e.Code, e.Message)
		}
	}
	return nil
}

// Barrier sends BarrierRequests to the given switches and waits for all
// replies, advancing virtual time as needed.
func (c *Controller) Barrier(ids ...graph.NodeID) error {
	start := c.h.Now()
	c.met.barriers.Inc()
	sp := c.opts.Trace.StartSpan(int64(start), "ctl.barrier", c.curSpan(),
		obs.A("switches", len(ids)))
	c.pushSpan(sp.SpanID())
	xids := make([]uint32, 0, len(ids))
	for _, id := range ids {
		x, err := c.send(id, &ofp.BarrierRequest{})
		if err != nil {
			c.popSpan()
			sp.End(int64(c.h.Now()), obs.A("outcome", "error"))
			return err
		}
		xids = append(xids, x)
	}
	c.popSpan()
	replies, err := c.await(xids)
	if err != nil {
		sp.End(int64(c.h.Now()), obs.A("outcome", "error"))
		return err
	}
	end := c.h.Now()
	c.met.barrierRTT.Observe(float64(end - start))
	sp.End(int64(end))
	if errs := c.takeAsyncErrors(); len(errs) > 0 {
		return fmt.Errorf("controller: switch error %d preceding barrier: %s", errs[0].Code, errs[0].Message)
	}
	return checkErrors(replies)
}
