package controller

import (
	"fmt"

	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/ofp"
)

// tcpSession sends messages over a real stream connection; a background
// reader feeds replies into the controller. Ordering and asynchrony are
// the transport's own.
type tcpSession struct {
	conn *ofp.Conn
}

func (s *tcpSession) Send(m ofp.Msg) error { return s.conn.Send(m) }

// AttachTCP registers a switch reachable over conn and starts the reply
// reader, which runs until the connection closes. It performs the OpenFlow
// hello exchange and a features check (the switch must support timed
// updates), returning the switch's announced name.
func (c *Controller) AttachTCP(id graph.NodeID, conn *ofp.Conn) (string, error) {
	if err := conn.Send(&ofp.Hello{XID: 0}); err != nil {
		return "", err
	}
	if _, err := conn.Recv(); err != nil { // peer hello
		return "", err
	}
	if err := conn.Send(&ofp.FeaturesRequest{XID: 1}); err != nil {
		return "", err
	}
	m, err := conn.Recv()
	if err != nil {
		return "", err
	}
	feats, ok := m.(*ofp.FeaturesReply)
	if !ok {
		return "", fmt.Errorf("controller: unexpected handshake reply %v", m.Type())
	}
	c.AttachSession(id, &tcpSession{conn: conn})
	go func() {
		for {
			m, err := conn.Recv()
			if err != nil {
				return
			}
			c.RecordReply(m)
		}
	}()
	return feats.Name, nil
}
