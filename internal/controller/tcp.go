package controller

import (
	"errors"
	"fmt"

	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/ofp"
)

// ErrHandshake is returned when the hello/features exchange goes off
// script (wrong message type where a Hello or FeaturesReply was due).
var ErrHandshake = errors.New("controller: handshake failed")

// ErrTimedUpdatesUnsupported is returned when a switch's FeaturesReply
// does not advertise the Time4 timed-update capability Chronus schedules
// against; attaching such a switch would silently miss every timed
// FlowMod, so the attach is refused instead.
var ErrTimedUpdatesUnsupported = errors.New("controller: switch does not support timed updates")

// tcpSession sends messages over a real stream connection; a background
// reader feeds replies into the controller. Ordering and asynchrony are
// the transport's own.
type tcpSession struct {
	conn *ofp.Conn
}

func (s *tcpSession) Send(m ofp.Msg) error { return s.conn.Send(m) }

// AttachTCP registers a switch reachable over conn and starts the reply
// reader, which runs until the connection closes. It performs the OpenFlow
// hello exchange and a features check (the switch must support timed
// updates), returning the switch's announced name. When the reader later
// exits on a connection error the session is detached again and the
// disconnect surfaced through Disconnects and Options.OnDisconnect, so
// executors fail fast with ErrNoSession instead of barriering forever
// against a gone switch.
func (c *Controller) AttachTCP(id graph.NodeID, conn *ofp.Conn) (string, error) {
	if err := conn.Send(&ofp.Hello{XID: 0}); err != nil {
		return "", err
	}
	m, err := conn.Recv()
	if err != nil {
		return "", err
	}
	if _, ok := m.(*ofp.Hello); !ok {
		return "", fmt.Errorf("%w: expected hello, got %v", ErrHandshake, m.Type())
	}
	if err := conn.Send(&ofp.FeaturesRequest{XID: 1}); err != nil {
		return "", err
	}
	m, err = conn.Recv()
	if err != nil {
		return "", err
	}
	feats, ok := m.(*ofp.FeaturesReply)
	if !ok {
		return "", fmt.Errorf("%w: expected features reply, got %v", ErrHandshake, m.Type())
	}
	if !feats.TimedUpdates {
		return "", fmt.Errorf("%w: %q (datapath %d)", ErrTimedUpdatesUnsupported, feats.Name, feats.DatapathID)
	}
	s := &tcpSession{conn: conn}
	c.AttachSession(id, s)
	go func() {
		for {
			m, err := conn.Recv()
			if err != nil {
				c.sessionClosed(id, s, err)
				return
			}
			c.RecordReply(m)
		}
	}()
	return feats.Name, nil
}
