package controller

import (
	"strings"
	"testing"

	"github.com/chronus-sdn/chronus/internal/baseline"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/emu"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/obs"
	"github.com/chronus-sdn/chronus/internal/sim"
	"github.com/chronus-sdn/chronus/internal/timesync"
	"github.com/chronus-sdn/chronus/internal/topo"
)

func setupFig1(t *testing.T, seed int64) (*dynflow.Instance, *Harness, *Controller, FlowSpec) {
	t.Helper()
	in := topo.Fig1Example()
	h := NewHarness(in.G)
	c := New(h, Options{Seed: seed})
	c.AttachAll(nil)
	f := FlowSpec{Name: "f0", Tag: 0, Path: in.Init, Rate: 1}
	if err := c.Provision(f); err != nil {
		t.Fatalf("Provision: %v", err)
	}
	return in, h, c, f
}

func noOverloads(t *testing.T, h *Harness) {
	t.Helper()
	for _, l := range h.Net.Links() {
		if ovs := l.Overloads(); len(ovs) > 0 {
			t.Fatalf("link %s->%s overloaded: %+v",
				h.G.Name(l.From()), h.G.Name(l.To()), ovs)
		}
	}
}

func totalDrops(h *Harness) float64 {
	var drops float64
	for _, id := range h.G.Nodes() {
		drops += h.Net.Switch(id).Dropped()
	}
	return drops
}

func TestProvisionDelivers(t *testing.T) {
	in, h, _, _ := setupFig1(t, 1)
	h.AdvanceTo(200)
	dst := h.Net.Switch(in.Dest())
	if dst.Delivered() == 0 {
		t.Fatal("no traffic delivered after provisioning")
	}
	if drops := totalDrops(h); drops != 0 {
		t.Fatalf("drops = %f during provisioning (rules must install dest-first)", drops)
	}
	noOverloads(t, h)
}

func TestExecuteTimedPaperSchedule(t *testing.T) {
	in, h, c, f := setupFig1(t, 2)
	h.AdvanceTo(100)
	// Shift the paper schedule to absolute ticks comfortably after the
	// control latency.
	s := dynflow.NewSchedule(150)
	for v, tv := range topo.PaperSchedule(in).Times {
		s.Set(v, 150+tv)
	}
	if err := c.ExecuteTimed(in, s, f); err != nil {
		t.Fatalf("ExecuteTimed: %v", err)
	}
	h.AdvanceTo(300)
	noOverloads(t, h)
	if drops := totalDrops(h); drops != 0 {
		t.Fatalf("drops = %f during timed update", drops)
	}
	// Traffic now flows the final path: the (v1,v5) link carries rate 1.
	l := h.Net.Link(in.G.Lookup("v1"), in.G.Lookup("v5"))
	if l.Rate() != 1 {
		t.Fatalf("final path not active: (v1,v5) rate = %d", l.Rate())
	}
}

func TestExecuteTimedRespectsClockError(t *testing.T) {
	// With a deliberately broken clock ensemble (±20 tick error), the same
	// safe schedule is executed at wrong instants; on the tight reversal
	// topology this must show up as overloads or drops for some seed.
	in := topo.Fig1Example()
	violated := false
	for seed := int64(0); seed < 8 && !violated; seed++ {
		h := NewHarness(in.G)
		c := New(h, Options{Seed: seed})
		ens := newCoarseEnsemble(seed, in)
		c.AttachAll(ens)
		f := FlowSpec{Name: "f0", Tag: 0, Path: in.Init, Rate: 1}
		if err := c.Provision(f); err != nil {
			t.Fatal(err)
		}
		h.AdvanceTo(100)
		s := dynflow.NewSchedule(150)
		for v, tv := range topo.PaperSchedule(in).Times {
			s.Set(v, 150+tv)
		}
		if err := c.ExecuteTimed(in, s, f); err != nil {
			t.Fatal(err)
		}
		h.AdvanceTo(400)
		if h.Net.CongestedLinks() > 0 || totalDrops(h) > 0 {
			violated = true
		}
	}
	if !violated {
		t.Fatal("±20-tick clock error never perturbed the schedule; ablation would be vacuous")
	}
}

func TestExecuteBarrierPacedORShowsTransients(t *testing.T) {
	// Replay OR rounds through the literal Algorithm 5 loop with control
	// latency: the intra-round asynchrony must violate on some seed.
	in := topo.Fig1Example()
	rounds, err := baseline.ORGreedy(in)
	if err != nil {
		t.Fatal(err)
	}
	violated := false
	for seed := int64(0); seed < 10 && !violated; seed++ {
		h := NewHarness(in.G)
		c := New(h, Options{Seed: seed, MinLatency: 1, MaxLatency: 6})
		c.AttachAll(nil)
		f := FlowSpec{Name: "f0", Tag: 0, Path: in.Init, Rate: 1}
		if err := c.Provision(f); err != nil {
			t.Fatal(err)
		}
		h.AdvanceTo(100)
		s := baseline.ORSchedule(rounds, baseline.ORScheduleOptions{Start: 0, RoundWidth: 1})
		if err := c.ExecuteBarrierPaced(in, s, f, 1); err != nil {
			t.Fatal(err)
		}
		h.AdvanceBy(100)
		if h.Net.CongestedLinks() > 0 || totalDrops(h) > 0 {
			violated = true
		}
	}
	if !violated {
		t.Fatal("OR replay never violated; Fig. 6 would be vacuous")
	}
}

func TestExecuteTwoPhase(t *testing.T) {
	in, h, c, f := setupFig1(t, 3)
	h.AdvanceTo(100)
	if err := c.ExecuteTwoPhase(in, f, 2); err != nil {
		t.Fatalf("ExecuteTwoPhase: %v", err)
	}
	h.AdvanceBy(50)
	noOverloads(t, h)
	if drops := totalDrops(h); drops != 0 {
		t.Fatalf("drops = %f during two-phase", drops)
	}
	// New path active under the new tag; old rules garbage-collected.
	l := h.Net.Link(in.G.Lookup("v1"), in.G.Lookup("v5"))
	if l.Rate() != 1 {
		t.Fatalf("final path not active: rate = %d", l.Rate())
	}
	v3 := h.Net.Switch(in.G.Lookup("v3"))
	for _, r := range v3.DumpRules() {
		if r.Key.Tag == 0 {
			t.Fatalf("old-version rule survived cleanup: %+v", r)
		}
	}
}

func TestSampleLinkMeasuresRate(t *testing.T) {
	in, h, c, _ := setupFig1(t, 4)
	h.AdvanceTo(100)
	samples, err := c.SampleLink(in.G.Lookup("v1"), in.G.Lookup("v2"), 50, 5)
	if err != nil {
		t.Fatalf("SampleLink: %v", err)
	}
	if len(samples) != 5 {
		t.Fatalf("samples = %d, want 5", len(samples))
	}
	for _, s := range samples {
		// Steady state at rate 1; polling jitter allows small deviation.
		if s.Rate < 0.5 || s.Rate > 1.5 {
			t.Fatalf("sample at %d = %f, want ~1", s.At, s.Rate)
		}
	}
}

func TestFlowModErrorSurfacesAtBarrier(t *testing.T) {
	in, _, c, f := setupFig1(t, 5)
	// Point v1 at a non-adjacent switch.
	bad := dynflow.NewSchedule(50)
	bad.Set(in.G.Lookup("v1"), 50)
	badIn := *in
	badIn.Fin = graph.Path{in.G.Lookup("v1"), in.G.Lookup("v3"), in.G.Lookup("v6")}
	err := c.ExecuteTimed(&badIn, bad, f)
	if err == nil || !strings.Contains(err.Error(), "no port") {
		t.Fatalf("err = %v, want port error", err)
	}
}

func TestBarrierUnknownSwitch(t *testing.T) {
	_, _, c, _ := setupFig1(t, 6)
	if err := c.Barrier(graph.NodeID(99)); err == nil {
		t.Fatal("barrier to unknown switch succeeded")
	}
}

// newCoarseEnsemble builds a clock ensemble with ±20 tick sync error for
// the clock-skew test.
func newCoarseEnsemble(seed int64, in *dynflow.Instance) *timesync.Ensemble {
	return timesync.New(timesync.Params{
		Seed:           seed,
		SyncIntervalNs: 1_000_000_000,
		SyncErrorNs:    20 * timesync.TickNs,
	}, in.G.Nodes())
}

var _ = sim.Time(0)
var _ = emu.Rate(0)

func TestProbeClocksEmitsSkewSamplesWithoutTraffic(t *testing.T) {
	in := topo.Fig1Example()
	h := NewHarness(in.G)
	tr := obs.NewTracer(obs.TracerOptions{})
	c := New(h, Options{Seed: 3, Trace: tr})
	c.AttachAll(newCoarseEnsemble(3, in))
	f := FlowSpec{Name: "f0", Tag: 0, Path: in.Init, Rate: 1}
	if err := c.Provision(f); err != nil {
		t.Fatal(err)
	}
	h.AdvanceTo(100)
	before := totalDrops(h)
	if err := c.ProbeClocks("clockprobe", 160, in.G.Nodes()...); err != nil {
		t.Fatalf("ProbeClocks: %v", err)
	}
	h.AdvanceTo(300)
	// Every switch fired its probe: one sw.apply per node, each tagged
	// with the probe flow, and the data plane is untouched.
	applies := map[string]bool{}
	for _, ev := range tr.Events(0) {
		if ev.Name != "sw.apply" {
			continue
		}
		var sw, key string
		for _, a := range ev.Attrs {
			switch a.K {
			case "switch":
				sw = a.V
			case "key":
				key = a.V
			}
		}
		if strings.HasPrefix(key, "clockprobe") {
			applies[sw] = true
		}
	}
	if len(applies) != len(in.G.Nodes()) {
		t.Fatalf("probe applies from %d switches, want %d: %v", len(applies), len(in.G.Nodes()), applies)
	}
	if drops := totalDrops(h); drops != before {
		t.Fatalf("probe caused drops: %f -> %f", before, drops)
	}
	noOverloads(t, h)
}

func TestPacketInOnBlackhole(t *testing.T) {
	in, h, c, f := setupFig1(t, 7)
	h.AdvanceTo(100)
	// Steer traffic into a rule-less switch: delete v5's rule, then flip
	// the source toward v5.
	g := in.G
	bad := dynflow.NewSchedule(150)
	bad.Set(g.Lookup("v1"), 150)
	// Delete v5's rule so redirected traffic blackholes there.
	h.Do(func() {
		h.Net.Switch(g.Lookup("v5")).RemoveRule(emuKey(f))
	})
	if err := c.ExecuteTimed(in, bad, f); err != nil {
		t.Fatal(err)
	}
	h.AdvanceTo(300)
	pins := c.PacketIns()
	if len(pins) == 0 {
		t.Fatal("no PacketIn for blackholed traffic")
	}
	found := false
	for _, p := range pins {
		if graph.NodeID(p.SwitchID) == g.Lookup("v5") && p.Flow == f.Name {
			found = true
		}
	}
	if !found {
		t.Fatalf("PacketIns = %+v, none from v5", pins)
	}
}

func emuKey(f FlowSpec) emu.FlowKey { return emu.FlowKey{Flow: f.Name, Tag: f.Tag} }
