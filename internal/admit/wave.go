// Wave planning: one coalescing window of queued updates is reserved
// against the ledger, partitioned into link-overlap conflict
// components, and planned — components fan out on the par pool
// (disjoint updates plan concurrently), multi-flow components compose
// through batch.SolveEach's joint validator. Workers only compute;
// every state transition, metric and trace event is applied by the
// coordinator in update-id order, which keeps the admission order and
// the trace byte-identical for a fixed submission sequence at any
// worker count.
package admit

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/chronus-sdn/chronus/internal/batch"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/obs"
	"github.com/chronus-sdn/chronus/internal/par"
	"github.com/chronus-sdn/chronus/internal/state"
)

// component is one conflict-graph component of a wave: updates whose
// link footprints are transitively connected. Members are in id order.
type component struct {
	members []*Update
	fps     []Footprint
}

// componentResult is a worker's verdict for one component.
type componentResult struct {
	// schedules maps planned update ids to their timed schedules.
	schedules map[uint64]*dynflow.Schedule
	// refusals maps refused update ids to their reasons.
	refusals map[uint64]string
}

// planWaveLocked drains one coalescing window. It returns false when
// the queue was empty. Callers hold e.planMu.
func (e *Engine) planWaveLocked() bool {
	now := e.o.Now()

	// Pick the window: priority-major, FIFO within a priority.
	e.mu.Lock()
	if len(e.queue) == 0 {
		e.mu.Unlock()
		return false
	}
	sort.SliceStable(e.queue, func(i, j int) bool {
		if e.queue[i].Req.Priority != e.queue[j].Req.Priority {
			return e.queue[i].Req.Priority > e.queue[j].Req.Priority
		}
		return e.queue[i].ID < e.queue[j].ID
	})
	n := len(e.queue)
	if n > e.o.Window {
		n = e.o.Window
	}
	wave := make([]*Update, n)
	copy(wave, e.queue[:n])
	e.queue = append(e.queue[:0], e.queue[n:]...)
	e.waves++
	waveNo := e.waves
	for _, u := range wave {
		u.State = StatePlanning
		u.Wave = waveNo
		u.PlannedVT = now
	}
	e.mu.Unlock()

	inc(e.counter("chronus_admit_waves_total", "", ""))
	e.trace(now, "admit.wave", obs.A("wave", waveNo), obs.A("size", n))

	// Debit the ledger in pick order: all-or-nothing per update, so a
	// refusal here names the saturated link and leaves no partial debit.
	reserved := make([]*Update, 0, len(wave))
	fps := make(map[uint64]Footprint, len(wave))
	for _, u := range wave {
		fp := FootprintOf(e.g, u.Req.Init, u.Req.Fin, u.Req.Demand)
		if err := e.ledger.Reserve(u.ID, fp); err != nil {
			e.resolveRefused(u, now, "ledger", err.Error())
			continue
		}
		fps[u.ID] = fp
		reserved = append(reserved, u)
	}

	comps := conflictComponents(reserved, fps)
	results := e.planComponents(now, comps)

	// Apply results sequentially in component order (components are in
	// smallest-member-id order, members in id order).
	var execs []*Update
	for ci, c := range comps {
		res := results[ci]
		for _, u := range c.members {
			if u.Req.Execute {
				execs = append(execs, u)
				continue
			}
			if reason, refused := res.refusals[u.ID]; refused {
				e.ledger.Release(u.ID)
				e.resolveRefused(u, now, refusalClass(reason), reason)
				continue
			}
			e.resolvePlanned(u, now, res.schedules[u.ID], len(c.members))
		}
	}

	// Execute-flagged updates run after planning, in id order, on the
	// coordinator goroutine: the executor owns solve, spans and cost.
	sort.Slice(execs, func(i, j int) bool { return execs[i].ID < execs[j].ID })
	for _, u := range execs {
		e.runExecutor(u)
	}

	e.refreshQueueGauges()
	return true
}

// planComponents fans the components out on the par pool. Workers get
// their residual graphs precomputed (deterministically, before the
// fan-out) and never touch shared state.
func (e *Engine) planComponents(now int64, comps []component) []componentResult {
	residuals := make([]*graph.Graph, len(comps))
	for i, c := range comps {
		ids := make([]uint64, len(c.members))
		for j, u := range c.members {
			ids[j] = u.ID
		}
		residuals[i] = e.ledger.Residual(e.g, ids...)
	}
	results, _ := par.Map(context.Background(), e.o.Procs, len(comps), func(_ context.Context, i int) (componentResult, error) {
		return e.planComponent(now, comps[i], residuals[i]), nil
	})
	return results
}

// planComponent plans one component's plan-only members jointly on the
// residual graph. It is pure: no engine state is touched.
func (e *Engine) planComponent(now int64, c component, res *graph.Graph) componentResult {
	out := componentResult{
		schedules: make(map[uint64]*dynflow.Schedule),
		refusals:  make(map[uint64]string),
	}
	flows := make([]batch.Flow, 0, len(c.members))
	byLabel := make(map[string]uint64, len(c.members))
	for _, u := range c.members {
		if u.Req.Execute {
			continue // the executor owns its solve; it only holds capacity here
		}
		label := fmt.Sprintf("%d:%s", u.ID, u.Req.Flow)
		byLabel[label] = u.ID
		flows = append(flows, batch.Flow{
			Name:   label,
			Demand: u.Req.Demand,
			Init:   u.Req.Init,
			Fin:    u.Req.Fin,
		})
	}
	if len(flows) == 0 {
		return out
	}
	plan, refusals, err := batch.SolveEach(res, flows, batch.Options{
		Start:  dynflow.Tick(now + e.o.HeadroomTicks),
		Scheme: e.o.Scheme,
	})
	if err != nil {
		for _, f := range flows {
			out.refusals[byLabel[f.Name]] = fmt.Sprintf("joint planning failed: %v", err)
		}
		return out
	}
	for _, r := range refusals {
		out.refusals[byLabel[r.Flow]] = r.Reason
	}
	for _, fu := range plan.Updates {
		out.schedules[byLabel[fu.Name]] = fu.S
	}
	return out
}

// conflictComponents partitions reserved updates by link-footprint
// overlap (union-find): updates sharing any directed link land in the
// same component and must be planned jointly.
func conflictComponents(updates []*Update, fps map[uint64]Footprint) []component {
	parent := make([]int, len(updates))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	owner := make(map[linkKey]int)
	for i, u := range updates {
		for _, k := range sortedKeys(fps[u.ID]) {
			if first, seen := owner[k]; seen {
				union(first, i)
			} else {
				owner[k] = i
			}
		}
	}
	groups := make(map[int][]int)
	roots := make([]int, 0)
	for i := range updates {
		r := find(i)
		if _, seen := groups[r]; !seen {
			roots = append(roots, r)
		}
		groups[r] = append(groups[r], i)
	}
	// Updates arrive in pick order; group members and component order
	// both follow the smallest member id for determinism.
	comps := make([]component, 0, len(roots))
	for _, r := range roots {
		c := component{}
		for _, i := range groups[r] {
			c.members = append(c.members, updates[i])
			c.fps = append(c.fps, fps[updates[i].ID])
		}
		sort.Slice(c.members, func(a, b int) bool { return c.members[a].ID < c.members[b].ID })
		comps = append(comps, c)
	}
	sort.Slice(comps, func(a, b int) bool { return comps[a].members[0].ID < comps[b].members[0].ID })
	return comps
}

// refusalClass buckets a refusal reason into the metric label set.
func refusalClass(reason string) string {
	switch {
	case strings.Contains(reason, "joint validation"):
		return "joint"
	case strings.Contains(reason, "deferred"):
		return "window"
	default:
		return "plan"
	}
}

// resolveRefused terminates u with a refusal.
func (e *Engine) resolveRefused(u *Update, now int64, class, reason string) {
	e.mu.Lock()
	u.State = StateRefused
	u.Reason = reason
	u.DoneVT = now
	e.tenant(u.Req.Tenant).Refused++
	u.notify()
	e.mu.Unlock()
	inc(e.counter("chronus_admit_refused_total", "reason", class))
	e.trace(now, "admit.refuse", obs.A("id", u.ID), obs.A("tenant", u.Req.Tenant),
		obs.A("flow", u.Req.Flow), obs.A("reason", reason))
}

// resolvePlanned applies a successful plan: the schedule is recorded,
// the wait histogram observes the queue time, and the capacity hold is
// credited back unless the request asked to keep it open.
func (e *Engine) resolvePlanned(u *Update, now int64, s *dynflow.Schedule, componentSize int) {
	e.mu.Lock()
	u.Schedule = s
	u.ComponentSize = componentSize
	ts := e.tenant(u.Req.Tenant)
	ts.Planned++
	if u.Req.Hold {
		u.State = StateExecuting
	} else {
		u.State = StateDone
		u.DoneVT = now
	}
	u.notify()
	e.mu.Unlock()
	if !u.Req.Hold {
		e.ledger.Release(u.ID)
	}
	inc(e.counter("chronus_admit_planned_total", "", ""))
	if componentSize > 1 {
		inc(e.counter("chronus_admit_conflicts_total", "", ""))
	}
	if e.waitH != nil {
		e.waitH.Observe(float64(now - u.EnqueuedVT))
	}
	e.trace(now, "admit.plan", obs.A("id", u.ID), obs.A("tenant", u.Req.Tenant),
		obs.A("flow", u.Req.Flow), obs.A("wave", u.Wave), obs.A("component", componentSize),
		obs.A("wait", now-u.EnqueuedVT))
	// Record the planner's intended end-state for the observed-state
	// store. Plan-only updates never touch the data plane, so the drift
	// detector reports them as "planned" rather than holding switches
	// accountable — but the intent is on the record (and in the journal)
	// for offline inspection.
	if s != nil {
		sws := make([]state.IntentSwitch, 0, len(s.Times))
		for v, tv := range s.Times {
			next := "host"
			if nh := u.Req.Fin.NextHop(v); nh != graph.Invalid {
				next = e.g.Name(nh)
			}
			sws = append(sws, state.IntentSwitch{Switch: e.g.Name(v), Next: next, At: int64(tv)})
		}
		e.trace(now, "state.intent", obs.A("id", u.ID), obs.A("tenant", u.Req.Tenant),
			obs.A("flow", u.Req.Flow), obs.A("key", u.Req.Flow), obs.A("kind", "plan"),
			obs.A("method", e.o.Scheme), obs.A("slack", 0),
			obs.A("switches", state.EncodeIntentSwitches(sws)))
	}
}

// runExecutor hands an Execute-flagged update to the daemon's executor
// and settles its terminal state from the outcome.
func (e *Engine) runExecutor(u *Update) {
	now := e.o.Now()
	e.mu.Lock()
	u.State = StateExecuting
	e.mu.Unlock()
	e.trace(now, "admit.exec", obs.A("id", u.ID), obs.A("tenant", u.Req.Tenant),
		obs.A("method", u.Req.Method))
	span, err := e.o.Execute(u)
	done := e.o.Now()
	e.mu.Lock()
	u.Span = span
	u.DoneVT = done
	ts := e.tenant(u.Req.Tenant)
	if err != nil {
		u.State = StateFailed
		u.Reason = err.Error()
	} else {
		u.State = StateDone
		ts.Executed++
	}
	u.notify()
	e.mu.Unlock()
	e.ledger.Release(u.ID)
	if err == nil {
		inc(e.counter("chronus_admit_executed_total", "", ""))
	}
	if e.waitH != nil {
		e.waitH.Observe(float64(u.PlannedVT - u.EnqueuedVT))
	}
}

// refreshQueueGauges mirrors queue depth and oldest wait after a wave.
func (e *Engine) refreshQueueGauges() {
	if e.o.Obs == nil {
		return
	}
	now := e.o.Now()
	e.mu.Lock()
	depth := len(e.queue)
	oldest := int64(0)
	for _, u := range e.queue {
		if w := now - u.EnqueuedVT; w > oldest {
			oldest = w
		}
	}
	e.mu.Unlock()
	e.o.Obs.Gauge("chronus_admit_queue_depth").Set(int64(depth))
	e.o.Obs.Gauge("chronus_admit_queue_oldest_wait_ticks").Set(oldest)
}

// TenantView is one tenant's admission accounting in a Snapshot.
type TenantView struct {
	Tenant      string `json:"tenant"`
	Submitted   int64  `json:"submitted"`
	Planned     int64  `json:"planned"`
	Executed    int64  `json:"executed,omitempty"`
	Refused     int64  `json:"refused,omitempty"`
	Preempted   int64  `json:"preempted,omitempty"`
	MaxPriority int    `json:"max_priority,omitempty"`
}

// Snapshot is the engine's queue state (GET /queue).
type Snapshot struct {
	Depth            int            `json:"depth"`
	Cap              int            `json:"cap"`
	Window           int            `json:"window"`
	OldestWaitTicks  int64          `json:"oldest_wait_ticks"`
	SaturationStreak int            `json:"saturation_streak"`
	Waves            uint64         `json:"waves"`
	States           map[string]int `json:"states"`
	Tenants          []TenantView   `json:"tenants,omitempty"`
	Ledger           Utilization    `json:"ledger"`
}

// Snapshot reports the queue, per-tenant accounting and ledger load.
func (e *Engine) Snapshot() Snapshot {
	now := e.o.Now()
	e.mu.Lock()
	s := Snapshot{
		Depth:            len(e.queue),
		Cap:              e.o.QueueCap,
		Window:           e.o.Window,
		SaturationStreak: e.satStreak,
		Waves:            e.waves,
		States:           make(map[string]int),
	}
	for _, u := range e.queue {
		if w := now - u.EnqueuedVT; w > s.OldestWaitTicks {
			s.OldestWaitTicks = w
		}
	}
	for _, u := range e.updates {
		s.States[string(u.State)]++
	}
	names := make([]string, 0, len(e.tenants))
	for name := range e.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := e.tenants[name]
		s.Tenants = append(s.Tenants, TenantView{
			Tenant:      name,
			Submitted:   ts.Submitted,
			Planned:     ts.Planned,
			Executed:    ts.Executed,
			Refused:     ts.Refused,
			Preempted:   ts.Preempted,
			MaxPriority: ts.MaxPriority,
		})
	}
	e.mu.Unlock()
	s.Ledger = e.ledger.Utilization()
	return s
}
