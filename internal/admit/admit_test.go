package admit

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/obs"
)

// pods builds n disjoint diamond pods in one graph and returns per-pod
// (init, fin) path pairs. Flows in the same pod share links; flows in
// different pods are fully disjoint.
func pods(t *testing.T, n int, cap graph.Capacity) (*graph.Graph, [][2]graph.Path) {
	t.Helper()
	g := graph.New()
	out := make([][2]graph.Path, n)
	for i := 0; i < n; i++ {
		ids := g.AddNodes(
			fmt.Sprintf("p%d-s", i), fmt.Sprintf("p%d-a", i),
			fmt.Sprintf("p%d-b", i), fmt.Sprintf("p%d-t", i))
		s, a, b, d := ids[0], ids[1], ids[2], ids[3]
		for _, l := range [][2]graph.NodeID{{s, a}, {a, d}, {s, b}, {b, d}} {
			if err := g.AddLink(l[0], l[1], cap, 1); err != nil {
				t.Fatal(err)
			}
		}
		out[i] = [2]graph.Path{{s, a, d}, {s, b, d}}
	}
	return g, out
}

func planOnly(p [2]graph.Path, d graph.Capacity) Request {
	return Request{Tenant: "t", Flow: "f", Demand: d, Init: p[0], Fin: p[1]}
}

func TestSubmitRegistersSynchronously(t *testing.T) {
	g, pp := pods(t, 1, 10)
	e := New(g, Options{})
	id, err := e.Submit(planOnly(pp[0], 4))
	if err != nil {
		t.Fatal(err)
	}
	// The id must resolve the instant Submit returns — no 404 window.
	v, ok := e.View(id)
	if !ok {
		t.Fatalf("update %d not registered at submit", id)
	}
	if v.State != string(StateQueued) {
		t.Fatalf("state %s, want queued", v.State)
	}
}

func TestWaitPlansAndCompletes(t *testing.T) {
	g, pp := pods(t, 1, 10)
	e := New(g, Options{})
	id, err := e.Submit(planOnly(pp[0], 4))
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != string(StateDone) {
		t.Fatalf("state %s (%s), want done", v.State, v.Reason)
	}
	if len(v.Schedule) == 0 {
		t.Fatal("done update carries no schedule")
	}
	if u := e.Ledger().Utilization(); u.Holds != 0 {
		t.Fatalf("plan-only completion left %d holds open", u.Holds)
	}
}

func TestBackpressureRefusesWhenFull(t *testing.T) {
	g, pp := pods(t, 1, 100)
	e := New(g, Options{QueueCap: 2})
	for i := 0; i < 2; i++ {
		if _, err := e.Submit(planOnly(pp[0], 1)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := e.Submit(planOnly(pp[0], 1))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if s := e.Snapshot(); s.SaturationStreak != 1 || s.Depth != 2 {
		t.Fatalf("snapshot %+v, want streak 1 depth 2", s)
	}
	// Draining makes room again and the streak resets on the next
	// successful enqueue.
	e.Drain()
	if _, err := e.Submit(planOnly(pp[0], 1)); err != nil {
		t.Fatal(err)
	}
	if s := e.Snapshot(); s.SaturationStreak != 0 {
		t.Fatalf("saturation streak %d after room opened, want 0", s.SaturationStreak)
	}
}

func TestPreemptionByPriority(t *testing.T) {
	g, pp := pods(t, 1, 100)
	e := New(g, Options{QueueCap: 1})
	low, err := e.Submit(Request{Tenant: "bulk", Flow: "f", Demand: 1, Init: pp[0][0], Fin: pp[0][1], Priority: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Equal priority does not preempt: backpressure instead.
	if _, err := e.Submit(Request{Tenant: "bulk", Flow: "f", Demand: 1, Init: pp[0][0], Fin: pp[0][1], Priority: 0}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("equal-priority submit: %v, want ErrQueueFull", err)
	}
	// Higher priority evicts the queued low-priority update.
	hi, err := e.Submit(Request{Tenant: "urgent", Flow: "g", Demand: 1, Init: pp[0][0], Fin: pp[0][1], Priority: 5})
	if err != nil {
		t.Fatalf("high-priority submit refused: %v", err)
	}
	v, _ := e.View(low)
	if v.State != string(StateRefused) {
		t.Fatalf("victim state %s, want refused", v.State)
	}
	if v.Reason == "" {
		t.Fatal("preempted update has no reason")
	}
	if v, _ = e.View(hi); v.State != string(StateQueued) {
		t.Fatalf("preemptor state %s, want queued", v.State)
	}
	snap := e.Snapshot()
	var bulk *TenantView
	for i := range snap.Tenants {
		if snap.Tenants[i].Tenant == "bulk" {
			bulk = &snap.Tenants[i]
		}
	}
	if bulk == nil || bulk.Preempted != 1 {
		t.Fatalf("tenant accounting %+v, want bulk preempted=1", snap.Tenants)
	}
}

func TestConflictComponents(t *testing.T) {
	g, pp := pods(t, 2, 20)
	e := New(g, Options{})
	// Two flows in pod 0 share links; one flow in pod 1 is disjoint.
	a, _ := e.Submit(planOnly(pp[0], 4))
	b, _ := e.Submit(planOnly(pp[0], 4))
	c, _ := e.Submit(planOnly(pp[1], 4))
	e.Drain()
	for _, tc := range []struct {
		id   uint64
		size int
	}{{a, 2}, {b, 2}, {c, 1}} {
		v, _ := e.View(tc.id)
		if v.State != string(StateDone) {
			t.Fatalf("update %d state %s (%s), want done", tc.id, v.State, v.Reason)
		}
		if v.ComponentSize != tc.size {
			t.Fatalf("update %d component size %d, want %d", tc.id, v.ComponentSize, tc.size)
		}
	}
}

func TestLedgerRefusalAndRetryAfterCompletion(t *testing.T) {
	g, pp := pods(t, 1, 10)
	e := New(g, Options{})
	first, err := e.Submit(Request{Tenant: "t", Flow: "f", Demand: 6, Init: pp[0][0], Fin: pp[0][1], Hold: true})
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Submit(Request{Tenant: "t", Flow: "g", Demand: 6, Init: pp[0][0], Fin: pp[0][1], Hold: true})
	if err != nil {
		t.Fatal(err)
	}
	e.Drain()
	v, _ := e.View(first)
	if v.State != string(StateExecuting) {
		t.Fatalf("first state %s (%s), want executing (held)", v.State, v.Reason)
	}
	if v, _ = e.View(second); v.State != string(StateRefused) {
		t.Fatalf("second state %s, want refused while first holds the links", v.State)
	}
	// Completion credits the ledger; the same request now fits.
	e.Complete(first)
	if v, _ = e.View(first); v.State != string(StateDone) {
		t.Fatalf("first state %s after Complete, want done", v.State)
	}
	third, err := e.Submit(Request{Tenant: "t", Flow: "h", Demand: 6, Init: pp[0][0], Fin: pp[0][1]})
	if err != nil {
		t.Fatal(err)
	}
	e.Drain()
	if v, _ = e.View(third); v.State != string(StateDone) {
		t.Fatalf("third state %s (%s), want done after credit", v.State, v.Reason)
	}
}

func TestExecutorPath(t *testing.T) {
	g, pp := pods(t, 1, 10)
	var ran []uint64
	e := New(g, Options{
		Execute: func(u *Update) (obs.SpanID, error) {
			ran = append(ran, u.ID)
			return obs.SpanID(700 + u.ID), nil
		},
	})
	id, err := e.Submit(Request{Tenant: "t", Flow: "agg", Demand: 4, Init: pp[0][0], Fin: pp[0][1], Execute: true, Method: "chronus"})
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != string(StateDone) || v.Span != uint64(700+id) {
		t.Fatalf("view %+v, want done with span %d", v, 700+id)
	}
	if len(ran) != 1 || ran[0] != id {
		t.Fatalf("executor ran %v, want [%d]", ran, id)
	}
	if u := e.Ledger().Utilization(); u.Holds != 0 {
		t.Fatalf("executed update left %d holds", u.Holds)
	}
}

func TestExecuteWithoutExecutorRefusedAtSubmit(t *testing.T) {
	g, _ := pods(t, 1, 10)
	e := New(g, Options{})
	if _, err := e.Submit(Request{Execute: true, Method: "chronus"}); err == nil {
		t.Fatal("execute request accepted with no executor")
	}
}

// TestAdmissionTraceDeterministic drives the same submission sequence
// through a serialized engine and a parallel one: the admission order,
// terminal states and the full admit.* trace must be byte-identical —
// workers only compute, the coordinator owns every observable effect.
func TestAdmissionTraceDeterministic(t *testing.T) {
	run := func(procs int) ([]byte, []string) {
		g, pp := pods(t, 4, 12)
		tracer := obs.NewTracer(obs.TracerOptions{})
		e := New(g, Options{Procs: procs, Trace: tracer, Window: 16})
		var ids []uint64
		for round := 0; round < 3; round++ {
			for p := 0; p < 4; p++ {
				// Conflicting pairs within each pod plus a varying demand:
				// some admit, some refuse, exercising every path.
				for _, d := range []graph.Capacity{5, 4} {
					id, err := e.Submit(Request{
						Tenant: fmt.Sprintf("t%d", p), Flow: fmt.Sprintf("f%d", round),
						Demand: d, Init: pp[p][0], Fin: pp[p][1],
						Priority: p % 2,
					})
					if err != nil {
						t.Fatal(err)
					}
					ids = append(ids, id)
				}
			}
			e.Drain()
		}
		var states []string
		for _, id := range ids {
			v, _ := e.View(id)
			states = append(states, fmt.Sprintf("%d:%s:%d", id, v.State, v.ComponentSize))
		}
		raw, err := json.Marshal(tracer.Events(0))
		if err != nil {
			t.Fatal(err)
		}
		return raw, states
	}
	serialTrace, serialStates := run(1)
	parallelTrace, parallelStates := run(8)
	if string(serialTrace) != string(parallelTrace) {
		t.Fatalf("trace differs between procs=1 and procs=8:\nserial:   %s\nparallel: %s",
			serialTrace, parallelTrace)
	}
	for i := range serialStates {
		if serialStates[i] != parallelStates[i] {
			t.Fatalf("admission outcome %d differs: %s vs %s", i, serialStates[i], parallelStates[i])
		}
	}
}
