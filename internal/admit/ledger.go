// The capacity ledger is the shared-state half of the admission
// pipeline: one reservation account per directed link, debited at plan
// time and credited at audited completion, so concurrent planners can
// never double-book bandwidth no matter how their waves interleave.
package admit

import (
	"fmt"
	"sort"
	"sync"

	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/obs"
)

// linkKey identifies one directed link in the ledger.
type linkKey = [2]graph.NodeID

// Footprint maps the links an update touches (initial ∪ final path) to
// the demand it reserves on each. A link appearing on both paths is
// reserved once: the flow emits on one path per packet, so its
// transient load on a shared link never exceeds the demand.
type Footprint map[linkKey]graph.Capacity

// FootprintOf computes a request's link footprint on g.
func FootprintOf(g *graph.Graph, init, fin graph.Path, demand graph.Capacity) Footprint {
	fp := make(Footprint, len(init)+len(fin))
	for _, p := range []graph.Path{init, fin} {
		for k := 1; k < len(p); k++ {
			fp[linkKey{p[k-1], p[k]}] = demand
		}
	}
	return fp
}

// Ledger is the shared per-link capacity account. Reserve is
// all-or-nothing: either every link of a footprint has room and the
// whole footprint is debited atomically, or nothing is and the caller
// gets a refusal naming the saturated link. Release credits a
// reservation back exactly; double releases are no-ops. The overcommit
// counter is a runtime self-check — it increments if a debit ever
// leaves a link above its capacity, which the Reserve precondition
// makes impossible, so a non-zero count is a ledger bug, not load.
type Ledger struct {
	mu       sync.Mutex
	caps     map[linkKey]graph.Capacity
	reserved map[linkKey]graph.Capacity
	holds    map[uint64]Footprint
	names    func(graph.NodeID) string

	overcommits *obs.Counter
	reservedG   *obs.Gauge
	utilG       *obs.Gauge
}

// NewLedger builds a ledger over g's links, exporting its gauges and
// the overcommit counter on reg (nil disables the metric mirror).
func NewLedger(g *graph.Graph, reg *obs.Registry) *Ledger {
	l := &Ledger{
		caps:     make(map[linkKey]graph.Capacity, g.NumLinks()),
		reserved: make(map[linkKey]graph.Capacity, g.NumLinks()),
		holds:    make(map[uint64]Footprint),
		names:    g.Name,
	}
	for _, lk := range g.Links() {
		l.caps[linkKey{lk.From, lk.To}] = lk.Cap
	}
	if reg != nil {
		l.overcommits = reg.Counter("chronus_admit_ledger_overcommit_total")
		l.reservedG = reg.Gauge("chronus_admit_ledger_reserved_units")
		l.utilG = reg.Gauge("chronus_admit_ledger_utilization_pct")
	}
	return l
}

// Reserve debits fp under hold id. It fails without side effects when
// any link lacks room (naming the first saturated link in a fixed
// order) or is unknown to the ledger.
func (l *Ledger) Reserve(id uint64, fp Footprint) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.holds[id]; dup {
		return fmt.Errorf("admit: hold %d already reserved", id)
	}
	keys := sortedKeys(fp)
	for _, k := range keys {
		cap, ok := l.caps[k]
		if !ok {
			return fmt.Errorf("admit: link %s->%s not in the ledger", l.names(k[0]), l.names(k[1]))
		}
		if l.reserved[k]+fp[k] > cap {
			return fmt.Errorf("admit: link %s->%s saturated by in-flight updates (%d + %d > cap %d)",
				l.names(k[0]), l.names(k[1]), l.reserved[k], fp[k], cap)
		}
	}
	for _, k := range keys {
		l.reserved[k] += fp[k]
		if l.reserved[k] > l.caps[k] && l.overcommits != nil {
			l.overcommits.Inc()
		}
	}
	l.holds[id] = fp
	l.mirror()
	return nil
}

// Release credits hold id back. Unknown ids are ignored (completion
// and failure paths may both release).
func (l *Ledger) Release(id uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fp, ok := l.holds[id]
	if !ok {
		return
	}
	delete(l.holds, id)
	for k, d := range fp {
		l.reserved[k] -= d
		if l.reserved[k] <= 0 {
			delete(l.reserved, k)
		}
	}
	l.mirror()
}

// Residual clones g with every link's capacity reduced by the ledger's
// current reservations, except those held by the ids in exclude — the
// graph a planner must solve against so it cannot double-book what
// concurrent in-flight updates already hold.
func (l *Ledger) Residual(g *graph.Graph, exclude ...uint64) *graph.Graph {
	l.mu.Lock()
	defer l.mu.Unlock()
	own := make(map[linkKey]graph.Capacity)
	for _, id := range exclude {
		for k, d := range l.holds[id] {
			own[k] += d
		}
	}
	res := g.Clone()
	for k, d := range l.reserved {
		rest := d - own[k]
		if rest <= 0 {
			continue
		}
		if _, ok := res.Link(k[0], k[1]); !ok {
			// The ledger was built from g; a missing link means the caller
			// passed a different graph, which is a programming error.
			panic(fmt.Sprintf("admit: residual of foreign graph: no link %d->%d", k[0], k[1]))
		}
		left := l.caps[k] - rest
		if left <= 0 {
			// Fully consumed by in-flight holds: drop the link, matching
			// the batch layer's residual semantics (a zero-capacity link
			// is not representable).
			res.RemoveLink(k[0], k[1])
			continue
		}
		if err := res.SetCapacity(k[0], k[1], left); err != nil {
			panic(fmt.Sprintf("admit: residual of foreign graph: %v", err))
		}
	}
	return res
}

// Utilization reports the ledger's load: total reserved units, the
// number of links holding reservations, active holds, and the maximum
// per-link utilization percentage.
type Utilization struct {
	ReservedUnits int64 `json:"reserved_units"`
	ReservedLinks int   `json:"reserved_links"`
	Holds         int   `json:"holds"`
	MaxLinkPct    int64 `json:"max_link_pct"`
}

// Utilization snapshots the ledger load and refreshes its gauges.
func (l *Ledger) Utilization() Utilization {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mirror()
}

// mirror recomputes the summary and pushes it to the gauges. Callers
// hold l.mu.
func (l *Ledger) mirror() Utilization {
	var u Utilization
	u.Holds = len(l.holds)
	for k, d := range l.reserved {
		if d <= 0 {
			continue
		}
		u.ReservedUnits += int64(d)
		u.ReservedLinks++
		if cap := l.caps[k]; cap > 0 {
			if pct := 100 * int64(d) / int64(cap); pct > u.MaxLinkPct {
				u.MaxLinkPct = pct
			}
		}
	}
	if l.reservedG != nil {
		l.reservedG.Set(u.ReservedUnits)
		l.utilG.Set(u.MaxLinkPct)
	}
	return u
}

func sortedKeys(fp Footprint) []linkKey {
	keys := make([]linkKey, 0, len(fp))
	for k := range fp {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

func max64(a, b graph.Capacity) graph.Capacity {
	if a > b {
		return a
	}
	return b
}
