package admit

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/obs"
)

// diamond builds one two-path pod: src -> top -> dst and
// src -> bot -> dst, every link with capacity cap and delay 1.
func diamond(t *testing.T, cap graph.Capacity) (*graph.Graph, graph.Path, graph.Path) {
	t.Helper()
	g := graph.New()
	ids := g.AddNodes("s", "a", "b", "t")
	s, a, b, d := ids[0], ids[1], ids[2], ids[3]
	for _, l := range [][2]graph.NodeID{{s, a}, {a, d}, {s, b}, {b, d}} {
		if err := g.AddLink(l[0], l[1], cap, 1); err != nil {
			t.Fatal(err)
		}
	}
	return g, graph.Path{s, a, d}, graph.Path{s, b, d}
}

func TestLedgerReserveAllOrNothing(t *testing.T) {
	g, top, bot := diamond(t, 10)
	l := NewLedger(g, nil)
	fp := FootprintOf(g, top, bot, 6)
	if err := l.Reserve(1, fp); err != nil {
		t.Fatalf("first reserve: %v", err)
	}
	// A second 6-unit hold does not fit on any shared link (6+6 > 10);
	// the refusal must leave no partial debit behind.
	before := l.Utilization()
	if err := l.Reserve(2, fp); err == nil {
		t.Fatal("second overlapping reserve succeeded; want saturation error")
	}
	if after := l.Utilization(); after != before {
		t.Fatalf("failed reserve left a partial debit: %+v -> %+v", before, after)
	}
	// A disjoint single-path hold that fits must still be admitted.
	if err := l.Reserve(3, FootprintOf(g, top, top, 4)); err != nil {
		t.Fatalf("fitting reserve refused: %v", err)
	}
}

func TestLedgerCreditsRestoreExactly(t *testing.T) {
	g, top, bot := diamond(t, 100)
	l := NewLedger(g, nil)
	for id := uint64(1); id <= 10; id++ {
		if err := l.Reserve(id, FootprintOf(g, top, bot, 7)); err != nil {
			t.Fatalf("reserve %d: %v", id, err)
		}
	}
	for id := uint64(1); id <= 10; id++ {
		l.Release(id)
		l.Release(id) // double release must be a no-op
	}
	u := l.Utilization()
	if u.ReservedUnits != 0 || u.ReservedLinks != 0 || u.Holds != 0 || u.MaxLinkPct != 0 {
		t.Fatalf("ledger not restored after full release: %+v", u)
	}
	// The residual with nothing held must equal the original capacities.
	res := l.Residual(g)
	for _, lk := range g.Links() {
		r, ok := res.Link(lk.From, lk.To)
		if !ok || r.Cap != lk.Cap {
			t.Fatalf("residual link %d->%d cap %d, want %d", lk.From, lk.To, r.Cap, lk.Cap)
		}
	}
}

func TestLedgerResidualExcludesOwnHold(t *testing.T) {
	g, top, bot := diamond(t, 10)
	l := NewLedger(g, nil)
	if err := l.Reserve(1, FootprintOf(g, top, bot, 6)); err != nil {
		t.Fatal(err)
	}
	// Excluding the hold restores full capacity for its own planner...
	res := l.Residual(g, 1)
	lk, _ := res.Link(top[0], top[1])
	if lk.Cap != 10 {
		t.Fatalf("own residual cap %d, want 10", lk.Cap)
	}
	// ...while everyone else plans against the debited graph.
	res = l.Residual(g)
	lk, _ = res.Link(top[0], top[1])
	if lk.Cap != 4 {
		t.Fatalf("foreign residual cap %d, want 4", lk.Cap)
	}
}

// TestLedgerConcurrentReserveNeverOvercommits hammers one shared
// bottleneck from many goroutines under -race: at no instant may the
// holders of successful reservations exceed the link capacity, and the
// ledger's own overcommit self-check must stay zero.
func TestLedgerConcurrentReserveNeverOvercommits(t *testing.T) {
	const (
		cap     = 10
		demand  = 3
		workers = 32
		rounds  = 200
	)
	g, top, bot := diamond(t, cap)
	reg := obs.NewRegistry()
	l := NewLedger(g, reg)

	var holders atomic.Int64
	var worst atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				id := uint64(w*rounds + r + 1)
				if err := l.Reserve(id, FootprintOf(g, top, bot, demand)); err != nil {
					continue
				}
				n := holders.Add(1)
				for {
					old := worst.Load()
					if n <= old || worst.CompareAndSwap(old, n) {
						break
					}
				}
				holders.Add(-1)
				l.Release(id)
			}
		}(w)
	}
	wg.Wait()

	if max := worst.Load(); max*demand > cap {
		t.Fatalf("%d concurrent holds of %d units on a %d-unit link: over-committed", max, demand, cap)
	}
	if v := reg.Counter("chronus_admit_ledger_overcommit_total").Value(); v != 0 {
		t.Fatalf("ledger overcommit self-check fired %d times", v)
	}
	if u := l.Utilization(); u.ReservedUnits != 0 || u.Holds != 0 {
		t.Fatalf("ledger dirty after all releases: %+v", u)
	}
}

// TestLedgerAdmissionsJointlyValid is the property test against the
// joint validator: whatever set of concurrently-held plan-only updates
// the engine admits (ledger reservations all open at once), the batch
// layer's joint validator must confirm the combination violation-free
// on the real graph. The ledger is allowed to be conservative — refuse
// combinations the validator would pass — but never the reverse.
func TestLedgerAdmissionsJointlyValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 25; iter++ {
		g, top, bot := diamond(t, 10)
		e := New(g, Options{Window: 8})
		type sub struct {
			id     uint64
			demand graph.Capacity
			init   graph.Path
			fin    graph.Path
		}
		var subs []sub
		for i := 0; i < 6; i++ {
			d := graph.Capacity(1 + rng.Intn(5))
			init, fin := top, bot
			if rng.Intn(2) == 0 {
				init, fin = bot, top
			}
			id, err := e.Submit(Request{
				Tenant: "prop", Flow: "f", Demand: d,
				Init: init, Fin: fin, Hold: true,
			})
			if err != nil {
				t.Fatalf("iter %d: submit: %v", iter, err)
			}
			subs = append(subs, sub{id, d, init, fin})
		}
		e.Drain()
		var joint []dynflow.FlowUpdate
		for _, s := range subs {
			v, ok := e.View(s.id)
			if !ok {
				t.Fatalf("iter %d: update %d vanished", iter, s.id)
			}
			if v.State != string(StateExecuting) {
				continue // refused: the ledger was conservative, which is allowed
			}
			u := e.updates[s.id]
			if u.Schedule == nil {
				t.Fatalf("iter %d: held update %d has no schedule", iter, s.id)
			}
			joint = append(joint, dynflow.FlowUpdate{
				Name: fmt.Sprintf("u%d", s.id),
				In:   &dynflow.Instance{G: g, Demand: s.demand, Init: s.init, Fin: s.fin},
				S:    u.Schedule,
			})
		}
		if len(joint) == 0 {
			continue
		}
		report, err := dynflow.ValidateJoint(joint)
		if err != nil {
			t.Fatalf("iter %d: joint validation: %v", iter, err)
		}
		if !report.OK() {
			t.Fatalf("iter %d: ledger admitted a jointly-invalid set of %d holds: %s",
				iter, len(joint), report.Summary())
		}
	}
}
