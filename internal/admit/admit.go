// Package admit is the update lifecycle engine: a bounded admission
// queue in front of the planners, a shared per-link capacity ledger
// (reservations debited at plan time, credited at audited completion,
// so concurrent plans never double-book bandwidth), and a flow-overlap
// conflict graph that lets disjoint updates plan in parallel on the
// par pool while conflicting ones batch through the joint validator.
//
// The engine replaces chronusd's "HTTP handler calls SolveWith inline"
// update path with explicit states — queued, planning, executing,
// done, refused, failed — registered synchronously at enqueue, so an
// update id returned by Submit always resolves.
//
// Waves drain by group commit: the first waiter plans one coalescing
// window covering everything queued at that moment, and every other
// waiter just blocks on its update's terminal state. All state
// transitions and trace events are emitted by the wave coordinator in
// id order — parallel workers only compute — so for a fixed
// submission sequence the admission order and the trace are
// byte-identical at any worker count.
package admit

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/obs"
)

// State is an update's position in the lifecycle.
type State string

// Lifecycle states. Queued and planning are transient; executing marks
// a planned update whose capacity hold is still open (a data-plane
// execution window, or a caller-managed completion); done, refused and
// failed are terminal.
const (
	StateQueued    State = "queued"
	StatePlanning  State = "planning"
	StateExecuting State = "executing"
	StateDone      State = "done"
	StateRefused   State = "refused"
	StateFailed    State = "failed"
)

// terminal reports whether s ends the lifecycle.
func terminal(s State) bool {
	return s == StateDone || s == StateRefused || s == StateFailed
}

// Request is one tenant's update request.
type Request struct {
	// Tenant and Flow name the update for accounting and refusals.
	Tenant string
	Flow   string
	// Demand, Init and Fin describe the flow's migration on the
	// engine's graph.
	Demand graph.Capacity
	Init   graph.Path
	Fin    graph.Path
	// Priority orders admission within a wave; when the queue is full a
	// submission with higher priority preempts the lowest-priority
	// queued update instead of being refused.
	Priority int
	// Execute asks the engine to run the update on the data plane
	// through the Executor instead of planning it in the wave solver.
	Execute bool
	// Method is the scheme (or "tp") an executed update runs with.
	Method string
	// Hold keeps the capacity reservation open after planning until
	// Complete or Fail is called; without it a plan-only update credits
	// the ledger as soon as its wave's validation verdict is in.
	Hold bool
}

// Update is one tracked update. Fields are written only by the engine;
// callers read snapshots via View.
type Update struct {
	ID  uint64
	Req Request

	State  State
	Reason string
	// Span is the root span id of an executed update (the cost-report
	// key), zero for plan-only updates.
	Span obs.SpanID
	// Wave is the planning wave that resolved the update.
	Wave uint64
	// ComponentSize is how many updates shared the conflict component
	// the update was planned in (1 = disjoint).
	ComponentSize int
	// Schedule is the planned timed schedule of a plan-only update.
	Schedule *dynflow.Schedule

	EnqueuedVT int64
	PlannedVT  int64
	DoneVT     int64

	done     chan struct{}
	notified bool
}

// notify wakes waiters exactly once: a held update is signalled when
// its hold opens (state executing) and must not re-close on Complete.
// Callers hold the engine's mu.
func (u *Update) notify() {
	if !u.notified {
		u.notified = true
		close(u.done)
	}
}

// UpdateView is the JSON snapshot of an update (GET /updates/{id}).
type UpdateView struct {
	ID             uint64           `json:"id"`
	Tenant         string           `json:"tenant,omitempty"`
	Flow           string           `json:"flow,omitempty"`
	Demand         int64            `json:"demand,omitempty"`
	Priority       int              `json:"priority,omitempty"`
	Method         string           `json:"method,omitempty"`
	State          string           `json:"state"`
	Reason         string           `json:"reason,omitempty"`
	Span           uint64           `json:"span,omitempty"`
	Wave           uint64           `json:"wave,omitempty"`
	ComponentSize  int              `json:"component_size,omitempty"`
	EnqueuedVT     int64            `json:"enqueued_vt"`
	PlannedVT      int64            `json:"planned_vt,omitempty"`
	DoneVT         int64            `json:"done_vt,omitempty"`
	QueueWaitTicks int64            `json:"queue_wait_ticks,omitempty"`
	Schedule       map[string]int64 `json:"schedule,omitempty"`
}

// Options configures an Engine.
type Options struct {
	// QueueCap bounds the admission queue (default 256). A submission
	// against a full queue is refused — backpressure — unless its
	// priority beats a queued update's, which is then preempted.
	QueueCap int
	// Window is the coalescing window: how many queued updates one
	// planning wave covers (default 64).
	Window int
	// Scheme names the per-flow scheduler for plan-only updates
	// (default "chronus").
	Scheme string
	// Procs bounds the parallel component planners (0 = all CPUs,
	// 1 = the serialized reference path).
	Procs int
	// HeadroomTicks is how far past "now" plan-only schedules start
	// (default 50, the daemon's control-latency headroom).
	HeadroomTicks int64
	// Now supplies virtual time; nil pins it to zero.
	Now func() int64
	// Execute runs an Execute-flagged update on the data plane and
	// returns its root span. Executed updates skip the wave solver —
	// the executor owns solve, spans and cost — but hold ledger
	// capacity like everyone else. Nil refuses Execute requests.
	Execute func(*Update) (obs.SpanID, error)
	// Obs receives the chronus_admit_* metrics; nil disables them.
	Obs *obs.Registry
	// Trace receives admit.* lifecycle events; nil disables tracing.
	Trace *obs.Tracer
}

// ErrQueueFull reports a refused submission against a full queue.
var ErrQueueFull = errors.New("admit: queue full")

// tenantStats is the per-tenant accounting behind Snapshot and the
// health layer's preemption surface.
type tenantStats struct {
	Submitted, Planned, Refused, Preempted, Executed int64
	MaxPriority                                      int
}

// Engine is the admission pipeline. All methods are safe for
// concurrent use.
type Engine struct {
	g      *graph.Graph
	ledger *Ledger
	o      Options

	mu        sync.Mutex
	updates   map[uint64]*Update
	queue     []*Update
	nextID    uint64
	waves     uint64
	satStreak int
	tenants   map[string]*tenantStats
	order     []uint64 // ids in submission order (bounded reporting)

	waitH *obs.Histogram

	planMu sync.Mutex
}

// New builds an engine planning on g. The graph is shared with the
// caller and must not be mutated while the engine lives.
func New(g *graph.Graph, o Options) *Engine {
	if o.QueueCap <= 0 {
		o.QueueCap = 256
	}
	if o.Window <= 0 {
		o.Window = 64
	}
	if o.Scheme == "" {
		o.Scheme = "chronus"
	}
	if o.HeadroomTicks <= 0 {
		o.HeadroomTicks = 50
	}
	if o.Now == nil {
		o.Now = func() int64 { return 0 }
	}
	RegisterMetrics(o.Obs)
	e := &Engine{
		g:       g,
		ledger:  NewLedger(g, o.Obs),
		o:       o,
		updates: make(map[uint64]*Update),
		tenants: make(map[string]*tenantStats),
	}
	if o.Obs != nil {
		e.waitH = o.Obs.Histogram("chronus_admit_queue_wait_ticks",
			[]float64{0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000})
	}
	return e
}

// RegisterMetrics pre-registers every chronus_admit_* family on reg so
// the exposition is complete before the first submission. Safe on nil.
func RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Help("chronus_admit_submitted_total", "Update requests accepted into the admission queue, by tenant.")
	reg.Help("chronus_admit_refused_total", "Update requests refused, by reason class (queue_full, preempted, ledger, plan, joint, invalid).")
	reg.Help("chronus_admit_preempted_total", "Queued updates evicted by higher-priority submissions, by tenant.")
	reg.Help("chronus_admit_planned_total", "Updates planned successfully by admission waves.")
	reg.Help("chronus_admit_executed_total", "Updates executed on the data plane through the admission pipeline.")
	reg.Help("chronus_admit_waves_total", "Planning waves drained from the admission queue.")
	reg.Help("chronus_admit_conflicts_total", "Updates planned inside multi-flow conflict components (jointly validated).")
	reg.Help("chronus_admit_queue_depth", "Updates currently queued for admission.")
	reg.Help("chronus_admit_queue_oldest_wait_ticks", "Virtual-time age of the oldest queued update.")
	reg.Help("chronus_admit_queue_wait_ticks", "Virtual-time queue wait from enqueue to wave pickup.")
	reg.Help("chronus_admit_ledger_overcommit_total", "Ledger self-check: debits that left a link above capacity. Must stay zero.")
	reg.Help("chronus_admit_ledger_reserved_units", "Capacity units currently reserved by in-flight updates.")
	reg.Help("chronus_admit_ledger_utilization_pct", "Highest per-link reservation percentage in the ledger.")
	reg.Counter("chronus_admit_ledger_overcommit_total")
	reg.Counter("chronus_admit_planned_total")
	reg.Counter("chronus_admit_executed_total")
	reg.Counter("chronus_admit_waves_total")
	reg.Counter("chronus_admit_conflicts_total")
	reg.Gauge("chronus_admit_queue_depth")
	reg.Gauge("chronus_admit_queue_oldest_wait_ticks")
	reg.Gauge("chronus_admit_ledger_reserved_units")
	reg.Gauge("chronus_admit_ledger_utilization_pct")
}

func (e *Engine) counter(name, labelKey, labelVal string) *obs.Counter {
	if e.o.Obs == nil {
		return nil
	}
	if labelKey == "" {
		return e.o.Obs.Counter(name)
	}
	return e.o.Obs.Counter(fmt.Sprintf("%s{%s=%q}", name, labelKey, labelVal))
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

// Ledger exposes the engine's capacity ledger (read-side: utilization,
// residual graphs for diagnostics).
func (e *Engine) Ledger() *Ledger { return e.ledger }

// Submit validates and enqueues a request, returning the update id the
// moment it is registered — a GET /updates/{id} issued right after
// Submit returns can never 404, however loaded the planners are. The
// request is refused synchronously (no id) when it is malformed, the
// executor is missing for an Execute request, or the queue is full and
// the request's priority beats nobody.
func (e *Engine) Submit(req Request) (uint64, error) {
	if err := e.validate(req); err != nil {
		inc(e.counter("chronus_admit_refused_total", "reason", "invalid"))
		return 0, err
	}
	now := e.o.Now()
	e.mu.Lock()
	var preempted *Update
	if len(e.queue) >= e.o.QueueCap {
		victim := e.preemptionVictim(req.Priority)
		if victim == nil {
			e.satStreak++
			depth := len(e.queue)
			e.mu.Unlock()
			inc(e.counter("chronus_admit_refused_total", "reason", "queue_full"))
			return 0, fmt.Errorf("%w (depth %d)", ErrQueueFull, depth)
		}
		preempted = victim
		e.dropQueued(victim)
		victim.State = StateRefused
		victim.Reason = fmt.Sprintf("preempted by priority-%d submission from tenant %q", req.Priority, req.Tenant)
		victim.DoneVT = now
		e.tenant(victim.Req.Tenant).Preempted++
		victim.notify()
	} else {
		e.satStreak = 0
	}
	e.nextID++
	u := &Update{
		ID:         e.nextID,
		Req:        req,
		State:      StateQueued,
		EnqueuedVT: now,
		done:       make(chan struct{}),
	}
	e.updates[u.ID] = u
	e.order = append(e.order, u.ID)
	e.queue = append(e.queue, u)
	ts := e.tenant(req.Tenant)
	ts.Submitted++
	if req.Priority > ts.MaxPriority {
		ts.MaxPriority = req.Priority
	}
	depth := len(e.queue)
	e.mu.Unlock()

	inc(e.counter("chronus_admit_submitted_total", "tenant", req.Tenant))
	if e.o.Obs != nil {
		e.o.Obs.Gauge("chronus_admit_queue_depth").Set(int64(depth))
	}
	if preempted != nil {
		inc(e.counter("chronus_admit_preempted_total", "tenant", preempted.Req.Tenant))
		inc(e.counter("chronus_admit_refused_total", "reason", "preempted"))
		e.trace(now, "admit.refuse", obs.A("id", preempted.ID), obs.A("tenant", preempted.Req.Tenant),
			obs.A("flow", preempted.Req.Flow), obs.A("reason", "preempted"))
	}
	e.trace(now, "admit.enqueue", obs.A("id", u.ID), obs.A("tenant", req.Tenant),
		obs.A("flow", req.Flow), obs.A("priority", req.Priority), obs.A("depth", depth))
	return u.ID, nil
}

// validate rejects malformed requests before they consume an id.
func (e *Engine) validate(req Request) error {
	if req.Execute {
		if e.o.Execute == nil {
			return errors.New("admit: engine has no executor for an execute request")
		}
		return nil
	}
	if req.Demand <= 0 {
		return fmt.Errorf("admit: non-positive demand %d", req.Demand)
	}
	if err := req.Init.Validate(e.g); err != nil {
		return fmt.Errorf("admit: initial path: %w", err)
	}
	if err := req.Fin.Validate(e.g); err != nil {
		return fmt.Errorf("admit: final path: %w", err)
	}
	if req.Init.Source() != req.Fin.Source() || req.Init.Dest() != req.Fin.Dest() {
		return errors.New("admit: initial and final paths disagree on endpoints")
	}
	return nil
}

// preemptionVictim returns the queued update the submission may evict:
// the lowest-priority, youngest queued update — and only when its
// priority is strictly below the newcomer's. Callers hold e.mu.
func (e *Engine) preemptionVictim(priority int) *Update {
	var victim *Update
	for _, u := range e.queue {
		if victim == nil || u.Req.Priority < victim.Req.Priority ||
			(u.Req.Priority == victim.Req.Priority && u.ID > victim.ID) {
			victim = u
		}
	}
	if victim == nil || victim.Req.Priority >= priority {
		return nil
	}
	return victim
}

func (e *Engine) dropQueued(u *Update) {
	for i, q := range e.queue {
		if q == u {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			return
		}
	}
}

func (e *Engine) tenant(name string) *tenantStats {
	ts := e.tenants[name]
	if ts == nil {
		ts = &tenantStats{}
		e.tenants[name] = ts
	}
	return ts
}

func (e *Engine) trace(vt int64, name string, attrs ...obs.Attr) {
	if e.o.Trace != nil {
		e.o.Trace.Point(vt, name, attrs...)
	}
}

// View snapshots one update.
func (e *Engine) View(id uint64) (UpdateView, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	u, ok := e.updates[id]
	if !ok {
		return UpdateView{}, false
	}
	return e.viewLocked(u), true
}

func (e *Engine) viewLocked(u *Update) UpdateView {
	v := UpdateView{
		ID:            u.ID,
		Tenant:        u.Req.Tenant,
		Flow:          u.Req.Flow,
		Demand:        int64(u.Req.Demand),
		Priority:      u.Req.Priority,
		Method:        u.Req.Method,
		State:         string(u.State),
		Reason:        u.Reason,
		Span:          uint64(u.Span),
		Wave:          u.Wave,
		ComponentSize: u.ComponentSize,
		EnqueuedVT:    u.EnqueuedVT,
		PlannedVT:     u.PlannedVT,
		DoneVT:        u.DoneVT,
	}
	if u.PlannedVT > 0 || u.State != StateQueued {
		v.QueueWaitTicks = u.PlannedVT - u.EnqueuedVT
	}
	if u.Schedule != nil {
		v.Schedule = make(map[string]int64, len(u.Schedule.Times))
		for sw, tick := range u.Schedule.Times {
			v.Schedule[e.g.Name(sw)] = int64(tick)
		}
	}
	return v
}

// Wait blocks until the update reaches a terminal state (or, for Hold
// requests, until its capacity hold opens), draining planning waves
// while it waits: the first waiter becomes the wave coordinator and
// everyone else blocks on their update's transition — group commit.
func (e *Engine) Wait(ctx context.Context, id uint64) (UpdateView, error) {
	e.mu.Lock()
	u, ok := e.updates[id]
	e.mu.Unlock()
	if !ok {
		return UpdateView{}, fmt.Errorf("admit: no update %d", id)
	}
	for {
		if v, settled := e.settled(u); settled {
			return v, nil
		}
		select {
		case <-ctx.Done():
			return UpdateView{}, ctx.Err()
		default:
		}
		e.planMu.Lock()
		if v, settled := e.settled(u); settled {
			e.planMu.Unlock()
			return v, nil
		}
		progressed := e.planWaveLocked()
		e.planMu.Unlock()
		if !progressed {
			select {
			case <-u.done:
			case <-ctx.Done():
				return UpdateView{}, ctx.Err()
			}
		}
	}
}

// settled reports whether Wait may return: terminal state, or a held
// plan whose reservation is now open (its completion is the caller's).
func (e *Engine) settled(u *Update) (UpdateView, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if terminal(u.State) || (u.State == StateExecuting && u.Req.Hold) {
		return e.viewLocked(u), true
	}
	return UpdateView{}, false
}

// Drain plans waves until the queue is empty. It is the batch-mode
// pump the soak harness and tests use; the daemon drains through Wait.
func (e *Engine) Drain() {
	e.planMu.Lock()
	defer e.planMu.Unlock()
	for e.planWaveLocked() {
	}
}

// DrainOne plans at most one coalescing window and reports whether it
// made progress. Harnesses that interleave hold completion with wave
// planning (the soak generator) pump with this instead of Drain.
func (e *Engine) DrainOne() bool {
	e.planMu.Lock()
	defer e.planMu.Unlock()
	return e.planWaveLocked()
}

// ScheduleOf returns a copy of a planned update's timed schedule, for
// callers that execute or re-validate plans outside the engine.
func (e *Engine) ScheduleOf(id uint64) (*dynflow.Schedule, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	u, ok := e.updates[id]
	if !ok || u.Schedule == nil {
		return nil, false
	}
	return u.Schedule.Clone(), true
}

// Complete credits a held update's reservation and marks it done. It
// is a no-op for unknown ids and already-terminal updates.
func (e *Engine) Complete(id uint64) { e.finishHold(id, StateDone, "") }

// Fail credits a held update's reservation and marks it failed.
func (e *Engine) Fail(id uint64, reason string) { e.finishHold(id, StateFailed, reason) }

func (e *Engine) finishHold(id uint64, s State, reason string) {
	now := e.o.Now()
	e.mu.Lock()
	u, ok := e.updates[id]
	if !ok || terminal(u.State) {
		e.mu.Unlock()
		return
	}
	u.State = s
	u.Reason = reason
	u.DoneVT = now
	u.notify()
	e.mu.Unlock()
	e.ledger.Release(id)
	e.trace(now, "admit.complete", obs.A("id", id), obs.A("state", string(s)))
}
