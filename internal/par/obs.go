package par

import (
	"context"
	"time"

	"github.com/chronus-sdn/chronus/internal/obs"
)

// Meter holds the worker-pool instruments: completed-task and failure
// counters, an in-flight gauge (the live queue depth), and a wall-clock
// task-latency histogram. Meters observe wall time and are therefore
// outside the deterministic-trace contract; use them to watch harness
// throughput, not to reproduce runs.
type Meter struct {
	Tasks    *obs.Counter
	Failures *obs.Counter
	InFlight *obs.Gauge
	Latency  *obs.Histogram // seconds
}

// NewMeter registers the pool instruments on r (nil r yields a no-op
// meter, as does a nil *Meter).
func NewMeter(r *obs.Registry) *Meter {
	if r != nil {
		r.Help("chronus_par_tasks_total", "pool tasks completed")
		r.Help("chronus_par_task_failures_total", "pool tasks that returned an error")
		r.Help("chronus_par_inflight_tasks", "pool tasks currently executing")
		r.Help("chronus_par_task_latency_seconds", "wall-clock task latency")
	}
	return &Meter{
		Tasks:    r.Counter("chronus_par_tasks_total"),
		Failures: r.Counter("chronus_par_task_failures_total"),
		InFlight: r.Gauge("chronus_par_inflight_tasks"),
		Latency:  r.Histogram("chronus_par_task_latency_seconds", []float64{0.001, 0.01, 0.1, 0.5, 1, 5, 10, 60}),
	}
}

// Instrument wraps a task function so each invocation is tallied on m.
// A nil meter returns f unchanged, so uninstrumented pools pay nothing.
func Instrument[T any](m *Meter, f func(ctx context.Context, i int) (T, error)) func(ctx context.Context, i int) (T, error) {
	if m == nil {
		return f
	}
	return func(ctx context.Context, i int) (T, error) {
		m.InFlight.Add(1)
		start := time.Now()
		v, err := f(ctx, i)
		m.Latency.Observe(time.Since(start).Seconds())
		m.InFlight.Add(-1)
		m.Tasks.Inc()
		if err != nil {
			m.Failures.Inc()
		}
		return v, err
	}
}
