// Package par is the deterministic fan-out utility behind the parallel
// experiment harness: a bounded worker pool that runs n independent
// indexed tasks, collects their results in task order, propagates the
// first error, and honours context cancellation.
//
// Determinism contract: Map(ctx, procs, n, f) returns out with
// out[i] = f(ctx, i) for every i, regardless of procs and of the order
// in which workers happen to finish. A caller whose tasks are themselves
// deterministic (e.g. each derives its own seeded RNG) therefore gets
// byte-identical results at procs = 1 and procs = N; the only thing
// concurrency may change is wall-clock time.
package par

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Procs normalises a worker-count setting: values <= 0 mean "one worker
// per available CPU" (runtime.GOMAXPROCS(0)).
func Procs(procs int) int {
	if procs > 0 {
		return procs
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs f(ctx, i) for every i in [0, n) on at most procs concurrent
// workers and returns the results indexed by task. procs <= 0 selects
// runtime.GOMAXPROCS(0); procs == 1 executes the tasks sequentially in
// index order on the calling goroutine, which is the serial reference
// path.
//
// On failure the pool stops claiming new tasks, waits for in-flight
// tasks, and returns the error of the lowest-indexed failed task (so the
// reported error is as deterministic as the tasks themselves). Tasks
// skipped because of an earlier failure or a cancelled ctx are never
// started; their slots hold the zero value.
func Map[T any](ctx context.Context, procs, n int, f func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	procs = Procs(procs)
	if procs > n {
		procs = n
	}

	if procs == 1 {
		// Serial reference path: no goroutines, strict index order.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			v, err := f(ctx, i)
			if err != nil {
				return out, err
			}
			out[i] = v
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				v, err := f(ctx, i)
				if err != nil {
					errs[i] = err
					cancel() // stop claiming further tasks
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()

	// Lowest-indexed task failure wins; a bare cancellation of the parent
	// context (no task error anywhere) surfaces as ctx.Err().
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return out, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, ctx.Err()
}

// Do is Map for tasks without results.
func Do(ctx context.Context, procs, n int, f func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, procs, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, f(ctx, i)
	})
	return err
}
