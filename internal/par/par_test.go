package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedResults(t *testing.T) {
	for _, procs := range []int{1, 2, 7, 0} {
		out, err := Map(context.Background(), procs, 100, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("procs=%d: out[%d] = %d, want %d", procs, i, v, i*i)
			}
		}
	}
}

func TestMapDeterministicAcrossProcs(t *testing.T) {
	// Tasks that are pure functions of their index must yield identical
	// result slices at every worker count — the harness's core guarantee.
	run := func(procs int) []string {
		out, err := Map(context.Background(), procs, 64, func(_ context.Context, i int) (string, error) {
			return fmt.Sprintf("task-%03d", i*31%64), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, procs := range []int{2, 4, 16} {
		got := run(procs)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("procs=%d diverged at %d: %q != %q", procs, i, got[i], want[i])
			}
		}
	}
}

func TestMapBoundedWorkers(t *testing.T) {
	const procs = 3
	var active, peak atomic.Int64
	_, err := Map(context.Background(), procs, 50, func(_ context.Context, i int) (int, error) {
		n := active.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		active.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > procs {
		t.Fatalf("peak concurrency %d exceeds procs %d", p, procs)
	}
}

func TestMapFirstErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	for _, procs := range []int{1, 4} {
		_, err := Map(context.Background(), procs, 40, func(_ context.Context, i int) (int, error) {
			if i == 17 {
				return 0, fmt.Errorf("task %d: %w", i, boom)
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("procs=%d: err = %v, want %v", procs, err, boom)
		}
	}
}

func TestMapStopsClaimingAfterError(t *testing.T) {
	var started atomic.Int64
	boom := errors.New("boom")
	_, err := Map(context.Background(), 2, 10_000, func(_ context.Context, i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, boom
		}
		time.Sleep(100 * time.Microsecond)
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := started.Load(); n > 5_000 {
		t.Fatalf("%d tasks started after an immediate failure", n)
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	done := make(chan struct{})
	go func() {
		<-done
		cancel()
	}()
	_, err := Map(ctx, 2, 10_000, func(ctx context.Context, i int) (int, error) {
		if started.Add(1) == 1 {
			close(done)
			<-ctx.Done()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var started atomic.Int64
	_, err := Map(ctx, 1, 5, func(_ context.Context, i int) (int, error) {
		started.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if started.Load() != 0 {
		t.Fatalf("%d tasks ran under a cancelled context", started.Load())
	}
}

func TestMapZeroTasks(t *testing.T) {
	out, err := Map(context.Background(), 4, 0, func(_ context.Context, i int) (int, error) {
		t.Fatal("task ran")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("out = %v, err = %v", out, err)
	}
}

func TestDo(t *testing.T) {
	var sum atomic.Int64
	if err := Do(context.Background(), 4, 100, func(_ context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestProcsDefault(t *testing.T) {
	if got := Procs(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Procs(0) = %d", got)
	}
	if got := Procs(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Procs(-3) = %d", got)
	}
	if got := Procs(5); got != 5 {
		t.Fatalf("Procs(5) = %d", got)
	}
}
