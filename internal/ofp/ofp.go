// Package ofp defines a compact OpenFlow-style control protocol between the
// Chronus controller and switch agents: Hello, Echo, Features, FlowMod,
// Barrier, Stats and Error messages with a fixed 8-byte header and
// big-endian binary encoding over any stream transport.
//
// Two departures from stock OpenFlow matter for the paper:
//
//   - FlowMod carries an optional ExecuteAt timestamp — the timed-update
//     primitive of Time4/TimeFlip-style SDNs. A switch that receives a
//     timed FlowMod confirms it via the barrier immediately but applies it
//     when its local clock reaches ExecuteAt.
//   - Matches are exact (flow name + version tag), following the paper's
//     observation that wildcard rules are increasingly replaced by exact
//     matches.
package ofp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the protocol version byte.
const Version = 1

// MsgType identifies a message.
type MsgType uint8

// Message types.
const (
	TypeHello MsgType = iota + 1
	TypeEchoRequest
	TypeEchoReply
	TypeFeaturesRequest
	TypeFeaturesReply
	TypeFlowMod
	TypeBarrierRequest
	TypeBarrierReply
	TypeStatsRequest
	TypeStatsReply
	TypeError
	TypePacketIn
)

func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeEchoRequest:
		return "echo-request"
	case TypeEchoReply:
		return "echo-reply"
	case TypeFeaturesRequest:
		return "features-request"
	case TypeFeaturesReply:
		return "features-reply"
	case TypeFlowMod:
		return "flow-mod"
	case TypeBarrierRequest:
		return "barrier-request"
	case TypeBarrierReply:
		return "barrier-reply"
	case TypeStatsRequest:
		return "stats-request"
	case TypeStatsReply:
		return "stats-reply"
	case TypeError:
		return "error"
	case TypePacketIn:
		return "packet-in"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Msg is any protocol message.
type Msg interface {
	Type() MsgType
	// Xid returns the transaction ID correlating requests and replies.
	Xid() uint32
	encodeBody(w *writer)
	decodeBody(r *reader) error
}

// Header layout: version(1) type(1) length(2) xid(4); length covers the
// whole message including the header.
const headerLen = 8

// MaxMsgLen bounds a message; decoding larger announcements fails instead
// of allocating unboundedly.
const MaxMsgLen = 1 << 16

// Errors.
var (
	ErrBadVersion = errors.New("ofp: bad protocol version")
	ErrBadLength  = errors.New("ofp: bad message length")
	ErrBadType    = errors.New("ofp: unknown message type")
	ErrTruncated  = errors.New("ofp: truncated message")
)

// Encode serializes a message into a fresh buffer.
func Encode(m Msg) []byte {
	w := &writer{buf: make([]byte, headerLen, headerLen+32)}
	m.encodeBody(w)
	if len(w.buf) > MaxMsgLen {
		panic(fmt.Sprintf("ofp: message of %d bytes exceeds MaxMsgLen", len(w.buf)))
	}
	w.buf[0] = Version
	w.buf[1] = byte(m.Type())
	binary.BigEndian.PutUint16(w.buf[2:4], uint16(len(w.buf)))
	binary.BigEndian.PutUint32(w.buf[4:8], m.Xid())
	return w.buf
}

// Decode reads exactly one message from r.
func Decode(r io.Reader) (Msg, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrTruncated
		}
		return nil, err
	}
	if hdr[0] != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, hdr[0])
	}
	length := int(binary.BigEndian.Uint16(hdr[2:4]))
	if length < headerLen {
		return nil, fmt.Errorf("%w: %d", ErrBadLength, length)
	}
	body := make([]byte, length-headerLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, ErrTruncated
	}
	m, err := newByType(MsgType(hdr[1]))
	if err != nil {
		return nil, err
	}
	setXid(m, binary.BigEndian.Uint32(hdr[4:8]))
	rd := &reader{buf: body}
	if err := m.decodeBody(rd); err != nil {
		return nil, err
	}
	if rd.pos != len(rd.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadLength, len(rd.buf)-rd.pos)
	}
	return m, nil
}

func newByType(t MsgType) (Msg, error) {
	switch t {
	case TypeHello:
		return &Hello{}, nil
	case TypeEchoRequest:
		return &EchoRequest{}, nil
	case TypeEchoReply:
		return &EchoReply{}, nil
	case TypeFeaturesRequest:
		return &FeaturesRequest{}, nil
	case TypeFeaturesReply:
		return &FeaturesReply{}, nil
	case TypeFlowMod:
		return &FlowMod{}, nil
	case TypeBarrierRequest:
		return &BarrierRequest{}, nil
	case TypeBarrierReply:
		return &BarrierReply{}, nil
	case TypeStatsRequest:
		return &StatsRequest{}, nil
	case TypeStatsReply:
		return &StatsReply{}, nil
	case TypeError:
		return &ErrorMsg{}, nil
	case TypePacketIn:
		return &PacketIn{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadType, t)
	}
}

func setXid(m Msg, xid uint32) {
	switch v := m.(type) {
	case *Hello:
		v.XID = xid
	case *EchoRequest:
		v.XID = xid
	case *EchoReply:
		v.XID = xid
	case *FeaturesRequest:
		v.XID = xid
	case *FeaturesReply:
		v.XID = xid
	case *FlowMod:
		v.XID = xid
	case *BarrierRequest:
		v.XID = xid
	case *BarrierReply:
		v.XID = xid
	case *StatsRequest:
		v.XID = xid
	case *StatsReply:
		v.XID = xid
	case *ErrorMsg:
		v.XID = xid
	case *PacketIn:
		v.XID = xid
	}
}

// writer accumulates big-endian fields.
type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) str(s string) {
	if len(s) > 1<<12 {
		s = s[:1<<12]
	}
	w.u16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}

// reader consumes big-endian fields with bounds checking.
type reader struct {
	buf []byte
	pos int
}

func (r *reader) need(n int) error {
	if r.pos+n > len(r.buf) {
		return ErrTruncated
	}
	return nil
}

func (r *reader) u8() (uint8, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	v := r.buf[r.pos]
	r.pos++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(r.buf[r.pos:])
	r.pos += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v, nil
}

func (r *reader) i64() (int64, error) {
	v, err := r.u64()
	return int64(v), err
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}
