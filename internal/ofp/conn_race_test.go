package ofp

import (
	"net"
	"sync"
	"testing"

	"github.com/chronus-sdn/chronus/internal/obs"
)

// TestConnMeterConcurrent exercises the documented concurrency
// contract — Send safe from many goroutines, Recv from one, SetMeter
// at any time — with two connections sharing one meter, the shape
// chronusd uses (one meter aggregating every switch connection). The
// message counts are fixed, so under -race this is both a locking
// check and a deterministic accounting check.
func TestConnMeterConcurrent(t *testing.T) {
	reg := obs.NewRegistry()
	meter := NewConnMeter(reg)

	const senders = 4
	const perSender = 50
	msgBytes := int64(len(Encode(&BarrierRequest{XID: 1})))

	run := func() (*Conn, *Conn, func()) {
		a, b := net.Pipe()
		ca, cb := NewConn(a), NewConn(b)
		ca.SetMeter(meter)
		cb.SetMeter(meter)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < senders*perSender; i++ {
				if _, err := cb.Recv(); err != nil {
					t.Errorf("recv: %v", err)
					return
				}
			}
		}()
		var wg sync.WaitGroup
		for s := 0; s < senders; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := 0; i < perSender; i++ {
					if err := ca.Send(&BarrierRequest{XID: uint32(s*perSender + i)}); err != nil {
						t.Errorf("send: %v", err)
						return
					}
				}
			}(s)
		}
		return ca, cb, func() { wg.Wait(); <-done }
	}

	ca1, cb1, wait1 := run()
	ca2, cb2, wait2 := run()
	wait1()
	wait2()

	const total = 2 * senders * perSender
	if got := ca1.Stats().SentMsgs + ca2.Stats().SentMsgs; got != total {
		t.Errorf("sent msgs = %d, want %d", got, total)
	}
	if got := cb1.Stats().RecvMsgs + cb2.Stats().RecvMsgs; got != total {
		t.Errorf("recv msgs = %d, want %d", got, total)
	}
	if got := meter.SentMsgs.Value(); got != total {
		t.Errorf("meter sent msgs = %d, want %d", got, total)
	}
	if got := meter.RecvMsgs.Value(); got != total {
		t.Errorf("meter recv msgs = %d, want %d", got, total)
	}
	if got := meter.SentBytes.Value(); got != total*msgBytes {
		t.Errorf("meter sent bytes = %d, want %d", got, total*msgBytes)
	}
	if got := meter.RecvBytes.Value(); got != total*msgBytes {
		t.Errorf("meter recv bytes = %d, want %d", got, total*msgBytes)
	}
	for _, c := range []*Conn{ca1, cb1, ca2, cb2} {
		c.SetMeter(nil)
		c.Close()
	}
}
