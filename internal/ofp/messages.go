package ofp

import "fmt"

// Hello opens a session.
type Hello struct{ XID uint32 }

// Type implements Msg.
func (*Hello) Type() MsgType { return TypeHello }

// Xid implements Msg.
func (m *Hello) Xid() uint32              { return m.XID }
func (m *Hello) encodeBody(*writer)       {}
func (m *Hello) decodeBody(*reader) error { return nil }

// EchoRequest is a liveness probe carrying opaque payload.
type EchoRequest struct {
	XID     uint32
	Payload string
}

// Type implements Msg.
func (*EchoRequest) Type() MsgType { return TypeEchoRequest }

// Xid implements Msg.
func (m *EchoRequest) Xid() uint32          { return m.XID }
func (m *EchoRequest) encodeBody(w *writer) { w.str(m.Payload) }
func (m *EchoRequest) decodeBody(r *reader) error {
	var err error
	m.Payload, err = r.str()
	return err
}

// EchoReply answers an EchoRequest with the same payload.
type EchoReply struct {
	XID     uint32
	Payload string
}

// Type implements Msg.
func (*EchoReply) Type() MsgType { return TypeEchoReply }

// Xid implements Msg.
func (m *EchoReply) Xid() uint32          { return m.XID }
func (m *EchoReply) encodeBody(w *writer) { w.str(m.Payload) }
func (m *EchoReply) decodeBody(r *reader) error {
	var err error
	m.Payload, err = r.str()
	return err
}

// FeaturesRequest asks a switch for its identity.
type FeaturesRequest struct{ XID uint32 }

// Type implements Msg.
func (*FeaturesRequest) Type() MsgType { return TypeFeaturesRequest }

// Xid implements Msg.
func (m *FeaturesRequest) Xid() uint32              { return m.XID }
func (m *FeaturesRequest) encodeBody(*writer)       {}
func (m *FeaturesRequest) decodeBody(*reader) error { return nil }

// FeaturesReply identifies a switch.
type FeaturesReply struct {
	XID        uint32
	DatapathID uint64
	Name       string
	// TimedUpdates advertises support for FlowMod.ExecuteAt (the Time4
	// capability Chronus requires).
	TimedUpdates bool
}

// Type implements Msg.
func (*FeaturesReply) Type() MsgType { return TypeFeaturesReply }

// Xid implements Msg.
func (m *FeaturesReply) Xid() uint32 { return m.XID }
func (m *FeaturesReply) encodeBody(w *writer) {
	w.u64(m.DatapathID)
	w.str(m.Name)
	if m.TimedUpdates {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (m *FeaturesReply) decodeBody(r *reader) error {
	var err error
	if m.DatapathID, err = r.u64(); err != nil {
		return err
	}
	if m.Name, err = r.str(); err != nil {
		return err
	}
	b, err := r.u8()
	if err != nil {
		return err
	}
	m.TimedUpdates = b != 0
	return nil
}

// FlowModCommand selects the table operation.
type FlowModCommand uint8

// FlowMod commands.
const (
	FlowAdd FlowModCommand = iota + 1
	FlowModify
	FlowDelete
)

func (c FlowModCommand) String() string {
	switch c {
	case FlowAdd:
		return "add"
	case FlowModify:
		return "modify"
	case FlowDelete:
		return "delete"
	default:
		return fmt.Sprintf("FlowModCommand(%d)", uint8(c))
	}
}

// ActionKind selects what a rule does.
type ActionKind uint8

// Action kinds.
const (
	ActionOutput ActionKind = iota + 1
	ActionToHost
)

// FlowMod installs, modifies or deletes the exact-match entry for
// (Flow, Tag). ExecuteAt > 0 schedules the application at the switch's
// local clock reading ExecuteAt (timed update); 0 means immediate.
type FlowMod struct {
	XID       uint32
	Command   FlowModCommand
	Flow      string
	Tag       uint16
	Action    ActionKind
	NextHop   int32
	ExecuteAt int64
}

// Type implements Msg.
func (*FlowMod) Type() MsgType { return TypeFlowMod }

// Xid implements Msg.
func (m *FlowMod) Xid() uint32 { return m.XID }
func (m *FlowMod) encodeBody(w *writer) {
	w.u8(uint8(m.Command))
	w.str(m.Flow)
	w.u16(m.Tag)
	w.u8(uint8(m.Action))
	w.u32(uint32(m.NextHop))
	w.i64(m.ExecuteAt)
}
func (m *FlowMod) decodeBody(r *reader) error {
	c, err := r.u8()
	if err != nil {
		return err
	}
	m.Command = FlowModCommand(c)
	if m.Flow, err = r.str(); err != nil {
		return err
	}
	if m.Tag, err = r.u16(); err != nil {
		return err
	}
	a, err := r.u8()
	if err != nil {
		return err
	}
	m.Action = ActionKind(a)
	nh, err := r.u32()
	if err != nil {
		return err
	}
	m.NextHop = int32(nh)
	m.ExecuteAt, err = r.i64()
	return err
}

// BarrierRequest asks the switch to confirm that all preceding messages
// have been processed (timed FlowMods count as processed once scheduled).
type BarrierRequest struct{ XID uint32 }

// Type implements Msg.
func (*BarrierRequest) Type() MsgType { return TypeBarrierRequest }

// Xid implements Msg.
func (m *BarrierRequest) Xid() uint32              { return m.XID }
func (m *BarrierRequest) encodeBody(*writer)       {}
func (m *BarrierRequest) decodeBody(*reader) error { return nil }

// BarrierReply confirms a BarrierRequest.
type BarrierReply struct{ XID uint32 }

// Type implements Msg.
func (*BarrierReply) Type() MsgType { return TypeBarrierReply }

// Xid implements Msg.
func (m *BarrierReply) Xid() uint32              { return m.XID }
func (m *BarrierReply) encodeBody(*writer)       {}
func (m *BarrierReply) decodeBody(*reader) error { return nil }

// StatsKind selects the statistics subject.
type StatsKind uint8

// Stats kinds.
const (
	StatsPorts StatsKind = iota + 1
	StatsFlows
)

// StatsRequest asks for counters.
type StatsRequest struct {
	XID  uint32
	Kind StatsKind
}

// Type implements Msg.
func (*StatsRequest) Type() MsgType { return TypeStatsRequest }

// Xid implements Msg.
func (m *StatsRequest) Xid() uint32          { return m.XID }
func (m *StatsRequest) encodeBody(w *writer) { w.u8(uint8(m.Kind)) }
func (m *StatsRequest) decodeBody(r *reader) error {
	k, err := r.u8()
	m.Kind = StatsKind(k)
	return err
}

// PortStat reports the byte counter of one egress port (identified by the
// neighbour switch it leads to).
type PortStat struct {
	PeerID uint32
	Bytes  uint64
}

// FlowStat reports the byte counter of one flow-table entry.
type FlowStat struct {
	Flow  string
	Tag   uint16
	Bytes uint64
}

// StatsReply answers a StatsRequest.
type StatsReply struct {
	XID   uint32
	Kind  StatsKind
	Ports []PortStat
	Flows []FlowStat
}

// Type implements Msg.
func (*StatsReply) Type() MsgType { return TypeStatsReply }

// Xid implements Msg.
func (m *StatsReply) Xid() uint32 { return m.XID }
func (m *StatsReply) encodeBody(w *writer) {
	w.u8(uint8(m.Kind))
	w.u16(uint16(len(m.Ports)))
	for _, p := range m.Ports {
		w.u32(p.PeerID)
		w.u64(p.Bytes)
	}
	w.u16(uint16(len(m.Flows)))
	for _, f := range m.Flows {
		w.str(f.Flow)
		w.u16(f.Tag)
		w.u64(f.Bytes)
	}
}
func (m *StatsReply) decodeBody(r *reader) error {
	k, err := r.u8()
	if err != nil {
		return err
	}
	m.Kind = StatsKind(k)
	np, err := r.u16()
	if err != nil {
		return err
	}
	for i := 0; i < int(np); i++ {
		var p PortStat
		if p.PeerID, err = r.u32(); err != nil {
			return err
		}
		if p.Bytes, err = r.u64(); err != nil {
			return err
		}
		m.Ports = append(m.Ports, p)
	}
	nf, err := r.u16()
	if err != nil {
		return err
	}
	for i := 0; i < int(nf); i++ {
		var f FlowStat
		if f.Flow, err = r.str(); err != nil {
			return err
		}
		if f.Tag, err = r.u16(); err != nil {
			return err
		}
		if f.Bytes, err = r.u64(); err != nil {
			return err
		}
		m.Flows = append(m.Flows, f)
	}
	return nil
}

// ErrorCode classifies protocol errors.
type ErrorCode uint16

// Error codes.
const (
	ErrCodeBadRequest ErrorCode = iota + 1
	ErrCodeBadFlowMod
	ErrCodeUnsupported
)

// ErrorMsg reports a protocol-level failure for the message with the same
// transaction ID.
type ErrorMsg struct {
	XID     uint32
	Code    ErrorCode
	Message string
}

// Type implements Msg.
func (*ErrorMsg) Type() MsgType { return TypeError }

// Xid implements Msg.
func (m *ErrorMsg) Xid() uint32 { return m.XID }
func (m *ErrorMsg) encodeBody(w *writer) {
	w.u16(uint16(m.Code))
	w.str(m.Message)
}
func (m *ErrorMsg) decodeBody(r *reader) error {
	c, err := r.u16()
	if err != nil {
		return err
	}
	m.Code = ErrorCode(c)
	m.Message, err = r.str()
	return err
}

// PacketInReason classifies why a switch punted to the controller.
type PacketInReason uint8

// PacketIn reasons.
const (
	// ReasonNoMatch: traffic arrived with no matching flow-table entry.
	ReasonNoMatch PacketInReason = iota + 1
	// ReasonTTLExpired: traffic was dropped after its hop budget ran out
	// (a forwarding loop in the data plane).
	ReasonTTLExpired
)

// PacketIn notifies the controller that a switch is dropping traffic: the
// asynchronous switch-to-controller path of OpenFlow, used here to surface
// blackholes and loops the moment they appear.
type PacketIn struct {
	XID      uint32
	SwitchID uint32
	Flow     string
	Tag      uint16
	Reason   PacketInReason
}

// Type implements Msg.
func (*PacketIn) Type() MsgType { return TypePacketIn }

// Xid implements Msg.
func (m *PacketIn) Xid() uint32 { return m.XID }
func (m *PacketIn) encodeBody(w *writer) {
	w.u32(m.SwitchID)
	w.str(m.Flow)
	w.u16(m.Tag)
	w.u8(uint8(m.Reason))
}
func (m *PacketIn) decodeBody(r *reader) error {
	var err error
	if m.SwitchID, err = r.u32(); err != nil {
		return err
	}
	if m.Flow, err = r.str(); err != nil {
		return err
	}
	if m.Tag, err = r.u16(); err != nil {
		return err
	}
	b, err := r.u8()
	m.Reason = PacketInReason(b)
	return err
}
