package ofp

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, m Msg) Msg {
	t.Helper()
	buf := Encode(m)
	got, err := Decode(bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("decode %v: %v", m.Type(), err)
	}
	return got
}

func TestRoundTripAllTypes(t *testing.T) {
	msgs := []Msg{
		&Hello{XID: 1},
		&EchoRequest{XID: 2, Payload: "ping"},
		&EchoReply{XID: 3, Payload: "pong"},
		&FeaturesRequest{XID: 4},
		&FeaturesReply{XID: 5, DatapathID: 0xDEADBEEF, Name: "R7", TimedUpdates: true},
		&FlowMod{XID: 6, Command: FlowModify, Flow: "f0", Tag: 2, Action: ActionOutput, NextHop: 9, ExecuteAt: 123456},
		&FlowMod{XID: 7, Command: FlowAdd, Flow: "f1", Tag: 0, Action: ActionToHost, NextHop: -1, ExecuteAt: 0},
		&BarrierRequest{XID: 8},
		&BarrierReply{XID: 9},
		&StatsRequest{XID: 10, Kind: StatsPorts},
		&StatsReply{XID: 11, Kind: StatsPorts,
			Ports: []PortStat{{PeerID: 3, Bytes: 999}, {PeerID: 4, Bytes: 0}},
		},
		&StatsReply{XID: 12, Kind: StatsFlows,
			Flows: []FlowStat{{Flow: "f0", Tag: 1, Bytes: 42}},
		},
		&ErrorMsg{XID: 13, Code: ErrCodeBadFlowMod, Message: "no such port"},
		&PacketIn{XID: 14, SwitchID: 4, Flow: "f0", Tag: 3, Reason: ReasonTTLExpired},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%v: round trip mismatch:\n  sent %+v\n  got  %+v", m.Type(), m, got)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	// Bad version.
	buf := Encode(&Hello{XID: 1})
	buf[0] = 99
	if _, err := Decode(bytes.NewReader(buf)); err == nil {
		t.Fatal("bad version accepted")
	}
	// Bad type.
	buf = Encode(&Hello{XID: 1})
	buf[1] = 200
	if _, err := Decode(bytes.NewReader(buf)); err == nil {
		t.Fatal("bad type accepted")
	}
	// Length below header size.
	buf = Encode(&Hello{XID: 1})
	buf[2], buf[3] = 0, 4
	if _, err := Decode(bytes.NewReader(buf)); err == nil {
		t.Fatal("short length accepted")
	}
	// Truncated stream.
	buf = Encode(&FlowMod{XID: 2, Command: FlowAdd, Flow: "abcdef", Action: ActionOutput})
	if _, err := Decode(bytes.NewReader(buf[:len(buf)-3])); err == nil {
		t.Fatal("truncated message accepted")
	}
	// Trailing garbage inside the declared length.
	buf = Encode(&Hello{XID: 3})
	buf = append(buf, 0xFF)
	buf[3] += 1
	if _, err := Decode(bytes.NewReader(buf)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// EOF on empty stream surfaces as io.EOF, not a panic.
	if _, err := Decode(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestBackToBackMessages(t *testing.T) {
	var stream bytes.Buffer
	sent := []Msg{
		&Hello{XID: 1},
		&FlowMod{XID: 2, Command: FlowModify, Flow: "x", Tag: 7, Action: ActionOutput, NextHop: 3, ExecuteAt: -5},
		&BarrierRequest{XID: 3},
	}
	for _, m := range sent {
		stream.Write(Encode(m))
	}
	for i, want := range sent {
		got, err := Decode(&stream)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("message %d mismatch", i)
		}
	}
}

// TestFlowModRoundTripProperty fuzzes FlowMod fields through the codec.
func TestFlowModRoundTripProperty(t *testing.T) {
	f := func(xid uint32, cmd uint8, flow string, tag uint16, action uint8, nh int32, at int64) bool {
		if len(flow) > 1<<12 {
			flow = flow[:1<<12]
		}
		m := &FlowMod{
			XID:       xid,
			Command:   FlowModCommand(cmd),
			Flow:      flow,
			Tag:       tag,
			Action:    ActionKind(action),
			NextHop:   nh,
			ExecuteAt: at,
		}
		got, err := Decode(bytes.NewReader(Encode(m)))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConnOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		conn := NewConn(c)
		defer conn.Close()
		for {
			m, err := conn.Recv()
			if err != nil {
				done <- nil // client closed
				return
			}
			switch req := m.(type) {
			case *EchoRequest:
				if err := conn.Send(&EchoReply{XID: req.XID, Payload: req.Payload}); err != nil {
					done <- err
					return
				}
			case *BarrierRequest:
				if err := conn.Send(&BarrierReply{XID: req.XID}); err != nil {
					done <- err
					return
				}
			}
		}
	}()

	conn, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(&EchoRequest{XID: 7, Payload: "hi"}); err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(&BarrierRequest{XID: 8}); err != nil {
		t.Fatal(err)
	}
	m1, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := m1.(*EchoReply); !ok || r.XID != 7 || r.Payload != "hi" {
		t.Fatalf("reply 1 = %+v", m1)
	}
	m2, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := m2.(*BarrierReply); !ok || r.XID != 8 {
		t.Fatalf("reply 2 = %+v", m2)
	}
	conn.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestDecodeNeverPanicsOnGarbage: random byte streams either decode into a
// valid message or fail with an error — never a panic or unbounded alloc.
func TestDecodeNeverPanicsOnGarbage(t *testing.T) {
	f := func(raw []byte) bool {
		_, _ = Decode(bytes.NewReader(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Adversarial header: valid version/type but huge declared length with
	// a short body.
	hdr := Encode(&Hello{XID: 1})
	hdr[2], hdr[3] = 0xFF, 0xFF
	if _, err := Decode(bytes.NewReader(hdr)); err == nil {
		t.Fatal("oversized declared length accepted")
	}
}

// TestDecodeValidHeaderRandomBody: random bodies under each valid type
// never panic.
func TestDecodeValidHeaderRandomBody(t *testing.T) {
	f := func(typ uint8, body []byte) bool {
		if len(body) > 1024 {
			body = body[:1024]
		}
		msg := make([]byte, 8+len(body))
		msg[0] = Version
		msg[1] = 1 + typ%12
		msg[2] = byte(len(msg) >> 8)
		msg[3] = byte(len(msg))
		copy(msg[8:], body)
		_, _ = Decode(bytes.NewReader(msg))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
