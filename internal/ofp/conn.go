package ofp

import (
	"bufio"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/chronus-sdn/chronus/internal/obs"
)

// Conn is a message-oriented view of a stream transport. It tallies
// sent/received messages and bytes; Stats reads the tallies, and
// SetMeter optionally mirrors them into registry counters.
type Conn struct {
	rw     io.ReadWriteCloser
	br     *bufio.Reader
	cr     countingReader
	sendMu sync.Mutex

	sentMsgs, sentBytes atomic.Int64
	recvMsgs, recvBytes atomic.Int64

	meterMu sync.Mutex
	meter   *ConnMeter
}

// ConnStats is a snapshot of a connection's message and byte tallies.
type ConnStats struct {
	SentMsgs, SentBytes int64
	RecvMsgs, RecvBytes int64
}

// ConnMeter holds registry counters mirroring a connection's traffic;
// any field may be nil. Several connections may share one meter, which
// then aggregates across them.
type ConnMeter struct {
	SentMsgs, SentBytes *obs.Counter
	RecvMsgs, RecvBytes *obs.Counter
}

// NewConnMeter registers the four ofp connection counters on r (nil r
// yields a no-op meter).
func NewConnMeter(r *obs.Registry) *ConnMeter {
	if r != nil {
		r.Help("chronus_ofp_messages_total", "ofp messages by direction")
		r.Help("chronus_ofp_bytes_total", "ofp bytes by direction")
	}
	return &ConnMeter{
		SentMsgs:  r.Counter(`chronus_ofp_messages_total{dir="sent"}`),
		SentBytes: r.Counter(`chronus_ofp_bytes_total{dir="sent"}`),
		RecvMsgs:  r.Counter(`chronus_ofp_messages_total{dir="received"}`),
		RecvBytes: r.Counter(`chronus_ofp_bytes_total{dir="received"}`),
	}
}

// countingReader counts the bytes Decode actually consumes (the
// underlying bufio.Reader may buffer ahead; buffered-but-unread bytes
// are not counted).
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// NewConn wraps a stream (typically a net.Conn) with the codec. Reads are
// buffered; writes are whole-message and serialized, so Send is safe for
// concurrent use. Recv must be called from a single goroutine.
func NewConn(rw io.ReadWriteCloser) *Conn {
	c := &Conn{rw: rw, br: bufio.NewReader(rw)}
	c.cr = countingReader{r: c.br, n: &c.recvBytes}
	return c
}

// Dial connects to a controller or switch agent over TCP. It blocks for
// as long as the OS-level connect does; use DialTimeout against peers
// that may be unresponsive.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

// DialTimeout connects like Dial but gives up after timeout (zero or
// negative means no limit).
func DialTimeout(addr string, timeout time.Duration) (*Conn, error) {
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

// SetMeter mirrors the connection's tallies into registry counters from
// now on (past traffic is not backfilled). nil detaches the meter.
func (c *Conn) SetMeter(m *ConnMeter) {
	c.meterMu.Lock()
	c.meter = m
	c.meterMu.Unlock()
}

func (c *Conn) meterSnapshot() *ConnMeter {
	c.meterMu.Lock()
	m := c.meter
	c.meterMu.Unlock()
	return m
}

// Stats returns the connection's current tallies.
func (c *Conn) Stats() ConnStats {
	return ConnStats{
		SentMsgs:  c.sentMsgs.Load(),
		SentBytes: c.sentBytes.Load(),
		RecvMsgs:  c.recvMsgs.Load(),
		RecvBytes: c.recvBytes.Load(),
	}
}

// Send encodes and writes one message.
func (c *Conn) Send(m Msg) error {
	buf := Encode(m)
	c.sendMu.Lock()
	_, err := c.rw.Write(buf)
	c.sendMu.Unlock()
	if err != nil {
		return err
	}
	c.sentMsgs.Add(1)
	c.sentBytes.Add(int64(len(buf)))
	if mt := c.meterSnapshot(); mt != nil {
		mt.SentMsgs.Inc()
		mt.SentBytes.Add(int64(len(buf)))
	}
	return nil
}

// Recv reads and decodes one message.
func (c *Conn) Recv() (Msg, error) {
	before := c.recvBytes.Load()
	m, err := Decode(c.cr)
	if err != nil {
		return nil, err
	}
	c.recvMsgs.Add(1)
	if mt := c.meterSnapshot(); mt != nil {
		mt.RecvMsgs.Inc()
		mt.RecvBytes.Add(c.recvBytes.Load() - before)
	}
	return m, nil
}

// Close closes the transport.
func (c *Conn) Close() error { return c.rw.Close() }
