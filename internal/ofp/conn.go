package ofp

import (
	"bufio"
	"io"
	"net"
	"sync"
)

// Conn is a message-oriented view of a stream transport.
type Conn struct {
	rw     io.ReadWriteCloser
	br     *bufio.Reader
	sendMu sync.Mutex
}

// NewConn wraps a stream (typically a net.Conn) with the codec. Reads are
// buffered; writes are whole-message and serialized, so Send is safe for
// concurrent use. Recv must be called from a single goroutine.
func NewConn(rw io.ReadWriteCloser) *Conn {
	return &Conn{rw: rw, br: bufio.NewReader(rw)}
}

// Dial connects to a controller or switch agent over TCP.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

// Send encodes and writes one message.
func (c *Conn) Send(m Msg) error {
	buf := Encode(m)
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	_, err := c.rw.Write(buf)
	return err
}

// Recv reads and decodes one message.
func (c *Conn) Recv() (Msg, error) {
	return Decode(c.br)
}

// Close closes the transport.
func (c *Conn) Close() error { return c.rw.Close() }
