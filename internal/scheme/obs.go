package scheme

import (
	"errors"
	"fmt"

	"github.com/chronus-sdn/chronus/internal/obs"
)

// RegisterMetrics pre-registers the scheme-labelled solve family for every
// registered scheme, so scrapes show the full cast at zero before the
// first solve.
func RegisterMetrics(r *obs.Registry) {
	r.Help("chronus_scheme_solve_total", "Registry-driven solves by scheme and outcome (ok, best_effort, infeasible, unsupported, error).")
	for _, name := range Names() {
		r.Counter(fmt.Sprintf(`chronus_scheme_solve_total{scheme=%q,outcome="ok"}`, name))
	}
	r.Help("chronus_solver_cache_hits_total", "Solver precomputation cache hits by cache (tracer, precomp, plan).")
	r.Help("chronus_solver_cache_misses_total", "Solver precomputation cache misses by cache (tracer, precomp, plan).")
	r.Counter(`chronus_solver_cache_hits_total{cache="plan"}`)
	r.Counter(`chronus_solver_cache_misses_total{cache="plan"}`)
}

// outcomeOf collapses a solve's (result, error) pair into the metric label.
func outcomeOf(res *Result, err error) string {
	switch {
	case errors.Is(err, ErrInfeasible):
		return "infeasible"
	case errors.Is(err, ErrUnsupported):
		return "unsupported"
	case err != nil:
		return "error"
	case res != nil && res.BestEffort:
		return "best_effort"
	default:
		return "ok"
	}
}

func observe(r *obs.Registry, name string, res *Result, err error) {
	if r == nil {
		return
	}
	r.Counter(fmt.Sprintf(`chronus_scheme_solve_total{scheme=%q,outcome=%q}`, name, outcomeOf(res, err))).Inc()
}
