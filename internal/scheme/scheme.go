// Package scheme unifies the solver stack behind one pluggable interface:
// every update strategy — the Chronus greedy scheduler in both acceptance
// modes, the exact branch-and-bound OPT baseline, order-replacement rounds,
// the naive one-shot flip, the polynomial tree feasibility check, and the
// drain-paced sequential baseline — registers itself here under a stable
// name and is driven through the same Solve signature.
//
// Consumers (cmd/mutp, cmd/chronusd, the experiment harness, batch
// composition, the public facade) look schemes up by name instead of
// switching over engine-specific call sites, so adding a new update
// strategy is one Register call in one file: implement Scheme, register it
// in an init, and every CLI flag, REST endpoint, experiment cast and batch
// option picks it up.
//
// The result model is deliberately wide rather than lowest-common-
// denominator: timed schemes fill Schedule, round-based schemes fill
// Rounds, decision procedures fill Feasible, and search-based schemes
// annotate Exact and Diagnostics. Callers dispatch on the shape of the
// result (never on the scheme's name), which keeps them closed under new
// registrations.
package scheme

import (
	"errors"
	"time"

	"github.com/chronus-sdn/chronus/internal/core"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/obs"
)

// Budget bounds the work a scheme may spend. Schemes ignore the knobs that
// do not apply to them: the greedy engines only honor MaxTicks, the
// branch-and-bound engines only MaxNodes and Timeout.
type Budget struct {
	// MaxNodes caps search nodes for branch-and-bound schemes
	// (0 = engine default). For the "or" scheme a non-zero MaxNodes (or
	// Timeout) selects the round-minimizing search instead of the greedy
	// round construction.
	MaxNodes int
	// Timeout bounds wall-clock search time (0 = none). Exceeding it
	// behaves like node exhaustion: the best incumbent is returned with
	// "budget_exhausted" set in Diagnostics.
	Timeout time.Duration
	// MaxTicks caps how far the greedy schedulers may advance past Start
	// (0 = automatic bound derived from the instance's drain time).
	MaxTicks dynflow.Tick
}

// Options is the uniform configuration every scheme accepts.
type Options struct {
	// Start is t0, the first tick at which updates may activate.
	Start dynflow.Tick
	// Budget bounds the scheme's work; the zero value means engine
	// defaults everywhere.
	Budget Budget
	// BestEffort asks for a complete schedule even when no violation-free
	// one exists; the Result's BestEffort flag is then set and its Report
	// carries the damage. Schemes without a best-effort notion ignore it.
	BestEffort bool
	// Obs receives engine counters; nil disables instrumentation.
	Obs *obs.Registry
	// Trace receives per-decision engine events; nil disables tracing.
	Trace *obs.Tracer
	// VT is the virtual time stamped on the solve span (schemes run
	// outside the sim clock, so the caller supplies the coordinate).
	VT int64
	// Span is the parent span the solve span is recorded under (zero
	// for a root); only meaningful when Trace is set.
	Span obs.SpanID
	// NoCache disables the cross-request plan cache and the engines'
	// precomputation caches for this solve: the engine runs from scratch.
	// Pooled workspaces stay in use — pooling never changes results.
	NoCache bool
}

// Diagnostics carries scheme-specific counters (search nodes, validator
// runs, budget exhaustion) under stable snake_case keys.
type Diagnostics map[string]int64

// Result is the uniform outcome of a Solve. Exactly which fields are set
// depends on the kind of scheme:
//
//   - timed schemes (chronus, chronus-fast, opt, oneshot, sequential) set
//     Schedule; Report may additionally hold a validation when the engine
//     produced one as a side effect;
//   - round-based schemes (or) set Rounds and leave Schedule nil — replay
//     the rounds on the validator via baseline.ORSchedule to study their
//     transients;
//   - decision procedures (tree) set Feasible, plus a witness update order
//     in Rounds when the instance is feasible.
//
// A nil Schedule with nil Rounds and nil Feasible means a search budget
// ran out before anything was found ("budget_exhausted" is then set in
// Diagnostics); that is not a proof of infeasibility, which is instead
// reported as ErrInfeasible.
type Result struct {
	// Schedule is the timed update schedule, when the scheme produces one.
	Schedule *dynflow.Schedule
	// Rounds is the round sequence of round-based schemes, or the witness
	// crossing order of a feasible tree decision.
	Rounds [][]graph.NodeID
	// Report is the engine's own validation of Schedule, when it computed
	// one; nil means the caller should run dynflow.Validate for the
	// certificate.
	Report *dynflow.Report
	// Exact is true when the result is provably optimal (opt, or with
	// budget to spare) or the decision is proven (tree).
	Exact bool
	// BestEffort marks a complete-but-possibly-violating schedule: the
	// greedy scheduler got stuck and flipped the stragglers, or the scheme
	// (oneshot) knowingly ignores transient consistency. Report then
	// carries the violations.
	BestEffort bool
	// Feasible is the verdict of decision-only schemes; nil for schemes
	// that construct solutions.
	Feasible *bool
	// Diagnostics holds engine counters; may be nil.
	Diagnostics Diagnostics
}

// Scheme is one update strategy.
type Scheme interface {
	// Name is the stable registry key (also the CLI and REST spelling).
	Name() string
	// Solve computes the scheme's result for the instance. It returns
	// ErrInfeasible (possibly wrapped) when the instance provably admits
	// no solution of the scheme's kind, and ErrUnsupported when the
	// instance violates a precondition of the scheme (e.g. non-uniform
	// delays for the tree check).
	Solve(in *dynflow.Instance, o Options) (*Result, error)
}

// ErrInfeasible reports proven infeasibility; it is the core scheduler's
// sentinel so existing errors.Is checks keep working across the stack.
var ErrInfeasible = core.ErrInfeasible

// ErrUnsupported reports that the instance violates a structural
// precondition of the scheme (the scheme, not the instance, is the wrong
// tool); callers iterating several schemes typically skip and move on.
var ErrUnsupported = errors.New("scheme: instance not supported by this scheme")

// infeasibleError marks an engine-specific error as infeasibility without
// flattening its message: errors.Is sees both the original error and
// ErrInfeasible.
type infeasibleError struct{ err error }

func (e infeasibleError) Error() string   { return e.err.Error() }
func (e infeasibleError) Unwrap() []error { return []error{e.err, ErrInfeasible} }

// unsupportedError marks an engine-specific precondition failure as
// ErrUnsupported while preserving the original error for errors.Is.
type unsupportedError struct{ err error }

func (e unsupportedError) Error() string   { return e.err.Error() }
func (e unsupportedError) Unwrap() []error { return []error{e.err, ErrUnsupported} }
