package scheme

import (
	"errors"

	"github.com/chronus-sdn/chronus/internal/baseline"
	"github.com/chronus-sdn/chronus/internal/core"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/opt"
)

// The built-in cast: both greedy acceptance modes, the exact search, the
// order-replacement and one-shot baselines, the tree decision procedure,
// and the drain-paced sequential baseline. Each is one value registered in
// one place; everything else in the repository discovers them by name.
func init() {
	Register(greedyScheme{name: "chronus", mode: core.ModeExact})
	Register(greedyScheme{name: "chronus-fast", mode: core.ModeFast})
	Register(optScheme{})
	Register(orScheme{})
	Register(oneshotScheme{})
	Register(treeScheme{})
	Register(sequentialScheme{})
}

// greedyScheme adapts core.Greedy (Algorithm 2) in either acceptance mode.
type greedyScheme struct {
	name string
	mode core.Mode
}

func (g greedyScheme) Name() string { return g.name }

func (g greedyScheme) Solve(in *dynflow.Instance, o Options) (*Result, error) {
	res, err := core.Greedy(in, core.Options{
		Start:      o.Start,
		Mode:       g.mode,
		MaxTicks:   o.Budget.MaxTicks,
		BestEffort: o.BestEffort,
		Obs:        o.Obs,
		Trace:      o.Trace,
		NoCache:    o.NoCache,
	})
	if err != nil {
		return nil, err
	}
	diag := Diagnostics{
		"ticks_used":        int64(res.TicksUsed),
		"validations":       int64(res.Validations),
		"dependency_cycles": int64(res.DependencyCycles),
	}
	// The greedy engines honor only MaxTicks; flag the budget knobs the
	// caller set that had no effect, so a timeout on chronus/chronus-fast
	// is visibly ignored instead of silently dropped.
	if o.Budget.Timeout > 0 {
		diag["budget_knob_ignored:timeout"] = 1
	}
	if o.Budget.MaxNodes > 0 {
		diag["budget_knob_ignored:max_nodes"] = 1
	}
	return &Result{
		Schedule:    res.Schedule,
		Report:      res.Report,
		BestEffort:  res.BestEffort,
		Diagnostics: diag,
	}, nil
}

// optScheme adapts the branch-and-bound exact search (the paper's OPT).
type optScheme struct{}

func (optScheme) Name() string { return "opt" }

func (optScheme) Solve(in *dynflow.Instance, o Options) (*Result, error) {
	res, err := opt.Exact(in, opt.Options{
		Start:    o.Start,
		MaxNodes: o.Budget.MaxNodes,
		Timeout:  o.Budget.Timeout,
	})
	if err != nil {
		return nil, err
	}
	diag := Diagnostics{"nodes": int64(res.Nodes)}
	switch res.Status {
	case opt.StatusInfeasible:
		return nil, infeasibleError{errors.New("opt: no schedule within the makespan cap")}
	case opt.StatusOptimal:
		return &Result{Schedule: res.Schedule, Exact: true, Diagnostics: diag}, nil
	default: // StatusBudget: the incumbent (possibly none) with the budget flag.
		diag["budget_exhausted"] = 1
		return &Result{Schedule: res.Schedule, Diagnostics: diag}, nil
	}
}

// orScheme adapts order replacement. Without a budget it builds rounds
// greedily; with Budget.MaxNodes or Budget.Timeout set it runs the
// round-minimizing search. Rounds are time-oblivious by design, so the
// result carries Rounds and no Schedule — replay them through
// baseline.ORSchedule to study their timed transients.
type orScheme struct{}

func (orScheme) Name() string { return "or" }

func (orScheme) Solve(in *dynflow.Instance, o Options) (*Result, error) {
	if o.Budget.MaxNodes > 0 || o.Budget.Timeout > 0 {
		res, err := baseline.OROptimal(in, baseline.OROptions{MaxNodes: o.Budget.MaxNodes, Timeout: o.Budget.Timeout})
		if err != nil {
			return nil, orErr(err)
		}
		diag := Diagnostics{"nodes": int64(res.Nodes)}
		if !res.Exact {
			diag["budget_exhausted"] = 1
		}
		return &Result{Rounds: res.Rounds, Exact: res.Exact, Diagnostics: diag}, nil
	}
	rounds, err := baseline.ORGreedy(in)
	if err != nil {
		return nil, orErr(err)
	}
	return &Result{Rounds: rounds}, nil
}

// orErr marks a stuck round construction as infeasibility (for OR's notion
// of a solution) while keeping the baseline error visible to errors.Is.
func orErr(err error) error {
	if errors.Is(err, baseline.ErrNoOrder) {
		return infeasibleError{err}
	}
	return err
}

// oneshotScheme flips every switch of the update set at once — the naive
// baseline whose in-flight transients the validator and the runtime
// auditor must both flag. The result is always BestEffort: the schedule is
// complete but knowingly ignores transient consistency, and its Report
// carries the damage.
type oneshotScheme struct{}

func (oneshotScheme) Name() string { return "oneshot" }

func (oneshotScheme) Solve(in *dynflow.Instance, o Options) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	s := dynflow.NewSchedule(o.Start)
	for _, v := range in.UpdateSet() {
		s.Set(v, o.Start)
	}
	return &Result{Schedule: s, Report: dynflow.Validate(in, s), BestEffort: true}, nil
}

// treeScheme adapts the polynomial feasibility check (Algorithm 1). It is
// a decision procedure: the result carries Feasible plus, when feasible,
// the witness crossing order as singleton rounds. Instances with
// non-uniform link delays are outside the algorithm's preconditions and
// return ErrUnsupported.
type treeScheme struct{}

func (treeScheme) Name() string { return "tree" }

func (treeScheme) Solve(in *dynflow.Instance, o Options) (*Result, error) {
	ok, order, err := core.TreeFeasible(in)
	if err != nil {
		if errors.Is(err, core.ErrNonUniformDelays) {
			return nil, unsupportedError{err}
		}
		return nil, err
	}
	res := &Result{Feasible: &ok, Exact: true}
	if ok {
		res.Rounds = make([][]graph.NodeID, len(order))
		for i, v := range order {
			res.Rounds[i] = []graph.NodeID{v}
		}
	}
	return res, nil
}

// sequentialScheme adapts the drain-paced sequential baseline: one switch
// per drain interval, in dependency order. It exists partly on its own
// merits (the acceptance-mode ablation compares against it) and partly as
// the living example that adding a scheme to the whole stack — CLI, REST,
// experiments, batch — is this one registration.
type sequentialScheme struct{}

func (sequentialScheme) Name() string { return "sequential" }

func (sequentialScheme) Solve(in *dynflow.Instance, o Options) (*Result, error) {
	s, err := core.SequentialDrain(in, o.Start)
	if err != nil {
		return nil, err
	}
	return &Result{Schedule: s}, nil
}
