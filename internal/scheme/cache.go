package scheme

import (
	"sync"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/graph"
)

// The plan cache memoizes whole successful solves across requests: two
// solves with the same scheme, the same canonical instance fingerprint
// (topology, capacities, delays, demand, migration pair) and the same
// result-relevant options are the same computation, so the second one is
// served as a deep clone of the first — the dominant cost of the repeated
// same-topology workload (chronusd-style continuous churn, batch reruns,
// the bench harness) drops to a map lookup plus a copy.
//
// A solve is cacheable only when its outcome is a pure function of the
// key:
//
//   - Budget.Timeout must be zero — a wall-clock bound makes the result
//     depend on machine speed, and serving a cached result would mask it;
//   - Trace must be nil — a traced solve's value is its decision stream,
//     which only an actual engine run produces;
//   - errors are never cached — infeasibility is cheap to re-prove
//     relative to its rarity, and transient conditions must not stick.
//
// Results are deep-cloned on the way in and on every hit, so callers may
// mutate what they receive (schedulers shift activation times in place)
// without corrupting the cache. Hits add a "plan_cache_hit" diagnostic;
// Schedule and Report are byte-identical to an uncached solve.

// planKey is the canonical identity of a cacheable solve.
type planKey struct {
	scheme     string
	graphFP    uint64
	demand     graph.Capacity
	initFP     uint64
	finFP      uint64
	start      dynflow.Tick
	maxNodes   int
	maxTicks   dynflow.Tick
	bestEffort bool
}

// planCacheCap bounds the plan cache entry count.
const planCacheCap = 256

var planCache = struct {
	sync.Mutex
	m       map[planKey]*Result
	enabled bool
}{m: make(map[planKey]*Result), enabled: true}

// SetPlanCache enables or disables the cross-request plan cache and
// reports the previous setting; disabling drops cached entries. It exists
// for the cache on/off property tests and operational escape hatches.
func SetPlanCache(on bool) bool {
	planCache.Lock()
	defer planCache.Unlock()
	prev := planCache.enabled
	planCache.enabled = on
	if !on {
		planCache.m = make(map[planKey]*Result)
	}
	return prev
}

// planCacheable reports whether a solve's outcome is a pure function of
// its plan key under the given options.
func planCacheable(o Options) bool {
	return !o.NoCache && o.Budget.Timeout == 0 && o.Trace == nil
}

// planKeyFor derives the solve's canonical identity.
func planKeyFor(name string, in *dynflow.Instance, o Options) planKey {
	return planKey{
		scheme:     name,
		graphFP:    in.G.Fingerprint(),
		demand:     in.Demand,
		initFP:     graph.PathFingerprint(in.Init),
		finFP:      graph.PathFingerprint(in.Fin),
		start:      o.Start,
		maxNodes:   o.Budget.MaxNodes,
		maxTicks:   o.Budget.MaxTicks,
		bestEffort: o.BestEffort,
	}
}

// planLookup returns a private clone of the cached result for key.
func planLookup(key planKey) (*Result, bool) {
	planCache.Lock()
	res, ok := planCache.m[key]
	planCache.Unlock()
	if !ok || res == nil {
		return nil, false
	}
	out := cloneResult(res)
	if out.Diagnostics == nil {
		out.Diagnostics = Diagnostics{}
	}
	out.Diagnostics["plan_cache_hit"] = 1
	return out, true
}

// planStore parks a private clone of res under key.
func planStore(key planKey, res *Result) {
	if res == nil {
		return
	}
	clone := cloneResult(res)
	planCache.Lock()
	if planCache.enabled {
		if len(planCache.m) >= planCacheCap {
			for k := range planCache.m {
				delete(planCache.m, k)
				break
			}
		}
		planCache.m[key] = clone
	}
	planCache.Unlock()
}

// cloneResult deep-copies a result so cache and caller never share
// mutable state.
func cloneResult(r *Result) *Result {
	out := &Result{Exact: r.Exact, BestEffort: r.BestEffort}
	if r.Schedule != nil {
		out.Schedule = r.Schedule.Clone()
	}
	if r.Rounds != nil {
		out.Rounds = make([][]graph.NodeID, len(r.Rounds))
		for i, round := range r.Rounds {
			out.Rounds[i] = append([]graph.NodeID(nil), round...)
		}
	}
	out.Report = cloneReport(r.Report)
	if r.Feasible != nil {
		f := *r.Feasible
		out.Feasible = &f
	}
	if r.Diagnostics != nil {
		out.Diagnostics = make(Diagnostics, len(r.Diagnostics))
		for k, v := range r.Diagnostics {
			out.Diagnostics[k] = v
		}
	}
	return out
}

func cloneReport(r *dynflow.Report) *dynflow.Report {
	if r == nil {
		return nil
	}
	out := &dynflow.Report{
		WindowStart:   r.WindowStart,
		WindowEnd:     r.WindowEnd,
		LatestArrival: r.LatestArrival,
	}
	if r.Congestion != nil {
		out.Congestion = append([]dynflow.CongestionEvent(nil), r.Congestion...)
	}
	if r.Loops != nil {
		out.Loops = append([]dynflow.LoopEvent(nil), r.Loops...)
	}
	if r.Blackholes != nil {
		out.Blackholes = append([]dynflow.BlackholeEvent(nil), r.Blackholes...)
	}
	if r.Loads != nil {
		out.Loads = make(map[dynflow.LinkInstance]graph.Capacity, len(r.Loads))
		for k, v := range r.Loads {
			out.Loads[k] = v
		}
	}
	return out
}
