package scheme

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/obs"
)

// ErrUnknown reports a Lookup or Solve against a name nobody registered.
var ErrUnknown = fmt.Errorf("scheme: unknown scheme")

var (
	regMu    sync.RWMutex
	registry = map[string]Scheme{}
)

// Register adds a scheme under its Name. It panics on an empty name or a
// duplicate registration — both are programming errors that must surface at
// init time, not at first lookup. Registration order is irrelevant: Names
// and All expose the registry in sorted-name order, so every consumer
// iterates schemes deterministically no matter which init ran first.
func Register(s Scheme) {
	name := s.Name()
	if name == "" {
		panic("scheme: Register with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("scheme: duplicate registration of %q", name))
	}
	registry[name] = s
}

// Get returns the scheme registered under name.
func Get(name string) (Scheme, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Lookup is Get with a self-describing error listing every registered name
// (what a CLI or REST caller should see on a typo).
func Lookup(name string) (Scheme, error) {
	if s, ok := Get(name); ok {
		return s, nil
	}
	return nil, fmt.Errorf("%w %q (registered: %s)", ErrUnknown, name, strings.Join(Names(), ", "))
}

// Names returns the registered scheme names in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// All returns the registered schemes in Names order.
func All() []Scheme {
	names := Names()
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Scheme, len(names))
	for i, name := range names {
		out[i] = registry[name]
	}
	return out
}

// Solve looks up name and runs it, recording a scheme-labelled solve
// counter on o.Obs (when set) regardless of which scheme ran — the one
// instrumentation point every consumer shares. When o.Trace is set it
// additionally records a "solve" span (parented under o.Span, stamped
// at o.VT) so an update's span tree shows which scheme planned it and
// how it came out.
//
// Cacheable solves (no wall-clock budget, no tracer, NoCache unset) are
// served from the cross-request plan cache when an identical solve
// already ran; see cache.go for the exact purity rules.
func Solve(name string, in *dynflow.Instance, o Options) (*Result, error) {
	s, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if planCacheable(o) {
		key := planKeyFor(name, in, o)
		if res, hit := planLookup(key); hit {
			o.Obs.Counter(`chronus_solver_cache_hits_total{cache="plan"}`).Inc()
			observe(o.Obs, name, res, nil)
			return res, nil
		}
		o.Obs.Counter(`chronus_solver_cache_misses_total{cache="plan"}`).Inc()
		res, err := s.Solve(in, o)
		if err == nil {
			planStore(key, res)
		}
		observe(o.Obs, name, res, err)
		return res, err
	}
	sp := o.Trace.StartSpan(o.VT, "solve", o.Span, obs.A("scheme", name))
	res, err := s.Solve(in, o)
	sp.End(o.VT, obs.A("outcome", outcomeOf(res, err)))
	observe(o.Obs, name, res, err)
	return res, err
}
