package scheme

import (
	"errors"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/obs"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// The full built-in cast, in the sorted order the registry reports it.
var builtins = []string{"chronus", "chronus-fast", "oneshot", "opt", "or", "sequential", "tree"}

func TestRegistryNames(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names not sorted: %v", names)
	}
	if len(names) != len(builtins) {
		t.Fatalf("registered %v, want %v", names, builtins)
	}
	for i, want := range builtins {
		if names[i] != want {
			t.Fatalf("registered %v, want %v", names, builtins)
		}
	}
	for _, name := range names {
		s, ok := Get(name)
		if !ok || s.Name() != name {
			t.Fatalf("Get(%q) = %v, %v", name, s, ok)
		}
	}
	if all := All(); len(all) != len(names) || all[0].Name() != names[0] {
		t.Fatalf("All() out of step with Names(): %d schemes", len(all))
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(oneshotScheme{})
}

func TestLookupUnknown(t *testing.T) {
	_, err := Lookup("definitely-not-a-scheme")
	if !errors.Is(err, ErrUnknown) {
		t.Fatalf("err = %v, want ErrUnknown", err)
	}
	// The error must teach the caller the valid names.
	for _, name := range builtins {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list %q", err, name)
		}
	}
}

func TestSolveRecordsSchemeLabelledMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	in := topo.Fig1Example()
	if _, err := Solve("chronus", in, Options{Obs: reg}); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve("oneshot", in, Options{Obs: reg}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(`chronus_scheme_solve_total{scheme="chronus",outcome="ok"}`).Value(); got != 1 {
		t.Fatalf("chronus ok counter = %d", got)
	}
	if got := reg.Counter(`chronus_scheme_solve_total{scheme="oneshot",outcome="best_effort"}`).Value(); got != 1 {
		t.Fatalf("oneshot best_effort counter = %d", got)
	}
}

// The registry's core safety property: whatever the scheme, a result it
// does NOT flag as best-effort must withstand the ground-truth validator.
// Timed schedules validate directly; round-based results are replayed at
// one round per tick; decision-only results are exercised through their
// witness order.
func TestCrossSchemePropertyValidate(t *testing.T) {
	for _, n := range []int{8, 16} {
		rng := rand.New(rand.NewSource(4000 + int64(n)))
		for trial := 0; trial < 12; trial++ {
			in := topo.RandomInstance(rng, topo.DefaultRandomParams(n))
			for _, s := range All() {
				res, err := s.Solve(in, Options{Budget: Budget{MaxNodes: 3000}})
				switch {
				case errors.Is(err, ErrInfeasible), errors.Is(err, ErrUnsupported):
					continue
				case err != nil:
					t.Fatalf("n=%d trial=%d %s: %v", n, trial, s.Name(), err)
				}
				if res == nil || res.BestEffort {
					continue
				}
				if res.Schedule != nil {
					rep := res.Report
					if rep == nil {
						rep = dynflow.Validate(in, res.Schedule)
					}
					if !rep.OK() {
						t.Fatalf("n=%d trial=%d %s: schedule not violation-free: %s", n, trial, s.Name(), rep.Summary())
					}
				}
			}
		}
	}
}
