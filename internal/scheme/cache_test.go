package scheme

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/chronus-sdn/chronus/internal/core"
	"github.com/chronus-sdn/chronus/internal/dynflow"
	"github.com/chronus-sdn/chronus/internal/obs"
	"github.com/chronus-sdn/chronus/internal/topo"
)

// flushCaches drops every cross-solve cache (plan, precomp, tracer
// skeleton) and leaves them enabled, so each test starts cold regardless
// of what ran before it in the package.
func flushCaches() {
	SetPlanCache(false)
	SetPlanCache(true)
	core.SetPrecompCache(false)
	core.SetPrecompCache(true)
	dynflow.SetSkeletonCache(false)
	dynflow.SetSkeletonCache(true)
}

// disableCaches turns every cross-solve cache off; the returned restore
// re-enables them from a clean slate.
func disableCaches() (restore func()) {
	SetPlanCache(false)
	core.SetPrecompCache(false)
	dynflow.SetSkeletonCache(false)
	return func() { flushCaches() }
}

// canonical renders the result fields the byte-identity guarantee covers.
// Diagnostics are deliberately excluded: a hit adds "plan_cache_hit".
// Report.Loads (struct-keyed, not JSON-encodable) is rendered separately
// in sorted order.
func canonical(t *testing.T, res *Result) string {
	t.Helper()
	var loads string
	if res.Report != nil && res.Report.Loads != nil {
		keys := make([]dynflow.LinkInstance, 0, len(res.Report.Loads))
		for k := range res.Report.Loads {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.From != b.From {
				return a.From < b.From
			}
			if a.To != b.To {
				return a.To < b.To
			}
			return a.Depart < b.Depart
		})
		for _, k := range keys {
			loads += fmt.Sprintf("%v=%d;", k, res.Report.Loads[k])
		}
	}
	// Shadow of dynflow.Report without the struct-keyed Loads map (whose
	// type encoding/json rejects even when nil).
	type reportShadow struct {
		Congestion []dynflow.CongestionEvent
		Loops      []dynflow.LoopEvent
		Blackholes []dynflow.BlackholeEvent
		WindowStart, WindowEnd, LatestArrival dynflow.Tick
	}
	var report *reportShadow
	if r := res.Report; r != nil {
		report = &reportShadow{r.Congestion, r.Loops, r.Blackholes, r.WindowStart, r.WindowEnd, r.LatestArrival}
	}
	b, err := json.Marshal(struct {
		Schedule   *dynflow.Schedule
		Rounds     interface{}
		Report     *reportShadow
		Loads      string
		Exact      bool
		BestEffort bool
		Feasible   *bool
	}{res.Schedule, res.Rounds, report, loads, res.Exact, res.BestEffort, res.Feasible})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPlanCacheByteIdenticalSchedules is the cache correctness property:
// for every registered scheme, at n∈{8,16}, the Schedule/Report (and every
// other result field) must be byte-identical with the caches disabled, on
// the miss that populates them, and on the hit served from them.
func TestPlanCacheByteIdenticalSchedules(t *testing.T) {
	defer flushCaches()
	for _, n := range []int{8, 16} {
		rng := rand.New(rand.NewSource(6000 + int64(n)))
		for trial := 0; trial < 8; trial++ {
			in := topo.RandomInstance(rng, topo.DefaultRandomParams(n))
			for _, name := range Names() {
				o := Options{Budget: Budget{MaxNodes: 3000}}

				restore := disableCaches()
				resOff, errOff := Solve(name, in, o)
				restore()

				resMiss, errMiss := Solve(name, in, o)
				resHit, errHit := Solve(name, in, o)

				if (errOff == nil) != (errMiss == nil) || (errOff == nil) != (errHit == nil) {
					t.Fatalf("n=%d trial=%d %s: error drift: off=%v miss=%v hit=%v", n, trial, name, errOff, errMiss, errHit)
				}
				if errOff != nil {
					if !errors.Is(errOff, ErrInfeasible) && !errors.Is(errOff, ErrUnsupported) {
						t.Fatalf("n=%d trial=%d %s: %v", n, trial, name, errOff)
					}
					continue
				}
				want := canonical(t, resOff)
				if got := canonical(t, resMiss); got != want {
					t.Fatalf("n=%d trial=%d %s: cache-off and cache-miss results differ:\noff:  %s\nmiss: %s", n, trial, name, want, got)
				}
				if got := canonical(t, resHit); got != want {
					t.Fatalf("n=%d trial=%d %s: cache-off and cache-hit results differ:\noff: %s\nhit: %s", n, trial, name, want, got)
				}
				if resHit.Diagnostics["plan_cache_hit"] != 1 {
					t.Fatalf("n=%d trial=%d %s: second solve was not a plan-cache hit: %v", n, trial, name, resHit.Diagnostics)
				}
			}
		}
	}
}

// TestPlanCacheInvalidationOnTopologyEdit: editing a link's capacity or
// delay changes the canonical fingerprint, so the next solve must miss.
func TestPlanCacheInvalidationOnTopologyEdit(t *testing.T) {
	defer flushCaches()
	flushCaches()
	reg := obs.NewRegistry()
	in := topo.Fig1Example()
	o := Options{Obs: reg}
	hits := reg.Counter(`chronus_solver_cache_hits_total{cache="plan"}`)
	misses := reg.Counter(`chronus_solver_cache_misses_total{cache="plan"}`)

	if _, err := Solve("chronus", in, o); err != nil {
		t.Fatal(err)
	}
	if h, m := hits.Value(), misses.Value(); h != 0 || m != 1 {
		t.Fatalf("cold solve: hits=%d misses=%d, want 0/1", h, m)
	}
	if _, err := Solve("chronus", in, o); err != nil {
		t.Fatal(err)
	}
	if h, m := hits.Value(), misses.Value(); h != 1 || m != 1 {
		t.Fatalf("repeat solve: hits=%d misses=%d, want 1/1", h, m)
	}

	// A capacity edit must invalidate (fingerprints cover capacities).
	l := in.G.Links()[0]
	if err := in.G.SetCapacity(l.From, l.To, l.Cap+1); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve("chronus", in, o); err != nil {
		t.Fatal(err)
	}
	if h, m := hits.Value(), misses.Value(); h != 1 || m != 2 {
		t.Fatalf("post-capacity-edit solve: hits=%d misses=%d, want 1/2", h, m)
	}

	// A delay edit must invalidate too.
	if err := in.G.SetDelay(l.From, l.To, l.Delay+1); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve("chronus", in, o); err != nil {
		t.Fatal(err)
	}
	if h, m := hits.Value(), misses.Value(); h != 1 || m != 3 {
		t.Fatalf("post-delay-edit solve: hits=%d misses=%d, want 1/3", h, m)
	}
}

// TestPlanCacheBypasses: solves whose outcome is not a pure function of
// the plan key — wall-clock budgets, traced solves, NoCache — must run
// the engine every time.
func TestPlanCacheBypasses(t *testing.T) {
	defer flushCaches()
	flushCaches()
	in := topo.Fig1Example()

	for _, tc := range []struct {
		name string
		o    Options
	}{
		{"timeout", Options{Budget: Budget{Timeout: time.Second}}},
		{"trace", Options{Trace: obs.NewTracer(obs.TracerOptions{Cap: 64})}},
		{"nocache", Options{NoCache: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for i := 0; i < 2; i++ {
				res, err := Solve("chronus", in, tc.o)
				if err != nil {
					t.Fatal(err)
				}
				if res.Diagnostics["plan_cache_hit"] != 0 {
					t.Fatalf("solve %d with %s set was served from the plan cache", i, tc.name)
				}
			}
		})
	}
}

// TestGreedyBudgetKnobIgnoredDiagnostics: the greedy engines honor only
// Budget.MaxTicks; setting Timeout or MaxNodes on chronus/chronus-fast
// must be flagged in Diagnostics instead of silently dropped.
func TestGreedyBudgetKnobIgnoredDiagnostics(t *testing.T) {
	in := topo.Fig1Example()
	for _, name := range []string{"chronus", "chronus-fast"} {
		res, err := Solve(name, in, Options{Budget: Budget{Timeout: time.Second, MaxNodes: 5}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Diagnostics["budget_knob_ignored:timeout"] != 1 {
			t.Errorf("%s: timeout not flagged as ignored: %v", name, res.Diagnostics)
		}
		if res.Diagnostics["budget_knob_ignored:max_nodes"] != 1 {
			t.Errorf("%s: max_nodes not flagged as ignored: %v", name, res.Diagnostics)
		}

		res, err = Solve(name, in, Options{Budget: Budget{MaxTicks: 1000}, NoCache: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, k := range []string{"budget_knob_ignored:timeout", "budget_knob_ignored:max_nodes"} {
			if _, present := res.Diagnostics[k]; present {
				t.Errorf("%s: %s flagged although the knob was unset", name, k)
			}
		}
	}
}

// TestCacheConcurrentPooledSolves drives concurrent solves that share the
// skeleton, precomp and plan caches plus the pooled workspaces; it exists
// to be run under -race (the CI pins `go test -run Cache -race -count=2`).
func TestCacheConcurrentPooledSolves(t *testing.T) {
	defer flushCaches()
	flushCaches()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		// Paired goroutines (g/2) build identical instances, so cache
		// entries are genuinely shared across goroutines.
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(7000 + seed))
			for trial := 0; trial < 6; trial++ {
				in := topo.RandomInstance(rng, topo.DefaultRandomParams(12))
				for _, name := range []string{"chronus", "chronus-fast"} {
					res, err := Solve(name, in, Options{})
					if err != nil && !errors.Is(err, ErrInfeasible) {
						t.Errorf("%s: %v", name, err)
						return
					}
					if err == nil && res.Schedule == nil {
						t.Errorf("%s: no schedule", name)
						return
					}
				}
			}
		}(int64(g / 2))
	}
	wg.Wait()
}
