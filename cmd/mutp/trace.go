package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	chronus "github.com/chronus-sdn/chronus"
	"github.com/chronus-sdn/chronus/internal/obs"
)

// traceHeadroom is how many ticks past "now" the schedule is shifted
// before execution, leaving room for the control latency of the timed
// FlowMods.
const traceHeadroom = 50

// executeOnTestbed replays a solved schedule on an emulated testbed with
// a deterministic tracer attached and returns the tracer once the data
// plane has drained. For a fixed instance and seed the recorded events
// are identical across runs: they carry virtual time only and the
// control-latency model is seeded.
func executeOnTestbed(in *chronus.Instance, s *chronus.Schedule, seed int64) (*chronus.Tracer, error) {
	reg := chronus.NewMetricsRegistry()
	tracer := chronus.NewTracer(chronus.TracerOptions{})
	tb := chronus.NewTestbed(in.G)
	tb.Net.SetObs(reg, tracer)
	ctl := chronus.NewController(tb, chronus.ControllerOptions{Seed: seed, Obs: reg, Trace: tracer})
	ctl.AttachAll(nil)

	flow := chronus.FlowSpec{Name: "f", Tag: 0, Path: in.Init, Rate: chronus.Rate(in.Demand)}
	if err := ctl.Provision(flow); err != nil {
		return nil, err
	}
	tb.AdvanceBy(traceHeadroom)

	start := chronus.Tick(tb.Now()) + traceHeadroom
	shifted := chronus.NewSchedule(start)
	for v, tv := range s.Times {
		shifted.Set(v, start+(tv-s.Start))
	}
	// One "sched" event per switch marks the planned activation instant,
	// so the timeline shows plan versus execution.
	for _, v := range sortedSwitches(shifted) {
		tracer.Point(int64(shifted.Times[v]), "sched", obs.A("switch", in.G.Name(v)))
	}
	// The whole replay hangs off one root span, same as a chronusd
	// POST /update, so the recorded trace reconstructs into a single
	// connected tree.
	root := tracer.StartSpan(int64(tb.Now()), "update", 0, obs.A("method", "replay"))
	logger.Info("executing schedule on testbed",
		"span", uint64(root.SpanID()), "switches", len(s.Times), "seed", seed, "start", int64(start))
	ctl.SetSpan(root.SpanID())
	err := ctl.ExecuteTimed(in, shifted, flow)
	ctl.SetSpan(0)
	if err != nil {
		root.End(int64(tb.Now()), obs.A("outcome", "error"))
		return nil, err
	}
	// Run past the last activation plus a full drain of both paths.
	drain := chronus.SimTime(in.Init.Delay(in.G)+in.Fin.Delay(in.G)) + 10
	tb.AdvanceTo(chronus.SimTime(shifted.End()) + drain)
	root.End(int64(tb.Now()), obs.A("outcome", "ok"))
	return tracer, nil
}

// executeTrace runs the schedule via executeOnTestbed, writes the raw
// events as JSON Lines to path, and renders a per-switch timeline
// (schedule tick, FlowMod arrival, barrier, activation). The written
// file is byte-identical across runs for a fixed instance and seed.
func executeTrace(out io.Writer, in *chronus.Instance, s *chronus.Schedule, seed int64, path string) error {
	tracer, err := executeOnTestbed(in, s, seed)
	if err != nil {
		return err
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tracer.WriteJSONL(f, 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "\ntrace: %d events written to %s\n", len(tracer.Events(0)), path)
	renderTimeline(out, tracer.Events(0))
	return nil
}

func sortedSwitches(s *chronus.Schedule) []chronus.NodeID {
	out := make([]chronus.NodeID, 0, len(s.Times))
	for v := range s.Times {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// renderTimeline prints one lane per switch with its events in virtual-
// time order; events without a switch attribute (barrier spans, data-
// plane incidents) land in the controller lane. Span-carrier events are
// skipped — they duplicate the point events as structure, and the span
// view belongs to BuildSpanForest consumers (chronusd /spans, /dash).
func renderTimeline(out io.Writer, events []chronus.TraceEvent) {
	lanes := make(map[string][]chronus.TraceEvent)
	for _, e := range events {
		if e.Name == chronus.SpanEventName {
			continue
		}
		lane := "controller"
		for _, a := range e.Attrs {
			if a.K == "switch" {
				lane = a.V
				break
			}
		}
		lanes[lane] = append(lanes[lane], e)
	}
	names := make([]string, 0, len(lanes))
	for name := range lanes {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintln(out, "timeline (virtual ticks):")
	for _, name := range names {
		var parts []string
		for _, e := range lanes[name] {
			parts = append(parts, formatEvent(e))
		}
		fmt.Fprintf(out, "  %-10s %s\n", name+":", strings.Join(parts, "  "))
	}
}

func formatEvent(e chronus.TraceEvent) string {
	label := e.Name
	switch e.Name {
	case "ctl.flowmod":
		label = "send"
	case "sw.flowmod":
		label = "recv"
	case "sw.barrier":
		label = "barrier"
	case "sw.apply":
		label = "apply"
	}
	var extra string
	for _, a := range e.Attrs {
		if a.K == "skew" {
			extra = "(skew " + a.V + ")"
		}
	}
	if e.Dur > 0 {
		extra = fmt.Sprintf("(+%d)", e.Dur)
	}
	return fmt.Sprintf("%s@%d%s", label, e.VT, extra)
}
