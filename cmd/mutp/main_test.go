package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	chronus "github.com/chronus-sdn/chronus"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, buf.String())
	}
	return buf.String()
}

func TestCLIFig1AllSchemes(t *testing.T) {
	out := runCLI(t, "-instance", "fig1", "-scheme", "all")
	for _, want := range []string{
		"t+0: v2; t+1: v3; t+2: v1,v4; t+3: v5",
		"makespan: 3 time units",
		"exact: true",
		"round 1:",
		"feasible congestion- and loop-free sequence exists: true",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIJSONOutput(t *testing.T) {
	out := runCLI(t, "-instance", "fig1", "-scheme", "chronus", "-json")
	start := strings.Index(out, "{")
	if start < 0 {
		t.Fatalf("no JSON in output:\n%s", out)
	}
	var parsed struct {
		Makespan int64 `json:"makespan"`
		Updates  []struct {
			Switch string `json:"switch"`
			Tick   int64  `json:"tick"`
		} `json:"updates"`
	}
	dec := json.NewDecoder(strings.NewReader(out[start:]))
	if err := dec.Decode(&parsed); err != nil {
		t.Fatalf("parse JSON: %v", err)
	}
	if parsed.Makespan != 3 || len(parsed.Updates) != 5 {
		t.Fatalf("parsed = %+v", parsed)
	}
	if parsed.Updates[0].Switch != "v2" || parsed.Updates[0].Tick != 0 {
		t.Fatalf("first update = %+v", parsed.Updates[0])
	}
}

func TestCLIRandomInstance(t *testing.T) {
	out := runCLI(t, "-instance", "random", "-n", "12", "-seed", "3", "-scheme", "chronus-fast", "-best-effort")
	if !strings.Contains(out, "instance: 12 switches") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCLIInstanceFile(t *testing.T) {
	// The catch-up instance as JSON: infeasible when the shared link is
	// tight.
	doc := `{
	  "graph": {
	    "nodes": ["s", "a", "m", "d"],
	    "links": [
	      {"from": "s", "to": "a", "capacity": 1, "delay": 1},
	      {"from": "a", "to": "m", "capacity": 1, "delay": 1},
	      {"from": "m", "to": "d", "capacity": 1, "delay": 1},
	      {"from": "s", "to": "m", "capacity": 1, "delay": 1}
	    ]
	  },
	  "demand": 1,
	  "initial": ["s", "a", "m", "d"],
	  "final": ["s", "m", "d"]
	}`
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "-instance", path, "-scheme", "chronus")
	if !strings.Contains(out, "infeasible") {
		t.Fatalf("tight catch-up not reported infeasible:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-instance", "fig1", "-scheme", "nope"}, &buf); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if err := run([]string{"-instance", "/does/not/exist.json"}, &buf); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCLITraceDeterministic(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.jsonl")
	p2 := filepath.Join(dir, "b.jsonl")
	out1 := strings.ReplaceAll(runCLI(t, "-instance", "fig1", "-scheme", "chronus", "-trace", p1), p1, "TRACE")
	out2 := strings.ReplaceAll(runCLI(t, "-instance", "fig1", "-scheme", "chronus", "-trace", p2), p2, "TRACE")
	if out1 != out2 {
		t.Fatalf("stdout differs between identical runs:\n%s\n---\n%s", out1, out2)
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("trace files differ between identical fixed-seed runs")
	}
	if len(b1) == 0 {
		t.Fatal("empty trace file")
	}
	// Every line is a JSON event stamped with virtual time; deterministic
	// mode must omit wall-clock stamps.
	for i, line := range bytes.Split(bytes.TrimSpace(b1), []byte("\n")) {
		var ev struct {
			Seq  uint64 `json:"seq"`
			Name string `json:"name"`
			Wall int64  `json:"wall"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", i+1, err)
		}
		if ev.Seq == 0 || ev.Name == "" {
			t.Fatalf("line %d missing seq/name: %s", i+1, line)
		}
		if ev.Wall != 0 {
			t.Fatalf("line %d carries a wall-clock stamp in deterministic mode: %s", i+1, line)
		}
	}
	// The timeline must show the full per-switch lifecycle.
	for _, want := range []string{"timeline", "sched@", "recv@", "barrier@", "apply@"} {
		if !strings.Contains(out1, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out1)
		}
	}
}

func TestCLITraceRequiresTimedScheme(t *testing.T) {
	var buf bytes.Buffer
	p := filepath.Join(t.TempDir(), "t.jsonl")
	if err := run([]string{"-instance", "fig1", "-scheme", "or", "-trace", p}, &buf); err == nil {
		t.Fatal("-trace with round-based scheme accepted")
	}
}

func TestCLIDOTOutput(t *testing.T) {
	out := runCLI(t, "-instance", "fig1", "-dot")
	for _, want := range []string{"digraph", "\"v1\" -> \"v2\"", "dashed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIListSchemes(t *testing.T) {
	out := runCLI(t, "-list-schemes")
	if want := strings.Join(chronus.Schemes(), "\n") + "\n"; out != want {
		t.Fatalf("-list-schemes = %q, want %q", out, want)
	}
}

func TestCLIAllRunsEveryScheme(t *testing.T) {
	out := runCLI(t, "-instance", "fig1", "-scheme", "all")
	for _, name := range chronus.Schemes() {
		if !strings.Contains(out, "== "+name+" ==") {
			t.Fatalf("-scheme all skipped %q:\n%s", name, out)
		}
	}
}

// TestCLIClocksReport: -clocks rides on the audit execution and renders
// one estimator line per switch that fired; it is deterministic for a
// fixed seed and refuses to run without -audit.
func TestCLIClocksReport(t *testing.T) {
	out := runCLI(t, "-instance", "fig1", "-scheme", "chronus", "-audit", "-clocks")
	if !strings.Contains(out, "clock quality (from timed-fire skew and barrier RTT") {
		t.Fatalf("no clock-quality section:\n%s", out)
	}
	for _, sw := range []string{"v1", "v5"} {
		if !strings.Contains(out, sw+"       offset") {
			t.Errorf("no estimate line for %s:\n%s", sw, out)
		}
	}
	again := runCLI(t, "-instance", "fig1", "-scheme", "chronus", "-audit", "-clocks")
	if out != again {
		t.Error("-audit -clocks output not deterministic across runs")
	}
	var buf bytes.Buffer
	if err := run([]string{"-instance", "fig1", "-clocks"}, &buf); err == nil || !strings.Contains(err.Error(), "-audit") {
		t.Fatalf("-clocks without -audit: err = %v, want mention of -audit", err)
	}
}
