package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, buf.String())
	}
	return buf.String()
}

func TestCLIFig1AllSchemes(t *testing.T) {
	out := runCLI(t, "-instance", "fig1", "-scheme", "all")
	for _, want := range []string{
		"t+0: v2; t+1: v3; t+2: v1,v4; t+3: v5",
		"makespan: 3 time units",
		"exact: true",
		"round 1:",
		"feasible congestion- and loop-free sequence exists: true",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIJSONOutput(t *testing.T) {
	out := runCLI(t, "-instance", "fig1", "-scheme", "chronus", "-json")
	start := strings.Index(out, "{")
	if start < 0 {
		t.Fatalf("no JSON in output:\n%s", out)
	}
	var parsed struct {
		Makespan int64 `json:"makespan"`
		Updates  []struct {
			Switch string `json:"switch"`
			Tick   int64  `json:"tick"`
		} `json:"updates"`
	}
	dec := json.NewDecoder(strings.NewReader(out[start:]))
	if err := dec.Decode(&parsed); err != nil {
		t.Fatalf("parse JSON: %v", err)
	}
	if parsed.Makespan != 3 || len(parsed.Updates) != 5 {
		t.Fatalf("parsed = %+v", parsed)
	}
	if parsed.Updates[0].Switch != "v2" || parsed.Updates[0].Tick != 0 {
		t.Fatalf("first update = %+v", parsed.Updates[0])
	}
}

func TestCLIRandomInstance(t *testing.T) {
	out := runCLI(t, "-instance", "random", "-n", "12", "-seed", "3", "-scheme", "chronus-fast", "-best-effort")
	if !strings.Contains(out, "instance: 12 switches") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestCLIInstanceFile(t *testing.T) {
	// The catch-up instance as JSON: infeasible when the shared link is
	// tight.
	doc := `{
	  "graph": {
	    "nodes": ["s", "a", "m", "d"],
	    "links": [
	      {"from": "s", "to": "a", "capacity": 1, "delay": 1},
	      {"from": "a", "to": "m", "capacity": 1, "delay": 1},
	      {"from": "m", "to": "d", "capacity": 1, "delay": 1},
	      {"from": "s", "to": "m", "capacity": 1, "delay": 1}
	    ]
	  },
	  "demand": 1,
	  "initial": ["s", "a", "m", "d"],
	  "final": ["s", "m", "d"]
	}`
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runCLI(t, "-instance", path, "-scheme", "chronus")
	if !strings.Contains(out, "infeasible") {
		t.Fatalf("tight catch-up not reported infeasible:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-instance", "fig1", "-scheme", "nope"}, &buf); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if err := run([]string{"-instance", "/does/not/exist.json"}, &buf); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCLIDOTOutput(t *testing.T) {
	out := runCLI(t, "-instance", "fig1", "-dot")
	for _, want := range []string{"digraph", "\"v1\" -> \"v2\"", "dashed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}
