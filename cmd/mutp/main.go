// Command mutp solves Minimum Update Time Problem instances from the
// command line: read an instance (JSON file, a built-in fixture, or a
// random instance), run the selected scheduler, print the timed schedule
// and its validation report.
//
// Usage:
//
//	mutp -instance fig1 -scheme chronus
//	mutp -instance emulation -scheme opt
//	mutp -instance random -n 30 -seed 7 -scheme all
//	mutp -instance path/to/instance.json -scheme chronus -json
//	mutp -state-from path/to/journal -drift
//	mutp -list-schemes
//
// Schemes come from the registry (internal/scheme): -scheme accepts any
// registered name, and -scheme all runs the whole cast.
//
// The JSON instance format is:
//
//	{
//	  "graph": {"nodes": ["v1", ...],
//	            "links": [{"from": "v1", "to": "v2", "capacity": 1, "delay": 1}, ...]},
//	  "demand": 1,
//	  "initial": ["v1", "v2", ...],
//	  "final":   ["v1", "v5", ...]
//	}
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"os"
	"sort"
	"strings"

	chronus "github.com/chronus-sdn/chronus"
	"github.com/chronus-sdn/chronus/internal/buildinfo"
)

// logger carries structured diagnostics to stderr (never stdout, which
// belongs to the rendered results and is golden-tested). run() swaps it
// for a real handler when -log-level asks for one.
var logger = slog.New(slog.NewTextHandler(io.Discard, nil))

type instanceFile struct {
	Graph   *chronus.Network `json:"graph"`
	Demand  chronus.Capacity `json:"demand"`
	Initial []string         `json:"initial"`
	Final   []string         `json:"final"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mutp:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mutp", flag.ContinueOnError)
	instance := fs.String("instance", "fig1", "instance: fig1, emulation, random, or a JSON file path")
	// The scheme list in the usage text comes from the registry, so a
	// newly registered scheme shows up here without touching this file.
	scheme := fs.String("scheme", "chronus",
		fmt.Sprintf("scheduler: %s, or all", strings.Join(chronus.Schemes(), ", ")))
	listSchemes := fs.Bool("list-schemes", false, "print the registered scheme names, one per line, and exit")
	n := fs.Int("n", 20, "switch count for -instance random")
	seed := fs.Int64("seed", 1, "seed for -instance random")
	jsonOut := fs.Bool("json", false, "emit the schedule as JSON")
	dot := fs.Bool("dot", false, "emit the topology as Graphviz DOT (initial path blue, final dashed green) and exit")
	bestEffort := fs.Bool("best-effort", false, "return a schedule even when no violation-free one exists")
	traceFile := fs.String("trace", "", "execute the schedule on the emulated testbed and write its event trace (JSONL) to this file")
	auditRun := fs.Bool("audit", false, "execute the schedule on the emulated testbed and audit the trace for consistency violations")
	auditJSON := fs.String("audit-json", "", "with -audit (or -audit-from): also write the audit report as JSON to this file")
	auditFrom := fs.String("audit-from", "", "audit a captured JSONL trace file, or a chronusd journal directory, offline and exit")
	stateFrom := fs.String("state-from", "", "rebuild the observed-state store from a chronusd journal directory, print the snapshot (byte-identical to the live GET /state) and exit")
	stateAt := fs.Int64("state-at", -1, "with -state-from: time-travel the snapshot to this tick (-1 = the journal's newest)")
	driftOut := fs.Bool("drift", false, "with -state-from: print the drift report (byte-identical to the live GET /drift) instead of the snapshot")
	clocksRun := fs.Bool("clocks", false, "with -audit: also print per-switch clock-quality estimates (offset, drift, jitter, barrier RTT) from the executed trace")
	logLevel := fs.String("log-level", "", "enable structured diagnostics on stderr at this slog level (debug, info, warn, error)")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *version {
		fmt.Fprintln(out, buildinfo.String("mutp"))
		return nil
	}
	if *logLevel != "" {
		var lvl slog.Level
		if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
			return err
		}
		logger = slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))
	}

	if *listSchemes {
		for _, name := range chronus.Schemes() {
			fmt.Fprintln(out, name)
		}
		return nil
	}
	if *auditFrom != "" {
		return auditFromFile(out, *auditFrom, *auditJSON)
	}
	if *stateFrom != "" {
		return stateFromJournal(out, *stateFrom, *stateAt, *driftOut)
	}

	in, err := loadInstance(*instance, *n, *seed)
	if err != nil {
		return err
	}
	if err := in.Validate(); err != nil {
		return err
	}
	if *dot {
		fmt.Fprint(out, in.G.DOT(in.Init, in.Fin))
		return nil
	}
	fmt.Fprintf(out, "instance: %d switches, %d links, demand %d\n", in.G.NumNodes(), in.G.NumLinks(), in.Demand)
	fmt.Fprintf(out, "  initial: %s\n  final:   %s\n", in.Init.Format(in.G), in.Fin.Format(in.G))

	schemes := []string{*scheme}
	if *scheme == "all" {
		schemes = chronus.Schemes()
	}
	traced, audited := false, false
	for _, sch := range schemes {
		sched, err := solveOne(out, in, sch, *bestEffort, *jsonOut)
		if err != nil {
			return err
		}
		if *traceFile != "" && sched != nil && !traced {
			if err := executeTrace(out, in, sched, *seed, *traceFile); err != nil {
				return err
			}
			traced = true
		}
		if *auditRun && sched != nil && !audited {
			if err := runAudit(out, in, sched, *seed, *auditJSON, *clocksRun); err != nil {
				return err
			}
			audited = true
		}
	}
	if *traceFile != "" && !traced {
		return errors.New("-trace needs a scheme that produced a feasible timed schedule (see -list-schemes; round- and decision-only schemes emit none)")
	}
	if *auditRun && !audited {
		return errors.New("-audit needs a scheme that produced a feasible timed schedule (see -list-schemes; round- and decision-only schemes emit none)")
	}
	if *clocksRun && !*auditRun {
		return errors.New("-clocks rides on the audit execution; pass -audit too")
	}
	return nil
}

func loadInstance(name string, n int, seed int64) (*chronus.Instance, error) {
	switch name {
	case "fig1":
		return chronus.Fig1Example(), nil
	case "emulation":
		return chronus.EmulationTopo(), nil
	case "random":
		rng := rand.New(rand.NewSource(seed))
		return chronus.RandomInstance(rng, chronus.DefaultRandomInstanceParams(n)), nil
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return nil, err
	}
	var file instanceFile
	file.Graph = chronus.NewNetwork()
	if err := json.Unmarshal(data, &file); err != nil {
		return nil, fmt.Errorf("parse %s: %w", name, err)
	}
	init, err := file.Graph.PathByNames(file.Initial...)
	if err != nil {
		return nil, fmt.Errorf("initial path: %w", err)
	}
	fin, err := file.Graph.PathByNames(file.Final...)
	if err != nil {
		return nil, fmt.Errorf("final path: %w", err)
	}
	return &chronus.Instance{G: file.Graph, Demand: file.Demand, Init: init, Fin: fin}, nil
}

// solveOne runs one registry scheme and returns its timed schedule when
// the scheme produces one (nil for round-based and decision-only schemes,
// or when the instance is infeasible). It dispatches on the shape of the
// uniform result — Feasible verdict, rounds, schedule — never on the
// scheme's name, so a newly registered scheme works here unchanged.
func solveOne(out io.Writer, in *chronus.Instance, scheme string, bestEffort, jsonOut bool) (*chronus.Schedule, error) {
	fmt.Fprintf(out, "\n== %s ==\n", scheme)
	res, err := chronus.SolveWith(scheme, in, chronus.SchemeOptions{BestEffort: bestEffort})
	switch {
	case errors.Is(err, chronus.ErrInfeasible):
		fmt.Fprintln(out, "infeasible: no congestion- and loop-free schedule")
		return nil, nil
	case errors.Is(err, chronus.ErrSchemeUnsupported):
		fmt.Fprintf(out, "%s check unavailable: %v\n", scheme, err)
		return nil, nil
	case err != nil:
		return nil, err
	}
	if res.Feasible != nil {
		fmt.Fprintf(out, "feasible congestion- and loop-free sequence exists: %v\n", *res.Feasible)
		return nil, nil
	}
	if res.Schedule == nil {
		if len(res.Rounds) == 0 {
			fmt.Fprintln(out, "no schedule found within the search budget")
			return nil, nil
		}
		for i, round := range res.Rounds {
			names := make([]string, len(round))
			for j, v := range round {
				names[j] = in.G.Name(v)
			}
			fmt.Fprintf(out, "round %d: %s\n", i+1, strings.Join(names, ", "))
		}
		fmt.Fprintln(out, "(rounds ignore capacities and delays; replay them on the validator to see transients)")
		return nil, nil
	}
	printSchedule(out, in, res.Schedule, jsonOut)
	if res.BestEffort {
		fmt.Fprintln(out, "best-effort plan (transient violations possible; see validation)")
	}
	if nodes, ok := res.Diagnostics["nodes"]; ok {
		fmt.Fprintf(out, "exact: %v (searched %d nodes)\n", res.Exact, nodes)
	}
	report := res.Report
	if report == nil {
		report = chronus.Validate(in, res.Schedule)
	}
	fmt.Fprintf(out, "validation: %s\n", report.Summary())
	return res.Schedule, nil
}

func printSchedule(out io.Writer, in *chronus.Instance, s *chronus.Schedule, jsonOut bool) {
	if jsonOut {
		type entry struct {
			Switch string       `json:"switch"`
			Tick   chronus.Tick `json:"tick"`
		}
		var entries []entry
		for v, t := range s.Times {
			entries = append(entries, entry{Switch: in.G.Name(v), Tick: t})
		}
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].Tick != entries[j].Tick {
				return entries[i].Tick < entries[j].Tick
			}
			return entries[i].Switch < entries[j].Switch
		})
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{"start": s.Start, "makespan": s.Makespan(), "updates": entries})
		return
	}
	fmt.Fprintf(out, "schedule: %s\n", s.Format(in))
	fmt.Fprintf(out, "makespan: %d time units\n", s.Makespan())
}
