package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/chronus-sdn/chronus/internal/journal"
	"github.com/chronus-sdn/chronus/internal/obs"
	"github.com/chronus-sdn/chronus/internal/state"
)

// stateTestJournal builds a journal directory holding one half-executed
// update: intent over two switches, one apply observed, the second
// FlowMod still parked when the stream ends.
func stateTestJournal(t *testing.T) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "journal")
	w, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	events := []obs.Event{
		{Seq: 1, VT: 10, Name: "state.intent", Attrs: []obs.Attr{
			obs.A("id", uint64(1)), obs.A("tenant", "default"), obs.A("flow", "agg"),
			obs.A("key", "agg/0"), obs.A("kind", "execute"), obs.A("method", "chronus"),
			obs.A("slack", int64(5)),
			obs.A("switches", state.EncodeIntentSwitches([]state.IntentSwitch{
				{Switch: "v1", Next: "v3", At: 100},
				{Switch: "v2", Next: "v4", At: 200},
			})),
		}},
		{Seq: 2, VT: 12, Name: "sw.flowmod", Attrs: []obs.Attr{
			obs.A("switch", "v1"), obs.A("kind", "timed"), obs.A("at", int64(100)),
			obs.A("key", "agg/0"), obs.A("cmd", "mod"), obs.A("next", "v3"),
		}},
		{Seq: 3, VT: 13, Name: "sw.flowmod", Attrs: []obs.Attr{
			obs.A("switch", "v2"), obs.A("kind", "timed"), obs.A("at", int64(200)),
			obs.A("key", "agg/0"), obs.A("cmd", "mod"), obs.A("next", "v4"),
		}},
		{Seq: 4, VT: 100, Name: "sw.apply", Attrs: []obs.Attr{
			obs.A("switch", "v1"), obs.A("skew", int64(0)), obs.A("at", int64(100)),
			obs.A("key", "agg/0"), obs.A("cmd", "mod"), obs.A("next", "v3"),
		}},
	}
	for _, e := range events {
		w.Record(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestCLIStateFromJournal: the offline snapshot and drift report must
// be exactly the bytes the state package encodes for the same journal —
// the contract that makes them byte-identical to the dead daemon's
// GET /state and GET /drift.
func TestCLIStateFromJournal(t *testing.T) {
	dir := stateTestJournal(t)

	st, _, err := state.FromJournal(dir, state.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantState, err := state.Encode(st.StateBody(-1))
	if err != nil {
		t.Fatal(err)
	}
	wantDrift, err := state.Encode(st.DriftBody())
	if err != nil {
		t.Fatal(err)
	}

	if got := runCLI(t, "-state-from", dir); got != string(wantState) {
		t.Errorf("-state-from output:\n%s\nwant:\n%s", got, wantState)
	}
	if got := runCLI(t, "-state-from", dir, "-drift"); got != string(wantDrift) {
		t.Errorf("-state-from -drift output:\n%s\nwant:\n%s", got, wantDrift)
	}

	// The snapshot itself must carry the half-executed picture: v1's
	// rule installed, v2's FlowMod still pending, the update converging.
	out := runCLI(t, "-state-from", dir)
	for _, want := range []string{`"next": "v3"`, `"converging"`, `"pending_switches"`} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %s:\n%s", want, out)
		}
	}

	// Time travel before the FlowMods arrived: nothing installed yet.
	at := runCLI(t, "-state-from", dir, "-state-at", "11")
	if !strings.Contains(at, `"time_travel": true`) || strings.Contains(at, `"next": "v3"`) {
		t.Errorf("-state-at 11 snapshot:\n%s", at)
	}
}

func TestCLIStateFromEmptyJournal(t *testing.T) {
	empty := t.TempDir()
	if err := os.MkdirAll(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := run([]string{"-state-from", empty}, &buf)
	if err == nil || !strings.Contains(err.Error(), "no trace events") {
		t.Fatalf("err = %v, want an explicit empty-journal error", err)
	}
}
