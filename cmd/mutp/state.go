package main

// Offline observed-state reconstruction: `mutp -state-from <dir>`
// rebuilds the state store from a chronusd journal directory and prints
// exactly the bytes the dead daemon's GET /state (or, with -drift,
// GET /drift) would have served — the crash post-mortem companion to
// -audit-from. Warnings (torn tails, sequence regressions between runs)
// go to stderr so stdout stays byte-identical to the live endpoint.

import (
	"fmt"
	"io"
	"os"

	"github.com/chronus-sdn/chronus/internal/state"
)

// stateFromJournal replays dir into a state store and writes the
// snapshot (as of tick at; at < 0 = the journal's newest tick) or, when
// drift is set, the drift report.
func stateFromJournal(out io.Writer, dir string, at int64, drift bool) error {
	s, stats, err := state.FromJournal(dir, state.Options{})
	if err != nil {
		return err
	}
	for _, w := range stats.Warnings {
		fmt.Fprintf(os.Stderr, "warning: %s\n", w)
	}
	if stats.Events == 0 {
		return fmt.Errorf("%s: no trace events (empty or fully torn journal)", dir)
	}
	var body any
	if drift {
		body = s.DriftBody()
	} else {
		body = s.StateBody(at)
	}
	b, err := state.Encode(body)
	if err != nil {
		return err
	}
	_, err = out.Write(b)
	return err
}
