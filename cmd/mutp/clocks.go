package main

import (
	"fmt"
	"io"

	chronus "github.com/chronus-sdn/chronus"
	"github.com/chronus-sdn/chronus/internal/clock"
)

// printClocks feeds an executed trace through the clock-quality
// estimator and renders the per-switch estimates — the offline twin of
// chronusd's GET /clocks. Deterministic for a fixed instance and seed:
// the trace carries virtual time only. One line per switch that fired a
// timed update; milliticks are thousandths of a tick.
func printClocks(out io.Writer, tracer *chronus.Tracer) {
	est := clock.New(nil)
	est.Observe(tracer.Events(0))
	fmt.Fprintln(out, "\nclock quality (from timed-fire skew and barrier RTT; mticks = 1/1000 tick):")
	for _, c := range est.Estimates() {
		fmt.Fprintf(out, "  %-8s offset %-6d drift %-6d jitter %-6d rtt %-3d samples %d\n",
			c.Switch, c.OffsetMilliTicks, c.DriftMilliTicksPerKtick, c.JitterMilliTicks, c.RTTTicks, c.Samples)
	}
}
