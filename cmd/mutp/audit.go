package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	chronus "github.com/chronus-sdn/chronus"
	"github.com/chronus-sdn/chronus/internal/audit"
	"github.com/chronus-sdn/chronus/internal/journal"
	"github.com/chronus-sdn/chronus/internal/obs"
)

// runAudit executes the schedule on the emulated testbed, feeds the
// resulting trace to the consistency auditor and renders its verdict —
// an independent re-check of the congestion- and loop-freedom the
// validator certified analytically, this time over what the switches
// actually did. It also prints the analytic per-switch slack so the
// trace-derived critical path can be compared against the validator's
// view of which activations are timing-critical.
func runAudit(out io.Writer, in *chronus.Instance, s *chronus.Schedule, seed int64, jsonPath string, clocks bool) error {
	tracer, err := executeOnTestbed(in, s, seed)
	if err != nil {
		return err
	}
	a := audit.New()
	a.Feed(tracer.Events(0)...)
	rep := a.Report()
	fmt.Fprintln(out)
	rep.Render(out)
	printSlack(out, in, s)
	if clocks {
		printClocks(out, tracer)
	}
	if jsonPath != "" {
		return writeAuditJSON(rep, jsonPath)
	}
	return nil
}

// auditFromFile audits a previously captured JSONL trace (the output of
// -trace or the chronusd /trace endpoint) offline, with no instance or
// schedule needed. A directory is treated as a chronusd journal
// (-journal-dir): its segments are replayed in order, so a trace that
// outlived the daemon's in-memory ring — or the daemon itself — audits
// exactly like the live /audit endpoint. Captures cut off mid-write are
// common (the writer was killed, the ring was snapshotted live), so a
// torn trailing line is warned about and skipped; corruption anywhere
// earlier, or a capture with no events at all, fails with a diagnosable
// error.
func auditFromFile(out io.Writer, path, jsonPath string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if fi.IsDir() {
		return auditFromJournal(out, path, jsonPath)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	a := audit.New()
	n, warn, err := a.ReadJSONLTolerant(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if warn != "" {
		fmt.Fprintf(out, "warning: %s: %s\n", path, warn)
	}
	if n == 0 {
		return fmt.Errorf("%s: no trace events (empty or fully torn capture)", path)
	}
	rep := a.Report()
	rep.Render(out)
	if jsonPath != "" {
		return writeAuditJSON(rep, jsonPath)
	}
	return nil
}

// auditFromJournal replays a chronusd journal directory — every
// segment, in order — through the auditor.
func auditFromJournal(out io.Writer, dir, jsonPath string) error {
	a := audit.New()
	n := 0
	stats, err := journal.Replay(dir, 0, func(e obs.Event) error {
		a.Feed(e)
		n++
		return nil
	})
	if err != nil {
		return err
	}
	for _, w := range stats.Warnings {
		fmt.Fprintf(out, "warning: %s\n", w)
	}
	if n == 0 {
		return fmt.Errorf("%s: no trace events (empty or fully torn journal)", dir)
	}
	fmt.Fprintf(out, "journal: %d events from %d segment(s)\n", n, stats.Segments)
	rep := a.Report()
	rep.Render(out)
	if jsonPath != "" {
		return writeAuditJSON(rep, jsonPath)
	}
	return nil
}

func printSlack(out io.Writer, in *chronus.Instance, s *chronus.Schedule) {
	fmt.Fprintln(out, "analytic slack (validator): ticks each activation may slip; * = critical")
	for _, sl := range chronus.ScheduleSlack(in, s) {
		mark := " "
		if sl.Critical {
			mark = "*"
		}
		fmt.Fprintf(out, "%s %-8s tick %-5d slack %d\n", mark, in.G.Name(sl.V), sl.Time, sl.Slack)
	}
}

func writeAuditJSON(rep *audit.Report, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
