package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/chronus-sdn/chronus/internal/journal"
	"github.com/chronus-sdn/chronus/internal/obs"
)

// TestCLIAuditGolden pins the full -audit output for the fig1 one-shot
// baseline byte for byte: the auditor's report is a pure function of the
// deterministic trace, so any drift in event emission, reconstruction or
// rendering shows up here.
func TestCLIAuditGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "audit_fig1_oneshot.golden"))
	if err != nil {
		t.Fatal(err)
	}
	got := runCLI(t, "-instance", "fig1", "-scheme", "oneshot", "-audit")
	if got != string(want) {
		t.Fatalf("audit output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestCLIAuditCleanOnChronusSchedule(t *testing.T) {
	out := runCLI(t, "-instance", "fig1", "-scheme", "chronus", "-audit")
	for _, want := range []string{
		"audit: PASS — 0 violation(s)",
		"cross-check: reconstructed congestion matches the emulator",
		"critical path:",
		"analytic slack",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "looped") && !strings.Contains(out, "0 looped") {
		t.Fatalf("clean schedule replay should not loop:\n%s", out)
	}
}

// TestCLIAuditFlagsOneShotCongestion checks the auditor catches both
// invariants on the emulation topology, where the one-shot update causes
// transient congestion as well as loops, with per-link tick evidence.
func TestCLIAuditFlagsOneShotCongestion(t *testing.T) {
	out := runCLI(t, "-instance", "emulation", "-scheme", "oneshot", "-audit")
	for _, want := range []string{
		"audit: FAIL",
		"congestion:",
		"over cap",
		"transient-loop",
		"cross-check: reconstructed congestion matches the emulator",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestCLIAuditOffline replays a captured trace file through -audit-from
// and checks the verdict matches the live audit, including the JSON
// report sidecar.
func TestCLIAuditOffline(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	runCLI(t, "-instance", "fig1", "-scheme", "oneshot", "-trace", trace)

	jsonPath := filepath.Join(dir, "report.json")
	out := runCLI(t, "-audit-from", trace, "-audit-json", jsonPath)
	if !strings.Contains(out, "audit: FAIL — 3 violation(s)") {
		t.Fatalf("offline audit should flag the one-shot trace:\n%s", out)
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Events int `json:"events"`
		Loops  []struct {
			Kind  string `json:"kind"`
			Cycle string `json:"cycle"`
			Tick  int64  `json:"tick"`
		} `json:"loops"`
		DetectorsAgree bool `json:"detectors_agree"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("parse %s: %v", jsonPath, err)
	}
	if rep.Events == 0 || len(rep.Loops) != 3 || !rep.DetectorsAgree {
		t.Fatalf("report = %+v", rep)
	}
	for _, l := range rep.Loops {
		if l.Kind != "transient-loop" || l.Cycle == "" || l.Tick == 0 {
			t.Fatalf("loop lacks evidence: %+v", l)
		}
	}
}

// TestCLIAuditFromJournalDir points -audit-from at a chronusd-style
// journal directory: the multi-segment replay must reach the same
// verdict, rendered byte for byte, as auditing the flat capture the
// journal was built from.
func TestCLIAuditFromJournalDir(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	runCLI(t, "-instance", "fig1", "-scheme", "oneshot", "-trace", trace)
	fileOut := runCLI(t, "-audit-from", trace)

	jdir := filepath.Join(dir, "journal")
	w, err := journal.Open(journal.Options{Dir: jdir, SegmentBytes: 512, Buffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range bytes.SplitAfter(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		e, err := obs.DecodeJSONLine(line)
		if err != nil {
			t.Fatal(err)
		}
		w.Record(e)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := journal.Segments(jdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("512-byte segments produced %d segment(s); rotation untested", len(segs))
	}

	out := runCLI(t, "-audit-from", jdir)
	head, rest, ok := strings.Cut(out, "\n")
	if !ok || !strings.Contains(head, "journal:") || !strings.Contains(head, "segment(s)") {
		t.Fatalf("journal audit should lead with replay provenance:\n%s", out)
	}
	if rest != fileOut {
		t.Fatalf("journal replay verdict differs from the flat capture:\n--- journal ---\n%s\n--- file ---\n%s", rest, fileOut)
	}

	t.Run("empty-journal", func(t *testing.T) {
		empty := filepath.Join(dir, "empty-journal")
		if err := os.Mkdir(empty, 0o755); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		err := run([]string{"-audit-from", empty}, &buf)
		if err == nil || !strings.Contains(err.Error(), "no trace events") {
			t.Fatalf("err = %v, want an explicit empty-journal error", err)
		}
	})
}

func TestCLIAuditRequiresTimedScheme(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-instance", "fig1", "-scheme", "or", "-audit"}, &buf); err == nil {
		t.Fatal("-audit with round-based scheme accepted")
	}
}

// TestCLIAuditFromDamagedCaptures covers -audit-from against the traces
// an operator actually has after a crash: a file whose last line was
// cut off mid-write (audited with a warning), an empty capture (clear
// error instead of a vacuous PASS), and mid-stream corruption (a
// line-numbered error naming the file).
func TestCLIAuditFromDamagedCaptures(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	runCLI(t, "-instance", "fig1", "-scheme", "oneshot", "-trace", trace)
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("torn-last-line", func(t *testing.T) {
		torn := filepath.Join(dir, "torn.jsonl")
		// Cut the capture mid-way through its final line, as a killed
		// writer would leave it.
		if err := os.WriteFile(torn, data[:len(data)-12], 0o644); err != nil {
			t.Fatal(err)
		}
		out := runCLI(t, "-audit-from", torn)
		if !strings.Contains(out, "warning:") || !strings.Contains(out, "torn trailing line") {
			t.Fatalf("no torn-line warning in output:\n%s", out)
		}
		if !strings.Contains(out, "audit:") {
			t.Fatalf("audit verdict missing — the intact prefix should still be audited:\n%s", out)
		}
	})

	t.Run("empty-file", func(t *testing.T) {
		empty := filepath.Join(dir, "empty.jsonl")
		if err := os.WriteFile(empty, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		err := run([]string{"-audit-from", empty}, &buf)
		if err == nil || !strings.Contains(err.Error(), "no trace events") {
			t.Fatalf("err = %v, want an explicit empty-capture error", err)
		}
	})

	t.Run("mid-stream-corruption", func(t *testing.T) {
		corrupt := filepath.Join(dir, "corrupt.jsonl")
		lines := bytes.SplitAfter(data, []byte("\n"))
		lines[1] = []byte("{definitely not json}\n")
		if err := os.WriteFile(corrupt, bytes.Join(lines, nil), 0o644); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		err := run([]string{"-audit-from", corrupt}, &buf)
		if err == nil || !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "corrupt.jsonl") {
			t.Fatalf("err = %v, want a line-numbered error naming the file", err)
		}
	})
}
