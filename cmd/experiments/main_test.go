package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSubset(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-run", "tab2,fig9", "-csv", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table II", "Fig. 9", "savings_pct"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Fig. 6") {
		t.Fatal("unselected experiment ran")
	}
	for _, f := range []string{"table2_source.csv", "fig9.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing CSV %s: %v", f, err)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// The acceptance bar of the parallel harness: for a fixed seed, -procs 1
// and -procs 8 must write byte-identical CSVs. Wall-clock tables (fig10,
// the acceptance-mode ablation) are covered by the determinism tests in
// internal/expt, which compare their deterministic columns.
func TestRunProcsByteIdenticalCSVs(t *testing.T) {
	figs := "fig6,fig7,fig8,fig9,fig11"
	serialDir, parallelDir := t.TempDir(), t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-seed", "7", "-procs", "1", "-run", figs, "-csv", serialDir}, &buf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "-seed", "7", "-procs", "8", "-run", figs, "-csv", parallelDir}, &buf); err != nil {
		t.Fatal(err)
	}
	names, err := os.ReadDir(serialDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no CSVs written")
	}
	for _, e := range names {
		serial, err := os.ReadFile(filepath.Join(serialDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := os.ReadFile(filepath.Join(parallelDir, e.Name()))
		if err != nil {
			t.Fatalf("missing parallel CSV %s: %v", e.Name(), err)
		}
		if !bytes.Equal(serial, parallel) {
			t.Errorf("%s differs between -procs 1 and -procs 8:\n--- procs=1:\n%s\n--- procs=8:\n%s", e.Name(), serial, parallel)
		}
	}
}

func TestRunBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-run", "fig7", "-bench-json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var bench struct {
		Seed        int64                                  `json:"seed"`
		Quick       bool                                   `json:"quick"`
		Experiments map[string]float64                     `json:"experiments"`
		Tables      map[string]struct{ Columns, Rows int } `json:"tables"`
		Audit       struct{ Checks, Agree int }            `json:"audit"`
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	if !bench.Quick || bench.Seed != 1 {
		t.Fatalf("bench = %+v", bench)
	}
	if bench.Experiments["fig7+fig8"] <= 0 {
		t.Fatalf("no wall time recorded: %+v", bench.Experiments)
	}
	if tb := bench.Tables["fig7"]; tb.Rows == 0 || tb.Columns == 0 {
		t.Fatalf("fig7 table shape missing: %+v", bench.Tables)
	}
	if bench.Audit.Checks == 0 || bench.Audit.Agree != bench.Audit.Checks {
		t.Fatalf("audit tally = %+v, want full validator/auditor agreement", bench.Audit)
	}
}
