package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSubset(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-run", "tab2,fig9", "-csv", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table II", "Fig. 9", "savings_pct"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Fig. 6") {
		t.Fatal("unselected experiment ran")
	}
	for _, f := range []string{"table2_source.csv", "fig9.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing CSV %s: %v", f, err)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}
